package heaplive

import "fmt"

// Precision selects the liveness tier of the flow-sensitive checks — the
// `-precision=` knob threaded through the CLIs, the server wire types,
// and the engine. Three tiers, in increasing precision and cost:
//
//   - paper: the flow-insensitive analysis of Sweeney & Tip only; the
//     dead-store dataflow pass is skipped, so deadlint reports only the
//     write-only-member corroboration of the paper's dead set.
//   - flow: the PR 4 layer — per-function CFGs plus backward
//     may-liveness of length-one access paths (base.field).
//   - heap: flow plus this package's access-graph heap liveness, which
//     tracks bounded multi-field access paths (a.b.c, p->next->val), so
//     chained stores invisible to the flow tier become checkable.
//
// Findings are monotone across tiers by construction:
// paper ⊆ flow ⊆ heap.
//
// The zero value is PrecisionFlow: the tier every pre-knob release ran
// at, so an unset Options field keeps historical behaviour and wire
// requests that omit "precision" stay byte-identical to old responses.
type Precision int

const (
	// PrecisionFlow is the default tier (zero value): flow-sensitive
	// dead-store detection over length-one access paths.
	PrecisionFlow Precision = iota

	// PrecisionPaper restricts findings to the paper-faithful
	// flow-insensitive analysis (write-only-member corroboration only).
	PrecisionPaper

	// PrecisionHeap adds the access-graph heap liveness pass on top of
	// the flow tier.
	PrecisionHeap
)

// String names the tier the way the CLI flag and wire field spell it.
func (p Precision) String() string {
	switch p {
	case PrecisionPaper:
		return "paper"
	case PrecisionHeap:
		return "heap"
	default:
		return "flow"
	}
}

// Rank orders tiers by precision: paper < flow < heap. Tests use it to
// assert findings monotonicity; the constant values themselves are
// ordered for zero-value compatibility, not precision.
func (p Precision) Rank() int {
	switch p {
	case PrecisionPaper:
		return 0
	case PrecisionHeap:
		return 2
	default:
		return 1
	}
}

// Tiers lists the precision tiers in Rank order.
func Tiers() [3]Precision {
	return [3]Precision{PrecisionPaper, PrecisionFlow, PrecisionHeap}
}

// ParsePrecision maps a CLI/wire spelling onto a tier. The empty string
// selects the default (flow), matching pre-knob requests.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "", "flow":
		return PrecisionFlow, nil
	case "paper":
		return PrecisionPaper, nil
	case "heap":
		return PrecisionHeap, nil
	}
	return PrecisionFlow, fmt.Errorf("unknown precision %q (want paper, flow, or heap)", s)
}
