// Package heaplive implements the heap tier of the precision knob: a
// flow-sensitive, access-graph-based liveness analysis of chained member
// access paths, layered on the per-function CFGs (internal/cfg) and the
// generic backward worklist solver (internal/dataflow).
//
// The flow tier (internal/lint's dead-store pass) tracks only length-one
// access paths — base.field — so a store through a chain of member
// references (o.in.val, p->next->val) is invisible to it. This package
// makes such stores checkable the way "Heap Reference Analysis Using
// Access Graphs" (Khedker/Sanyal/Karkare) does: liveness at each program
// point is a bounded set of access paths rooted at locals, parameters,
// or the implicit this. The bound is MaxDepth: the per-root access graph
// is flattened into the finite universe of candidate store paths of
// length 2..MaxDepth, and anything deeper — in particular cycles through
// recursive types (list->next->next->...) — is summarized into the
// untracked conservative remainder, which is never reported dead.
//
// Soundness model (may-liveness; findings are dead-only, false negatives
// are the accepted cost):
//
//   - a candidate store kills exactly its own syntactic path; any write
//     that could re-point a prefix of a tracked path (a store to a field
//     occurring at a non-final position, a mutation of the root
//     variable, a callee that transitively writes such a field)
//     regenerates liveness for the paths it might detach;
//   - reads generate by final-field compatibility: a read whose final
//     field (plus the fields its class type transitively contains by
//     value) matches a tracked path's final field makes that path live,
//     regardless of the root — which is how pointer aliasing is covered
//     without an alias analysis;
//   - whole-object copies of a root variable make every path under that
//     root live; calls generate from the callee read/write summaries;
//     statically opaque accesses (pointer-to-member dereference, class
//     reads through * or [], delete) make everything live.
//
// Results are deterministic: the path universe is numbered in block/atom
// discovery order, every transfer is a bitset operation, and the solver
// is the deterministic FIFO worklist of internal/dataflow.
package heaplive

import (
	"context"
	"strings"

	"deadmembers/internal/ast"
	"deadmembers/internal/cfg"
	"deadmembers/internal/dataflow"
	"deadmembers/internal/source"
	"deadmembers/internal/token"
	"deadmembers/internal/types"
)

// Access classifies one member- or variable-access node, mirroring the
// read/write/address/path discipline of internal/lint's classifier. The
// caller supplies classifications through the Accesses interface so this
// package stays independent of the lint layer.
type Access int8

const (
	AccNone Access = iota
	AccRead
	AccWrite
	AccAddr
	AccPath // locates a subobject: neither read nor written
)

// Accesses supplies the per-node access classification of one function,
// computed by the caller (internal/lint adapts its classifier).
type Accesses interface {
	// MemberAccess classifies *ast.Member and field-resolving *ast.Ident
	// nodes.
	MemberAccess(n ast.Node) Access
	// VarAccess classifies variable-resolving *ast.Ident nodes.
	VarAccess(id *ast.Ident) Access
	// Escaped reports whether the variable's address is taken in this
	// function; paths rooted at escaped variables are never tracked.
	Escaped(v *types.Var) bool
	// MutatedVar maps Assign/Unary/Postfix nodes that modify a plain
	// variable to that variable (nil otherwise).
	MutatedVar(n ast.Node) *types.Var
}

// Summary is the transitive effect of the calls a function makes: the
// fields its callees may read, the fields they may store to, or
// everything (Universal: a pointer-to-member dereference somewhere
// below). internal/lint computes these over the call graph.
type Summary struct {
	Reads     map[*types.Field]bool
	Writes    map[*types.Field]bool
	Universal bool
}

// DefaultMaxDepth bounds tracked access-path length when Options.MaxDepth
// is zero. Chains deeper than the bound are summarized (untracked).
const DefaultMaxDepth = 4

// Options configures one function's heap-liveness pass.
type Options struct {
	// MaxDepth bounds the length of tracked access paths (0 selects
	// DefaultMaxDepth). Minimum effective depth is 2: length-one paths
	// belong to the flow tier.
	MaxDepth int

	// Budget caps dataflow solver steps (0 = automatic).
	Budget int

	// Ctx, when non-nil, is polled by the solver.
	Ctx context.Context
}

// Path is one tracked access path: root.f1.f2...fk. A nil Root is the
// implicit this.
type Path struct {
	Root   *types.Var
	Fields []*types.Field
}

// Final returns the last field of the path — the stored cell.
func (p Path) Final() *types.Field { return p.Fields[len(p.Fields)-1] }

// String renders the path the way source would spell it, with -> after
// pointer-typed steps.
func (p Path) String() string {
	var b strings.Builder
	prev := types.Type(nil)
	if p.Root == nil {
		b.WriteString("this")
		// this is always a pointer to the receiver object.
		prev = nil
	} else {
		b.WriteString(p.Root.Name)
		prev = p.Root.Type
	}
	for i, f := range p.Fields {
		if (p.Root == nil && i == 0) || types.IsPointer(prev) {
			b.WriteString("->")
		} else {
			b.WriteString(".")
		}
		b.WriteString(f.Name)
		prev = f.Type
	}
	return b.String()
}

// DeadStore is one chained store no execution path can observe.
type DeadStore struct {
	Node ast.Node
	Path Path
	Pos  source.Pos
}

// analysis carries one function's pass.
type analysis struct {
	info *types.Info
	g    *cfg.Graph
	acc  Accesses
	call Summary
	sup  map[*types.Field]bool
	max  int

	paths      []Path
	bit        map[string]int
	varID      map[*types.Var]int
	fldID      map[*types.Field]int
	byFinal    map[*types.Field][]int
	byNonFinal map[*types.Field][]int
	byRoot     map[*types.Var][]int // nil key = this-rooted
	recv       map[ast.Node]bool    // receivers of field-resolving Member atoms
	all        dataflow.BitSet
}

// Analyze runs the chained-path dead-store analysis over one function's
// CFG. sup is the program-wide suppressed-field set (volatile,
// address-taken, union, unsafe-cast, library): paths touching a
// suppressed field are never tracked. The returned error is a dataflow
// budget overrun (wrapping dataflow.ErrBudget, naming the function) or a
// context cancellation.
func Analyze(info *types.Info, g *cfg.Graph, acc Accesses, call Summary, sup map[*types.Field]bool, opts Options) ([]DeadStore, error) {
	if g == nil {
		return nil, nil
	}
	max := opts.MaxDepth
	if max <= 0 {
		max = DefaultMaxDepth
	}
	a := &analysis{
		info: info, g: g, acc: acc, call: call, sup: sup, max: max,
		bit:   map[string]int{},
		varID: map[*types.Var]int{}, fldID: map[*types.Field]int{},
		byFinal: map[*types.Field][]int{}, byNonFinal: map[*types.Field][]int{},
		byRoot: map[*types.Var][]int{}, recv: map[ast.Node]bool{},
	}
	a.collect()
	if len(a.paths) == 0 {
		return nil, nil
	}
	a.all = dataflow.NewBitSet(len(a.paths))
	a.all.SetAll(len(a.paths))

	n := len(g.Blocks)
	p := dataflow.Problem{
		NumBlocks: n,
		Succs:     make([][]int, n),
		Bits:      len(a.paths),
		Gen:       make([]dataflow.BitSet, n),
		Kill:      make([]dataflow.BitSet, n),
		Boundary:  a.exitLive(),
		Budget:    opts.Budget,
		Ctx:       opts.Ctx,
		Unit:      g.Fn.QualifiedName(),
		Dir:       dataflow.Backward,
	}
	for i, b := range g.Blocks {
		p.Succs[i] = make([]int, len(b.Succs))
		for j, s := range b.Succs {
			p.Succs[i][j] = s.ID
		}
		p.Gen[i], p.Kill[i] = a.blockTransfer(b)
	}
	sol, err := dataflow.Solve(p)
	if err != nil {
		return nil, err
	}

	// Flag walk: replay each reachable block backward from its Out set; a
	// candidate store whose path is not live at the store is dead.
	var out []DeadStore
	gen := dataflow.NewBitSet(len(a.paths))
	kill := dataflow.NewBitSet(len(a.paths))
	for i, b := range g.Blocks {
		if !b.Reachable {
			continue
		}
		live := sol.Out[i].Clone()
		for j := len(b.Nodes) - 1; j >= 0; j-- {
			node := b.Nodes[j]
			if id, path, ok := a.storeAt(node); ok && !live.Has(id) {
				out = append(out, DeadStore{Node: node, Path: path, Pos: node.(*ast.Member).Pos()})
			}
			gen.Reset()
			kill.Reset()
			a.atomEffect(node, gen, kill)
			live.AndNot(kill)
			live.Union(gen)
		}
	}
	return out, nil
}

// collect builds the path universe (one bit per distinct candidate store
// path, in block/atom discovery order) and the receiver-node set that
// distinguishes maximal reads from chain steps.
func (a *analysis) collect() {
	for _, b := range a.g.Blocks {
		for _, n := range b.Nodes {
			if m, ok := n.(*ast.Member); ok && a.info.FieldRefs[m] != nil {
				a.recv[ast.Unparen(m.X)] = true
			}
		}
	}
	for _, b := range a.g.Blocks {
		for _, n := range b.Nodes {
			path, ok := a.candidateStore(n)
			if !ok {
				continue
			}
			key := a.key(path)
			if _, dup := a.bit[key]; dup {
				continue
			}
			id := len(a.paths)
			a.bit[key] = id
			a.paths = append(a.paths, path)
			fin := path.Final()
			a.byFinal[fin] = append(a.byFinal[fin], id)
			for _, f := range path.Fields[:len(path.Fields)-1] {
				a.byNonFinal[f] = append(a.byNonFinal[f], id)
			}
			a.byRoot[path.Root] = append(a.byRoot[path.Root], id)
		}
	}
}

// key canonicalizes a path for the bit map using per-function discovery
// indices (never iterated, so determinism needs only stable equality).
func (a *analysis) key(p Path) string {
	var b strings.Builder
	if p.Root == nil {
		b.WriteString("t")
	} else {
		id, ok := a.varID[p.Root]
		if !ok {
			id = len(a.varID)
			a.varID[p.Root] = id
		}
		b.WriteString("v")
		writeInt(&b, id)
	}
	for _, f := range p.Fields {
		id, ok := a.fldID[f]
		if !ok {
			id = len(a.fldID)
			a.fldID[f] = id
		}
		b.WriteString(".")
		writeInt(&b, id)
	}
	return b.String()
}

func writeInt(b *strings.Builder, n int) {
	if n >= 10 {
		writeInt(b, n/10)
	}
	b.WriteByte(byte('0' + n%10))
}

// pathOf extracts the full access path of a member expression: the
// receiver chain must bottom out at a plain variable, this, or an
// implicit-this member identifier, with every step a resolved field.
func (a *analysis) pathOf(m *ast.Member) (Path, bool) {
	var rev []*types.Field
	var node ast.Expr = m
	for {
		mm, ok := ast.Unparen(node).(*ast.Member)
		if !ok {
			break
		}
		fld := a.info.FieldRefs[mm]
		if fld == nil {
			return Path{}, false
		}
		rev = append(rev, fld)
		node = mm.X
	}
	p := Path{}
	switch base := ast.Unparen(node).(type) {
	case *ast.ThisExpr:
		p.Root = nil
	case *ast.Ident:
		if fld := a.info.IdentFields[base]; fld != nil {
			rev = append(rev, fld) // implicit this->fld
			p.Root = nil
			break
		}
		v := a.info.IdentVars[base]
		if v == nil {
			return Path{}, false
		}
		p.Root = v
	default:
		return Path{}, false
	}
	p.Fields = make([]*types.Field, len(rev))
	for i, f := range rev {
		p.Fields[len(rev)-1-i] = f
	}
	return p, true
}

// candidateStore recognizes eligible chained-store atoms: a direct write
// through a member chain of length 2..MaxDepth whose root is trackable
// and whose fields are all unsuppressed. Length-one stores belong to the
// flow tier; deeper chains are summarized away.
func (a *analysis) candidateStore(n ast.Node) (Path, bool) {
	m, ok := n.(*ast.Member)
	if !ok || a.acc.MemberAccess(m) != AccWrite || a.info.FieldRefs[m] == nil {
		return Path{}, false
	}
	p, ok := a.pathOf(m)
	if !ok || len(p.Fields) < 2 || len(p.Fields) > a.max {
		return Path{}, false
	}
	for _, f := range p.Fields {
		if a.sup[f] {
			return Path{}, false
		}
	}
	if p.Root != nil && a.acc.Escaped(p.Root) {
		return Path{}, false
	}
	return p, true
}

// storeAt resolves a candidate-store atom to its tracked bit.
func (a *analysis) storeAt(n ast.Node) (int, Path, bool) {
	p, ok := a.candidateStore(n)
	if !ok {
		return 0, Path{}, false
	}
	id, tracked := a.bit[a.key(p)]
	if !tracked {
		return 0, Path{}, false
	}
	return id, p, true
}

// exitLive is the boundary vector: a path is observable after the
// function returns unless it is a pure value chain under a local that
// dies silently at scope exit.
func (a *analysis) exitLive() dataflow.BitSet {
	out := dataflow.NewBitSet(len(a.paths))
	for i, p := range a.paths {
		switch {
		case p.Root == nil, p.Root.Global:
			out.Set(i) // the object outlives the call
		case types.IsPointer(p.Root.Type):
			out.Set(i) // pointee may outlive the frame
		case HasUserDtor(types.IsClass(p.Root.Type)):
			out.Set(i) // a destructor may observe the members
		default:
			for _, f := range p.Fields[:len(p.Fields)-1] {
				if types.IsPointer(f.Type) {
					out.Set(i) // chain crosses into the heap
					break
				}
			}
		}
	}
	return out
}

// HasUserDtor reports whether destroying a value of class c runs any
// user-declared destructor — its own, a base's, or a member's, through
// arrays. (Shared with internal/lint's exit-liveness rule.)
func HasUserDtor(c *types.Class) bool {
	return hasUserDtor(c, map[*types.Class]bool{})
}

func hasUserDtor(c *types.Class, seen map[*types.Class]bool) bool {
	if c == nil || seen[c] {
		return false
	}
	seen[c] = true
	if c.Dtor() != nil {
		return true
	}
	for _, b := range c.Bases {
		if hasUserDtor(b.Class, seen) {
			return true
		}
	}
	for _, f := range c.Fields {
		if hasUserDtor(types.IsClass(elemType(f.Type)), seen) {
			return true
		}
	}
	return false
}

// elemType strips array layers.
func elemType(t types.Type) types.Type {
	for {
		arr, ok := t.(*types.Array)
		if !ok {
			return t
		}
		t = arr.Elem
	}
}

// blockTransfer composes the block's atoms into one gen/kill pair
// (walking atoms last-to-first with the new atom as the outer transfer).
func (a *analysis) blockTransfer(b *cfg.Block) (gen, kill dataflow.BitSet) {
	gen = dataflow.NewBitSet(len(a.paths))
	kill = dataflow.NewBitSet(len(a.paths))
	g := dataflow.NewBitSet(len(a.paths))
	k := dataflow.NewBitSet(len(a.paths))
	for j := len(b.Nodes) - 1; j >= 0; j-- {
		g.Reset()
		k.Reset()
		a.atomEffect(b.Nodes[j], g, k)
		gen.AndNot(k)
		gen.Union(g)
		kill.Union(k)
	}
	return gen, kill
}

// genReadField adds liveness for every tracked path whose final field is
// f or is contained by value in f's type: reading the cell (or copying
// the subobject under it) may observe any such path's stored value
// through an alias.
func (a *analysis) genReadField(f *types.Field, gen dataflow.BitSet) {
	a.genFieldClosure(f, gen, map[*types.Class]bool{})
}

func (a *analysis) genFieldClosure(f *types.Field, gen dataflow.BitSet, seen map[*types.Class]bool) {
	for _, id := range a.byFinal[f] {
		gen.Set(id)
	}
	a.genClassClosure(types.IsClass(elemType(f.Type)), gen, seen)
}

func (a *analysis) genClassClosure(c *types.Class, gen dataflow.BitSet, seen map[*types.Class]bool) {
	if c == nil || seen[c] {
		return
	}
	seen[c] = true
	for _, f := range c.Fields {
		for _, id := range a.byFinal[f] {
			gen.Set(id)
		}
		a.genClassClosure(types.IsClass(elemType(f.Type)), gen, seen)
	}
	for _, b := range c.Bases {
		a.genClassClosure(b.Class, gen, seen)
	}
}

// genDetach adds liveness for every tracked path that a write to field f
// could re-point: paths with f at a non-final position lose their old
// subtree, whose stored values may still be observable through aliases.
func (a *analysis) genDetach(f *types.Field, gen dataflow.BitSet) {
	for _, id := range a.byNonFinal[f] {
		gen.Set(id)
	}
}

// genCall applies the callee read/write summaries.
func (a *analysis) genCall(gen dataflow.BitSet) {
	if a.call.Universal {
		gen.Union(a.all)
		return
	}
	for f := range a.call.Reads {
		a.genReadField(f, gen)
	}
	for f := range a.call.Writes {
		a.genDetach(f, gen)
	}
}

// atomEffect computes one atom's gen/kill contribution.
func (a *analysis) atomEffect(n ast.Node, gen, kill dataflow.BitSet) {
	if id, _, ok := a.storeAt(n); ok {
		kill.Set(id)
	}

	switch x := n.(type) {
	case *ast.CtorInit:
		// Initializing a member re-points/overwrites its subtree, and a
		// class-typed member's initialization may run a constructor.
		if fld := a.info.CtorInitFields[x]; fld != nil {
			a.genDetach(fld, gen)
		}
		a.genCall(gen)

	case *ast.Member:
		fld := a.info.FieldRefs[x]
		if fld == nil {
			return
		}
		switch a.acc.MemberAccess(x) {
		case AccWrite:
			a.genDetach(fld, gen)
		case AccRead:
			if !a.recv[x] {
				a.genReadField(fld, gen)
			}
		case AccAddr:
			// Address of a member cell: reads through the pointer are
			// invisible (the field is suppressed program-wide as well).
			gen.Union(a.all)
		}

	case *ast.Ident:
		if fld := a.info.IdentFields[x]; fld != nil {
			switch a.acc.MemberAccess(x) {
			case AccWrite:
				a.genDetach(fld, gen)
			case AccRead:
				if !a.recv[x] {
					a.genReadField(fld, gen)
				}
			case AccAddr:
				gen.Union(a.all)
			}
			return
		}
		if v := a.info.IdentVars[x]; v != nil && a.acc.VarAccess(x) == AccRead && !a.recv[x] {
			// Copying a class-typed variable reads everything under it.
			if types.IsClass(v.Type) != nil {
				for _, id := range a.byRoot[v] {
					gen.Set(id)
				}
			}
		}

	case *ast.QualifiedIdent:
		// &C::m — suppressed program-wide; no local effect.

	case *ast.Unary:
		switch x.Op {
		case token.Star:
			if types.IsClass(a.info.TypeOf(x)) != nil {
				gen.Union(a.all)
			}
		case token.Inc, token.Dec:
			if v := a.acc.MutatedVar(x); v != nil {
				for _, id := range a.byRoot[v] {
					gen.Set(id)
				}
			}
		}

	case *ast.Postfix:
		if v := a.acc.MutatedVar(x); v != nil {
			for _, id := range a.byRoot[v] {
				gen.Set(id)
			}
		}

	case *ast.Index:
		if types.IsClass(a.info.TypeOf(x)) != nil {
			gen.Union(a.all)
		}

	case *ast.Assign:
		// Re-pointing a root variable detaches every path under it.
		if v := a.acc.MutatedVar(x); v != nil {
			for _, id := range a.byRoot[v] {
				gen.Set(id)
			}
		}

	case *ast.MemberPtrDeref:
		gen.Union(a.all)

	case *ast.Call:
		a.genCall(gen)

	case *ast.New:
		a.genCall(gen)

	case *ast.Delete:
		a.genCall(gen)
		gen.Union(a.all)

	case *ast.VarDecl:
		if a.info.VarCtors[x] != nil {
			a.genCall(gen)
		}
	}
}
