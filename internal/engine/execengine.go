package engine

import (
	"context"
	"fmt"

	"deadmembers/internal/deadmember"
	"deadmembers/internal/dynprof"
	"deadmembers/internal/interp"
	"deadmembers/internal/vm"
)

// Engine selects how MC++ programs are executed: the tree-walking
// interpreter or the bytecode VM. Both produce byte-identical observable
// behaviour — output, exit codes, step counts, and instrumented heap
// records — because the VM shares the interpreter's runtime core and
// only replaces the per-statement AST walk.
type Engine int

// Execution engines.
const (
	// EngineTree is the tree-walking interpreter (the default).
	EngineTree Engine = iota
	// EngineVM is the bytecode compiler + dispatch-loop VM with inline
	// caches (internal/vm).
	EngineVM
)

// String returns the knob spelling of the engine.
func (e Engine) String() string {
	if e == EngineVM {
		return "vm"
	}
	return "tree"
}

// ParseEngine parses an -engine flag value.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "tree":
		return EngineTree, nil
	case "vm":
		return EngineVM, nil
	}
	return EngineTree, fmt.Errorf("unknown engine %q (want tree or vm)", s)
}

// executorFor builds the Executor implementing eng for this compilation.
// A fresh Executor per run: its inline caches bind Machine-specific
// cells, so executors are never shared across runs.
func (c *Compilation) executorFor(eng Engine) interp.Executor {
	if eng == EngineVM {
		return vm.NewExecutor(c.Program, c.Hierarchy)
	}
	return nil
}

// ExecutorFor builds a fresh Executor implementing eng (nil for the
// tree engine), for callers driving interp or dynprof directly.
func (c *Compilation) ExecutorFor(eng Engine) interp.Executor {
	return c.executorFor(eng)
}

// RunContextEngine executes the program on the selected engine.
func (c *Compilation) RunContextEngine(ctx context.Context, eng Engine) (*interp.Result, error) {
	return interp.Run(c.Program, c.Hierarchy, interp.Options{
		Context:  ctx,
		FileSet:  c.FileSet,
		Executor: c.executorFor(eng),
	})
}

// ProfileContextEngine is ProfileContext with an engine selection for
// the instrumented execution.
func (c *Compilation) ProfileContextEngine(ctx context.Context, opts deadmember.Options, dopts dynprof.Options, eng Engine) (*dynprof.Profile, error) {
	dopts.Executor = c.executorFor(eng)
	dopts.FileSet = c.FileSet
	return c.ProfileContext(ctx, opts, dopts)
}
