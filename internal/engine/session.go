package engine

import (
	"context"
	"sync"
)

// Session is a compile-once cache: Compile returns the same Compilation
// for byte-identical sources, so ablation sweeps, benchmark loops, and
// verify-then-emit flows pay for the frontend exactly once per distinct
// input. Sessions are safe for concurrent use.
type Session struct {
	cfg Config

	mu    sync.Mutex
	cache map[string]*Compilation
	stats Stats
}

// Stats counts session activity, and accumulates stage timings of the
// frontend compiles actually performed.
type Stats struct {
	// Compiles is the number of frontend compiles performed (cache misses).
	Compiles int
	// Hits is the number of Compile calls served from the cache.
	Hits int
	// Frontend accumulates Parse+Sema timings over all performed compiles.
	Frontend Timings
}

// NewSession returns an empty session compiling under cfg.
func NewSession(cfg Config) *Session {
	return &Session{cfg: cfg, cache: map[string]*Compilation{}}
}

// Compile returns the cached Compilation for sources, running the
// frontend only on the first sight of this exact content. Compilations
// consumed by Strip are treated as evicted and recompiled.
func (s *Session) Compile(sources ...Source) *Compilation {
	return s.CompileContext(context.Background(), sources...)
}

// CompileContext is Compile under a context. Compiles that were cancelled
// or degraded by a contained panic are returned to the caller but never
// cached: the next request for the same content gets a fresh attempt
// instead of a poisoned artifact.
func (s *Session) CompileContext(ctx context.Context, sources ...Source) *Compilation {
	key := fingerprint(sources)
	s.mu.Lock()
	if c, ok := s.cache[key]; ok && !c.Consumed() {
		s.stats.Hits++
		s.mu.Unlock()
		return c
	}
	s.mu.Unlock()

	// Compile outside the lock: a slow frontend must not serialize
	// unrelated cache hits. A concurrent miss on the same key wastes one
	// compile but both callers get a valid artifact.
	c := CompileContext(ctx, s.cfg, sources...)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Compiles++
	s.stats.Frontend.Add(c.Timings())
	if c.CancelErr() != nil || c.Degraded() {
		return c // usable by this caller, but not cache-worthy
	}
	if prev, ok := s.cache[key]; ok && !prev.Consumed() {
		// Lost the race; count our work but hand back the cached artifact
		// so callers share call-graph caches too.
		return prev
	}
	s.cache[key] = c
	return c
}

// Stats returns a snapshot of the session counters.
func (s *Session) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}
