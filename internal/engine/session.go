package engine

import (
	"container/list"
	"context"
	"sync"
)

// Session is a compile-once cache: Compile returns the same Compilation
// for byte-identical sources, so ablation sweeps, benchmark loops, and
// verify-then-emit flows pay for the frontend exactly once per distinct
// input. Sessions are safe for concurrent use.
//
// The cache is production-grade for long-running services (cmd/deadmemd):
//
//   - concurrent Compile calls for the same fingerprint are deduplicated
//     (singleflight): one caller runs the frontend, the rest wait and
//     share its artifact;
//   - the cache is an LRU bounded by Limits — total retained source bytes
//     and entry count — with least-recently-used entries evicted on
//     insert (the default zero Limits keep it unbounded, the original
//     batch behaviour).
type Session struct {
	cfg    Config
	limits Limits

	mu       sync.Mutex
	entries  map[string]*list.Element // fingerprint → *cacheEntry element
	lru      *list.List               // front = most recently used
	bytes    int64                    // sum of cached entries' source bytes
	inflight map[string]*inflightCompile
	stats    Stats
}

// Limits bounds the session cache. Zero fields mean "unlimited".
type Limits struct {
	// MaxBytes caps the total source bytes retained by cached
	// compilations (an entry's cost is the sum of its source names and
	// texts — the recompile input the cache exists to avoid re-reading).
	// A single input larger than MaxBytes is compiled but never cached.
	MaxBytes int64
	// MaxEntries caps the number of cached compilations.
	MaxEntries int
}

type cacheEntry struct {
	key   string
	comp  *Compilation
	bytes int64
}

// inflightCompile is a singleflight slot: the leader closes done after
// storing its result in comp.
type inflightCompile struct {
	done chan struct{}
	comp *Compilation
}

// Stats counts session activity, and accumulates stage timings of the
// frontend compiles actually performed.
type Stats struct {
	// Compiles is the number of frontend compiles performed (cache misses).
	Compiles int
	// Hits is the number of Compile calls served from the cache or from a
	// deduplicated in-flight compile.
	Hits int
	// Evictions is the number of entries dropped to enforce Limits.
	Evictions int
	// Entries and Bytes are point-in-time gauges of the cache contents.
	Entries int
	Bytes   int64
	// Frontend accumulates Parse+Sema timings over all performed compiles.
	Frontend Timings
}

// NewSession returns an empty unbounded session compiling under cfg.
func NewSession(cfg Config) *Session {
	return NewBoundedSession(cfg, Limits{})
}

// NewBoundedSession returns an empty session compiling under cfg whose
// cache is bounded by limits.
func NewBoundedSession(cfg Config, limits Limits) *Session {
	return &Session{
		cfg:      cfg,
		limits:   limits,
		entries:  map[string]*list.Element{},
		lru:      list.New(),
		inflight: map[string]*inflightCompile{},
	}
}

// Compile returns the cached Compilation for sources, running the
// frontend only on the first sight of this exact content. Compilations
// consumed by Strip are treated as evicted and recompiled.
func (s *Session) Compile(sources ...Source) *Compilation {
	return s.CompileContext(context.Background(), sources...)
}

// CompileContext is Compile under a context. Compiles that were cancelled
// or degraded by a contained panic are returned to the caller but never
// cached: the next request for the same content gets a fresh attempt
// instead of a poisoned artifact. Concurrent calls for the same content
// share one frontend run; a waiter whose own context is cancelled stops
// waiting and returns a cancelled artifact of its own.
func (s *Session) CompileContext(ctx context.Context, sources ...Source) *Compilation {
	key := fingerprint(sources)
	for {
		s.mu.Lock()
		if el, ok := s.entries[key]; ok {
			e := el.Value.(*cacheEntry)
			if e.comp.Consumed() {
				s.removeLocked(el)
			} else {
				s.stats.Hits++
				s.lru.MoveToFront(el)
				s.mu.Unlock()
				return e.comp
			}
		}
		if fl, ok := s.inflight[key]; ok {
			s.mu.Unlock()
			select {
			case <-fl.done:
				c := fl.comp
				if c.CancelErr() == nil && !c.Degraded() && !c.Consumed() {
					s.mu.Lock()
					s.stats.Hits++
					s.mu.Unlock()
					return c
				}
				continue // leader's artifact unusable; retry (maybe lead)
			case <-ctx.Done():
				// Abandon the wait: hand this caller its own well-formed
				// cancelled artifact (cheap — every stage checks ctx first).
				return CompileContext(ctx, s.cfg, sources...)
			}
		}
		fl := &inflightCompile{done: make(chan struct{})}
		s.inflight[key] = fl
		s.mu.Unlock()

		// Compile outside the lock: a slow frontend must not serialize
		// unrelated cache hits.
		c := CompileContext(ctx, s.cfg, sources...)

		s.mu.Lock()
		s.stats.Compiles++
		s.stats.Frontend.Add(c.Timings())
		delete(s.inflight, key)
		if c.CancelErr() == nil && !c.Degraded() {
			s.insertLocked(key, c)
		}
		s.mu.Unlock()
		fl.comp = c
		close(fl.done)
		return c
	}
}

// insertLocked caches c under key and evicts from the LRU tail until the
// limits hold again. Entries that could never fit are not cached at all.
func (s *Session) insertLocked(key string, c *Compilation) {
	if el, ok := s.entries[key]; ok {
		s.removeLocked(el)
	}
	b := sourceBytes(c.Sources)
	if s.limits.MaxBytes > 0 && b > s.limits.MaxBytes {
		return
	}
	el := s.lru.PushFront(&cacheEntry{key: key, comp: c, bytes: b})
	s.entries[key] = el
	s.bytes += b
	for (s.limits.MaxEntries > 0 && s.lru.Len() > s.limits.MaxEntries) ||
		(s.limits.MaxBytes > 0 && s.bytes > s.limits.MaxBytes) {
		back := s.lru.Back()
		if back == nil || back == el {
			break
		}
		s.removeLocked(back)
		s.stats.Evictions++
	}
}

// removeLocked drops one cache element and its byte accounting.
func (s *Session) removeLocked(el *list.Element) {
	e := el.Value.(*cacheEntry)
	s.lru.Remove(el)
	delete(s.entries, e.key)
	s.bytes -= e.bytes
}

// Stats returns a snapshot of the session counters.
func (s *Session) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = s.lru.Len()
	st.Bytes = s.bytes
	return st
}

// sourceBytes is the byte cost a cached compilation is accounted at.
func sourceBytes(sources []Source) int64 {
	var n int64
	for _, s := range sources {
		n += int64(len(s.Name)) + int64(len(s.Text))
	}
	return n
}
