package engine_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"deadmembers/internal/callgraph"
	"deadmembers/internal/deadmember"
	"deadmembers/internal/dynprof"
	"deadmembers/internal/engine"
	"deadmembers/internal/types"
)

// Three self-contained files: main lives in fileA; fileB and fileC are
// independent, so crashing fileB's parse must leave Alpha's and Gamma's
// classifications byte-identical to a compile without fileB.
const (
	fileA = `class Alpha { public: int usedA; int deadA; int getA() { return usedA; } };
int main() { Alpha a; return a.getA(); }
`
	fileB = `class Beta { public: int usedB; int deadB; int getB() { return usedB; } };
int bee() { Beta b; return b.getB(); }
`
	fileC = `class Gamma { public: int usedC; int deadC; int getC() { return usedC; } };
int gam() { Gamma g; return g.getC(); }
`
)

func srcABC() []engine.Source {
	return []engine.Source{
		{Name: "a.mcc", Text: fileA},
		{Name: "b.mcc", Text: fileB},
		{Name: "c.mcc", Text: fileC},
	}
}

var rta = deadmember.Options{CallGraph: callgraph.RTA}

// TestParseWorkerPanicSalvage injects a panic into the parse worker for
// b.mcc and asserts: the run completes, the panicking file is reported as
// a structured diagnostic, and the analysis of every other file is
// byte-identical to a clean compile that never saw b.mcc.
func TestParseWorkerPanicSalvage(t *testing.T) {
	cfg := engine.Config{Workers: 4, ParseFault: func(name string) {
		if name == "b.mcc" {
			panic("injected parse fault")
		}
	}}
	faulty := engine.Compile(cfg, srcABC()...)
	if err := faulty.Err(); err != nil {
		t.Fatalf("salvaged compile reports source errors: %v", err)
	}
	if !faulty.Degraded() || len(faulty.Failures) != 1 {
		t.Fatalf("failures = %v, want exactly one", faulty.Failures)
	}
	f := faulty.Failures[0]
	if f.Stage != "parse" || f.Unit != "b.mcc" || !strings.Contains(f.Value, "injected parse fault") {
		t.Fatalf("failure = %+v", f)
	}
	if f.Stack == "" {
		t.Fatal("failure is missing a stack digest")
	}
	if !strings.Contains(f.Error(), "b.mcc") || strings.Contains(f.Error(), "\n") {
		t.Fatalf("Error() must be a one-line diagnostic naming the file, got %q", f.Error())
	}

	clean := engine.Compile(engine.Config{Workers: 4},
		engine.Source{Name: "a.mcc", Text: fileA},
		engine.Source{Name: "c.mcc", Text: fileC})
	if err := clean.Err(); err != nil {
		t.Fatalf("clean compile failed: %v", err)
	}
	got := renderResult(faulty.Analyze(rta))
	want := renderResult(clean.Analyze(rta))
	if got != want {
		t.Fatalf("salvaged analysis differs from clean run:\n got:\n%s\n want:\n%s", got, want)
	}
}

// TestLivenessShardPanicSalvage injects a panic into the liveness
// processing of Alpha::getA through the engine configuration and asserts
// the run completes with a structured failure while every other member's
// classification matches a clean run.
func TestLivenessShardPanicSalvage(t *testing.T) {
	srcs := srcABC()
	clean := engine.Compile(engine.Config{Workers: 4}, srcs...).Analyze(rta)

	cfg := engine.Config{Workers: 4, FuncFault: func(f *types.Func) {
		if f.QualifiedName() == "Alpha::getA" {
			panic("injected liveness fault")
		}
	}}
	comp := engine.Compile(cfg, srcs...)
	res := comp.Analyze(rta)
	if len(res.Failures) != 1 || res.Failures[0].Stage != "liveness" || res.Failures[0].Unit != "Alpha::getA" {
		t.Fatalf("failures = %v, want one liveness failure for Alpha::getA", res.Failures)
	}
	usedA := res.Program.ClassByName["Alpha"].FieldByName("usedA")
	if res.MarkOf(usedA).Live {
		t.Error("Alpha::usedA still live although its only reader faulted")
	}
	for _, c := range res.Program.Classes {
		for _, fld := range c.Fields {
			if fld.QualifiedName() == "Alpha::usedA" {
				continue
			}
			cc := clean.Program.ClassByName[c.Name]
			cf := cc.FieldByName(fld.Name)
			got, want := res.MarkOf(fld), clean.MarkOf(cf)
			if got.Live != want.Live || got.Reason != want.Reason {
				t.Errorf("%s = %+v, clean run has %+v", fld.QualifiedName(), got, want)
			}
		}
	}
}

// TestProfileDeadline: a cancelled context aborts a long Profile run
// within its deadline (polled at the interpreter's step boundary).
func TestProfileDeadline(t *testing.T) {
	comp := engine.Compile(engine.Config{}, engine.Source{Name: "spin.mcc", Text: `
int main() { int n = 0; while (true) { n = n + 1; } return n; }
`})
	if err := comp.Err(); err != nil {
		t.Fatalf("compile failed: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := comp.ProfileContext(ctx, rta, dynprof.Options{})
	if err == nil {
		t.Fatal("expected the deadline to abort the run")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("run took %v to honor a 50ms deadline", elapsed)
	}
}

// TestCompileContextCancelled: an already-cancelled context aborts the
// frontend between work items, and Err reports the cancellation.
func TestCompileContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := engine.CompileContext(ctx, engine.Config{Workers: 4}, srcABC()...)
	if c.CancelErr() == nil || !errors.Is(c.Err(), context.Canceled) {
		t.Fatalf("CancelErr = %v, Err = %v, want context.Canceled", c.CancelErr(), c.Err())
	}
	if c.Program == nil || c.Hierarchy == nil {
		t.Fatal("cancelled compile must still return a well-formed (empty) artifact")
	}
}

// TestSessionDoesNotCachePoisonedCompiles: cancelled and degraded
// artifacts are handed back but never cached, so the next request for the
// same content gets a fresh attempt.
func TestSessionDoesNotCachePoisonedCompiles(t *testing.T) {
	// Cancelled compiles are not cached.
	s := engine.NewSession(engine.Config{Workers: 4})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if c := s.CompileContext(ctx, srcABC()...); c.CancelErr() == nil {
		t.Fatal("expected a cancelled compile")
	}
	fresh := s.Compile(srcABC()...)
	if fresh.CancelErr() != nil || fresh.Err() != nil {
		t.Fatalf("recompile after cancellation failed: %v", fresh.Err())
	}
	if st := s.Stats(); st.Hits != 0 || st.Compiles != 2 {
		t.Fatalf("stats = %+v, want 2 compiles and no hits", st)
	}

	// Degraded compiles are not cached either.
	s2 := engine.NewSession(engine.Config{Workers: 4, ParseFault: func(name string) {
		if name == "b.mcc" {
			panic("injected parse fault")
		}
	}})
	if c := s2.Compile(srcABC()...); !c.Degraded() {
		t.Fatal("expected a degraded compile")
	}
	s2.Compile(srcABC()...)
	if st := s2.Stats(); st.Hits != 0 || st.Compiles != 2 {
		t.Fatalf("stats = %+v, want 2 compiles and no hits (degraded never cached)", st)
	}
}
