package engine_test

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"deadmembers/internal/bench"
	"deadmembers/internal/callgraph"
	"deadmembers/internal/deadmember"
	"deadmembers/internal/engine"
	"deadmembers/internal/frontend"
	"deadmembers/internal/strip"
)

// renderResult serializes every member's classification — liveness,
// reason, and witness position — into one deterministic string, so two
// analyses can be compared byte-for-byte.
func renderResult(res *deadmember.Result) string {
	var b strings.Builder
	for _, c := range res.Program.Classes {
		for _, f := range c.Fields {
			m := res.MarkOf(f)
			fmt.Fprintf(&b, "%-40s live=%-5v reason=%-28s witness=%s\n",
				f.QualifiedName(), m.Live, m.Reason, res.Program.FileSet.Position(m.Witness))
		}
	}
	b.WriteString("dead:")
	for _, f := range res.DeadMembers() {
		b.WriteString(" " + f.QualifiedName())
	}
	b.WriteString("\n")
	return b.String()
}

// TestParallelDeterminism is the engine's core guarantee: analysis of the
// full corpus yields byte-identical dead-member lists, reasons, and
// witnesses at GOMAXPROCS (and worker counts) 1, 4, and N — and a cached
// re-analysis equals a fresh one.
func TestParallelDeterminism(t *testing.T) {
	n := runtime.GOMAXPROCS(0)
	configs := []int{1, 4, n}

	for _, bm := range bench.All() {
		var want string
		for _, procs := range configs {
			prev := runtime.GOMAXPROCS(procs)
			c := engine.Compile(engine.Config{Workers: procs}, bm.Sources...)
			if err := c.Err(); err != nil {
				runtime.GOMAXPROCS(prev)
				t.Fatalf("%s: %v", bm.Name, err)
			}
			got := renderResult(c.Analyze(deadmember.Options{CallGraph: callgraph.RTA}))

			// A second analysis of the same compilation hits the cached
			// call graph; it must equal the fresh one exactly.
			again := renderResult(c.Analyze(deadmember.Options{CallGraph: callgraph.RTA}))
			runtime.GOMAXPROCS(prev)
			if got != again {
				t.Fatalf("%s: cached re-analysis differs from fresh at %d workers", bm.Name, procs)
			}

			if want == "" {
				want = got
			} else if got != want {
				t.Fatalf("%s: result at %d workers differs from sequential:\n--- want ---\n%s--- got ---\n%s",
					bm.Name, procs, want, got)
			}
		}

		// The engine must also agree byte-for-byte with the original
		// sequential frontend + analysis path.
		fr := frontend.Compile(bm.Sources...)
		if err := fr.Err(); err != nil {
			t.Fatalf("%s: %v", bm.Name, err)
		}
		seed := renderResult(deadmember.Analyze(fr.Program, fr.Graph, deadmember.Options{CallGraph: callgraph.RTA}))
		if seed != want {
			t.Fatalf("%s: engine result differs from the sequential frontend path", bm.Name)
		}
	}
}

// TestParallelDeterminismAcrossOptions repeats the check for the ablation
// variants whose reasons are the most order-sensitive (writes-are-uses
// marks on every write; conservative sizeof fans out MarkAllContained).
func TestParallelDeterminismAcrossOptions(t *testing.T) {
	bm, err := bench.ByName("jikes")
	if err != nil {
		t.Fatal(err)
	}
	variants := []deadmember.Options{
		{CallGraph: callgraph.ALL},
		{CallGraph: callgraph.CHA},
		{CallGraph: callgraph.RTA, WritesAreUses: true},
		{CallGraph: callgraph.RTA, Sizeof: deadmember.SizeofConservative},
		{CallGraph: callgraph.RTA, NoDeleteSpecialCase: true},
	}
	for vi, opts := range variants {
		var want string
		for _, workers := range []int{1, 3, 8} {
			c := engine.Compile(engine.Config{Workers: workers}, bm.Sources...)
			if err := c.Err(); err != nil {
				t.Fatal(err)
			}
			got := renderResult(c.Analyze(opts))
			if want == "" {
				want = got
			} else if got != want {
				t.Fatalf("variant %d: result at %d workers diverges", vi, workers)
			}
		}
	}
}

// TestSessionCompileOnce checks the content-hash cache: identical sources
// compile once, different sources miss, and the cached Compilation is the
// same artifact (so its call-graph cache is shared too).
func TestSessionCompileOnce(t *testing.T) {
	s := engine.NewSession(engine.Config{})
	src := frontend.Source{Name: "a.mcc", Text: "class A { public: int x; A() : x(1) {} }; int main() { A a; return 0; }"}

	c1 := s.Compile(src)
	c2 := s.Compile(src)
	if c1 != c2 {
		t.Fatal("identical sources should return the cached Compilation")
	}
	if st := s.Stats(); st.Compiles != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 compile / 1 hit", st)
	}

	// A one-byte change is a different program.
	src2 := src
	src2.Text = strings.Replace(src.Text, "x(1)", "x(2)", 1)
	c3 := s.Compile(src2)
	if c3 == c1 {
		t.Fatal("changed source must not hit the cache")
	}
	if st := s.Stats(); st.Compiles != 2 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want 2 compiles / 1 hit", st)
	}

	// A cached re-analysis equals a fresh, uncached one.
	fresh := engine.Compile(engine.Config{}, src)
	if renderResult(c1.Analyze(deadmember.Options{})) != renderResult(fresh.Analyze(deadmember.Options{})) {
		t.Fatal("cached compilation's analysis differs from a fresh compile")
	}
}

// TestStripConsumesCompilation: the strip transform rewrites the ASTs, so
// the session must treat the compilation as evicted and recompile.
func TestStripConsumesCompilation(t *testing.T) {
	s := engine.NewSession(engine.Config{})
	src := frontend.Source{Name: "s.mcc", Text: `
class Box { public: int used; int unused; Box() : used(1), unused(2) {} };
int main() { Box b; return b.used; }
`}
	c1 := s.Compile(src)
	out := c1.Strip(deadmember.Options{}, strip.Options{})
	if len(out.RemovedMembers) != 1 || out.RemovedMembers[0] != "Box::unused" {
		t.Fatalf("strip removed %v, want [Box::unused]", out.RemovedMembers)
	}
	if !c1.Consumed() {
		t.Fatal("compilation should be consumed after Strip")
	}
	c2 := s.Compile(src)
	if c2 == c1 {
		t.Fatal("session must recompile a consumed compilation")
	}
	if st := s.Stats(); st.Compiles != 2 {
		t.Fatalf("stats = %+v, want 2 compiles", st)
	}
	// The recompiled artifact still analyzes correctly.
	res := c2.Analyze(deadmember.Options{})
	if got := len(res.DeadMembers()); got != 1 {
		t.Fatalf("recompiled analysis found %d dead members, want 1", got)
	}
}

// TestParallelParseDiagnosticsDeterministic: per-file diagnostic lists
// are merged in file order, so error reports are identical at any worker
// count — including which file's error comes first.
func TestParallelParseDiagnosticsDeterministic(t *testing.T) {
	sources := []frontend.Source{
		{Name: "one.mcc", Text: "class A { public: int x; };\nint broken1() { return $; }\n"},
		{Name: "two.mcc", Text: "int broken2() { return @; }\n"},
		{Name: "three.mcc", Text: "class B : public A { public: int y; };\nint broken3() { return #; }\nint main() { return 0; }\n"},
	}
	var want string
	for _, workers := range []int{1, 2, 8} {
		c := engine.Compile(engine.Config{Workers: workers}, sources...)
		err := c.Err()
		if err == nil {
			t.Fatal("expected parse errors")
		}
		if want == "" {
			want = err.Error()
		} else if err.Error() != want {
			t.Fatalf("diagnostics at %d workers differ:\n--- want ---\n%s\n--- got ---\n%s", workers, want, err.Error())
		}
	}
}

// TestMultiFileEngineCompile: cross-file type references survive the
// parallel prescan/parse split.
func TestMultiFileEngineCompile(t *testing.T) {
	sources := []frontend.Source{
		{Name: "lib.mcc", Text: "class Vec { public: int x; int pad; Vec() : x(3), pad(0) {} };"},
		{Name: "app.mcc", Text: "int main() { Vec v; return v.x - 3; }"},
	}
	c := engine.Compile(engine.Config{Workers: 4}, sources...)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	res := c.Analyze(deadmember.Options{})
	dead := res.DeadMembers()
	if len(dead) != 1 || dead[0].QualifiedName() != "Vec::pad" {
		t.Fatalf("dead = %v, want [Vec::pad]", dead)
	}
	if r, err := c.Run(); err != nil || r.ExitCode != 0 {
		t.Fatalf("run: %v exit=%d", err, r.ExitCode)
	}
}
