package engine_test

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"deadmembers/internal/engine"
)

// These tests pin the singleflight recovery contract: a leader whose
// compile fails transiently — cancelled by its own context, or degraded
// by a contained panic — must not poison the followers waiting on its
// flight. Followers retry (one of them becomes the new leader) and end
// up with a clean, cacheable artifact.

const transientSrc = `
class T {
public:
	int used;
	int unused;
	T() : used(1), unused(2) {}
};
int main() { T t; return t.used; }
`

func TestFollowersSurviveCancelledLeader(t *testing.T) {
	block := make(chan struct{})
	var parses atomic.Int32
	sess := engine.NewBoundedSession(engine.Config{
		Workers: 1,
		// The first compile (the doomed leader) parks here until its
		// context is cancelled; retries sail through.
		ParseFault: func(string) {
			if parses.Add(1) == 1 {
				<-block
			}
		},
	}, engine.Limits{})
	src := engine.Source{Name: "t.mcc", Text: transientSrc}

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderDone := make(chan *engine.Compilation, 1)
	go func() { leaderDone <- sess.CompileContext(leaderCtx, src) }()

	deadline := time.Now().Add(5 * time.Second)
	for parses.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("leader never reached the frontend")
		}
		time.Sleep(time.Millisecond)
	}

	// Followers with healthy contexts join the in-flight compile.
	const n = 4
	var wg sync.WaitGroup
	followers := make([]*engine.Compilation, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			followers[i] = sess.CompileContext(context.Background(), src)
		}(i)
	}
	time.Sleep(20 * time.Millisecond) // let them reach the wait

	cancelLeader()
	close(block)
	wg.Wait()

	leader := <-leaderDone
	if leader.CancelErr() == nil {
		t.Error("leader was not cancelled; test lost its premise")
	}
	for i, c := range followers {
		if err := c.Err(); err != nil {
			t.Fatalf("follower %d: %v", i, err)
		}
		if c.CancelErr() != nil {
			t.Errorf("follower %d inherited the leader's cancellation", i)
		}
		if c.Degraded() {
			t.Errorf("follower %d got a degraded artifact", i)
		}
	}

	st := sess.Stats()
	if st.Entries != 1 {
		t.Errorf("Entries = %d, want 1 (the retry's clean artifact)", st.Entries)
	}
	// The cancelled leader's compile plus at least one clean retry; the
	// followers that lost the retry race fold onto it as hits.
	if st.Compiles < 2 {
		t.Errorf("Compiles = %d, want >= 2 (doomed leader + clean retry)", st.Compiles)
	}
	if st.Compiles+st.Hits < n+1 {
		t.Errorf("Compiles+Hits = %d, want >= %d (every caller served)", st.Compiles+st.Hits, n+1)
	}
}

func TestFollowersSurviveDegradedLeader(t *testing.T) {
	block := make(chan struct{})
	var parses atomic.Int32
	sess := engine.NewBoundedSession(engine.Config{
		Workers: 1,
		// The first compile parks until the followers have joined its
		// flight, then panics in the parse worker — contained, so the
		// leader gets a degraded artifact; retries are clean.
		ParseFault: func(string) {
			if parses.Add(1) == 1 {
				<-block
				panic("injected parse fault")
			}
		},
	}, engine.Limits{})
	src := engine.Source{Name: "t.mcc", Text: transientSrc}

	leaderDone := make(chan *engine.Compilation, 1)
	go func() { leaderDone <- sess.CompileContext(context.Background(), src) }()

	deadline := time.Now().Add(5 * time.Second)
	for parses.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("leader never reached the frontend")
		}
		time.Sleep(time.Millisecond)
	}

	const n = 4
	var wg sync.WaitGroup
	followers := make([]*engine.Compilation, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			followers[i] = sess.CompileContext(context.Background(), src)
		}(i)
	}
	time.Sleep(20 * time.Millisecond) // let them reach the wait

	close(block)
	wg.Wait()

	leader := <-leaderDone
	if !leader.Degraded() {
		t.Error("leader was not degraded; test lost its premise")
	}
	for i, c := range followers {
		if err := c.Err(); err != nil {
			t.Fatalf("follower %d: %v", i, err)
		}
		if c.Degraded() {
			t.Errorf("follower %d inherited the leader's degraded artifact", i)
		}
	}
	if st := sess.Stats(); st.Entries != 1 {
		t.Errorf("Entries = %d, want 1 (only the clean retry cached)", st.Entries)
	}
}
