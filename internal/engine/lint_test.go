package engine_test

import (
	"context"
	"testing"

	"deadmembers/internal/callgraph"
	"deadmembers/internal/deadmember"
	"deadmembers/internal/engine"
	"deadmembers/internal/lint"
	"deadmembers/internal/types"
)

const lintSrc = `
class P {
public:
    int x;
    int y;
    P() : x(0), y(0) {}
    int sum() { return x + y; }
};
void overwrite(P* p) {
    p->x = 1;
    p->x = 2;
}
int main() {
    P p;
    overwrite(&p);
    print(p.sum());
    return 0;
}
`

func TestLintTimingsAndFindings(t *testing.T) {
	sess := engine.NewSession(engine.Config{})
	comp := sess.CompileContext(context.Background(), engine.Source{Name: "lint.mcc", Text: lintSrc})
	if err := comp.Err(); err != nil {
		t.Fatal(err)
	}
	res, timings, err := comp.LintContext(context.Background(),
		deadmember.Options{CallGraph: callgraph.RTA}, lint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded() {
		t.Fatalf("degraded: %v", res.Failures)
	}
	if len(res.Findings) != 1 || res.Findings[0].Check != lint.CheckDeadStore {
		t.Fatalf("findings = %v, want one dead store", res.Findings)
	}
	if timings.Lint <= 0 {
		t.Errorf("Timings.Lint not populated: %v", timings.Lint)
	}
	if timings.Total() < timings.Lint {
		t.Errorf("Total() = %v excludes Lint = %v", timings.Total(), timings.Lint)
	}
}

func TestLintFaultContainment(t *testing.T) {
	sess := engine.NewSession(engine.Config{
		LintFault: func(f *types.Func) {
			if f.QualifiedName() == "overwrite" {
				panic("injected lint fault")
			}
		},
	})
	comp := sess.CompileContext(context.Background(), engine.Source{Name: "lint.mcc", Text: lintSrc})
	if err := comp.Err(); err != nil {
		t.Fatal(err)
	}
	res, _, err := comp.LintContext(context.Background(),
		deadmember.Options{CallGraph: callgraph.RTA}, lint.Options{})
	if err != nil {
		t.Fatalf("a contained panic must not become an error: %v", err)
	}
	if !res.Degraded() {
		t.Fatal("injected fault should degrade the lint result")
	}
	found := false
	for _, f := range res.Failures {
		if f.Stage == "lint" && f.Unit == "overwrite" {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing containment record: %v", res.Failures)
	}
}
