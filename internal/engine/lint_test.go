package engine_test

import (
	"context"
	"testing"

	"deadmembers/internal/callgraph"
	"deadmembers/internal/deadmember"
	"deadmembers/internal/engine"
	"deadmembers/internal/heaplive"
	"deadmembers/internal/lint"
	"deadmembers/internal/types"
)

const lintSrc = `
class P {
public:
    int x;
    int y;
    P() : x(0), y(0) {}
    int sum() { return x + y; }
};
void overwrite(P* p) {
    p->x = 1;
    p->x = 2;
}
int main() {
    P p;
    overwrite(&p);
    print(p.sum());
    return 0;
}
`

func TestLintTimingsAndFindings(t *testing.T) {
	sess := engine.NewSession(engine.Config{})
	comp := sess.CompileContext(context.Background(), engine.Source{Name: "lint.mcc", Text: lintSrc})
	if err := comp.Err(); err != nil {
		t.Fatal(err)
	}
	res, timings, err := comp.LintContext(context.Background(),
		deadmember.Options{CallGraph: callgraph.RTA}, lint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded() {
		t.Fatalf("degraded: %v", res.Failures)
	}
	if len(res.Findings) != 1 || res.Findings[0].Check != lint.CheckDeadStore {
		t.Fatalf("findings = %v, want one dead store", res.Findings)
	}
	if timings.Lint <= 0 {
		t.Errorf("Timings.Lint not populated: %v", timings.Lint)
	}
	if timings.Total() < timings.Lint {
		t.Errorf("Total() = %v excludes Lint = %v", timings.Total(), timings.Lint)
	}
}

// lintChainSrc has one chained dead store only the heap tier can see.
const lintChainSrc = `
class Inner {
public:
    int val;
    Inner() : val(0) {}
};
class Outer {
public:
    Inner in;
    int tag;
    Outer() : tag(0) {}
};
int main() {
    Outer o;
    o.in.val = 1;
    o.in.val = 2;
    print(o.in.val + o.tag);
    return 0;
}
`

// TestLintCachePerPrecision exercises the per-compilation lint cache:
// a repeat run at the same tier is a flagged cache hit returning the
// identical result, and the tiers occupy distinct cache entries — the
// heap tier keeps its extra finding on a re-request after a flow run.
func TestLintCachePerPrecision(t *testing.T) {
	sess := engine.NewSession(engine.Config{})
	comp := sess.CompileContext(context.Background(), engine.Source{Name: "chain.mcc", Text: lintChainSrc})
	if err := comp.Err(); err != nil {
		t.Fatal(err)
	}
	opts := deadmember.Options{CallGraph: callgraph.RTA}

	counts := map[heaplive.Precision]int{}
	for _, p := range heaplive.Tiers() {
		first, timings, err := comp.LintContext(context.Background(), opts, lint.Options{Precision: p})
		if err != nil {
			t.Fatal(err)
		}
		if timings.LintCached {
			t.Fatalf("%s tier: first run flagged as cached", p)
		}
		again, timings, err := comp.LintContext(context.Background(), opts, lint.Options{Precision: p})
		if err != nil {
			t.Fatal(err)
		}
		if !timings.LintCached || timings.Lint != 0 {
			t.Fatalf("%s tier: repeat run not served from cache (cached=%v lint=%v)",
				p, timings.LintCached, timings.Lint)
		}
		if again != first {
			t.Fatalf("%s tier: cache returned a different result", p)
		}
		counts[p] = len(first.Findings)
	}
	if !(counts[heaplive.PrecisionHeap] > counts[heaplive.PrecisionFlow]) {
		t.Fatalf("heap tier collided with flow in the cache: heap=%d flow=%d",
			counts[heaplive.PrecisionHeap], counts[heaplive.PrecisionFlow])
	}

	// Distinct budgets must not collide either.
	_, timings, err := comp.LintContext(context.Background(), opts, lint.Options{Budget: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if timings.LintCached {
		t.Fatal("budget change served from the old cache entry")
	}
}

func TestLintFaultContainment(t *testing.T) {
	sess := engine.NewSession(engine.Config{
		LintFault: func(f *types.Func) {
			if f.QualifiedName() == "overwrite" {
				panic("injected lint fault")
			}
		},
	})
	comp := sess.CompileContext(context.Background(), engine.Source{Name: "lint.mcc", Text: lintSrc})
	if err := comp.Err(); err != nil {
		t.Fatal(err)
	}
	res, _, err := comp.LintContext(context.Background(),
		deadmember.Options{CallGraph: callgraph.RTA}, lint.Options{})
	if err != nil {
		t.Fatalf("a contained panic must not become an error: %v", err)
	}
	if !res.Degraded() {
		t.Fatal("injected fault should degrade the lint result")
	}
	found := false
	for _, f := range res.Failures {
		if f.Stage == "lint" && f.Unit == "overwrite" {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing containment record: %v", res.Failures)
	}
}
