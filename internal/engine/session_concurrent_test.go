package engine_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"deadmembers/internal/engine"
)

// program returns a small but non-trivial MC++ source whose class name is
// salted by n, so distinct n produce distinct fingerprints.
func program(n int) engine.Source {
	text := fmt.Sprintf(`
class C%d {
public:
	int used;
	int unused;
	C%d() : used(%d), unused(0) {}
};
int main() {
	C%d c;
	return c.used;
}
`, n, n, n, n)
	return engine.Source{Name: fmt.Sprintf("p%d.mcc", n), Text: text}
}

// TestSessionConcurrentCompile hammers one session from many goroutines
// with a mix of identical and distinct inputs and asserts the compile
// counter shows exactly one frontend run per distinct fingerprint: the
// cache absorbs repeats and singleflight absorbs concurrent misses. Run
// with -race this also exercises the locking of the LRU and inflight maps.
func TestSessionConcurrentCompile(t *testing.T) {
	const (
		distinct   = 4
		goroutines = 64
		rounds     = 8
	)
	s := engine.NewSession(engine.Config{Workers: 1})

	// Pin every goroutine to the same start line so the very first round
	// races identical fingerprints through the singleflight path.
	start := make(chan struct{})
	comps := make([][]*engine.Compilation, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for r := 0; r < rounds; r++ {
				src := program((g + r) % distinct)
				c := s.Compile(src)
				if err := c.Err(); err != nil {
					t.Errorf("goroutine %d round %d: %v", g, r, err)
					return
				}
				comps[g] = append(comps[g], c)
			}
		}(g)
	}
	close(start)
	wg.Wait()

	st := s.Stats()
	if st.Compiles != distinct {
		t.Errorf("Compiles = %d, want %d (duplicate frontend runs for identical inputs)", st.Compiles, distinct)
	}
	if want := goroutines*rounds - distinct; st.Hits != want {
		t.Errorf("Hits = %d, want %d", st.Hits, want)
	}
	if st.Entries != distinct {
		t.Errorf("Entries = %d, want %d", st.Entries, distinct)
	}

	// Identical fingerprints must share one artifact (pointer-identical),
	// so call-graph caches are shared too.
	byKey := map[string]*engine.Compilation{}
	for _, list := range comps {
		for _, c := range list {
			if prev, ok := byKey[c.Fingerprint]; ok && prev != c {
				t.Fatalf("two distinct Compilations for fingerprint %s", c.Fingerprint)
			}
			byKey[c.Fingerprint] = c
		}
	}
}

// TestSessionBoundedEviction checks the LRU byte bound: inserting past
// MaxEntries evicts the least-recently-used entry and the byte gauge
// tracks the retained sources.
func TestSessionBoundedEviction(t *testing.T) {
	s := engine.NewBoundedSession(engine.Config{Workers: 1}, engine.Limits{MaxEntries: 2})
	a, b, c := program(0), program(1), program(2)

	s.Compile(a)
	s.Compile(b)
	s.Compile(a) // touch a: b becomes the LRU victim
	s.Compile(c) // evicts b
	if st := s.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("after overflow: Evictions=%d Entries=%d, want 1, 2", st.Evictions, st.Entries)
	}
	s.Compile(a)
	if st := s.Stats(); st.Compiles != 3 {
		t.Errorf("a should still be cached: Compiles=%d, want 3", st.Compiles)
	}
	s.Compile(b)
	if st := s.Stats(); st.Compiles != 4 {
		t.Errorf("b should have been evicted: Compiles=%d, want 4", st.Compiles)
	}

	wantBytes := sourcesCost(a) + sourcesCost(b)
	if st := s.Stats(); st.Bytes != wantBytes {
		t.Errorf("Bytes=%d, want %d", st.Bytes, wantBytes)
	}
}

// TestSessionByteBound checks MaxBytes-driven eviction and the
// never-cacheable oversized path.
func TestSessionByteBound(t *testing.T) {
	a, b := program(0), program(1)
	s := engine.NewBoundedSession(engine.Config{Workers: 1},
		engine.Limits{MaxBytes: sourcesCost(a) + sourcesCost(b) - 1})
	s.Compile(a)
	s.Compile(b) // pushes total past MaxBytes → a evicted
	st := s.Stats()
	if st.Evictions != 1 || st.Entries != 1 || st.Bytes != sourcesCost(b) {
		t.Fatalf("Evictions=%d Entries=%d Bytes=%d, want 1, 1, %d",
			st.Evictions, st.Entries, st.Bytes, sourcesCost(b))
	}

	tiny := engine.NewBoundedSession(engine.Config{Workers: 1}, engine.Limits{MaxBytes: 1})
	tiny.Compile(a)
	tiny.Compile(a) // oversized entries are never cached: second call recompiles
	if st := tiny.Stats(); st.Compiles != 2 || st.Entries != 0 {
		t.Errorf("oversized input: Compiles=%d Entries=%d, want 2, 0", st.Compiles, st.Entries)
	}
}

// TestSessionWaiterCancellation: a waiter whose context dies while the
// leader compiles gets its own cancelled artifact instead of blocking.
func TestSessionWaiterCancellation(t *testing.T) {
	gate := make(chan struct{})
	var once sync.Once
	s := engine.NewSession(engine.Config{
		Workers: 1,
		ParseFault: func(string) {
			once.Do(func() { <-gate }) // block only the leader's compile
		},
	})
	src := program(7)

	leaderDone := make(chan *engine.Compilation)
	go func() { leaderDone <- s.Compile(src) }()

	// Wait until the leader is inside the frontend, then join as a waiter
	// with an already-doomed context.
	time.Sleep(20 * time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	waiter := s.CompileContext(ctx, src)
	if waiter.CancelErr() == nil {
		t.Errorf("cancelled waiter should report CancelErr, got nil")
	}

	close(gate)
	leader := <-leaderDone
	if err := leader.Err(); err != nil {
		t.Errorf("leader compile failed: %v", err)
	}
}

func sourcesCost(s engine.Source) int64 {
	return int64(len(s.Name)) + int64(len(s.Text))
}
