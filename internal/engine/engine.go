// Package engine is the staged analysis pipeline behind the public API:
//
//	Lex/Parse → Sema → CallGraph → Liveness → Profile/Strip
//
// It exists so callers compile once and analyze many times. The frontend
// stages produce an explicit Compilation artifact; the analysis stages run
// against it under any number of deadmember.Options without re-lexing,
// re-parsing, or re-typechecking. On top of that the engine provides:
//
//   - parallel per-file parsing through a bounded worker pool;
//   - a parallel liveness pass (see internal/deadmember/parallel.go) whose
//     Result is byte-identical regardless of worker count;
//   - a per-Compilation call-graph cache keyed by the options that affect
//     graph construction (mode + library classes), so ablation sweeps that
//     vary only marking rules share one graph;
//   - a content-hash-keyed Session cache (see session.go) so repeated
//     compilations of identical sources skip the frontend entirely;
//   - wall-clock timings for every stage, so speedups are observable
//     without a profiler.
package engine

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"deadmembers/internal/ast"
	"deadmembers/internal/callgraph"
	"deadmembers/internal/deadmember"
	"deadmembers/internal/dynprof"
	"deadmembers/internal/failure"
	"deadmembers/internal/frontend"
	"deadmembers/internal/hierarchy"
	"deadmembers/internal/interp"
	"deadmembers/internal/lint"
	"deadmembers/internal/parser"
	"deadmembers/internal/sema"
	"deadmembers/internal/source"
	"deadmembers/internal/strip"
	"deadmembers/internal/types"
)

// Source is one named MC++ source file (re-exported from the frontend so
// engine callers need only this package).
type Source = frontend.Source

// Config controls pipeline execution, never results.
type Config struct {
	// Workers bounds the parallelism of the parse and liveness stages.
	// 0 means GOMAXPROCS; 1 forces sequential execution.
	Workers int

	// ParseFault, when non-nil, runs inside each parse worker's
	// containment boundary just before the named file is parsed. Tests
	// use it to inject a panic into a chosen parse worker.
	ParseFault func(fileName string)

	// FuncFault, when non-nil, is passed to the liveness pass as
	// deadmember.Exec.FuncFault (fault injection into a liveness shard).
	FuncFault func(*types.Func)

	// LintFault, when non-nil, is passed to the lint pass as
	// lint.Exec.FuncFault (fault injection into a lint worker).
	LintFault func(*types.Func)
}

func (c Config) workers() int {
	if c.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Workers
}

// Timings records per-stage wall-clock durations. Parse and Sema are
// properties of the Compilation; CallGraph and Liveness of one Analyze
// call (CallGraph is zero when the graph came from the per-compilation
// cache, flagged by CallGraphCached).
type Timings struct {
	Parse     time.Duration // lexing + type prescan + parsing (parallel wall clock)
	Sema      time.Duration
	CallGraph time.Duration
	Liveness  time.Duration
	Lint      time.Duration // flow-sensitive pass; zero unless Lint ran

	CallGraphCached bool
	// LintCached reports that the lint result came from the
	// per-compilation cache (Lint is zero then); the cache key includes
	// the precision tier, so tiers never collide.
	LintCached bool
}

// Add accumulates other into t (for corpus-wide summaries).
func (t *Timings) Add(other Timings) {
	t.Parse += other.Parse
	t.Sema += other.Sema
	t.CallGraph += other.CallGraph
	t.Liveness += other.Liveness
	t.Lint += other.Lint
}

// Total sums the stage durations.
func (t Timings) Total() time.Duration {
	return t.Parse + t.Sema + t.CallGraph + t.Liveness + t.Lint
}

// Compilation is the immutable artifact of the frontend stages: a typed
// program plus everything needed to analyze it repeatedly.
type Compilation struct {
	Program   *types.Program
	Hierarchy *hierarchy.Graph
	FileSet   *source.FileSet
	Diags     *source.DiagnosticList

	// Sources are the inputs, retained so transforms can recompile.
	Sources []Source

	// Fingerprint is the content hash keying the session cache.
	Fingerprint string

	// Failures records panics contained during the frontend stages (one
	// per faulted parse worker, or one for a faulted sema pass). The
	// faulted unit's results are replaced by an empty salvage value and
	// every other unit's results are kept, so the artifact is usable but
	// Degraded: treat its analysis output as incomplete.
	Failures []*failure.Failure

	cfg       Config
	timings   Timings // Parse + Sema only
	consumed  bool    // set by Strip: the ASTs were mutated
	cancelErr error   // context error that aborted Compile, if any

	mu     sync.Mutex
	graphs map[string]*callgraph.Graph
	lints  map[string]*lintEntry
}

// lintEntry is one cached lint result plus the wall clock of the run
// that produced it.
type lintEntry struct {
	res  *lint.Result
	took time.Duration
}

// Err returns an error if the compile was cancelled or any frontend phase
// reported errors. Contained panics are NOT errors — they mark the
// artifact Degraded while the diagnostics stay about the source program.
func (c *Compilation) Err() error {
	if c.cancelErr != nil {
		return c.cancelErr
	}
	return c.Diags.Err()
}

// CancelErr returns the context error that aborted Compile, or nil.
func (c *Compilation) CancelErr() error { return c.cancelErr }

// Degraded reports whether a frontend stage faulted and was contained.
func (c *Compilation) Degraded() bool { return len(c.Failures) > 0 }

// Timings returns the frontend stage durations of this compilation.
func (c *Compilation) Timings() Timings { return c.timings }

// Compile runs the frontend stages over sources: a parallel type-name
// prescan, parallel per-file parsing (per-file diagnostic lists merged in
// file order, so diagnostics are deterministic), then semantic analysis.
// The result always carries a (possibly partial) program; check Err
// before trusting it.
func Compile(cfg Config, sources ...Source) *Compilation {
	return CompileContext(context.Background(), cfg, sources...)
}

// CompileContext is Compile under a context. Cancellation is checked
// cooperatively between work items in the parse worker pool and between
// stages; a cancelled compile returns early with CancelErr set (and Err
// returning it). Each parse worker and the sema stage run inside a
// recover boundary: a panic is converted into a structured Failure, the
// faulted file salvaged as an empty AST (or the program as an empty
// program for sema), and every other file's results kept.
func CompileContext(ctx context.Context, cfg Config, sources ...Source) *Compilation {
	c := &Compilation{
		Sources:     sources,
		Fingerprint: fingerprint(sources),
		cfg:         cfg,
		graphs:      map[string]*callgraph.Graph{},
		lints:       map[string]*lintEntry{},
	}
	workers := cfg.workers()

	parseStart := time.Now()
	fset := source.NewFileSet()
	diags := source.NewDiagnosticList(fset)
	c.FileSet = fset
	c.Diags = diags
	srcFiles := make([]*source.File, len(sources))
	oversized := make([]bool, len(sources))
	for i, s := range sources {
		srcFiles[i] = fset.AddFile(s.Name, s.Text)
		if err := srcFiles[i].CheckSize(); err != nil {
			oversized[i] = true
			diags.Errorf(srcFiles[i].Pos(0), "%v", err)
		}
	}

	// Stage 1a: pre-scan every file for declared type names, so class
	// names declared in one file are known while parsing the others.
	typeSets := make([]map[string]bool, len(srcFiles))
	ok := parallelFor(ctx, workers, len(srcFiles), func(i int) {
		if oversized[i] {
			return
		}
		typeSets[i] = parser.CollectTypeNames(srcFiles[i])
	})
	if !ok {
		return c.cancelled(ctx)
	}
	allTypes := map[string]bool{}
	for _, set := range typeSets {
		for name := range set {
			allTypes[name] = true
		}
	}

	// Stage 1b: parse each file independently into its own diagnostic
	// list; merge in file order afterwards. A panicking worker is
	// contained: its file degrades to an empty AST (plus the diagnostics
	// it reported before faulting, which are deterministic), and a
	// structured Failure records the fault.
	files := make([]*ast.File, len(srcFiles))
	fileDiags := make([]*source.DiagnosticList, len(srcFiles))
	fileFails := make([]*failure.Failure, len(srcFiles))
	ok = parallelFor(ctx, workers, len(srcFiles), func(i int) {
		fileDiags[i] = source.NewDiagnosticList(fset)
		name := srcFiles[i].Name()
		if oversized[i] {
			files[i] = &ast.File{Name: name}
			return
		}
		fileFails[i] = failure.Catch("parse", name, func() {
			if cfg.ParseFault != nil {
				cfg.ParseFault(name)
			}
			files[i] = parser.ParseFileWithTypes(srcFiles[i], fileDiags[i], allTypes)
		})
		if files[i] == nil {
			files[i] = &ast.File{Name: name}
		}
	})
	for i, dl := range fileDiags {
		if dl != nil {
			diags.Extend(dl)
		}
		if fileFails[i] != nil {
			c.Failures = append(c.Failures, fileFails[i])
		}
	}
	c.timings.Parse = time.Since(parseStart)
	if !ok {
		return c.cancelled(ctx)
	}

	// Stage 2: semantic analysis (whole-program, sequential). A panic
	// degrades the compilation to an empty program; the parse diagnostics
	// are kept.
	semaStart := time.Now()
	var prog *types.Program
	var graph *hierarchy.Graph
	if f := failure.Catch("sema", "program", func() {
		prog, graph = sema.Check(fset, files, diags)
	}); f != nil {
		c.Failures = append(c.Failures, f)
		prog, graph = sema.Check(fset, nil, diags)
	}
	c.timings.Sema = time.Since(semaStart)

	c.Program = prog
	c.Hierarchy = graph
	return c
}

// cancelled finalizes a compilation aborted by ctx: a well-formed but
// empty artifact whose Err and CancelErr report the context error.
func (c *Compilation) cancelled(ctx context.Context) *Compilation {
	c.cancelErr = ctx.Err()
	prog, graph := sema.Check(c.FileSet, nil, source.NewDiagnosticList(c.FileSet))
	c.Program = prog
	c.Hierarchy = graph
	return c
}

// parallelFor runs fn(0..n-1) on up to `workers` goroutines, stopping
// early — between items, never mid-item — once ctx is cancelled. It
// reports whether every item ran. With one worker (or one item) it runs
// inline, keeping single-threaded traces clean.
func parallelFor(ctx context.Context, workers, n int, fn func(int)) bool {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return false
			}
			fn(i)
		}
		return ctx.Err() == nil
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if ctx.Err() != nil {
					continue // drain without working; feeder stops soon
				}
				fn(i)
			}
		}()
	}
	complete := true
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			complete = false
			break
		}
		next <- i
	}
	close(next)
	wg.Wait()
	return complete && ctx.Err() == nil
}

// graphKey identifies the options that affect call-graph construction:
// the mode and the library-class designation (whose virtual overriders
// become extra roots). Marking rules (sizeof, delete, writes-are-uses,
// downcasts) do not change the graph and share cache entries.
func graphKey(opts deadmember.Options) string {
	return opts.CallGraph.String() + "\x00" + strings.Join(opts.LibraryClasses, "\x00")
}

// graphFor returns the call graph for opts, building and caching it on
// first use. The build runs under the compilation lock: hierarchy lookup
// caches are lazily populated during construction, so concurrent builds
// must be serialized.
func (c *Compilation) graphFor(opts deadmember.Options) (g *callgraph.Graph, cached bool, took time.Duration) {
	key := graphKey(opts)
	c.mu.Lock()
	defer c.mu.Unlock()
	if g, ok := c.graphs[key]; ok {
		return g, true, 0
	}
	start := time.Now()
	g = deadmember.BuildGraph(c.Program, c.Hierarchy, opts)
	took = time.Since(start)
	c.graphs[key] = g
	return g, false, took
}

// Analyze runs the dead-data-member analysis against the compilation.
// Repeated calls under different Options reuse the frontend artifact (and
// the call graph, when only marking rules differ).
func (c *Compilation) Analyze(opts deadmember.Options) *deadmember.Result {
	res, _ := c.AnalyzeTimed(opts)
	return res
}

// AnalyzeTimed is Analyze plus the per-stage wall-clock timings of this
// call (Parse/Sema are the compilation's, CallGraph/Liveness this run's).
func (c *Compilation) AnalyzeTimed(opts deadmember.Options) (*deadmember.Result, Timings) {
	res, t, _ := c.analyzeCtx(context.Background(), opts)
	return res, t
}

// AnalyzeContext is Analyze under a context: cancellation is polled
// between functions of the liveness pass, and an interrupted run returns
// the context's error (the partial result must not be trusted).
func (c *Compilation) AnalyzeContext(ctx context.Context, opts deadmember.Options) (*deadmember.Result, error) {
	res, _, err := c.analyzeCtx(ctx, opts)
	return res, err
}

// AnalyzeTimedContext is AnalyzeTimed under a context (see AnalyzeContext).
func (c *Compilation) AnalyzeTimedContext(ctx context.Context, opts deadmember.Options) (*deadmember.Result, Timings, error) {
	return c.analyzeCtx(ctx, opts)
}

func (c *Compilation) analyzeCtx(ctx context.Context, opts deadmember.Options) (*deadmember.Result, Timings, error) {
	t := c.timings
	if err := ctx.Err(); err != nil {
		return nil, t, err
	}
	g, cached, graphTime := c.graphFor(opts)
	t.CallGraph = graphTime
	t.CallGraphCached = cached

	liveStart := time.Now()
	res := deadmember.AnalyzeWith(c.Program, c.Hierarchy, opts, deadmember.Exec{
		Workers:   c.cfg.workers(),
		Graph:     g,
		Ctx:       ctx,
		FuncFault: c.cfg.FuncFault,
	})
	t.Liveness = time.Since(liveStart)
	if res.Interrupted {
		return nil, t, ctx.Err()
	}
	return res, t, nil
}

// Lint runs the flow-sensitive diagnostics (dead-store and
// write-only-member checks) on top of a fresh analysis.
func (c *Compilation) Lint(opts deadmember.Options, lopts lint.Options) *lint.Result {
	res, _, _ := c.LintContext(context.Background(), opts, lopts)
	return res
}

// LintContext is Lint under a context, returning the per-stage timings
// of this call (Lint is the flow-sensitive pass's wall clock; a
// repeated call with the same options is served from the
// per-compilation cache and flagged LintCached). An interrupted run
// returns the context's error and a nil result.
func (c *Compilation) LintContext(ctx context.Context, opts deadmember.Options, lopts lint.Options) (*lint.Result, Timings, error) {
	ar, t, err := c.analyzeCtx(ctx, opts)
	if err != nil {
		return nil, t, err
	}
	lres, took, cached, err := c.lintAnalyzed(ctx, ar, lopts)
	t.Lint = took
	t.LintCached = cached
	return lres, t, err
}

// LintAnalyzed lints an existing analysis result, reusing its call
// graph and dead set instead of re-running liveness. It returns the
// pass's wall clock so callers can fold it into their Timings (zero on
// a lint-cache hit).
func (c *Compilation) LintAnalyzed(ctx context.Context, ar *deadmember.Result, lopts lint.Options) (*lint.Result, time.Duration, error) {
	res, took, _, err := c.lintAnalyzed(ctx, ar, lopts)
	return res, took, err
}

// lintKey identifies everything that can change a lint result: the
// analysis options (call graph, marking rules, libraries) and the lint
// options — budget and, crucially, the precision tier, so tier results
// never collide in the cache.
func lintKey(opts deadmember.Options, lopts lint.Options) string {
	return fmt.Sprintf("%+v\x00%d\x00%s", opts, lopts.Budget, lopts.Precision)
}

func (c *Compilation) lintAnalyzed(ctx context.Context, ar *deadmember.Result, lopts lint.Options) (*lint.Result, time.Duration, bool, error) {
	key := lintKey(ar.Options, lopts)
	c.mu.Lock()
	if e, ok := c.lints[key]; ok {
		c.mu.Unlock()
		return e.res, 0, true, nil
	}
	c.mu.Unlock()

	start := time.Now()
	res := lint.RunWith(ar, lopts, lint.Exec{
		Workers:   c.cfg.workers(),
		Ctx:       ctx,
		FuncFault: c.cfg.LintFault,
	})
	took := time.Since(start)
	if res.Interrupted {
		return nil, took, false, ctx.Err()
	}
	// Cache only clean results: degraded ones may reflect injected
	// faults, and interrupted ones are partial.
	if !res.Degraded() {
		c.mu.Lock()
		c.lints[key] = &lintEntry{res: res, took: took}
		c.mu.Unlock()
	}
	return res, took, false, nil
}

// Profile analyzes and then executes the program with an instrumented
// heap, attributing bytes to the dead members found.
func (c *Compilation) Profile(opts deadmember.Options, dopts dynprof.Options) (*dynprof.Profile, error) {
	return c.ProfileContext(context.Background(), opts, dopts)
}

// ProfileContext is Profile under a context: the analysis polls it
// between liveness functions and the instrumented execution polls it at
// the interpreter's step boundary, so a deadline bounds the whole run.
func (c *Compilation) ProfileContext(ctx context.Context, opts deadmember.Options, dopts dynprof.Options) (*dynprof.Profile, error) {
	res, err := c.AnalyzeContext(ctx, opts)
	if err != nil {
		return nil, err
	}
	if dopts.Context == nil {
		dopts.Context = ctx
	}
	return dynprof.Run(res, dopts)
}

// Run executes the program without instrumentation.
func (c *Compilation) Run() (*interp.Result, error) {
	return c.RunContext(context.Background())
}

// RunContext is Run under a context, polled at the interpreter's step
// boundary. It uses the tree-walking engine; see RunContextEngine.
func (c *Compilation) RunContext(ctx context.Context) (*interp.Result, error) {
	return c.RunContextEngine(ctx, EngineTree)
}

// Strip analyzes and applies the dead-member elimination transform.
//
// The transform consumes the compilation: it rewrites the ASTs in place
// (see strip.Apply), so this compilation must not be analyzed or executed
// afterwards — recompile Result.Sources instead. Session caches treat a
// consumed compilation as evicted.
func (c *Compilation) Strip(opts deadmember.Options, sopts strip.Options) *strip.Result {
	res, _ := c.StripContext(context.Background(), opts, sopts)
	return res
}

// StripContext is Strip under a context. The analysis polls ctx; a panic
// inside the transform itself is contained and returned as an error (the
// compilation is still consumed — its ASTs may be half-rewritten).
func (c *Compilation) StripContext(ctx context.Context, opts deadmember.Options, sopts strip.Options) (*strip.Result, error) {
	res, err := c.AnalyzeContext(ctx, opts)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.consumed = true
	c.mu.Unlock()
	var out *strip.Result
	if f := failure.Catch("strip", "program", func() {
		out = strip.Apply(res, sopts)
	}); f != nil {
		return nil, f
	}
	return out, nil
}

// Consumed reports whether Strip has invalidated this compilation.
func (c *Compilation) Consumed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.consumed
}

// Fingerprint returns the content hash that keys the session cache (and
// the server's persistent artifact store) for sources, without
// compiling them.
func Fingerprint(sources ...Source) string { return fingerprint(sources) }

// fingerprint hashes the source names and texts (length-prefixed, so
// concatenation ambiguities cannot collide) into a stable hex key.
func fingerprint(sources []Source) string {
	h := sha256.New()
	var lenBuf [8]byte
	writePart := func(s string) {
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(s)))
		h.Write(lenBuf[:])
		h.Write([]byte(s))
	}
	for _, s := range sources {
		writePart(s.Name)
		writePart(s.Text)
	}
	return hex.EncodeToString(h.Sum(nil))
}
