// Package engine is the staged analysis pipeline behind the public API:
//
//	Lex/Parse → Sema → CallGraph → Liveness → Profile/Strip
//
// It exists so callers compile once and analyze many times. The frontend
// stages produce an explicit Compilation artifact; the analysis stages run
// against it under any number of deadmember.Options without re-lexing,
// re-parsing, or re-typechecking. On top of that the engine provides:
//
//   - parallel per-file parsing through a bounded worker pool;
//   - a parallel liveness pass (see internal/deadmember/parallel.go) whose
//     Result is byte-identical regardless of worker count;
//   - a per-Compilation call-graph cache keyed by the options that affect
//     graph construction (mode + library classes), so ablation sweeps that
//     vary only marking rules share one graph;
//   - a content-hash-keyed Session cache (see session.go) so repeated
//     compilations of identical sources skip the frontend entirely;
//   - wall-clock timings for every stage, so speedups are observable
//     without a profiler.
package engine

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"runtime"
	"strings"
	"sync"
	"time"

	"deadmembers/internal/ast"
	"deadmembers/internal/callgraph"
	"deadmembers/internal/deadmember"
	"deadmembers/internal/dynprof"
	"deadmembers/internal/frontend"
	"deadmembers/internal/hierarchy"
	"deadmembers/internal/interp"
	"deadmembers/internal/parser"
	"deadmembers/internal/sema"
	"deadmembers/internal/source"
	"deadmembers/internal/strip"
	"deadmembers/internal/types"
)

// Source is one named MC++ source file (re-exported from the frontend so
// engine callers need only this package).
type Source = frontend.Source

// Config controls pipeline execution, never results.
type Config struct {
	// Workers bounds the parallelism of the parse and liveness stages.
	// 0 means GOMAXPROCS; 1 forces sequential execution.
	Workers int
}

func (c Config) workers() int {
	if c.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Workers
}

// Timings records per-stage wall-clock durations. Parse and Sema are
// properties of the Compilation; CallGraph and Liveness of one Analyze
// call (CallGraph is zero when the graph came from the per-compilation
// cache, flagged by CallGraphCached).
type Timings struct {
	Parse     time.Duration // lexing + type prescan + parsing (parallel wall clock)
	Sema      time.Duration
	CallGraph time.Duration
	Liveness  time.Duration

	CallGraphCached bool
}

// Add accumulates other into t (for corpus-wide summaries).
func (t *Timings) Add(other Timings) {
	t.Parse += other.Parse
	t.Sema += other.Sema
	t.CallGraph += other.CallGraph
	t.Liveness += other.Liveness
}

// Total sums the stage durations.
func (t Timings) Total() time.Duration {
	return t.Parse + t.Sema + t.CallGraph + t.Liveness
}

// Compilation is the immutable artifact of the frontend stages: a typed
// program plus everything needed to analyze it repeatedly.
type Compilation struct {
	Program   *types.Program
	Hierarchy *hierarchy.Graph
	FileSet   *source.FileSet
	Diags     *source.DiagnosticList

	// Sources are the inputs, retained so transforms can recompile.
	Sources []Source

	// Fingerprint is the content hash keying the session cache.
	Fingerprint string

	cfg      Config
	timings  Timings // Parse + Sema only
	consumed bool    // set by Strip: the ASTs were mutated

	mu     sync.Mutex
	graphs map[string]*callgraph.Graph
}

// Err returns an error if any frontend phase reported errors.
func (c *Compilation) Err() error { return c.Diags.Err() }

// Timings returns the frontend stage durations of this compilation.
func (c *Compilation) Timings() Timings { return c.timings }

// Compile runs the frontend stages over sources: a parallel type-name
// prescan, parallel per-file parsing (per-file diagnostic lists merged in
// file order, so diagnostics are deterministic), then semantic analysis.
// The result always carries a (possibly partial) program; check Err
// before trusting it.
func Compile(cfg Config, sources ...Source) *Compilation {
	c := &Compilation{
		Sources:     sources,
		Fingerprint: fingerprint(sources),
		cfg:         cfg,
		graphs:      map[string]*callgraph.Graph{},
	}
	workers := cfg.workers()

	parseStart := time.Now()
	fset := source.NewFileSet()
	diags := source.NewDiagnosticList(fset)
	srcFiles := make([]*source.File, len(sources))
	for i, s := range sources {
		srcFiles[i] = fset.AddFile(s.Name, s.Text)
	}

	// Stage 1a: pre-scan every file for declared type names, so class
	// names declared in one file are known while parsing the others.
	typeSets := make([]map[string]bool, len(srcFiles))
	parallelFor(workers, len(srcFiles), func(i int) {
		typeSets[i] = parser.CollectTypeNames(srcFiles[i])
	})
	allTypes := map[string]bool{}
	for _, set := range typeSets {
		for name := range set {
			allTypes[name] = true
		}
	}

	// Stage 1b: parse each file independently into its own diagnostic
	// list; merge in file order afterwards.
	files := make([]*ast.File, len(srcFiles))
	fileDiags := make([]*source.DiagnosticList, len(srcFiles))
	parallelFor(workers, len(srcFiles), func(i int) {
		fileDiags[i] = source.NewDiagnosticList(fset)
		files[i] = parser.ParseFileWithTypes(srcFiles[i], fileDiags[i], allTypes)
	})
	for _, dl := range fileDiags {
		diags.Extend(dl)
	}
	c.timings.Parse = time.Since(parseStart)

	// Stage 2: semantic analysis (whole-program, sequential).
	semaStart := time.Now()
	prog, graph := sema.Check(fset, files, diags)
	c.timings.Sema = time.Since(semaStart)

	c.Program = prog
	c.Hierarchy = graph
	c.FileSet = fset
	c.Diags = diags
	return c
}

// parallelFor runs fn(0..n-1) on up to `workers` goroutines. With one
// worker (or one item) it runs inline, keeping single-threaded traces
// clean.
func parallelFor(workers, n int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// graphKey identifies the options that affect call-graph construction:
// the mode and the library-class designation (whose virtual overriders
// become extra roots). Marking rules (sizeof, delete, writes-are-uses,
// downcasts) do not change the graph and share cache entries.
func graphKey(opts deadmember.Options) string {
	return opts.CallGraph.String() + "\x00" + strings.Join(opts.LibraryClasses, "\x00")
}

// graphFor returns the call graph for opts, building and caching it on
// first use. The build runs under the compilation lock: hierarchy lookup
// caches are lazily populated during construction, so concurrent builds
// must be serialized.
func (c *Compilation) graphFor(opts deadmember.Options) (g *callgraph.Graph, cached bool, took time.Duration) {
	key := graphKey(opts)
	c.mu.Lock()
	defer c.mu.Unlock()
	if g, ok := c.graphs[key]; ok {
		return g, true, 0
	}
	start := time.Now()
	g = deadmember.BuildGraph(c.Program, c.Hierarchy, opts)
	took = time.Since(start)
	c.graphs[key] = g
	return g, false, took
}

// Analyze runs the dead-data-member analysis against the compilation.
// Repeated calls under different Options reuse the frontend artifact (and
// the call graph, when only marking rules differ).
func (c *Compilation) Analyze(opts deadmember.Options) *deadmember.Result {
	res, _ := c.AnalyzeTimed(opts)
	return res
}

// AnalyzeTimed is Analyze plus the per-stage wall-clock timings of this
// call (Parse/Sema are the compilation's, CallGraph/Liveness this run's).
func (c *Compilation) AnalyzeTimed(opts deadmember.Options) (*deadmember.Result, Timings) {
	t := c.timings
	g, cached, graphTime := c.graphFor(opts)
	t.CallGraph = graphTime
	t.CallGraphCached = cached

	liveStart := time.Now()
	res := deadmember.AnalyzeWith(c.Program, c.Hierarchy, opts, deadmember.Exec{
		Workers: c.cfg.workers(),
		Graph:   g,
	})
	t.Liveness = time.Since(liveStart)
	return res, t
}

// Profile analyzes and then executes the program with an instrumented
// heap, attributing bytes to the dead members found.
func (c *Compilation) Profile(opts deadmember.Options, dopts dynprof.Options) (*dynprof.Profile, error) {
	return dynprof.Run(c.Analyze(opts), dopts)
}

// Run executes the program without instrumentation.
func (c *Compilation) Run() (*interp.Result, error) {
	return interp.Run(c.Program, c.Hierarchy, interp.Options{})
}

// Strip analyzes and applies the dead-member elimination transform.
//
// The transform consumes the compilation: it rewrites the ASTs in place
// (see strip.Apply), so this compilation must not be analyzed or executed
// afterwards — recompile Result.Sources instead. Session caches treat a
// consumed compilation as evicted.
func (c *Compilation) Strip(opts deadmember.Options, sopts strip.Options) *strip.Result {
	res := c.Analyze(opts)
	c.mu.Lock()
	c.consumed = true
	c.mu.Unlock()
	return strip.Apply(res, sopts)
}

// Consumed reports whether Strip has invalidated this compilation.
func (c *Compilation) Consumed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.consumed
}

// fingerprint hashes the source names and texts (length-prefixed, so
// concatenation ambiguities cannot collide) into a stable hex key.
func fingerprint(sources []Source) string {
	h := sha256.New()
	var lenBuf [8]byte
	writePart := func(s string) {
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(s)))
		h.Write(lenBuf[:])
		h.Write([]byte(s))
	}
	for _, s := range sources {
		writePart(s.Name)
		writePart(s.Text)
	}
	return hex.EncodeToString(h.Sum(nil))
}
