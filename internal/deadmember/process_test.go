package deadmember_test

import (
	"testing"

	"deadmembers/internal/callgraph"
	"deadmembers/internal/deadmember"
)

// Statement-form coverage: member accesses inside every control-flow
// construct must be classified.

func TestReadsInsideAllStatementForms(t *testing.T) {
	src := `
class S {
public:
	int inIf;
	int inWhile;
	int inDoWhile;
	int inForCond;
	int inForPost;
	int inSwitchExpr;
	int inCaseValueUser;
	int inCaseBody;
	int inReturn;
	int neverRead;
	S() : inIf(1), inWhile(2), inDoWhile(3), inForCond(4), inForPost(5),
		inSwitchExpr(6), inCaseValueUser(7), inCaseBody(8), inReturn(9),
		neverRead(10) {}
};
int main() {
	S s;
	int acc = 0;
	if (s.inIf > 0) { acc = acc + 1; }
	while (s.inWhile > acc) { acc = acc + 1; }
	do { acc = acc + 1; } while (s.inDoWhile > acc);
	for (int i = 0; i < s.inForCond; i = i + s.inForPost) { acc = acc + 1; }
	switch (s.inSwitchExpr) {
	case 6: acc = acc + s.inCaseBody;
	default: acc = acc + 1;
	}
	int limit = s.inCaseValueUser;
	switch (acc > limit ? 1 : 0) {
	case 0:
	case 1: acc = acc + 1;
	}
	s.neverRead = acc; // write only
	return acc + s.inReturn;
}
`
	res := analyze(t, src, deadmember.Options{CallGraph: callgraph.RTA})
	expectDead(t, res, "S::neverRead")
}

func TestDeleteReceiverChains(t *testing.T) {
	// delete of a member reached through a pointer chain: the chain
	// prefix is read, the deleted member itself is not.
	src := `
class Leaf { public: int* buf; Leaf() { buf = (int*)malloc(4); } };
class Mid {
public:
	Leaf* leaf;
	Mid() { leaf = new Leaf(); }
	~Mid() {
		delete mid_release();
	}
	int* mid_release() { return nullptr; }
};
int main() {
	Mid* m = new Mid();
	delete m->leaf->buf;  // buf dead; leaf and m are read to reach it
	m->leaf->buf = nullptr;
	delete m->leaf;
	m->leaf = nullptr;
	delete m;
	return 0;
}
`
	res := analyze(t, src, deadmember.Options{CallGraph: callgraph.RTA})
	leaf := res.Program.ClassByName["Leaf"]
	mid := res.Program.ClassByName["Mid"]
	if !res.IsDead(leaf.FieldByName("buf")) {
		t.Error("Leaf::buf is only deleted/written: dead")
	}
	if res.IsDead(mid.FieldByName("leaf")) {
		t.Error("Mid::leaf is read (to reach buf): live")
	}
}

func TestDeleteThroughCast(t *testing.T) {
	src := `
class H {
public:
	void* raw;
	H() { raw = malloc(8); }
	~H() { delete (int*)raw; }
};
int main() {
	H h;
	return 0;
}
`
	res := analyze(t, src, deadmember.Options{CallGraph: callgraph.RTA})
	h := res.Program.ClassByName["H"]
	if !res.IsDead(h.FieldByName("raw")) {
		t.Error("H::raw flows only into delete (through a cast): dead")
	}
}

func TestReasonAndPolicyStrings(t *testing.T) {
	reasons := map[deadmember.Reason]string{
		deadmember.ReasonRead:            "read",
		deadmember.ReasonAddressTaken:    "address taken",
		deadmember.ReasonPointerToMember: "pointer-to-member",
		deadmember.ReasonUnsafeCast:      "unsafe cast",
		deadmember.ReasonVolatileWrite:   "volatile write",
		deadmember.ReasonUnionClosure:    "union closure",
		deadmember.ReasonLibrary:         "library class",
		deadmember.ReasonSizeof:          "sizeof",
		deadmember.ReasonNone:            "dead",
	}
	for r, want := range reasons {
		if r.String() != want {
			t.Errorf("Reason(%d).String() = %q, want %q", r, r.String(), want)
		}
	}
	if deadmember.SizeofIgnore.String() != "ignore" || deadmember.SizeofConservative.String() != "conservative" {
		t.Error("SizeofPolicy names wrong")
	}
}

func TestUnionWithClassMemberClosure(t *testing.T) {
	// Paper footnote: a union may contain class-typed members whose
	// classes contain members — the closure must reach them all.
	src := `
class Payload { public: int a; int b; };
union U {
	int raw;
	Payload p;
};
int main() {
	U u;
	return u.raw; // raw read -> closure marks Payload::a and Payload::b
}
`
	res := analyze(t, src, deadmember.Options{CallGraph: callgraph.RTA})
	expectDead(t, res)
	pl := res.Program.ClassByName["Payload"]
	for _, name := range []string{"a", "b"} {
		if m := res.MarkOf(pl.FieldByName(name)); !m.Live || m.Reason != deadmember.ReasonUnionClosure {
			t.Errorf("Payload::%s should be live via union closure, got %+v", name, m)
		}
	}
}

func TestAddressOfWholeClassMember(t *testing.T) {
	src := `
class Inner { public: int v; };
class Outer { public: Inner in; int other; };
int use(Inner* p) { return p->v; }
int main() {
	Outer o;
	return use(&o.in); // &o.in: Inner member's address taken
}
`
	res := analyze(t, src, deadmember.Options{CallGraph: callgraph.RTA})
	expectDead(t, res, "Outer::other")
	outer := res.Program.ClassByName["Outer"]
	if m := res.MarkOf(outer.FieldByName("in")); m.Reason != deadmember.ReasonAddressTaken {
		t.Errorf("Outer::in should be address-taken, got %v", m.Reason)
	}
}
