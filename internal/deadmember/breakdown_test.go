package deadmember_test

import (
	"testing"

	"deadmembers/internal/callgraph"
	"deadmembers/internal/deadmember"
)

func TestPerClassBreakdown(t *testing.T) {
	src := `
class Heavy {
public:
	int d1;
	int d2;
	int live;
	Heavy() : d1(1), d2(2), live(3) {}
};
class Clean {
public:
	int a;
	Clean() : a(0) {}
};
class Unused { public: int z; };
int main() {
	Heavy h;
	Clean c;
	return h.live + c.a;
}
`
	res := analyze(t, src, deadmember.Options{CallGraph: callgraph.RTA})
	rows := res.PerClass()
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	// Heavy sorts first (most dead members).
	if rows[0].Class.Name != "Heavy" || rows[0].Dead != 2 || rows[0].Members != 3 {
		t.Fatalf("first row = %+v", rows[0])
	}
	if got := rows[0].DeadPercent(); got < 66 || got > 67 {
		t.Fatalf("Heavy dead%% = %v", got)
	}
	if len(rows[0].DeadFields) != 2 || rows[0].DeadFields[0].Name != "d1" {
		t.Fatalf("dead fields = %v", rows[0].DeadFields)
	}
	for _, row := range rows {
		if row.Class.Name == "Unused" && row.Used {
			t.Error("Unused should not be marked used")
		}
		if row.Class.Name == "Clean" && row.Dead != 0 {
			t.Error("Clean has no dead members")
		}
	}
}

func TestUnreachableFunctions(t *testing.T) {
	src := `
class C {
public:
	int v;
	C() : v(1) {}
	int used() { return v; }
	int neverCalled() { return v * 2; }
};
int deadFreeFn() { return 9; }
int main() {
	C c;
	return c.used();
}
`
	res := analyze(t, src, deadmember.Options{CallGraph: callgraph.RTA})
	var names []string
	for _, f := range res.UnreachableFunctions() {
		names = append(names, f.QualifiedName())
	}
	want := []string{"C::neverCalled", "deadFreeFn"}
	if len(names) != len(want) {
		t.Fatalf("unreachable = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("unreachable = %v, want %v", names, want)
		}
	}
}

func TestAnalysisIsDeterministic(t *testing.T) {
	// Two independent runs over the same program produce identical dead
	// sets and stats (map iteration must not leak into results).
	for i := 0; i < 3; i++ {
		a := analyze(t, figure1, deadmember.Options{CallGraph: callgraph.RTA})
		b := analyze(t, figure1, deadmember.Options{CallGraph: callgraph.RTA})
		da, db := deadNames(a), deadNames(b)
		if len(da) != len(db) {
			t.Fatal("nondeterministic dead set size")
		}
		for j := range da {
			if da[j] != db[j] {
				t.Fatalf("nondeterministic dead sets: %v vs %v", da, db)
			}
		}
		if a.Stats() != b.Stats() {
			t.Fatal("nondeterministic stats")
		}
	}
}
