package deadmember_test

import (
	"context"
	"strings"
	"testing"

	"deadmembers/internal/callgraph"
	"deadmembers/internal/deadmember"
	"deadmembers/internal/frontend"
	"deadmembers/internal/types"
)

// faultOn returns a FuncFault hook that panics when processing of the
// named function begins.
func faultOn(name string) func(*types.Func) {
	return func(f *types.Func) {
		if f.QualifiedName() == name {
			panic("injected fault in " + name)
		}
	}
}

// TestFuncFaultSalvagesSiblings injects a panic into the liveness
// processing of one function (B::f, the sole reader of B::mb1) and checks,
// for the sequential and several parallel configurations: the run
// completes, the fault is reported as a structured failure, every other
// member's classification is identical to a clean run, and the salvaged
// result is identical across worker counts.
func TestFuncFaultSalvagesSiblings(t *testing.T) {
	r := frontend.Compile(frontend.Source{Name: "test.mcc", Text: figure1})
	if err := r.Err(); err != nil {
		t.Fatalf("compile errors:\n%v", err)
	}
	opts := deadmember.Options{CallGraph: callgraph.RTA}
	clean := deadmember.AnalyzeWith(r.Program, r.Graph, opts, deadmember.Exec{Workers: 4})
	if clean.Degraded() {
		t.Fatalf("clean run reports failures: %v", clean.Failures)
	}

	mb1 := r.Program.ClassByName["B"].FieldByName("mb1")
	var prev *deadmember.Result
	for _, workers := range []int{1, 2, 4} {
		res := deadmember.AnalyzeWith(r.Program, r.Graph, opts,
			deadmember.Exec{Workers: workers, FuncFault: faultOn("B::f")})
		if len(res.Failures) != 1 || !res.Degraded() {
			t.Fatalf("workers=%d: failures = %v, want exactly one", workers, res.Failures)
		}
		f := res.Failures[0]
		if f.Stage != "liveness" || f.Unit != "B::f" || !strings.Contains(f.Value, "injected fault") {
			t.Fatalf("workers=%d: failure = %+v", workers, f)
		}
		// B::mb1's only access lived in the faulted function: it degrades
		// to (unsoundly) dead. Everything else must match the clean run.
		if res.MarkOf(mb1).Live {
			t.Errorf("workers=%d: B::mb1 still live despite its reader faulting", workers)
		}
		for _, c := range res.Program.Classes {
			for _, fld := range c.Fields {
				if fld == mb1 {
					continue
				}
				if got, want := res.MarkOf(fld), clean.MarkOf(fld); got != want {
					t.Errorf("workers=%d: %s = %+v, clean run has %+v", workers, fld.QualifiedName(), got, want)
				}
			}
		}
		if prev != nil {
			for _, c := range res.Program.Classes {
				for _, fld := range c.Fields {
					if res.MarkOf(fld) != prev.MarkOf(fld) {
						t.Errorf("workers=%d: %s differs from previous worker count", workers, fld.QualifiedName())
					}
				}
			}
		}
		prev = res
	}
}

// TestAnalyzeInterrupted: a cancelled context stops the liveness pass and
// flags the result as not trustworthy.
func TestAnalyzeInterrupted(t *testing.T) {
	r := frontend.Compile(frontend.Source{Name: "test.mcc", Text: figure1})
	if err := r.Err(); err != nil {
		t.Fatalf("compile errors:\n%v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		res := deadmember.AnalyzeWith(r.Program, r.Graph,
			deadmember.Options{CallGraph: callgraph.RTA},
			deadmember.Exec{Workers: workers, Ctx: ctx})
		if !res.Interrupted {
			t.Errorf("workers=%d: cancelled context did not interrupt the pass", workers)
		}
	}
}
