package deadmember

import (
	"fmt"
	"sync"

	"deadmembers/internal/failure"
	"deadmembers/internal/types"
)

// This file implements the parallel liveness pass: lines 6-8 of the
// paper's Figure 2 sharded across worker goroutines.
//
// The sequential loop's only order-sensitive output is the Reason/Witness
// pair recorded for each member — markLive keeps the *first* access that
// made a member live, in the deterministic ReachableFuncs order. To keep
// that exact semantics under parallelism:
//
//   - the sorted function list is split into CONTIGUOUS shards, one per
//     worker, each processed in order into a worker-private mark map
//     (first-win within the shard);
//   - the shard maps are merged back in shard order, adopting a mark only
//     if the member is not yet live.
//
// Because shards are contiguous blocks of the sequential order, the
// earliest shard containing a mark for a member holds exactly the mark
// the sequential loop would have recorded, so the merged Result is
// byte-identical regardless of the worker count or GOMAXPROCS.
//
// Workers share prog/h/info/res strictly read-only: processFunc touches
// only the side tables of types.Info (plain map reads) and its private
// marks/visited maps, so the pass is race-free by construction (guarded
// by the engine's -race test).
//
// Failure containment: each shard runs inside one recover boundary (cheap:
// a single defer on the hot path). If the shard faults, its partial sink
// is discarded and the shard's functions are reprocessed in order, each
// inside its own boundary, into a fresh sink. The faulting function panics
// at the same point on retry (processFunc is deterministic), so the retry
// sink holds exactly what a sequential guarded run would have recorded:
// every other function's marks, plus the faulting function's pre-fault
// marks. Salvaged results therefore stay deterministic. Per-shard failure
// lists are merged in shard order for the same reason.

// processFuncsParallel shards funcs (already in deterministic order)
// across workers and merges the per-worker mark sets into a.marks.
func (a *analysis) processFuncsParallel(funcs []*types.Func, exec Exec) {
	workers := exec.Workers
	if workers > len(funcs) {
		workers = len(funcs)
	}
	shards := make([]map[*types.Field]*Mark, workers)
	shardFails := make([][]*failure.Failure, workers)
	interrupted := make([]bool, workers)
	chunk := (len(funcs) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(funcs) {
			hi = len(funcs)
		}
		if lo >= hi {
			break
		}
		sink := map[*types.Field]*Mark{}
		shards[w] = sink
		wg.Add(1)
		go func(w int, fns []*types.Func, sink map[*types.Field]*Mark) {
			defer wg.Done()
			worker := a.forkWorker(sink)
			crashed := failure.Catch("liveness", fmt.Sprintf("shard %d", w), func() {
				for _, fn := range fns {
					if exec.Ctx != nil && exec.Ctx.Err() != nil {
						interrupted[w] = true
						return
					}
					if exec.FuncFault != nil {
						exec.FuncFault(fn)
					}
					worker.processFunc(fn)
				}
			})
			if crashed == nil {
				return
			}
			// The shard died mid-function: discard its sink and reprocess
			// the shard sequentially with per-function boundaries, which
			// isolates the faulting function(s) and salvages the rest.
			retrySink := map[*types.Field]*Mark{}
			shards[w] = retrySink
			retry := a.forkWorker(retrySink)
			for _, fn := range fns {
				if exec.Ctx != nil && exec.Ctx.Err() != nil {
					interrupted[w] = true
					return
				}
				if pf := retry.processFuncGuarded(fn, exec.FuncFault); pf != nil {
					shardFails[w] = append(shardFails[w], pf)
				}
			}
		}(w, funcs[lo:hi], sink)
	}
	wg.Wait()

	// Deterministic merge: shard order is sequential order, so the first
	// live mark seen here is the one the sequential loop would keep.
	for _, shard := range shards {
		for f, m := range shard {
			if !m.Live {
				continue
			}
			dst := a.marks[f]
			if dst == nil {
				a.marks[f] = m
			} else if !dst.Live {
				*dst = *m
			}
		}
	}
	for _, fs := range shardFails {
		a.res.Failures = append(a.res.Failures, fs...)
	}
	for _, in := range interrupted {
		if in {
			a.res.Interrupted = true
		}
	}
}

// forkWorker builds a worker-private analysis writing marks into sink;
// prog, h, info, opts, and res are shared read-only.
func (a *analysis) forkWorker(sink map[*types.Field]*Mark) *analysis {
	return &analysis{
		prog:    a.prog,
		h:       a.h,
		info:    a.info,
		opts:    a.opts,
		res:     a.res,
		marks:   sink,
		visited: map[*types.Class]bool{},
	}
}
