package deadmember

import (
	"sync"

	"deadmembers/internal/types"
)

// This file implements the parallel liveness pass: lines 6-8 of the
// paper's Figure 2 sharded across worker goroutines.
//
// The sequential loop's only order-sensitive output is the Reason/Witness
// pair recorded for each member — markLive keeps the *first* access that
// made a member live, in the deterministic ReachableFuncs order. To keep
// that exact semantics under parallelism:
//
//   - the sorted function list is split into CONTIGUOUS shards, one per
//     worker, each processed in order into a worker-private mark map
//     (first-win within the shard);
//   - the shard maps are merged back in shard order, adopting a mark only
//     if the member is not yet live.
//
// Because shards are contiguous blocks of the sequential order, the
// earliest shard containing a mark for a member holds exactly the mark
// the sequential loop would have recorded, so the merged Result is
// byte-identical regardless of the worker count or GOMAXPROCS.
//
// Workers share prog/h/info/res strictly read-only: processFunc touches
// only the side tables of types.Info (plain map reads) and its private
// marks/visited maps, so the pass is race-free by construction (guarded
// by the engine's -race test).

// processFuncsParallel shards funcs (already in deterministic order)
// across workers and merges the per-worker mark sets into a.marks.
func (a *analysis) processFuncsParallel(funcs []*types.Func, workers int) {
	if workers > len(funcs) {
		workers = len(funcs)
	}
	shards := make([]map[*types.Field]*Mark, workers)
	chunk := (len(funcs) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(funcs) {
			hi = len(funcs)
		}
		if lo >= hi {
			break
		}
		sink := map[*types.Field]*Mark{}
		shards[w] = sink
		wg.Add(1)
		go func(fns []*types.Func, sink map[*types.Field]*Mark) {
			defer wg.Done()
			worker := &analysis{
				prog:    a.prog,
				h:       a.h,
				info:    a.info,
				opts:    a.opts,
				res:     a.res,
				marks:   sink,
				visited: map[*types.Class]bool{},
			}
			for _, f := range fns {
				worker.processFunc(f)
			}
		}(funcs[lo:hi], sink)
	}
	wg.Wait()

	// Deterministic merge: shard order is sequential order, so the first
	// live mark seen here is the one the sequential loop would keep.
	for _, shard := range shards {
		for f, m := range shard {
			if !m.Live {
				continue
			}
			dst := a.marks[f]
			if dst == nil {
				a.marks[f] = m
			} else if !dst.Live {
				*dst = *m
			}
		}
	}
}
