// Package deadmember implements the dead-data-member detection algorithm of
// Sweeney & Tip, "A Study of Dead Data Members in C++ Applications"
// (PLDI 1998) — the primary contribution of the paper.
//
// A data member m is live if some object's value of m may affect the
// program's observable behaviour; otherwise it is dead. The algorithm
// (paper Figure 2) conservatively approximates deadness:
//
//  1. mark every data member dead;
//  2. build a call graph;
//  3. for every statement of every function reachable from main, mark live
//     every member that is read or whose address is taken — ignoring pure
//     write accesses, and skipping arguments of delete/free;
//  4. handle the C++ dark corners conservatively: qualified accesses,
//     pointer-to-member formation (&C::m), unsafe casts (mark all members
//     of the source type), volatile members (a write marks them live),
//     sizeof (policy-controlled), unions (one live member makes all
//     members live), and library classes (unclassifiable).
//
// Every member reported dead is guaranteed dead; liveness is conservative.
package deadmember

import (
	"context"
	"sort"

	"deadmembers/internal/callgraph"
	"deadmembers/internal/failure"
	"deadmembers/internal/hierarchy"
	"deadmembers/internal/source"
	"deadmembers/internal/types"
)

// SizeofPolicy controls the treatment of sizeof expressions (paper §3.2).
type SizeofPolicy int

const (
	// SizeofIgnore assumes all sizeof uses are for storage allocation and
	// do not affect observable behaviour (the paper's setting for all its
	// benchmarks).
	SizeofIgnore SizeofPolicy = iota

	// SizeofConservative marks all members of any class measured by
	// sizeof as live (the paper's default before user inspection).
	SizeofConservative
)

// String names the policy.
func (p SizeofPolicy) String() string {
	if p == SizeofConservative {
		return "conservative"
	}
	return "ignore"
}

// Options configures an analysis run.
type Options struct {
	// CallGraph selects call-graph precision (default RTA, matching the
	// paper's PVG-derived graph).
	CallGraph callgraph.Mode

	// Sizeof selects the sizeof policy (default SizeofIgnore, the paper's
	// setting after verifying its benchmarks).
	Sizeof SizeofPolicy

	// NoDeleteSpecialCase disables the paper's special case that an
	// argument of delete/free need not be marked live (for ablation).
	NoDeleteSpecialCase bool

	// TrustDowncasts treats all downcasts as safe (the paper verified all
	// downcasts in its benchmarks were safe and notes "this is something
	// the user of the tool has to verify"). When false, members of the
	// source class of every potentially unsafe cast are marked live.
	TrustDowncasts bool

	// WritesAreUses makes every write access mark a member live, like a
	// naive "is it mentioned?" analysis. The paper's §2 argues this
	// distinction is what makes the algorithm useful at all: "data
	// members are typically initialized with a value in a constructor.
	// Otherwise, the initialization of data members would lead to
	// liveness, and very few data members would be dead." This option
	// exists to quantify that claim (ablation).
	WritesAreUses bool

	// LibraryClasses names classes belonging to libraries whose full
	// source is unavailable; their members are unclassifiable and their
	// virtual methods' overriders in user code become call-graph roots
	// (paper §3.3).
	LibraryClasses []string
}

// Reason explains why a member was classified live.
type Reason int

// Liveness reasons, in the priority order they are reported.
const (
	ReasonNone Reason = iota
	ReasonRead
	ReasonAddressTaken
	ReasonPointerToMember
	ReasonUnsafeCast
	ReasonVolatileWrite
	ReasonUnionClosure
	ReasonLibrary
	ReasonSizeof
	ReasonWrite // only under Options.WritesAreUses
)

// String returns a short human-readable reason.
func (r Reason) String() string {
	switch r {
	case ReasonRead:
		return "read"
	case ReasonAddressTaken:
		return "address taken"
	case ReasonPointerToMember:
		return "pointer-to-member"
	case ReasonUnsafeCast:
		return "unsafe cast"
	case ReasonVolatileWrite:
		return "volatile write"
	case ReasonUnionClosure:
		return "union closure"
	case ReasonLibrary:
		return "library class"
	case ReasonSizeof:
		return "sizeof"
	case ReasonWrite:
		return "written (writes-as-uses mode)"
	}
	return "dead"
}

// Mark records the liveness classification of one member.
type Mark struct {
	Live   bool
	Reason Reason
	// Witness is the source position of the access that first made the
	// member live (when applicable).
	Witness source.Pos
}

// Result is the outcome of an analysis.
type Result struct {
	Program   *types.Program
	Hierarchy *hierarchy.Graph
	CallGraph *callgraph.Graph
	Options   Options

	// Used is the set of used classes (a constructor call occurs in the
	// program); percentages are computed over these, per paper §4.2.
	Used map[*types.Class]bool

	// Failures records functions whose liveness processing panicked. The
	// accesses such a function recorded before faulting are kept (they are
	// real accesses, so liveness stays correct), but accesses it never got
	// to record are missing — a member reported dead is no longer
	// guaranteed dead. Non-empty Failures means the result is degraded.
	Failures []*failure.Failure

	// Interrupted reports that Exec.Ctx was cancelled before the liveness
	// pass completed; the marks are incomplete and must not be trusted.
	Interrupted bool

	marks   map[*types.Field]*Mark
	library map[*types.Class]bool
}

// Degraded reports whether any part of the analysis was contained after a
// fault, weakening the guaranteed-dead property.
func (r *Result) Degraded() bool { return len(r.Failures) > 0 }

// Exec configures how — not what — Analyze computes. Workers and Graph
// never change the Result: any value yields byte-identical
// classifications. Ctx and FuncFault are failure controls: they can stop
// or degrade a run, and exist for deadline handling and fault-injection
// tests respectively.
type Exec struct {
	// Workers bounds the number of goroutines marking reachable functions
	// concurrently. Values ≤ 1 run the paper's sequential loop.
	Workers int

	// Graph is an optional prebuilt call graph for the same program and
	// Options (as returned by BuildGraph); when non-nil the construction
	// step is skipped. Callers must not pass a graph built under different
	// Options — the reachable set would no longer match Figure 2's.
	Graph *callgraph.Graph

	// Ctx, when non-nil, is polled between functions during the liveness
	// pass; cancellation stops the pass and sets Result.Interrupted.
	Ctx context.Context

	// FuncFault, when non-nil, runs inside each function's containment
	// boundary just before the function is processed. Tests use it to
	// inject a panic into a chosen function or shard.
	FuncFault func(*types.Func)
}

// BuildGraph constructs the call graph Analyze would build for prog under
// opts: the selected mode, with user methods that override virtual methods
// of library classes as extra roots (the library may call them back). It
// exists so engines can cache graphs across analyses that share a mode.
func BuildGraph(prog *types.Program, h *hierarchy.Graph, opts Options) *callgraph.Graph {
	a := newAnalysis(prog, h, opts)
	return callgraph.Build(prog, h, callgraph.Options{
		Mode:       opts.CallGraph,
		ExtraRoots: a.libraryOverrideRoots(),
	})
}

// Analyze runs the dead-data-member analysis on a type-checked program.
func Analyze(prog *types.Program, h *hierarchy.Graph, opts Options) *Result {
	return AnalyzeWith(prog, h, opts, Exec{})
}

// AnalyzeWith is Analyze under an explicit execution configuration.
func AnalyzeWith(prog *types.Program, h *hierarchy.Graph, opts Options, exec Exec) *Result {
	a := newAnalysis(prog, h, opts)

	// Line 3 of Figure 2: mark all data members initially dead.
	for _, c := range prog.Classes {
		for _, f := range c.Fields {
			a.marks[f] = &Mark{}
		}
	}

	// Line 5: construct the call graph. Methods of user classes that
	// override virtual methods of library classes are extra roots: the
	// library may call them back.
	if exec.Graph != nil {
		a.res.CallGraph = exec.Graph
	} else {
		a.res.CallGraph = callgraph.Build(prog, h, callgraph.Options{
			Mode:       opts.CallGraph,
			ExtraRoots: a.libraryOverrideRoots(),
		})
	}

	// Library members are unclassifiable (paper §3.3).
	for c := range a.res.library {
		for _, f := range c.Fields {
			a.markLive(f, ReasonLibrary, source.NoPos)
		}
	}

	// Lines 6-8: process every statement of every reachable function.
	// Each function runs inside a recover boundary so a fault in one
	// cannot take down the pass; see processFuncGuarded.
	funcs := a.res.CallGraph.ReachableFuncs()
	if exec.Workers > 1 && len(funcs) > 1 {
		a.processFuncsParallel(funcs, exec)
	} else {
		for _, f := range funcs {
			if exec.Ctx != nil && exec.Ctx.Err() != nil {
				a.res.Interrupted = true
				break
			}
			if pf := a.processFuncGuarded(f, exec.FuncFault); pf != nil {
				a.res.Failures = append(a.res.Failures, pf)
			}
		}
	}

	// Lines 9-11: union closure, iterated to a fixpoint because marking a
	// union's contained class members can make another union live.
	a.unionClosure()

	return a.res
}

// newAnalysis builds the shared read-only state of one run: the Result
// shell, the used-class set, and the library designation.
func newAnalysis(prog *types.Program, h *hierarchy.Graph, opts Options) *analysis {
	a := &analysis{
		prog: prog,
		h:    h,
		info: prog.Info,
		opts: opts,
		res: &Result{
			Program:   prog,
			Hierarchy: h,
			Options:   opts,
			Used:      callgraph.UsedClasses(prog),
			marks:     map[*types.Field]*Mark{},
			library:   map[*types.Class]bool{},
		},
		visited: map[*types.Class]bool{},
	}
	a.marks = a.res.marks
	for _, name := range opts.LibraryClasses {
		if c, ok := prog.ClassByName[name]; ok {
			a.res.library[c] = true
		}
	}
	return a
}

// analysis carries the mutable state of one run. In the parallel liveness
// pass each worker gets its own analysis value whose marks map is a
// private sink; prog, h, info, opts, and res are shared read-only.
type analysis struct {
	prog    *types.Program
	h       *hierarchy.Graph
	info    *types.Info
	opts    Options
	res     *Result
	marks   map[*types.Field]*Mark // mark sink (res.marks, or worker-local)
	visited map[*types.Class]bool  // MarkAllContainedMembers visited set
}

// processFuncGuarded processes one reachable function inside a recover
// boundary. A panic — from the analysis itself or from an injected
// FuncFault — is contained: marks the function recorded before faulting
// are kept (they reflect real accesses), and the fault is returned for
// Result.Failures.
func (a *analysis) processFuncGuarded(f *types.Func, fault func(*types.Func)) *failure.Failure {
	return failure.Catch("liveness", f.QualifiedName(), func() {
		if fault != nil {
			fault(f)
		}
		a.processFunc(f)
	})
}

// libraryOverrideRoots returns user methods that override virtual methods
// declared in library classes.
func (a *analysis) libraryOverrideRoots() []*types.Func {
	var roots []*types.Func
	for _, c := range a.prog.Classes {
		if a.res.library[c] {
			continue
		}
		for _, m := range c.Methods {
			if !m.Virtual {
				continue
			}
			for bc := range a.allBases(c) {
				if a.res.library[bc] {
					if bm := bc.MethodByName(m.Name); bm != nil && bm.Virtual {
						roots = append(roots, m)
						break
					}
				}
			}
		}
	}
	sort.Slice(roots, func(i, j int) bool {
		return roots[i].QualifiedName() < roots[j].QualifiedName()
	})
	return roots
}

func (a *analysis) allBases(c *types.Class) map[*types.Class]bool {
	set := map[*types.Class]bool{}
	var walk func(*types.Class)
	walk = func(x *types.Class) {
		for _, b := range x.Bases {
			if !set[b.Class] {
				set[b.Class] = true
				walk(b.Class)
			}
		}
	}
	walk(c)
	return set
}

func (a *analysis) markLive(f *types.Field, why Reason, at source.Pos) {
	m := a.marks[f]
	if m == nil {
		m = &Mark{}
		a.marks[f] = m
	}
	if m.Live {
		return
	}
	m.Live = true
	m.Reason = why
	m.Witness = at
}

// markAllContainedMembers implements MarkAllContainedMembers of Figure 2:
// mark every member of c live, recurse into class-typed members and into
// direct bases, with a visited set to avoid duplicated work.
func (a *analysis) markAllContainedMembers(c *types.Class, why Reason, at source.Pos) {
	if c == nil || a.visited[c] {
		return
	}
	a.visited[c] = true
	for _, f := range c.Fields {
		a.markLive(f, why, at)
		t := f.Type
		for {
			if arr, ok := t.(*types.Array); ok {
				t = arr.Elem
				continue
			}
			break
		}
		if n := types.IsClass(t); n != nil {
			a.markAllContainedMembers(n, why, at)
		}
	}
	for _, b := range c.Bases {
		a.markAllContainedMembers(b.Class, why, at)
	}
}

// unionClosure applies lines 9-11 of Figure 2: if any member of a union is
// live, all members directly or indirectly contained in the union become
// live. Iterated to a fixpoint.
func (a *analysis) unionClosure() {
	for {
		changed := false
		for _, c := range a.prog.Classes {
			if !c.IsUnion() {
				continue
			}
			anyLive := false
			allLive := true
			for _, f := range c.Fields {
				if a.marks[f].Live {
					anyLive = true
				} else {
					allLive = false
				}
			}
			if anyLive && !allLive {
				a.visited = map[*types.Class]bool{} // fresh visited set per closure round
				a.markAllContainedMembers(c, ReasonUnionClosure, c.Pos)
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// ---------------------------------------------------------------------------
// Result accessors

// MarkOf returns the classification of f (never nil for fields of the
// analyzed program).
func (r *Result) MarkOf(f *types.Field) Mark {
	if m := r.marks[f]; m != nil {
		return *m
	}
	return Mark{}
}

// IsLive reports whether f was marked live (or is unclassifiable).
func (r *Result) IsLive(f *types.Field) bool { return r.MarkOf(f).Live }

// IsDead reports whether f is guaranteed dead: not marked live and not in
// a library class.
func (r *Result) IsDead(f *types.Field) bool {
	return !r.IsLive(f) && !r.library[f.Owner]
}

// IsLibraryClass reports whether c was designated a library class.
func (r *Result) IsLibraryClass(c *types.Class) bool { return r.library[c] }

// countedClass reports whether c participates in the statistics: used,
// fully analyzable (not library), and a real class of the program.
func (r *Result) countedClass(c *types.Class) bool {
	return r.Used[c] && !r.library[c]
}

// DeadMembers returns the dead members of used, non-library classes,
// sorted by qualified name — the set the paper's Figure 3 counts.
func (r *Result) DeadMembers() []*types.Field {
	var out []*types.Field
	for _, c := range r.Program.Classes {
		if !r.countedClass(c) {
			continue
		}
		for _, f := range c.Fields {
			if r.IsDead(f) {
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].QualifiedName() < out[j].QualifiedName()
	})
	return out
}

// Stats summarizes an analysis run in the paper's terms.
type Stats struct {
	Classes     int // total classes in the program (excluding library)
	UsedClasses int // classes with a constructor call
	Members     int // data members in used, non-library classes
	DeadMembers int
}

// DeadPercent returns 100 * DeadMembers / Members (0 when no members).
func (s Stats) DeadPercent() float64 {
	if s.Members == 0 {
		return 0
	}
	return 100 * float64(s.DeadMembers) / float64(s.Members)
}

// Stats computes the summary statistics of the run.
func (r *Result) Stats() Stats {
	var s Stats
	for _, c := range r.Program.Classes {
		if r.library[c] {
			continue
		}
		s.Classes++
		if !r.Used[c] {
			continue
		}
		s.UsedClasses++
		for _, f := range c.Fields {
			s.Members++
			if r.IsDead(f) {
				s.DeadMembers++
			}
		}
	}
	return s
}
