package deadmember_test

import (
	"sort"
	"strings"
	"testing"

	"deadmembers/internal/callgraph"
	"deadmembers/internal/deadmember"
	"deadmembers/internal/frontend"
)

// analyze compiles src and runs the analysis with the given options.
func analyze(t *testing.T, src string, opts deadmember.Options) *deadmember.Result {
	t.Helper()
	r := frontend.Compile(frontend.Source{Name: "test.mcc", Text: src})
	if err := r.Err(); err != nil {
		t.Fatalf("compile errors:\n%v", err)
	}
	return deadmember.Analyze(r.Program, r.Graph, opts)
}

func deadNames(res *deadmember.Result) []string {
	var out []string
	for _, f := range res.DeadMembers() {
		out = append(out, f.QualifiedName())
	}
	sort.Strings(out)
	return out
}

func expectDead(t *testing.T, res *deadmember.Result, want ...string) {
	t.Helper()
	got := deadNames(res)
	sort.Strings(want)
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("dead members mismatch:\n got:  %v\n want: %v", got, want)
	}
}

// figure1 is the paper's example program (Figure 1). Section 3.1 walks the
// algorithm over it: A::ma1, B::mb1, C::mc1 are marked live because their
// methods are reachable under the call graph; B::mb3 is live because it is
// read; B::mb2 and N::mn1 are live via the chained read; B::mb4 is live
// because its address is taken. Dead: N::mn2, A::ma2, A::ma3.
const figure1 = `
class N {
public:
	int mn1;
	int mn2;
};
class A {
public:
	virtual int f() { return ma1; }
	int ma1;
	int ma2;
	int ma3;
};
class B : public A {
public:
	virtual int f() { return mb1; }
	int mb1;
	N   mb2;
	int mb3;
	int mb4;
};
class C : public A {
public:
	virtual int f() { return mc1; }
	int mc1;
};
int foo(int* x) { return (*x) + 1; }
int main() {
	A a;
	B b;
	C c;
	A* ap;
	a.ma3 = b.mb3 + 1;
	int i = 10;
	if (i < 20) { ap = &a; } else { ap = &b; }
	return ap->f() + b.mb2.mn1 + foo(&b.mb4);
}
`

func TestFigure1Classification(t *testing.T) {
	res := analyze(t, figure1, deadmember.Options{CallGraph: callgraph.RTA})
	expectDead(t, res, "N::mn2", "A::ma2", "A::ma3")

	// Reasons reported for the live members match the paper's narrative.
	p := res.Program
	wantReasons := map[string]deadmember.Reason{
		"A::ma1": deadmember.ReasonRead,
		"B::mb1": deadmember.ReasonRead,
		"C::mc1": deadmember.ReasonRead,
		"B::mb2": deadmember.ReasonRead,
		"B::mb3": deadmember.ReasonRead,
		"N::mn1": deadmember.ReasonRead,
		"B::mb4": deadmember.ReasonAddressTaken,
	}
	for qn, want := range wantReasons {
		parts := strings.SplitN(qn, "::", 2)
		cls := p.ClassByName[parts[0]]
		f := cls.FieldByName(parts[1])
		m := res.MarkOf(f)
		if !m.Live || m.Reason != want {
			t.Errorf("%s: got live=%v reason=%v, want live reason=%v", qn, m.Live, m.Reason, want)
		}
	}

	s := res.Stats()
	if s.Members != 10 || s.DeadMembers != 3 {
		t.Fatalf("stats mismatch: %+v", s)
	}
	if got := s.DeadPercent(); got != 30.0 {
		t.Fatalf("dead percent = %v, want 30.0", got)
	}
}

func TestWriteOnlyMemberIsDead(t *testing.T) {
	src := `
class A {
public:
	int written;
	int read;
	A() : written(1), read(2) {}
};
int main() {
	A a;
	a.written = 10;
	return a.read;
}
`
	res := analyze(t, src, deadmember.Options{CallGraph: callgraph.RTA})
	expectDead(t, res, "A::written")
}

func TestVolatileWriteMarksLive(t *testing.T) {
	src := `
class Dev {
public:
	volatile int reg;
	int scratch;
};
int main() {
	Dev d;
	d.reg = 1;      // write to volatile: live
	d.scratch = 2;  // write to plain member: dead
	return 0;
}
`
	res := analyze(t, src, deadmember.Options{CallGraph: callgraph.RTA})
	expectDead(t, res, "Dev::scratch")
	dev := res.Program.ClassByName["Dev"]
	if m := res.MarkOf(dev.FieldByName("reg")); m.Reason != deadmember.ReasonVolatileWrite {
		t.Fatalf("reg should be live via volatile write, got %v", m.Reason)
	}
}

func TestDeleteSpecialCase(t *testing.T) {
	src := `
class Node {
public:
	int* buf;
	int  n;
	Node() { buf = (int*)malloc(8); n = 0; }
	~Node() { delete buf; }
};
int main() {
	Node* p = new Node();
	int r = p->n;
	delete p;
	return r;
}
`
	// With the special case (paper default): buf only flows to delete, dead.
	res := analyze(t, src, deadmember.Options{CallGraph: callgraph.RTA})
	expectDead(t, res, "Node::buf")

	// Ablated: delete's argument is an ordinary read, buf becomes live.
	res = analyze(t, src, deadmember.Options{CallGraph: callgraph.RTA, NoDeleteSpecialCase: true})
	expectDead(t, res)
}

func TestFreeSpecialCase(t *testing.T) {
	src := `
class Buf {
public:
	void* mem;
	int   used;
	Buf() { mem = malloc(16); used = 1; }
	~Buf() { free(mem); }
};
int main() {
	Buf b;
	return b.used;
}
`
	res := analyze(t, src, deadmember.Options{CallGraph: callgraph.RTA})
	expectDead(t, res, "Buf::mem")
}

func TestUnreachableAccessIgnored(t *testing.T) {
	src := `
class A {
public:
	int x;
	int y;
};
int deadCode(A* a) { return a->x; } // never called
int main() {
	A a;
	return a.y;
}
`
	res := analyze(t, src, deadmember.Options{CallGraph: callgraph.RTA})
	expectDead(t, res, "A::x")

	// The ALL baseline considers deadCode reachable, so x is live there.
	resAll := analyze(t, src, deadmember.Options{CallGraph: callgraph.ALL})
	expectDead(t, resAll)
}

func TestRTAPrunesUninstantiatedReceivers(t *testing.T) {
	// Mirrors the paper's §3.1 discussion: with a more precise call graph
	// C::f is excluded because no C object exists.
	src := `
class A {
public:
	virtual int f() { return ma; }
	int ma;
};
class B : public A {
public:
	virtual int f() { return mb; }
	int mb;
};
class C : public A {
public:
	virtual int f() { return mc; }
	int mc;
};
int main() {
	B b;
	A* ap = &b;
	return ap->f();
}
`
	res := analyze(t, src, deadmember.Options{CallGraph: callgraph.RTA})
	// C is never instantiated: C::f is unreachable under RTA, so C::mc is
	// dead — but C is also unused, so it is excluded from the counted set.
	stats := res.Stats()
	if stats.UsedClasses != 2 {
		t.Fatalf("used classes = %d, want 2 (A, B)", stats.UsedClasses)
	}
	// Under CHA, C::f is a dispatch target and C::mc is marked live.
	resCHA := analyze(t, src, deadmember.Options{CallGraph: callgraph.CHA})
	c := resCHA.Program.ClassByName["C"]
	if !resCHA.IsLive(c.FieldByName("mc")) {
		t.Fatal("CHA should mark C::mc live (C::f is a dispatch target)")
	}
	if res.IsLive(res.Program.ClassByName["C"].FieldByName("mc")) {
		t.Fatal("RTA should NOT mark C::mc live (C never instantiated)")
	}
}

func TestPointerToMemberMarksLive(t *testing.T) {
	src := `
class A {
public:
	int picked;
	int other;
};
int main() {
	int A::* pm = &A::picked;
	A a;
	return a.*pm;
}
`
	res := analyze(t, src, deadmember.Options{CallGraph: callgraph.RTA})
	expectDead(t, res, "A::other")
	a := res.Program.ClassByName["A"]
	if m := res.MarkOf(a.FieldByName("picked")); m.Reason != deadmember.ReasonPointerToMember {
		t.Fatalf("picked should be live via pointer-to-member, got %v", m.Reason)
	}
}

func TestUnsafeCastMarksSourceMembers(t *testing.T) {
	src := `
class A {
public:
	int a1;
	int a2;
};
class B : public A {
public:
	int b1;
};
int main() {
	A* ap = new B();
	B* bp = (B*)ap; // downcast: conservatively unsafe
	return bp->b1;
}
`
	// Conservative: all members contained in A (the source type) are live.
	res := analyze(t, src, deadmember.Options{CallGraph: callgraph.RTA})
	expectDead(t, res)
	a := res.Program.ClassByName["A"]
	if m := res.MarkOf(a.FieldByName("a2")); m.Reason != deadmember.ReasonUnsafeCast {
		t.Fatalf("a2 should be live via unsafe cast, got %v", m.Reason)
	}

	// With verified-safe downcasts (the paper's benchmark setting), the
	// cast adds nothing and A's members are dead.
	res = analyze(t, src, deadmember.Options{CallGraph: callgraph.RTA, TrustDowncasts: true})
	expectDead(t, res, "A::a1", "A::a2")
}

func TestUnionClosure(t *testing.T) {
	src := `
union U {
	int i;
	double d;
	char c;
};
int main() {
	U u;
	u.d = 1.5;
	return u.i; // reading i makes ALL union members live
}
`
	res := analyze(t, src, deadmember.Options{CallGraph: callgraph.RTA})
	expectDead(t, res)
	u := res.Program.ClassByName["U"]
	if m := res.MarkOf(u.FieldByName("d")); m.Reason != deadmember.ReasonUnionClosure {
		t.Fatalf("d should be live via union closure, got %v", m.Reason)
	}
}

func TestUnionFullyDeadStaysDead(t *testing.T) {
	src := `
union U {
	int i;
	double d;
};
int main() {
	U u;
	u.i = 1; // only writes: every union member stays dead
	return 0;
}
`
	res := analyze(t, src, deadmember.Options{CallGraph: callgraph.RTA})
	expectDead(t, res, "U::d", "U::i")
}

func TestSizeofPolicies(t *testing.T) {
	src := `
class A {
public:
	int x;
	int y;
};
int main() {
	A used;   // a constructor call makes A a "used class" for the stats
	A* p = (A*)malloc(sizeof(A));
	p->x = 1;
	int r = p->x;
	free((void*)p);
	return r;
}
`
	// Paper setting: sizeof used for storage allocation is ignored.
	res := analyze(t, src, deadmember.Options{CallGraph: callgraph.RTA, Sizeof: deadmember.SizeofIgnore})
	expectDead(t, res, "A::y")

	// Conservative: sizeof(A) marks all of A's members live.
	res = analyze(t, src, deadmember.Options{CallGraph: callgraph.RTA, Sizeof: deadmember.SizeofConservative})
	expectDead(t, res)
}

func TestLibraryClassExcluded(t *testing.T) {
	src := `
class LibBase {
public:
	virtual void handle() {}
	int libdata;
};
class Mine : public LibBase {
public:
	virtual void handle() { used = used + 1; }
	int used;
	int unused;
	Mine() : used(0), unused(0) {}
};
int main() {
	Mine m;
	return 0;
}
`
	res := analyze(t, src, deadmember.Options{
		CallGraph:      callgraph.RTA,
		LibraryClasses: []string{"LibBase"},
	})
	// LibBase::libdata is unclassifiable (library), not reported dead.
	// Mine::handle overrides a library virtual => callback root, so
	// Mine::used is read (live); Mine::unused is dead.
	expectDead(t, res, "Mine::unused")
	lb := res.Program.ClassByName["LibBase"]
	if res.IsDead(lb.FieldByName("libdata")) {
		t.Fatal("library member must never be classified dead")
	}
	if !res.IsLibraryClass(lb) {
		t.Fatal("LibBase should be flagged as a library class")
	}
	// Stats exclude the library class entirely.
	s := res.Stats()
	if s.Classes != 1 || s.Members != 2 {
		t.Fatalf("stats should cover only Mine: %+v", s)
	}
}

func TestUnusedClassesExcludedFromStats(t *testing.T) {
	src := `
class Used { public: int a; int b; };
class Unused { public: int c; };
int main() {
	Used u;
	return u.a;
}
`
	res := analyze(t, src, deadmember.Options{CallGraph: callgraph.RTA})
	s := res.Stats()
	if s.UsedClasses != 1 {
		t.Fatalf("used classes = %d, want 1", s.UsedClasses)
	}
	if s.Members != 2 {
		t.Fatalf("members counted = %d, want 2 (Used only)", s.Members)
	}
	expectDead(t, res, "Used::b")
}

func TestChainedReadMarksWholePath(t *testing.T) {
	src := `
class Inner { public: int v; int w; };
class Outer { public: Inner in; int pad; };
int main() {
	Outer o;
	return o.in.v;
}
`
	res := analyze(t, res0Src(src), deadmember.Options{CallGraph: callgraph.RTA})
	expectDead(t, res, "Inner::w", "Outer::pad")
}

func res0Src(s string) string { return s }

func TestWritePathDoesNotMarkIntermediates(t *testing.T) {
	src := `
class Inner { public: int v; };
class Outer { public: Inner in; };
int main() {
	Outer o;
	o.in.v = 42; // pure write: neither v nor in become live
	return 0;
}
`
	res := analyze(t, src, deadmember.Options{CallGraph: callgraph.RTA})
	expectDead(t, res, "Inner::v", "Outer::in")
}

func TestArrowOnWritePathReadsPointerMember(t *testing.T) {
	src := `
class Inner { public: int v; };
class Outer {
public:
	Inner* ip;
	Outer() { ip = new Inner(); }
};
int main() {
	Outer o;
	o.ip->v = 42; // writing v reads the pointer member ip
	return 0;
}
`
	res := analyze(t, src, deadmember.Options{CallGraph: callgraph.RTA})
	expectDead(t, res, "Inner::v")
	outer := res.Program.ClassByName["Outer"]
	if !res.IsLive(outer.FieldByName("ip")) {
		t.Fatal("Outer::ip must be live: its pointer value is read to locate *ip")
	}
}

func TestCompoundAssignReads(t *testing.T) {
	src := `
class A { public: int acc; };
int main() {
	A a;
	a.acc += 3; // read-modify-write: live
	return 0;
}
`
	res := analyze(t, src, deadmember.Options{CallGraph: callgraph.RTA})
	expectDead(t, res)
}

func TestCtorInitIsWriteNotRead(t *testing.T) {
	src := `
class A {
public:
	int initialized;
	int readBack;
	A() : initialized(7), readBack(8) {}
};
int main() {
	A a;
	return a.readBack;
}
`
	res := analyze(t, src, deadmember.Options{CallGraph: callgraph.RTA})
	expectDead(t, res, "A::initialized")
}

func TestWritesAreUsesAblation(t *testing.T) {
	// Paper §2: "data members are typically initialized with a value in a
	// constructor. Otherwise, the initialization of data members would
	// lead to liveness, and very few data members would be dead."
	src := `
class A {
public:
	int initialized;     // ctor-initialized, never read
	int neverTouched;    // never written at all: dead either way
	A() : initialized(1) {}
};
int main() {
	A a;
	return 0;
}
`
	normal := analyze(t, src, deadmember.Options{CallGraph: callgraph.RTA})
	expectDead(t, normal, "A::initialized", "A::neverTouched")

	naive := analyze(t, src, deadmember.Options{CallGraph: callgraph.RTA, WritesAreUses: true})
	expectDead(t, naive, "A::neverTouched")
	a := naive.Program.ClassByName["A"]
	if m := naive.MarkOf(a.FieldByName("initialized")); m.Reason != deadmember.ReasonWrite {
		t.Fatalf("initialized should be live via write in naive mode, got %v", m.Reason)
	}
}

func TestCallGraphMonotonicity(t *testing.T) {
	// dead(ALL) ⊆ dead(CHA) ⊆ dead(RTA): more precise call graphs can
	// only find more dead members.
	src := figure1
	all := deadNames(analyze(t, src, deadmember.Options{CallGraph: callgraph.ALL}))
	cha := deadNames(analyze(t, src, deadmember.Options{CallGraph: callgraph.CHA}))
	rta := deadNames(analyze(t, src, deadmember.Options{CallGraph: callgraph.RTA}))
	isSubset := func(a, b []string) bool {
		set := map[string]bool{}
		for _, x := range b {
			set[x] = true
		}
		for _, x := range a {
			if !set[x] {
				return false
			}
		}
		return true
	}
	if !isSubset(all, cha) || !isSubset(cha, rta) {
		t.Fatalf("monotonicity violated:\nALL=%v\nCHA=%v\nRTA=%v", all, cha, rta)
	}
}

func TestMethodCallReceiverNotRead(t *testing.T) {
	src := `
class Inner {
public:
	int state;
	int get() { return state; }
};
class Outer { public: Inner in; };
int main() {
	Outer o;
	return o.in.get(); // calling a method on subobject does not read 'in' itself
}
`
	res := analyze(t, src, deadmember.Options{CallGraph: callgraph.RTA})
	expectDead(t, res, "Outer::in")
	inner := res.Program.ClassByName["Inner"]
	if !res.IsLive(inner.FieldByName("state")) {
		t.Fatal("Inner::state is read inside get(): live")
	}
}
