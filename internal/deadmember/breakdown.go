package deadmember

import (
	"sort"

	"deadmembers/internal/types"
)

// This file provides the reporting accessors motivated by the paper's
// introduction: "detection of dead data members may also be useful in an
// integrated development environment, by providing feedback to the
// programmer".

// ClassBreakdown summarizes one class's members for programmer feedback.
type ClassBreakdown struct {
	Class   *types.Class
	Used    bool
	Library bool
	Members int
	Dead    int
	// DeadFields lists the class's dead members sorted by name.
	DeadFields []*types.Field
}

// DeadPercent returns the class-local dead percentage.
func (c ClassBreakdown) DeadPercent() float64 {
	if c.Members == 0 {
		return 0
	}
	return 100 * float64(c.Dead) / float64(c.Members)
}

// PerClass returns a breakdown for every class of the program, sorted by
// descending dead count and then by name — the order a programmer would
// want to triage in.
func (r *Result) PerClass() []ClassBreakdown {
	var out []ClassBreakdown
	for _, c := range r.Program.Classes {
		cb := ClassBreakdown{
			Class:   c,
			Used:    r.Used[c],
			Library: r.library[c],
			Members: len(c.Fields),
		}
		for _, f := range c.Fields {
			if r.IsDead(f) {
				cb.Dead++
				cb.DeadFields = append(cb.DeadFields, f)
			}
		}
		sort.Slice(cb.DeadFields, func(i, j int) bool {
			return cb.DeadFields[i].Name < cb.DeadFields[j].Name
		})
		out = append(out, cb)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dead != out[j].Dead {
			return out[i].Dead > out[j].Dead
		}
		return out[i].Class.Name < out[j].Class.Name
	})
	return out
}

// UnreachableFunctions returns the functions with bodies that the call
// graph proves unreachable from main (and the extra roots), sorted by
// qualified name. These are the "unreachable procedures" of Srivastava's
// related work (paper §5) and the removal candidates of the strip
// transform.
func (r *Result) UnreachableFunctions() []*types.Func {
	var out []*types.Func
	for _, f := range r.Program.AllFuncs() {
		if f.Body == nil || f.Builtin {
			continue
		}
		if !r.CallGraph.Reachable[f] {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].QualifiedName() < out[j].QualifiedName()
	})
	return out
}
