package deadmember

import (
	"deadmembers/internal/ast"
	"deadmembers/internal/source"
	"deadmembers/internal/token"
	"deadmembers/internal/types"
)

// This file implements ProcessStatement of the paper's Figure 2: the
// classification of every member-access expression in reachable code as a
// read access, a pure write, an address-taking, or a skipped delete/free
// argument.
//
// The walk is context-directed:
//
//	ctxRead   — the expression's value is used: member accesses are reads.
//	ctxWrite  — the expression is the target of a plain assignment: the
//	            final member is written, not read (volatile members become
//	            live anyway); the receiver path is ctxLValuePath.
//	ctxAddr   — the expression is the operand of &: the final member's
//	            address is taken (live); receiver path is ctxLValuePath.
//	ctxLValuePath — the expression only locates a subobject: dot-accesses
//	            are neither read nor written; arrow-accesses read the
//	            pointer-valued prefix and switch it to ctxRead.
//	ctxDeleteArg — the expression is the argument of delete/free: a member
//	            access here is not marked live (paper footnote: freeing a
//	            member cannot affect observable behaviour); its receiver
//	            is still walked as an lvalue path.
type ctx int

const (
	ctxRead ctx = iota
	ctxWrite
	ctxAddr
	ctxLValuePath
	ctxDeleteArg
)

// processFunc walks the body and constructor-initializer list of f.
func (a *analysis) processFunc(f *types.Func) {
	for i := range f.Inits {
		init := &f.Inits[i]
		// `: m(e)` writes m (not a read of m); volatile members become
		// live when written.
		if fld := a.info.CtorInitFields[init]; fld != nil {
			if fld.Volatile {
				a.markLive(fld, ReasonVolatileWrite, init.Pos())
			} else if a.opts.WritesAreUses {
				a.markLive(fld, ReasonWrite, init.Pos())
			}
		}
		for _, arg := range init.Args {
			a.visitExpr(arg, ctxRead)
		}
	}
	if f.Body != nil {
		a.visitStmt(f.Body)
	}
}

func (a *analysis) visitStmt(s ast.Stmt) {
	switch x := s.(type) {
	case *ast.BlockStmt:
		for _, st := range x.Stmts {
			a.visitStmt(st)
		}
	case *ast.DeclStmt:
		a.visitVarDecl(x.Var)
	case *ast.ExprStmt:
		a.visitExpr(x.X, ctxRead)
	case *ast.IfStmt:
		a.visitExpr(x.Cond, ctxRead)
		a.visitStmt(x.Then)
		if x.Else != nil {
			a.visitStmt(x.Else)
		}
	case *ast.WhileStmt:
		a.visitExpr(x.Cond, ctxRead)
		a.visitStmt(x.Body)
	case *ast.DoWhileStmt:
		a.visitStmt(x.Body)
		a.visitExpr(x.Cond, ctxRead)
	case *ast.ForStmt:
		if x.Init != nil {
			a.visitStmt(x.Init)
		}
		if x.Cond != nil {
			a.visitExpr(x.Cond, ctxRead)
		}
		if x.Post != nil {
			a.visitExpr(x.Post, ctxRead)
		}
		a.visitStmt(x.Body)
	case *ast.SwitchStmt:
		a.visitExpr(x.X, ctxRead)
		for i := range x.Cases {
			for _, v := range x.Cases[i].Values {
				a.visitExpr(v, ctxRead)
			}
			for _, st := range x.Cases[i].Body {
				a.visitStmt(st)
			}
		}
	case *ast.ReturnStmt:
		if x.X != nil {
			a.visitExpr(x.X, ctxRead)
		}
	}
}

func (a *analysis) visitVarDecl(v *ast.VarDecl) {
	if v.Init != nil {
		a.visitExpr(v.Init, ctxRead)
	}
	for _, arg := range v.CtorArgs {
		a.visitExpr(arg, ctxRead)
	}
}

// markWrite applies the write rules: volatile members become live on any
// write; under the WritesAreUses ablation every write marks the member.
func (a *analysis) markWrite(fld *types.Field, at source.Pos) {
	if fld.Volatile {
		a.markLive(fld, ReasonVolatileWrite, at)
		return
	}
	if a.opts.WritesAreUses {
		a.markLive(fld, ReasonWrite, at)
	}
}

func (a *analysis) visitExpr(e ast.Expr, c ctx) {
	switch x := e.(type) {
	case nil:
		return
	case *ast.Paren:
		a.visitExpr(x.X, c)

	case *ast.IntLit, *ast.FloatLit, *ast.CharLit, *ast.BoolLit,
		*ast.StringLit, *ast.NullLit, *ast.ThisExpr:
		// Literals: nothing to mark.

	case *ast.Ident:
		fld := a.info.IdentFields[x]
		if fld == nil {
			return // plain variable
		}
		// Implicit this->field access.
		switch c {
		case ctxRead:
			a.markLive(fld, ReasonRead, x.Pos())
		case ctxWrite:
			a.markWrite(fld, x.Pos())
		case ctxAddr:
			a.markLive(fld, ReasonAddressTaken, x.Pos())
		case ctxLValuePath, ctxDeleteArg:
			// not marked
		}

	case *ast.QualifiedIdent:
		// Reached only as the operand of & (checked by sema); handled in
		// Unary below. Defensive: treat as pointer-to-member formation.
		if fld := a.info.QualFieldRefs[x]; fld != nil {
			a.markLive(fld, ReasonPointerToMember, x.Pos())
		}

	case *ast.Member:
		fld := a.info.FieldRefs[x]
		if fld != nil {
			switch c {
			case ctxRead:
				a.markLive(fld, ReasonRead, x.Pos())
			case ctxWrite:
				a.markWrite(fld, x.Pos())
			case ctxAddr:
				a.markLive(fld, ReasonAddressTaken, x.Pos())
			case ctxLValuePath, ctxDeleteArg:
				// not marked
			}
		}
		// Receiver: through a pointer the prefix value is read; through
		// dot it only locates a subobject — unless this whole access is a
		// read, in which case the paper treats the chained accesses as
		// reads too (its Figure 1 marks both B::mb2 and N::mn1 live for
		// `b.mb2.mn1`).
		if x.Arrow {
			a.visitExpr(x.X, ctxRead)
		} else if c == ctxRead {
			a.visitExpr(x.X, ctxRead)
		} else {
			a.visitExpr(x.X, ctxLValuePath)
		}

	case *ast.Unary:
		switch x.Op {
		case token.Amp:
			if qi, ok := ast.Unparen(x.X).(*ast.QualifiedIdent); ok {
				// &C::m — pointer-to-member formation (paper lines 26-28):
				// assume the member may be accessed anywhere.
				if fld := a.info.QualFieldRefs[qi]; fld != nil {
					a.markLive(fld, ReasonPointerToMember, x.Pos())
				}
				return
			}
			a.visitExpr(x.X, ctxAddr)
		case token.Star:
			a.visitExpr(x.X, ctxRead)
		case token.Inc, token.Dec:
			// ++m reads and writes m.
			a.visitExpr(x.X, ctxRead)
		default:
			a.visitExpr(x.X, ctxRead)
		}

	case *ast.Postfix:
		a.visitExpr(x.X, ctxRead)

	case *ast.Binary:
		a.visitExpr(x.X, ctxRead)
		a.visitExpr(x.Y, ctxRead)

	case *ast.Assign:
		if x.Op == token.Assign {
			a.visitExpr(x.LHS, ctxWrite)
		} else {
			// Compound assignment reads the old value.
			a.visitExpr(x.LHS, ctxRead)
		}
		a.visitExpr(x.RHS, ctxRead)

	case *ast.Cond:
		a.visitExpr(x.C, ctxRead)
		a.visitExpr(x.Then, c)
		a.visitExpr(x.Else, c)

	case *ast.MemberPtrDeref:
		// Which member is accessed is unknown statically; &C::m already
		// marked every member whose pointer was formed. The receiver and
		// the pointer operand are read.
		if x.Arrow {
			a.visitExpr(x.X, ctxRead)
		} else {
			a.visitExpr(x.X, ctxLValuePath)
		}
		a.visitExpr(x.Ptr, ctxRead)

	case *ast.Index:
		// Indexing a member array: in a read context the array member is
		// read; as a store target only the element is written.
		switch c {
		case ctxRead, ctxAddr:
			a.visitExpr(x.X, ctxRead)
		default:
			a.visitExpr(x.X, ctxLValuePath)
		}
		a.visitExpr(x.I, ctxRead)

	case *ast.Call:
		a.visitCall(x)

	case *ast.Cast:
		a.visitCast(x, c)

	case *ast.New:
		for _, arg := range x.Args {
			a.visitExpr(arg, ctxRead)
		}
		if x.Len != nil {
			a.visitExpr(x.Len, ctxRead)
		}

	case *ast.Delete:
		// Paper line 18 & footnote: delete's argument need not mark the
		// member live — freeing cannot affect observable behaviour. The
		// receiver path to the member is still processed (the Member case
		// reads pointer-valued prefixes).
		if a.opts.NoDeleteSpecialCase {
			a.visitExpr(x.X, ctxRead)
		} else {
			a.visitExpr(x.X, ctxDeleteArg)
		}

	case *ast.Sizeof:
		// Paper §3.2: by default sizeof is conservative; the user may
		// declare sizeof uses behaviour-neutral (storage allocation).
		if a.opts.Sizeof == SizeofConservative {
			var t types.Type
			if x.Type != nil {
				t = a.info.TypeExprs[x.Type]
			} else if x.X != nil {
				t = a.info.TypeOf(x.X)
			}
			if cls := types.IsClass(t); cls != nil {
				a.markAllContainedMembers(cls, ReasonSizeof, x.Pos())
			}
		}
		if x.X != nil {
			// sizeof does not evaluate its operand; no member access
			// occurs at run time, so nothing else is marked.
			_ = x.X
		}
	}
}

// visitCall handles calls: free() gets the delete special case; all other
// arguments are reads. Method-call receivers locate the object (lvalue
// path) unless accessed through a pointer.
func (a *analysis) visitCall(x *ast.Call) {
	if fn, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
		if f := a.info.IdentFuncs[fn]; f != nil && f.Builtin && f.Name == "free" && !a.opts.NoDeleteSpecialCase {
			for _, arg := range x.Args {
				a.visitExpr(arg, ctxDeleteArg)
			}
			return
		}
	}
	if m, ok := ast.Unparen(x.Fun).(*ast.Member); ok {
		if m.Arrow {
			a.visitExpr(m.X, ctxRead)
		} else {
			a.visitExpr(m.X, ctxLValuePath)
		}
	}
	for _, arg := range x.Args {
		a.visitExpr(arg, ctxRead)
	}
}

// visitCast applies the unsafe-cast rule (paper lines 29-32): for a
// potentially unsafe cast (T)(e), all members contained in the static
// class of e are marked live; the operand itself is a read — except in a
// delete/free argument, where the special case looks through casts
// (`delete (T*)this->buf` keeps buf dead).
func (a *analysis) visitCast(x *ast.Cast, c ctx) {
	if src, unsafe := a.info.UnsafeCasts[x]; unsafe && !a.opts.TrustDowncasts {
		a.markAllContainedMembers(src, ReasonUnsafeCast, x.Pos())
	}
	if c == ctxDeleteArg {
		a.visitExpr(x.X, ctxDeleteArg)
		return
	}
	a.visitExpr(x.X, ctxRead)
}
