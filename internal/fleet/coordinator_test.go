package fleet

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"deadmembers/internal/api"
	"deadmembers/internal/engine"
)

// testCfg returns a coordinator config with health probing effectively
// off and fast backoffs, so routing behavior is deterministic.
func testCfg(workers ...string) Config {
	return Config{
		Workers:        workers,
		HealthInterval: time.Hour,
		RetryBudget:    len(workers),
		BaseBackoff:    time.Millisecond,
		MaxBackoff:     2 * time.Millisecond,
	}
}

func newTestCoordinator(t *testing.T, cfg Config) *Coordinator {
	t.Helper()
	co, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(co.Close)
	return co
}

func apiReq(name, text string) *api.Request {
	return &api.Request{Sources: []api.Source{{Name: name, Text: text}}}
}

func postAnalyze(t *testing.T, h http.Handler, req *api.Request) *httptest.ResponseRecorder {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	r := httptest.NewRequest(http.MethodPost, "/v1/analyze", bytes.NewReader(body))
	r.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	return w
}

// echoWorker is a fake worker that answers every /v1 call with its own
// tag, so tests can see where a request landed.
func echoWorker(t *testing.T, tag string, hits *atomic.Int64) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			fmt.Fprintln(w, "ready")
			return
		}
		if hits != nil {
			hits.Add(1)
		}
		fmt.Fprintf(w, "served-by:%s", tag)
	}))
	t.Cleanup(ts.Close)
	return ts
}

func TestRoutingIsSticky(t *testing.T) {
	var hitsA, hitsB, hitsC atomic.Int64
	a := echoWorker(t, "a", &hitsA)
	b := echoWorker(t, "b", &hitsB)
	c := echoWorker(t, "c", &hitsC)
	co := newTestCoordinator(t, testCfg(a.URL, b.URL, c.URL))

	req := apiReq("x.mcc", "class A { int f; };")
	var first string
	for i := 0; i < 8; i++ {
		w := postAnalyze(t, co.Handler(), req)
		if w.Code != http.StatusOK {
			t.Fatalf("call %d: status %d: %s", i, w.Code, w.Body)
		}
		if first == "" {
			first = w.Body.String()
		} else if w.Body.String() != first {
			t.Fatalf("call %d landed on %q, first landed on %q; routing not sticky", i, w.Body, first)
		}
	}
	served := 0
	for _, h := range []*atomic.Int64{&hitsA, &hitsB, &hitsC} {
		if h.Load() > 0 {
			served++
		}
	}
	if served != 1 {
		t.Fatalf("identical request spread across %d workers, want exactly 1", served)
	}
}

func TestFailoverToSuccessor(t *testing.T) {
	workers := make(map[string]*httptest.Server)
	var urls []string
	for _, tag := range []string{"a", "b", "c"} {
		ts := echoWorker(t, tag, nil)
		workers[ts.URL] = ts
		urls = append(urls, ts.URL)
	}
	co := newTestCoordinator(t, testCfg(urls...))

	req := apiReq("x.mcc", "class A { int f; };")
	order := co.RouteOrder(engine.Source{Name: "x.mcc", Text: "class A { int f; };"})
	workers[order[0]].Close() // kill the primary; health checks are off

	w := postAnalyze(t, co.Handler(), req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d after primary death, want 200: %s", w.Code, w.Body)
	}
	st := co.Stats()
	if st.Failovers == 0 {
		t.Fatal("failover counter did not move")
	}
	if st.RoutedByURL[order[1]] == 0 {
		t.Fatalf("request not served by the ring successor %s: routed=%v", order[1], st.RoutedByURL)
	}
}

// TestTerminal4xxNoFailover: a worker rejecting the request as invalid
// speaks for every worker; the coordinator must forward the 4xx rather
// than burn the retry budget re-asking.
func TestTerminal4xxNoFailover(t *testing.T) {
	var calls atomic.Int64
	reject := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			fmt.Fprintln(w, "ready")
			return
		}
		calls.Add(1)
		http.Error(w, "deadmemd: unknown callgraph \"bogus\"", http.StatusBadRequest)
	}))
	t.Cleanup(reject.Close)
	ok := echoWorker(t, "ok", nil)
	co := newTestCoordinator(t, testCfg(reject.URL, ok.URL))

	// Find a request whose primary is the rejecting worker.
	var req *api.Request
	for i := 0; i < 100; i++ {
		name, text := fmt.Sprintf("f%d.mcc", i), "class A { int f; };"
		if co.RouteOrder(engine.Source{Name: name, Text: text})[0] == reject.URL {
			req = apiReq(name, text)
			break
		}
	}
	if req == nil {
		t.Fatal("could not find a key owned by the rejecting worker")
	}
	w := postAnalyze(t, co.Handler(), req)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", w.Code, w.Body)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("rejecting worker called %d times, want exactly 1 (no failover on 4xx)", got)
	}
	if st := co.Stats(); st.Failovers != 0 {
		t.Fatalf("failovers = %d on a terminal 4xx, want 0", st.Failovers)
	}
}

// TestRetryAfterPropagated: when the whole fleet is saturated, the
// coordinator's 429 must carry the workers' own Retry-After hint, not a
// recomputed one.
func TestRetryAfterPropagated(t *testing.T) {
	busy := func() *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/readyz" {
				fmt.Fprintln(w, "ready")
				return
			}
			w.Header().Set("Retry-After", "7")
			http.Error(w, "deadmemd: server busy", http.StatusTooManyRequests)
		}))
	}
	a, b := busy(), busy()
	t.Cleanup(a.Close)
	t.Cleanup(b.Close)
	cfg := testCfg(a.URL, b.URL)
	cfg.AttemptsPerWorker = 1
	co := newTestCoordinator(t, cfg)

	w := postAnalyze(t, co.Handler(), apiReq("x.mcc", "class A { int f; };"))
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", w.Code, w.Body)
	}
	if got := w.Header().Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After = %q, want %q (worker hint propagated)", got, "7")
	}
}

// TestBatchPartialResults: a batch never fails all-or-nothing — bad
// units carry failure records while the rest complete.
func TestBatchPartialResults(t *testing.T) {
	a := echoWorker(t, "a", nil)
	b := echoWorker(t, "b", nil)
	co := newTestCoordinator(t, testCfg(a.URL, b.URL))

	breq := api.BatchRequest{Units: []api.BatchUnit{
		{ID: "good", Endpoint: "analyze", Request: *apiReq("x.mcc", "class A { int f; };")},
		{ID: "bad-endpoint", Endpoint: "explode", Request: *apiReq("x.mcc", "class A { int f; };")},
		{Endpoint: "lint"}, // no sources, no id
	}}
	body, _ := json.Marshal(breq)
	r := httptest.NewRequest(http.MethodPost, "/v1/batch", bytes.NewReader(body))
	r.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	co.Handler().ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		t.Fatalf("batch status %d, want 200: %s", w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}

	units := map[string]api.BatchUnitResult{}
	var summary *api.BatchSummary
	sc := bufio.NewScanner(strings.NewReader(w.Body.String()))
	for sc.Scan() {
		var ev api.BatchEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch {
		case ev.Unit != nil:
			if summary != nil {
				t.Fatal("unit event after summary")
			}
			units[ev.Unit.ID] = *ev.Unit
		case ev.Summary != nil:
			summary = ev.Summary
		default:
			t.Fatalf("empty event line %q", sc.Text())
		}
	}
	if summary == nil {
		t.Fatal("no summary event")
	}
	if summary.Units != 3 || summary.OK != 1 || summary.Failed != 2 {
		t.Fatalf("summary = %+v, want 3 units, 1 ok, 2 failed", summary)
	}
	if !units["good"].OK || !strings.HasPrefix(units["good"].Body, "served-by:") {
		t.Fatalf("good unit = %+v", units["good"])
	}
	if u := units["bad-endpoint"]; u.OK || u.Status != http.StatusBadRequest || !strings.Contains(u.Error, "explode") {
		t.Fatalf("bad-endpoint unit = %+v", u)
	}
	if u := units["unit-2"]; u.OK || u.Status != http.StatusBadRequest {
		t.Fatalf("sourceless unit = %+v (want default id unit-2, status 400)", u)
	}
}

// TestBatchAllWorkersDown: even with zero reachable workers the batch
// answers 200 with a failure record per unit — the partial-result
// contract's degenerate case.
func TestBatchAllWorkersDown(t *testing.T) {
	dead := echoWorker(t, "dead", nil)
	url := dead.URL
	dead.Close()
	cfg := testCfg(url)
	cfg.AttemptsPerWorker = 1
	co := newTestCoordinator(t, cfg)

	body, _ := json.Marshal(api.BatchRequest{Units: []api.BatchUnit{
		{ID: "u1", Endpoint: "analyze", Request: *apiReq("x.mcc", "class A { int f; };")},
		{ID: "u2", Endpoint: "lint", Request: *apiReq("y.mcc", "class B { int g; };")},
	}})
	r := httptest.NewRequest(http.MethodPost, "/v1/batch", bytes.NewReader(body))
	r.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	co.Handler().ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		t.Fatalf("batch status %d, want 200 with failure records", w.Code)
	}
	failed := 0
	sc := bufio.NewScanner(strings.NewReader(w.Body.String()))
	for sc.Scan() {
		var ev api.BatchEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Unit != nil {
			if ev.Unit.OK || ev.Unit.Status != http.StatusServiceUnavailable || ev.Unit.Error == "" {
				t.Fatalf("unit = %+v, want explicit 503 failure record", ev.Unit)
			}
			failed++
		}
	}
	if failed != 2 {
		t.Fatalf("%d failure records, want 2", failed)
	}
}

// TestHealthEjectReadmit drives the probe loop against a worker that
// goes unready and comes back: ejection must stop routing to it,
// readmission must bring its keys home.
func TestHealthEjectReadmit(t *testing.T) {
	var ready atomic.Bool
	ready.Store(true)
	flappy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			if !ready.Load() {
				http.Error(w, "draining", http.StatusServiceUnavailable)
				return
			}
			fmt.Fprintln(w, "ready")
			return
		}
		fmt.Fprint(w, "served-by:flappy")
	}))
	t.Cleanup(flappy.Close)
	stable := echoWorker(t, "stable", nil)

	cfg := testCfg(flappy.URL, stable.URL)
	cfg.HealthInterval = 10 * time.Millisecond
	cfg.HealthFailThreshold = 2
	co := newTestCoordinator(t, cfg)

	waitFor := func(what string, pred func(Stats) bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if pred(co.Stats()) {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("timeout waiting for %s; stats %+v", what, co.Stats())
	}

	ready.Store(false)
	waitFor("ejection", func(s Stats) bool { return s.Ejections >= 1 })
	for _, ws := range co.Workers() {
		if ws.URL == flappy.URL && ws.Healthy {
			t.Fatal("flappy worker still marked healthy after ejection")
		}
	}
	// While ejected, its keys route elsewhere without a failed leg.
	var req *api.Request
	for i := 0; i < 100; i++ {
		name, text := fmt.Sprintf("f%d.mcc", i), "class A { int f; };"
		if co.RouteOrder(engine.Source{Name: name, Text: text})[0] == flappy.URL {
			req = apiReq(name, text)
			break
		}
	}
	if req == nil {
		t.Fatal("no key owned by flappy worker")
	}
	w := postAnalyze(t, co.Handler(), req)
	if w.Code != http.StatusOK || w.Body.String() != "served-by:stable" {
		t.Fatalf("ejected-primary request: status %d body %q, want stable worker", w.Code, w.Body)
	}

	ready.Store(true)
	waitFor("readmission", func(s Stats) bool { return s.Readmissions >= 1 })
	w = postAnalyze(t, co.Handler(), req)
	if w.Code != http.StatusOK || w.Body.String() != "served-by:flappy" {
		t.Fatalf("post-readmission request: status %d body %q, want keys home on flappy", w.Code, w.Body)
	}
	if st := co.Stats(); st.Rebalances < 2 {
		t.Fatalf("rebalances = %d, want >= 2 (ejection + readmission)", st.Rebalances)
	}
}

func TestReadyzReflectsFleetHealth(t *testing.T) {
	dead := echoWorker(t, "dead", nil)
	url := dead.URL
	dead.Close()
	cfg := testCfg(url)
	cfg.HealthInterval = 10 * time.Millisecond
	cfg.HealthFailThreshold = 1
	co := newTestCoordinator(t, cfg)

	deadline := time.Now().Add(5 * time.Second)
	for {
		r := httptest.NewRequest(http.MethodGet, "/readyz", nil)
		w := httptest.NewRecorder()
		co.Handler().ServeHTTP(w, r)
		if w.Code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("/readyz never went 503 with zero healthy workers")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestDrainRefusesWork(t *testing.T) {
	a := echoWorker(t, "a", nil)
	co := newTestCoordinator(t, testCfg(a.URL))
	co.StartDrain()

	w := postAnalyze(t, co.Handler(), apiReq("x.mcc", "class A { int f; };"))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("analyze during drain: status %d, want 503", w.Code)
	}
	r := httptest.NewRequest(http.MethodGet, "/readyz", nil)
	rw := httptest.NewRecorder()
	co.Handler().ServeHTTP(rw, r)
	if rw.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during drain: status %d, want 503", rw.Code)
	}
}

func TestMetricsExposition(t *testing.T) {
	a := echoWorker(t, "a", nil)
	co := newTestCoordinator(t, testCfg(a.URL))
	postAnalyze(t, co.Handler(), apiReq("x.mcc", "class A { int f; };"))

	r := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	w := httptest.NewRecorder()
	co.Handler().ServeHTTP(w, r)
	out := w.Body.String()
	for _, series := range []string{
		"deadmemd_fleet_requests_total{endpoint=\"/v1/analyze\",code=\"200\"} 1",
		"deadmemd_fleet_routed_total{worker=",
		"deadmemd_fleet_failover_total 0",
		"deadmemd_fleet_rebalance_total 0",
		"deadmemd_fleet_workers 1",
		"deadmemd_fleet_workers_healthy 1",
	} {
		if !strings.Contains(out, series) {
			t.Fatalf("metrics missing %q in:\n%s", series, out)
		}
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New with no workers did not error")
	}
	if _, err := New(Config{Workers: []string{"not a url"}}); err == nil {
		t.Fatal("New with invalid worker URL did not error")
	}
	if _, err := New(Config{Workers: []string{"http://a:1", "http://a:1"}}); err == nil {
		t.Fatal("New with duplicate workers did not error")
	}
}
