package fleet

import (
	"context"
	"net/http"
	"strings"
	"sync"
	"time"
)

// healthChecker actively probes each worker's /readyz and maintains the
// eject/readmit state the router consults. A worker is ejected after
// FailThreshold consecutive failed probes (routing skips it without
// burning a connection attempt) and readmitted on the first successful
// probe — so a restarted or recovered worker rejoins the ring within
// one probe interval, and its keys come home.
type healthChecker struct {
	workers   []string
	interval  time.Duration
	timeout   time.Duration
	threshold int
	client    *http.Client
	met       *metrics

	mu    sync.Mutex
	state map[string]*workerHealth

	stop chan struct{}
	done chan struct{}
}

type workerHealth struct {
	healthy bool
	fails   int // consecutive failed probes
}

// WorkerStatus is one worker's health as reported by /fleet/workers.
type WorkerStatus struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	// Fails is the current consecutive failed-probe count.
	Fails int `json:"fails,omitempty"`
}

func newHealthChecker(workers []string, interval, timeout time.Duration, threshold int, hc *http.Client, met *metrics) *healthChecker {
	state := make(map[string]*workerHealth, len(workers))
	for _, w := range workers {
		// Workers start healthy: a booting coordinator must not refuse
		// traffic for an interval while the first probes land.
		state[w] = &workerHealth{healthy: true}
	}
	return &healthChecker{
		workers:   workers,
		interval:  interval,
		timeout:   timeout,
		threshold: threshold,
		client:    hc,
		met:       met,
		state:     state,
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
}

// run is the probe loop; it exits when close is called.
func (h *healthChecker) run() {
	defer close(h.done)
	t := time.NewTicker(h.interval)
	defer t.Stop()
	for {
		select {
		case <-h.stop:
			return
		case <-t.C:
			h.probeAll()
		}
	}
}

func (h *healthChecker) close() {
	close(h.stop)
	<-h.done
}

// probeAll probes every worker concurrently; one slow worker must not
// delay the verdict on its peers.
func (h *healthChecker) probeAll() {
	var wg sync.WaitGroup
	for _, w := range h.workers {
		wg.Add(1)
		go func(w string) {
			defer wg.Done()
			h.record(w, h.probe(w))
		}(w)
	}
	wg.Wait()
}

// probe reports whether one /readyz answered 200 within the timeout. A
// draining worker answers 503 and is treated exactly like a dead one:
// stop routing new work there.
func (h *healthChecker) probe(worker string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), h.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimRight(worker, "/")+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := h.client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// record folds one probe result into the eject/readmit state machine.
func (h *healthChecker) record(worker string, ok bool) {
	h.met.markProbe(ok)
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.state[worker]
	if ok {
		st.fails = 0
		if !st.healthy {
			st.healthy = true
			h.met.markReadmission()
		}
		return
	}
	st.fails++
	if st.healthy && st.fails >= h.threshold {
		st.healthy = false
		h.met.markEjection()
	}
}

// isHealthy reports whether routing should consider worker at all.
func (h *healthChecker) isHealthy(worker string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.state[worker].healthy
}

// snapshot returns every worker's status in configuration order.
func (h *healthChecker) snapshot() []WorkerStatus {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]WorkerStatus, 0, len(h.workers))
	for _, w := range h.workers {
		st := h.state[w]
		out = append(out, WorkerStatus{URL: w, Healthy: st.healthy, Fails: st.fails})
	}
	return out
}

// healthyCount is the number of workers currently admitted to routing.
func (h *healthChecker) healthyCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for _, st := range h.state {
		if st.healthy {
			n++
		}
	}
	return n
}
