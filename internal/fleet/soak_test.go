package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"deadmembers/internal/api"
	"deadmembers/internal/deadmember"
	"deadmembers/internal/engine"
	"deadmembers/internal/lint"
	"deadmembers/internal/server"
	"deadmembers/internal/strip"
	"deadmembers/internal/textreport"
)

// TestFleetChaosSoak is the fleet-mode acceptance test: three real
// chaos-enabled workers behind a coordinator, a /v1/batch over a corpus
// streamed while one worker is SIGKILL-equivalently destroyed
// mid-batch (listener and connections torn down, no drain), then the
// worker restarted on the same address. The invariants:
//
//   - no request is lost: the stream carries exactly one result per
//     unit plus one summary, even across the kill;
//   - every unit eventually succeeds with a body byte-identical to the
//     local CLI renderers' output (failure records are allowed on the
//     way; wrong bytes never);
//   - the failover and rebalance counters move: surviving workers
//     absorb the dead worker's keys, health checks eject it, and the
//     restarted worker is readmitted.
func TestFleetChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test; run without -short")
	}

	// The corpus, with ground truth rendered through the same writers
	// the CLIs and workers use.
	type job struct {
		endpoint string
		req      *api.Request
		source   engine.Source
		want     string
	}
	var jobs []job
	for i := 0; i < 8; i++ {
		text := fmt.Sprintf(`class C%d {
public:
	int used;
	int unused;
	C%d() : used(1), unused(2) {}
};
int main() { C%d c; return c.used; }
`, i, i, i)
		name := fmt.Sprintf("c%d.mcc", i)
		src := engine.Source{Name: name, Text: text}
		comp := engine.Compile(engine.Config{Workers: 1}, src)
		if err := comp.Err(); err != nil {
			t.Fatal(err)
		}
		req := &api.Request{Sources: []api.Source{{Name: name, Text: text}}}

		var abuf bytes.Buffer
		if err := textreport.Write(&abuf, comp.Analyze(deadmember.Options{}), textreport.Options{}); err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, job{"analyze", req, src, abuf.String()})

		var lbuf bytes.Buffer
		if err := lint.WriteText(&lbuf, comp.Lint(deadmember.Options{}, lint.Options{})); err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, job{"lint", req, src, lbuf.String()})

		var sbuf bytes.Buffer
		if err := strip.WriteSources(&sbuf, comp.Strip(deadmember.Options{}, strip.Options{}).Sources); err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, job{"strip", req, src, sbuf.String()})
	}

	// Three chaos-enabled workers, each with its own persist dir.
	bootWorker := func(ln net.Listener, seed int64) *http.Server {
		t.Helper()
		s, err := server.New(server.Config{
			Workers:      1,
			PersistDir:   t.TempDir(),
			ChaosRate:    0.05,
			ChaosSeed:    seed,
			ChaosLatency: time.Millisecond,
			MaxInflight:  4,
			MaxQueue:     64,
		})
		if err != nil {
			t.Fatal(err)
		}
		hs := &http.Server{Handler: s.Handler()}
		go hs.Serve(ln)
		return hs
	}
	servers := make(map[string]*http.Server)
	var urls []string
	for i := 0; i < 3; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		url := "http://" + ln.Addr().String()
		servers[url] = bootWorker(ln, int64(100+i))
		urls = append(urls, url)
	}
	defer func() {
		for _, hs := range servers {
			hs.Close()
		}
	}()

	// Health checks deliberately slow relative to the batch: the kill
	// must be survived by failover first, ejection second.
	co, err := New(Config{
		Workers:             urls,
		HealthInterval:      100 * time.Millisecond,
		HealthTimeout:       time.Second,
		HealthFailThreshold: 3,
		RetryBudget:         3,
		AttemptsPerWorker:   4,
		BatchConcurrency:    2,
		BaseBackoff:         2 * time.Millisecond,
		MaxBackoff:          20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	front := httptest.NewServer(co.Handler())
	defer front.Close()

	// The victim is the worker owning the most primaries, so the kill
	// is guaranteed to strand in-flight keys.
	primaries := map[string]int{}
	for _, j := range jobs {
		primaries[co.RouteOrder(j.source)[0]]++
	}
	victim := urls[0]
	for u, n := range primaries {
		if n > primaries[victim] {
			victim = u
		}
	}

	units := make([]api.BatchUnit, len(jobs))
	for i, j := range jobs {
		units[i] = api.BatchUnit{ID: fmt.Sprintf("job-%d", i), Endpoint: j.endpoint, Request: *j.req}
	}
	body, err := json.Marshal(api.BatchRequest{Units: units})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(front.URL+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}

	// Stream the NDJSON results, killing the victim after the second
	// unit lands — abrupt teardown, no drain, connections reset.
	results := map[string]api.BatchUnitResult{}
	var summary *api.BatchSummary
	killed := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev api.BatchEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch {
		case ev.Unit != nil:
			if _, dup := results[ev.Unit.ID]; dup {
				t.Fatalf("unit %s reported twice", ev.Unit.ID)
			}
			results[ev.Unit.ID] = *ev.Unit
			if len(results) == 2 && !killed {
				killed = true
				servers[victim].Close()
			}
		case ev.Summary != nil:
			summary = ev.Summary
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !killed {
		t.Fatal("batch finished before the kill could land")
	}

	// No request lost: one result per unit, summary consistent.
	if summary == nil {
		t.Fatal("no summary event")
	}
	if summary.Units != len(units) || len(results) != len(units) {
		t.Fatalf("summary %+v with %d results, want %d units accounted for", summary, len(results), len(units))
	}
	if summary.OK+summary.Failed != summary.Units {
		t.Fatalf("summary %+v does not add up", summary)
	}

	// Partial-result contract: successes must be byte-identical to the
	// CLI renderers; failures must be explicit records, never silence.
	checkBody := func(id, got string, j job) {
		t.Helper()
		if got != j.want {
			t.Fatalf("%s (%s %s): served bytes differ from CLI ground truth:\ngot:  %q\nwant: %q",
				id, j.endpoint, j.source.Name, got, j.want)
		}
	}
	var failedIDs []string
	for i, j := range jobs {
		id := fmt.Sprintf("job-%d", i)
		r := results[id]
		if r.OK {
			checkBody(id, r.Body, j)
		} else {
			if r.Status == 0 || r.Error == "" {
				t.Fatalf("%s failed without an explicit failure record: %+v", id, r)
			}
			failedIDs = append(failedIDs, id)
		}
	}

	// Every unit eventually succeeds: retry the failures through the
	// coordinator until the surviving workers absorb them all.
	deadline := time.Now().Add(30 * time.Second)
	for _, id := range failedIDs {
		var idx int
		fmt.Sscanf(id, "job-%d", &idx)
		j := jobs[idx]
		for {
			if time.Now().After(deadline) {
				t.Fatalf("%s never succeeded after the kill", id)
			}
			ok, bodyStr := postOne(t, front.URL, j.endpoint, j.req)
			if ok {
				checkBody(id, bodyStr, j)
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	// The kill must be visible in the counters: failover moved keys to
	// ring successors, and the health checker ejected the dead worker.
	waitFor := func(what string, pred func(Stats) bool) {
		t.Helper()
		for !pred(co.Stats()) {
			if time.Now().After(deadline) {
				t.Fatalf("timeout waiting for %s; stats %+v", what, co.Stats())
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	if st := co.Stats(); st.Failovers == 0 {
		t.Fatalf("failover counter did not move across the kill; stats %+v", st)
	}
	waitFor("ejection of the dead worker", func(s Stats) bool { return s.Ejections >= 1 })

	// Restart the victim on the same address; the health checker must
	// readmit it and its keys must come home and still serve correct
	// bytes.
	victimAddr := strings.TrimPrefix(victim, "http://")
	var relisten net.Listener
	for i := 0; i < 100; i++ {
		var lnErr error
		relisten, lnErr = net.Listen("tcp", victimAddr)
		if lnErr == nil {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if relisten == nil {
		t.Fatalf("could not rebind %s after the kill", victimAddr)
	}
	servers[victim] = bootWorker(relisten, 999)
	waitFor("readmission of the restarted worker", func(s Stats) bool { return s.Readmissions >= 1 })
	if st := co.Stats(); st.Rebalances < 2 {
		t.Fatalf("rebalance counter = %d, want >= 2 (ejection + readmission); stats %+v", st.Rebalances, st)
	}

	// A key owned by the victim serves again, byte-identical.
	for i, j := range jobs {
		if co.RouteOrder(j.source)[0] != victim {
			continue
		}
		var got string
		for {
			if time.Now().After(deadline) {
				t.Fatalf("victim-owned job-%d never served after restart", i)
			}
			ok, bodyStr := postOne(t, front.URL, j.endpoint, j.req)
			if ok {
				got = bodyStr
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		checkBody(fmt.Sprintf("job-%d(restarted)", i), got, j)
		break
	}
}

// postOne sends a single unit through the coordinator's plain /v1
// endpoint; failures are data for the soak's retry loop.
func postOne(t *testing.T, base, endpoint string, req *api.Request) (bool, string) {
	t.Helper()
	payload, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/"+endpoint, bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		return false, ""
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return false, ""
	}
	return resp.StatusCode == http.StatusOK, buf.String()
}
