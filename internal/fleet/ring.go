package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// vnodes is the number of points each worker contributes to the ring.
// 64 keeps the worst-case load skew across a handful of workers under a
// few percent while the full ring stays small enough to rebuild in
// microseconds.
const vnodes = 64

// ring is a consistent-hash ring over the worker set. It is immutable
// after newRing: health-based ejection filters the candidate order at
// lookup time instead of rebuilding the ring, so a worker that flaps
// never reshuffles keys owned by its healthy peers.
type ring struct {
	workers []string
	points  []ringPoint // sorted by hash
}

type ringPoint struct {
	hash   uint64
	worker int // index into workers
}

func newRing(workers []string) *ring {
	r := &ring{workers: workers}
	for wi, w := range workers {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:   hashString(fmt.Sprintf("%s#%d", w, v)),
				worker: wi,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].worker < r.points[j].worker
	})
	return r
}

// order returns every worker in preference order for key: the primary
// (first vnode clockwise from the key's hash) first, then each distinct
// successor. Identical keys always produce identical orders, so a
// fingerprint compiles on exactly one node while that node is up — and
// fails over to the same successor everywhere when it is not.
func (r *ring) order(key string) []string {
	if len(r.workers) == 0 {
		return nil
	}
	h := hashString(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, len(r.workers))
	seen := make([]bool, len(r.workers))
	for i := 0; i < len(r.points) && len(out) < len(r.workers); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.worker] {
			seen[p.worker] = true
			out = append(out, r.workers[p.worker])
		}
	}
	return out
}

func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
