package fleet

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// metrics aggregates coordinator-side counters for /metrics. Safe for
// concurrent use; exposition is deterministic (sorted label sets).
type metrics struct {
	mu       sync.Mutex
	requests map[reqKey]int64 // finished coordinator requests
	routed   map[string]int64 // successful proxied calls by worker
	latency  map[string]*latencySummary

	failovers     int64 // requests moved past their primary to a successor
	ejections     int64 // workers removed from routing by health checks
	readmissions  int64 // workers restored to routing
	probes        int64
	probeFailures int64
	batches       int64
	batchUnitsOK  int64
	batchUnitsErr int64
	retriesSpent  int64 // extra worker legs beyond the first, all causes
}

type reqKey struct {
	endpoint string
	code     int
}

type latencySummary struct {
	sum   float64
	count int64
}

func newMetrics() *metrics {
	return &metrics{
		requests: map[reqKey]int64{},
		routed:   map[string]int64{},
		latency:  map[string]*latencySummary{},
	}
}

func (m *metrics) observe(endpoint string, code int, took time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[reqKey{endpoint, code}]++
	ls := m.latency[endpoint]
	if ls == nil {
		ls = &latencySummary{}
		m.latency[endpoint] = ls
	}
	ls.sum += took.Seconds()
	ls.count++
}

func (m *metrics) markRouted(worker string) {
	m.mu.Lock()
	m.routed[worker]++
	m.mu.Unlock()
}

func (m *metrics) markFailover() {
	m.mu.Lock()
	m.failovers++
	m.mu.Unlock()
}

func (m *metrics) markRetry() {
	m.mu.Lock()
	m.retriesSpent++
	m.mu.Unlock()
}

func (m *metrics) markEjection() {
	m.mu.Lock()
	m.ejections++
	m.mu.Unlock()
}

func (m *metrics) markReadmission() {
	m.mu.Lock()
	m.readmissions++
	m.mu.Unlock()
}

func (m *metrics) markProbe(ok bool) {
	m.mu.Lock()
	m.probes++
	if !ok {
		m.probeFailures++
	}
	m.mu.Unlock()
}

func (m *metrics) markBatch(ok, failed int) {
	m.mu.Lock()
	m.batches++
	m.batchUnitsOK += int64(ok)
	m.batchUnitsErr += int64(failed)
	m.mu.Unlock()
}

// Stats is a snapshot of the fleet counters, used by tests and smoke
// tooling; the Prometheus exposition is the production surface.
type Stats struct {
	Failovers     int64
	Ejections     int64
	Readmissions  int64
	Rebalances    int64 // ejections + readmissions: routing-order changes
	Probes        int64
	ProbeFailures int64
	Batches       int64
	BatchUnitsOK  int64
	BatchUnitsErr int64
	RoutedByURL   map[string]int64
}

func (m *metrics) stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	routed := make(map[string]int64, len(m.routed))
	for k, v := range m.routed {
		routed[k] = v
	}
	return Stats{
		Failovers:     m.failovers,
		Ejections:     m.ejections,
		Readmissions:  m.readmissions,
		Rebalances:    m.ejections + m.readmissions,
		Probes:        m.probes,
		ProbeFailures: m.probeFailures,
		Batches:       m.batches,
		BatchUnitsOK:  m.batchUnitsOK,
		BatchUnitsErr: m.batchUnitsErr,
		RoutedByURL:   routed,
	}
}

// writePrometheus renders the Prometheus text exposition format.
func (m *metrics) writePrometheus(w io.Writer, workers, healthy int) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintf(w, "# HELP deadmemd_fleet_requests_total Coordinator requests served, by endpoint and status code.\n")
	fmt.Fprintf(w, "# TYPE deadmemd_fleet_requests_total counter\n")
	keys := make([]reqKey, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].endpoint != keys[j].endpoint {
			return keys[i].endpoint < keys[j].endpoint
		}
		return keys[i].code < keys[j].code
	})
	for _, k := range keys {
		fmt.Fprintf(w, "deadmemd_fleet_requests_total{endpoint=%q,code=\"%d\"} %d\n", k.endpoint, k.code, m.requests[k])
	}

	fmt.Fprintf(w, "# HELP deadmemd_fleet_request_duration_seconds Coordinator request latency, by endpoint.\n")
	fmt.Fprintf(w, "# TYPE deadmemd_fleet_request_duration_seconds summary\n")
	endpoints := make([]string, 0, len(m.latency))
	for e := range m.latency {
		endpoints = append(endpoints, e)
	}
	sort.Strings(endpoints)
	for _, e := range endpoints {
		ls := m.latency[e]
		fmt.Fprintf(w, "deadmemd_fleet_request_duration_seconds_sum{endpoint=%q} %g\n", e, ls.sum)
		fmt.Fprintf(w, "deadmemd_fleet_request_duration_seconds_count{endpoint=%q} %d\n", e, ls.count)
	}

	fmt.Fprintf(w, "# HELP deadmemd_fleet_routed_total Successful proxied calls, by worker.\n")
	fmt.Fprintf(w, "# TYPE deadmemd_fleet_routed_total counter\n")
	urls := make([]string, 0, len(m.routed))
	for u := range m.routed {
		urls = append(urls, u)
	}
	sort.Strings(urls)
	for _, u := range urls {
		fmt.Fprintf(w, "deadmemd_fleet_routed_total{worker=%q} %d\n", u, m.routed[u])
	}

	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("deadmemd_fleet_failover_total", "Requests served by a ring successor after their primary failed.", m.failovers)
	counter("deadmemd_fleet_retries_total", "Extra worker legs spent beyond each request's first, all causes.", m.retriesSpent)
	counter("deadmemd_fleet_ejections_total", "Workers ejected from routing by failed health probes.", m.ejections)
	counter("deadmemd_fleet_readmissions_total", "Ejected workers readmitted after a successful probe.", m.readmissions)
	counter("deadmemd_fleet_rebalance_total", "Routing-order changes (ejections plus readmissions).", m.ejections+m.readmissions)
	counter("deadmemd_fleet_probes_total", "Health probes sent.", m.probes)
	counter("deadmemd_fleet_probe_failures_total", "Health probes that failed.", m.probeFailures)
	counter("deadmemd_fleet_batches_total", "Batch requests served.", m.batches)
	counter("deadmemd_fleet_batch_units_ok_total", "Batch units that completed successfully.", m.batchUnitsOK)
	counter("deadmemd_fleet_batch_units_failed_total", "Batch units that carried a failure record.", m.batchUnitsErr)
	gauge("deadmemd_fleet_workers", "Configured workers.", int64(workers))
	gauge("deadmemd_fleet_workers_healthy", "Workers currently admitted to routing.", int64(healthy))
}
