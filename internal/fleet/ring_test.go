package fleet

import (
	"fmt"
	"reflect"
	"testing"
)

func TestRingOrderDeterministic(t *testing.T) {
	workers := []string{"http://a:1", "http://b:1", "http://c:1"}
	r1 := newRing(workers)
	r2 := newRing([]string{"http://a:1", "http://b:1", "http://c:1"})
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("fingerprint-%d", i)
		o1, o2 := r1.order(key), r2.order(key)
		if !reflect.DeepEqual(o1, o2) {
			t.Fatalf("order(%q) differs across identical rings: %v vs %v", key, o1, o2)
		}
		if len(o1) != len(workers) {
			t.Fatalf("order(%q) = %v, want %d distinct workers", key, o1, len(workers))
		}
		seen := map[string]bool{}
		for _, w := range o1 {
			if seen[w] {
				t.Fatalf("order(%q) repeats worker %s: %v", key, w, o1)
			}
			seen[w] = true
		}
	}
}

// TestRingBalance: with vnodes per worker, primary placement over many
// keys should not starve any worker. The bound is deliberately loose —
// consistent hashing trades perfect balance for stability.
func TestRingBalance(t *testing.T) {
	workers := []string{"http://a:1", "http://b:1", "http://c:1"}
	r := newRing(workers)
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		counts[r.order(fmt.Sprintf("key-%d", i))[0]]++
	}
	for _, w := range workers {
		if counts[w] < keys/10 {
			t.Fatalf("worker %s owns only %d/%d keys; ring badly skewed: %v", w, counts[w], keys, counts)
		}
	}
}

// TestRingStability: adding a worker must not reshuffle keys between
// the surviving workers — only moves toward the new node are allowed.
func TestRingStability(t *testing.T) {
	old := newRing([]string{"http://a:1", "http://b:1", "http://c:1"})
	grown := newRing([]string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"})
	moved, kept := 0, 0
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("key-%d", i)
		was, is := old.order(key)[0], grown.order(key)[0]
		if was == is {
			kept++
			continue
		}
		if is != "http://d:1" {
			t.Fatalf("key %q moved %s -> %s, not to the new worker", key, was, is)
		}
		moved++
	}
	if moved == 0 {
		t.Fatal("no keys moved to the new worker")
	}
	if kept == 0 {
		t.Fatal("every key moved; ring is not consistent")
	}
}

func TestRingEmpty(t *testing.T) {
	if got := newRing(nil).order("k"); got != nil {
		t.Fatalf("empty ring order = %v, want nil", got)
	}
}
