// Package fleet implements deadmemd's coordinator mode: a stateless
// router in front of N shared-nothing deadmemd workers.
//
// Requests to /v1/analyze, /v1/lint, and /v1/strip are consistent-hash
// routed by compilation fingerprint, so each distinct source bundle
// compiles on exactly one worker while it is up — the session cache's
// singleflight property extended across the fleet. The coordinator→
// worker leg reuses internal/client: per-worker circuit breakers,
// bounded retries with backoff, Retry-After honored.
//
// Robustness is the point of the layer:
//
//   - active health checking: /readyz probes eject a dead or draining
//     worker from routing and readmit it when it recovers;
//   - failover: when a worker is down, ejected, or its breaker is
//     open, the request moves to the next node on the ring, under a
//     bounded per-request retry budget so a sick fleet degrades
//     instead of retry-storming;
//   - partial results: /v1/batch scatter-gathers a whole corpus across
//     the fleet and streams one NDJSON result per unit — units that
//     could not be served anywhere carry explicit failure records and
//     the batch as a whole never fails all-or-nothing;
//   - propagated backpressure: when the fleet is saturated the
//     coordinator's 429/503 carries the worker's own Retry-After hint
//     rather than a recomputed one.
package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"deadmembers/internal/api"
	"deadmembers/internal/client"
	"deadmembers/internal/engine"
)

// statusClientClosedRequest mirrors nginx's nonstandard 499 (and the
// worker server's use of it).
const statusClientClosedRequest = 499

// Config sizes the coordinator. Zero fields take the documented
// defaults.
type Config struct {
	// Workers are the base URLs of the fleet, e.g.
	// ["http://10.0.0.1:8100", "http://10.0.0.2:8100"]. Order is
	// irrelevant to routing (placement is by hash) but preserved in
	// status output.
	Workers []string

	// HealthInterval is the /readyz probe period (default 2s).
	HealthInterval time.Duration
	// HealthTimeout bounds one probe (default 1s).
	HealthTimeout time.Duration
	// HealthFailThreshold is the consecutive failed-probe count that
	// ejects a worker from routing (default 3).
	HealthFailThreshold int

	// RetryBudget bounds how many distinct workers one request may try
	// (default 3, clamped to the fleet size). This is the fleet-level
	// retry bound; AttemptsPerWorker bounds each leg.
	RetryBudget int
	// AttemptsPerWorker bounds the client retry loop per worker leg
	// (default 2).
	AttemptsPerWorker int

	// BatchConcurrency bounds concurrently in-flight batch units
	// (default 2×workers, minimum 4).
	BatchConcurrency int

	// RequestTimeout bounds each proxied call, batch units included
	// (default 120s; negative = none).
	RequestTimeout time.Duration
	// MaxRequestBytes caps the request body (default 64 MiB).
	MaxRequestBytes int64

	// HTTPClient overrides the transport for worker calls and health
	// probes (default http.DefaultClient).
	HTTPClient *http.Client
	// BaseBackoff/MaxBackoff tune the per-leg client backoff; zero
	// takes the client's defaults. Tests shrink them.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
}

func (c Config) withDefaults() Config {
	if c.HealthInterval <= 0 {
		c.HealthInterval = 2 * time.Second
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = time.Second
	}
	if c.HealthFailThreshold <= 0 {
		c.HealthFailThreshold = 3
	}
	if c.RetryBudget <= 0 {
		c.RetryBudget = 3
	}
	if c.RetryBudget > len(c.Workers) {
		c.RetryBudget = len(c.Workers)
	}
	if c.AttemptsPerWorker <= 0 {
		c.AttemptsPerWorker = 2
	}
	if c.BatchConcurrency <= 0 {
		c.BatchConcurrency = 2 * len(c.Workers)
		if c.BatchConcurrency < 4 {
			c.BatchConcurrency = 4
		}
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 120 * time.Second
	}
	if c.MaxRequestBytes <= 0 {
		c.MaxRequestBytes = 64 << 20
	}
	if c.HTTPClient == nil {
		c.HTTPClient = http.DefaultClient
	}
	return c
}

// Coordinator routes /v1 traffic across the worker fleet.
type Coordinator struct {
	cfg      Config
	ring     *ring
	hc       *healthChecker
	cl       *client.Client
	met      *metrics
	draining atomic.Bool
	mux      *http.ServeMux
}

// New builds a Coordinator and starts its health-check loop; callers
// must Close it.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Workers) == 0 {
		return nil, errors.New("fleet: no workers configured")
	}
	seen := map[string]bool{}
	for _, w := range cfg.Workers {
		u, err := url.Parse(w)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("fleet: invalid worker URL %q", w)
		}
		if seen[w] {
			return nil, fmt.Errorf("fleet: duplicate worker URL %q", w)
		}
		seen[w] = true
	}
	met := newMetrics()
	c := &Coordinator{
		cfg:  cfg,
		ring: newRing(cfg.Workers),
		hc: newHealthChecker(cfg.Workers, cfg.HealthInterval, cfg.HealthTimeout,
			cfg.HealthFailThreshold, cfg.HTTPClient, met),
		cl: client.New(client.Config{
			HTTPClient:  cfg.HTTPClient,
			MaxAttempts: cfg.AttemptsPerWorker,
			BaseBackoff: cfg.BaseBackoff,
			MaxBackoff:  cfg.MaxBackoff,
		}),
		met: met,
		mux: http.NewServeMux(),
	}
	c.mux.HandleFunc("/healthz", c.handleHealthz)
	c.mux.HandleFunc("/readyz", c.handleReadyz)
	c.mux.HandleFunc("/metrics", c.handleMetrics)
	c.mux.HandleFunc("/fleet/workers", c.handleWorkers)
	c.mux.Handle("/v1/analyze", c.proxyEndpoint("/v1/analyze"))
	c.mux.Handle("/v1/lint", c.proxyEndpoint("/v1/lint"))
	c.mux.Handle("/v1/strip", c.proxyEndpoint("/v1/strip"))
	c.mux.HandleFunc("/v1/batch", c.handleBatch)
	go c.hc.run()
	return c, nil
}

// Handler returns the root HTTP handler.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Close stops the health-check loop.
func (c *Coordinator) Close() { c.hc.close() }

// StartDrain flips /readyz to 503 and refuses new work, so load
// balancers stop routing here while in-flight requests finish.
func (c *Coordinator) StartDrain() { c.draining.Store(true) }

// Stats snapshots the fleet counters (tests and smoke tooling).
func (c *Coordinator) Stats() Stats { return c.met.stats() }

// Workers returns every worker's current health status.
func (c *Coordinator) Workers() []WorkerStatus { return c.hc.snapshot() }

// RouteOrder exposes the ring's preference order for a source bundle
// (ops tooling and tests: "which worker owns this fingerprint?").
func (c *Coordinator) RouteOrder(sources ...engine.Source) []string {
	return c.ring.order(engine.Fingerprint(sources...))
}

// httpError is a terminal failure carrying the status to report and an
// optional Retry-After propagated from a worker.
type httpError struct {
	code       int
	msg        string
	retryAfter time.Duration
}

func (c *Coordinator) fail(w http.ResponseWriter, endpoint string, start time.Time, herr *httpError) {
	if herr.retryAfter > 0 {
		w.Header().Set("Retry-After", fmt.Sprint(int(math.Ceil(herr.retryAfter.Seconds()))))
	}
	http.Error(w, "deadmemd: "+herr.msg, herr.code)
	c.met.observe(endpoint, herr.code, time.Since(start))
}

// proxyEndpoint serves one /v1 analysis endpoint by routing it across
// the fleet.
func (c *Coordinator) proxyEndpoint(endpoint string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			c.fail(w, endpoint, start, &httpError{code: http.StatusMethodNotAllowed, msg: "use POST"})
			return
		}
		if c.draining.Load() {
			c.fail(w, endpoint, start, &httpError{code: http.StatusServiceUnavailable, msg: "draining"})
			return
		}
		req, herr := c.decode(w, r)
		if herr != nil {
			c.fail(w, endpoint, start, herr)
			return
		}
		ctx := r.Context()
		if c.cfg.RequestTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, c.cfg.RequestTimeout)
			defer cancel()
		}
		res, herr := c.route(ctx, endpoint, req)
		if herr != nil {
			c.fail(w, endpoint, start, herr)
			return
		}
		if res.Degraded {
			w.Header().Set(api.DegradedHeader, "true")
		}
		ct := res.ContentType
		if ct == "" {
			ct = "text/plain; charset=utf-8"
		}
		w.Header().Set("Content-Type", ct)
		w.Write(res.Body)
		c.met.observe(endpoint, http.StatusOK, time.Since(start))
	}
}

// decode reads and normalizes the request body (either wire form).
func (c *Coordinator) decode(w http.ResponseWriter, r *http.Request) (*api.Request, *httpError) {
	r.Body = http.MaxBytesReader(w, r.Body, c.cfg.MaxRequestBytes)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return nil, &httpError{code: http.StatusRequestEntityTooLarge,
				msg: fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit)}
		}
		return nil, &httpError{code: http.StatusBadRequest, msg: fmt.Sprintf("reading body: %v", err)}
	}
	req, err := api.FromHTTP(r, body)
	if err != nil {
		return nil, &httpError{code: http.StatusBadRequest, msg: err.Error()}
	}
	if len(req.Sources) == 0 {
		return nil, &httpError{code: http.StatusBadRequest, msg: "no sources in request"}
	}
	return req, nil
}

// route sends req down the ring's preference order for its fingerprint
// until a worker answers or the retry budget is spent.
//
// Candidates are the healthy workers in ring order; if every worker is
// ejected, the full ring order is used anyway — a fleet that is all
// "down" by probe may still have a worker limping, and trying beats
// refusing. Terminal 4xx from a worker is the request's own fault and
// is forwarded without failover (every worker would agree).
func (c *Coordinator) route(ctx context.Context, endpoint string, req *api.Request) (*client.Result, *httpError) {
	sources := make([]engine.Source, len(req.Sources))
	for i, s := range req.Sources {
		sources[i] = engine.Source{Name: s.Name, Text: s.Text}
	}
	prefs := c.ring.order(engine.Fingerprint(sources...))
	candidates := make([]string, 0, len(prefs))
	for _, w := range prefs {
		if c.hc.isHealthy(w) {
			candidates = append(candidates, w)
		}
	}
	allEjected := len(candidates) == 0
	if allEjected {
		candidates = prefs
	}
	if len(candidates) > c.cfg.RetryBudget {
		candidates = candidates[:c.cfg.RetryBudget]
	}

	var (
		lastErr   error
		lastBusy  *client.TransientError
		failedOne bool
	)
	for i, worker := range candidates {
		if err := ctx.Err(); err != nil {
			return nil, ctxErr(err)
		}
		if i > 0 {
			c.met.markRetry()
		}
		res, err := c.cl.Do(ctx, worker, endpoint, req)
		if err == nil {
			c.met.markRouted(worker)
			if failedOne {
				c.met.markFailover()
			}
			return res, nil
		}
		var apiErr *client.APIError
		if errors.As(err, &apiErr) {
			return nil, &httpError{code: apiErr.Status, msg: apiErr.Message}
		}
		if ctx.Err() != nil {
			return nil, ctxErr(ctx.Err())
		}
		failedOne = true
		lastErr = err
		var te *client.TransientError
		if errors.As(err, &te) {
			lastBusy = te
		}
	}

	// Budget exhausted. Saturation (429) propagates as 429 with the
	// worker's own Retry-After; everything else is 503.
	herr := &httpError{code: http.StatusServiceUnavailable,
		msg: fmt.Sprintf("no worker available: %v", lastErr)}
	if lastBusy != nil {
		herr.retryAfter = lastBusy.RetryAfter
		if lastBusy.Status == http.StatusTooManyRequests {
			herr.code = http.StatusTooManyRequests
			herr.msg = fmt.Sprintf("fleet saturated: %v", lastErr)
		}
	}
	if allEjected {
		herr.msg = "no healthy workers: " + herr.msg
	}
	return nil, herr
}

// ctxErr maps a cancelled proxied call onto the transport: deadline →
// 504, client disconnect → 499.
func ctxErr(err error) *httpError {
	if errors.Is(err, context.DeadlineExceeded) {
		return &httpError{code: http.StatusGatewayTimeout, msg: "fleet deadline exceeded"}
	}
	return &httpError{code: statusClientClosedRequest, msg: "client closed request"}
}

// endpointPath maps a batch unit's endpoint name to its /v1 path.
func endpointPath(name string) (string, bool) {
	switch name {
	case "analyze":
		return "/v1/analyze", true
	case "lint":
		return "/v1/lint", true
	case "strip":
		return "/v1/strip", true
	}
	return "", false
}

// handleBatch serves POST /v1/batch: scatter-gather over the fleet with
// streamed per-unit results.
//
// The response is NDJSON (one api.BatchEvent per line): unit results in
// completion order, then exactly one summary line. The HTTP status is
// committed before any unit runs, so the batch can never turn into an
// all-or-nothing error: a unit the fleet cannot serve is reported as a
// failure record in the stream while the rest of the corpus completes.
func (c *Coordinator) handleBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	const endpoint = "/v1/batch"
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		c.fail(w, endpoint, start, &httpError{code: http.StatusMethodNotAllowed, msg: "use POST"})
		return
	}
	if c.draining.Load() {
		c.fail(w, endpoint, start, &httpError{code: http.StatusServiceUnavailable, msg: "draining"})
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, c.cfg.MaxRequestBytes)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			c.fail(w, endpoint, start, &httpError{code: http.StatusRequestEntityTooLarge,
				msg: fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit)})
			return
		}
		c.fail(w, endpoint, start, &httpError{code: http.StatusBadRequest, msg: fmt.Sprintf("reading body: %v", err)})
		return
	}
	var breq api.BatchRequest
	if err := json.Unmarshal(body, &breq); err != nil {
		c.fail(w, endpoint, start, &httpError{code: http.StatusBadRequest, msg: fmt.Sprintf("invalid JSON body: %v", err)})
		return
	}
	if len(breq.Units) == 0 {
		c.fail(w, endpoint, start, &httpError{code: http.StatusBadRequest, msg: "no units in batch"})
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	var wmu sync.Mutex
	emit := func(ev api.BatchEvent) {
		wmu.Lock()
		defer wmu.Unlock()
		enc, err := json.Marshal(ev)
		if err != nil {
			return
		}
		w.Write(enc)
		w.Write([]byte("\n"))
		if flusher != nil {
			flusher.Flush()
		}
	}

	var (
		okCount, failCount atomic.Int64
		wg                 sync.WaitGroup
		sem                = make(chan struct{}, c.cfg.BatchConcurrency)
	)
	for i, u := range breq.Units {
		wg.Add(1)
		go func(i int, u api.BatchUnit) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res := c.runUnit(r.Context(), i, u)
			if res.OK {
				okCount.Add(1)
			} else {
				failCount.Add(1)
			}
			emit(api.BatchEvent{Unit: &res})
		}(i, u)
	}
	wg.Wait()
	emit(api.BatchEvent{Summary: &api.BatchSummary{
		Units:  len(breq.Units),
		OK:     int(okCount.Load()),
		Failed: int(failCount.Load()),
	}})
	c.met.markBatch(int(okCount.Load()), int(failCount.Load()))
	c.met.observe(endpoint, http.StatusOK, time.Since(start))
}

// runUnit routes one batch unit and folds the outcome into its result
// record; it never returns an error — failures are data.
func (c *Coordinator) runUnit(ctx context.Context, idx int, u api.BatchUnit) api.BatchUnitResult {
	id := u.ID
	if id == "" {
		id = fmt.Sprintf("unit-%d", idx)
	}
	path, ok := endpointPath(u.Endpoint)
	if !ok {
		return api.BatchUnitResult{ID: id, Status: http.StatusBadRequest,
			Error: fmt.Sprintf("unknown endpoint %q (want analyze, lint, or strip)", u.Endpoint)}
	}
	if len(u.Request.Sources) == 0 {
		return api.BatchUnitResult{ID: id, Status: http.StatusBadRequest, Error: "no sources in unit"}
	}
	if c.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.cfg.RequestTimeout)
		defer cancel()
	}
	res, herr := c.route(ctx, path, &u.Request)
	if herr != nil {
		return api.BatchUnitResult{ID: id, Status: herr.code, Error: herr.msg}
	}
	return api.BatchUnitResult{
		ID:          id,
		OK:          true,
		Body:        string(res.Body),
		ContentType: res.ContentType,
		Degraded:    res.Degraded,
	}
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (c *Coordinator) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	switch {
	case c.draining.Load():
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
	case c.hc.healthyCount() == 0:
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "no healthy workers")
	default:
		fmt.Fprintln(w, "ready")
	}
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	c.met.writePrometheus(w, len(c.cfg.Workers), c.hc.healthyCount())
}

// handleWorkers serves GET /fleet/workers: per-worker health for ops.
func (c *Coordinator) handleWorkers(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Workers []WorkerStatus `json:"workers"`
		Healthy int            `json:"healthy"`
	}{c.hc.snapshot(), c.hc.healthyCount()})
}
