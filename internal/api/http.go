package api

import (
	"encoding/json"
	"fmt"
	"mime"
	"net/http"
	"strconv"
	"strings"
)

// FromHTTP decodes a /v1 analysis request body in either transport into
// a Request, shared by the server and the fleet coordinator so the two
// accept exactly the same wire forms:
//
//   - Content-Type application/json: a Request bundle (any number of
//     files, full option set; unknown fields rejected);
//   - anything else: the raw body is one source file, named by the
//     ?file= query parameter, with options passed as query parameters
//     named after the CLI flags (callgraph, sizeof, no-delete-rule,
//     trust-downcasts, writes-are-uses, library, v, classes,
//     unreachable, format, budget, precision, keep-unreachable).
//
// Semantic validation (option values, duplicate names) is the caller's
// job; FromHTTP only normalizes the transport.
func FromHTTP(r *http.Request, body []byte) (*Request, error) {
	ct := r.Header.Get("Content-Type")
	if mt, _, err := mime.ParseMediaType(ct); err == nil && mt == "application/json" {
		dec := json.NewDecoder(strings.NewReader(string(body)))
		dec.DisallowUnknownFields()
		var req Request
		if err := dec.Decode(&req); err != nil {
			return nil, fmt.Errorf("invalid JSON body: %v", err)
		}
		return &req, nil
	}
	return fromRawHTTP(r, body)
}

func fromRawHTTP(r *http.Request, body []byte) (*Request, error) {
	q := r.URL.Query()
	name := q.Get("file")
	if name == "" {
		name = "input.mcc"
	}
	req := &Request{
		Sources: []Source{{Name: name, Text: string(body)}},
		Options: Options{
			CallGraph: q.Get("callgraph"),
			Sizeof:    q.Get("sizeof"),
		},
		Format:    q.Get("format"),
		Precision: q.Get("precision"),
	}
	if lib := q.Get("library"); lib != "" {
		req.Options.Library = strings.Split(lib, ",")
	}
	for _, p := range []struct {
		key  string
		dest *bool
	}{
		{"no-delete-rule", &req.Options.NoDeleteRule},
		{"trust-downcasts", &req.Options.TrustDowncasts},
		{"writes-are-uses", &req.Options.WritesAreUses},
		{"v", &req.Verbose},
		{"classes", &req.Classes},
		{"unreachable", &req.Unreachable},
		{"keep-unreachable", &req.KeepUnreachable},
	} {
		v := q.Get(p.key)
		if v == "" {
			continue
		}
		on, err := strconv.ParseBool(v)
		if err != nil {
			return nil, fmt.Errorf("invalid %s=%q", p.key, v)
		}
		*p.dest = on
	}
	if v := q.Get("budget"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("invalid budget=%q", v)
		}
		req.Budget = n
	}
	return req, nil
}
