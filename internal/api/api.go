// Package api defines the JSON wire types of deadmemd's /v1 endpoints,
// shared by the server (internal/server) and the Go client
// (internal/client) so the two cannot drift. Field names mirror the CLI
// flags one for one: a Request and a command line describe the same run,
// and the response body is byte-identical to that command's stdout.
package api

// Request is the POST body for /v1/analyze, /v1/lint, and /v1/strip.
// Endpoint-specific fields are simply ignored by the other endpoints'
// CLIs' option sets (the server validates shared fields uniformly).
type Request struct {
	Sources []Source `json:"sources"`
	Options Options  `json:"options"`

	// analyze sections (deadmem -v / -classes / -unreachable)
	Verbose     bool `json:"verbose,omitempty"`
	Classes     bool `json:"classes,omitempty"`
	Unreachable bool `json:"unreachable,omitempty"`

	// lint (deadlint -format / -budget / -precision)
	Format string `json:"format,omitempty"`
	Budget int    `json:"budget,omitempty"`
	// Precision selects the liveness tier: "paper", "flow" (the default
	// when empty, matching pre-knob requests), or "heap".
	Precision string `json:"precision,omitempty"`

	// strip (deadstrip -keep-unreachable)
	KeepUnreachable bool `json:"keep_unreachable,omitempty"`
}

// Source is one named MC++ source file.
type Source struct {
	Name string `json:"name"`
	Text string `json:"text"`
}

// Options carries the analysis options, named after the CLI flag values.
type Options struct {
	CallGraph      string   `json:"callgraph,omitempty"`
	Sizeof         string   `json:"sizeof,omitempty"`
	NoDeleteRule   bool     `json:"no_delete_rule,omitempty"`
	TrustDowncasts bool     `json:"trust_downcasts,omitempty"`
	WritesAreUses  bool     `json:"writes_are_uses,omitempty"`
	Library        []string `json:"library,omitempty"`
}

// DegradedHeader is set to "true" on responses rendered from a run in
// which a pipeline stage panicked and was contained.
const DegradedHeader = "X-Deadmemd-Degraded"

// BatchRequest is the POST body for the coordinator's /v1/batch: a
// whole corpus of independent analysis units scatter-gathered across
// the fleet.
type BatchRequest struct {
	Units []BatchUnit `json:"units"`
}

// BatchUnit is one unit of a batch: which endpoint to run and its
// request. IDs name units in the result stream; empty IDs default to
// the unit's index ("unit-3").
type BatchUnit struct {
	ID       string  `json:"id,omitempty"`
	Endpoint string  `json:"endpoint"` // "analyze" | "lint" | "strip"
	Request  Request `json:"request"`
}

// BatchEvent is one NDJSON line of the /v1/batch response stream:
// per-unit results in completion order, then exactly one summary.
type BatchEvent struct {
	Unit    *BatchUnitResult `json:"unit,omitempty"`
	Summary *BatchSummary    `json:"summary,omitempty"`
}

// BatchUnitResult is the outcome of one unit. A batch never fails as a
// whole: units that could not be served anywhere in the fleet carry an
// explicit failure record (OK=false) while the rest of the corpus
// completes normally.
type BatchUnitResult struct {
	ID string `json:"id"`
	OK bool   `json:"ok"`
	// Body is present when OK: byte-identical to the corresponding
	// CLI's stdout for the unit's sources and options.
	Body        string `json:"body,omitempty"`
	ContentType string `json:"content_type,omitempty"`
	Degraded    bool   `json:"degraded,omitempty"`
	// Status and Error describe a failure: Status is the HTTP status
	// the unit would have received as a single request (429/503 for an
	// exhausted fleet, 4xx for a rejected request).
	Status int    `json:"status,omitempty"`
	Error  string `json:"error,omitempty"`
}

// BatchSummary is the final line of a batch stream.
type BatchSummary struct {
	Units  int `json:"units"`
	OK     int `json:"ok"`
	Failed int `json:"failed"`
}
