// Package api defines the JSON wire types of deadmemd's /v1 endpoints,
// shared by the server (internal/server) and the Go client
// (internal/client) so the two cannot drift. Field names mirror the CLI
// flags one for one: a Request and a command line describe the same run,
// and the response body is byte-identical to that command's stdout.
package api

// Request is the POST body for /v1/analyze, /v1/lint, and /v1/strip.
// Endpoint-specific fields are simply ignored by the other endpoints'
// CLIs' option sets (the server validates shared fields uniformly).
type Request struct {
	Sources []Source `json:"sources"`
	Options Options  `json:"options"`

	// analyze sections (deadmem -v / -classes / -unreachable)
	Verbose     bool `json:"verbose,omitempty"`
	Classes     bool `json:"classes,omitempty"`
	Unreachable bool `json:"unreachable,omitempty"`

	// lint (deadlint -format / -budget)
	Format string `json:"format,omitempty"`
	Budget int    `json:"budget,omitempty"`

	// strip (deadstrip -keep-unreachable)
	KeepUnreachable bool `json:"keep_unreachable,omitempty"`
}

// Source is one named MC++ source file.
type Source struct {
	Name string `json:"name"`
	Text string `json:"text"`
}

// Options carries the analysis options, named after the CLI flag values.
type Options struct {
	CallGraph      string   `json:"callgraph,omitempty"`
	Sizeof         string   `json:"sizeof,omitempty"`
	NoDeleteRule   bool     `json:"no_delete_rule,omitempty"`
	TrustDowncasts bool     `json:"trust_downcasts,omitempty"`
	WritesAreUses  bool     `json:"writes_are_uses,omitempty"`
	Library        []string `json:"library,omitempty"`
}

// DegradedHeader is set to "true" on responses rendered from a run in
// which a pipeline stage panicked and was contained.
const DegradedHeader = "X-Deadmemd-Degraded"
