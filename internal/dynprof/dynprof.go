// Package dynprof combines the static dead-data-member analysis with an
// instrumented execution to produce the paper's dynamic measurements
// (Table 2 and Figure 4): object space, dead-data-member space, and the
// high water mark with and without dead members.
package dynprof

import (
	"context"

	"deadmembers/internal/deadmember"
	"deadmembers/internal/heapsim"
	"deadmembers/internal/interp"
	"deadmembers/internal/source"
	"deadmembers/internal/types"
)

// Profile is the result of one instrumented run.
type Profile struct {
	// Analysis is the static analysis whose dead set was measured.
	Analysis *deadmember.Result

	// Ledger holds the byte accounting (Table 2's four columns).
	Ledger *heapsim.Ledger

	// Exec reports the execution itself.
	Exec *interp.Result

	// AccountingErr records a heap-ledger invariant violation observed
	// during the run (e.g. a double free driving live bytes negative).
	// The ledger's figures are clamped, not trusted; report the profile
	// as degraded when this is non-nil.
	AccountingErr error
}

// Options configures the run.
type Options struct {
	// MaxSteps bounds execution (see interp.Options).
	MaxSteps int64

	// Context cancels or deadlines the instrumented execution
	// (see interp.Options.Context).
	Context context.Context

	// Executor, when non-nil, runs function bodies instead of the
	// tree-walker (see interp.Options.Executor); the bytecode VM engine
	// plugs in here. Heap instrumentation is engine-independent.
	Executor interp.Executor

	// FileSet, when non-nil, lets runtime diagnostics carry source
	// positions (see interp.Options.FileSet).
	FileSet *source.FileSet
}

// Run executes the analyzed program with dead-member instrumentation.
// The dead set used for byte attribution is exactly analysis.IsDead —
// guaranteed-dead members in used, non-library classes.
func Run(analysis *deadmember.Result, opts Options) (*Profile, error) {
	led := heapsim.New()
	exec, err := interp.Run(analysis.Program, analysis.Hierarchy, interp.Options{
		Ledger: led,
		DeadField: func(f *types.Field) bool {
			return analysis.IsDead(f)
		},
		MaxSteps: opts.MaxSteps,
		Context:  opts.Context,
		Executor: opts.Executor,
		FileSet:  opts.FileSet,
	})
	if err != nil {
		return nil, err
	}
	return &Profile{Analysis: analysis, Ledger: led, Exec: exec, AccountingErr: led.Err()}, nil
}
