package dynprof_test

import (
	"testing"

	"deadmembers/internal/callgraph"
	"deadmembers/internal/deadmember"
	"deadmembers/internal/dynprof"
	"deadmembers/internal/frontend"
)

func analyze(t *testing.T, src string) *deadmember.Result {
	t.Helper()
	r := frontend.Compile(frontend.Source{Name: "t.mcc", Text: src})
	if err := r.Err(); err != nil {
		t.Fatalf("compile:\n%v", err)
	}
	return deadmember.Analyze(r.Program, r.Graph, deadmember.Options{CallGraph: callgraph.RTA})
}

func TestProfileAttributesDeadBytes(t *testing.T) {
	res := analyze(t, `
class Rec {
public:
	int live;
	double deadA;  // 8 dead bytes per object
	int deadB;     // 4 dead bytes per object
	Rec() : live(1), deadA(2.0), deadB(3) {}
};
int main() {
	int acc = 0;
	for (int i = 0; i < 5; i++) {
		Rec* r = new Rec();
		acc = acc + r->live;
		delete r;
	}
	return acc;
}
`)
	prof, err := dynprof.Run(res, dynprof.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Rec layout: live@0, pad, deadA@8, deadB@16, pad -> 24 bytes; 12 dead.
	l := prof.Ledger
	if l.TotalObjects != 5 {
		t.Fatalf("objects = %d, want 5", l.TotalObjects)
	}
	if l.TotalBytes != 5*24 {
		t.Fatalf("total = %d, want 120", l.TotalBytes)
	}
	if l.DeadBytes != 5*12 {
		t.Fatalf("dead = %d, want 60", l.DeadBytes)
	}
	if l.HighWater != 24 || l.AdjustedHighWater != 12 {
		t.Fatalf("hwm = %d/%d, want 24/12", l.HighWater, l.AdjustedHighWater)
	}
	if prof.Exec.ExitCode != 5 {
		t.Fatalf("exit = %d, want 5", prof.Exec.ExitCode)
	}
}

func TestProfileZeroDeadProgram(t *testing.T) {
	res := analyze(t, `
class P {
public:
	int x;
	P() : x(7) {}
};
int main() {
	P p;
	return p.x;
}
`)
	prof, err := dynprof.Run(res, dynprof.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if prof.Ledger.DeadBytes != 0 {
		t.Fatalf("dead bytes = %d, want 0", prof.Ledger.DeadBytes)
	}
	if prof.Ledger.HighWater != prof.Ledger.AdjustedHighWater {
		t.Fatal("HWM must equal adjusted HWM when nothing is dead")
	}
}

func TestProfilePropagatesRuntimeErrors(t *testing.T) {
	res := analyze(t, `
int main() { int z = 0; return 5 / z; }
`)
	if _, err := dynprof.Run(res, dynprof.Options{}); err == nil {
		t.Fatal("runtime error must propagate out of Run")
	}
}

func TestProfileRespectsMaxSteps(t *testing.T) {
	res := analyze(t, `
int main() {
	int s = 0;
	for (int i = 0; i < 1000000; i++) { s = s + 1; }
	return 0;
}
`)
	if _, err := dynprof.Run(res, dynprof.Options{MaxSteps: 100}); err == nil {
		t.Fatal("step limit must propagate")
	}
}
