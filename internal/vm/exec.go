package vm

import (
	"deadmembers/internal/hierarchy"
	"deadmembers/internal/interp"
	"deadmembers/internal/token"
	"deadmembers/internal/types"
)

// Executor compiles function bodies to bytecode on first call and runs
// them on a dispatch loop. It implements interp.Executor.
//
// An Executor is built per run (engine code constructs one per
// interp.Run / dynprof.Run invocation): the inline caches embedded in
// the bytecode resolve global-variable cells and field slots that are
// specific to one Machine, and mutation of those caches assumes a
// single goroutine.
type Executor struct {
	prog *types.Program
	h    *hierarchy.Graph
	info *types.Info

	chunks map[*types.Func]*chunk // nil entry = compile declined, tree-walk

	compiled int // functions compiled to bytecode
	fallback int // functions declined to the tree-walker

	pool []*frameState // reusable per-activation scratch state
}

// frameState is the scratch state of one bytecode activation, pooled on
// the Executor so recursive call chains do not allocate per call.
type frameState struct {
	slots []*interp.Cell
	stack []interp.Value
	locs  []interp.Loc
	marks []int
	pend  []pending
}

func (e *Executor) acquire(numSlots int) *frameState {
	var fs *frameState
	if n := len(e.pool); n > 0 {
		fs = e.pool[n-1]
		e.pool = e.pool[:n-1]
	} else {
		fs = &frameState{}
	}
	if cap(fs.slots) < numSlots {
		fs.slots = make([]*interp.Cell, numSlots)
	} else {
		fs.slots = fs.slots[:numSlots]
		for i := range fs.slots {
			fs.slots[i] = nil
		}
	}
	fs.stack = fs.stack[:0]
	fs.locs = fs.locs[:0]
	fs.marks = fs.marks[:0]
	fs.pend = fs.pend[:0]
	return fs
}

func (e *Executor) release(fs *frameState) { e.pool = append(e.pool, fs) }

// NewExecutor builds a VM executor for one program. Pass it via
// interp.Options.Executor (or dynprof.Options.Executor).
func NewExecutor(prog *types.Program, h *hierarchy.Graph) *Executor {
	return &Executor{prog: prog, h: h, info: prog.Info, chunks: map[*types.Func]*chunk{}}
}

// Counts reports how many distinct functions were compiled versus
// declined to the tree-walker so far.
func (e *Executor) Counts() (compiled, fallback int) { return e.compiled, e.fallback }

func (e *Executor) chunkFor(fn *types.Func) *chunk {
	ch, ok := e.chunks[fn]
	if !ok {
		ch = compileFunc(fn, e.info, e.h)
		e.chunks[fn] = ch
		if ch != nil {
			e.compiled++
		} else {
			e.fallback++
		}
	}
	return ch
}

// ExecBody implements interp.Executor. It declines (false) for
// functions whose bodies did not compile; otherwise it runs the
// bytecode and — matching the tree-walker's execFuncBody defer — it
// destroys the frame's counted locals in reverse order on both normal
// return and panic unwinding (runtime errors, cancellation).
func (e *Executor) ExecBody(m *interp.Machine, f *interp.Frame, fn *types.Func) (interp.Value, bool) {
	ch := e.chunkFor(fn)
	if ch == nil {
		return interp.Value{}, false
	}
	defer func() {
		for i := len(f.Locals) - 1; i >= 0; i-- {
			m.DestroyObject(f.Locals[i])
		}
	}()
	return e.run(m, f, ch), true
}

func (e *Executor) run(m *interp.Machine, f *interp.Frame, ch *chunk) interp.Value {
	code := ch.code
	fs := e.acquire(ch.numSlots)
	slots := fs.slots
	for i, cell := range f.Params {
		if i < len(slots) {
			slots[i] = cell
		}
	}
	stack := fs.stack
	locs := fs.locs
	marks := fs.marks
	pend := fs.pend
	defer func() {
		// Hand the (possibly reallocated) scratch slices back to the
		// pool, on normal return and on runtime-error unwinding alike.
		fs.slots, fs.stack, fs.locs, fs.marks, fs.pend = slots, stack, locs, marks, pend
		e.release(fs)
	}()
	// Inline Step: same counter, same limit failure, same 1024-step
	// context poll — just without a call per statement.
	stepsP, stepMax, stepPoll := m.StepCounter()
	pc := 0
	for {
		ins := &code[pc]
		pc++
		if ins.stepped {
			// A fused opStep (peephole pass 5): identical accounting,
			// with the statement position preserved in pos2 for the
			// step-limit diagnostic.
			*stepsP++
			if s := *stepsP; s > stepMax {
				m.StepLimitExceeded(f, ins.pos2)
			} else if stepPoll && s&1023 == 0 {
				m.StepContextPoll()
			}
		}
		switch ins.op {
		case opConst:
			stack = pushScalar(stack, ch.consts[ins.a])
		case opStr:
			stack = append(stack, m.StringValue(ins.str))
		case opThis:
			if f.This == nil {
				m.Fail(ins.pos, "this used with no receiver")
			}
			stack = append(stack, interp.ObjectPointer(f.This))
		case opPop:
			stack = stack[:len(stack)-1]
		case opDup:
			stack = append(stack, stack[len(stack)-1])

		case opLoadSlot:
			cell := slots[ins.a]
			if cell == nil {
				m.Fail(ins.pos, "variable %s has no storage (not in scope)", ins.vr.Name)
			}
			stack = pushScalar(stack, cell.V)
		case opLoadGlobal:
			stack = append(stack, e.globalCell(m, ins).V)
		case opLoadField:
			stack = append(stack, fieldCellIC(m, ins, f.This).V)
		case opMemberLoad:
			v := stack[len(stack)-1]
			obj := m.ReceiverFromValue(ins.pos2, v, ins.a == 1)
			stack[len(stack)-1] = fieldCellIC(m, ins, obj).V
		case opIndexLoad:
			loc := indexLoc(m, ins, &stack)
			stack = append(stack, loc.Load())
		case opDerefLoad:
			v := stack[len(stack)-1]
			if v.K != interp.KPtr {
				m.Fail(ins.pos, "dereference of non-pointer")
			}
			stack[len(stack)-1] = m.PointerElem(ins.pos, v.P, 0).Load()
		case opMPtrLoad:
			loc := mptrLoc(m, ins, &stack)
			stack = append(stack, loc.Load())

		case opLvSlot:
			cell := slots[ins.a]
			if cell == nil {
				m.Fail(ins.pos, "variable %s has no storage (not in scope)", ins.vr.Name)
			}
			locs = append(locs, interp.Loc{C: cell})
		case opLvGlobal:
			locs = append(locs, interp.Loc{C: e.globalCell(m, ins)})
		case opLvField:
			locs = append(locs, interp.Loc{C: fieldCellIC(m, ins, f.This)})
		case opLvMember:
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			obj := m.ReceiverFromValue(ins.pos2, v, ins.a == 1)
			locs = append(locs, interp.Loc{C: fieldCellIC(m, ins, obj)})
		case opLvIndex:
			locs = append(locs, indexLoc(m, ins, &stack))
		case opLvDeref:
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if v.K != interp.KPtr {
				m.Fail(ins.pos, "dereference of non-pointer")
			}
			locs = append(locs, m.PointerElem(ins.pos, v.P, 0))
		case opLvMPtr:
			locs = append(locs, mptrLoc(m, ins, &stack))

		case opLoadLoc:
			l := locs[len(locs)-1]
			locs = locs[:len(locs)-1]
			stack = append(stack, l.Load())
		case opAssign:
			rhs := stack[len(stack)-1]
			l := locs[len(locs)-1]
			locs = locs[:len(locs)-1]
			if ins.typ != nil {
				rhs = m.Convert(rhs, ins.typ)
			}
			m.StoreLoc(l, rhs)
			stack[len(stack)-1] = l.Load()
		case opAssignOp:
			rhs := stack[len(stack)-1]
			l := locs[len(locs)-1]
			locs = locs[:len(locs)-1]
			res := m.ApplyBinary(ins.pos, token.Kind(ins.b), l.Load(), rhs)
			if ins.typ != nil {
				res = m.Convert(res, ins.typ)
			}
			m.StoreLoc(l, res)
			stack[len(stack)-1] = res
		case opPostfix:
			l := locs[len(locs)-1]
			locs = locs[:len(locs)-1]
			old := l.Load()
			m.StoreLoc(l, m.IncDec(ins.pos, old, ins.a == 1))
			stack = append(stack, old)
		case opPreIncDec:
			l := locs[len(locs)-1]
			locs = locs[:len(locs)-1]
			nv := m.IncDec(ins.pos, l.Load(), ins.a == 1)
			m.StoreLoc(l, nv)
			stack = append(stack, nv)
		case opAddrOf:
			l := locs[len(locs)-1]
			locs = locs[:len(locs)-1]
			stack = append(stack, interp.AddrOfLoc(l))
		case opAddrIndexTry:
			idx := stack[len(stack)-1]
			base := stack[len(stack)-2]
			stack = stack[:len(stack)-2]
			if v, ok := m.TryAddrOfIndex(ins.pos, base, idx.AsInt()); ok {
				stack = append(stack, v)
				pc = ins.a
			}

		case opReceiver:
			v := stack[len(stack)-1]
			obj := m.ReceiverFromValue(ins.pos, v, ins.a == 1)
			stack[len(stack)-1] = interp.ObjectPointer(obj)

		case opNeg:
			v := stack[len(stack)-1]
			if v.K == interp.KDouble {
				stack[len(stack)-1] = interp.Value{K: interp.KDouble, F: -v.F}
			} else {
				stack[len(stack)-1] = interp.Value{K: interp.KInt, I: -v.AsInt()}
			}
		case opNot:
			v := stack[len(stack)-1]
			b := interp.Value{K: interp.KBool}
			if !v.IsTruthy() {
				b.I = 1
			}
			stack[len(stack)-1] = b
		case opTilde:
			v := stack[len(stack)-1]
			stack[len(stack)-1] = interp.Value{K: interp.KInt, I: ^v.AsInt()}
		case opTruthy:
			v := stack[len(stack)-1]
			b := interp.Value{K: interp.KBool}
			if v.IsTruthy() {
				b.I = 1
			}
			stack[len(stack)-1] = b
		case opBinary:
			n := len(stack)
			stack[n-2] = m.ApplyBinary(ins.pos, token.Kind(ins.b), stack[n-2], stack[n-1])
			stack = stack[:n-1]
		case opIntBin, opIntBinSS, opIntBinSC, opIntBinCS, opIntBinXS, opIntBinXC:
			// One shared handler for the one-stage int-binop family:
			// the opcodes differ only in where the operands come from
			// (stack, slots, consts) and where the result goes (push,
			// slot store, branch — ins.mode). The operator switch is
			// inlined (not a helper call) because a call here forces
			// the dispatch loop's stack slice to spill around every
			// binop, which profiles as the single largest cost in
			// arithmetic-heavy code.
			var av, bv *interp.Value
			switch ins.op {
			case opIntBin:
				n := len(stack)
				av, bv = &stack[n-2], &stack[n-1]
			case opIntBinXC:
				av, bv = &stack[len(stack)-1], &ch.consts[ins.b]
			default:
				c1 := slots[ins.a]
				if c1 == nil {
					m.Fail(ins.pos, "variable %s has no storage (not in scope)", ins.vr.Name)
				}
				switch ins.op {
				case opIntBinSS:
					c2 := slots[ins.b]
					if c2 == nil {
						m.Fail(ins.pos, "variable %s has no storage (not in scope)", ins.vr2.Name)
					}
					av, bv = &c1.V, &c2.V
				case opIntBinSC:
					av, bv = &c1.V, &ch.consts[ins.b]
				case opIntBinXS:
					av, bv = &stack[len(stack)-1], &c1.V
				default: // opIntBinCS
					av, bv = &ch.consts[ins.b], &c1.V
				}
			}
			var r interp.Value
			if av.K >= interp.KInt && av.K <= interp.KBool && bv.K >= interp.KInt && bv.K <= interp.KBool {
				x, y := av.I, bv.I
				switch token.Kind(ins.c) {
				case token.Plus:
					r = interp.Value{K: interp.KInt, I: x + y}
				case token.Minus:
					r = interp.Value{K: interp.KInt, I: x - y}
				case token.Star:
					r = interp.Value{K: interp.KInt, I: x * y}
				case token.Slash:
					if y == 0 {
						m.Fail(ins.pos, "integer division by zero")
					}
					r = interp.Value{K: interp.KInt, I: x / y}
				case token.Percent:
					if y == 0 {
						m.Fail(ins.pos, "integer modulo by zero")
					}
					r = interp.Value{K: interp.KInt, I: x % y}
				case token.Shl:
					r = interp.Value{K: interp.KInt, I: x << (uint(y) & 63)}
				case token.Shr:
					r = interp.Value{K: interp.KInt, I: x >> (uint(y) & 63)}
				case token.Amp:
					r = interp.Value{K: interp.KInt, I: x & y}
				case token.Pipe:
					r = interp.Value{K: interp.KInt, I: x | y}
				case token.Caret:
					r = interp.Value{K: interp.KInt, I: x ^ y}
				case token.Eq:
					r = boolVal(x == y)
				case token.Ne:
					r = boolVal(x != y)
				case token.Lt:
					r = boolVal(x < y)
				case token.Gt:
					r = boolVal(x > y)
				case token.Le:
					r = boolVal(x <= y)
				case token.Ge:
					r = boolVal(x >= y)
				default:
					r = m.ApplyBinary(ins.pos, token.Kind(ins.c), *av, *bv)
				}
			} else {
				// An integral static type holding an unexpected kind:
				// the general path owns that behaviour.
				r = m.ApplyBinary(ins.pos, token.Kind(ins.c), *av, *bv)
			}
			switch ins.mode {
			case modePush:
				switch ins.op {
				case opIntBin:
					storeScalar(&stack[len(stack)-2], r)
					stack = stack[:len(stack)-1]
				case opIntBinXS, opIntBinXC:
					storeScalar(&stack[len(stack)-1], r)
				default:
					stack = pushScalar(stack, r)
				}
			case modeStore:
				switch ins.op {
				case opIntBin:
					stack = stack[:len(stack)-2]
				case opIntBinXS, opIntBinXC:
					stack = stack[:len(stack)-1]
				}
				// Inline opStoreSlotI: the same convert-to-int, into a
				// slot the statement's lvalue probe already proved
				// non-nil.
				iv := r.I
				switch r.K {
				case interp.KPtr:
					iv = 1
					if r.P.IsNull() {
						iv = 0
					}
				case interp.KDouble:
					iv = int64(r.F)
				}
				storeScalar(&slots[ins.d].V, interp.Value{K: interp.KInt, I: iv})
			case modeJF:
				switch ins.op {
				case opIntBin:
					stack = stack[:len(stack)-2]
				case opIntBinXS, opIntBinXC:
					stack = stack[:len(stack)-1]
				}
				if !r.IsTruthy() {
					pc = ins.d
				}
			}

		case opIntBin2SS, opIntBin2SC, opIntBin2CS:
			// Two-stage fused binop: stage one is a one-stage form
			// (slot/const operands, operator c), stage two combines the
			// value pushed before the sequence with that result via
			// operator e. The all-integral path stays on scalar locals
			// (taking a Value's address here costs the whole dispatch
			// loop its register allocation); everything else goes to
			// the general helper, which re-creates the unfused
			// behaviour operator by operator.
			c1 := slots[ins.a]
			if c1 == nil {
				m.Fail(ins.pos, "variable %s has no storage (not in scope)", ins.vr.Name)
			}
			var av, bv *interp.Value
			switch ins.op {
			case opIntBin2SS:
				c2 := slots[ins.b]
				if c2 == nil {
					m.Fail(ins.pos, "variable %s has no storage (not in scope)", ins.vr2.Name)
				}
				av, bv = &c1.V, &c2.V
			case opIntBin2SC:
				av, bv = &c1.V, &ch.consts[ins.b]
			default: // opIntBin2CS
				av, bv = &ch.consts[ins.b], &c1.V
			}
			lp := &stack[len(stack)-1]
			var r interp.Value
			if lp.K >= interp.KInt && lp.K <= interp.KBool &&
				av.K >= interp.KInt && av.K <= interp.KBool && bv.K >= interp.KInt && bv.K <= interp.KBool {
				fast := true
				var ri int64
				x, y := av.I, bv.I
				switch token.Kind(ins.c) {
				case token.Plus:
					ri = x + y
				case token.Minus:
					ri = x - y
				case token.Star:
					ri = x * y
				case token.Slash:
					if y == 0 {
						m.Fail(ins.pos, "integer division by zero")
					}
					ri = x / y
				case token.Percent:
					if y == 0 {
						m.Fail(ins.pos, "integer modulo by zero")
					}
					ri = x % y
				case token.Shl:
					ri = x << (uint(y) & 63)
				case token.Shr:
					ri = x >> (uint(y) & 63)
				case token.Amp:
					ri = x & y
				case token.Pipe:
					ri = x | y
				case token.Caret:
					ri = x ^ y
				case token.Eq:
					ri = b2i(x == y)
				case token.Ne:
					ri = b2i(x != y)
				case token.Lt:
					ri = b2i(x < y)
				case token.Gt:
					ri = b2i(x > y)
				case token.Le:
					ri = b2i(x <= y)
				case token.Ge:
					ri = b2i(x >= y)
				default:
					fast = false
				}
				if fast {
					xo, yo := lp.I, ri
					switch token.Kind(ins.e) {
					case token.Plus:
						r = interp.Value{K: interp.KInt, I: xo + yo}
					case token.Minus:
						r = interp.Value{K: interp.KInt, I: xo - yo}
					case token.Star:
						r = interp.Value{K: interp.KInt, I: xo * yo}
					case token.Slash:
						if yo == 0 {
							m.Fail(ins.pos, "integer division by zero")
						}
						r = interp.Value{K: interp.KInt, I: xo / yo}
					case token.Percent:
						if yo == 0 {
							m.Fail(ins.pos, "integer modulo by zero")
						}
						r = interp.Value{K: interp.KInt, I: xo % yo}
					case token.Shl:
						r = interp.Value{K: interp.KInt, I: xo << (uint(yo) & 63)}
					case token.Shr:
						r = interp.Value{K: interp.KInt, I: xo >> (uint(yo) & 63)}
					case token.Amp:
						r = interp.Value{K: interp.KInt, I: xo & yo}
					case token.Pipe:
						r = interp.Value{K: interp.KInt, I: xo | yo}
					case token.Caret:
						r = interp.Value{K: interp.KInt, I: xo ^ yo}
					case token.Eq:
						r = boolVal(xo == yo)
					case token.Ne:
						r = boolVal(xo != yo)
					case token.Lt:
						r = boolVal(xo < yo)
					case token.Gt:
						r = boolVal(xo > yo)
					case token.Le:
						r = boolVal(xo <= yo)
					case token.Ge:
						r = boolVal(xo >= yo)
					default:
						fast = false
					}
				}
				if !fast {
					r = intBin2Slow(m, ins, lp, av, bv)
				}
			} else {
				r = intBin2Slow(m, ins, lp, av, bv)
			}
			switch ins.mode {
			case modePush:
				storeScalar(&stack[len(stack)-1], r)
			case modeStore:
				stack = stack[:len(stack)-1]
				iv := r.I
				switch r.K {
				case interp.KPtr:
					iv = 1
					if r.P.IsNull() {
						iv = 0
					}
				case interp.KDouble:
					iv = int64(r.F)
				}
				storeScalar(&slots[ins.d].V, interp.Value{K: interp.KInt, I: iv})
			case modeJF:
				stack = stack[:len(stack)-1]
				if !r.IsTruthy() {
					pc = ins.d
				}
			}
		case opConvert:
			stack[len(stack)-1] = m.Convert(stack[len(stack)-1], ins.typ)

		case opJump:
			pc = ins.a
		case opJF:
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if !v.IsTruthy() {
				pc = ins.a
			}
		case opJT:
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if v.IsTruthy() {
				pc = ins.a
			}
		case opCaseEq:
			cv := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if cv.AsInt() == stack[len(stack)-1].AsInt() {
				stack = stack[:len(stack)-1]
				pc = ins.a
			}

		case opStep:
			*stepsP++
			if s := *stepsP; s > stepMax {
				m.StepLimitExceeded(f, ins.pos)
			} else if stepPoll && s&1023 == 0 {
				m.StepContextPoll()
			}
		case opScopePush:
			marks = append(marks, len(f.Locals))
		case opScopePop:
			mark := marks[len(marks)-1]
			marks = marks[:len(marks)-1]
			m.PopScope(f, mark)
		case opScopePopN:
			mark := marks[len(marks)-ins.a]
			marks = marks[:len(marks)-ins.a]
			m.PopScope(f, mark)

		case opReturnValue:
			v := stack[len(stack)-1]
			if ins.typ != nil {
				v = m.Convert(v, ins.typ)
			}
			if v.K == interp.KObj && v.Obj != nil {
				v = interp.Value{K: interp.KObj, Obj: m.CloneObject(v.Obj)} // return by value
			}
			return v
		case opReturnVoid:
			return interp.Value{K: interp.KVoid}
		case opFail:
			m.Fail(ins.pos, "%s", ins.str)

		case opPendFunc:
			pend = append(pend, pending{fn: ins.fn})
		case opPendImplicit:
			if f.This == nil {
				m.Fail(ins.pos, "implicit member call with no receiver")
			}
			pend = append(pend, pending{fn: dispatchIC(m, ins, f.This), obj: f.This})
		case opPendMethod:
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			obj := m.ReceiverFromValue(ins.pos2, v, ins.a == 1)
			pend = append(pend, pending{fn: dispatchIC(m, ins, obj), obj: obj})
		case opCall:
			n := ins.a
			args := stack[len(stack)-n:]
			pe := pend[len(pend)-1]
			pend = pend[:len(pend)-1]
			res := m.CallFunction(pe.fn, pe.obj, args)
			stack = stack[:len(stack)-n]
			stack = append(stack, res)

		case opPrint:
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			m.PrintValueTyped(v, ins.typ)
		case opPrintNL:
			m.PrintNewline()
		case opMalloc:
			v := stack[len(stack)-1]
			stack[len(stack)-1] = m.Malloc(ins.pos, v.AsInt())
		case opFree:
			v := stack[len(stack)-1]
			stack[len(stack)-1] = m.FreeValue(ins.pos, v)
		case opRandSeed:
			v := stack[len(stack)-1]
			stack[len(stack)-1] = m.RandSeed(v.AsInt())
		case opRandNext:
			v := stack[len(stack)-1]
			stack[len(stack)-1] = m.RandNext(ins.pos, v.AsInt())
		case opClock:
			stack = append(stack, m.ClockValue())

		case opNewObj:
			obj := m.NewObject(ins.cls, true)
			stack = append(stack, interp.Value{K: interp.KObj, Obj: obj})
		case opFinishNew:
			n := ins.a
			args := stack[len(stack)-n:]
			objv := stack[len(stack)-n-1]
			res := m.FinishNew(objv.Obj, ins.fn, args)
			stack = stack[:len(stack)-n-1]
			stack = append(stack, res)
		case opNewArr:
			v := stack[len(stack)-1]
			stack[len(stack)-1] = m.NewArray(ins.pos, ins.typ, v.AsInt())
		case opNewScalar:
			if ins.a == 1 {
				v := stack[len(stack)-1]
				stack[len(stack)-1] = m.NewScalar(ins.typ, &v)
			} else {
				stack = append(stack, m.NewScalar(ins.typ, nil))
			}
		case opDelete:
			v := stack[len(stack)-1]
			m.DeleteValue(ins.pos, v, ins.a == 1)
			stack[len(stack)-1] = interp.Value{K: interp.KVoid}

		case opAssignPop:
			rhs := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			l := locs[len(locs)-1]
			locs = locs[:len(locs)-1]
			if ins.typ != nil {
				rhs = m.Convert(rhs, ins.typ)
			}
			m.StoreLoc(l, rhs)
		case opAssignOpPop:
			rhs := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			l := locs[len(locs)-1]
			locs = locs[:len(locs)-1]
			res := m.ApplyBinary(ins.pos, token.Kind(ins.b), l.Load(), rhs)
			if ins.typ != nil {
				res = m.Convert(res, ins.typ)
			}
			m.StoreLoc(l, res)
		case opIncDecPop:
			l := locs[len(locs)-1]
			locs = locs[:len(locs)-1]
			m.StoreLoc(l, m.IncDec(ins.pos, l.Load(), ins.a == 1))
		case opCheckSlot:
			if slots[ins.a] == nil {
				m.Fail(ins.pos, "variable %s has no storage (not in scope)", ins.vr.Name)
			}
		case opStoreSlotI:
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			// Inline Convert-to-int: KPtr maps null→0 else 1, KDouble
			// truncates, the integral kinds pass .I through.
			var iv int64
			switch v.K {
			case interp.KPtr:
				if !v.P.IsNull() {
					iv = 1
				}
			case interp.KDouble:
				iv = int64(v.F)
			default:
				iv = v.I
			}
			slots[ins.a].V = interp.Value{K: interp.KInt, I: iv}
		case opIncSlotI:
			cell := slots[ins.a]
			if cell == nil {
				m.Fail(ins.pos, "variable %s has no storage (not in scope)", ins.vr.Name)
			}
			if v := cell.V; v.K == interp.KInt {
				cell.V = interp.Value{K: interp.KInt, I: v.I + int64(ins.b)}
			} else {
				// An int slot holding a non-int kind: general add+convert.
				r := m.ApplyBinary(ins.pos, token.Plus, v, interp.Value{K: interp.KInt, I: int64(ins.b)})
				m.StoreInto(cell, m.Convert(r, ins.typ))
			}

		case opDeclCell:
			slots[ins.a] = &interp.Cell{}
		case opDeclZero:
			slots[ins.a] = &interp.Cell{V: m.ZeroValue(ins.typ)}
		case opDeclStore:
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			m.StoreInto(slots[ins.a], m.Convert(v, ins.typ))
		case opDeclConstruct:
			n := ins.b
			args := stack[len(stack)-n:]
			objv := stack[len(stack)-n-1]
			m.ConstructObject(objv.Obj, ins.fn, args)
			stack = stack[:len(stack)-n-1]
			slots[ins.a].V = objv
			f.Locals = append(f.Locals, objv.Obj)
		case opDeclCopyInit:
			src := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			obj := m.NewObject(ins.cls, true)
			if src.K == interp.KObj && src.Obj != nil {
				m.CopyObject(obj, src.Obj)
			}
			slots[ins.a].V = interp.Value{K: interp.KObj, Obj: obj}
			f.Locals = append(f.Locals, obj)
		case opDeclArray:
			cell := &interp.Cell{}
			slots[ins.a] = cell
			var objs []*interp.Object
			cell.V = m.MakeArray(ins.typ.(*types.Array), &objs)
			f.Locals = append(f.Locals, objs...)
		}
	}
}

// globalCell resolves the instruction's global variable to its cell,
// caching the result. Globals register incrementally while their
// initializers run, so an early access must still fail exactly like the
// tree-walker's varCell; only successful lookups are cached.
func (e *Executor) globalCell(m *interp.Machine, ins *instr) *interp.Cell {
	if ins.cacheCell != nil {
		return ins.cacheCell
	}
	c, ok := m.GlobalCell(ins.vr)
	if !ok {
		m.Fail(ins.pos, "variable %s has no storage (not in scope)", ins.vr.Name)
	}
	ins.cacheCell = c
	return c
}

// fieldCellIC resolves the field of ins on obj through the instruction's
// monomorphic inline cache: a hit on the receiver's dynamic class maps
// straight to a flat cell index in the class's field plan. Misses go
// through the shared FieldCell (which owns the null-receiver and
// invalid-downcast diagnostics) and then fill the cache.
func fieldCellIC(m *interp.Machine, ins *instr, obj *interp.Object) *interp.Cell {
	if obj != nil && obj.Class == ins.cacheClass {
		return obj.Cells[ins.cacheIdx]
	}
	cell := m.FieldCell(ins.pos, obj, ins.fld)
	ins.cacheClass = obj.Class
	ins.cacheIdx = obj.Plan.Index[ins.fld]
	return cell
}

// dispatchIC resolves the call target for obj through the instruction's
// inline cache. The class hierarchy is frozen after sema, so a cached
// (class → target) pair never invalidates.
func dispatchIC(m *interp.Machine, ins *instr, obj *interp.Object) *types.Func {
	if obj.Class == ins.cacheClass {
		return ins.cacheFn
	}
	target := m.Dispatch(ins.pos, obj, ins.fn, true, ins.str)
	ins.cacheClass = obj.Class
	ins.cacheFn = target
	return target
}

// indexLoc materializes X[I] as a location; the tree-walker's bounds and
// pointer checks apply verbatim.
func indexLoc(m *interp.Machine, ins *instr, stack *[]interp.Value) interp.Loc {
	s := *stack
	idxV := s[len(s)-1]
	base := s[len(s)-2]
	*stack = s[:len(s)-2]
	idx := int(idxV.AsInt())
	switch base.K {
	case interp.KArr:
		cells := base.Cells()
		if idx < 0 || idx >= len(cells) {
			m.Fail(ins.pos, "array index %d out of range [0,%d)", idx, len(cells))
		}
		return interp.Loc{C: cells[idx]}
	case interp.KPtr:
		return m.PointerElem(ins.pos, base.P, idx)
	}
	m.Fail(ins.pos, "indexing non-array value")
	return interp.Loc{}
}

// mptrLoc materializes X.*P / X->*P as a location. The receiver was
// already converted to an object pointer by opReceiver.
func mptrLoc(m *interp.Machine, ins *instr, stack *[]interp.Value) interp.Loc {
	s := *stack
	pv := s[len(s)-1]
	objv := s[len(s)-2]
	*stack = s[:len(s)-2]
	if pv.K != interp.KMemberPtr || pv.MP == nil {
		m.Fail(ins.pos, "dereference of null pointer-to-member")
	}
	return interp.Loc{C: m.FieldCell(ins.pos, objv.P.Obj, pv.MP)}
}

func boolVal(b bool) interp.Value {
	v := interp.Value{K: interp.KBool}
	if b {
		v.I = 1
	}
	return v
}

// intBin2Slow is the out-of-line path of the two-stage fused binop: an
// operand with an unexpected runtime kind, or an operator outside the
// inline set. It reproduces the unfused sequence exactly — inner binop
// first (integral fast rules, ApplyBinary otherwise), then the outer
// one the same way.
func intBin2Slow(m *interp.Machine, ins *instr, lhs, av, bv *interp.Value) interp.Value {
	inner := intBinGen(m, ins, token.Kind(ins.c), av, bv)
	return intBinGen(m, ins, token.Kind(ins.e), lhs, &inner)
}

// intBinGen applies one statically-integral binary operator with the
// same observable behaviour as the inline opIntBin handler.
func intBinGen(m *interp.Machine, ins *instr, op token.Kind, av, bv *interp.Value) interp.Value {
	if av.K < interp.KInt || av.K > interp.KBool || bv.K < interp.KInt || bv.K > interp.KBool {
		return m.ApplyBinary(ins.pos, op, *av, *bv)
	}
	x, y := av.I, bv.I
	switch op {
	case token.Plus:
		return interp.Value{K: interp.KInt, I: x + y}
	case token.Minus:
		return interp.Value{K: interp.KInt, I: x - y}
	case token.Star:
		return interp.Value{K: interp.KInt, I: x * y}
	case token.Slash:
		if y == 0 {
			m.Fail(ins.pos, "integer division by zero")
		}
		return interp.Value{K: interp.KInt, I: x / y}
	case token.Percent:
		if y == 0 {
			m.Fail(ins.pos, "integer modulo by zero")
		}
		return interp.Value{K: interp.KInt, I: x % y}
	case token.Shl:
		return interp.Value{K: interp.KInt, I: x << (uint(y) & 63)}
	case token.Shr:
		return interp.Value{K: interp.KInt, I: x >> (uint(y) & 63)}
	case token.Amp:
		return interp.Value{K: interp.KInt, I: x & y}
	case token.Pipe:
		return interp.Value{K: interp.KInt, I: x | y}
	case token.Caret:
		return interp.Value{K: interp.KInt, I: x ^ y}
	case token.Eq:
		return boolVal(x == y)
	case token.Ne:
		return boolVal(x != y)
	case token.Lt:
		return boolVal(x < y)
	case token.Gt:
		return boolVal(x > y)
	case token.Le:
		return boolVal(x <= y)
	case token.Ge:
		return boolVal(x >= y)
	}
	return m.ApplyBinary(ins.pos, op, *av, *bv)
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// storeScalar writes r over *dst, skipping the full-struct copy (and
// its GC write barrier, which dominates the dispatch loop's profile on
// arithmetic code) when both old and new values are scalar kinds: a
// scalar Value never carries pointer payloads, so only K/I/F change.
func storeScalar(dst *interp.Value, r interp.Value) {
	if dst.K <= interp.KDouble && r.K <= interp.KDouble {
		dst.K, dst.I, dst.F = r.K, r.I, r.F
		return
	}
	*dst = r
}

// pushScalar appends r to the stack, writing in place through
// storeScalar when spare capacity exists (a popped slot's stale pointer
// payload makes storeScalar fall back to the full copy).
func pushScalar(stack []interp.Value, r interp.Value) []interp.Value {
	if len(stack) < cap(stack) {
		stack = stack[:len(stack)+1]
		storeScalar(&stack[len(stack)-1], r)
		return stack
	}
	return append(stack, r)
}
