package vm_test

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"deadmembers/internal/bench"
	"deadmembers/internal/deadmember"
	"deadmembers/internal/dynprof"
	"deadmembers/internal/engine"
	"deadmembers/internal/heapsim"
	"deadmembers/internal/interp"
	"deadmembers/internal/vm"
)

// compile builds a Compilation from one source, failing the test on
// frontend errors.
func compile(t *testing.T, name, src string) *engine.Compilation {
	t.Helper()
	c := engine.Compile(engine.Config{}, engine.Source{Name: name, Text: src})
	if err := c.Err(); err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	return c
}

// runBoth executes the program on both engines and asserts identical
// results (or identical failures).
func runBoth(t *testing.T, name, src string) *interp.Result {
	t.Helper()
	c := compile(t, name, src)
	ctx := context.Background()
	tres, terr := c.RunContextEngine(ctx, engine.EngineTree)
	vres, verr := c.RunContextEngine(ctx, engine.EngineVM)
	assertSameRun(t, name, tres, terr, vres, verr)
	return vres
}

func assertSameRun(t *testing.T, name string, tres *interp.Result, terr error, vres *interp.Result, verr error) {
	t.Helper()
	if (terr == nil) != (verr == nil) {
		t.Fatalf("%s: engines disagree on failure: tree err=%v, vm err=%v", name, terr, verr)
	}
	if terr != nil {
		if terr.Error() != verr.Error() {
			t.Fatalf("%s: error mismatch:\n tree: %v\n   vm: %v", name, terr, verr)
		}
		return
	}
	if tres.Output != vres.Output {
		t.Fatalf("%s: output mismatch:\n tree: %q\n   vm: %q", name, tres.Output, vres.Output)
	}
	if tres.ExitCode != vres.ExitCode {
		t.Fatalf("%s: exit code mismatch: tree %d, vm %d", name, tres.ExitCode, vres.ExitCode)
	}
	if tres.Steps != vres.Steps {
		t.Fatalf("%s: step count mismatch: tree %d, vm %d", name, tres.Steps, vres.Steps)
	}
}

func TestDifferentialBasics(t *testing.T) {
	cases := map[string]string{
		"arith": `
			int main() {
				int a = 7; int b = 3;
				int s = a + b * 2 - (a / b) % 2;
				double d = 1.5 * a;
				print(s); print(" "); print(d); println();
				return s;
			}`,
		"controlflow": `
			int main() {
				int n = 0;
				for (int i = 0; i < 10; i = i + 1) {
					if (i % 2 == 0) continue;
					if (i > 7) break;
					n = n + i;
				}
				int j = 0;
				while (j < 5) { j++; }
				do { j--; } while (j > 2);
				switch (j) {
					case 1: print("one"); break;
					case 2: print("two"); break;
					default: print("many");
				}
				println();
				return n + j;
			}`,
		"shortcircuit": `
			int side = 0;
			bool bump() { side = side + 1; return true; }
			int main() {
				bool a = false && bump();
				bool b = true || bump();
				bool c = bump() && bump();
				print(side); println();
				return side;
			}`,
		"ternary": `
			int main() {
				int x = 4;
				int y = x > 2 ? x * 10 : x - 1;
				print(y); println();
				return 0;
			}`,
		"strings": `
			int main() {
				char* s = "hello";
				print(s); println();
				print(s[1]); println();
				return 0;
			}`,
		"virtual": `
			class A {
			public:
				int tag;
				A() { tag = 1; }
				virtual int f() { return tag; }
				virtual ~A() {}
			};
			class B : public A {
			public:
				int extra;
				B() { extra = 41; }
				int f() { return extra + tag; }
			};
			int main() {
				A* objs[2];
				objs[0] = new A();
				objs[1] = new B();
				int sum = 0;
				for (int i = 0; i < 2; i = i + 1) sum = sum + objs[i]->f();
				delete objs[0];
				delete objs[1];
				print(sum); println();
				return sum;
			}`,
		"heap": `
			int main() {
				int* a = new int[5];
				for (int i = 0; i < 5; i++) a[i] = i * i;
				int* p = &a[2];
				int got = *p + p[1];
				delete[] a;
				int* s = new int(9);
				got = got + *s;
				delete s;
				print(got); println();
				return 0;
			}`,
		"members": `
			class P {
			public:
				int x; int y;
				P(int a, int b) { x = a; y = b; }
				int norm1() { return x + y; }
			};
			int main() {
				P p(3, 4);
				P* q = &p;
				q->x = 10;
				int P::*mp = &P::y;
				p.*mp = 20;
				print(p.norm1()); println();
				return 0;
			}`,
		"builtins": `
			int main() {
				rand_seed(42);
				int a = rand_next(100);
				int b = rand_next(100);
				int* m = (int*)malloc(3);
				m[0] = a; m[1] = b; m[2] = clock();
				int s = m[0] + m[1] + m[2];
				free(m);
				print(s); println();
				return 0;
			}`,
		"recursion": `
			int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
			int main() { print(fib(15)); println(); return 0; }`,
		"globals": `
			int counter = 0;
			int gArr[3];
			int next() { counter = counter + 1; return counter; }
			int main() {
				gArr[0] = next(); gArr[1] = next(); gArr[2] = next();
				print(gArr[0] + gArr[1] * gArr[2]); println();
				return counter;
			}`,
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) { runBoth(t, name+".mcc", src) })
	}
}

func TestDifferentialRuntimeErrors(t *testing.T) {
	cases := map[string]string{
		"nullderef": `
			class C { public: int v; };
			int main() { C* p = 0; return p->v; }`,
		"divzero": `
			int main() { int z = 0; return 10 / z; }`,
		"oob": `
			int main() { int a[3]; return a[5]; }`,
		"doubledelete": `
			class C { public: int v; };
			int main() { C* p = new C(); delete p; delete p; return 0; }`,
		"purevirtual": `
			class A { public: virtual int f() = 0; virtual ~A() {} };
			int main() { A* a = (A*)0; if (a != 0) return a->f(); return 7; }`,
		"useafterfree": `
			int main() { int* a = new int[2]; delete[] a; return a[0]; }`,
		"abort": `
			int main() { abort(); return 0; }`,
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) { runBoth(t, name+".mcc", src) })
	}
}

// TestDifferentialCorpusFiles runs every example and testdata program on
// both engines, comparing output, exit code, step count, and the full
// instrumented heap profile.
func TestDifferentialCorpusFiles(t *testing.T) {
	var files []string
	for _, dir := range []string{"../../examples/mcc", "../../testdata"} {
		fs, err := filepath.Glob(filepath.Join(dir, "*.mcc"))
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, fs...)
	}
	if len(files) == 0 {
		t.Fatal("no corpus files found")
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			c := compile(t, filepath.Base(path), string(data))
			assertSameProfile(t, filepath.Base(path), c)
		})
	}
}

// TestDifferentialBenchCorpus runs the built-in synthetic benchmarks on
// both engines with profiling.
func TestDifferentialBenchCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("bench corpus differential is slow")
	}
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			c := engine.Compile(engine.Config{}, b.Sources...)
			if err := c.Err(); err != nil {
				t.Fatalf("compile %s: %v", b.Name, err)
			}
			assertSameProfile(t, b.Name, c)
		})
	}
}

// TestDifferentialLargeKernel covers the large-corpus generator's
// compute-kernel codegen (Spec.ComputeRounds) at a test-sized scale: the
// full bench.Large() entries take minutes on the tree engine, but the
// kernel shape — wide integer statements over a dozen locals — is
// identical, so a scaled-down spec exercises the same fused bytecode.
func TestDifferentialLargeKernel(t *testing.T) {
	spec := bench.Spec{
		Name: "kernel-test", Description: "scaled-down large-corpus shape",
		Classes: 20, UsedClasses: 12, Members: 60, DeadPercent: 10,
		Allocations: 200, DynDeadPercent: 8, RetainMod: 3,
		DeadHeavyClasses: 2, DeleteFlavor: true, ComputeRounds: 3, Seed: 42,
	}
	src, _ := bench.Generate(spec)
	c := compile(t, "kernel-test.mcc", src)
	assertSameProfile(t, "kernel-test", c)
}

// assertSameProfile profiles the compilation under both engines and
// compares execution results plus every ledger statistic.
func assertSameProfile(t *testing.T, name string, c *engine.Compilation) {
	t.Helper()
	ctx := context.Background()
	tp, terr := c.ProfileContextEngine(ctx, deadmember.Options{}, dynprof.Options{}, engine.EngineTree)
	vp, verr := c.ProfileContextEngine(ctx, deadmember.Options{}, dynprof.Options{}, engine.EngineVM)
	if (terr == nil) != (verr == nil) {
		t.Fatalf("%s: engines disagree on profile failure: tree err=%v, vm err=%v", name, terr, verr)
	}
	if terr != nil {
		if terr.Error() != verr.Error() {
			t.Fatalf("%s: profile error mismatch:\n tree: %v\n   vm: %v", name, terr, verr)
		}
		return
	}
	assertSameRun(t, name, tp.Exec, nil, vp.Exec, nil)
	assertSameLedger(t, name, tp.Ledger, vp.Ledger)
}

// assertSameLedger compares every byte-accounting aggregate plus the
// per-class breakdown — the heart of the "byte-identical instrumented
// heap" contract.
func assertSameLedger(t *testing.T, name string, tl, vl *heapsim.Ledger) {
	t.Helper()
	type agg struct {
		total, dead, objects, live, adjLive, hwm, adjHWM int64
	}
	snap := func(l *heapsim.Ledger) agg {
		return agg{l.TotalBytes, l.DeadBytes, l.TotalObjects,
			l.LiveBytes, l.AdjustedLiveBytes, l.HighWater, l.AdjustedHighWater}
	}
	if ts, vs := snap(tl), snap(vl); ts != vs {
		t.Fatalf("%s: ledger mismatch:\n tree: %+v\n   vm: %+v", name, ts, vs)
	}
	tc, vc := tl.ByClass(), vl.ByClass()
	if len(tc) != len(vc) {
		t.Fatalf("%s: per-class stat count mismatch: tree %d, vm %d", name, len(tc), len(vc))
	}
	for i := range tc {
		if tc[i].Class != vc[i].Class || tc[i].Count != vc[i].Count ||
			tc[i].Bytes != vc[i].Bytes || tc[i].Dead != vc[i].Dead {
			t.Fatalf("%s: per-class stats differ for %s:\n tree: %+v\n   vm: %+v",
				name, tc[i].Class.Name, *tc[i], *vc[i])
		}
	}
}

// TestVMCompilesHotFunctions guards against silent whole-corpus
// fallback: the VM must actually compile (not decline) the functions of
// a representative program.
func TestVMCompilesHotFunctions(t *testing.T) {
	src := `
		class N {
		public:
			int v;
			N(int x) { v = x; }
			virtual int get() { return v; }
			virtual ~N() {}
		};
		int main() {
			int sum = 0;
			for (int i = 0; i < 100; i = i + 1) {
				N* n = new N(i);
				sum = sum + n->get();
				delete n;
			}
			print(sum); println();
			return 0;
		}`
	c := compile(t, "hot.mcc", src)
	ex := vm.NewExecutor(c.Program, c.Hierarchy)
	res, err := interp.Run(c.Program, c.Hierarchy, interp.Options{Executor: ex})
	if err != nil {
		t.Fatalf("vm run: %v", err)
	}
	compiled, fallback := ex.Counts()
	if compiled == 0 {
		t.Fatalf("no functions compiled (fallback=%d)", fallback)
	}
	if fallback != 0 {
		t.Errorf("unexpected fallback count %d (compiled=%d)", fallback, compiled)
	}
	if res.Output == "" {
		t.Error("no output produced")
	}
}

// TestVMStepBudget asserts the VM honors MaxSteps with the tree-walker's
// exact error (including the satellite position/function diagnostics).
func TestVMStepBudget(t *testing.T) {
	src := `int main() { int i = 0; while (1) { i = i + 1; } return i; }`
	c := compile(t, "spin.mcc", src)
	run := func(ex interp.Executor) string {
		_, err := interp.Run(c.Program, c.Hierarchy, interp.Options{
			MaxSteps: 5000,
			FileSet:  c.FileSet,
			Executor: ex,
		})
		if err == nil {
			t.Fatal("expected step-limit error")
		}
		return err.Error()
	}
	tmsg := run(nil)
	vmsg := run(vm.NewExecutor(c.Program, c.Hierarchy))
	if tmsg != vmsg {
		t.Fatalf("step-limit error differs:\n tree: %s\n   vm: %s", tmsg, vmsg)
	}
	if tmsg == "runtime error: step limit exceeded (5000)" {
		t.Fatalf("step-limit error lacks position/function diagnostics: %s", tmsg)
	}
}
