package vm

import (
	"fmt"

	"deadmembers/internal/ast"
	"deadmembers/internal/hierarchy"
	"deadmembers/internal/interp"
	"deadmembers/internal/source"
	"deadmembers/internal/token"
	"deadmembers/internal/types"
)

// errUnsupported aborts compilation of a function that uses a construct
// the VM does not model; the caller falls back to the tree-walker.
var errUnsupported = fmt.Errorf("vm: unsupported construct")

type compiler struct {
	info *types.Info
	h    *hierarchy.Graph
	fn   *types.Func

	code   []instr
	consts []interp.Value
	slotOf map[*types.Var]int

	depth int // open destructor scopes
	ctxs  []ctrlCtx
}

// ctrlCtx is an open break/continue target (a loop or a switch).
type ctrlCtx struct {
	isLoop     bool
	breakDepth int // scope depth at the break landing point
	contDepth  int
	breakSites []int
	contSites  []int
}

// compileFunc translates fn's body to bytecode, or returns nil when any
// construct is unsupported (whole-function fallback: partial compilation
// could reorder side effects, so it is all-or-nothing). Any panic during
// compilation also falls back — the tree-walker is always a correct
// implementation, so a compiler gap degrades performance, never
// semantics.
func compileFunc(fn *types.Func, info *types.Info, h *hierarchy.Graph) (ch *chunk) {
	defer func() {
		if r := recover(); r != nil {
			ch = nil
		}
	}()
	c := &compiler{info: info, h: h, fn: fn, slotOf: map[*types.Var]int{}}
	for i, p := range fn.Params {
		c.slotOf[p] = i
	}
	c.scanDecls(fn.Body)
	c.stmt(fn.Body)
	c.emit(instr{op: opReturnVoid})
	return &chunk{fn: fn, code: peephole(c.code), consts: c.consts, numSlots: len(c.slotOf)}
}

// scanDecls pre-assigns a frame slot to every local declaration so
// identifier uses can compile to slot accesses regardless of where the
// declaration sits relative to the use (a use before the declaration
// executes finds a nil slot, reproducing the tree-walker's
// not-in-scope failure).
func (c *compiler) scanDecls(s ast.Stmt) {
	switch x := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range x.Stmts {
			c.scanDecls(st)
		}
	case *ast.DeclStmt:
		v := c.info.VarObjects[x.Var]
		if v == nil {
			panic(errUnsupported)
		}
		if _, dup := c.slotOf[v]; !dup {
			c.slotOf[v] = len(c.slotOf)
		}
	case *ast.IfStmt:
		c.scanDecls(x.Then)
		c.scanDecls(x.Else)
	case *ast.WhileStmt:
		c.scanDecls(x.Body)
	case *ast.DoWhileStmt:
		c.scanDecls(x.Body)
	case *ast.ForStmt:
		c.scanDecls(x.Init)
		c.scanDecls(x.Body)
	case *ast.SwitchStmt:
		for i := range x.Cases {
			for _, st := range x.Cases[i].Body {
				c.scanDecls(st)
			}
		}
	}
}

func (c *compiler) emit(ins instr) int {
	c.code = append(c.code, ins)
	return len(c.code) - 1
}

func (c *compiler) constant(v interp.Value) int {
	c.consts = append(c.consts, v)
	return len(c.consts) - 1
}

func (c *compiler) emitConst(v interp.Value) {
	c.emit(instr{op: opConst, a: c.constant(v)})
}

// here is the label for the next instruction to be emitted.
func (c *compiler) here() int { return len(c.code) }

func (c *compiler) patch(site, target int) { c.code[site].a = target }

// failAt compiles a deterministic runtime failure with a preformatted
// message, matching the tree-walker's error text and position.
func (c *compiler) failAt(pos source.Pos, format string, args ...interface{}) {
	c.emit(instr{op: opFail, pos: pos, str: fmt.Sprintf(format, args...)})
}

// ---------------------------------------------------------------------------
// Statements

func (c *compiler) stmt(s ast.Stmt) {
	c.emit(instr{op: opStep, pos: s.Pos()})
	switch x := s.(type) {
	case *ast.BlockStmt:
		c.emit(instr{op: opScopePush})
		c.depth++
		for _, st := range x.Stmts {
			c.stmt(st)
		}
		c.emit(instr{op: opScopePop})
		c.depth--

	case *ast.DeclStmt:
		c.decl(x.Var)

	case *ast.ExprStmt:
		if !c.stmtExpr(x.X) {
			c.expr(x.X)
			c.emit(instr{op: opPop})
		}

	case *ast.IfStmt:
		c.expr(x.Cond)
		jf := c.emit(instr{op: opJF})
		c.scoped(x.Then)
		if x.Else != nil {
			jend := c.emit(instr{op: opJump})
			c.patch(jf, c.here())
			c.scoped(x.Else)
			c.patch(jend, c.here())
		} else {
			c.patch(jf, c.here())
		}

	case *ast.WhileStmt:
		ctx := c.pushCtx(true, c.depth, c.depth)
		cond := c.here()
		c.expr(x.Cond)
		jf := c.emit(instr{op: opJF})
		c.scoped(x.Body)
		c.emit(instr{op: opJump, a: cond})
		end := c.here()
		c.patch(jf, end)
		c.popCtx(ctx, end, cond)

	case *ast.DoWhileStmt:
		ctx := c.pushCtx(true, c.depth, c.depth)
		body := c.here()
		c.scoped(x.Body)
		cond := c.here()
		c.expr(x.Cond)
		c.emit(instr{op: opJT, a: body})
		end := c.here()
		c.popCtx(ctx, end, cond)

	case *ast.ForStmt:
		// The for statement owns a scope holding the init declaration; it
		// closes after the loop ends, which is also where break lands.
		c.emit(instr{op: opScopePush})
		c.depth++
		if x.Init != nil {
			c.stmt(x.Init)
		}
		ctx := c.pushCtx(true, c.depth, c.depth)
		cond := c.here()
		var jf int = -1
		if x.Cond != nil {
			c.expr(x.Cond)
			jf = c.emit(instr{op: opJF})
		}
		c.scoped(x.Body)
		post := c.here()
		if x.Post != nil && !c.stmtExpr(x.Post) {
			c.expr(x.Post)
			c.emit(instr{op: opPop})
		}
		c.emit(instr{op: opJump, a: cond})
		end := c.here()
		if jf >= 0 {
			c.patch(jf, end)
		}
		c.emit(instr{op: opScopePop})
		c.depth--
		c.popCtx(ctx, end, post)

	case *ast.SwitchStmt:
		c.switchStmt(x)

	case *ast.ReturnStmt:
		if x.X != nil {
			c.expr(x.X)
			c.emit(instr{op: opReturnValue, typ: c.fn.Return})
		} else {
			c.emit(instr{op: opReturnVoid})
		}

	case *ast.BreakStmt:
		if len(c.ctxs) == 0 {
			panic(errUnsupported) // stray break: tree-walker unwinding applies
		}
		ctx := &c.ctxs[len(c.ctxs)-1]
		c.emitPopN(c.depth - ctx.breakDepth)
		ctx.breakSites = append(ctx.breakSites, c.emit(instr{op: opJump}))

	case *ast.ContinueStmt:
		ctx := c.loopCtx()
		if ctx == nil {
			panic(errUnsupported) // stray continue
		}
		c.emitPopN(c.depth - ctx.contDepth)
		ctx.contSites = append(ctx.contSites, c.emit(instr{op: opJump}))

	default:
		panic(errUnsupported)
	}
}

// scoped compiles s inside its own destructor scope (the tree-walker's
// execScoped).
func (c *compiler) scoped(s ast.Stmt) {
	c.emit(instr{op: opScopePush})
	c.depth++
	c.stmt(s)
	c.emit(instr{op: opScopePop})
	c.depth--
}

func (c *compiler) emitPopN(n int) {
	if n > 0 {
		c.emit(instr{op: opScopePopN, a: n})
	}
}

func (c *compiler) pushCtx(isLoop bool, breakDepth, contDepth int) int {
	c.ctxs = append(c.ctxs, ctrlCtx{isLoop: isLoop, breakDepth: breakDepth, contDepth: contDepth})
	return len(c.ctxs) - 1
}

func (c *compiler) popCtx(i, breakTarget, contTarget int) {
	ctx := c.ctxs[i]
	c.ctxs = c.ctxs[:i]
	for _, s := range ctx.breakSites {
		c.patch(s, breakTarget)
	}
	for _, s := range ctx.contSites {
		c.patch(s, contTarget)
	}
}

func (c *compiler) loopCtx() *ctrlCtx {
	for i := len(c.ctxs) - 1; i >= 0; i-- {
		if c.ctxs[i].isLoop {
			return &c.ctxs[i]
		}
	}
	return nil
}

// switchStmt compiles the no-fallthrough MC++ switch: the scrutinee is
// kept on the stack while non-default case values are tested in source
// order; the first match pops it and enters that case's body.
func (c *compiler) switchStmt(x *ast.SwitchStmt) {
	c.expr(x.X)
	ctxIdx := c.pushCtx(false, c.depth, c.depth)

	caseSites := make([][]int, len(x.Cases))
	deflt := -1
	for i := range x.Cases {
		cs := &x.Cases[i]
		if cs.Values == nil {
			deflt = i
			continue
		}
		for _, ve := range cs.Values {
			c.emit(instr{op: opDup})
			c.expr(ve)
			caseSites[i] = append(caseSites[i], c.emit(instr{op: opCaseEq}))
		}
	}
	c.emit(instr{op: opPop}) // no case matched: drop the scrutinee
	jmiss := c.emit(instr{op: opJump})

	var endSites []int
	for i := range x.Cases {
		label := c.here()
		for _, s := range caseSites[i] {
			c.patch(s, label)
		}
		if i == deflt {
			c.patch(jmiss, label)
		}
		c.emit(instr{op: opScopePush})
		c.depth++
		for _, st := range x.Cases[i].Body {
			c.stmt(st)
		}
		c.emit(instr{op: opScopePop})
		c.depth--
		endSites = append(endSites, c.emit(instr{op: opJump}))
	}

	end := c.here()
	if deflt < 0 {
		c.patch(jmiss, end)
	}
	for _, s := range endSites {
		c.patch(s, end)
	}
	c.popCtx(ctxIdx, end, -1) // contSites stay with the enclosing loop ctx
}

// decl compiles a local variable declaration, slot-for-slot mirroring
// the tree-walker's execDecl ordering (cell registration, allocation,
// initializer evaluation, construction).
func (c *compiler) decl(d *ast.VarDecl) {
	v := c.info.VarObjects[d]
	t := c.info.VarTypes[d]
	slot, ok := c.slotOf[v]
	if !ok || t == nil {
		panic(errUnsupported)
	}

	if cls := types.IsClass(t); cls != nil {
		c.emit(instr{op: opDeclCell, a: slot})
		if d.Init != nil {
			c.expr(d.Init)
			c.emit(instr{op: opDeclCopyInit, a: slot, cls: cls})
			return
		}
		c.emit(instr{op: opNewObj, cls: cls})
		for _, a := range d.CtorArgs {
			c.expr(a)
		}
		c.emit(instr{op: opDeclConstruct, a: slot, b: len(d.CtorArgs), fn: c.info.VarCtors[d]})
		return
	}

	if arr, isArr := t.(*types.Array); isArr {
		c.emit(instr{op: opDeclArray, a: slot, typ: arr})
		return
	}

	c.emit(instr{op: opDeclZero, a: slot, typ: t})
	var init ast.Expr
	if d.Init != nil {
		init = d.Init
	} else if len(d.CtorArgs) == 1 {
		init = d.CtorArgs[0]
	}
	if init != nil {
		c.expr(init)
		c.emit(instr{op: opDeclStore, a: slot, typ: t})
	}
}

// ---------------------------------------------------------------------------
// Expressions

// expr compiles e; at run time it leaves exactly one value on the stack.
func (c *compiler) expr(e ast.Expr) {
	switch x := e.(type) {
	case *ast.Paren:
		c.expr(x.X)
	case *ast.IntLit:
		c.emitConst(interp.Value{K: interp.KInt, I: x.Value})
	case *ast.FloatLit:
		c.emitConst(interp.Value{K: interp.KDouble, F: x.Value})
	case *ast.CharLit:
		c.emitConst(interp.Value{K: interp.KChar, I: int64(x.Value)})
	case *ast.BoolLit:
		v := interp.Value{K: interp.KBool}
		if x.Value {
			v.I = 1
		}
		c.emitConst(v)
	case *ast.NullLit:
		c.emitConst(interp.NullValue())
	case *ast.StringLit:
		c.emit(instr{op: opStr, str: x.Value})
	case *ast.ThisExpr:
		c.emit(instr{op: opThis, pos: x.Pos()})
	case *ast.Ident:
		if fld := c.info.IdentFields[x]; fld != nil {
			c.emit(instr{op: opLoadField, fld: fld, pos: x.Pos()})
			return
		}
		c.varAccess(x, opLoadSlot, opLoadGlobal)
	case *ast.QualifiedIdent:
		c.failAt(x.Pos(), "qualified identifier %s::%s used as value", x.Class, x.Name)
	case *ast.Unary:
		c.unary(x)
	case *ast.Postfix:
		c.lvalue(x.X)
		inc := 0
		if x.Op == token.Inc {
			inc = 1
		}
		c.emit(instr{op: opPostfix, a: inc, pos: x.Pos()})
	case *ast.Binary:
		c.binary(x)
	case *ast.Assign:
		c.assign(x)
	case *ast.Cond:
		c.expr(x.C)
		jf := c.emit(instr{op: opJF})
		c.expr(x.Then)
		jend := c.emit(instr{op: opJump})
		c.patch(jf, c.here())
		c.expr(x.Else)
		c.patch(jend, c.here())
	case *ast.Member:
		c.member(x, true)
	case *ast.MemberPtrDeref:
		c.memberPtr(x, true)
	case *ast.Index:
		c.expr(x.X)
		c.expr(x.I)
		c.emit(instr{op: opIndexLoad, pos: x.Pos()})
	case *ast.Call:
		c.call(x)
	case *ast.Cast:
		c.expr(x.X)
		c.emit(instr{op: opConvert, typ: c.info.TypeExprs[x.Type]})
	case *ast.New:
		c.newExpr(x)
	case *ast.Delete:
		c.expr(x.X)
		arr := 0
		if x.Array {
			arr = 1
		}
		c.emit(instr{op: opDelete, a: arr, pos: x.Pos()})
	case *ast.Sizeof:
		var t types.Type
		if x.Type != nil {
			t = c.info.TypeExprs[x.Type]
		} else {
			t = c.info.TypeOf(x.X) // operand is not evaluated
		}
		if t == nil {
			panic(errUnsupported)
		}
		c.emitConst(interp.Value{K: interp.KInt, I: int64(c.h.SizeOf(t))})
	default:
		c.failAt(e.Pos(), "unsupported expression")
	}
}

// varAccess compiles a plain identifier as either a frame-slot or a
// global-cell access, preserving the tree-walker's resolution order and
// failure messages.
func (c *compiler) varAccess(x *ast.Ident, slotOp, globalOp opcode) {
	v := c.info.IdentVars[x]
	if v == nil {
		c.failAt(x.Pos(), "unresolved identifier %s", x.Name)
		return
	}
	if slot, ok := c.slotOf[v]; ok {
		c.emit(instr{op: slotOp, a: slot, vr: v, pos: x.Pos()})
		return
	}
	c.emit(instr{op: globalOp, vr: v, pos: x.Pos()})
}

func (c *compiler) unary(x *ast.Unary) {
	switch x.Op {
	case token.Amp:
		if qi, ok := ast.Unparen(x.X).(*ast.QualifiedIdent); ok {
			fld := c.info.QualFieldRefs[qi]
			if fld == nil {
				c.failAt(x.Pos(), "unresolved pointer-to-member &%s::%s", qi.Class, qi.Name)
				return
			}
			c.emitConst(interp.Value{K: interp.KMemberPtr, MP: fld})
			return
		}
		if ix, ok := ast.Unparen(x.X).(*ast.Index); ok {
			// Fast path: a pointer into the array. On a miss the operand
			// is re-evaluated as an lvalue — the tree-walker evaluates
			// base and index twice here, and so do we.
			c.expr(ix.X)
			c.expr(ix.I)
			try := c.emit(instr{op: opAddrIndexTry, pos: x.Pos()})
			c.lvalue(x.X)
			c.emit(instr{op: opAddrOf})
			c.patch(try, c.here())
			return
		}
		c.lvalue(x.X)
		c.emit(instr{op: opAddrOf})
	case token.Star:
		c.expr(x.X)
		c.emit(instr{op: opDerefLoad, pos: x.Pos()})
	case token.Minus:
		c.expr(x.X)
		c.emit(instr{op: opNeg})
	case token.Not:
		c.expr(x.X)
		c.emit(instr{op: opNot})
	case token.Tilde:
		c.expr(x.X)
		c.emit(instr{op: opTilde})
	case token.Inc, token.Dec:
		c.lvalue(x.X)
		inc := 0
		if x.Op == token.Inc {
			inc = 1
		}
		c.emit(instr{op: opPreIncDec, a: inc, pos: x.Pos()})
	default:
		c.failAt(x.Pos(), "unsupported unary operator %s", x.Op)
	}
}

func (c *compiler) binary(x *ast.Binary) {
	switch x.Op {
	case token.AmpAmp:
		c.expr(x.X)
		jf := c.emit(instr{op: opJF})
		c.expr(x.Y)
		c.emit(instr{op: opTruthy})
		jend := c.emit(instr{op: opJump})
		c.patch(jf, c.here())
		c.emitConst(interp.Value{K: interp.KBool, I: 0})
		c.patch(jend, c.here())
	case token.PipePipe:
		c.expr(x.X)
		jt := c.emit(instr{op: opJT})
		c.expr(x.Y)
		c.emit(instr{op: opTruthy})
		jend := c.emit(instr{op: opJump})
		c.patch(jt, c.here())
		c.emitConst(interp.Value{K: interp.KBool, I: 1})
		c.patch(jend, c.here())
	default:
		c.expr(x.X)
		c.expr(x.Y)
		op := opBinary
		if c.intStatic(x.X) && c.intStatic(x.Y) {
			// Both operands are statically integral, so their runtime
			// kinds are KInt/KChar/KBool and the operator runs on .I —
			// dispatch inline instead of through ApplyBinary.
			op = opIntBin
		}
		// The operator rides in c as well as b so the opIntBin family
		// (fused or not) reads it from one place; opBinary keeps b.
		c.emit(instr{op: op, b: int(x.Op), c: int(x.Op), pos: x.Pos()})
	}
}

// intStatic reports whether e's static type is integral (int, char, or
// bool), which confines its runtime kind to the .I-carrying kinds.
func (c *compiler) intStatic(e ast.Expr) bool {
	if b, ok := c.info.TypeOf(e).(*types.Basic); ok {
		return b.Kind == types.Int || b.Kind == types.Char || b.Kind == types.Bool
	}
	return false
}

// stmtExpr compiles e in statement position — its value is discarded —
// using fused forms that skip the push-back of assignment results.
// Returns false when e has no statement-position specialization (the
// caller then compiles it generically and pops).
func (c *compiler) stmtExpr(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Assign:
		lt := c.info.TypeOf(x.LHS)
		if x.Op == token.Assign {
			if slot, v, ok := c.intSlotTarget(x.LHS); ok {
				if d, fused := incPattern(x, c.info); fused {
					c.emit(instr{op: opIncSlotI, a: slot, b: d, vr: v, typ: v.Type, pos: x.Pos()})
					return true
				}
				// The tree-walker resolves the lvalue before the RHS
				// runs, so a dead slot must fail first.
				c.emit(instr{op: opCheckSlot, a: slot, vr: v, pos: x.LHS.Pos()})
				c.expr(x.RHS)
				c.emit(instr{op: opStoreSlotI, a: slot, pos: x.Pos()})
				return true
			}
			c.lvalue(x.LHS)
			c.expr(x.RHS)
			c.emit(instr{op: opAssignPop, typ: lt, pos: x.Pos()})
			return true
		}
		c.lvalue(x.LHS)
		c.expr(x.RHS)
		c.emit(instr{op: opAssignOpPop, b: int(x.Op.CompoundBase()), typ: lt, pos: x.Pos()})
		return true
	case *ast.Postfix:
		c.incDecStmt(x.X, x.Op, x.Pos())
		return true
	case *ast.Unary:
		if x.Op == token.Inc || x.Op == token.Dec {
			c.incDecStmt(x.X, x.Op, x.Pos())
			return true
		}
	}
	return false
}

// incDecStmt compiles a statement-position ++/--.
func (c *compiler) incDecStmt(target ast.Expr, op token.Kind, pos source.Pos) {
	if slot, v, ok := c.intSlotTarget(target); ok {
		d := 1
		if op == token.Dec {
			d = -1
		}
		c.emit(instr{op: opIncSlotI, a: slot, b: d, vr: v, typ: v.Type, pos: pos})
		return
	}
	c.lvalue(target)
	inc := 0
	if op == token.Inc {
		inc = 1
	}
	c.emit(instr{op: opIncDecPop, a: inc, pos: pos})
}

// intSlotTarget matches e as a local frame slot of static type int.
func (c *compiler) intSlotTarget(e ast.Expr) (int, *types.Var, bool) {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || c.info.IdentFields[id] != nil {
		return 0, nil, false
	}
	v := c.info.IdentVars[id]
	if v == nil {
		return 0, nil, false
	}
	slot, ok := c.slotOf[v]
	if !ok {
		return 0, nil, false
	}
	if b, isBasic := v.Type.(*types.Basic); !isBasic || b.Kind != types.Int {
		return 0, nil, false
	}
	return slot, v, true
}

// incPattern matches x as `v = v + c` / `v = v - c` with an integer
// literal c, returning the signed delta. Both loads are side-effect
// free, so the whole statement collapses to one instruction.
func incPattern(x *ast.Assign, info *types.Info) (int, bool) {
	lhs, ok := ast.Unparen(x.LHS).(*ast.Ident)
	if !ok {
		return 0, false
	}
	bin, ok := ast.Unparen(x.RHS).(*ast.Binary)
	if !ok || (bin.Op != token.Plus && bin.Op != token.Minus) {
		return 0, false
	}
	rid, ok := ast.Unparen(bin.X).(*ast.Ident)
	if !ok || info.IdentVars[rid] == nil || info.IdentVars[rid] != info.IdentVars[lhs] {
		return 0, false
	}
	lit, ok := ast.Unparen(bin.Y).(*ast.IntLit)
	if !ok || lit.Value > 1<<30 || lit.Value < -(1<<30) {
		return 0, false
	}
	d := int(lit.Value)
	if bin.Op == token.Minus {
		d = -d
	}
	return d, true
}

func (c *compiler) assign(x *ast.Assign) {
	c.lvalue(x.LHS)
	c.expr(x.RHS)
	lt := c.info.TypeOf(x.LHS)
	if x.Op == token.Assign {
		c.emit(instr{op: opAssign, typ: lt, pos: x.Pos()})
		return
	}
	c.emit(instr{op: opAssignOp, b: int(x.Op.CompoundBase()), typ: lt, pos: x.Pos()})
}

// member compiles a data-member access; rvalue selects load vs location.
func (c *compiler) member(x *ast.Member, rvalue bool) {
	fld := c.info.FieldRefs[x]
	c.expr(x.X)
	arrow := 0
	if x.Arrow {
		arrow = 1
	}
	if fld == nil {
		// The tree-walker converts the receiver first, then fails.
		c.emit(instr{op: opReceiver, a: arrow, pos: x.X.Pos()})
		c.failAt(x.Pos(), "member %s did not resolve to a data member", x.Name)
		return
	}
	op := opLvMember
	if rvalue {
		op = opMemberLoad
	}
	c.emit(instr{op: op, a: arrow, fld: fld, pos: x.Pos(), pos2: x.X.Pos()})
}

func (c *compiler) memberPtr(x *ast.MemberPtrDeref, rvalue bool) {
	c.expr(x.X)
	arrow := 0
	if x.Arrow {
		arrow = 1
	}
	c.emit(instr{op: opReceiver, a: arrow, pos: x.X.Pos()})
	c.expr(x.Ptr)
	op := opLvMPtr
	if rvalue {
		op = opMPtrLoad
	}
	c.emit(instr{op: op, pos: x.Pos()})
}

// lvalue compiles e as an assignable location pushed on the Loc stack.
func (c *compiler) lvalue(e ast.Expr) {
	switch x := e.(type) {
	case *ast.Paren:
		c.lvalue(x.X)
	case *ast.Ident:
		if fld := c.info.IdentFields[x]; fld != nil {
			c.emit(instr{op: opLvField, fld: fld, pos: x.Pos()})
			return
		}
		c.varAccess(x, opLvSlot, opLvGlobal)
	case *ast.Member:
		c.member(x, false)
	case *ast.MemberPtrDeref:
		c.memberPtr(x, false)
	case *ast.Index:
		c.expr(x.X)
		c.expr(x.I)
		c.emit(instr{op: opLvIndex, pos: x.Pos()})
	case *ast.Unary:
		if x.Op == token.Star {
			c.expr(x.X)
			c.emit(instr{op: opLvDeref, pos: x.Pos()})
			return
		}
		c.failAt(e.Pos(), "expression is not an lvalue at run time")
	default:
		c.failAt(e.Pos(), "expression is not an lvalue at run time")
	}
}

func (c *compiler) call(x *ast.Call) {
	switch fun := ast.Unparen(x.Fun).(type) {
	case *ast.Ident:
		if mth, ok := c.info.IdentMethods[fun]; ok {
			c.emit(instr{op: opPendImplicit, fn: mth, pos: x.Pos()})
			for _, a := range x.Args {
				c.expr(a)
			}
			c.emit(instr{op: opCall, a: len(x.Args)})
			return
		}
		if fn, ok := c.info.IdentFuncs[fun]; ok {
			if fn.Builtin {
				c.builtin(fn.Name, x)
				return
			}
			c.emit(instr{op: opPendFunc, fn: fn})
			for _, a := range x.Args {
				c.expr(a)
			}
			c.emit(instr{op: opCall, a: len(x.Args)})
			return
		}
		c.failAt(x.Pos(), "unresolved call target %s", fun.Name)
	case *ast.Member:
		mth, ok := c.info.MethodRefs[fun]
		if !ok {
			c.failAt(x.Pos(), "unresolved method %s", fun.Name)
			return
		}
		arrow := 0
		if fun.Arrow {
			arrow = 1
		}
		c.expr(fun.X)
		c.emit(instr{op: opPendMethod, fn: mth, str: fun.Qual, a: arrow, pos: x.Pos(), pos2: fun.X.Pos()})
		for _, a := range x.Args {
			c.expr(a)
		}
		c.emit(instr{op: opCall, a: len(x.Args)})
	default:
		c.failAt(x.Pos(), "called expression is not callable")
	}
}

// builtin compiles a runtime-builtin call. Argument evaluation mirrors
// the tree-walker exactly: print/println evaluate their argument only
// when there is exactly one; clock and abort never evaluate arguments.
// Arity mismatches on the one-argument builtins fall back to the
// tree-walker, which owns that failure mode.
func (c *compiler) builtin(name string, x *ast.Call) {
	oneArg := func() {
		if len(x.Args) != 1 {
			panic(errUnsupported)
		}
		c.expr(x.Args[0])
	}
	switch name {
	case "print", "println":
		if len(x.Args) == 1 {
			c.expr(x.Args[0])
			c.emit(instr{op: opPrint, typ: c.info.TypeOf(x.Args[0])})
		}
		if name == "println" {
			c.emit(instr{op: opPrintNL})
		}
		c.emitConst(interp.Value{K: interp.KVoid})
	case "malloc":
		oneArg()
		c.emit(instr{op: opMalloc, pos: x.Pos()})
	case "free":
		oneArg()
		c.emit(instr{op: opFree, pos: x.Pos()})
	case "rand_seed":
		oneArg()
		c.emit(instr{op: opRandSeed})
	case "rand_next":
		oneArg()
		c.emit(instr{op: opRandNext, pos: x.Pos()})
	case "clock":
		c.emit(instr{op: opClock})
	case "abort":
		c.failAt(x.Pos(), "abort() called")
	default:
		c.failAt(x.Pos(), "unknown builtin %s", name)
	}
}

func (c *compiler) newExpr(x *ast.New) {
	t := c.info.TypeExprs[x.Type]
	if t == nil {
		panic(errUnsupported)
	}

	if x.Len != nil { // new T[n]
		c.expr(x.Len)
		c.emit(instr{op: opNewArr, typ: t, pos: x.Pos()})
		return
	}

	if cls := types.IsClass(t); cls != nil { // new C(args)
		// Allocation (and its ledger record) precedes the arguments.
		c.emit(instr{op: opNewObj, cls: cls})
		for _, a := range x.Args {
			c.expr(a)
		}
		c.emit(instr{op: opFinishNew, a: len(x.Args), fn: c.info.NewCtors[x]})
		return
	}

	// Scalar new.
	hasInit := 0
	if len(x.Args) == 1 {
		c.expr(x.Args[0])
		hasInit = 1
	} else if len(x.Args) > 1 {
		panic(errUnsupported)
	}
	c.emit(instr{op: opNewScalar, a: hasInit, typ: t})
}
