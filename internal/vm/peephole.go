package vm

// Peephole fusion. compileFunc runs these passes over the emitted code:
//
//  1. triples  — opLoadSlot/opConst pairs feeding an opIntBin collapse
//     into one superinstruction (opIntBinSS / opIntBinSC / opIntBinCS);
//  2. checks   — an opCheckSlot is dropped when the instruction after it
//     fails identically on the same nil slot (an opLoadSlot or fused
//     int-binop on the same slot), so `x = x op ...` statements need no
//     separate lvalue probe;
//  3. store    — an int-binop whose result feeds an opStoreSlotI stores
//     straight into the slot (mode modeStore) and the store instruction
//     disappears;
//  4. branch   — an int-binop whose result feeds an opJF branches
//     directly (mode modeJF);
//  5. steps    — an opStep folds into the next instruction's stepped
//     flag (the step position moves to pos2, which the eligible opcodes
//     do not use), so statement accounting costs no extra dispatch.
//
// Every pass preserves observable behaviour exactly: fused forms
// re-check runtime kinds and defer to the shared runtime helpers, the
// not-in-scope and step-limit diagnostics keep their message text and
// positions, and a fusion is skipped whenever a jump lands on any
// instruction of the candidate sequence other than its first (entry
// mid-sequence could not be reproduced). Fusion changes instruction
// counts, so each pass remaps jump operands.
func peephole(code []instr) []instr {
	code = fusePass(code, fuseTriple)
	code = fusePass(code, fusePair)
	code = fusePass(code, fuseChain)
	code = fusePass(code, dropCheck)
	code = fusePass(code, fuseStore)
	code = fusePass(code, fuseBranch)
	code = fusePass(code, fuseStep)
	return code
}

// Result modes of the opIntBin family: push the result (modePush),
// store it into int slot d (modeStore), or branch to d when it is
// falsy (modeJF).
const (
	modePush uint8 = iota
	modeStore
	modeJF
)

// fusePass rewrites code with one local fusion rule. fuse inspects the
// sequence starting at pc and returns the fused instruction plus how
// many source instructions it consumed (0 = keep code[pc] as is).
func fusePass(code []instr, fuse func(code []instr, pc int, isTarget []bool) (instr, int)) []instr {
	isTarget := make([]bool, len(code)+1)
	for i := range code {
		for _, ref := range jumpRefs(&code[i]) {
			isTarget[*ref] = true
		}
	}
	out := make([]instr, 0, len(code))
	remap := make([]int, len(code)+1)
	for pc := 0; pc < len(code); {
		remap[pc] = len(out)
		if ins, n := fuse(code, pc, isTarget); n > 0 {
			out = append(out, ins)
			for k := 1; k < n; k++ {
				remap[pc+k] = len(out) - 1
			}
			pc += n
			continue
		}
		out = append(out, code[pc])
		pc++
	}
	remap[len(code)] = len(out)
	for i := range out {
		for _, ref := range jumpRefs(&out[i]) {
			*ref = remap[*ref]
		}
	}
	return out
}

// jumpRefs returns pointers to ins's code-offset operands.
func jumpRefs(ins *instr) []*int {
	switch ins.op {
	case opJump, opJF, opJT, opCaseEq, opAddrIndexTry:
		return []*int{&ins.a}
	case opIntBin, opIntBinSS, opIntBinSC, opIntBinCS,
		opIntBinXS, opIntBinXC,
		opIntBin2SS, opIntBin2SC, opIntBin2CS:
		if ins.mode == modeJF {
			return []*int{&ins.d}
		}
	}
	return nil
}

// fuseTriple: [opLoadSlot|opConst] [opLoadSlot|opConst] [opIntBin] →
// one fused binop. opIntBin is only emitted when both operands are
// statically integral, so the fused forms inherit that guarantee.
func fuseTriple(code []instr, pc int, isTarget []bool) (instr, int) {
	if pc+2 >= len(code) || code[pc+2].op != opIntBin ||
		code[pc+2].mode != modePush || isTarget[pc+1] || isTarget[pc+2] {
		return instr{}, 0
	}
	l1, l2, bin := &code[pc], &code[pc+1], &code[pc+2]
	switch {
	case l1.op == opLoadSlot && l2.op == opLoadSlot:
		return instr{op: opIntBinSS, a: l1.a, b: l2.a, c: bin.c,
			pos: bin.pos, vr: l1.vr, vr2: l2.vr}, 3
	case l1.op == opLoadSlot && l2.op == opConst:
		return instr{op: opIntBinSC, a: l1.a, b: l2.a, c: bin.c,
			pos: bin.pos, vr: l1.vr}, 3
	case l1.op == opConst && l2.op == opLoadSlot:
		return instr{op: opIntBinCS, a: l2.a, b: l1.a, c: bin.c,
			pos: bin.pos, vr: l2.vr}, 3
	}
	return instr{}, 0
}

// fusePair: [opLoadSlot|opConst] [opIntBin, modePush] → top (op) slot /
// top (op) const. Catches the second operand of a binop whose first
// operand was a computed subexpression (already on the stack), the
// pattern fuseTriple cannot reach. Runs after fuseTriple so three-load
// sequences take the cheaper triple form first. The nil-slot failure
// keeps its order: the unfused opLoadSlot fails before the binop runs,
// and the fused form probes the slot before computing.
func fusePair(code []instr, pc int, isTarget []bool) (instr, int) {
	if pc+1 >= len(code) || code[pc+1].op != opIntBin ||
		code[pc+1].mode != modePush || isTarget[pc+1] {
		return instr{}, 0
	}
	l, bin := &code[pc], &code[pc+1]
	switch l.op {
	case opLoadSlot:
		return instr{op: opIntBinXS, a: l.a, c: bin.c, pos: bin.pos, vr: l.vr}, 2
	case opConst:
		return instr{op: opIntBinXC, b: l.a, c: bin.c, pos: bin.pos}, 2
	}
	return instr{}, 0
}

// fuseChain: [one-stage fused binop, modePush] [opIntBin, modePush] →
// the two-stage form, combining the inner result with the value pushed
// before it via the outer operator. Nothing is reordered: the stack
// operand was evaluated first, the slot/const operands after, and the
// outer operator last, exactly as unfused.
func fuseChain(code []instr, pc int, isTarget []bool) (instr, int) {
	ins := code[pc]
	if ins.mode != modePush || pc+1 >= len(code) || isTarget[pc+1] ||
		code[pc+1].op != opIntBin || code[pc+1].mode != modePush {
		return instr{}, 0
	}
	switch ins.op {
	case opIntBinSS:
		ins.op = opIntBin2SS
	case opIntBinSC:
		ins.op = opIntBin2SC
	case opIntBinCS:
		ins.op = opIntBin2CS
	default:
		return instr{}, 0
	}
	ins.e = code[pc+1].c
	return ins, 2
}

// dropCheck: [opCheckSlot a] [X on slot a] → [X] when X raises the
// identical not-in-scope failure for a nil slot a before any other
// effect (an opLoadSlot, or a fused int-binop whose slot operand is a;
// for opIntBinCS the constant "evaluated" ahead of the slot has no
// effects, so failing at the slot check is indistinguishable).
func dropCheck(code []instr, pc int, isTarget []bool) (instr, int) {
	if code[pc].op != opCheckSlot || pc+1 >= len(code) || isTarget[pc+1] {
		return instr{}, 0
	}
	next := &code[pc+1]
	switch next.op {
	case opLoadSlot, opIntBinSS, opIntBinSC, opIntBinCS:
		if next.a == code[pc].a {
			return *next, 2
		}
	}
	return instr{}, 0
}

// fuseStore: [int-binop, modePush] [opStoreSlotI d] → the binop stores
// its result directly. The store's slot was probed by the statement's
// opCheckSlot (or the equivalent dropCheck'd load), so it is non-nil by
// the time the result is ready.
func fuseStore(code []instr, pc int, isTarget []bool) (instr, int) {
	ins := code[pc]
	if !intBinFamily(ins.op) || ins.mode != modePush ||
		pc+1 >= len(code) || code[pc+1].op != opStoreSlotI || isTarget[pc+1] {
		return instr{}, 0
	}
	ins.mode = modeStore
	ins.d = code[pc+1].a
	return ins, 2
}

// fuseBranch: [int-binop, modePush] [opJF t] → the binop branches on a
// falsy result itself (the typical loop condition).
func fuseBranch(code []instr, pc int, isTarget []bool) (instr, int) {
	ins := code[pc]
	if !intBinFamily(ins.op) || ins.mode != modePush ||
		pc+1 >= len(code) || code[pc+1].op != opJF || isTarget[pc+1] {
		return instr{}, 0
	}
	ins.mode = modeJF
	ins.d = code[pc+1].a
	return ins, 2
}

// fuseStep: [opStep] [X] → [X with the stepped flag], for opcodes that
// do not use pos2 (the step position, which the step-limit message
// renders, moves there).
func fuseStep(code []instr, pc int, isTarget []bool) (instr, int) {
	if code[pc].op != opStep || pc+1 >= len(code) || isTarget[pc+1] {
		return instr{}, 0
	}
	next := code[pc+1]
	if next.stepped || !stepFusable(next.op) {
		return instr{}, 0
	}
	next.stepped = true
	next.pos2 = code[pc].pos
	return next, 2
}

func intBinFamily(op opcode) bool {
	switch op {
	case opIntBin, opIntBinSS, opIntBinSC, opIntBinCS,
		opIntBinXS, opIntBinXC,
		opIntBin2SS, opIntBin2SC, opIntBin2CS:
		return true
	}
	return false
}

// stepFusable lists opcodes that leave pos2 unused and so can absorb a
// preceding opStep. Conservative: only statement-initial opcodes that
// the compiler actually emits right after opStep.
func stepFusable(op opcode) bool {
	switch op {
	case opConst, opStr, opThis, opLoadSlot, opLoadGlobal, opLoadField,
		opLvSlot, opLvGlobal, opLvField, opScopePush, opJump,
		opPendFunc, opPendImplicit, opReturnVoid,
		opDeclCell, opDeclZero, opDeclArray,
		opCheckSlot, opIncSlotI,
		opIntBin, opIntBinSS, opIntBinSC, opIntBinCS,
		opIntBin2SS, opIntBin2SC, opIntBin2CS:
		return true
	}
	return false
}
