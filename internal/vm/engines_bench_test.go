package vm_test

import (
	"testing"

	"deadmembers/internal/bench"
	"deadmembers/internal/engine"
	"deadmembers/internal/interp"
	"deadmembers/internal/vm"
)

// Engine throughput on the paper corpus's sched (the most
// allocation-heavy benchmark). Run with -bench to compare:
//
//	go test ./internal/vm -bench 'Sched' -benchtime 3x
func BenchmarkTreeSched(b *testing.B) {
	bm, _ := bench.ByName("sched")
	c := engine.Compile(engine.Config{}, bm.Sources...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		interp.Run(c.Program, c.Hierarchy, interp.Options{})
	}
}

func BenchmarkVMSched(b *testing.B) {
	bm, _ := bench.ByName("sched")
	c := engine.Compile(engine.Config{}, bm.Sources...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex := vm.NewExecutor(c.Program, c.Hierarchy)
		interp.Run(c.Program, c.Hierarchy, interp.Options{Executor: ex})
	}
}

// BenchmarkVMLarge runs the VM over the large corpus (the scale the
// tree-walker cannot reach; see bench.Large).
func BenchmarkVMLarge(b *testing.B) {
	for _, bm := range bench.Large() {
		bm := bm
		b.Run(bm.Name, func(b *testing.B) {
			c := engine.Compile(engine.Config{}, bm.Sources...)
			if err := c.Err(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ex := vm.NewExecutor(c.Program, c.Hierarchy)
				interp.Run(c.Program, c.Hierarchy, interp.Options{Executor: ex})
			}
		})
	}
}
