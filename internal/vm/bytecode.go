// Package vm implements a bytecode compiler and dispatch-loop virtual
// machine for MC++ function bodies. It plugs into the tree-walking
// interpreter through interp.Options.Executor: the shared runtime core
// (object model, construction/destruction protocol, heap ledger, step
// counter, builtins) stays in internal/interp, and the VM only replaces
// the per-statement AST walk, which is what keeps the instrumented heap
// byte-identical between the two engines.
//
// Compilation is per function, lazy, and all-or-nothing: a body using a
// construct the compiler does not model falls back to the tree-walker in
// its entirety, so partial compilation can never change evaluation order.
// Member accesses and virtual dispatch carry monomorphic inline caches
// keyed on the receiver's dynamic class; the class hierarchy and field
// plans are frozen after sema, so caches never need invalidation (they
// are still per-run, because global-variable cells are per-Machine).
package vm

import (
	"deadmembers/internal/interp"
	"deadmembers/internal/source"
	"deadmembers/internal/types"
)

// opcode identifies one VM instruction.
type opcode uint8

// Instruction set. Stack effects are noted as (pops → pushes) on the
// value stack; L marks the lvalue (Loc) stack.
const (
	opConst      opcode = iota // (→1) push consts[a]
	opStr                      // (→1) push fresh string-literal array
	opThis                     // (→1) push pointer to f.This
	opPop                      // (1→) discard top
	opDup                      // (1→2) duplicate top
	opLoadSlot                 // (→1) read slot a (nil slot = not-in-scope failure)
	opLoadGlobal               // (→1) read global vr via cell cache
	opLoadField                // (→1) read field fld of f.This (implicit this->)
	opMemberLoad               // (1→1) pop receiver, read field fld
	opIndexLoad                // (2→1) pop index, base; read element
	opDerefLoad                // (1→1) pop pointer; read pointee
	opMPtrLoad                 // (2→1) pop member-ptr, receiver-ptr; read member

	opLvSlot   // (→; L+1) slot a as location
	opLvGlobal // (→; L+1) global vr as location
	opLvField  // (→; L+1) field fld of f.This as location
	opLvMember // (1→; L+1) pop receiver; field fld as location
	opLvIndex  // (2→; L+1) pop index, base; element as location
	opLvDeref  // (1→; L+1) pop pointer; pointee as location
	opLvMPtr   // (2→; L+1) pop member-ptr, receiver-ptr; member as location

	opLoadLoc      // (→1; L-1) load from location
	opAssign       // (1→1; L-1) plain assignment; pushes the stored location's value
	opAssignOp     // (1→1; L-1) compound assignment with operator b
	opPostfix      // (→1; L-1) post-increment (a=1) / decrement; pushes old value
	opPreIncDec    // (→1; L-1) pre-increment (a=1) / decrement; pushes new value
	opAddrOf       // (→1; L-1) address of location
	opAddrIndexTry // (2→0|1) &arr[i] fast path: on success push pointer and jump a

	opReceiver // (1→1) convert receiver value (a=1: arrow) to object pointer

	opNeg     // (1→1) arithmetic negation
	opNot     // (1→1) logical not
	opTilde   // (1→1) bitwise complement
	opTruthy  // (1→1) condition value as bool
	opBinary  // (2→1) binary operator b via the shared ApplyBinary
	opConvert // (1→1) convert to type typ

	opJump   // (→) pc = a
	opJF     // (1→) pop; jump to a when falsy
	opJT     // (1→) pop; jump to a when truthy
	opCaseEq // (1→) pop case value; if it equals the kept scrutinee, pop it too and jump to a

	opStep      // (→) account one executed statement at pos
	opScopePush // (→) open a destructor scope
	opScopePop  // (→) close the innermost scope, destroying its locals
	opScopePopN // (→) close the innermost a scopes (break/continue unwinding)

	opReturnValue // (1→) return popped value (converted/cloned per tree rules)
	opReturnVoid  // (→) return void
	opFail        // (→) raise the preformatted runtime error str at pos

	opPendFunc     // (→) stage a call to free function fn
	opPendImplicit // (→) stage implicit this->m(...) with dispatch on f.This
	opPendMethod   // (1→) pop receiver; stage method call with dynamic dispatch
	opCall         // (a→1) pop a args, invoke the staged call, push result

	opPrint    // (1→) print popped value with static type typ
	opPrintNL  // (→) newline of println
	opMalloc   // (1→1)
	opFree     // (1→1)
	opRandSeed // (1→1)
	opRandNext // (1→1)
	opClock    // (→1)

	opNewObj    // (→1) allocate class cls (ledger record precedes ctor args)
	opFinishNew // (a+1→1) pop a args + staged object; construct, push pointer
	opNewArr    // (1→1) pop length; new typ[n]
	opNewScalar // (a→1) scalar new typ, a=1 pops the initializer
	opDelete    // (1→1) delete (a=1: delete[]); pushes void

	opDeclCell      // (→) slot a = fresh empty cell (registered before init runs)
	opDeclZero      // (→) slot a = fresh cell holding zero value of typ
	opDeclStore     // (1→) store popped init into slot a with conversion to typ
	opDeclConstruct // (b+1→) pop b ctor args + staged object; construct into slot a
	opDeclCopyInit  // (1→) pop init value; copy-construct a cls local into slot a
	opDeclArray     // (→) slot a = fresh local array of typ

	// Specialized forms. Each is emitted only when the compiler proves
	// (from sema's static types) that it reproduces the general form's
	// observable behaviour, and each re-checks the runtime value kinds,
	// deferring to the shared runtime helpers on anything unexpected.
	opIntBin      // (2→1) binary operator b on two statically-integral operands, in place
	opAssignPop   // (1→; L-1) statement-position plain assignment; nothing pushed back
	opAssignOpPop // (1→; L-1) statement-position compound assignment
	opIncDecPop   // (→; L-1) statement-position ++/-- (a=1: increment); old value discarded
	opCheckSlot   // (→) fail if slot a has no storage (preserves lvalue-first failure order)
	opStoreSlotI  // (1→) pop, convert to int, store into checked slot a
	opIncSlotI    // (→) slot a (static int) += b, fused i = i ± c / i++ statement

	// Superinstructions fused by the peephole pass (see peephole.go).
	// Operator lives in c because a and b are both operand designators.
	// A trailing 2 marks a two-stage form: the inner result combines
	// with the value below it on the stack via operator e, preserving
	// the unfused push/pop evaluation order exactly.
	opIntBinSS  // (→1) push slots[a] (op c) slots[b]
	opIntBinSC  // (→1) push slots[a] (op c) consts[b]
	opIntBinCS  // (→1) push consts[b] (op c) slots[a]
	opIntBinXS  // (1→1) top (op c) slots[a]
	opIntBinXC  // (1→1) top (op c) consts[b]
	opIntBin2SS // (1→1) top (op e) (slots[a] (op c) slots[b])
	opIntBin2SC // (1→1) top (op e) (slots[a] (op c) consts[b])
	opIntBin2CS // (1→1) top (op e) (consts[b] (op c) slots[a])
)

// instr is one decoded instruction. The operand fields are a union:
// which ones are meaningful depends on op (see the opcode comments).
// The cache* fields are the instruction's monomorphic inline cache,
// mutated during execution; an Executor is per-run, so the mutation is
// single-goroutine.
type instr struct {
	op      opcode
	mode    uint8 // result mode of the opIntBin family (see peephole.go)
	stepped bool  // perform a statement step (at pos2) before executing
	a, b, c int
	d       int        // fused store slot / branch target (mode != modePush)
	e       int        // outer operator of a two-stage fused binop
	pos     source.Pos // primary position (the expression/statement)
	pos2    source.Pos // receiver position or fused step position
	str     string
	fld     *types.Field
	cls     *types.Class
	fn      *types.Func
	typ     types.Type
	vr      *types.Var
	vr2     *types.Var // second variable of a fused superinstruction

	cacheClass *types.Class // receiver class the cache was filled for
	cacheIdx   int          // field slot within the cached class's plan
	cacheFn    *types.Func  // dispatch target for the cached class
	cacheCell  *interp.Cell // resolved global cell
}

// chunk is one compiled function body.
type chunk struct {
	fn       *types.Func
	code     []instr
	consts   []interp.Value
	numSlots int
}

// pending is a staged call: target and receiver are resolved before the
// arguments are evaluated, exactly like the tree-walker (a dispatch
// failure must precede argument side effects).
type pending struct {
	fn  *types.Func
	obj *interp.Object
}
