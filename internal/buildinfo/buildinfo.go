// Package buildinfo derives a version string for the repository's
// binaries from the build metadata the Go toolchain embeds, so every CLI
// and the server answer -version without a hand-maintained constant.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Version returns the module version of the running binary: the module's
// release version when built from a tagged checkout, otherwise "devel",
// suffixed with the VCS revision (and a +dirty marker) when the build
// recorded one.
func Version() string {
	v := "devel"
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return v
	}
	if mv := bi.Main.Version; mv != "" && mv != "(devel)" {
		v = mv
	}
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		v += " (" + rev + dirty + ")"
	}
	return v
}

// Line returns the one-line -version output for the named tool, e.g.
// "deadmem devel (go1.22.0)".
func Line(tool string) string {
	return fmt.Sprintf("%s %s (%s)", tool, Version(), runtime.Version())
}
