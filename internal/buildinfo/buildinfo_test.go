package buildinfo

import (
	"strings"
	"testing"
)

// TestVersionLinePerTool covers the -version output of every binary in
// the repository: one line, prefixed with the tool's own name, carrying a
// non-empty version and the Go toolchain version.
func TestVersionLinePerTool(t *testing.T) {
	tools := []string{
		"deadmem",
		"deadlint",
		"deadstrip",
		"mccrun",
		"paperbench",
		"deadmemd",
	}
	for _, tool := range tools {
		t.Run(tool, func(t *testing.T) {
			line := Line(tool)
			if !strings.HasPrefix(line, tool+" ") {
				t.Errorf("Line(%q) = %q, want prefix %q", tool, line, tool+" ")
			}
			if strings.ContainsRune(line, '\n') {
				t.Errorf("Line(%q) = %q, want a single line", tool, line)
			}
			if !strings.Contains(line, "(go") {
				t.Errorf("Line(%q) = %q, want embedded Go toolchain version", tool, line)
			}
			rest := strings.TrimPrefix(line, tool+" ")
			if ver, _, ok := strings.Cut(rest, " ("); !ok || ver == "" {
				t.Errorf("Line(%q) = %q, want a non-empty version field", tool, line)
			}
		})
	}
}
