package ast_test

import (
	"testing"

	"deadmembers/internal/ast"
	"deadmembers/internal/parser"
	"deadmembers/internal/source"
)

const walkProgram = `
class Base { public: int b; virtual int f() { return b; } };
class D : public Base {
public:
	int arr[4];
	double d;
	D(int v) : Base(), d(1.5) { arr[0] = v; }
	virtual int f() { return arr[0] + (int)d + Base::b; }
};
union U { int i; char c; };
int global = 3;
int helper(int* p) { return *p + sizeof(D); }
int main() {
	D x(2);
	D* px = &x;
	int D::* pm = &D::b;
	U u;
	u.i = 1;
	switch (x.f()) {
	case 0: return 0;
	default: break;
	}
	for (int i = 0; i < 3; i++) { continue; }
	while (false) {}
	do {} while (false);
	delete (D*)nullptr;
	return px->f() + x.*pm + helper(&global) + (true ? u.i : 0);
}
`

func parseWalk(t *testing.T) *ast.File {
	t.Helper()
	fset := source.NewFileSet()
	f := fset.AddFile("walk.mcc", walkProgram)
	diags := source.NewDiagnosticList(fset)
	file := parser.ParseFile(f, diags)
	if diags.HasErrors() {
		t.Fatalf("parse errors:\n%v", diags)
	}
	return file
}

// TestInspectReachesAllNodeKinds checks the walker visits every syntactic
// category produced by the test program.
func TestInspectReachesAllNodeKinds(t *testing.T) {
	file := parseWalk(t)
	seen := map[string]bool{}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.File:
			seen["File"] = true
		case *ast.ClassDecl:
			seen["ClassDecl"] = true
		case *ast.BaseSpec:
			seen["BaseSpec"] = true
		case *ast.FieldDecl:
			seen["FieldDecl"] = true
		case *ast.MethodDecl:
			seen["MethodDecl"] = true
		case *ast.FuncDecl:
			seen["FuncDecl"] = true
		case *ast.VarDecl:
			seen["VarDecl"] = true
		case *ast.Param:
			seen["Param"] = true
		case *ast.CtorInit:
			seen["CtorInit"] = true
		case *ast.NamedType:
			seen["NamedType"] = true
		case *ast.PointerType:
			seen["PointerType"] = true
		case *ast.ArrayType:
			seen["ArrayType"] = true
		case *ast.MemberPointerType:
			seen["MemberPointerType"] = true
		case *ast.BlockStmt:
			seen["BlockStmt"] = true
		case *ast.DeclStmt:
			seen["DeclStmt"] = true
		case *ast.ExprStmt:
			seen["ExprStmt"] = true
		case *ast.ForStmt:
			seen["ForStmt"] = true
		case *ast.WhileStmt:
			seen["WhileStmt"] = true
		case *ast.DoWhileStmt:
			seen["DoWhileStmt"] = true
		case *ast.SwitchStmt:
			seen["SwitchStmt"] = true
		case *ast.ReturnStmt:
			seen["ReturnStmt"] = true
		case *ast.BreakStmt:
			seen["BreakStmt"] = true
		case *ast.ContinueStmt:
			seen["ContinueStmt"] = true
		case *ast.IntLit:
			seen["IntLit"] = true
		case *ast.FloatLit:
			seen["FloatLit"] = true
		case *ast.BoolLit:
			seen["BoolLit"] = true
		case *ast.NullLit:
			seen["NullLit"] = true
		case *ast.Ident:
			seen["Ident"] = true
		case *ast.QualifiedIdent:
			seen["QualifiedIdent"] = true
		case *ast.Unary:
			seen["Unary"] = true
		case *ast.Binary:
			seen["Binary"] = true
		case *ast.Assign:
			seen["Assign"] = true
		case *ast.Cond:
			seen["Cond"] = true
		case *ast.Member:
			seen["Member"] = true
		case *ast.MemberPtrDeref:
			seen["MemberPtrDeref"] = true
		case *ast.Index:
			seen["Index"] = true
		case *ast.Call:
			seen["Call"] = true
		case *ast.Cast:
			seen["Cast"] = true
		case *ast.New:
			seen["New"] = false || true
		case *ast.Delete:
			seen["Delete"] = true
		case *ast.Sizeof:
			seen["Sizeof"] = true
		}
		return true
	})
	want := []string{
		"File", "ClassDecl", "BaseSpec", "FieldDecl", "MethodDecl", "FuncDecl",
		"VarDecl", "Param", "CtorInit", "NamedType", "PointerType", "ArrayType",
		"MemberPointerType", "BlockStmt", "DeclStmt", "ExprStmt", "ForStmt",
		"WhileStmt", "DoWhileStmt", "SwitchStmt", "ReturnStmt", "BreakStmt",
		"ContinueStmt", "IntLit", "FloatLit", "BoolLit", "NullLit", "Ident",
		"QualifiedIdent", "Unary", "Binary", "Assign", "Cond", "Member",
		"MemberPtrDeref", "Index", "Call", "Cast", "Delete", "Sizeof",
	}
	for _, kind := range want {
		if !seen[kind] {
			t.Errorf("Inspect never reached a %s node", kind)
		}
	}
}

// TestInspectPruning: returning false stops descent into a subtree.
func TestInspectPruning(t *testing.T) {
	file := parseWalk(t)
	full, pruned := 0, 0
	ast.Inspect(file, func(n ast.Node) bool { full++; return true })
	ast.Inspect(file, func(n ast.Node) bool {
		pruned++
		_, isClass := n.(*ast.ClassDecl)
		return !isClass // skip class bodies
	})
	if pruned >= full {
		t.Errorf("pruned walk visited %d >= full walk %d", pruned, full)
	}
}

func TestUnparen(t *testing.T) {
	inner := &ast.IntLit{Value: 1}
	wrapped := &ast.Paren{X: &ast.Paren{X: inner}}
	if ast.Unparen(wrapped) != inner {
		t.Error("Unparen should strip nested parens")
	}
	if ast.Unparen(inner) != inner {
		t.Error("Unparen of non-paren is identity")
	}
}

func TestInspectNilSafety(t *testing.T) {
	ast.Inspect(nil, func(ast.Node) bool { t.Fatal("callback on nil"); return true })
	var file *ast.File
	ast.Inspect(file, func(ast.Node) bool { t.Fatal("callback on typed nil"); return true })
}
