package ast

// Inspect traverses the subtree rooted at n in depth-first pre-order,
// calling f for every node. If f returns false for a node, its children
// are not visited. Nil children are skipped.
func Inspect(n Node, f func(Node) bool) {
	if n == nil || isNilNode(n) {
		return
	}
	if !f(n) {
		return
	}
	switch x := n.(type) {
	case *File:
		for _, d := range x.Decls {
			Inspect(d, f)
		}

	case *ClassDecl:
		for i := range x.Bases {
			Inspect(&x.Bases[i], f)
		}
		for _, fd := range x.Fields {
			Inspect(fd, f)
		}
		for _, m := range x.Methods {
			Inspect(m, f)
		}
	case *BaseSpec:
		// leaf
	case *FieldDecl:
		Inspect(x.Type, f)
	case *MethodDecl:
		for i := range x.Params {
			Inspect(&x.Params[i], f)
		}
		if x.Return != nil {
			Inspect(x.Return, f)
		}
		for i := range x.Inits {
			Inspect(&x.Inits[i], f)
		}
		if x.Body != nil {
			Inspect(x.Body, f)
		}
	case *FuncDecl:
		for i := range x.Params {
			Inspect(&x.Params[i], f)
		}
		if x.Return != nil {
			Inspect(x.Return, f)
		}
		if x.Body != nil {
			Inspect(x.Body, f)
		}
	case *VarDecl:
		Inspect(x.Type, f)
		if x.Init != nil {
			Inspect(x.Init, f)
		}
		for _, a := range x.CtorArgs {
			Inspect(a, f)
		}
	case *Param:
		Inspect(x.Type, f)
	case *CtorInit:
		for _, a := range x.Args {
			Inspect(a, f)
		}

	case *NamedType:
		// leaf
	case *PointerType:
		Inspect(x.Elem, f)
	case *ArrayType:
		Inspect(x.Elem, f)
		if x.Len != nil {
			Inspect(x.Len, f)
		}
	case *MemberPointerType:
		Inspect(x.Elem, f)
	case *QualType:
		Inspect(x.Base, f)

	case *BlockStmt:
		for _, s := range x.Stmts {
			Inspect(s, f)
		}
	case *DeclStmt:
		Inspect(x.Var, f)
	case *ExprStmt:
		Inspect(x.X, f)
	case *IfStmt:
		Inspect(x.Cond, f)
		Inspect(x.Then, f)
		if x.Else != nil {
			Inspect(x.Else, f)
		}
	case *WhileStmt:
		Inspect(x.Cond, f)
		Inspect(x.Body, f)
	case *DoWhileStmt:
		Inspect(x.Body, f)
		Inspect(x.Cond, f)
	case *ForStmt:
		if x.Init != nil {
			Inspect(x.Init, f)
		}
		if x.Cond != nil {
			Inspect(x.Cond, f)
		}
		if x.Post != nil {
			Inspect(x.Post, f)
		}
		Inspect(x.Body, f)
	case *SwitchStmt:
		Inspect(x.X, f)
		for i := range x.Cases {
			for _, v := range x.Cases[i].Values {
				Inspect(v, f)
			}
			for _, s := range x.Cases[i].Body {
				Inspect(s, f)
			}
		}
	case *ReturnStmt:
		if x.X != nil {
			Inspect(x.X, f)
		}
	case *BreakStmt, *ContinueStmt:
		// leaves

	case *IntLit, *FloatLit, *CharLit, *BoolLit, *StringLit, *NullLit,
		*Ident, *ThisExpr, *QualifiedIdent:
		// leaves
	case *Unary:
		Inspect(x.X, f)
	case *Postfix:
		Inspect(x.X, f)
	case *Binary:
		Inspect(x.X, f)
		Inspect(x.Y, f)
	case *Assign:
		Inspect(x.LHS, f)
		Inspect(x.RHS, f)
	case *Cond:
		Inspect(x.C, f)
		Inspect(x.Then, f)
		Inspect(x.Else, f)
	case *Member:
		Inspect(x.X, f)
	case *MemberPtrDeref:
		Inspect(x.X, f)
		Inspect(x.Ptr, f)
	case *Index:
		Inspect(x.X, f)
		Inspect(x.I, f)
	case *Call:
		Inspect(x.Fun, f)
		for _, a := range x.Args {
			Inspect(a, f)
		}
	case *Cast:
		Inspect(x.Type, f)
		Inspect(x.X, f)
	case *New:
		Inspect(x.Type, f)
		if x.Len != nil {
			Inspect(x.Len, f)
		}
		for _, a := range x.Args {
			Inspect(a, f)
		}
	case *Delete:
		Inspect(x.X, f)
	case *Sizeof:
		if x.Type != nil {
			Inspect(x.Type, f)
		}
		if x.X != nil {
			Inspect(x.X, f)
		}
	case *Paren:
		Inspect(x.X, f)
	}
}

// isNilNode guards against typed-nil interface values from optional fields.
func isNilNode(n Node) bool {
	switch x := n.(type) {
	case *File:
		return x == nil
	case *BlockStmt:
		return x == nil
	case *VarDecl:
		return x == nil
	}
	return false
}
