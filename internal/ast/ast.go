// Package ast defines the abstract syntax tree for MC++, the C++ subset
// analyzed by this repository.
//
// The tree is deliberately close to C++ surface syntax: member accesses
// retain their `.` vs `->` form and optional `B::` qualifiers, because the
// dead-data-member algorithm of Sweeney & Tip is specified directly over
// these syntactic categories (read access, qualified access,
// pointer-to-member formation, casts, and so on).
//
// Type information is NOT stored in the tree; the sema package attaches it
// via side tables, mirroring the go/ast + go/types split.
package ast

import (
	"deadmembers/internal/source"
	"deadmembers/internal/token"
)

// Node is implemented by all AST nodes.
type Node interface {
	Pos() source.Pos
}

// node provides the position implementation shared by all nodes.
type node struct {
	P source.Pos
}

func (n node) Pos() source.Pos { return n.P }

// SetPos stamps the node's source position; it is promoted to every node
// type so the parser can set positions from outside this package.
func (n *node) SetPos(p source.Pos) { n.P = p }

// ---------------------------------------------------------------------------
// Types (syntactic)

// TypeExpr is a syntactic type as written in source.
type TypeExpr interface {
	Node
	typeExpr()
}

// NamedType is a builtin type name (`int`, `char`, ...) or a class name.
type NamedType struct {
	node
	Name string
}

// PointerType is `Elem *`.
type PointerType struct {
	node
	Elem TypeExpr
}

// ArrayType is `Elem [Len]`. Len is a constant expression.
type ArrayType struct {
	node
	Elem TypeExpr
	Len  Expr
}

// MemberPointerType is `Elem Class::*`.
type MemberPointerType struct {
	node
	Class string
	Elem  TypeExpr
}

// QualType wraps a type with const/volatile qualifiers.
type QualType struct {
	node
	Const    bool
	Volatile bool
	Base     TypeExpr
}

func (*NamedType) typeExpr()         {}
func (*PointerType) typeExpr()       {}
func (*ArrayType) typeExpr()         {}
func (*MemberPointerType) typeExpr() {}
func (*QualType) typeExpr()          {}

// ---------------------------------------------------------------------------
// Declarations

// Decl is a top-level declaration.
type Decl interface {
	Node
	decl()
}

// File is a parsed source file.
type File struct {
	node
	Name  string
	Decls []Decl
}

// ClassKind distinguishes class/struct/union declarations.
type ClassKind int

// Class declaration kinds.
const (
	ClassClass ClassKind = iota
	ClassStruct
	ClassUnion
)

// String returns the keyword for the class kind.
func (k ClassKind) String() string {
	switch k {
	case ClassStruct:
		return "struct"
	case ClassUnion:
		return "union"
	default:
		return "class"
	}
}

// BaseSpec is one entry of a class's base list.
type BaseSpec struct {
	node
	Virtual bool
	Name    string
}

// ClassDecl declares a class, struct, or union. Defined is false for a
// forward declaration (`class C;`).
type ClassDecl struct {
	node
	Kind    ClassKind
	Name    string
	Defined bool
	Bases   []BaseSpec
	Fields  []*FieldDecl
	Methods []*MethodDecl
}

// FieldDecl is a non-static data member.
type FieldDecl struct {
	node
	Name     string
	Type     TypeExpr
	Volatile bool
}

// Param is one function parameter.
type Param struct {
	node
	Name string
	Type TypeExpr
}

// CtorInit is one entry of a constructor's member-initializer list; it
// names either a data member or a base class.
type CtorInit struct {
	node
	Name string
	Args []Expr
}

// MethodDecl is a member function, constructor (Name == class name,
// Return == nil, IsCtor), or destructor (IsDtor).
type MethodDecl struct {
	node
	Name    string
	Virtual bool
	Pure    bool
	IsCtor  bool
	IsDtor  bool
	Params  []Param
	Return  TypeExpr // nil for ctors/dtors
	Inits   []CtorInit
	Body    *BlockStmt // nil for pure-virtual or body-less declarations
}

// FuncDecl is a free (non-member) function.
type FuncDecl struct {
	node
	Name   string
	Params []Param
	Return TypeExpr
	Body   *BlockStmt
}

// VarDecl declares a global or local variable. Exactly one of Init
// (assignment form `T x = e;`) or CtorArgs (direct form `T x(a, b);`) may
// be set; both nil means default initialization.
type VarDecl struct {
	node
	Name     string
	Type     TypeExpr
	Init     Expr
	CtorArgs []Expr
	HasCtor  bool // distinguishes `T x();`-style from plain `T x;`
}

func (*ClassDecl) decl() {}
func (*FuncDecl) decl()  {}
func (*VarDecl) decl()   {}

// ---------------------------------------------------------------------------
// Statements

// Stmt is a statement.
type Stmt interface {
	Node
	stmt()
}

// BlockStmt is `{ ... }`.
type BlockStmt struct {
	node
	Stmts []Stmt
}

// DeclStmt wraps a local VarDecl.
type DeclStmt struct {
	node
	Var *VarDecl
}

// ExprStmt evaluates an expression for effect.
type ExprStmt struct {
	node
	X Expr
}

// IfStmt is `if (Cond) Then else Else`.
type IfStmt struct {
	node
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// WhileStmt is `while (Cond) Body`.
type WhileStmt struct {
	node
	Cond Expr
	Body Stmt
}

// DoWhileStmt is `do Body while (Cond);`.
type DoWhileStmt struct {
	node
	Body Stmt
	Cond Expr
}

// ForStmt is `for (Init; Cond; Post) Body`; any part may be nil.
type ForStmt struct {
	node
	Init Stmt
	Cond Expr
	Post Expr
	Body Stmt
}

// SwitchCase is one `case v1: case v2: stmts` group; Values nil = default.
type SwitchCase struct {
	node
	Values []Expr
	Body   []Stmt
}

// SwitchStmt is a C-style switch. Cases do not fall through in MC++; each
// case group executes and exits the switch unless it ends in break (break
// is accepted and is a no-op at case end, for C++ compatibility).
type SwitchStmt struct {
	node
	X     Expr
	Cases []SwitchCase
}

// ReturnStmt is `return X;` (X may be nil).
type ReturnStmt struct {
	node
	X Expr
}

// BreakStmt is `break;`.
type BreakStmt struct{ node }

// ContinueStmt is `continue;`.
type ContinueStmt struct{ node }

func (*BlockStmt) stmt()    {}
func (*DeclStmt) stmt()     {}
func (*ExprStmt) stmt()     {}
func (*IfStmt) stmt()       {}
func (*WhileStmt) stmt()    {}
func (*DoWhileStmt) stmt()  {}
func (*ForStmt) stmt()      {}
func (*SwitchStmt) stmt()   {}
func (*ReturnStmt) stmt()   {}
func (*BreakStmt) stmt()    {}
func (*ContinueStmt) stmt() {}

// ---------------------------------------------------------------------------
// Expressions

// Expr is an expression.
type Expr interface {
	Node
	expr()
}

// IntLit is an integer literal.
type IntLit struct {
	node
	Value int64
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	node
	Value float64
}

// CharLit is a character literal (value is the byte).
type CharLit struct {
	node
	Value byte
}

// BoolLit is `true` or `false`.
type BoolLit struct {
	node
	Value bool
}

// StringLit is a string literal (decoded value).
type StringLit struct {
	node
	Value string
}

// NullLit is `nullptr` (or literal 0 in pointer context, normalized by sema).
type NullLit struct{ node }

// Ident is an unqualified name use.
type Ident struct {
	node
	Name string
}

// ThisExpr is `this`.
type ThisExpr struct{ node }

// QualifiedIdent is `Class::Name` used as an expression; with a leading
// `&` it forms a pointer-to-member constant.
type QualifiedIdent struct {
	node
	Class string
	Name  string
}

// Unary is a prefix operator application: - ! ~ & * ++ --.
type Unary struct {
	node
	Op token.Kind
	X  Expr
}

// Postfix is `X++` or `X--`.
type Postfix struct {
	node
	Op token.Kind
	X  Expr
}

// Binary is a binary operator application.
type Binary struct {
	node
	Op   token.Kind
	X, Y Expr
}

// Assign is `LHS op RHS` where op is `=` or a compound assignment.
type Assign struct {
	node
	Op       token.Kind
	LHS, RHS Expr
}

// Cond is the ternary `Cond ? Then : Else`.
type Cond struct {
	node
	C, Then, Else Expr
}

// Member is `X.Name`, `X->Name`, `X.Qual::Name`, or `X->Qual::Name`.
// It covers both data-member accesses and method-call callees.
type Member struct {
	node
	X     Expr
	Arrow bool
	Qual  string // optional explicit class qualifier ("" if absent)
	Name  string
}

// MemberPtrDeref is `X.*Ptr` or `X->*Ptr`.
type MemberPtrDeref struct {
	node
	X     Expr
	Arrow bool
	Ptr   Expr
}

// Index is `X[I]`.
type Index struct {
	node
	X, I Expr
}

// Call is a function or method invocation. Fun is an Ident for free
// functions and builtins, a Member for method calls, or an arbitrary
// expression of pointer-to-function type (not supported in MC++; rejected
// by sema).
type Call struct {
	node
	Fun  Expr
	Args []Expr
}

// Cast is a C-style cast `(Type)X`.
type Cast struct {
	node
	Type TypeExpr
	X    Expr
}

// New is `new Type(Args)` or `new Type[Len]`.
type New struct {
	node
	Type TypeExpr
	Len  Expr // non-nil for array form
	Args []Expr
}

// Delete is `delete X` or `delete[] X`.
type Delete struct {
	node
	Array bool
	X     Expr
}

// Sizeof is `sizeof(Type)` or `sizeof expr`; exactly one of Type/X is set.
type Sizeof struct {
	node
	Type TypeExpr
	X    Expr
}

// Paren is a parenthesized expression, retained so that positions and
// pretty-printing are faithful.
type Paren struct {
	node
	X Expr
}

func (*IntLit) expr()         {}
func (*FloatLit) expr()       {}
func (*CharLit) expr()        {}
func (*BoolLit) expr()        {}
func (*StringLit) expr()      {}
func (*NullLit) expr()        {}
func (*Ident) expr()          {}
func (*ThisExpr) expr()       {}
func (*QualifiedIdent) expr() {}
func (*Unary) expr()          {}
func (*Postfix) expr()        {}
func (*Binary) expr()         {}
func (*Assign) expr()         {}
func (*Cond) expr()           {}
func (*Member) expr()         {}
func (*MemberPtrDeref) expr() {}
func (*Index) expr()          {}
func (*Call) expr()           {}
func (*Cast) expr()           {}
func (*New) expr()            {}
func (*Delete) expr()         {}
func (*Sizeof) expr()         {}
func (*Paren) expr()          {}

// Unparen strips any Paren wrappers from e.
func Unparen(e Expr) Expr {
	for {
		p, ok := e.(*Paren)
		if !ok {
			return e
		}
		e = p.X
	}
}
