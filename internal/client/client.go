// Package client is the Go client for deadmemd's /v1 API, built for
// flaky networks and restarting servers: every call retries transient
// failures (connection errors, 5xx, 429) with exponential backoff and
// full jitter, honors the server's Retry-After hint, never sleeps past
// the caller's context deadline, and trips a half-open circuit breaker
// under sustained failure so a dead server costs microseconds, not
// timeouts.
//
// The response body of a successful call is byte-identical to the
// corresponding CLI's stdout for the same sources and options — the
// CLIs' -server mode is implemented on top of this package.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"deadmembers/internal/api"
)

// Config configures a Client. Zero fields take the documented defaults.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8100".
	BaseURL string
	// HTTPClient overrides the transport (default http.DefaultClient).
	HTTPClient *http.Client

	// MaxAttempts bounds tries per call, first attempt included
	// (default 6; 1 disables retries).
	MaxAttempts int
	// BaseBackoff is the first retry's backoff ceiling; it doubles per
	// attempt up to MaxBackoff, and the actual sleep is uniformly
	// random in [0, ceiling] — "full jitter" (default 100ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the backoff ceiling (default 5s).
	MaxBackoff time.Duration

	// BreakerThreshold is the consecutive transport-failure count that
	// opens the circuit (default 5; negative disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is how long the circuit stays open before a
	// half-open probe is allowed through (default 10s).
	BreakerCooldown time.Duration

	// Rand is the jitter source (default math/rand; tests pin it).
	Rand func() float64
}

func (c Config) withDefaults() Config {
	if c.HTTPClient == nil {
		c.HTTPClient = http.DefaultClient
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 6
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 100 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 5 * time.Second
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 10 * time.Second
	}
	if c.Rand == nil {
		var mu sync.Mutex
		c.Rand = func() float64 {
			mu.Lock()
			defer mu.Unlock()
			return rand.Float64()
		}
	}
	return c
}

// Client calls deadmemd. Safe for concurrent use; all calls share one
// circuit breaker (they share one server).
type Client struct {
	cfg Config
	br  *breaker
	clk clock
}

// New returns a Client for the server at cfg.BaseURL.
func New(cfg Config) *Client {
	cfg = cfg.withDefaults()
	clk := realClock{}
	return &Client{
		cfg: cfg,
		br:  newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, clk.Now),
		clk: clk,
	}
}

// Result is a successful response.
type Result struct {
	// Body is byte-identical to the corresponding CLI's stdout.
	Body []byte
	// Degraded reports the server's degraded marker: a pipeline stage
	// panicked and was contained, so the result may be incomplete.
	Degraded bool
}

// APIError is a non-retryable server rejection (4xx): the request
// itself is wrong, and retrying it cannot help.
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server rejected request (%d): %s", e.Status, strings.TrimSpace(e.Message))
}

// ErrCircuitOpen is returned without touching the network while the
// circuit breaker is open.
var ErrCircuitOpen = errors.New("circuit breaker open: server failing, not attempting request")

// Analyze calls POST /v1/analyze (deadmem's report).
func (c *Client) Analyze(ctx context.Context, req *api.Request) (*Result, error) {
	return c.do(ctx, "/v1/analyze", req)
}

// Lint calls POST /v1/lint (deadlint's findings).
func (c *Client) Lint(ctx context.Context, req *api.Request) (*Result, error) {
	return c.do(ctx, "/v1/lint", req)
}

// Strip calls POST /v1/strip (deadstrip's transformed sources).
func (c *Client) Strip(ctx context.Context, req *api.Request) (*Result, error) {
	return c.do(ctx, "/v1/strip", req)
}

// do runs the retry loop for one logical call.
func (c *Client) do(ctx context.Context, path string, req *api.Request) (*Result, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("client: encode request: %w", err)
	}
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := c.br.allow(); err != nil {
			if lastErr != nil {
				return nil, fmt.Errorf("%w (last failure: %v)", err, lastErr)
			}
			return nil, err
		}
		out := c.attempt(ctx, path, payload)
		switch {
		case out.err == nil:
			c.br.success()
			return out.res, nil
		case !out.retryable:
			// The server answered deliberately: it is healthy even
			// though this request is not.
			c.br.success()
			return nil, out.err
		default:
			if out.breakerFail {
				c.br.failure()
			} else {
				c.br.success() // 429: alive, just shedding load
			}
			lastErr = out.err
		}
		if attempt == c.cfg.MaxAttempts-1 {
			break
		}
		delay := c.backoff(attempt)
		if out.retryAfter > delay {
			delay = out.retryAfter
		}
		// Deadline propagation: if the caller's budget cannot cover the
		// sleep, fail now with the real cause instead of oversleeping.
		if dl, ok := ctx.Deadline(); ok && c.clk.Now().Add(delay).After(dl) {
			return nil, fmt.Errorf("deadline would expire before next retry: %w", lastErr)
		}
		if err := c.clk.Sleep(ctx, delay); err != nil {
			return nil, err
		}
	}
	return nil, fmt.Errorf("giving up after %d attempts: %w", c.cfg.MaxAttempts, lastErr)
}

// backoff returns the full-jitter backoff for a retry following attempt
// (0-based): uniform in [0, min(MaxBackoff, BaseBackoff·2^attempt)].
func (c *Client) backoff(attempt int) time.Duration {
	ceiling := float64(c.cfg.BaseBackoff) * math.Pow(2, float64(attempt))
	if m := float64(c.cfg.MaxBackoff); ceiling > m {
		ceiling = m
	}
	return time.Duration(c.cfg.Rand() * ceiling)
}

// attemptOutcome classifies one wire attempt for the retry loop and the
// circuit breaker.
type attemptOutcome struct {
	res         *Result
	err         error
	retryable   bool          // worth trying again
	breakerFail bool          // counts toward opening the circuit
	retryAfter  time.Duration // server-requested minimum delay (429/503)
}

func (c *Client) attempt(ctx context.Context, path string, payload []byte) attemptOutcome {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(c.cfg.BaseURL, "/")+path, bytes.NewReader(payload))
	if err != nil {
		return attemptOutcome{err: fmt.Errorf("client: build request: %w", err)}
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.cfg.HTTPClient.Do(hreq)
	if err != nil {
		if ctx.Err() != nil {
			return attemptOutcome{err: ctx.Err()}
		}
		// Connection refused, reset, EOF: the restarting-server case.
		return attemptOutcome{err: err, retryable: true, breakerFail: true}
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		if ctx.Err() != nil {
			return attemptOutcome{err: ctx.Err()}
		}
		return attemptOutcome{err: fmt.Errorf("reading response: %w", err), retryable: true, breakerFail: true}
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		return attemptOutcome{res: &Result{
			Body:     body,
			Degraded: resp.Header.Get(api.DegradedHeader) == "true",
		}}
	case resp.StatusCode == http.StatusTooManyRequests:
		return attemptOutcome{
			err:        fmt.Errorf("server busy (429): %s", strings.TrimSpace(string(body))),
			retryable:  true,
			retryAfter: parseRetryAfter(resp.Header.Get("Retry-After"), c.clk.Now()),
		}
	case resp.StatusCode >= 500:
		return attemptOutcome{
			err:         fmt.Errorf("server error (%d): %s", resp.StatusCode, strings.TrimSpace(string(body))),
			retryable:   true,
			breakerFail: true,
			retryAfter:  parseRetryAfter(resp.Header.Get("Retry-After"), c.clk.Now()),
		}
	default:
		return attemptOutcome{err: &APIError{Status: resp.StatusCode, Message: string(body)}}
	}
}

// parseRetryAfter decodes a Retry-After header: delta-seconds or an
// HTTP date. Unparseable or absent values mean no server-imposed delay.
func parseRetryAfter(v string, now time.Time) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := t.Sub(now); d > 0 {
			return d
		}
	}
	return 0
}
