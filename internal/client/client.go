// Package client is the Go client for deadmemd's /v1 API, built for
// flaky networks and restarting servers: every call retries transient
// failures (connection errors, 5xx, 429) with exponential backoff and
// full jitter, honors the server's Retry-After hint, never sleeps past
// the caller's context deadline, and trips a half-open circuit breaker
// under sustained failure so a dead server costs microseconds, not
// timeouts.
//
// The response body of a successful call is byte-identical to the
// corresponding CLI's stdout for the same sources and options — the
// CLIs' -server mode is implemented on top of this package.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"deadmembers/internal/api"
)

// Config configures a Client. Zero fields take the documented defaults.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8100".
	BaseURL string
	// HTTPClient overrides the transport (default http.DefaultClient).
	HTTPClient *http.Client

	// MaxAttempts bounds tries per call, first attempt included
	// (default 6; 1 disables retries).
	MaxAttempts int
	// BaseBackoff is the first retry's backoff ceiling; it doubles per
	// attempt up to MaxBackoff, and the actual sleep is uniformly
	// random in [0, ceiling] — "full jitter" (default 100ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the backoff ceiling (default 5s).
	MaxBackoff time.Duration

	// BreakerThreshold is the consecutive transport-failure count that
	// opens the circuit (default 5; negative disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is how long the circuit stays open before a
	// half-open probe is allowed through (default 10s).
	BreakerCooldown time.Duration

	// Rand is the jitter source (default math/rand; tests pin it).
	Rand func() float64
}

func (c Config) withDefaults() Config {
	if c.HTTPClient == nil {
		c.HTTPClient = http.DefaultClient
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 6
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 100 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 5 * time.Second
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 10 * time.Second
	}
	if c.Rand == nil {
		var mu sync.Mutex
		c.Rand = func() float64 {
			mu.Lock()
			defer mu.Unlock()
			return rand.Float64()
		}
	}
	return c
}

// Client calls deadmemd. Safe for concurrent use. Circuit breakers are
// per host, not per client: one Client can fan out across a fleet of
// servers (see Do), and a dead worker must not open the breaker for its
// healthy peers.
type Client struct {
	cfg Config
	clk clock

	mu  sync.Mutex
	brs map[string]*breaker // host → breaker
}

// New returns a Client for the server at cfg.BaseURL.
func New(cfg Config) *Client {
	cfg = cfg.withDefaults()
	return &Client{
		cfg: cfg,
		clk: realClock{},
		brs: map[string]*breaker{},
	}
}

// breakerFor returns the circuit breaker guarding baseURL's host,
// creating it on first use.
func (c *Client) breakerFor(baseURL string) *breaker {
	key := baseURL
	if u, err := url.Parse(baseURL); err == nil && u.Host != "" {
		key = u.Host
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	br := c.brs[key]
	if br == nil {
		br = newBreaker(c.cfg.BreakerThreshold, c.cfg.BreakerCooldown, c.clk.Now)
		c.brs[key] = br
	}
	return br
}

// Result is a successful response.
type Result struct {
	// Body is byte-identical to the corresponding CLI's stdout.
	Body []byte
	// ContentType is the response Content-Type (forwarded verbatim by
	// proxies such as the fleet coordinator).
	ContentType string
	// Degraded reports the server's degraded marker: a pipeline stage
	// panicked and was contained, so the result may be incomplete.
	Degraded bool
}

// APIError is a non-retryable server rejection (4xx): the request
// itself is wrong, and retrying it cannot help.
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server rejected request (%d): %s", e.Status, strings.TrimSpace(e.Message))
}

// TransientError is a retryable server-side rejection — 429 load
// shedding or a 5xx — carrying the server's Retry-After hint. When the
// retry loop gives up, the final error wraps the last TransientError so
// proxies (the fleet coordinator) can propagate the origin's status and
// Retry-After instead of recomputing their own.
type TransientError struct {
	Status     int
	RetryAfter time.Duration
	Message    string
}

func (e *TransientError) Error() string {
	if e.Status == http.StatusTooManyRequests {
		return fmt.Sprintf("server busy (429): %s", e.Message)
	}
	return fmt.Sprintf("server error (%d): %s", e.Status, e.Message)
}

// ErrCircuitOpen is returned without touching the network while the
// circuit breaker is open.
var ErrCircuitOpen = errors.New("circuit breaker open: server failing, not attempting request")

// Analyze calls POST /v1/analyze (deadmem's report).
func (c *Client) Analyze(ctx context.Context, req *api.Request) (*Result, error) {
	return c.do(ctx, c.cfg.BaseURL, "/v1/analyze", req)
}

// Lint calls POST /v1/lint (deadlint's findings).
func (c *Client) Lint(ctx context.Context, req *api.Request) (*Result, error) {
	return c.do(ctx, c.cfg.BaseURL, "/v1/lint", req)
}

// Strip calls POST /v1/strip (deadstrip's transformed sources).
func (c *Client) Strip(ctx context.Context, req *api.Request) (*Result, error) {
	return c.do(ctx, c.cfg.BaseURL, "/v1/strip", req)
}

// Do issues one logical call against an explicit base URL instead of
// the configured one, still with retries, backoff, and that host's own
// circuit breaker. The fleet coordinator uses this for the
// coordinator→worker leg: one Client, one breaker per worker.
func (c *Client) Do(ctx context.Context, baseURL, path string, req *api.Request) (*Result, error) {
	return c.do(ctx, baseURL, path, req)
}

// do runs the retry loop for one logical call.
func (c *Client) do(ctx context.Context, baseURL, path string, req *api.Request) (*Result, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("client: encode request: %w", err)
	}
	br := c.breakerFor(baseURL)
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := br.allow(); err != nil {
			if lastErr != nil {
				return nil, fmt.Errorf("%w (last failure: %v)", err, lastErr)
			}
			return nil, err
		}
		out := c.attempt(ctx, baseURL, path, payload)
		switch {
		case out.err == nil:
			br.success()
			return out.res, nil
		case !out.retryable:
			// The server answered deliberately: it is healthy even
			// though this request is not.
			br.success()
			return nil, out.err
		default:
			if out.breakerFail {
				br.failure()
			} else {
				br.success() // 429: alive, just shedding load
			}
			lastErr = out.err
		}
		if attempt == c.cfg.MaxAttempts-1 {
			break
		}
		delay := c.backoff(attempt)
		if out.retryAfter > delay {
			delay = out.retryAfter
		}
		// Deadline propagation: if the caller's budget cannot cover the
		// sleep, fail now with the real cause instead of oversleeping.
		if dl, ok := ctx.Deadline(); ok && c.clk.Now().Add(delay).After(dl) {
			return nil, fmt.Errorf("deadline would expire before next retry: %w", lastErr)
		}
		if err := c.clk.Sleep(ctx, delay); err != nil {
			return nil, err
		}
	}
	return nil, fmt.Errorf("giving up after %d attempts: %w", c.cfg.MaxAttempts, lastErr)
}

// backoff returns the full-jitter backoff for a retry following attempt
// (0-based): uniform in [0, min(MaxBackoff, BaseBackoff·2^attempt)].
func (c *Client) backoff(attempt int) time.Duration {
	ceiling := float64(c.cfg.BaseBackoff) * math.Pow(2, float64(attempt))
	if m := float64(c.cfg.MaxBackoff); ceiling > m {
		ceiling = m
	}
	return time.Duration(c.cfg.Rand() * ceiling)
}

// attemptOutcome classifies one wire attempt for the retry loop and the
// circuit breaker.
type attemptOutcome struct {
	res         *Result
	err         error
	retryable   bool          // worth trying again
	breakerFail bool          // counts toward opening the circuit
	retryAfter  time.Duration // server-requested minimum delay (429/503)
}

func (c *Client) attempt(ctx context.Context, baseURL, path string, payload []byte) attemptOutcome {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(baseURL, "/")+path, bytes.NewReader(payload))
	if err != nil {
		return attemptOutcome{err: fmt.Errorf("client: build request: %w", err)}
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.cfg.HTTPClient.Do(hreq)
	if err != nil {
		if ctx.Err() != nil {
			return attemptOutcome{err: ctx.Err()}
		}
		// Connection refused, reset, EOF: the restarting-server case.
		return attemptOutcome{err: err, retryable: true, breakerFail: true}
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		if ctx.Err() != nil {
			return attemptOutcome{err: ctx.Err()}
		}
		return attemptOutcome{err: fmt.Errorf("reading response: %w", err), retryable: true, breakerFail: true}
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		return attemptOutcome{res: &Result{
			Body:        body,
			ContentType: resp.Header.Get("Content-Type"),
			Degraded:    resp.Header.Get(api.DegradedHeader) == "true",
		}}
	case resp.StatusCode == http.StatusTooManyRequests:
		ra := parseRetryAfter(resp.Header.Get("Retry-After"), c.clk.Now())
		return attemptOutcome{
			err: &TransientError{Status: resp.StatusCode, RetryAfter: ra,
				Message: strings.TrimSpace(string(body))},
			retryable:  true,
			retryAfter: ra,
		}
	case resp.StatusCode >= 500:
		ra := parseRetryAfter(resp.Header.Get("Retry-After"), c.clk.Now())
		return attemptOutcome{
			err: &TransientError{Status: resp.StatusCode, RetryAfter: ra,
				Message: strings.TrimSpace(string(body))},
			retryable:   true,
			breakerFail: true,
			retryAfter:  ra,
		}
	default:
		return attemptOutcome{err: &APIError{Status: resp.StatusCode, Message: string(body)}}
	}
}

// parseRetryAfter decodes a Retry-After header: delta-seconds or an
// HTTP date. Unparseable or absent values mean no server-imposed delay.
func parseRetryAfter(v string, now time.Time) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := t.Sub(now); d > 0 {
			return d
		}
	}
	return 0
}
