package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"deadmembers/internal/api"
)

// fakeClock makes the retry loop and breaker fully deterministic: Sleep
// records the requested delay and advances virtual time instantly.
type fakeClock struct {
	mu    sync.Mutex
	t     time.Time
	slept []time.Duration
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Now()} }

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	f.mu.Lock()
	f.slept = append(f.slept, d)
	f.t = f.t.Add(d)
	f.mu.Unlock()
	return nil
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

func (f *fakeClock) Slept() []time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]time.Duration(nil), f.slept...)
}

// newTestClient pins the jitter to its ceiling (rand = 1) and installs a
// fake clock into the retry loop; per-host breakers are created lazily,
// so they pick the fake clock up from the client.
func newTestClient(t *testing.T, cfg Config) (*Client, *fakeClock) {
	t.Helper()
	if cfg.Rand == nil {
		cfg.Rand = func() float64 { return 1 }
	}
	c := New(cfg)
	clk := newFakeClock()
	c.clk = clk
	return c, clk
}

func req() *api.Request {
	return &api.Request{Sources: []api.Source{{Name: "a.mcc", Text: "int main() { return 0; }\n"}}}
}

func TestRetriesTransientFailuresThenSucceeds(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		w.Write([]byte("report"))
	}))
	defer ts.Close()

	c, clk := newTestClient(t, Config{BaseURL: ts.URL, BaseBackoff: 100 * time.Millisecond})
	res, err := c.Analyze(context.Background(), req())
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Body) != "report" || res.Degraded {
		t.Fatalf("res = %q degraded=%v", res.Body, res.Degraded)
	}
	if calls.Load() != 3 {
		t.Errorf("calls = %d, want 3", calls.Load())
	}
	// Exponential ceilings with rand pinned to 1: 100ms then 200ms.
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond}
	got := clk.Slept()
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("slept %v, want %v", got, want)
	}
}

func TestHonorsRetryAfterSeconds(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "3")
			http.Error(w, "busy", http.StatusTooManyRequests)
			return
		}
		w.Write([]byte("ok"))
	}))
	defer ts.Close()

	c, clk := newTestClient(t, Config{BaseURL: ts.URL, BaseBackoff: time.Millisecond})
	if _, err := c.Lint(context.Background(), req()); err != nil {
		t.Fatal(err)
	}
	got := clk.Slept()
	if len(got) != 1 || got[0] != 3*time.Second {
		t.Errorf("slept %v, want exactly the Retry-After hint [3s]", got)
	}
}

func TestHonorsRetryAfterHTTPDate(t *testing.T) {
	clkProbe := newFakeClock()
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", clkProbe.Now().Add(2*time.Second).UTC().Format(http.TimeFormat))
			http.Error(w, "busy", http.StatusTooManyRequests)
			return
		}
		w.Write([]byte("ok"))
	}))
	defer ts.Close()

	c, clk := newTestClient(t, Config{BaseURL: ts.URL, BaseBackoff: time.Millisecond})
	clk.mu.Lock()
	clk.t = clkProbe.Now()
	clk.mu.Unlock()
	if _, err := c.Analyze(context.Background(), req()); err != nil {
		t.Fatal(err)
	}
	got := clk.Slept()
	// HTTP dates have second granularity; accept 1–2s.
	if len(got) != 1 || got[0] < time.Second || got[0] > 2*time.Second {
		t.Errorf("slept %v, want ~2s from the HTTP-date hint", got)
	}
}

func TestPermanentErrorsDoNotRetry(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "compile: a.mcc:1: syntax error", http.StatusUnprocessableEntity)
	}))
	defer ts.Close()

	c, _ := newTestClient(t, Config{BaseURL: ts.URL})
	_, err := c.Analyze(context.Background(), req())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusUnprocessableEntity {
		t.Fatalf("err = %v, want 422 APIError", err)
	}
	if calls.Load() != 1 {
		t.Errorf("calls = %d, want 1 (no retries on 4xx)", calls.Load())
	}
}

func TestDeadlineStopsRetriesBeforeOversleeping(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()

	c, clk := newTestClient(t, Config{BaseURL: ts.URL, BaseBackoff: time.Second})
	ctx, cancel := context.WithDeadline(context.Background(), clk.Now().Add(500*time.Millisecond))
	defer cancel()
	_, err := c.Analyze(ctx, req())
	if err == nil || !strings.Contains(err.Error(), "deadline would expire") {
		t.Fatalf("err = %v, want deadline-would-expire", err)
	}
	if len(clk.Slept()) != 0 {
		t.Errorf("slept %v past the deadline", clk.Slept())
	}
}

func TestRetriesDroppedConnections(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			hj, _ := w.(http.Hijacker)
			conn, _, err := hj.Hijack()
			if err == nil {
				conn.Close()
			}
			return
		}
		w.Write([]byte("ok"))
	}))
	defer ts.Close()

	c, _ := newTestClient(t, Config{BaseURL: ts.URL, BaseBackoff: time.Millisecond})
	res, err := c.Strip(context.Background(), req())
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Body) != "ok" {
		t.Errorf("body = %q", res.Body)
	}
}

func TestDegradedHeaderSurfaced(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(api.DegradedHeader, "true")
		w.Write([]byte("partial"))
	}))
	defer ts.Close()
	c, _ := newTestClient(t, Config{BaseURL: ts.URL})
	res, err := c.Analyze(context.Background(), req())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Error("degraded marker lost")
	}
}

func TestCircuitBreakerOpensAndRecovers(t *testing.T) {
	healthy := atomic.Bool{}
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if healthy.Load() {
			w.Write([]byte("ok"))
			return
		}
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()

	c, clk := newTestClient(t, Config{
		BaseURL:          ts.URL,
		MaxAttempts:      3,
		BaseBackoff:      time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  10 * time.Second,
	})

	// Sustained 5xx: the first call's three attempts trip the breaker.
	if _, err := c.Analyze(context.Background(), req()); err == nil {
		t.Fatal("want error from failing server")
	}
	wire := calls.Load()

	// While open: fail fast, zero network traffic.
	_, err := c.Analyze(context.Background(), req())
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	if calls.Load() != wire {
		t.Fatalf("open circuit still hit the network (%d → %d calls)", wire, calls.Load())
	}

	// Cooldown elapses; the server has recovered; the half-open probe
	// succeeds and closes the circuit.
	healthy.Store(true)
	clk.Advance(11 * time.Second)
	res, err := c.Analyze(context.Background(), req())
	if err != nil {
		t.Fatalf("post-cooldown probe: %v", err)
	}
	if string(res.Body) != "ok" {
		t.Errorf("body = %q", res.Body)
	}
	// Closed again: the next call flows normally.
	if _, err := c.Analyze(context.Background(), req()); err != nil {
		t.Fatalf("after recovery: %v", err)
	}
}

func TestFailedHalfOpenProbeReopens(t *testing.T) {
	clk := newFakeClock()
	b := newBreaker(2, 5*time.Second, clk.Now)
	b.failure()
	b.failure()
	if err := b.allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("after threshold: allow = %v, want open", err)
	}
	clk.Advance(6 * time.Second)
	if err := b.allow(); err != nil {
		t.Fatalf("half-open probe refused: %v", err)
	}
	// Only one concurrent probe.
	if err := b.allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("second concurrent probe allowed")
	}
	b.failure() // probe failed → re-open, cooldown restarts
	if err := b.allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("re-opened circuit allowed traffic: %v", err)
	}
	clk.Advance(6 * time.Second)
	if err := b.allow(); err != nil {
		t.Fatalf("second probe window refused: %v", err)
	}
	b.success()
	if err := b.allow(); err != nil {
		t.Fatalf("closed circuit refused: %v", err)
	}
}

func Test429DoesNotTripBreaker(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 3 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "busy", http.StatusTooManyRequests)
			return
		}
		w.Write([]byte("ok"))
	}))
	defer ts.Close()

	// Threshold 1: a single breaker failure would open the circuit, so
	// success proves 429s are treated as backpressure, not failure.
	c, _ := newTestClient(t, Config{BaseURL: ts.URL, BaseBackoff: time.Millisecond, BreakerThreshold: 1})
	if _, err := c.Analyze(context.Background(), req()); err != nil {
		t.Fatalf("429s tripped the breaker: %v", err)
	}
}

// TestBreakerIsPerHost is the fleet regression test: one Client calling
// two hosts, one dead. The dead host's breaker opens; the live host is
// completely unaffected — without per-host breakers a single dead worker
// would fail-fast the whole fleet.
func TestBreakerIsPerHost(t *testing.T) {
	var liveCalls atomic.Int32
	live := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		liveCalls.Add(1)
		w.Write([]byte("ok"))
	}))
	defer live.Close()
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer dead.Close()

	c, _ := newTestClient(t, Config{
		MaxAttempts:      2,
		BaseBackoff:      time.Millisecond,
		BreakerThreshold: 2,
	})

	// Two attempts against the dead host trip its breaker.
	if _, err := c.Do(context.Background(), dead.URL, "/v1/analyze", req()); err == nil {
		t.Fatal("want error from dead host")
	}
	if _, err := c.Do(context.Background(), dead.URL, "/v1/analyze", req()); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("dead host err = %v, want ErrCircuitOpen", err)
	}

	// The live host's breaker is its own: traffic still flows.
	for i := 0; i < 3; i++ {
		res, err := c.Do(context.Background(), live.URL, "/v1/analyze", req())
		if err != nil {
			t.Fatalf("live host call %d failed behind dead host's breaker: %v", i, err)
		}
		if string(res.Body) != "ok" {
			t.Fatalf("body = %q", res.Body)
		}
	}
	if liveCalls.Load() != 3 {
		t.Errorf("live host saw %d calls, want 3", liveCalls.Load())
	}
}

// TestHalfOpenConcurrentProbes pins the half-open contract under
// contention: when the cooldown elapses, exactly one of N concurrent
// callers wins the trial slot; the losers fail fast with ErrCircuitOpen
// and must not reset or re-open the breaker underneath the winner.
func TestHalfOpenConcurrentProbes(t *testing.T) {
	clk := newFakeClock()
	b := newBreaker(2, 5*time.Second, clk.Now)
	b.failure()
	b.failure()
	if err := b.allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("breaker did not open: %v", err)
	}
	clk.Advance(6 * time.Second)

	const probes = 32
	var (
		winners atomic.Int32
		start   = make(chan struct{})
		wg      sync.WaitGroup
	)
	for i := 0; i < probes; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if err := b.allow(); err == nil {
				winners.Add(1)
			} else if !errors.Is(err, ErrCircuitOpen) {
				t.Errorf("loser got %v, want ErrCircuitOpen", err)
			}
		}()
	}
	close(start)
	wg.Wait()
	if winners.Load() != 1 {
		t.Fatalf("%d concurrent probes won the half-open slot, want exactly 1", winners.Load())
	}

	// The losers' rejections changed nothing: the winner still owns the
	// trial, and its verdict alone decides the breaker's fate.
	if err := b.allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("second trial allowed while the first is outstanding: %v", err)
	}
	b.failure() // winner's probe fails → re-open, cooldown restarts
	if err := b.allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatal("failed probe did not re-open the circuit")
	}
	clk.Advance(6 * time.Second)
	if err := b.allow(); err != nil {
		t.Fatalf("next probe window refused: %v", err)
	}
	b.success()
	if err := b.allow(); err != nil {
		t.Fatalf("closed circuit refused traffic: %v", err)
	}
}

// TestGiveUpWrapsTransientError: when retries exhaust, the final error
// must carry the origin's status and Retry-After so a proxy can
// propagate them instead of inventing its own.
func TestGiveUpWrapsTransientError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		http.Error(w, "busy", http.StatusTooManyRequests)
	}))
	defer ts.Close()

	c, _ := newTestClient(t, Config{BaseURL: ts.URL, MaxAttempts: 2, BaseBackoff: time.Millisecond})
	_, err := c.Analyze(context.Background(), req())
	var te *TransientError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want wrapped TransientError", err)
	}
	if te.Status != http.StatusTooManyRequests || te.RetryAfter != 7*time.Second {
		t.Errorf("TransientError = %+v, want status 429 retry-after 7s", te)
	}
}

func TestParseRetryAfter(t *testing.T) {
	now := time.Now()
	for _, tc := range []struct {
		in   string
		want time.Duration
	}{
		{"", 0},
		{"5", 5 * time.Second},
		{"0", 0},
		{"-3", 0},
		{"garbage", 0},
		{now.Add(90 * time.Second).UTC().Format(http.TimeFormat), 89 * time.Second}, // date precision
	} {
		got := parseRetryAfter(tc.in, now)
		if tc.in != "" && strings.Contains(tc.in, "GMT") {
			if got < tc.want || got > tc.want+2*time.Second {
				t.Errorf("parseRetryAfter(%q) = %v, want ~%v", tc.in, got, tc.want)
			}
			continue
		}
		if got != tc.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}
