package client

import (
	"context"
	"sync"
	"time"
)

// breaker is a consecutive-failure circuit breaker with a half-open
// recovery probe:
//
//	closed ──(threshold consecutive failures)──▶ open
//	open ──(cooldown elapses)──▶ half-open (ONE probe allowed)
//	half-open probe success ──▶ closed; probe failure ──▶ open again
//
// While open, allow returns ErrCircuitOpen immediately — a dead server
// costs nothing per call instead of a connect timeout. A negative
// threshold disables the breaker entirely.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	state    breakerState
	fails    int
	openedAt time.Time
	probing  bool
}

type breakerState int

const (
	stateClosed breakerState = iota
	stateOpen
	stateHalfOpen
)

func newBreaker(threshold int, cooldown time.Duration, now func() time.Time) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// allow reports whether a request may proceed, transitioning
// open → half-open once the cooldown has elapsed.
func (b *breaker) allow() error {
	if b.threshold < 0 {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateClosed:
		return nil
	case stateOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return ErrCircuitOpen
		}
		b.state = stateHalfOpen
		b.probing = true
		return nil
	default: // half-open
		if b.probing {
			return ErrCircuitOpen // one probe at a time
		}
		b.probing = true
		return nil
	}
}

// success records a healthy server response and closes the circuit.
func (b *breaker) success() {
	if b.threshold < 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = stateClosed
	b.fails = 0
	b.probing = false
}

// failure records a transport failure: a failed half-open probe re-opens
// the circuit and restarts the cooldown; in closed state the consecutive
// counter advances toward the threshold.
func (b *breaker) failure() {
	if b.threshold < 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == stateHalfOpen {
		b.state = stateOpen
		b.openedAt = b.now()
		b.probing = false
		return
	}
	b.fails++
	if b.state == stateClosed && b.fails >= b.threshold {
		b.state = stateOpen
		b.openedAt = b.now()
	}
}

// clock abstracts time for deterministic tests.
type clock interface {
	Now() time.Time
	Sleep(ctx context.Context, d time.Duration) error
}

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

func (realClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
