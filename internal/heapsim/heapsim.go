// Package heapsim provides the instrumented object-allocation ledger used
// for the paper's dynamic measurements (Table 2): total object space, the
// space occupied by dead data members inside objects, and the live-byte
// high water mark — both for actual object sizes and for the adjusted
// sizes objects would have if dead members were eliminated.
//
// The two high water marks are tracked independently because, as the paper
// notes, they may occur at different execution points.
package heapsim

import (
	"fmt"
	"sort"

	"deadmembers/internal/types"
)

// ClassStat accumulates per-class allocation statistics.
type ClassStat struct {
	Class *types.Class
	Count int64 // objects allocated
	Bytes int64 // total bytes allocated (Count * object size)
	Dead  int64 // total bytes occupied by dead members
}

// Ledger tracks every class-object allocation and deallocation.
type Ledger struct {
	// TotalBytes is the space occupied by objects created during
	// execution (paper Table 2, "Object Space").
	TotalBytes int64

	// DeadBytes is the space within those objects occupied by dead data
	// members (paper Table 2, "Dead Data Member Space").
	DeadBytes int64

	// TotalObjects counts allocations.
	TotalObjects int64

	// LiveBytes / AdjustedLiveBytes are the bytes currently allocated,
	// under actual and dead-member-free sizes respectively.
	LiveBytes         int64
	AdjustedLiveBytes int64

	// HighWater is the maximum of LiveBytes over time (paper Table 2,
	// "High Water Mark"); AdjustedHighWater is the maximum of
	// AdjustedLiveBytes ("High Water Mark w/o dead data members").
	HighWater         int64
	AdjustedHighWater int64

	byClass map[*types.Class]*ClassStat
	err     error // first accounting violation, kept instead of panicking
}

// New returns an empty ledger.
func New() *Ledger {
	return &Ledger{byClass: map[*types.Class]*ClassStat{}}
}

// Alloc records the creation of one object of class c with the given
// actual size, deadBytes of dead-member content, and adjusted
// (dead-members-removed) size.
func (l *Ledger) Alloc(c *types.Class, size, deadBytes, adjSize int) {
	l.TotalBytes += int64(size)
	l.DeadBytes += int64(deadBytes)
	l.TotalObjects++
	l.LiveBytes += int64(size)
	l.AdjustedLiveBytes += int64(adjSize)
	if l.LiveBytes > l.HighWater {
		l.HighWater = l.LiveBytes
	}
	if l.AdjustedLiveBytes > l.AdjustedHighWater {
		l.AdjustedHighWater = l.AdjustedLiveBytes
	}
	st := l.byClass[c]
	if st == nil {
		st = &ClassStat{Class: c}
		l.byClass[c] = st
	}
	st.Count++
	st.Bytes += int64(size)
	st.Dead += int64(deadBytes)
}

// Free records the destruction of one object previously passed to Alloc
// with the same sizes. A free that would drive the live-byte counters
// negative indicates an accounting bug; it is recorded via Err rather than
// panicking, so one bad benchmark cannot abort a whole sweep. The counters
// are clamped at zero to keep later statistics finite.
func (l *Ledger) Free(c *types.Class, size, deadBytes, adjSize int) {
	l.LiveBytes -= int64(size)
	l.AdjustedLiveBytes -= int64(adjSize)
	if l.LiveBytes < 0 || l.AdjustedLiveBytes < 0 {
		if l.err == nil {
			l.err = fmt.Errorf("heapsim: negative live bytes (size=%d adj=%d live=%d adjLive=%d)",
				size, adjSize, l.LiveBytes, l.AdjustedLiveBytes)
		}
		if l.LiveBytes < 0 {
			l.LiveBytes = 0
		}
		if l.AdjustedLiveBytes < 0 {
			l.AdjustedLiveBytes = 0
		}
	}
}

// Err returns the first accounting violation observed, or nil. A ledger
// with a non-nil Err still holds usable (clamped) statistics, but they
// should be reported as degraded.
func (l *Ledger) Err() error { return l.err }

// ByClass returns per-class statistics sorted by class name.
func (l *Ledger) ByClass() []*ClassStat {
	out := make([]*ClassStat, 0, len(l.byClass))
	for _, st := range l.byClass {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Class.Name < out[j].Class.Name })
	return out
}

// DeadPercent returns 100 * DeadBytes / TotalBytes (0 if nothing allocated).
func (l *Ledger) DeadPercent() float64 {
	if l.TotalBytes == 0 {
		return 0
	}
	return 100 * float64(l.DeadBytes) / float64(l.TotalBytes)
}

// HighWaterReductionPercent returns the percentage by which the high water
// mark shrinks when dead members are eliminated.
func (l *Ledger) HighWaterReductionPercent() float64 {
	if l.HighWater == 0 {
		return 0
	}
	return 100 * float64(l.HighWater-l.AdjustedHighWater) / float64(l.HighWater)
}
