package heapsim

import (
	"testing"
	"testing/quick"

	"deadmembers/internal/types"
)

func cls(name string) *types.Class {
	return &types.Class{Name: name, Complete: true}
}

func TestBasicAccounting(t *testing.T) {
	l := New()
	a := cls("A")
	l.Alloc(a, 16, 4, 12)
	l.Alloc(a, 16, 4, 12)
	if l.TotalBytes != 32 || l.DeadBytes != 8 || l.TotalObjects != 2 {
		t.Fatalf("totals wrong: %+v", l)
	}
	if l.LiveBytes != 32 || l.HighWater != 32 {
		t.Fatalf("live/hwm wrong: %+v", l)
	}
	l.Free(a, 16, 4, 12)
	if l.LiveBytes != 16 || l.HighWater != 32 {
		t.Fatalf("free accounting wrong: %+v", l)
	}
	l.Alloc(a, 16, 4, 12)
	if l.HighWater != 32 {
		t.Fatalf("hwm should stay 32 after refill, got %d", l.HighWater)
	}
}

func TestAdjustedHighWaterIndependent(t *testing.T) {
	// The two high-water marks may peak at different times (paper §4.3):
	// a dead-heavy object inflates the actual HWM while the adjusted one
	// peaks later with clean objects.
	l := New()
	heavy := cls("Heavy") // 100 bytes, 60 dead
	clean := cls("Clean") // 50 bytes, 0 dead
	l.Alloc(heavy, 100, 60, 40)
	l.Free(heavy, 100, 60, 40)
	l.Alloc(clean, 50, 0, 50)
	l.Alloc(clean, 50, 0, 50) // actual live 100 == previous peak; adjusted 100 > 40
	if l.HighWater != 100 {
		t.Fatalf("hwm = %d, want 100", l.HighWater)
	}
	if l.AdjustedHighWater != 100 {
		t.Fatalf("adjusted hwm = %d, want 100 (peaks later than actual)", l.AdjustedHighWater)
	}
	if l.DeadPercent() != 100*60.0/200.0 {
		t.Fatalf("dead%% = %f", l.DeadPercent())
	}
}

func TestByClass(t *testing.T) {
	l := New()
	a, b := cls("A"), cls("B")
	l.Alloc(b, 8, 0, 8)
	l.Alloc(a, 4, 4, 0)
	l.Alloc(a, 4, 4, 0)
	stats := l.ByClass()
	if len(stats) != 2 || stats[0].Class != a || stats[1].Class != b {
		t.Fatalf("ByClass order wrong: %v", stats)
	}
	if stats[0].Count != 2 || stats[0].Bytes != 8 || stats[0].Dead != 8 {
		t.Fatalf("A stats wrong: %+v", stats[0])
	}
}

func TestPercentagesOnEmptyLedger(t *testing.T) {
	l := New()
	if l.DeadPercent() != 0 || l.HighWaterReductionPercent() != 0 {
		t.Error("empty ledger percentages must be 0")
	}
}

func TestNegativeLiveBytesRecorded(t *testing.T) {
	l := New()
	l.Free(cls("A"), 8, 0, 8)
	if l.Err() == nil {
		t.Fatal("freeing more than allocated must record an accounting error")
	}
	if l.LiveBytes < 0 || l.AdjustedLiveBytes < 0 {
		t.Fatalf("counters must clamp at zero, got live=%d adj=%d", l.LiveBytes, l.AdjustedLiveBytes)
	}
	first := l.Err()
	l.Free(cls("A"), 4, 0, 4)
	if l.Err() != first {
		t.Error("Err must keep the first violation")
	}
	// A clean ledger reports no error.
	clean := New()
	clean.Alloc(cls("B"), 8, 0, 8)
	clean.Free(cls("B"), 8, 0, 8)
	if clean.Err() != nil {
		t.Errorf("balanced ledger reports error: %v", clean.Err())
	}
}

// TestLedgerInvariants: for any interleaving of balanced alloc/free
// operations, live bytes never go negative, the high water mark bounds
// live bytes, and the adjusted figures never exceed the actual ones when
// adjusted sizes are smaller.
func TestLedgerInvariants(t *testing.T) {
	c := cls("X")
	check := func(ops []uint8) bool {
		l := New()
		type rec struct{ size, dead, adj int }
		var live []rec
		for _, op := range ops {
			size := 8 + int(op%5)*4
			dead := int(op % 3 * 4)
			if dead > size {
				dead = size
			}
			adj := size - dead
			if op%2 == 0 || len(live) == 0 {
				l.Alloc(c, size, dead, adj)
				live = append(live, rec{size, dead, adj})
			} else {
				r := live[len(live)-1]
				live = live[:len(live)-1]
				l.Free(c, r.size, r.dead, r.adj)
			}
			if l.LiveBytes < 0 || l.AdjustedLiveBytes < 0 {
				return false
			}
			if l.HighWater < l.LiveBytes || l.AdjustedHighWater < l.AdjustedLiveBytes {
				return false
			}
			if l.AdjustedLiveBytes > l.LiveBytes {
				return false
			}
		}
		return l.HighWater <= l.TotalBytes
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}
