// Package textreport renders the dead-data-member report in the exact
// format cmd/deadmem prints to stdout. It exists so every transport over
// the analysis — the batch CLI and the deadmemd HTTP server — produces
// byte-identical output from one renderer instead of two drifting copies.
package textreport

import (
	"fmt"
	"io"

	"deadmembers/internal/deadmember"
)

// Options selects the optional report sections (each mirrors a deadmem
// CLI flag).
type Options struct {
	// Verbose also lists live members with the reason they are live (-v).
	Verbose bool
	// PerClass prints the per-class breakdown (-classes).
	PerClass bool
	// Unreachable lists unreachable functions (-unreachable).
	Unreachable bool
	// Degraded appends the RESULT DEGRADED marker line; callers pass
	// compilation-degraded || analysis-degraded.
	Degraded bool
}

// Write renders the report for res to w.
func Write(w io.Writer, res *deadmember.Result, opts Options) error {
	dead := res.DeadMembers()
	if len(dead) == 0 {
		fmt.Fprintln(w, "no dead data members found")
	} else {
		fmt.Fprintf(w, "%d dead data member(s):\n", len(dead))
		for _, f := range dead {
			loc := res.Program.FileSet.Position(f.Pos)
			fmt.Fprintf(w, "  %-40s declared at %s\n", f.QualifiedName(), loc)
		}
	}

	if opts.Verbose {
		fmt.Fprintln(w, "\nlive members:")
		for _, c := range res.Program.Classes {
			if res.IsLibraryClass(c) || !res.Used[c] {
				continue
			}
			for _, f := range c.Fields {
				if m := res.MarkOf(f); m.Live {
					fmt.Fprintf(w, "  %-40s %s\n", f.QualifiedName(), m.Reason)
				}
			}
		}
	}

	if opts.PerClass {
		fmt.Fprintln(w, "\nper-class breakdown:")
		for _, row := range res.PerClass() {
			status := ""
			if !row.Used {
				status = " (unused class)"
			}
			if row.Library {
				status = " (library class)"
			}
			fmt.Fprintf(w, "  %-24s %2d/%2d dead (%5.1f%%)%s\n",
				row.Class.Name, row.Dead, row.Members, row.DeadPercent(), status)
		}
	}

	if opts.Unreachable {
		fns := res.UnreachableFunctions()
		fmt.Fprintf(w, "\n%d unreachable function(s):\n", len(fns))
		for _, f := range fns {
			fmt.Fprintf(w, "  %s\n", f.QualifiedName())
		}
	}

	s := res.Stats()
	_, err := fmt.Fprintf(w, "\n%d classes (%d used), %d data members in used classes, %d dead (%.1f%%)\n",
		s.Classes, s.UsedClasses, s.Members, s.DeadMembers, s.DeadPercent())
	if opts.Degraded {
		_, err = fmt.Fprintln(w, "RESULT DEGRADED: a pipeline stage crashed and was contained; see stderr")
	}
	return err
}
