package callgraph_test

import (
	"testing"

	"deadmembers/internal/callgraph"
	"deadmembers/internal/frontend"
	"deadmembers/internal/types"
)

func compile(t *testing.T, src string) *frontend.Result {
	t.Helper()
	r := frontend.Compile(frontend.Source{Name: "t.mcc", Text: src})
	if err := r.Err(); err != nil {
		t.Fatalf("compile errors:\n%v", err)
	}
	return r
}

func build(t *testing.T, src string, mode callgraph.Mode) (*frontend.Result, *callgraph.Graph) {
	t.Helper()
	r := compile(t, src)
	return r, callgraph.Build(r.Program, r.Graph, callgraph.Options{Mode: mode})
}

func reachableNames(g *callgraph.Graph) map[string]bool {
	out := map[string]bool{}
	for _, f := range g.ReachableFuncs() {
		out[f.QualifiedName()] = true
	}
	return out
}

const dispatchProgram = `
class A {
public:
	virtual int f() { return 1; }
};
class B : public A {
public:
	virtual int f() { return 2; }
};
class C : public A {
public:
	virtual int f() { return 3; }
};
int unreached() { return 9; }
int main() {
	B b;
	A* p = &b;
	return p->f();
}
`

func TestRTADispatchOnlyInstantiated(t *testing.T) {
	_, g := build(t, dispatchProgram, callgraph.RTA)
	names := reachableNames(g)
	if !names["main"] || !names["B::f"] {
		t.Fatalf("main and B::f must be reachable, got %v", names)
	}
	if names["C::f"] {
		t.Error("RTA must not reach C::f (C never instantiated)")
	}
	if names["unreached"] {
		t.Error("unreached() must not be reachable")
	}
	// A::f IS reachable: A is instantiated as B's base subobject and the
	// dispatch set over {A, B} includes A::f for receivers of exact class A.
	if len(g.InstantiatedClasses()) == 0 {
		t.Error("instantiated set should not be empty")
	}
}

func TestCHADispatchAllSubclasses(t *testing.T) {
	_, g := build(t, dispatchProgram, callgraph.CHA)
	names := reachableNames(g)
	for _, want := range []string{"A::f", "B::f", "C::f"} {
		if !names[want] {
			t.Errorf("CHA should reach %s", want)
		}
	}
	if names["unreached"] {
		t.Error("even CHA must not reach a never-called free function")
	}
}

func TestALLReachesEverything(t *testing.T) {
	_, g := build(t, dispatchProgram, callgraph.ALL)
	names := reachableNames(g)
	for _, want := range []string{"A::f", "B::f", "C::f", "unreached", "main"} {
		if !names[want] {
			t.Errorf("ALL should reach %s", want)
		}
	}
}

func TestModeString(t *testing.T) {
	if callgraph.ALL.String() != "ALL" || callgraph.CHA.String() != "CHA" || callgraph.RTA.String() != "RTA" {
		t.Error("mode names wrong")
	}
}

func TestConstructorChainReachability(t *testing.T) {
	src := `
class Inner {
public:
	int v;
	Inner() { v = seed(); }
	int seed() { return 3; }
};
class Outer {
public:
	Inner in;
	Outer() {}
};
int main() {
	Outer o;
	return 0;
}
`
	_, g := build(t, src, callgraph.RTA)
	names := reachableNames(g)
	for _, want := range []string{"Outer::Outer", "Inner::Inner", "Inner::seed"} {
		if !names[want] {
			t.Errorf("constructor chain should reach %s, got %v", want, names)
		}
	}
}

func TestDestructorReachability(t *testing.T) {
	src := `
class Member {
public:
	int v;
	~Member() { v = cleanup(); }
	int cleanup() { return 0; }
};
class Holder {
public:
	Member m;
};
int main() {
	Holder* h = new Holder();
	delete h;
	return 0;
}
`
	_, g := build(t, src, callgraph.RTA)
	names := reachableNames(g)
	if !names["Member::~Member"] || !names["Member::cleanup"] {
		t.Errorf("member destructor chain unreachable: %v", names)
	}
}

func TestVirtualDestructorDispatch(t *testing.T) {
	src := `
class Base {
public:
	virtual ~Base() {}
};
class Derived : public Base {
public:
	int mark;
	~Derived() { mark = 1; }
};
int main() {
	Base* p = new Derived();
	delete p;
	return 0;
}
`
	_, g := build(t, src, callgraph.RTA)
	names := reachableNames(g)
	if !names["Derived::~Derived"] {
		t.Errorf("delete through base pointer must reach Derived's dtor: %v", names)
	}
}

func TestGlobalConstructionIsRoot(t *testing.T) {
	src := `
class Init {
public:
	int v;
	Init() { v = helper(); }
	int helper() { return 1; }
};
Init g;
int main() { return g.v; }
`
	_, cg := build(t, src, callgraph.RTA)
	names := reachableNames(cg)
	if !names["Init::Init"] || !names["Init::helper"] {
		t.Errorf("global constructor must be a root: %v", names)
	}
}

func TestQualifiedCallIsStatic(t *testing.T) {
	src := `
class A { public: virtual int f() { return 1; } };
class B : public A { public: virtual int f() { return inner(); } int inner() { return 2; } };
int main() {
	B b;
	return b.A::f(); // statically bound: B::f body not required
}
`
	_, g := build(t, src, callgraph.RTA)
	names := reachableNames(g)
	if !names["A::f"] {
		t.Error("qualified call target A::f must be reachable")
	}
}

func TestExtraRoots(t *testing.T) {
	src := `
class Lib { public: virtual void onEvent() {} };
class Mine : public Lib {
public:
	int hits;
	virtual void onEvent() { hits = hits + bump(); }
	int bump() { return 1; }
};
int main() {
	Mine m;
	return 0;
}
`
	r := compile(t, src)
	var root *types.Func
	for _, c := range r.Program.Classes {
		if c.Name == "Mine" {
			root = c.MethodByName("onEvent")
		}
	}
	// Without the extra root, onEvent is unreachable (never called).
	g := callgraph.Build(r.Program, r.Graph, callgraph.Options{Mode: callgraph.RTA})
	if reachableNames(g)["Mine::onEvent"] {
		t.Fatal("onEvent should be unreachable without roots")
	}
	g = callgraph.Build(r.Program, r.Graph, callgraph.Options{Mode: callgraph.RTA, ExtraRoots: []*types.Func{root}})
	names := reachableNames(g)
	if !names["Mine::onEvent"] || !names["Mine::bump"] {
		t.Errorf("extra root should pull in onEvent and bump: %v", names)
	}
}

func TestEdgesRecorded(t *testing.T) {
	src := `
int helper() { return 1; }
int main() { return helper(); }
`
	r, g := build(t, src, callgraph.RTA)
	main := r.Program.Main
	if len(g.Edges[main]) != 1 || g.Edges[main][0].Name != "helper" {
		t.Errorf("edges from main = %v", g.Edges[main])
	}
}

func TestUsedClasses(t *testing.T) {
	src := `
class Used1 { public: int a; };
class UsedViaNew { public: int b; };
class UsedAsMember { public: int c; };
class Holder { public: UsedAsMember m; };
class NotUsed { public: int d; };
int take(Used1 u) { return u.a; }
int main() {
	Used1 u;
	UsedViaNew* p = new UsedViaNew();
	Holder h;
	int r = u.a + p->b + h.m.c;
	delete p;
	return r;
}
`
	r := compile(t, src)
	used := callgraph.UsedClasses(r.Program)
	names := map[string]bool{}
	for c := range used {
		names[c.Name] = true
	}
	for _, want := range []string{"Used1", "UsedViaNew", "UsedAsMember", "Holder"} {
		if !names[want] {
			t.Errorf("%s should be a used class", want)
		}
	}
	if names["NotUsed"] {
		t.Error("NotUsed should not be a used class")
	}
}
