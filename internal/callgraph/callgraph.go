// Package callgraph constructs call graphs of MC++ programs at three
// precision levels:
//
//   - ALL: every function with a body is reachable (no call graph at all);
//     the weakest baseline.
//   - CHA: Class Hierarchy Analysis; a virtual call through static class X
//     reaches the overriders in all subclasses of X.
//   - RTA: Rapid Type Analysis (Bacon & Sweeney, OOPSLA'96); like CHA but
//     dispatch only considers classes instantiated in reachable code. This
//     approximates the PVG algorithm the paper's implementation used.
//
// The paper's algorithm (Figure 2, line 5) only needs the set of reachable
// functions; edges are additionally recorded for reporting and ablations.
package callgraph

import (
	"sort"

	"deadmembers/internal/ast"
	"deadmembers/internal/hierarchy"
	"deadmembers/internal/types"
)

// Mode selects the construction algorithm.
type Mode int

// Construction modes, in increasing order of precision.
const (
	ALL Mode = iota
	CHA
	RTA
)

// String returns the conventional acronym.
func (m Mode) String() string {
	switch m {
	case ALL:
		return "ALL"
	case CHA:
		return "CHA"
	case RTA:
		return "RTA"
	}
	return "?"
}

// Graph is a constructed call graph.
type Graph struct {
	Mode Mode

	// Reachable is the set of functions transitively callable from main
	// (plus extra roots).
	Reachable map[*types.Func]bool

	// Edges records resolved call edges (caller -> callees), deduplicated.
	Edges map[*types.Func][]*types.Func

	// Instantiated is the set of classes constructed in reachable code
	// (for RTA this drives dispatch; for other modes it is informational).
	Instantiated map[*types.Class]bool
}

// Options configures construction.
type Options struct {
	Mode Mode

	// ExtraRoots are treated as reachable in addition to main — e.g.
	// methods overriding virtual functions of library classes, which a
	// library may call back (paper Section 3.3).
	ExtraRoots []*types.Func
}

// Build constructs the call graph of prog under opts.
func Build(prog *types.Program, h *hierarchy.Graph, opts Options) *Graph {
	b := &builder{
		prog: prog,
		h:    h,
		info: prog.Info,
		g: &Graph{
			Mode:         opts.Mode,
			Reachable:    map[*types.Func]bool{},
			Edges:        map[*types.Func][]*types.Func{},
			Instantiated: map[*types.Class]bool{},
		},
		edgeSet: map[edge]bool{},
	}

	if opts.Mode == ALL {
		for _, f := range prog.AllFuncs() {
			if f.Body != nil {
				b.g.Reachable[f] = true
			}
		}
		for _, c := range prog.Classes {
			b.g.Instantiated[c] = true
		}
		return b.g
	}

	// Global class-typed variables are constructed before main and
	// destroyed after it: their constructors/destructors are roots.
	for _, gv := range prog.Globals {
		b.instantiateVarType(nil, gv.Type, b.info.VarCtors[gv.Decl], gv.Decl)
	}
	if prog.Main != nil {
		b.addReachable(prog.Main)
	}
	for _, r := range opts.ExtraRoots {
		b.addReachable(r)
	}
	b.run()
	return b.g
}

type edge struct{ from, to *types.Func }

type virtualSite struct {
	caller *types.Func
	static *types.Class
	method *types.Func
}

type builder struct {
	prog      *types.Program
	h         *hierarchy.Graph
	info      *types.Info
	g         *Graph
	work      []*types.Func
	sites     []virtualSite
	dtorSites []dtorSite
	edgeSet   map[edge]bool
}

func (b *builder) addEdge(from, to *types.Func) {
	if to == nil {
		return
	}
	if from != nil {
		e := edge{from, to}
		if !b.edgeSet[e] {
			b.edgeSet[e] = true
			b.g.Edges[from] = append(b.g.Edges[from], to)
		}
	}
	b.addReachable(to)
}

func (b *builder) addReachable(f *types.Func) {
	if f == nil || f.Builtin || b.g.Reachable[f] {
		return
	}
	b.g.Reachable[f] = true
	if f.Body != nil || f.IsCtor || f.IsDtor {
		b.work = append(b.work, f)
	}
}

func (b *builder) run() {
	for {
		if len(b.work) == 0 {
			break
		}
		f := b.work[len(b.work)-1]
		b.work = b.work[:len(b.work)-1]
		b.scan(f)
	}
}

// instantiate marks cls as constructed and revisits recorded virtual call
// sites, since a newly instantiated class can add dispatch targets.
func (b *builder) instantiate(caller *types.Func, cls *types.Class) {
	if cls == nil || b.g.Instantiated[cls] {
		return
	}
	b.g.Instantiated[cls] = true
	// Instantiating a class instantiates its base subobjects and
	// class-typed members for dispatch purposes.
	for _, bs := range cls.Bases {
		b.instantiate(caller, bs.Class)
	}
	for _, fld := range cls.Fields {
		b.instantiateFieldType(caller, fld.Type)
	}
	if b.g.Mode == RTA {
		// Incremental re-resolution: only the newly instantiated class
		// can contribute new dispatch targets, so check it against each
		// recorded site instead of re-running full resolution (keeps RTA
		// construction near-linear, as the paper's §3.4 expects).
		for _, s := range b.sites {
			if cls == s.static || b.h.IsBaseOf(s.static, cls) {
				if target := b.h.Overrides(cls, s.method.Name); target != nil {
					b.addEdge(s.caller, target)
				}
			}
		}
		for _, ds := range b.dtorSites {
			if cls == ds.static || b.h.IsBaseOf(ds.static, cls) {
				b.destroy(ds.caller, cls)
			}
		}
	}
}

func (b *builder) instantiateFieldType(caller *types.Func, t types.Type) {
	for {
		if a, ok := t.(*types.Array); ok {
			t = a.Elem
			continue
		}
		break
	}
	if c := types.IsClass(t); c != nil {
		b.instantiate(caller, c)
		b.construct(caller, c, nil)
		b.destroy(caller, c)
	}
}

// construct records the constructor-call closure for creating an object of
// class cls with the given (possibly nil) selected constructor.
func (b *builder) construct(caller *types.Func, cls *types.Class, ctor *types.Func) {
	b.instantiate(caller, cls)
	if ctor == nil {
		ctor = cls.CtorByArity(0)
	}
	if ctor != nil {
		b.addEdge(caller, ctor)
		// The ctor body's init-list and implicit sub-object construction
		// edges are added when the ctor itself is scanned.
		return
	}
	// No user constructor: default construction recursively constructs
	// bases and class-typed members.
	for _, bs := range cls.Bases {
		b.construct(caller, bs.Class, nil)
	}
	for _, f := range cls.Fields {
		b.constructFieldDefault(caller, f.Type)
	}
}

func (b *builder) constructFieldDefault(caller *types.Func, t types.Type) {
	for {
		if a, ok := t.(*types.Array); ok {
			t = a.Elem
			continue
		}
		break
	}
	if c := types.IsClass(t); c != nil {
		b.construct(caller, c, nil)
	}
}

// destroy records the destructor-call closure for destroying an object of
// class cls (statically bound).
func (b *builder) destroy(caller *types.Func, cls *types.Class) {
	if d := cls.Dtor(); d != nil {
		b.addEdge(caller, d)
	}
	for _, bs := range cls.Bases {
		b.destroy(caller, bs.Class)
	}
	for _, f := range cls.Fields {
		t := f.Type
		for {
			if a, ok := t.(*types.Array); ok {
				t = a.Elem
				continue
			}
			break
		}
		if c := types.IsClass(t); c != nil {
			b.destroy(caller, c)
		}
	}
}

// destroyDynamic handles `delete p` where p's static class may have
// subclasses with virtual destructors.
func (b *builder) destroyDynamic(caller *types.Func, static *types.Class) {
	d := static.Dtor()
	virtual := d != nil && d.Virtual
	if !virtual {
		// Also virtual if any base declares a virtual dtor.
		for bc := range allBaseSet(b.h, static) {
			if bd := bc.Dtor(); bd != nil && bd.Virtual {
				virtual = true
				break
			}
		}
	}
	if !virtual {
		b.destroy(caller, static)
		return
	}
	for _, sub := range b.h.SubclassesOf(static) {
		if b.g.Mode == RTA && !b.g.Instantiated[sub] {
			continue
		}
		b.destroy(caller, sub)
	}
	if b.g.Mode == RTA {
		// Re-resolution on later instantiation: record as virtual site on
		// the destructor name by registering a synthetic site per subclass
		// discovered later. Simplest correct approach: remember it.
		b.dtorSites = append(b.dtorSites, dtorSite{caller, static})
	}
}

type dtorSite struct {
	caller *types.Func
	static *types.Class
}

func allBaseSet(h *hierarchy.Graph, c *types.Class) map[*types.Class]bool {
	set := map[*types.Class]bool{}
	var walk func(x *types.Class)
	walk = func(x *types.Class) {
		for _, bs := range x.Bases {
			if !set[bs.Class] {
				set[bs.Class] = true
				walk(bs.Class)
			}
		}
	}
	walk(c)
	return set
}

// resolveVirtual adds edges for one virtual call site under the current
// instantiated-class set.
func (b *builder) resolveVirtual(s virtualSite) {
	for _, sub := range b.h.SubclassesOf(s.static) {
		if b.g.Mode == RTA && !b.g.Instantiated[sub] {
			continue
		}
		if target := b.h.Overrides(sub, s.method.Name); target != nil {
			b.addEdge(s.caller, target)
		}
	}
}

// scan walks the body (and constructor initializer list) of f, adding
// edges for every call, allocation, and destruction site.
func (b *builder) scan(f *types.Func) {
	if f.IsCtor && f.Owner != nil {
		b.scanCtorImplicit(f)
	}
	if f.IsDtor && f.Owner != nil {
		// A destructor implicitly destroys bases and class-typed members.
		for _, bs := range f.Owner.Bases {
			b.destroy(f, bs.Class)
		}
		for _, fld := range f.Owner.Fields {
			b.constructOrDestroyMemberDtor(f, fld.Type)
		}
	}
	// Constructor initializer arguments contain ordinary expressions
	// (calls, allocations) that execute before the body.
	for i := range f.Inits {
		for _, a := range f.Inits[i].Args {
			b.scanNode(f, a)
		}
	}
	if f.Body == nil {
		return
	}
	b.scanNode(f, f.Body)
}

// scanNode walks any AST subtree for call, allocation, and declaration
// sites occurring in function f.
func (b *builder) scanNode(f *types.Func, root ast.Node) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Call:
			b.scanCall(f, x)
		case *ast.New:
			if cls := types.IsClass(b.info.TypeExprs[x.Type]); cls != nil {
				ctor := b.info.NewCtors[x]
				if x.Len != nil {
					ctor = nil // array-new default-constructs
				}
				b.construct(f, cls, ctor)
			}
		case *ast.Delete:
			t := b.info.TypeOf(x.X)
			if cls := types.PointeeClass(t); cls != nil {
				b.destroyDynamic(f, cls)
			}
		case *ast.DeclStmt:
			b.scanVarDecl(f, x.Var)
		}
		return true
	})
}

func (b *builder) constructOrDestroyMemberDtor(f *types.Func, t types.Type) {
	for {
		if a, ok := t.(*types.Array); ok {
			t = a.Elem
			continue
		}
		break
	}
	if c := types.IsClass(t); c != nil {
		b.destroy(f, c)
	}
}

// scanCtorImplicit adds edges for the constructor's initializer list and
// the implicit default construction of bases/members not named in it.
func (b *builder) scanCtorImplicit(f *types.Func) {
	cls := f.Owner
	named := map[string]bool{}
	for i := range f.Inits {
		init := &f.Inits[i]
		named[init.Name] = true
		if base := b.info.CtorInitBases[init]; base != nil {
			b.construct(f, base, base.CtorByArity(len(init.Args)))
		} else if fld := b.info.CtorInitFields[init]; fld != nil {
			if mc := types.IsClass(fld.Type); mc != nil {
				b.construct(f, mc, mc.CtorByArity(len(init.Args)))
			}
		}
	}
	for _, bs := range cls.Bases {
		if !named[bs.Class.Name] {
			b.construct(f, bs.Class, nil)
		}
	}
	for _, fld := range cls.Fields {
		if named[fld.Name] {
			continue
		}
		b.constructFieldDefault(f, fld.Type)
	}
}

// scanVarDecl handles local declarations of class (or array-of-class)
// type: construction now, destruction at scope exit.
func (b *builder) scanVarDecl(f *types.Func, v *ast.VarDecl) {
	t := b.info.VarTypes[v]
	b.instantiateVarType(f, t, b.info.VarCtors[v], v)
}

func (b *builder) instantiateVarType(f *types.Func, t types.Type, ctor *types.Func, decl *ast.VarDecl) {
	if t == nil {
		return
	}
	isArray := false
	for {
		if a, ok := t.(*types.Array); ok {
			t = a.Elem
			isArray = true
			continue
		}
		break
	}
	cls := types.IsClass(t)
	if cls == nil {
		return
	}
	if isArray {
		ctor = nil // array elements default-construct
	}
	if decl != nil && decl.Init != nil {
		// Copy-initialization from an existing object: bitwise copy in
		// MC++; no constructor runs, but the class is instantiated and
		// its destructor will run.
		b.instantiate(f, cls)
		b.destroy(f, cls)
		return
	}
	b.construct(f, cls, ctor)
	b.destroy(f, cls)
}

// scanCall adds edges for one call expression appearing in caller.
func (b *builder) scanCall(caller *types.Func, x *ast.Call) {
	switch fun := ast.Unparen(x.Fun).(type) {
	case *ast.Ident:
		if m, ok := b.info.IdentMethods[fun]; ok {
			// Implicit this->m(): dispatch through the enclosing class.
			b.methodCall(caller, caller.Owner, m, true, "")
			return
		}
		if f, ok := b.info.IdentFuncs[fun]; ok {
			if !f.Builtin {
				b.addEdge(caller, f)
			}
			return
		}
	case *ast.Member:
		m, ok := b.info.MethodRefs[fun]
		if !ok {
			return
		}
		recvClass := b.receiverClass(fun)
		b.methodCall(caller, recvClass, m, fun.Arrow, fun.Qual)
	}
}

func (b *builder) receiverClass(fun *ast.Member) *types.Class {
	t := b.info.TypeOf(fun.X)
	if fun.Arrow {
		return types.PointeeClass(t)
	}
	return types.IsClass(t)
}

// methodCall resolves one method invocation. Dynamic dispatch applies when
// the method is virtual, the call is through a pointer (-> or implicit
// this->), and no explicit qualifier pins the target.
func (b *builder) methodCall(caller *types.Func, static *types.Class, m *types.Func, throughPointer bool, qual string) {
	if static == nil {
		b.addEdge(caller, m)
		return
	}
	if m.Virtual && throughPointer && qual == "" {
		s := virtualSite{caller: caller, static: static, method: m}
		b.sites = append(b.sites, s)
		b.resolveVirtual(s)
		return
	}
	b.addEdge(caller, m)
}

// ReachableFuncs returns the reachable functions sorted by qualified name,
// for deterministic reporting.
func (g *Graph) ReachableFuncs() []*types.Func {
	out := make([]*types.Func, 0, len(g.Reachable))
	for f := range g.Reachable {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].QualifiedName() < out[j].QualifiedName()
	})
	return out
}

// InstantiatedClasses returns the instantiated classes sorted by name.
func (g *Graph) InstantiatedClasses() []*types.Class {
	out := make([]*types.Class, 0, len(g.Instantiated))
	for c := range g.Instantiated {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// UsedClasses returns the classes for which a constructor call occurs
// anywhere in the program text (Table 1's "used classes" column): class
// variable declarations, new-expressions, constructor initializer targets,
// and class-typed members/bases of used classes.
func UsedClasses(prog *types.Program) map[*types.Class]bool {
	used := map[*types.Class]bool{}
	var mark func(c *types.Class)
	mark = func(c *types.Class) {
		if c == nil || used[c] {
			return
		}
		used[c] = true
		for _, bs := range c.Bases {
			mark(bs.Class)
		}
		for _, f := range c.Fields {
			t := f.Type
			for {
				if a, ok := t.(*types.Array); ok {
					t = a.Elem
					continue
				}
				break
			}
			mark(types.IsClass(t))
		}
	}
	markType := func(t types.Type) {
		for {
			if a, ok := t.(*types.Array); ok {
				t = a.Elem
				continue
			}
			break
		}
		mark(types.IsClass(t))
	}
	for _, v := range prog.Globals {
		markType(v.Type)
	}
	for _, t := range prog.Info.VarTypes {
		markType(t)
	}
	for n := range prog.Info.NewCtors {
		markType(prog.Info.TypeExprs[n.Type])
	}
	// new C[n] expressions have no NewCtors entry when C is ctor-less;
	// scan all new expressions via TypeExprs of their type nodes.
	for _, f := range prog.AllFuncs() {
		if f.Body == nil {
			continue
		}
		ast.Inspect(f.Body, func(n ast.Node) bool {
			if x, ok := n.(*ast.New); ok {
				markType(prog.Info.TypeExprs[x.Type])
			}
			return true
		})
	}
	return used
}
