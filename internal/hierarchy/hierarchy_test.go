package hierarchy

import (
	"testing"

	"deadmembers/internal/types"
)

// mkClass builds a class with n int fields.
func mkClass(name string, fields int, bases ...types.Base) *types.Class {
	c := &types.Class{Name: name, Complete: true, Bases: bases}
	for i := 0; i < fields; i++ {
		c.Fields = append(c.Fields, &types.Field{
			Name: name + "_f" + string(rune('a'+i)), Type: types.IntType, Owner: c, Index: i,
		})
	}
	return c
}

func addField(c *types.Class, name string, t types.Type) *types.Field {
	f := &types.Field{Name: name, Type: t, Owner: c, Index: len(c.Fields)}
	c.Fields = append(c.Fields, f)
	return f
}

func addMethod(c *types.Class, name string, virtual bool) *types.Func {
	m := &types.Func{Name: name, Owner: c, Virtual: virtual}
	c.Methods = append(c.Methods, m)
	return m
}

func TestBaseRelations(t *testing.T) {
	a := mkClass("A", 1)
	b := mkClass("B", 1, types.Base{Class: a})
	c := mkClass("C", 1, types.Base{Class: b})
	d := mkClass("D", 1)
	g := New([]*types.Class{a, b, c, d})

	if !g.IsBaseOf(a, c) || !g.IsBaseOf(b, c) || !g.IsBaseOf(a, b) {
		t.Error("transitive base relation broken")
	}
	if g.IsBaseOf(c, a) || g.IsBaseOf(a, a) || g.IsBaseOf(d, c) {
		t.Error("spurious base relation")
	}
	if !g.Related(a, c) || !g.Related(c, a) || g.Related(a, d) {
		t.Error("Related broken")
	}
	subs := g.SubclassesOf(a)
	if len(subs) != 3 {
		t.Errorf("SubclassesOf(A) = %v, want A,B,C", subs)
	}
}

func TestLookupHiding(t *testing.T) {
	base := mkClass("Base", 0)
	bf := addField(base, "x", types.IntType)
	derived := mkClass("Derived", 0, types.Base{Class: base})
	df := addField(derived, "x", types.IntType) // hides Base::x
	g := New([]*types.Class{base, derived})

	got, err := g.LookupField(derived, "x")
	if err != nil || got != df {
		t.Fatalf("Derived::x should hide Base::x, got %v, %v", got, err)
	}
	got, err = g.LookupField(base, "x")
	if err != nil || got != bf {
		t.Fatalf("lookup in Base finds Base::x, got %v, %v", got, err)
	}
}

func TestLookupAmbiguity(t *testing.T) {
	l := mkClass("L", 0)
	addField(l, "v", types.IntType)
	r := mkClass("R", 0)
	addField(r, "v", types.IntType)
	d := mkClass("D", 0, types.Base{Class: l}, types.Base{Class: r})
	g := New([]*types.Class{l, r, d})

	_, err := g.LookupField(d, "v")
	if _, ok := err.(*AmbiguityError); !ok {
		t.Fatalf("want AmbiguityError, got %v", err)
	}
	_, err = g.LookupField(d, "nothere")
	if _, ok := err.(*NotFoundError); !ok {
		t.Fatalf("want NotFoundError, got %v", err)
	}
}

func TestLookupSharedVirtualBase(t *testing.T) {
	v := mkClass("V", 0)
	vf := addField(v, "shared", types.IntType)
	l := mkClass("L", 0, types.Base{Class: v, Virtual: true})
	r := mkClass("R", 0, types.Base{Class: v, Virtual: true})
	d := mkClass("D", 0, types.Base{Class: l}, types.Base{Class: r})
	g := New([]*types.Class{v, l, r, d})

	got, err := g.LookupField(d, "shared")
	if err != nil || got != vf {
		t.Fatalf("shared virtual base member should be unambiguous: %v, %v", got, err)
	}
	if vbs := g.VirtualBases(d); len(vbs) != 1 || vbs[0] != v {
		t.Fatalf("VirtualBases(D) = %v", vbs)
	}
}

func TestOverriders(t *testing.T) {
	a := mkClass("A", 0)
	af := addMethod(a, "f", true)
	b := mkClass("B", 0, types.Base{Class: a})
	bf := addMethod(b, "f", true)
	c := mkClass("C", 0, types.Base{Class: b}) // inherits B::f
	g := New([]*types.Class{a, b, c})

	if got := g.Overrides(c, "f"); got != bf {
		t.Fatalf("C dispatches f to %v, want B::f", got)
	}
	overs := g.OverridersOf(a, af)
	if len(overs) != 2 {
		t.Fatalf("OverridersOf(A::f) = %v, want {A::f, B::f}", overs)
	}
}

func TestSizeOfScalars(t *testing.T) {
	g := New(nil)
	cases := []struct {
		t    types.Type
		size int
	}{
		{types.CharType, 1}, {types.BoolType, 1}, {types.IntType, 4},
		{types.DoubleType, 8}, {types.VoidType, 0},
		{&types.Pointer{Elem: types.IntType}, 8},
		{&types.Array{Elem: types.IntType, Len: 5}, 20},
		{&types.Array{Elem: types.DoubleType, Len: 3}, 24},
	}
	for _, tc := range cases {
		if got := g.SizeOf(tc.t); got != tc.size {
			t.Errorf("SizeOf(%s) = %d, want %d", tc.t, got, tc.size)
		}
	}
}

func TestLayoutSimpleClass(t *testing.T) {
	c := mkClass("C", 0)
	addField(c, "a", types.CharType)   // offset 0
	addField(c, "b", types.IntType)    // offset 4 (aligned)
	addField(c, "c", types.CharType)   // offset 8
	addField(c, "d", types.DoubleType) // offset 16
	g := New([]*types.Class{c})
	l := g.LayoutOf(c)
	wantOffsets := []int{0, 4, 8, 16}
	for i, mi := range l.Members {
		if mi.Offset != wantOffsets[i] {
			t.Errorf("member %d at offset %d, want %d", i, mi.Offset, wantOffsets[i])
		}
	}
	if l.Size != 24 || l.Align != 8 {
		t.Errorf("size/align = %d/%d, want 24/8", l.Size, l.Align)
	}
}

func TestLayoutPolymorphic(t *testing.T) {
	a := mkClass("A", 0)
	addMethod(a, "f", true)
	addField(a, "x", types.IntType)
	b := mkClass("B", 0, types.Base{Class: a})
	addField(b, "y", types.IntType)
	g := New([]*types.Class{a, b})

	la := g.LayoutOf(a)
	if la.Size != 16 || la.VptrBytes != 8 {
		t.Errorf("A: size=%d vptr=%d, want 16/8 (vptr + int + pad)", la.Size, la.VptrBytes)
	}
	lb := g.LayoutOf(b)
	if lb.VptrBytes != 8 {
		t.Errorf("B reuses A's vptr: vptr bytes = %d, want 8", lb.VptrBytes)
	}
	if lb.Size != 24 {
		t.Errorf("B size = %d, want 24 (A's 16 + int + pad)", lb.Size)
	}
}

func TestLayoutEmptyClass(t *testing.T) {
	c := mkClass("Empty", 0)
	g := New([]*types.Class{c})
	if got := g.LayoutOf(c).Size; got != 1 {
		t.Errorf("empty class size = %d, want 1", got)
	}
}

func TestLayoutVirtualBaseOnce(t *testing.T) {
	v := mkClass("V", 0)
	addField(v, "data", &types.Array{Elem: types.IntType, Len: 4})
	l := mkClass("L", 0, types.Base{Class: v, Virtual: true})
	addField(l, "l", types.IntType)
	r := mkClass("R", 0, types.Base{Class: v, Virtual: true})
	addField(r, "r", types.IntType)
	d := mkClass("D", 0, types.Base{Class: l}, types.Base{Class: r})
	g := New([]*types.Class{v, l, r, d})

	ld := g.LayoutOf(d)
	vCount := 0
	for _, mi := range ld.Members {
		if mi.Field.Name == "data" {
			vCount++
		}
	}
	if vCount != 1 {
		t.Errorf("virtual base fields appear %d times, want 1", vCount)
	}
	// Non-virtual diamond duplicates.
	l2 := mkClass("L2", 0, types.Base{Class: v})
	r2 := mkClass("R2", 0, types.Base{Class: v})
	d2 := mkClass("D2", 0, types.Base{Class: l2}, types.Base{Class: r2})
	g2 := New([]*types.Class{v, l2, r2, d2})
	vCount = 0
	for _, mi := range g2.LayoutOf(d2).Members {
		if mi.Field.Name == "data" {
			vCount++
		}
	}
	if vCount != 2 {
		t.Errorf("non-virtual diamond fields appear %d times, want 2", vCount)
	}
}

func TestUnionLayout(t *testing.T) {
	u := &types.Class{Name: "U", Kind: types.ClassUnion, Complete: true}
	addField(u, "i", types.IntType)
	addField(u, "d", types.DoubleType)
	addField(u, "c", types.CharType)
	g := New([]*types.Class{u})
	l := g.LayoutOf(u)
	if l.Size != 8 || l.Align != 8 {
		t.Errorf("union size/align = %d/%d, want 8/8", l.Size, l.Align)
	}
	for _, mi := range l.Members {
		if mi.Offset != 0 {
			t.Errorf("union member %s at offset %d, want 0", mi.Field.Name, mi.Offset)
		}
	}
}

func TestDeadBytesAndSizeWithout(t *testing.T) {
	c := mkClass("C", 0)
	live := addField(c, "live", types.IntType)
	dead := addField(c, "dead", types.DoubleType)
	g := New([]*types.Class{c})
	l := g.LayoutOf(c)
	isDead := func(f *types.Field) bool { return f == dead }
	if got := l.DeadBytes(isDead); got != 8 {
		t.Errorf("dead bytes = %d, want 8", got)
	}
	if got := l.SizeWithout(isDead); got != l.Size-8 {
		t.Errorf("size without dead = %d, want %d", got, l.Size-8)
	}
	if got := l.SizeWithout(func(*types.Field) bool { return false }); got != l.Size {
		t.Errorf("removing nothing must keep size %d, got %d", l.Size, got)
	}
	_ = live
}

// TestLayoutInvariants is a property test over randomized hierarchies:
// offsets are aligned and non-overlapping (outside unions), the size
// covers all members, and dead-byte accounting is consistent.
func TestLayoutInvariants(t *testing.T) {
	seeds := []uint64{1, 7, 42, 999, 31337}
	for _, seed := range seeds {
		classes := randomHierarchy(seed)
		g := New(classes)
		for _, c := range classes {
			l := g.LayoutOf(c)
			if l.Size < 1 {
				t.Fatalf("seed %d: class %s has size %d", seed, c.Name, l.Size)
			}
			if l.Size%l.Align != 0 {
				t.Fatalf("seed %d: class %s size %d not aligned to %d", seed, c.Name, l.Size, l.Align)
			}
			sum := 0
			for _, mi := range l.Members {
				if mi.Offset < 0 || mi.Offset+mi.Size > l.Size {
					t.Fatalf("seed %d: %s member %s at [%d,%d) outside size %d",
						seed, c.Name, mi.Field.Name, mi.Offset, mi.Offset+mi.Size, l.Size)
				}
				align := g.AlignOf(mi.Field.Type)
				if align > 0 && mi.Offset%align != 0 {
					t.Fatalf("seed %d: %s member %s misaligned at %d (align %d)",
						seed, c.Name, mi.Field.Name, mi.Offset, align)
				}
				sum += mi.Size
			}
			if !c.IsUnion() && sum+l.VptrBytes > l.Size {
				t.Fatalf("seed %d: %s members+vptr (%d) exceed size %d", seed, c.Name, sum+l.VptrBytes, l.Size)
			}
			// Dead-byte accounting: marking all fields dead accounts for
			// exactly the sum of member sizes.
			if got := l.DeadBytes(func(*types.Field) bool { return true }); got != sum {
				t.Fatalf("seed %d: %s DeadBytes(all) = %d, want %d", seed, c.Name, got, sum)
			}
		}
	}
}

// randomHierarchy builds a deterministic pseudo-random single/multiple
// inheritance hierarchy for property testing.
func randomHierarchy(seed uint64) []*types.Class {
	s := seed
	next := func(n int) int {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return int(s % uint64(n))
	}
	scalars := []types.Type{types.CharType, types.IntType, types.DoubleType,
		&types.Pointer{Elem: types.IntType}, &types.Array{Elem: types.CharType, Len: 3}}
	var classes []*types.Class
	for i := 0; i < 12; i++ {
		c := &types.Class{Name: "K" + string(rune('A'+i)), Complete: true}
		nf := 1 + next(5)
		for j := 0; j < nf; j++ {
			addField(c, "f"+string(rune('a'+j)), scalars[next(len(scalars))])
		}
		if i > 0 && next(3) > 0 {
			c.Bases = append(c.Bases, types.Base{Class: classes[next(i)], Virtual: next(4) == 0})
		}
		if i > 2 && next(4) == 0 {
			b := classes[next(i)]
			dup := false
			for _, existing := range c.Bases {
				if existing.Class == b {
					dup = true
				}
			}
			if !dup {
				c.Bases = append(c.Bases, types.Base{Class: b})
			}
		}
		if next(3) == 0 {
			addMethod(c, "vf", true)
		}
		classes = append(classes, c)
	}
	return classes
}
