package hierarchy

import (
	"fmt"
	"sort"
	"strings"

	"deadmembers/internal/types"
)

// The layout model follows a simplified Itanium-like ABI:
//
//   - char/bool occupy 1 byte; int 4; double 8; pointers and
//     pointers-to-member 8; arrays are element size times length.
//   - members are placed at their natural alignment; the class is padded
//     to its own alignment (the max member alignment).
//   - a polymorphic class (virtual methods or virtual bases) carries one
//     8-byte vptr at offset 0 of its non-virtual region; non-virtual base
//     subobjects precede the class's own fields.
//   - each virtual base is laid out exactly once, at the end of the most
//     derived object.
//   - unions overlay all members at offset 0.
//   - an otherwise empty class occupies 1 byte.
//
// This keeps every number in Table 2 auditable byte-by-byte.

// Word is the pointer size of the layout model, in bytes.
const Word = 8

// MemberInstance is one occurrence of a data member within a complete
// object: the same Field appears once per (non-virtual) base subobject
// occurrence and exactly once for fields of virtual bases.
type MemberInstance struct {
	Field  *types.Field
	Offset int
	Size   int
}

// Layout describes the complete-object layout of a class.
type Layout struct {
	Class *types.Class
	Size  int
	Align int

	// VptrBytes is the total space occupied by vtable pointers in the
	// complete object (one Word per polymorphic non-virtual region).
	VptrBytes int

	// Members lists every data-member instance in the complete object,
	// in ascending offset order.
	Members []MemberInstance
}

// SizeOf returns the byte size of t under the layout model. Class sizes
// are complete-object sizes (a class-typed member embeds a complete
// object of that class; MC++ members are never base subobjects).
func (g *Graph) SizeOf(t types.Type) int {
	switch x := t.(type) {
	case *types.Basic:
		switch x.Kind {
		case types.Void:
			return 0
		case types.Bool, types.Char:
			return 1
		case types.Int:
			return 4
		case types.Double:
			return 8
		}
	case *types.Pointer, *types.MemberPointer:
		return Word
	case *types.Array:
		return x.Len * g.SizeOf(x.Elem)
	case *types.Class:
		return g.LayoutOf(x).Size
	}
	return 0
}

// AlignOf returns the alignment requirement of t.
func (g *Graph) AlignOf(t types.Type) int {
	switch x := t.(type) {
	case *types.Basic:
		switch x.Kind {
		case types.Bool, types.Char:
			return 1
		case types.Int:
			return 4
		case types.Double:
			return 8
		}
		return 1
	case *types.Pointer, *types.MemberPointer:
		return Word
	case *types.Array:
		return g.AlignOf(x.Elem)
	case *types.Class:
		return g.LayoutOf(x).Align
	}
	return 1
}

func alignUp(n, a int) int {
	if a <= 1 {
		return n
	}
	return (n + a - 1) / a * a
}

// LayoutOf returns (computing and caching on first use) the complete-object
// layout of c.
func (g *Graph) LayoutOf(c *types.Class) *Layout {
	if l, ok := g.layouts[c]; ok {
		return l
	}
	// Reserve the slot to catch accidental recursion on cyclic hierarchies
	// (rejected by sema, but be defensive).
	placeholder := &Layout{Class: c, Size: 1, Align: 1}
	g.layouts[c] = placeholder

	l := g.computeLayout(c)
	g.layouts[c] = l
	return l
}

func (g *Graph) computeLayout(c *types.Class) *Layout {
	l := &Layout{Class: c, Align: 1}

	if c.IsUnion() {
		size := 0
		for _, f := range c.Fields {
			fs := g.SizeOf(f.Type)
			fa := g.AlignOf(f.Type)
			if fs > size {
				size = fs
			}
			if fa > l.Align {
				l.Align = fa
			}
			l.Members = append(l.Members, MemberInstance{Field: f, Offset: 0, Size: fs})
		}
		l.Size = alignUp(maxInt(size, 1), l.Align)
		return l
	}

	off := 0
	// Non-virtual region: vptr, then non-virtual base subobjects, then own
	// fields.
	off = g.layoutNonVirtual(c, off, l)

	// Virtual bases, once each, at the end.
	for _, vb := range g.VirtualBases(c) {
		vl := g.nonVirtualShape(vb)
		off = alignUp(off, vl.align)
		base := off
		for _, mi := range vl.members {
			l.Members = append(l.Members, MemberInstance{Field: mi.Field, Offset: base + mi.Offset, Size: mi.Size})
		}
		l.VptrBytes += vl.vptrBytes
		if vl.align > l.Align {
			l.Align = vl.align
		}
		off = base + vl.size
	}

	l.Size = alignUp(maxInt(off, 1), l.Align)
	sort.SliceStable(l.Members, func(i, j int) bool { return l.Members[i].Offset < l.Members[j].Offset })
	return l
}

// layoutNonVirtual appends the non-virtual region of c (vptr, non-virtual
// bases recursively, own fields) to l starting at off; returns the new
// offset.
func (g *Graph) layoutNonVirtual(c *types.Class, off int, l *Layout) int {
	shape := g.nonVirtualShape(c)
	off = alignUp(off, shape.align)
	base := off
	for _, mi := range shape.members {
		l.Members = append(l.Members, MemberInstance{Field: mi.Field, Offset: base + mi.Offset, Size: mi.Size})
	}
	l.VptrBytes += shape.vptrBytes
	if shape.align > l.Align {
		l.Align = shape.align
	}
	return base + shape.size
}

// nvShape is the layout of a class's non-virtual region (everything except
// virtual bases), used both for base subobjects and as the top of the
// complete object.
type nvShape struct {
	size      int
	align     int
	vptrBytes int
	members   []MemberInstance
}

func (g *Graph) nonVirtualShape(c *types.Class) nvShape {
	var s nvShape
	s.align = 1
	off := 0
	// A polymorphic class needs a vptr, but reuses the one of its primary
	// (first non-virtual polymorphic) base if it has one, as in the
	// Itanium ABI.
	if g.IsPolymorphic(c) && !g.hasPolymorphicNonVirtualBase(c) {
		off = Word
		s.vptrBytes = Word
		s.align = Word
	}
	for _, b := range c.Bases {
		if b.Virtual {
			continue
		}
		bs := g.nonVirtualShape(b.Class)
		off = alignUp(off, bs.align)
		for _, mi := range bs.members {
			s.members = append(s.members, MemberInstance{Field: mi.Field, Offset: off + mi.Offset, Size: mi.Size})
		}
		s.vptrBytes += bs.vptrBytes
		if bs.align > s.align {
			s.align = bs.align
		}
		off += bs.size
	}
	for _, f := range c.Fields {
		fs := g.SizeOf(f.Type)
		fa := g.AlignOf(f.Type)
		off = alignUp(off, fa)
		s.members = append(s.members, MemberInstance{Field: f, Offset: off, Size: fs})
		if fa > s.align {
			s.align = fa
		}
		off += fs
	}
	s.size = alignUp(maxInt(off, 1), s.align)
	return s
}

// hasPolymorphicNonVirtualBase reports whether c has a direct non-virtual
// base whose non-virtual region already carries a vptr.
func (g *Graph) hasPolymorphicNonVirtualBase(c *types.Class) bool {
	for _, b := range c.Bases {
		if !b.Virtual && (b.Class.HasVirtualMethods() || g.hasPolymorphicNonVirtualBase(b.Class)) {
			return true
		}
	}
	return false
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// DeadBytes returns the number of bytes in one complete object of c that
// are occupied by members for which dead(field) is true.
func (l *Layout) DeadBytes(dead func(*types.Field) bool) int {
	total := 0
	for _, mi := range l.Members {
		if dead(mi.Field) {
			total += mi.Size
		}
	}
	return total
}

// SizeWithout returns the size the object would have if all members for
// which dead(field) is true were removed. The model recompacts remaining
// members (paper Section 4.3: "if all dead data members were to be
// eliminated"), conservatively keeping alignment padding at the object
// granularity.
func (l *Layout) SizeWithout(dead func(*types.Field) bool) int {
	removed := l.DeadBytes(dead)
	if removed == 0 {
		return l.Size
	}
	s := l.Size - removed
	if s < 1 {
		s = 1
	}
	return s
}

// String renders the layout for debugging and golden tests.
func (l *Layout) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: size=%d align=%d vptr=%d\n", l.Class.Name, l.Size, l.Align, l.VptrBytes)
	for _, mi := range l.Members {
		fmt.Fprintf(&b, "  +%-4d %-6d %s\n", mi.Offset, mi.Size, mi.Field.QualifiedName())
	}
	return b.String()
}
