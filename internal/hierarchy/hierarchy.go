// Package hierarchy implements class-hierarchy algorithms for MC++: base
// class relations (including virtual inheritance), C++ member lookup with
// hiding and ambiguity detection, and the object layout model used for the
// byte-exact dynamic measurements of Table 2 of the paper.
package hierarchy

import (
	"fmt"
	"sort"

	"deadmembers/internal/types"
)

// Graph provides hierarchy queries over the classes of a program. Build one
// with New after semantic analysis.
type Graph struct {
	classes []*types.Class

	// derived maps each class to its direct subclasses.
	derived map[*types.Class][]*types.Class

	// allBases maps each class to the set of its transitive bases
	// (virtual and non-virtual), excluding itself.
	allBases map[*types.Class]map[*types.Class]bool

	layouts map[*types.Class]*Layout

	// Memoization caches: hierarchy queries are invoked per call site and
	// per allocated object, so they must be O(1) after first use for the
	// whole analysis to stay near-linear (paper §3.4).
	subclassesCache map[*types.Class][]*types.Class
	vbasesCache     map[*types.Class][]*types.Class
	overridesCache  map[lookupKey]*types.Func
	polyCache       map[*types.Class]int8
}

type lookupKey struct {
	class *types.Class
	name  string
}

// New builds the hierarchy graph for the given classes.
func New(classes []*types.Class) *Graph {
	g := &Graph{
		classes:         classes,
		derived:         map[*types.Class][]*types.Class{},
		allBases:        map[*types.Class]map[*types.Class]bool{},
		layouts:         map[*types.Class]*Layout{},
		subclassesCache: map[*types.Class][]*types.Class{},
		vbasesCache:     map[*types.Class][]*types.Class{},
		overridesCache:  map[lookupKey]*types.Func{},
		polyCache:       map[*types.Class]int8{},
	}
	for _, c := range classes {
		for _, b := range c.Bases {
			g.derived[b.Class] = append(g.derived[b.Class], c)
		}
	}
	for _, c := range classes {
		g.allBases[c] = map[*types.Class]bool{}
		g.collectBases(c, g.allBases[c])
	}
	return g
}

func (g *Graph) collectBases(c *types.Class, into map[*types.Class]bool) {
	for _, b := range c.Bases {
		if !into[b.Class] {
			into[b.Class] = true
			g.collectBases(b.Class, into)
		}
	}
}

// Classes returns the classes the graph was built from.
func (g *Graph) Classes() []*types.Class { return g.classes }

// IsBaseOf reports whether base is a (transitive, possibly virtual) base
// class of derived. A class is not its own base.
func (g *Graph) IsBaseOf(base, derived *types.Class) bool {
	return g.allBases[derived][base]
}

// Related reports whether a and b are the same class or related by
// inheritance in either direction.
func (g *Graph) Related(a, b *types.Class) bool {
	return a == b || g.IsBaseOf(a, b) || g.IsBaseOf(b, a)
}

// DirectSubclasses returns the classes that list c as a direct base.
func (g *Graph) DirectSubclasses(c *types.Class) []*types.Class {
	return g.derived[c]
}

// SubclassesOf returns c and all its transitive subclasses, in a
// deterministic order. The result is memoized; callers must not mutate it.
func (g *Graph) SubclassesOf(c *types.Class) []*types.Class {
	if cached, ok := g.subclassesCache[c]; ok {
		return cached
	}
	seen := map[*types.Class]bool{c: true}
	out := []*types.Class{c}
	for i := 0; i < len(out); i++ {
		for _, d := range g.derived[out[i]] {
			if !seen[d] {
				seen[d] = true
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	g.subclassesCache[c] = out
	return out
}

// VirtualBases returns the set of virtual base classes of c (transitively:
// a virtual base anywhere in the inheritance DAG appears once), in a
// deterministic order. The result is memoized; callers must not mutate it.
func (g *Graph) VirtualBases(c *types.Class) []*types.Class {
	if cached, ok := g.vbasesCache[c]; ok {
		return cached
	}
	seen := map[*types.Class]bool{}
	out := []*types.Class{}
	var walk func(*types.Class)
	walk = func(x *types.Class) {
		for _, b := range x.Bases {
			if b.Virtual && !seen[b.Class] {
				seen[b.Class] = true
				out = append(out, b.Class)
			}
			walk(b.Class)
		}
	}
	walk(c)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	g.vbasesCache[c] = out
	return out
}

// IsPolymorphic reports whether c has virtual methods, declared or
// inherited, or virtual bases (and therefore carries a vptr). Memoized.
func (g *Graph) IsPolymorphic(c *types.Class) bool {
	if v, ok := g.polyCache[c]; ok {
		return v == 1
	}
	poly := false
	if c.HasVirtualMethods() || len(g.VirtualBases(c)) > 0 {
		poly = true
	} else {
		for b := range g.allBases[c] {
			if b.HasVirtualMethods() {
				poly = true
				break
			}
		}
	}
	if poly {
		g.polyCache[c] = 1
	} else {
		g.polyCache[c] = 2
	}
	return poly
}

// AmbiguityError reports an ambiguous member lookup.
type AmbiguityError struct {
	Class *types.Class
	Name  string
	Cands []string
}

func (e *AmbiguityError) Error() string {
	return fmt.Sprintf("member %q is ambiguous in class %s (candidates: %v)",
		e.Name, e.Class.Name, e.Cands)
}

// NotFoundError reports a failed member lookup.
type NotFoundError struct {
	Class *types.Class
	Name  string
}

func (e *NotFoundError) Error() string {
	return fmt.Sprintf("class %s has no member named %q", e.Class.Name, e.Name)
}

// LookupField implements C++ data-member lookup: find the field named name
// in class x or its bases, honoring hiding (a declaration in a derived
// class hides declarations along the same path) and detecting ambiguity
// across distinct base subobjects. Members shared through a common virtual
// base are not ambiguous.
//
// This is the Lookup function of the paper's algorithm (Figure 2): the
// returned field's Owner is the class C such that the access e.m resolves
// to C::m.
func (g *Graph) LookupField(x *types.Class, name string) (*types.Field, error) {
	fields, _ := g.lookup(x, name)
	return g.resolveFieldCandidates(x, name, fields)
}

// LookupMethod is the method analogue of LookupField.
func (g *Graph) LookupMethod(x *types.Class, name string) (*types.Func, error) {
	_, methods := g.lookup(x, name)
	uniq := map[*types.Func]bool{}
	var out []*types.Func
	for _, m := range methods {
		if !uniq[m] {
			uniq[m] = true
			out = append(out, m)
		}
	}
	switch len(out) {
	case 0:
		return nil, &NotFoundError{Class: x, Name: name}
	case 1:
		return out[0], nil
	}
	var cands []string
	for _, m := range out {
		cands = append(cands, m.QualifiedName())
	}
	sort.Strings(cands)
	return nil, &AmbiguityError{Class: x, Name: name, Cands: cands}
}

func (g *Graph) resolveFieldCandidates(x *types.Class, name string, fields []*types.Field) (*types.Field, error) {
	uniq := map[*types.Field]bool{}
	var out []*types.Field
	for _, f := range fields {
		if !uniq[f] {
			uniq[f] = true
			out = append(out, f)
		}
	}
	switch len(out) {
	case 0:
		return nil, &NotFoundError{Class: x, Name: name}
	case 1:
		return out[0], nil
	}
	var cands []string
	for _, f := range out {
		cands = append(cands, f.QualifiedName())
	}
	sort.Strings(cands)
	return nil, &AmbiguityError{Class: x, Name: name, Cands: cands}
}

// lookup returns all field and method declarations named name visible in x,
// stopping descent at any class that declares the name (hiding). Results
// may contain duplicates when reached through multiple paths; callers
// deduplicate (which collapses shared virtual bases).
func (g *Graph) lookup(x *types.Class, name string) ([]*types.Field, []*types.Func) {
	if f := x.FieldByName(name); f != nil {
		return []*types.Field{f}, nil
	}
	if m := x.MethodByName(name); m != nil {
		return nil, []*types.Func{m}
	}
	var fields []*types.Field
	var methods []*types.Func
	for _, b := range x.Bases {
		fs, ms := g.lookup(b.Class, name)
		fields = append(fields, fs...)
		methods = append(methods, ms...)
	}
	return fields, methods
}

// LookupQualifiedField resolves a qualified access `e.Y::m`: the member m
// must be found in Y or Y's bases (Y itself may be a base of the static
// type of e; that relationship is validated by sema, not here).
func (g *Graph) LookupQualifiedField(y *types.Class, name string) (*types.Field, error) {
	return g.LookupField(y, name)
}

// Overrides returns the method that class c (searching c and then its
// bases) provides for the virtual method named name, or nil. Used by call
// graph construction to resolve dynamic dispatch for a receiver of exact
// class c. Memoized: dispatch resolution runs once per (class, name).
func (g *Graph) Overrides(c *types.Class, name string) *types.Func {
	key := lookupKey{c, name}
	if m, ok := g.overridesCache[key]; ok {
		return m
	}
	m, err := g.LookupMethod(c, name)
	if err != nil {
		m = nil
	}
	g.overridesCache[key] = m
	return m
}

// OverridersOf returns every method that may be invoked by a virtual call
// to base method m through a receiver whose static class is stat: the
// lookup result for each subclass of stat. The returned set is
// deduplicated and deterministic.
func (g *Graph) OverridersOf(stat *types.Class, m *types.Func) []*types.Func {
	seen := map[*types.Func]bool{}
	var out []*types.Func
	for _, sub := range g.SubclassesOf(stat) {
		if target := g.Overrides(sub, m.Name); target != nil && !seen[target] {
			seen[target] = true
			out = append(out, target)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].QualifiedName() < out[j].QualifiedName()
	})
	return out
}
