package sema

import (
	"deadmembers/internal/ast"
	"deadmembers/internal/types"
)

// checkBodies type-checks global initializers and every function body.
func (c *Checker) checkBodies() {
	for _, g := range c.prog.Globals {
		c.checkVarDecl(g.Decl, g)
	}
	for _, f := range c.prog.Functions {
		c.checkFuncBody(f)
	}
	for _, cls := range c.prog.Classes {
		for _, m := range cls.Methods {
			c.checkFuncBody(m)
		}
	}
	if c.prog.Main != nil {
		if len(c.prog.Main.Params) != 0 {
			c.diags.Errorf(c.prog.Main.Pos, "main must take no parameters")
		}
		if !types.Identical(c.prog.Main.Return, types.IntType) {
			c.diags.Errorf(c.prog.Main.Pos, "main must return int")
		}
	}
}

func (c *Checker) checkFuncBody(f *types.Func) {
	if f.Body == nil {
		if !f.Pure && f.Owner == nil {
			// Prototype-only free function: legal only if never called;
			// calls to it are rejected at the call site.
			return
		}
		return
	}
	c.cur = f
	c.pushScope()
	for _, p := range f.Params {
		if p.Name != "" {
			c.declare(p)
		}
	}
	if f.IsCtor {
		c.checkCtorInits(f)
	}
	c.checkStmt(f.Body)
	c.popScope()
	c.cur = nil
}

// checkCtorInits resolves each member-initializer entry to a field of the
// constructor's class or to a direct/virtual base class.
func (c *Checker) checkCtorInits(f *types.Func) {
	cls := f.Owner
	seen := map[string]bool{}
	for i := range f.Inits {
		init := &f.Inits[i]
		if seen[init.Name] {
			c.diags.Errorf(init.Pos(), "duplicate initializer for %s", init.Name)
		}
		seen[init.Name] = true

		var argTypes []types.Type
		for _, a := range init.Args {
			argTypes = append(argTypes, c.checkExpr(a))
		}

		if fld := cls.FieldByName(init.Name); fld != nil {
			c.info.CtorInitFields[init] = fld
			if mc := types.IsClass(fld.Type); mc != nil {
				c.checkConstructible(init, mc, len(init.Args))
			} else {
				if len(init.Args) != 1 {
					c.diags.Errorf(init.Pos(), "initializer for scalar member %s needs exactly one argument", init.Name)
				} else if !c.assignable(fld.Type, argTypes[0], init.Args[0]) {
					c.diags.Errorf(init.Pos(), "cannot initialize %s (%s) with %s", init.Name, fld.Type, argTypes[0])
				}
			}
			continue
		}

		if base, ok := c.prog.ClassByName[init.Name]; ok && c.isBaseInitTarget(cls, base) {
			c.info.CtorInitBases[init] = base
			c.checkConstructible(init, base, len(init.Args))
			continue
		}
		c.diags.Errorf(init.Pos(), "%s is neither a member nor a base of %s", init.Name, cls.Name)
	}
}

// isBaseInitTarget reports whether base may appear in a ctor-init list of
// cls: a direct base or any virtual base.
func (c *Checker) isBaseInitTarget(cls, base *types.Class) bool {
	for _, b := range cls.Bases {
		if b.Class == base {
			return true
		}
	}
	for _, vb := range c.graph.VirtualBases(cls) {
		if vb == base {
			return true
		}
	}
	return false
}

// checkConstructible checks that class cls can be constructed with nargs
// arguments and returns the selected constructor (nil for implicit
// default construction of a ctor-less class).
func (c *Checker) checkConstructible(node ast.Node, cls *types.Class, nargs int) *types.Func {
	if cls == nil {
		return nil
	}
	if !cls.Complete {
		c.diags.Errorf(node.Pos(), "cannot construct incomplete class %s", cls.Name)
		return nil
	}
	ctors := cls.Ctors()
	if len(ctors) == 0 {
		if nargs != 0 {
			c.diags.Errorf(node.Pos(), "class %s has no %d-argument constructor", cls.Name, nargs)
		}
		return nil
	}
	ct := cls.CtorByArity(nargs)
	if ct == nil {
		c.diags.Errorf(node.Pos(), "class %s has no %d-argument constructor", cls.Name, nargs)
	}
	return ct
}

// checkStmt type-checks one statement.
func (c *Checker) checkStmt(s ast.Stmt) {
	switch x := s.(type) {
	case *ast.BlockStmt:
		c.pushScope()
		for _, st := range x.Stmts {
			c.checkStmt(st)
		}
		c.popScope()
	case *ast.DeclStmt:
		v := &types.Var{Name: x.Var.Name, Pos: x.Var.Pos(), Decl: x.Var}
		c.info.VarObjects[x.Var] = v
		c.checkVarDecl(x.Var, v)
		c.declare(v)
	case *ast.ExprStmt:
		c.checkExpr(x.X)
	case *ast.IfStmt:
		c.checkCond(x.Cond)
		c.checkStmt(x.Then)
		if x.Else != nil {
			c.checkStmt(x.Else)
		}
	case *ast.WhileStmt:
		c.checkCond(x.Cond)
		c.checkStmt(x.Body)
	case *ast.DoWhileStmt:
		c.checkStmt(x.Body)
		c.checkCond(x.Cond)
	case *ast.ForStmt:
		c.pushScope()
		if x.Init != nil {
			c.checkStmt(x.Init)
		}
		if x.Cond != nil {
			c.checkCond(x.Cond)
		}
		if x.Post != nil {
			c.checkExpr(x.Post)
		}
		c.checkStmt(x.Body)
		c.popScope()
	case *ast.SwitchStmt:
		t := c.checkExpr(x.X)
		if !isIntegral(t) {
			c.diags.Errorf(x.Pos(), "switch operand must be integral, have %s", t)
		}
		defaults := 0
		for i := range x.Cases {
			cs := &x.Cases[i]
			if cs.Values == nil {
				defaults++
			}
			for _, v := range cs.Values {
				vt := c.checkExpr(v)
				if !isIntegral(vt) {
					c.diags.Errorf(v.Pos(), "case value must be integral, have %s", vt)
				}
			}
			c.pushScope()
			for _, st := range cs.Body {
				c.checkStmt(st)
			}
			c.popScope()
		}
		if defaults > 1 {
			c.diags.Errorf(x.Pos(), "switch has multiple default cases")
		}
	case *ast.ReturnStmt:
		c.checkReturn(x)
	case *ast.BreakStmt, *ast.ContinueStmt:
		// Loop nesting is validated structurally by the interpreter;
		// statically accepting stray break/continue matches C compilers'
		// parse-then-diagnose split and keeps the checker simple.
	}
}

func (c *Checker) checkReturn(r *ast.ReturnStmt) {
	if c.cur == nil {
		return
	}
	want := c.cur.Return
	if c.cur.IsCtor || c.cur.IsDtor {
		want = types.VoidType
	}
	if r.X == nil {
		if !types.IsVoid(want) {
			c.diags.Errorf(r.Pos(), "return without value in function returning %s", want)
		}
		return
	}
	got := c.checkExpr(r.X)
	if types.IsVoid(want) {
		c.diags.Errorf(r.Pos(), "return with value in void function")
		return
	}
	if !c.assignable(want, got, r.X) {
		c.diags.Errorf(r.Pos(), "cannot return %s from function returning %s", got, want)
	}
}

// checkVarDecl resolves the type and initializer of a variable declaration
// (global or local).
func (c *Checker) checkVarDecl(d *ast.VarDecl, v *types.Var) {
	t := c.resolveType(d.Type)
	v.Type = t
	c.info.VarTypes[d] = t

	if cls := types.IsClass(t); cls != nil {
		if d.Init != nil {
			it := c.checkExpr(d.Init)
			if !types.Identical(it, cls) {
				c.diags.Errorf(d.Pos(), "cannot initialize %s (%s) from %s", d.Name, cls.Name, it)
			}
			return
		}
		ct := c.checkConstructible(d, cls, len(d.CtorArgs))
		c.info.VarCtors[d] = ct
		if ct != nil {
			c.checkArgs(d, ct, d.CtorArgs)
		} else {
			for _, a := range d.CtorArgs {
				c.checkExpr(a)
			}
		}
		return
	}

	if arr, ok := t.(*types.Array); ok {
		if ec := types.IsClass(arr.Elem); ec != nil {
			c.checkConstructible(d, ec, 0) // array elements default-construct
		}
		if d.Init != nil || len(d.CtorArgs) > 0 {
			c.diags.Errorf(d.Pos(), "array variable %s cannot have an initializer", d.Name)
		}
		return
	}

	if len(d.CtorArgs) > 1 {
		c.diags.Errorf(d.Pos(), "scalar variable %s takes at most one initializer", d.Name)
	}
	var init ast.Expr
	if d.Init != nil {
		init = d.Init
	} else if len(d.CtorArgs) == 1 {
		init = d.CtorArgs[0]
	}
	if init != nil {
		it := c.checkExpr(init)
		if !c.assignable(t, it, init) {
			c.diags.Errorf(d.Pos(), "cannot initialize %s (%s) from %s", d.Name, t, it)
		}
	}
}

// checkCond checks an expression used as a condition: arithmetic,
// boolean, or pointer (non-null test).
func (c *Checker) checkCond(e ast.Expr) {
	t := c.checkExpr(e)
	if isCondition(t) {
		return
	}
	c.diags.Errorf(e.Pos(), "invalid condition of type %s", t)
}

func isCondition(t types.Type) bool {
	switch x := t.(type) {
	case *types.Basic:
		return x.Kind != types.Void
	case *types.Pointer, *types.MemberPointer:
		return true
	}
	return false
}

func isIntegral(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && (b.Kind == types.Int || b.Kind == types.Char || b.Kind == types.Bool)
}

func isArith(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind != types.Void
}
