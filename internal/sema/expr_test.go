package sema_test

import (
	"testing"

	"deadmembers/internal/types"
)

func TestUnaryOperatorErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"minus on pointer", `int main() { int* p = nullptr; p = -p; return 0; }`, "arithmetic operand"},
		{"tilde on double", `int main() { double d = 1.0; return ~d; }`, "integral operand"},
		{"inc on class", `class A { public: int x; }; int main() { A a; ++a; return 0; }`, "arithmetic or pointer"},
		{"postfix on rvalue", `int main() { int x = 1; (x + 1)++; return x; }`, "not an lvalue"},
		{"not on class", `class A { public: int x; }; int main() { A a; return !a; }`, "scalar operand"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { checkErr(t, tc.src, tc.want) })
	}
}

func TestBinaryOperatorErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"class plus int", `class A { public: int x; }; int main() { A a; return a + 1; }`, "arithmetic operands"},
		{"pointer minus unrelated", `int main() { int* p = nullptr; double* q = nullptr; int d = p - q; return d; }`, "pointer arithmetic"},
		{"shift double", `int main() { double d = 1.0; return 1 << d; }`, "integral operands"},
		{"compare class", `class A { public: int x; }; int main() { A a; A b; return a == b ? 0 : 1; }`, "cannot compare"},
		{"order pointer and int", `int main() { int* p = nullptr; return p < 5 ? 0 : 1; }`, "cannot order"},
		{"logical on class", `class A { public: int x; }; int main() { A a; return a && true ? 1 : 0; }`, "scalar operands"},
		{"compare unrelated ptrs", `class A { public: int a; }; class B { public: int b; };
			int main() { A* pa = nullptr; B* pb = nullptr; return pa == pb ? 0 : 1; }`, "cannot compare"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { checkErr(t, tc.src, tc.want) })
	}
}

func TestTernaryMerging(t *testing.T) {
	// Compatible merges.
	check(t, `
class A { public: int x; };
class B : public A { public: int y; };
int main() {
	bool c = true;
	double d = c ? 1 : 2.5;           // arithmetic merge -> double
	A a; B b;
	A* p = c ? (A*)&a : (A*)&b;       // same pointer type
	A* q = c ? &a : nullptr;          // null merges with any pointer
	void* v = c ? (void*)&a : nullptr;
	return (int)d + (p == q ? 0 : 1) + (v != nullptr ? 0 : 1);
}`)
	// Incompatible merge.
	checkErr(t, `
class A { public: int x; };
int main() { bool c = true; A a; int i = 0; return c ? a : i; }`, "incompatible operands")
}

func TestMemberAccessErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"dot on pointer", `class A { public: int x; }; int main() { A* p = nullptr; return p.x; }`, "member access on non-class"},
		{"arrow on class", `class A { public: int x; }; int main() { A a; return a->x; }`, "requires a pointer"},
		{"qual not a base", `class A { public: int x; }; class B { public: int y; };
			int main() { A a; return a.B::y; }`, "not a base"},
		{"unknown qual", `class A { public: int x; }; int main() { A a; return a.Nope::x; }`, "unknown class"},
		{"memberptr on wrong side", `class A { public: int x; }; int main() { int i = 1; int A::* pm = &A::x; return i.*pm; }`, "requires a class receiver"},
		{"deref non-memberptr", `class A { public: int x; }; int main() { A a; int i = 0; return a.*i; }`, "pointer-to-member operand"},
		{"unknown ptm class", `int main() { int* pm = &Nowhere::x; return 0; }`, "unknown class"},
		{"unknown ptm member", `class A { public: int x; }; int main() { int A::* pm = &A::nope; return 0; }`, "no member named"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { checkErr(t, tc.src, tc.want) })
	}
}

func TestNewDeleteErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"new void", `int main() { void* p = new void; return 0; }`, "cannot allocate void"},
		{"array size class", `class A { public: int x; }; int main() { A a; int* p = new int[a]; return 0; }`, "must be integral"},
		{"delete non-pointer", `int main() { int x = 1; delete x; return 0; }`, "pointer operand"},
		{"new class bad arity", `class A { public: A(int v) { x = v; } int x; }; int main() { A* p = new A(); return 0; }`, "no 0-argument constructor"},
		{"scalar new extra args", `int main() { int* p = new int(1, 2); return *p; }`, "at most one initializer"},
		{"new init mismatch", `class A { public: int x; }; int main() { int* p = new int(new A()); return 0; }`, "cannot initialize"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { checkErr(t, tc.src, tc.want) })
	}
}

func TestCastRules(t *testing.T) {
	check(t, `
class A { public: int x; };
int main() {
	double d = (double)3;
	int i = (int)d;
	char c = (char)i;
	bool b = (bool)c;
	A* p = (A*)0;
	void* v = (void*)p;
	int addr = (int)v;       // pointer -> integer reinterpretation
	int* q = (int*)addr;     // and back
	return b && q == nullptr ? i : 0;
}`)
	checkErr(t, `class A { public: int x; }; int main() { A a; int i = (int)a; return i; }`, "invalid cast")
	checkErr(t, `class A { public: int x; }; int main() { int i = 0; A a2 = (A)i; return 0; }`, "invalid cast")
}

func TestVirtualBaseCtorInit(t *testing.T) {
	// A most-derived class may (and must be allowed to) name a virtual
	// grand-base in its initializer list.
	r := check(t, `
class V { public: int v; V(int a) : v(a) {} V() : v(0) {} };
class M : public virtual V { public: M() : V(1) {} };
class D : public M { public: D() : V(9) {} };
int main() { D d; return d.v; }
`)
	d := r.Program.ClassByName["D"]
	if d == nil || len(d.Ctors()) != 1 {
		t.Fatal("D ctor missing")
	}
	// Non-base, non-member name in init list still rejected.
	checkErr(t, `
class Other { public: int o; };
class A { public: int x; A() : Other(1) {} };
int main() { A a; return a.x; }`, "neither a member nor a base")
}

func TestConstArrayLengths(t *testing.T) {
	r := check(t, `
class A {
public:
	int a[2 + 3];
	int b[4 * 2];
	int c[10 - 2];
	int d[6 / 2];
	char e['z' - 'a'];
};
int main() { A x; return sizeof(A); }
`)
	a := r.Program.ClassByName["A"]
	wantLens := map[string]int{"a": 5, "b": 8, "c": 8, "d": 3, "e": 25}
	for name, want := range wantLens {
		f := a.FieldByName(name)
		arr, ok := f.Type.(*types.Array)
		if !ok || arr.Len != want {
			t.Errorf("field %s: type %v, want array of %d", name, f.Type, want)
		}
	}
	checkErr(t, `int main() { int n = 3; int a[n]; return 0; }`, "positive integer constant")
	checkErr(t, `int main() { int a[1/0]; return 0; }`, "positive integer constant")
}

func TestGlobalDeclarations(t *testing.T) {
	r := check(t, `
class Cfg { public: int port; Cfg(int p) : port(p) {} };
int limit = 10;
double rate = 0.5;
Cfg cfg(8080);
int table[4];
int main() { return limit + cfg.port + table[0] + (int)rate; }
`)
	if len(r.Program.Globals) != 4 {
		t.Fatalf("globals = %d, want 4", len(r.Program.Globals))
	}
	if r.Program.Info.VarCtors == nil {
		t.Fatal("VarCtors missing")
	}
}

func TestPointerArithmeticTyping(t *testing.T) {
	check(t, `
int main() {
	int a[10];
	int* p = &a[0];
	int* q = p + 3;
	q = 2 + q;
	q = q - 1;
	int d = q - p;
	p += 1;
	p -= 1;
	return d;
}`)
	checkErr(t, `int main() { int* p = nullptr; p = p + 1.5; return 0; }`, "invalid pointer arithmetic")
}
