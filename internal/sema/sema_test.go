package sema_test

import (
	"strings"
	"testing"

	"deadmembers/internal/frontend"
	"deadmembers/internal/types"
)

// check compiles src expecting success.
func check(t *testing.T, src string) *frontend.Result {
	t.Helper()
	r := frontend.Compile(frontend.Source{Name: "t.mcc", Text: src})
	if err := r.Err(); err != nil {
		t.Fatalf("unexpected errors:\n%v", err)
	}
	return r
}

// checkErr compiles src expecting an error containing want.
func checkErr(t *testing.T, src, want string) {
	t.Helper()
	r := frontend.Compile(frontend.Source{Name: "t.mcc", Text: src})
	err := r.Err()
	if err == nil {
		t.Fatalf("expected error containing %q, got success", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("expected error containing %q, got:\n%v", want, err)
	}
}

func TestTypeErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"arith on pointer", `int main() { int* p = nullptr; return p * 2; }`, "requires arithmetic operands"},
		{"assign mismatch", `class A { public: int x; }; int main() { A a; int i = 0; a = i; return 0; }`, "cannot assign"},
		{"bad return type", `class A { public: int x; }; A f() { return 3; } int main() { return 0; }`, "cannot return"},
		{"void function returns value", `void f() { return 1; } int main() { f(); return 0; }`, "return with value"},
		{"value return missing", `int f() { return; } int main() { return f(); }`, "return without value"},
		{"call non-function", `int main() { int x = 1; return x(); }`, "not a function"},
		{"deref non-pointer", `int main() { int x = 1; return *x; }`, "dereference non-pointer"},
		{"deref void ptr", `int main() { void* p = nullptr; return *p; }`, "cannot dereference void*"},
		{"index non-array", `int main() { int x = 1; return x[0]; }`, "cannot index"},
		{"bad condition", `class A { public: int x; }; int main() { A a; if (a) { } return 0; }`, "invalid condition"},
		{"not lvalue", `int main() { 5 = 3; return 0; }`, "not an lvalue"},
		{"address of rvalue", `int main() { int* p = &5; return 0; }`, "not an lvalue"},
		{"dup member", `class A { public: int x; int x; }; int main() { A a; return a.x; }`, "duplicate member"},
		{"dup method", `class A { public: int f() { return 1; } int f() { return 2; } }; int main() { return 0; }`, "duplicate method"},
		{"dup ctor arity", `class A { public: A(int a) {} A(int b) {} }; int main() { return 0; }`, "duplicate 1-argument constructor"},
		{"missing ctor arity", `class A { public: A(int a) {} }; int main() { A a; return 0; }`, "no 0-argument constructor"},
		{"incomplete field", `class Fwd; class A { public: Fwd f; }; int main() { return 0; }`, "incomplete type"},
		{"never defined", `class Fwd; int main() { return 0; }`, "never defined"},
		{"embedding cycle", `class A { public: A inner; }; int main() { return 0; }`, "embeds class"},
		{"inheritance cycle via forward", `class B; class A : public B { public: int x; }; class B : public A { public: int y; }; int main() { return 0; }`, "inheritance cycle"},
		{"main params", `int main(int argc) { return argc; }`, "main must take no parameters"},
		{"main return", `void main() { }`, "main must return int"},
		{"switch non-integral", `int main() { double d = 1.5; switch (d) { default: return 0; } return 1; }`, "must be integral"},
		{"two defaults", `int main() { switch (1) { default: return 0; default: return 1; } return 2; }`, "multiple default"},
		{"array negative", `int main() { int a[0]; return 0; }`, "must be a positive integer"},
		{"modulo double", `int main() { double d = 1.0; return 3 % d; }`, "integral operands"},
		{"unknown base ctor init", `class A { public: A() : nothere(3) {} int x; }; int main() { A a; return a.x; }`, "neither a member nor a base"},
		{"scalar init arity", `class A { public: int x; A() : x(1, 2) {} }; int main() { A a; return a.x; }`, "exactly one argument"},
		{"ptr-to-member wrong class", `class A { public: int x; }; class B { public: int y; }; int main() { int A::* pm = &A::x; B b; return b.*pm; }`, "applied to"},
		{"qualified ident as value", `class A { public: int x; }; int main() { return A::x; }`, "pointer to member"},
		{"call undefined prototype", `int f(int a); int main() { return f(1); }`, "no definition"},
		{"class param mismatch", `class A { public: int x; }; class B { public: int y; }; int f(A a) { return a.x; } int main() { B b; return f(b); }`, "cannot pass"},
		{"redeclared local", `int main() { int x = 1; int x = 2; return x; }`, "redeclaration"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			checkErr(t, tc.src, tc.want)
		})
	}
}

func TestAcceptedPrograms(t *testing.T) {
	cases := []struct{ name, src string }{
		{"shadowing in inner scope", `int main() { int x = 1; { int x = 2; x = x + 1; } return x; }`},
		{"pointer compare with zero", `int main() { int* p = 0; if (p == 0) { return 0; } return 1; }`},
		{"upcast implicit", `class A { public: int x; }; class B : public A { public: int y; }; int f(A* a) { return a->x; } int main() { B b; return f(&b); }`},
		{"memberptr base conversion", `class A { public: int x; }; class B : public A { public: int y; }; int main() { int A::* pa = &A::x; int B::* pb = pa; B b; return b.*pb; }`},
		{"void param list", `int f(void) { return 1; } int main() { return f(); }`},
		{"array parameter decays", `int sum(int a[], int n) { int s = 0; for (int i = 0; i < n; i++) { s += a[i]; } return s; }
			int main() { int v[3]; v[0]=1; v[1]=2; v[2]=3; return sum(&v[0], 3); }`},
		{"ternary pointer merge", `class A { public: int x; }; class B : public A { public: int y; };
			int main() { A a; B b; bool c = true; A* p = c ? &a : (A*)&b; return p->x; }`},
		{"const qualifiers", `int main() { const int x = 5; const int* p = &x; return *p; }`},
		{"class by value", `class V { public: int n; V(int a) : n(a) {} }; int get(V v) { return v.n; } int main() { V v(4); return get(v); }`},
		{"prototype then definition", `int f(int a); int f(int a) { return a; } int main() { return f(2); }`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			check(t, tc.src)
		})
	}
}

func TestInfoTables(t *testing.T) {
	r := check(t, `
class C {
public:
	int v;
	C(int a) : v(a) {}
	int get() { return v; }
};
int main() {
	C c(3);
	C* p = new C(5);
	int r = c.get() + p->v;
	delete p;
	return r;
}
`)
	info := r.Program.Info
	if len(info.FieldRefs) == 0 {
		t.Error("FieldRefs empty")
	}
	if len(info.MethodRefs) == 0 {
		t.Error("MethodRefs empty")
	}
	if len(info.NewCtors) != 1 {
		t.Errorf("NewCtors has %d entries, want 1", len(info.NewCtors))
	}
	if len(info.VarCtors) == 0 {
		t.Error("VarCtors empty")
	}
	if len(info.CtorInitFields) != 1 {
		t.Errorf("CtorInitFields has %d entries, want 1", len(info.CtorInitFields))
	}
	// Every expression the checker touched has a type.
	for e, typ := range info.Types {
		if typ == nil {
			t.Errorf("expression at %v has nil type", e.Pos())
		}
	}
	c := r.Program.ClassByName["C"]
	if c == nil || c.MethodByName("get").Return != types.IntType {
		t.Error("method signature resolution wrong")
	}
}

func TestVolatileTracked(t *testing.T) {
	r := check(t, `
class D { public: volatile int reg; int plain; };
int main() { D d; d.reg = 1; d.plain = 2; return 0; }
`)
	d := r.Program.ClassByName["D"]
	if !d.FieldByName("reg").Volatile {
		t.Error("volatile qualifier lost")
	}
	if d.FieldByName("plain").Volatile {
		t.Error("plain member marked volatile")
	}
}

func TestBuiltinSignatures(t *testing.T) {
	check(t, `
int main() {
	print(1);
	print(1.5);
	print('c');
	print(true);
	print("s");
	println();
	println(2);
	void* p = malloc(8);
	free(p);
	rand_seed(42);
	int r = rand_next(10);
	int c = clock();
	return r + c - r - c;
}
`)
	checkErr(t, `int main() { print(); return 0; }`, "exactly one argument")
	checkErr(t, `class A { public: int x; }; int main() { A a; print(a); return 0; }`, "cannot print")
	checkErr(t, `int main() { malloc(); return 0; }`, "expects 1 argument")
	checkErr(t, `int f() { return 1; } int g() { return 2; } int print(int x) { return x; } int main() { return f() + g(); }`, "conflicts with builtin")
}
