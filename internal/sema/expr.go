package sema

import (
	"deadmembers/internal/ast"
	"deadmembers/internal/hierarchy"
	"deadmembers/internal/token"
	"deadmembers/internal/types"
)

// checkExpr type-checks e, records its type in Info.Types, and returns it.
// Errors yield IntType so checking continues. Recursion is bounded by
// MaxExprDepth; subtrees past the limit are typed as int without descent.
func (c *Checker) checkExpr(e ast.Expr) types.Type {
	c.exprDepth++
	defer func() { c.exprDepth-- }()
	if c.exprDepth > MaxExprDepth {
		if !c.tooDeep {
			c.tooDeep = true
			c.diags.Errorf(e.Pos(), "expression nesting exceeds checker limit (%d)", MaxExprDepth)
		}
		c.info.Types[e] = types.IntType
		return types.IntType
	}
	t := c.checkExpr1(e)
	if t == nil {
		t = types.IntType
	}
	c.info.Types[e] = t
	return t
}

func (c *Checker) checkExpr1(e ast.Expr) types.Type {
	switch x := e.(type) {
	case *ast.IntLit:
		return types.IntType
	case *ast.FloatLit:
		return types.DoubleType
	case *ast.CharLit:
		return types.CharType
	case *ast.BoolLit:
		return types.BoolType
	case *ast.StringLit:
		return &types.Pointer{Elem: types.CharType}
	case *ast.NullLit:
		return &types.Pointer{Elem: types.VoidType}
	case *ast.Paren:
		return c.checkExpr(x.X)
	case *ast.ThisExpr:
		if c.cur == nil || c.cur.Owner == nil {
			c.diags.Errorf(x.Pos(), "this used outside a member function")
			return &types.Pointer{Elem: types.VoidType}
		}
		return &types.Pointer{Elem: c.cur.Owner}
	case *ast.Ident:
		return c.checkIdent(x, false)
	case *ast.QualifiedIdent:
		c.diags.Errorf(x.Pos(), "%s::%s can only be used as &%s::%s (pointer to member)",
			x.Class, x.Name, x.Class, x.Name)
		return types.IntType
	case *ast.Unary:
		return c.checkUnary(x)
	case *ast.Postfix:
		t := c.checkExpr(x.X)
		c.requireLvalue(x.X)
		if !isArith(t) && !types.IsPointer(t) {
			c.diags.Errorf(x.Pos(), "%s requires an arithmetic or pointer operand, have %s", x.Op, t)
		}
		return t
	case *ast.Binary:
		return c.checkBinary(x)
	case *ast.Assign:
		return c.checkAssign(x)
	case *ast.Cond:
		c.checkCond(x.C)
		t1 := c.checkExpr(x.Then)
		t2 := c.checkExpr(x.Else)
		return c.mergeCondTypes(x, t1, t2)
	case *ast.Member:
		return c.checkMember(x)
	case *ast.MemberPtrDeref:
		return c.checkMemberPtrDeref(x)
	case *ast.Index:
		xt := c.checkExpr(x.X)
		it := c.checkExpr(x.I)
		if !isIntegral(it) {
			c.diags.Errorf(x.I.Pos(), "array index must be integral, have %s", it)
		}
		if elem := types.Deref(xt); elem != nil {
			return elem
		}
		c.diags.Errorf(x.Pos(), "cannot index value of type %s", xt)
		return types.IntType
	case *ast.Call:
		return c.checkCall(x)
	case *ast.Cast:
		return c.checkCast(x)
	case *ast.New:
		return c.checkNew(x)
	case *ast.Delete:
		t := c.checkExpr(x.X)
		if !types.IsPointer(t) {
			c.diags.Errorf(x.Pos(), "delete requires a pointer operand, have %s", t)
		}
		return types.VoidType
	case *ast.Sizeof:
		if x.Type != nil {
			c.resolveType(x.Type)
		} else {
			c.checkExpr(x.X)
		}
		return types.IntType
	}
	c.diags.Errorf(e.Pos(), "unsupported expression")
	return types.IntType
}

// checkIdent resolves a plain identifier: local/param, global, implicit
// member of the enclosing class, or (when asCallee) a free function.
func (c *Checker) checkIdent(x *ast.Ident, asCallee bool) types.Type {
	if v := c.lookupVar(x.Name); v != nil {
		c.info.IdentVars[x] = v
		if v.Type == nil {
			return types.IntType
		}
		return v.Type
	}
	// Implicit this-> member access inside a method.
	if c.cur != nil && c.cur.Owner != nil {
		if f, err := c.graph.LookupField(c.cur.Owner, x.Name); err == nil {
			c.info.IdentFields[x] = f
			return f.Type
		} else if _, amb := err.(*hierarchy.AmbiguityError); amb {
			c.diags.Errorf(x.Pos(), "%v", err)
			return types.IntType
		}
		if m, err := c.graph.LookupMethod(c.cur.Owner, x.Name); err == nil {
			if asCallee {
				c.info.IdentMethods[x] = m
				return types.VoidType // callee placeholder; Call computes result
			}
			c.diags.Errorf(x.Pos(), "method %s used without call", m.QualifiedName())
			return types.IntType
		}
	}
	if asCallee {
		if f, ok := c.prog.FuncByName[x.Name]; ok {
			c.info.IdentFuncs[x] = f
			return types.VoidType
		}
	}
	c.diags.Errorf(x.Pos(), "undeclared identifier %s", x.Name)
	return types.IntType
}

func (c *Checker) checkUnary(x *ast.Unary) types.Type {
	// &C::m — pointer-to-member constant.
	if x.Op == token.Amp {
		if qi, ok := ast.Unparen(x.X).(*ast.QualifiedIdent); ok {
			cls, ok := c.prog.ClassByName[qi.Class]
			if !ok {
				c.diags.Errorf(qi.Pos(), "unknown class %s", qi.Class)
				return types.IntType
			}
			f, err := c.graph.LookupField(cls, qi.Name)
			if err != nil {
				c.diags.Errorf(qi.Pos(), "%v", err)
				return types.IntType
			}
			c.info.QualFieldRefs[qi] = f
			c.info.Types[qi] = f.Type
			return &types.MemberPointer{Class: cls, Elem: f.Type}
		}
		t := c.checkExpr(x.X)
		c.requireLvalue(x.X)
		return &types.Pointer{Elem: t}
	}

	t := c.checkExpr(x.X)
	switch x.Op {
	case token.Minus:
		if !isArith(t) {
			c.diags.Errorf(x.Pos(), "unary - requires an arithmetic operand, have %s", t)
			return types.IntType
		}
		return promote(t)
	case token.Not:
		if !isCondition(t) {
			c.diags.Errorf(x.Pos(), "! requires a scalar operand, have %s", t)
		}
		return types.BoolType
	case token.Tilde:
		if !isIntegral(t) {
			c.diags.Errorf(x.Pos(), "~ requires an integral operand, have %s", t)
		}
		return types.IntType
	case token.Star:
		if p, ok := t.(*types.Pointer); ok {
			if types.IsVoid(p.Elem) {
				c.diags.Errorf(x.Pos(), "cannot dereference void*")
				return types.IntType
			}
			return p.Elem
		}
		c.diags.Errorf(x.Pos(), "cannot dereference non-pointer type %s", t)
		return types.IntType
	case token.Inc, token.Dec:
		c.requireLvalue(x.X)
		if !isArith(t) && !types.IsPointer(t) {
			c.diags.Errorf(x.Pos(), "%s requires an arithmetic or pointer operand, have %s", x.Op, t)
		}
		return t
	}
	c.diags.Errorf(x.Pos(), "unsupported unary operator %s", x.Op)
	return types.IntType
}

// promote applies the usual arithmetic promotions: bool/char -> int.
func promote(t types.Type) types.Type {
	if b, ok := t.(*types.Basic); ok {
		switch b.Kind {
		case types.Bool, types.Char:
			return types.IntType
		}
	}
	return t
}

// arithResult merges two arithmetic operand types.
func arithResult(a, b types.Type) types.Type {
	if ab, ok := a.(*types.Basic); ok && ab.Kind == types.Double {
		return types.DoubleType
	}
	if bb, ok := b.(*types.Basic); ok && bb.Kind == types.Double {
		return types.DoubleType
	}
	return types.IntType
}

func (c *Checker) checkBinary(x *ast.Binary) types.Type {
	lt := c.checkExpr(x.X)
	rt := c.checkExpr(x.Y)
	switch x.Op {
	case token.Plus, token.Minus:
		// pointer arithmetic: ptr ± int, int + ptr, ptr - ptr.
		if p, ok := lt.(*types.Pointer); ok {
			if isIntegral(rt) {
				return p
			}
			if x.Op == token.Minus {
				if q, ok := rt.(*types.Pointer); ok && types.Identical(p.Elem, q.Elem) {
					return types.IntType
				}
			}
			c.diags.Errorf(x.Pos(), "invalid pointer arithmetic: %s %s %s", lt, x.Op, rt)
			return p
		}
		if q, ok := rt.(*types.Pointer); ok && x.Op == token.Plus && isIntegral(lt) {
			return q
		}
		fallthrough
	case token.Star, token.Slash:
		if !isArith(lt) || !isArith(rt) {
			c.diags.Errorf(x.Pos(), "operator %s requires arithmetic operands, have %s and %s", x.Op, lt, rt)
			return types.IntType
		}
		return arithResult(lt, rt)
	case token.Percent, token.Shl, token.Shr, token.Amp, token.Pipe, token.Caret:
		if !isIntegral(lt) || !isIntegral(rt) {
			c.diags.Errorf(x.Pos(), "operator %s requires integral operands, have %s and %s", x.Op, lt, rt)
		}
		return types.IntType
	case token.Eq, token.Ne:
		if c.comparable(lt, rt) {
			return types.BoolType
		}
		c.diags.Errorf(x.Pos(), "cannot compare %s and %s", lt, rt)
		return types.BoolType
	case token.Lt, token.Gt, token.Le, token.Ge:
		if (isArith(lt) && isArith(rt)) || (types.IsPointer(lt) && types.IsPointer(rt)) {
			return types.BoolType
		}
		c.diags.Errorf(x.Pos(), "cannot order %s and %s", lt, rt)
		return types.BoolType
	case token.AmpAmp, token.PipePipe:
		if !isCondition(lt) || !isCondition(rt) {
			c.diags.Errorf(x.Pos(), "operator %s requires scalar operands, have %s and %s", x.Op, lt, rt)
		}
		return types.BoolType
	}
	c.diags.Errorf(x.Pos(), "unsupported binary operator %s", x.Op)
	return types.IntType
}

// comparable reports whether == / != applies to the operand types.
func (c *Checker) comparable(a, b types.Type) bool {
	if isArith(a) && isArith(b) {
		return true
	}
	pa, aok := a.(*types.Pointer)
	pb, bok := b.(*types.Pointer)
	if aok && bok {
		if types.IsVoid(pa.Elem) || types.IsVoid(pb.Elem) || types.Identical(pa.Elem, pb.Elem) {
			return true
		}
		ca, cb := types.IsClass(pa.Elem), types.IsClass(pb.Elem)
		return ca != nil && cb != nil && c.graph.Related(ca, cb)
	}
	_, ma := a.(*types.MemberPointer)
	_, mb := b.(*types.MemberPointer)
	if ma && mb {
		return true
	}
	// Pointer-to-member against the null constant (nullptr or 0).
	if ma && (bok && types.IsVoid(pb.Elem) || isIntegral(b)) {
		return true
	}
	if mb && (aok && types.IsVoid(pa.Elem) || isIntegral(a)) {
		return true
	}
	// pointer vs literal 0 is normalized to NullLit (void*) by the parser
	// grammar only for `nullptr`; integer 0 comparisons fall under
	// assignability below.
	if aok && isIntegral(b) || bok && isIntegral(a) {
		return true
	}
	return false
}

func (c *Checker) checkAssign(x *ast.Assign) types.Type {
	lt := c.checkExpr(x.LHS)
	rt := c.checkExpr(x.RHS)
	c.requireLvalue(x.LHS)
	if x.Op == token.Assign {
		if !c.assignable(lt, rt, x.RHS) {
			c.diags.Errorf(x.Pos(), "cannot assign %s to %s", rt, lt)
		}
		return lt
	}
	// Compound assignment.
	base := x.Op.CompoundBase()
	if p, ok := lt.(*types.Pointer); ok && (base == token.Plus || base == token.Minus) && isIntegral(rt) {
		return p
	}
	if !isArith(lt) || !isArith(rt) {
		c.diags.Errorf(x.Pos(), "operator %s requires arithmetic operands, have %s and %s", x.Op, lt, rt)
	} else if base == token.Percent && (!isIntegral(lt) || !isIntegral(rt)) {
		c.diags.Errorf(x.Pos(), "operator %%= requires integral operands")
	}
	return lt
}

func (c *Checker) mergeCondTypes(x *ast.Cond, t1, t2 types.Type) types.Type {
	if types.Identical(t1, t2) {
		return t1
	}
	if isArith(t1) && isArith(t2) {
		return arithResult(t1, t2)
	}
	p1, ok1 := t1.(*types.Pointer)
	p2, ok2 := t2.(*types.Pointer)
	if ok1 && ok2 {
		if types.IsVoid(p1.Elem) {
			return p2
		}
		if types.IsVoid(p2.Elem) {
			return p1
		}
		c1, c2 := types.IsClass(p1.Elem), types.IsClass(p2.Elem)
		if c1 != nil && c2 != nil {
			if c.graph.IsBaseOf(c1, c2) {
				return p1
			}
			if c.graph.IsBaseOf(c2, c1) {
				return p2
			}
		}
	}
	c.diags.Errorf(x.Pos(), "incompatible operands of ?: (%s and %s)", t1, t2)
	return t1
}

// classOfAccess returns the class through which a member access with the
// given receiver type and arrow-ness operates, or nil with an error.
func (c *Checker) classOfAccess(x *ast.Member, recv types.Type) *types.Class {
	if x.Arrow {
		p, ok := recv.(*types.Pointer)
		if !ok {
			c.diags.Errorf(x.Pos(), "-> requires a pointer receiver, have %s", recv)
			return nil
		}
		recv = p.Elem
	}
	cls := types.IsClass(recv)
	if cls == nil {
		c.diags.Errorf(x.Pos(), "member access on non-class type %s", recv)
	}
	return cls
}

// checkMember resolves a data-member access X.m / X->m / X.B::m.
func (c *Checker) checkMember(x *ast.Member) types.Type {
	recv := c.checkExpr(x.X)
	cls := c.classOfAccess(x, recv)
	if cls == nil {
		return types.IntType
	}
	look := cls
	if x.Qual != "" {
		q, ok := c.prog.ClassByName[x.Qual]
		if !ok {
			c.diags.Errorf(x.Pos(), "unknown class %s in qualified access", x.Qual)
			return types.IntType
		}
		if q != cls && !c.graph.IsBaseOf(q, cls) {
			c.diags.Errorf(x.Pos(), "%s is not a base of %s", x.Qual, cls.Name)
			return types.IntType
		}
		look = q
	}
	f, err := c.graph.LookupField(look, x.Name)
	if err == nil {
		c.info.FieldRefs[x] = f
		return f.Type
	}
	if _, amb := err.(*hierarchy.AmbiguityError); amb {
		c.diags.Errorf(x.Pos(), "%v", err)
		return types.IntType
	}
	// Maybe a method used without a call (Call handles callee members
	// before checkExpr sees them).
	if m, merr := c.graph.LookupMethod(look, x.Name); merr == nil {
		c.diags.Errorf(x.Pos(), "method %s used without call", m.QualifiedName())
		return types.IntType
	}
	c.diags.Errorf(x.Pos(), "%v", err)
	return types.IntType
}

func (c *Checker) checkMemberPtrDeref(x *ast.MemberPtrDeref) types.Type {
	recv := c.checkExpr(x.X)
	pt := c.checkExpr(x.Ptr)
	if x.Arrow {
		p, ok := recv.(*types.Pointer)
		if !ok {
			c.diags.Errorf(x.Pos(), "->* requires a pointer receiver, have %s", recv)
			return types.IntType
		}
		recv = p.Elem
	}
	cls := types.IsClass(recv)
	if cls == nil {
		c.diags.Errorf(x.Pos(), ".* requires a class receiver, have %s", recv)
		return types.IntType
	}
	mp, ok := pt.(*types.MemberPointer)
	if !ok {
		c.diags.Errorf(x.Pos(), ".* requires a pointer-to-member operand, have %s", pt)
		return types.IntType
	}
	if mp.Class != cls && !c.graph.IsBaseOf(mp.Class, cls) {
		c.diags.Errorf(x.Pos(), "pointer to member of %s applied to %s", mp.Class.Name, cls.Name)
	}
	return mp.Elem
}

// checkCall resolves the callee and checks arguments.
func (c *Checker) checkCall(x *ast.Call) types.Type {
	if c.cur != nil {
		c.info.CallSites[x] = c.cur
	}
	switch fun := ast.Unparen(x.Fun).(type) {
	case *ast.Ident:
		c.checkIdent(fun, true)
		if m, ok := c.info.IdentMethods[fun]; ok {
			c.checkArgs(x, m, x.Args)
			return retType(m)
		}
		if f, ok := c.info.IdentFuncs[fun]; ok {
			if f.Builtin {
				return c.checkBuiltinCall(x, f)
			}
			if f.Body == nil {
				c.diags.Errorf(x.Pos(), "call to function %s which has no definition", f.Name)
			}
			c.checkArgs(x, f, x.Args)
			return retType(f)
		}
		// Variable of non-function type used as callee.
		if _, ok := c.info.IdentVars[fun]; ok {
			c.diags.Errorf(x.Pos(), "%s is not a function", fun.Name)
		}
		for _, a := range x.Args {
			c.checkExpr(a)
		}
		return types.IntType
	case *ast.Member:
		recv := c.checkExpr(fun.X)
		cls := c.classOfAccess(fun, recv)
		if cls == nil {
			for _, a := range x.Args {
				c.checkExpr(a)
			}
			return types.IntType
		}
		look := cls
		if fun.Qual != "" {
			q, ok := c.prog.ClassByName[fun.Qual]
			if !ok || (q != cls && !c.graph.IsBaseOf(q, cls)) {
				c.diags.Errorf(fun.Pos(), "invalid qualifier %s in method call", fun.Qual)
				return types.IntType
			}
			look = q
		}
		m, err := c.graph.LookupMethod(look, fun.Name)
		if err != nil {
			c.diags.Errorf(fun.Pos(), "%v", err)
			for _, a := range x.Args {
				c.checkExpr(a)
			}
			return types.IntType
		}
		c.info.MethodRefs[fun] = m
		c.info.Types[fun] = types.VoidType // callee placeholder
		c.checkArgs(x, m, x.Args)
		return retType(m)
	}
	c.diags.Errorf(x.Pos(), "called expression is not a function (MC++ has no function pointers)")
	for _, a := range x.Args {
		c.checkExpr(a)
	}
	return types.IntType
}

func retType(f *types.Func) types.Type {
	if f.Return == nil {
		return types.VoidType
	}
	return f.Return
}

func (c *Checker) checkArgs(node ast.Node, f *types.Func, args []ast.Expr) {
	if len(args) != len(f.Params) {
		c.diags.Errorf(node.Pos(), "%s expects %d argument(s), got %d", f.QualifiedName(), len(f.Params), len(args))
	}
	for i, a := range args {
		at := c.checkExpr(a)
		if i < len(f.Params) && f.Params[i].Type != nil {
			if !c.assignable(f.Params[i].Type, at, a) {
				c.diags.Errorf(a.Pos(), "argument %d of %s: cannot pass %s as %s",
					i+1, f.QualifiedName(), at, f.Params[i].Type)
			}
		}
	}
}

// checkBuiltinCall validates calls to the predeclared runtime functions.
func (c *Checker) checkBuiltinCall(x *ast.Call, f *types.Func) types.Type {
	switch f.Name {
	case "print", "println":
		if f.Name == "println" && len(x.Args) == 0 {
			return types.VoidType
		}
		if len(x.Args) != 1 {
			c.diags.Errorf(x.Pos(), "%s takes exactly one argument", f.Name)
		}
		for _, a := range x.Args {
			t := c.checkExpr(a)
			if !isCondition(t) { // any scalar: arithmetic, bool, pointer
				c.diags.Errorf(a.Pos(), "%s cannot print a value of type %s", f.Name, t)
			}
		}
		return types.VoidType
	default:
		c.checkArgs(x, f, x.Args)
		return retType(f)
	}
}

// checkCast resolves a C-style cast and classifies its safety per the
// paper: casts to a class (pointer) type from a base class (pointer) of
// that type — downcasts — and casts between unrelated class pointer types
// are potentially unsafe; Info.UnsafeCasts records the source class whose
// members the conservative analysis must mark fully live.
func (c *Checker) checkCast(x *ast.Cast) types.Type {
	target := c.resolveType(x.Type)
	src := c.checkExpr(x.X)

	tc := castClass(target)
	sc := castClass(src)
	switch {
	case tc != nil && sc != nil:
		if tc == sc || c.graph.IsBaseOf(tc, sc) {
			// Identity or upcast: always safe.
		} else {
			// Downcast or cross-cast: potentially unsafe (paper §3).
			c.info.UnsafeCasts[x] = sc
		}
	case tc != nil && sc == nil:
		// e.g. void* or int reinterpreted as class pointer: no source
		// class to mark; the paper's rule marks members of the *source*
		// type, which has none.
	}

	if !c.castAllowed(target, src) {
		c.diags.Errorf(x.Pos(), "invalid cast from %s to %s", src, target)
	}
	return target
}

// castClass extracts the class of a cast operand type: C or C*.
func castClass(t types.Type) *types.Class {
	if cls := types.IsClass(t); cls != nil {
		return cls
	}
	return types.PointeeClass(t)
}

func (c *Checker) castAllowed(dst, src types.Type) bool {
	if types.Identical(dst, src) {
		return true
	}
	if isArith(dst) && isArith(src) {
		return true
	}
	_, dp := dst.(*types.Pointer)
	_, sp := src.(*types.Pointer)
	if dp && sp {
		return true
	}
	if dp && isIntegral(src) || sp && isIntegral(dst) {
		return true // pointer <-> integer reinterpretation
	}
	return false
}

func (c *Checker) checkNew(x *ast.New) types.Type {
	t := c.resolveType(x.Type)
	if types.IsVoid(t) {
		c.diags.Errorf(x.Pos(), "cannot allocate void")
		return &types.Pointer{Elem: types.VoidType}
	}
	if x.Len != nil {
		lt := c.checkExpr(x.Len)
		if !isIntegral(lt) {
			c.diags.Errorf(x.Len.Pos(), "array size must be integral, have %s", lt)
		}
		if cls := types.IsClass(t); cls != nil {
			c.checkConstructible(x, cls, 0)
		}
		return &types.Pointer{Elem: t}
	}
	if cls := types.IsClass(t); cls != nil {
		ct := c.checkConstructible(x, cls, len(x.Args))
		c.info.NewCtors[x] = ct
		if ct != nil {
			c.checkArgs(x, ct, x.Args)
			return &types.Pointer{Elem: t}
		}
	}
	if len(x.Args) > 1 {
		c.diags.Errorf(x.Pos(), "scalar new takes at most one initializer")
	}
	for _, a := range x.Args {
		at := c.checkExpr(a)
		if types.IsClass(t) == nil && !c.assignable(t, at, a) {
			c.diags.Errorf(a.Pos(), "cannot initialize new %s with %s", t, at)
		}
	}
	return &types.Pointer{Elem: t}
}

// assignable reports whether a value of type src (from expression srcExpr,
// used to special-case the literal 0 null pointer constant) can be
// assigned to a location of type dst.
func (c *Checker) assignable(dst, src types.Type, srcExpr ast.Expr) bool {
	if types.Identical(dst, src) {
		return true
	}
	if isArith(dst) && isArith(src) {
		return true
	}
	dp, dok := dst.(*types.Pointer)
	if dok {
		// Null pointer constants: nullptr (typed void*) or literal 0.
		if sp, ok := src.(*types.Pointer); ok {
			if types.IsVoid(sp.Elem) || types.IsVoid(dp.Elem) {
				return true
			}
			if types.Identical(dp.Elem, sp.Elem) {
				return true
			}
			// Implicit upcast: D* -> B*.
			dc, sc := types.IsClass(dp.Elem), types.IsClass(sp.Elem)
			if dc != nil && sc != nil && c.graph.IsBaseOf(dc, sc) {
				return true
			}
			return false
		}
		if lit, ok := ast.Unparen(srcExpr).(*ast.IntLit); ok && lit.Value == 0 {
			return true
		}
		return false
	}
	dm, dok := dst.(*types.MemberPointer)
	if dok {
		sm, ok := src.(*types.MemberPointer)
		if !ok {
			if lit, isLit := ast.Unparen(srcExpr).(*ast.IntLit); isLit && lit.Value == 0 {
				return true
			}
			return false
		}
		// B::* converts to D::* when B is a base of D.
		return types.Identical(dm.Elem, sm.Elem) &&
			(dm.Class == sm.Class || c.graph.IsBaseOf(sm.Class, dm.Class))
	}
	return false
}

// requireLvalue reports an error when e cannot appear on the left of an
// assignment or under &.
func (c *Checker) requireLvalue(e ast.Expr) {
	if !c.isLvalue(e) {
		c.diags.Errorf(e.Pos(), "expression is not an lvalue")
	}
}

func (c *Checker) isLvalue(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		_, isVar := c.info.IdentVars[x]
		_, isField := c.info.IdentFields[x]
		return isVar || isField
	case *ast.Member, *ast.MemberPtrDeref, *ast.Index:
		return true
	case *ast.Unary:
		return x.Op == token.Star
	}
	return false
}
