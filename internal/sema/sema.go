// Package sema implements semantic analysis for MC++: symbol collection,
// class-hierarchy resolution, and type checking of all function bodies.
//
// Check produces a types.Program whose Info side tables bind every AST
// expression to its type and every member access to the data member or
// method selected by C++ member lookup — exactly the information the
// dead-data-member algorithm of the paper consumes.
package sema

import (
	"deadmembers/internal/ast"
	"deadmembers/internal/hierarchy"
	"deadmembers/internal/source"
	"deadmembers/internal/types"
)

// Checker holds the state of one semantic-analysis run.
type Checker struct {
	prog      *types.Program
	info      *types.Info
	graph     *hierarchy.Graph
	diags     *source.DiagnosticList
	scopes    []map[string]*types.Var
	cur       *types.Func // function currently being checked
	exprDepth int         // current checkExpr recursion depth
	tooDeep   bool        // depth-limit diagnostic already reported
}

// MaxExprDepth caps expression recursion in the checker. It sits above the
// parser's nesting limit, so it only trips for ASTs built directly rather
// than parsed — a second line of defense against stack overflow.
const MaxExprDepth = 2000

// Check runs semantic analysis over the parsed files. It always returns a
// program (possibly partial if diags records errors) and the hierarchy
// graph built from its classes.
func Check(fset *source.FileSet, files []*ast.File, diags *source.DiagnosticList) (*types.Program, *hierarchy.Graph) {
	c := &Checker{
		prog: &types.Program{
			FileSet:     fset,
			Files:       files,
			ClassByName: map[string]*types.Class{},
			FuncByName:  map[string]*types.Func{},
			Info:        types.NewInfo(),
		},
		diags: diags,
	}
	c.info = c.prog.Info
	c.declareBuiltins()
	c.collect()
	c.resolveClasses()
	c.graph = hierarchy.New(c.prog.Classes)
	c.resolveSignatures()
	c.checkBodies()
	return c.prog, c.graph
}

// Builtin runtime functions. Their argument checking is special-cased in
// checkCall; Params here document the canonical shape.
var builtinSpecs = []struct {
	name   string
	ret    types.Type
	params []types.Type
	// variadicScalar marks print/println, which accept any scalar operand.
	variadicScalar bool
}{
	{"print", types.VoidType, nil, true},
	{"println", types.VoidType, nil, true},
	{"malloc", &types.Pointer{Elem: types.VoidType}, []types.Type{types.IntType}, false},
	{"free", types.VoidType, []types.Type{&types.Pointer{Elem: types.VoidType}}, false},
	{"rand_seed", types.VoidType, []types.Type{types.IntType}, false},
	{"rand_next", types.IntType, []types.Type{types.IntType}, false},
	{"clock", types.IntType, nil, false},
	{"abort", types.VoidType, nil, false},
}

func (c *Checker) declareBuiltins() {
	for _, spec := range builtinSpecs {
		f := &types.Func{Name: spec.name, Return: spec.ret, Builtin: true}
		for i, pt := range spec.params {
			f.Params = append(f.Params, &types.Var{Name: "", Type: pt})
			_ = i
		}
		c.prog.Builtins = append(c.prog.Builtins, f)
		c.prog.FuncByName[spec.name] = f
	}
}

// collect registers every top-level name: classes (merging forward
// declarations), free functions, and globals.
func (c *Checker) collect() {
	for _, f := range c.prog.Files {
		for _, d := range f.Decls {
			switch decl := d.(type) {
			case *ast.ClassDecl:
				c.collectClass(decl)
			case *ast.FuncDecl:
				c.collectFunc(decl)
			case *ast.VarDecl:
				c.collectGlobal(decl)
			}
		}
	}
	if f, ok := c.prog.FuncByName["main"]; ok && !f.Builtin {
		c.prog.Main = f
	}
}

func (c *Checker) collectClass(decl *ast.ClassDecl) {
	existing := c.prog.ClassByName[decl.Name]
	if existing == nil {
		cls := &types.Class{
			Name: decl.Name,
			Kind: types.ClassKind(decl.Kind),
			Pos:  decl.Pos(),
		}
		c.prog.ClassByName[decl.Name] = cls
		c.prog.Classes = append(c.prog.Classes, cls)
		existing = cls
	}
	if !decl.Defined {
		return
	}
	if existing.Complete {
		c.diags.Errorf(decl.Pos(), "class %s redefined", decl.Name)
		return
	}
	existing.Complete = true
	existing.Decl = decl
	existing.Kind = types.ClassKind(decl.Kind)
}

func (c *Checker) collectFunc(decl *ast.FuncDecl) {
	if prev, ok := c.prog.FuncByName[decl.Name]; ok {
		if prev.Builtin {
			c.diags.Errorf(decl.Pos(), "function %s conflicts with builtin", decl.Name)
			return
		}
		if prev.Body == nil && decl.Body != nil {
			prev.Body = decl.Body
			prev.Decl = decl
			// Rebind parameter names from the defining declaration.
			prev.Params = nil
			for _, p := range decl.Params {
				prev.Params = append(prev.Params, &types.Var{Name: p.Name, Pos: p.Pos()})
			}
			return
		}
		if decl.Body != nil && prev.Body != nil {
			c.diags.Errorf(decl.Pos(), "function %s redefined", decl.Name)
		}
		return
	}
	f := &types.Func{Name: decl.Name, Pos: decl.Pos(), Body: decl.Body, Decl: decl}
	for _, p := range decl.Params {
		f.Params = append(f.Params, &types.Var{Name: p.Name, Pos: p.Pos()})
	}
	c.prog.FuncByName[decl.Name] = f
	c.prog.Functions = append(c.prog.Functions, f)
}

func (c *Checker) collectGlobal(decl *ast.VarDecl) {
	v := &types.Var{Name: decl.Name, Global: true, Pos: decl.Pos(), Decl: decl}
	c.prog.Globals = append(c.prog.Globals, v)
	c.info.VarObjects[decl] = v
}

// resolveClasses resolves base-class lists, detects inheritance cycles,
// enforces union restrictions, and populates fields and method shells.
func (c *Checker) resolveClasses() {
	for _, cls := range c.prog.Classes {
		if !cls.Complete {
			c.diags.Errorf(cls.Pos, "class %s declared but never defined", cls.Name)
			continue
		}
		decl := cls.Decl
		for i := range decl.Bases {
			bs := &decl.Bases[i]
			base := c.prog.ClassByName[bs.Name]
			if base == nil {
				c.diags.Errorf(bs.Pos(), "unknown base class %s", bs.Name)
				continue
			}
			if base == cls {
				c.diags.Errorf(bs.Pos(), "class %s cannot derive from itself", cls.Name)
				continue
			}
			if base.IsUnion() || cls.IsUnion() {
				c.diags.Errorf(bs.Pos(), "unions cannot participate in inheritance")
				continue
			}
			cls.Bases = append(cls.Bases, types.Base{Class: base, Virtual: bs.Virtual})
		}
	}
	c.breakInheritanceCycles()

	for _, cls := range c.prog.Classes {
		if !cls.Complete {
			continue
		}
		decl := cls.Decl
		for i, fd := range decl.Fields {
			ft := c.resolveType(fd.Type)
			if fc := types.IsClass(ft); fc != nil && !fc.Complete {
				c.diags.Errorf(fd.Pos(), "field %s has incomplete type %s", fd.Name, fc.Name)
			}
			if cls.FieldByName(fd.Name) != nil {
				c.diags.Errorf(fd.Pos(), "duplicate member %s in class %s", fd.Name, cls.Name)
				continue
			}
			fld := &types.Field{
				Name: fd.Name, Type: ft, Volatile: fd.Volatile,
				Owner: cls, Index: i, Pos: fd.Pos(), Decl: fd,
			}
			fld.Index = len(cls.Fields)
			cls.Fields = append(cls.Fields, fld)
		}
		for _, md := range decl.Methods {
			if md.IsDtor && cls.Dtor() != nil {
				c.diags.Errorf(md.Pos(), "class %s has multiple destructors", cls.Name)
				continue
			}
			if !md.IsCtor && !md.IsDtor && cls.MethodByName(md.Name) != nil {
				c.diags.Errorf(md.Pos(), "duplicate method %s in class %s (MC++ has no overloading)", md.Name, cls.Name)
				continue
			}
			if md.IsCtor && cls.CtorByArity(len(md.Params)) != nil {
				c.diags.Errorf(md.Pos(), "class %s has duplicate %d-argument constructor", cls.Name, len(md.Params))
				continue
			}
			if md.Virtual && cls.IsUnion() {
				c.diags.Errorf(md.Pos(), "union member function cannot be virtual")
			}
			m := &types.Func{
				Name: md.Name, Owner: cls, Virtual: md.Virtual, Pure: md.Pure,
				IsCtor: md.IsCtor, IsDtor: md.IsDtor, Pos: md.Pos(),
				Body: md.Body, Inits: md.Inits, Decl: md,
			}
			for _, p := range md.Params {
				m.Params = append(m.Params, &types.Var{Name: p.Name, Pos: p.Pos()})
			}
			cls.Methods = append(cls.Methods, m)
		}
	}

	// Check that field types do not embed a class inside itself (directly
	// or transitively), which would make layout infinite.
	c.checkEmbeddingCycles()
}

// breakInheritanceCycles detects cycles in the base-class graph and cuts
// them, reporting an error for each cut edge.
func (c *Checker) breakInheritanceCycles() {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[*types.Class]int{}
	var visit func(*types.Class)
	visit = func(cls *types.Class) {
		color[cls] = grey
		kept := cls.Bases[:0]
		for _, b := range cls.Bases {
			switch color[b.Class] {
			case grey:
				c.diags.Errorf(cls.Pos, "inheritance cycle: %s derives from %s", cls.Name, b.Class.Name)
				continue // drop the edge
			case white:
				visit(b.Class)
			}
			kept = append(kept, b)
		}
		cls.Bases = kept
		color[cls] = black
	}
	for _, cls := range c.prog.Classes {
		if color[cls] == white {
			visit(cls)
		}
	}
}

// checkEmbeddingCycles rejects class-typed members that embed the class in
// itself.
func (c *Checker) checkEmbeddingCycles() {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[*types.Class]int{}
	var visit func(*types.Class) bool
	visit = func(cls *types.Class) bool {
		color[cls] = grey
		ok := true
		check := func(t types.Type, pos source.Pos, what string) {
			// Only direct embedding (class or array-of-class) recurses;
			// pointers break cycles.
			for {
				if a, isArr := t.(*types.Array); isArr {
					t = a.Elem
					continue
				}
				break
			}
			if ec := types.IsClass(t); ec != nil {
				switch color[ec] {
				case grey:
					c.diags.Errorf(pos, "%s embeds class %s inside itself", what, ec.Name)
					ok = false
				case white:
					visit(ec)
				}
			}
		}
		for _, f := range cls.Fields {
			check(f.Type, f.Pos, "field "+f.QualifiedName())
		}
		for _, b := range cls.Bases {
			if color[b.Class] == white {
				visit(b.Class)
			}
		}
		color[cls] = black
		return ok
	}
	for _, cls := range c.prog.Classes {
		if color[cls] == white {
			visit(cls)
		}
	}
}

// resolveSignatures resolves parameter/return/global/field types that
// could not be resolved before all classes existed.
func (c *Checker) resolveSignatures() {
	for _, f := range c.prog.Functions {
		c.resolveFuncSignature(f)
	}
	for _, cls := range c.prog.Classes {
		for _, m := range cls.Methods {
			c.resolveFuncSignature(m)
		}
	}
	for _, g := range c.prog.Globals {
		t := c.resolveType(g.Decl.Type)
		g.Type = t
		c.info.VarTypes[g.Decl] = t
	}
}

func (c *Checker) resolveFuncSignature(f *types.Func) {
	var declParams []ast.Param
	var declRet ast.TypeExpr
	switch d := f.Decl.(type) {
	case *ast.FuncDecl:
		declParams, declRet = d.Params, d.Return
	case *ast.MethodDecl:
		declParams, declRet = d.Params, d.Return
	}
	for i, p := range declParams {
		if i < len(f.Params) {
			f.Params[i].Type = c.resolveType(p.Type)
		}
	}
	if declRet != nil {
		f.Return = c.resolveType(declRet)
	} else if !f.IsCtor && !f.IsDtor {
		f.Return = types.VoidType
	}
}

// resolveType converts a syntactic type to a semantic one, recording it in
// Info.TypeExprs. Errors yield IntType to keep checking going.
func (c *Checker) resolveType(te ast.TypeExpr) types.Type {
	t := c.resolveType1(te)
	c.info.TypeExprs[te] = t
	return t
}

func (c *Checker) resolveType1(te ast.TypeExpr) types.Type {
	switch x := te.(type) {
	case *ast.NamedType:
		switch x.Name {
		case "void":
			return types.VoidType
		case "bool":
			return types.BoolType
		case "char":
			return types.CharType
		case "int":
			return types.IntType
		case "double":
			return types.DoubleType
		}
		if cls, ok := c.prog.ClassByName[x.Name]; ok {
			return cls
		}
		c.diags.Errorf(x.Pos(), "unknown type %s", x.Name)
		return types.IntType
	case *ast.PointerType:
		return &types.Pointer{Elem: c.resolveType(x.Elem)}
	case *ast.ArrayType:
		n := c.constIntValue(x.Len)
		if n <= 0 {
			c.diags.Errorf(x.Pos(), "array length must be a positive integer constant")
			n = 1
		}
		return &types.Array{Elem: c.resolveType(x.Elem), Len: n}
	case *ast.MemberPointerType:
		cls, ok := c.prog.ClassByName[x.Class]
		if !ok {
			c.diags.Errorf(x.Pos(), "unknown class %s in member-pointer type", x.Class)
			return types.IntType
		}
		return &types.MemberPointer{Class: cls, Elem: c.resolveType(x.Elem)}
	case *ast.QualType:
		// cv-qualifiers do not change the semantic type in MC++;
		// volatility of fields is tracked on the Field object.
		return c.resolveType(x.Base)
	}
	c.diags.Errorf(te.Pos(), "unsupported type expression")
	return types.IntType
}

// constIntValue evaluates a constant integer expression (literals and
// basic arithmetic), returning -1 if not constant.
func (c *Checker) constIntValue(e ast.Expr) int {
	switch x := ast.Unparen(e).(type) {
	case *ast.IntLit:
		return int(x.Value)
	case *ast.CharLit:
		return int(x.Value)
	case *ast.Binary:
		l := c.constIntValue(x.X)
		r := c.constIntValue(x.Y)
		if l < 0 || r < 0 {
			return -1
		}
		switch x.Op.String() {
		case "+":
			return l + r
		case "-":
			return l - r
		case "*":
			return l * r
		case "/":
			if r != 0 {
				return l / r
			}
		}
	}
	return -1
}

// ---------------------------------------------------------------------------
// Scopes

func (c *Checker) pushScope() { c.scopes = append(c.scopes, map[string]*types.Var{}) }
func (c *Checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *Checker) declare(v *types.Var) {
	if len(c.scopes) == 0 {
		return
	}
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[v.Name]; dup {
		c.diags.Errorf(v.Pos, "redeclaration of %s in the same scope", v.Name)
	}
	top[v.Name] = v
}

func (c *Checker) lookupVar(name string) *types.Var {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if v, ok := c.scopes[i][name]; ok {
			return v
		}
	}
	for _, g := range c.prog.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}
