package sema_test

import (
	"strings"
	"testing"

	"deadmembers/internal/ast"
	"deadmembers/internal/sema"
	"deadmembers/internal/source"
)

// TestCheckerDepthGuard drives sema.Check with a hand-built AST deeper
// than the parser can ever produce. The checker must bail out with a
// diagnostic instead of overflowing the stack.
func TestCheckerDepthGuard(t *testing.T) {
	expr := ast.Expr(&ast.IntLit{Value: 1})
	for i := 0; i < sema.MaxExprDepth+100; i++ {
		expr = &ast.Paren{X: expr}
	}
	file := &ast.File{Name: "gen.mcc", Decls: []ast.Decl{
		&ast.FuncDecl{
			Name:   "main",
			Return: &ast.NamedType{Name: "int"},
			Body:   &ast.BlockStmt{Stmts: []ast.Stmt{&ast.ReturnStmt{X: expr}}},
		},
	}}
	fset := source.NewFileSet()
	fset.AddFile("gen.mcc", "")
	diags := source.NewDiagnosticList(fset)
	sema.Check(fset, []*ast.File{file}, diags)
	if !strings.Contains(diags.String(), "exceeds checker limit") {
		t.Fatalf("expected a checker depth diagnostic, got:\n%s", diags.String())
	}
}
