// Package source provides source-file abstractions shared by the MC++
// frontend: files, positions, spans, and diagnostics.
//
// Every token, AST node, and diagnostic produced by the toolchain carries a
// Pos that can be resolved against a File (or a FileSet) to a human-readable
// line/column location.
package source

import (
	"fmt"
	"sort"
	"strings"
)

// Pos is a compact absolute offset into a FileSet. A Pos of 0 (NoPos) means
// "no position". Positions within a file are 1-based offsets shifted by the
// file's base.
type Pos int

// NoPos is the zero Pos; it reports no location information.
const NoPos Pos = 0

// IsValid reports whether p carries position information.
func (p Pos) IsValid() bool { return p != NoPos }

// Span is a half-open source region [Start, End).
type Span struct {
	Start, End Pos
}

// IsValid reports whether the span carries position information.
func (s Span) IsValid() bool { return s.Start.IsValid() }

// File represents a single source file: its name, content, and the
// precomputed offsets of line starts, enabling O(log n) position lookup.
type File struct {
	name    string
	base    int // offset of the first byte of this file within its FileSet
	content string
	lines   []int // byte offsets of each line start, lines[0] == 0
}

// NewFile builds a File for the given name and content with base 1 (valid
// for standalone use outside a FileSet).
func NewFile(name, content string) *File {
	return newFileAt(name, content, 1)
}

func newFileAt(name, content string, base int) *File {
	f := &File{name: name, base: base, content: content}
	f.lines = append(f.lines, 0)
	for i := 0; i < len(content); i++ {
		if content[i] == '\n' {
			f.lines = append(f.lines, i+1)
		}
	}
	return f
}

// MaxFileSize bounds the size of a single source file the toolchain will
// lex and parse. Oversized files are registered (so positions resolve) but
// rejected with a diagnostic instead of being fed to the frontend.
const MaxFileSize = 16 << 20 // 16 MiB

// CheckSize returns a descriptive error when the file exceeds MaxFileSize.
func (f *File) CheckSize() error {
	if len(f.content) > MaxFileSize {
		return fmt.Errorf("file too large: %d bytes (limit %d)", len(f.content), MaxFileSize)
	}
	return nil
}

// Name returns the file's name as given to NewFile.
func (f *File) Name() string { return f.name }

// Content returns the full file content.
func (f *File) Content() string { return f.content }

// Base returns the Pos value corresponding to offset 0 in this file.
func (f *File) Base() int { return f.base }

// Size returns the length of the file content in bytes.
func (f *File) Size() int { return len(f.content) }

// Pos converts a byte offset within the file to an absolute Pos.
func (f *File) Pos(offset int) Pos { return Pos(f.base + offset) }

// Offset converts an absolute Pos back to a byte offset within the file.
func (f *File) Offset(p Pos) int { return int(p) - f.base }

// Contains reports whether p falls inside this file.
func (f *File) Contains(p Pos) bool {
	off := int(p) - f.base
	return off >= 0 && off <= len(f.content)
}

// Position resolves p to a line/column Location. Line and column are
// 1-based. If p is not valid or not in f, a zero Location is returned.
func (f *File) Position(p Pos) Location {
	if !p.IsValid() || !f.Contains(p) {
		return Location{}
	}
	off := f.Offset(p)
	// Binary search for the last line start <= off.
	i := sort.Search(len(f.lines), func(i int) bool { return f.lines[i] > off }) - 1
	return Location{File: f.name, Line: i + 1, Column: off - f.lines[i] + 1, Offset: off}
}

// LineCount returns the number of lines in the file. An empty file has one
// (empty) line.
func (f *File) LineCount() int { return len(f.lines) }

// Line returns the text of the 1-based line n without its trailing newline.
func (f *File) Line(n int) string {
	if n < 1 || n > len(f.lines) {
		return ""
	}
	start := f.lines[n-1]
	end := len(f.content)
	if n < len(f.lines) {
		end = f.lines[n] - 1 // drop the '\n'
	}
	return f.content[start:end]
}

// CodeLineCount returns the number of non-blank, non-comment-only lines,
// the "lines of code" measure used for Table 1. Both // and /* */ comments
// are recognized; a line consisting solely of comment text or whitespace is
// not counted.
func (f *File) CodeLineCount() int {
	count := 0
	inBlock := false
	for n := 1; n <= len(f.lines); n++ {
		line := f.Line(n)
		hasCode := false
		for i := 0; i < len(line); i++ {
			if inBlock {
				if line[i] == '*' && i+1 < len(line) && line[i+1] == '/' {
					inBlock = false
					i++
				}
				continue
			}
			c := line[i]
			switch {
			case c == ' ' || c == '\t' || c == '\r':
				// whitespace
			case c == '/' && i+1 < len(line) && line[i+1] == '/':
				i = len(line) // rest of line is comment
			case c == '/' && i+1 < len(line) && line[i+1] == '*':
				inBlock = true
				i++
			default:
				hasCode = true
			}
		}
		if hasCode {
			count++
		}
	}
	return count
}

// Location is a resolved human-readable source position.
type Location struct {
	File   string
	Line   int // 1-based
	Column int // 1-based
	Offset int // 0-based byte offset in the file
}

// IsValid reports whether the location was resolved.
func (l Location) IsValid() bool { return l.Line > 0 }

// String renders the location as "file:line:col".
func (l Location) String() string {
	if !l.IsValid() {
		return "-"
	}
	return fmt.Sprintf("%s:%d:%d", l.File, l.Line, l.Column)
}

// FileSet holds a collection of files with disjoint Pos ranges so that a
// single Pos identifies both the file and the offset.
type FileSet struct {
	files []*File
	next  int
}

// NewFileSet returns an empty file set. The first added file gets base 1.
func NewFileSet() *FileSet { return &FileSet{next: 1} }

// AddFile registers content under name and returns the resulting File.
func (fs *FileSet) AddFile(name, content string) *File {
	f := newFileAt(name, content, fs.next)
	fs.next += len(content) + 1
	fs.files = append(fs.files, f)
	return f
}

// Files returns the registered files in registration order.
func (fs *FileSet) Files() []*File { return fs.files }

// FileFor returns the file containing p, or nil.
func (fs *FileSet) FileFor(p Pos) *File {
	if !p.IsValid() {
		return nil
	}
	i := sort.Search(len(fs.files), func(i int) bool { return fs.files[i].base > int(p) }) - 1
	if i < 0 {
		return nil
	}
	if f := fs.files[i]; f.Contains(p) {
		return f
	}
	return nil
}

// Position resolves p against the files in the set.
func (fs *FileSet) Position(p Pos) Location {
	if f := fs.FileFor(p); f != nil {
		return f.Position(p)
	}
	return Location{}
}

// TotalCodeLines sums CodeLineCount over all files in the set.
func (fs *FileSet) TotalCodeLines() int {
	total := 0
	for _, f := range fs.files {
		total += f.CodeLineCount()
	}
	return total
}

// Severity classifies a diagnostic.
type Severity int

// Diagnostic severities, in increasing order of gravity.
const (
	Note Severity = iota
	Warning
	Error
)

// String returns the lower-case severity name.
func (s Severity) String() string {
	switch s {
	case Note:
		return "note"
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// Diagnostic is a single message attached to a source position.
type Diagnostic struct {
	Pos      Pos
	Severity Severity
	Message  string
}

// DiagnosticList accumulates diagnostics during a frontend phase.
type DiagnosticList struct {
	fset  *FileSet
	diags []Diagnostic
}

// NewDiagnosticList returns an empty list resolving positions against fset.
// fset may be nil, in which case positions render as offsets.
func NewDiagnosticList(fset *FileSet) *DiagnosticList {
	return &DiagnosticList{fset: fset}
}

// Add appends a diagnostic.
func (dl *DiagnosticList) Add(pos Pos, sev Severity, format string, args ...interface{}) {
	dl.diags = append(dl.diags, Diagnostic{Pos: pos, Severity: sev, Message: fmt.Sprintf(format, args...)})
}

// Errorf appends an Error-severity diagnostic.
func (dl *DiagnosticList) Errorf(pos Pos, format string, args ...interface{}) {
	dl.Add(pos, Error, format, args...)
}

// Warningf appends a Warning-severity diagnostic.
func (dl *DiagnosticList) Warningf(pos Pos, format string, args ...interface{}) {
	dl.Add(pos, Warning, format, args...)
}

// All returns the accumulated diagnostics in insertion order.
func (dl *DiagnosticList) All() []Diagnostic { return dl.diags }

// Extend appends every diagnostic of other, preserving order. It lets a
// phase that ran on per-file lists (e.g. parallel parsing) merge its
// output back into the program-wide list deterministically.
func (dl *DiagnosticList) Extend(other *DiagnosticList) {
	dl.diags = append(dl.diags, other.diags...)
}

// ErrorCount returns the number of Error-severity diagnostics.
func (dl *DiagnosticList) ErrorCount() int {
	n := 0
	for _, d := range dl.diags {
		if d.Severity == Error {
			n++
		}
	}
	return n
}

// HasErrors reports whether any Error-severity diagnostic was added.
func (dl *DiagnosticList) HasErrors() bool { return dl.ErrorCount() > 0 }

// Err returns an error summarizing the list if it contains errors, else nil.
func (dl *DiagnosticList) Err() error {
	if !dl.HasErrors() {
		return nil
	}
	return fmt.Errorf("%d error(s):\n%s", dl.ErrorCount(), dl.String())
}

// String renders all diagnostics, one per line.
func (dl *DiagnosticList) String() string {
	var b strings.Builder
	for _, d := range dl.diags {
		loc := "-"
		if dl.fset != nil {
			if l := dl.fset.Position(d.Pos); l.IsValid() {
				loc = l.String()
			}
		} else if d.Pos.IsValid() {
			loc = fmt.Sprintf("@%d", int(d.Pos))
		}
		fmt.Fprintf(&b, "%s: %s: %s\n", loc, d.Severity, d.Message)
	}
	return b.String()
}
