package source

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestFilePositions(t *testing.T) {
	f := NewFile("a.mcc", "abc\ndef\n\nxyz")
	cases := []struct {
		off       int
		line, col int
	}{
		{0, 1, 1}, {2, 1, 3}, {3, 1, 4}, {4, 2, 1}, {7, 2, 4},
		{8, 3, 1}, {9, 4, 1}, {11, 4, 3},
	}
	for _, tc := range cases {
		loc := f.Position(f.Pos(tc.off))
		if loc.Line != tc.line || loc.Column != tc.col {
			t.Errorf("offset %d: got %d:%d, want %d:%d", tc.off, loc.Line, loc.Column, tc.line, tc.col)
		}
	}
	if got := f.LineCount(); got != 4 {
		t.Errorf("line count = %d, want 4", got)
	}
	if got := f.Line(2); got != "def" {
		t.Errorf("line 2 = %q, want def", got)
	}
	if got := f.Line(3); got != "" {
		t.Errorf("line 3 = %q, want empty", got)
	}
}

func TestPositionRoundTrip(t *testing.T) {
	content := "line one\nsecond line here\n\nfourth"
	f := NewFile("t", content)
	check := func(off uint16) bool {
		o := int(off) % (len(content) + 1)
		p := f.Pos(o)
		return f.Offset(p) == o && f.Contains(p)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestInvalidPositions(t *testing.T) {
	f := NewFile("t", "abc")
	if loc := f.Position(NoPos); loc.IsValid() {
		t.Error("NoPos should resolve to invalid location")
	}
	if loc := f.Position(Pos(1000)); loc.IsValid() {
		t.Error("out-of-file Pos should resolve to invalid location")
	}
	if loc := (Location{}); loc.String() != "-" {
		t.Errorf("invalid location renders %q, want -", loc.String())
	}
}

func TestCodeLineCount(t *testing.T) {
	src := `// header comment
int x; // trailing comment

/* block
   comment spanning lines */
int y;
/* inline */ int z;

`
	f := NewFile("t", src)
	if got := f.CodeLineCount(); got != 3 {
		t.Errorf("code lines = %d, want 3 (x, y, z)", got)
	}
}

func TestFileSetMultipleFiles(t *testing.T) {
	fs := NewFileSet()
	a := fs.AddFile("a", "aaa")
	b := fs.AddFile("b", "bbbbb")
	if fs.FileFor(a.Pos(1)) != a {
		t.Error("pos in a resolved to wrong file")
	}
	if fs.FileFor(b.Pos(4)) != b {
		t.Error("pos in b resolved to wrong file")
	}
	loc := fs.Position(b.Pos(0))
	if loc.File != "b" || loc.Line != 1 || loc.Column != 1 {
		t.Errorf("unexpected location %v", loc)
	}
	if got := len(fs.Files()); got != 2 {
		t.Errorf("file count = %d", got)
	}
	if fs.FileFor(NoPos) != nil {
		t.Error("NoPos should not resolve to a file")
	}
}

func TestDiagnosticList(t *testing.T) {
	fs := NewFileSet()
	f := fs.AddFile("x.mcc", "hello\nworld")
	dl := NewDiagnosticList(fs)
	dl.Warningf(f.Pos(0), "watch out")
	if dl.HasErrors() {
		t.Error("warning should not count as error")
	}
	dl.Errorf(f.Pos(6), "bad %s", "thing")
	if !dl.HasErrors() || dl.ErrorCount() != 1 {
		t.Errorf("error count = %d, want 1", dl.ErrorCount())
	}
	out := dl.String()
	if !strings.Contains(out, "x.mcc:1:1: warning: watch out") {
		t.Errorf("missing warning line in %q", out)
	}
	if !strings.Contains(out, "x.mcc:2:1: error: bad thing") {
		t.Errorf("missing error line in %q", out)
	}
	if err := dl.Err(); err == nil || !strings.Contains(err.Error(), "1 error(s)") {
		t.Errorf("Err() = %v", err)
	}
	if len(dl.All()) != 2 {
		t.Errorf("All() length = %d", len(dl.All()))
	}
}

func TestSeverityString(t *testing.T) {
	if Note.String() != "note" || Warning.String() != "warning" || Error.String() != "error" {
		t.Error("severity names wrong")
	}
	if Severity(99).String() == "" {
		t.Error("unknown severity should still render")
	}
}

func TestTotalCodeLines(t *testing.T) {
	fs := NewFileSet()
	fs.AddFile("a", "int x;\n// only comment\nint y;")
	fs.AddFile("b", "int z;")
	if got := fs.TotalCodeLines(); got != 3 {
		t.Errorf("total code lines = %d, want 3", got)
	}
}

func TestCheckSizeBoundary(t *testing.T) {
	ok := NewFile("ok.mcc", strings.Repeat("x", MaxFileSize))
	if err := ok.CheckSize(); err != nil {
		t.Fatalf("file at the limit rejected: %v", err)
	}
	big := NewFile("big.mcc", strings.Repeat("x", MaxFileSize+1))
	if err := big.CheckSize(); err == nil {
		t.Fatal("file past the limit accepted")
	}
}
