// Package token defines the lexical token kinds of MC++, the C++ subset
// analyzed by this repository, together with keyword and operator tables
// shared by the lexer and parser.
package token

import "fmt"

// Kind identifies a lexical token class.
type Kind int

// Token kinds. Layout mirrors go/token: literals, operators, keywords.
const (
	Invalid Kind = iota
	EOF

	literalBeg
	Ident     // foo
	IntLit    // 123
	CharLit   // 'a'
	FloatLit  // 1.5
	StringLit // "abc"
	literalEnd

	operatorBeg
	Plus    // +
	Minus   // -
	Star    // *
	Slash   // /
	Percent // %

	Amp      // &
	Pipe     // |
	Caret    // ^
	Shl      // <<
	Shr      // >>
	AmpAmp   // &&
	PipePipe // ||
	Not      // !
	Tilde    // ~

	Assign        // =
	PlusAssign    // +=
	MinusAssign   // -=
	StarAssign    // *=
	SlashAssign   // /=
	PercentAssign // %=

	Eq // ==
	Ne // !=
	Lt // <
	Gt // >
	Le // <=
	Ge // >=

	Inc // ++
	Dec // --

	Arrow     // ->
	ArrowStar // ->*
	Dot       // .
	DotStar   // .*
	Scope     // ::

	Question  // ?
	Colon     // :
	Semicolon // ;
	Comma     // ,

	LParen   // (
	RParen   // )
	LBrace   // {
	RBrace   // }
	LBracket // [
	RBracket // ]
	operatorEnd

	keywordBeg
	KwBool
	KwBreak
	KwCase
	KwChar
	KwClass
	KwConst
	KwContinue
	KwDelete
	KwDefault
	KwDo
	KwDouble
	KwElse
	KwFalse
	KwFor
	KwIf
	KwInt
	KwNew
	KwNullptr
	KwPrivate
	KwProtected
	KwPublic
	KwReturn
	KwSizeof
	KwStatic
	KwStruct
	KwSwitch
	KwThis
	KwTrue
	KwUnion
	KwVirtual
	KwVoid
	KwVolatile
	KwWhile
	keywordEnd
)

var kindNames = map[Kind]string{
	Invalid: "INVALID",
	EOF:     "EOF",

	Ident:     "identifier",
	IntLit:    "integer literal",
	CharLit:   "character literal",
	FloatLit:  "floating literal",
	StringLit: "string literal",

	Plus:    "+",
	Minus:   "-",
	Star:    "*",
	Slash:   "/",
	Percent: "%",

	Amp:      "&",
	Pipe:     "|",
	Caret:    "^",
	Shl:      "<<",
	Shr:      ">>",
	AmpAmp:   "&&",
	PipePipe: "||",
	Not:      "!",
	Tilde:    "~",

	Assign:        "=",
	PlusAssign:    "+=",
	MinusAssign:   "-=",
	StarAssign:    "*=",
	SlashAssign:   "/=",
	PercentAssign: "%=",

	Eq: "==",
	Ne: "!=",
	Lt: "<",
	Gt: ">",
	Le: "<=",
	Ge: ">=",

	Inc: "++",
	Dec: "--",

	Arrow:     "->",
	ArrowStar: "->*",
	Dot:       ".",
	DotStar:   ".*",
	Scope:     "::",

	Question:  "?",
	Colon:     ":",
	Semicolon: ";",
	Comma:     ",",

	LParen:   "(",
	RParen:   ")",
	LBrace:   "{",
	RBrace:   "}",
	LBracket: "[",
	RBracket: "]",

	KwBool:      "bool",
	KwBreak:     "break",
	KwCase:      "case",
	KwChar:      "char",
	KwClass:     "class",
	KwConst:     "const",
	KwContinue:  "continue",
	KwDelete:    "delete",
	KwDefault:   "default",
	KwDo:        "do",
	KwDouble:    "double",
	KwElse:      "else",
	KwFalse:     "false",
	KwFor:       "for",
	KwIf:        "if",
	KwInt:       "int",
	KwNew:       "new",
	KwNullptr:   "nullptr",
	KwPrivate:   "private",
	KwProtected: "protected",
	KwPublic:    "public",
	KwReturn:    "return",
	KwSizeof:    "sizeof",
	KwStatic:    "static",
	KwStruct:    "struct",
	KwSwitch:    "switch",
	KwThis:      "this",
	KwTrue:      "true",
	KwUnion:     "union",
	KwVirtual:   "virtual",
	KwVoid:      "void",
	KwVolatile:  "volatile",
	KwWhile:     "while",
}

// String returns a printable name for the kind: the operator spelling,
// keyword text, or a description for literal classes.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// IsLiteral reports whether the kind is an identifier or literal.
func (k Kind) IsLiteral() bool { return literalBeg < k && k < literalEnd }

// IsOperator reports whether the kind is an operator or punctuation.
func (k Kind) IsOperator() bool { return operatorBeg < k && k < operatorEnd }

// IsKeyword reports whether the kind is a reserved word.
func (k Kind) IsKeyword() bool { return keywordBeg < k && k < keywordEnd }

// keywords maps spelling to keyword kind.
var keywords = func() map[string]Kind {
	m := make(map[string]Kind, keywordEnd-keywordBeg)
	for k := keywordBeg + 1; k < keywordEnd; k++ {
		m[kindNames[k]] = k
	}
	return m
}()

// LookupKeyword returns the keyword kind for ident, or Ident if it is not a
// reserved word.
func LookupKeyword(ident string) Kind {
	if k, ok := keywords[ident]; ok {
		return k
	}
	return Ident
}

// Keywords returns all keyword spellings (unordered).
func Keywords() []string {
	out := make([]string, 0, len(keywords))
	for s := range keywords {
		out = append(out, s)
	}
	return out
}

// Precedence returns the binary-operator precedence of k (higher binds
// tighter), or 0 if k is not a binary operator handled by precedence
// climbing. Assignment and ?: are handled separately by the parser.
func (k Kind) Precedence() int {
	switch k {
	case PipePipe:
		return 1
	case AmpAmp:
		return 2
	case Pipe:
		return 3
	case Caret:
		return 4
	case Amp:
		return 5
	case Eq, Ne:
		return 6
	case Lt, Gt, Le, Ge:
		return 7
	case Shl, Shr:
		return 8
	case Plus, Minus:
		return 9
	case Star, Slash, Percent:
		return 10
	}
	return 0
}

// IsAssignOp reports whether k is '=' or a compound assignment operator.
func (k Kind) IsAssignOp() bool {
	switch k {
	case Assign, PlusAssign, MinusAssign, StarAssign, SlashAssign, PercentAssign:
		return true
	}
	return false
}

// CompoundBase returns the underlying arithmetic operator of a compound
// assignment (e.g. PlusAssign -> Plus). For plain Assign it returns Invalid.
func (k Kind) CompoundBase() Kind {
	switch k {
	case PlusAssign:
		return Plus
	case MinusAssign:
		return Minus
	case StarAssign:
		return Star
	case SlashAssign:
		return Slash
	case PercentAssign:
		return Percent
	}
	return Invalid
}
