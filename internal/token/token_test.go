package token

import "testing"

func TestKindClasses(t *testing.T) {
	if !Ident.IsLiteral() || !IntLit.IsLiteral() || !StringLit.IsLiteral() {
		t.Error("literal kinds misclassified")
	}
	if !Plus.IsOperator() || !ArrowStar.IsOperator() || !Scope.IsOperator() {
		t.Error("operator kinds misclassified")
	}
	if !KwClass.IsKeyword() || !KwVolatile.IsKeyword() {
		t.Error("keyword kinds misclassified")
	}
	if EOF.IsLiteral() || EOF.IsOperator() || EOF.IsKeyword() {
		t.Error("EOF should belong to no class")
	}
}

func TestLookupKeyword(t *testing.T) {
	if LookupKeyword("class") != KwClass {
		t.Error("class should be a keyword")
	}
	if LookupKeyword("classy") != Ident {
		t.Error("classy should be an identifier")
	}
	for _, kw := range Keywords() {
		if LookupKeyword(kw) == Ident {
			t.Errorf("keyword %q not resolvable", kw)
		}
	}
	if n := len(Keywords()); n != int(keywordEnd-keywordBeg-1) {
		t.Errorf("keyword table has %d entries, want %d", n, keywordEnd-keywordBeg-1)
	}
}

func TestPrecedenceOrdering(t *testing.T) {
	// Multiplication binds tighter than addition, which binds tighter
	// than comparison, etc.
	chains := [][]Kind{
		{PipePipe, AmpAmp, Pipe, Caret, Amp, Eq, Lt, Shl, Plus, Star},
	}
	for _, chain := range chains {
		for i := 0; i+1 < len(chain); i++ {
			if chain[i].Precedence() >= chain[i+1].Precedence() {
				t.Errorf("%s (%d) should bind looser than %s (%d)",
					chain[i], chain[i].Precedence(), chain[i+1], chain[i+1].Precedence())
			}
		}
	}
	if Assign.Precedence() != 0 || Question.Precedence() != 0 {
		t.Error("assignment and ?: are not precedence-climbed")
	}
}

func TestAssignOps(t *testing.T) {
	for _, k := range []Kind{Assign, PlusAssign, MinusAssign, StarAssign, SlashAssign, PercentAssign} {
		if !k.IsAssignOp() {
			t.Errorf("%s should be an assignment operator", k)
		}
	}
	if Eq.IsAssignOp() {
		t.Error("== is not an assignment operator")
	}
	pairs := map[Kind]Kind{
		PlusAssign: Plus, MinusAssign: Minus, StarAssign: Star,
		SlashAssign: Slash, PercentAssign: Percent,
	}
	for compound, base := range pairs {
		if compound.CompoundBase() != base {
			t.Errorf("%s base = %s, want %s", compound, compound.CompoundBase(), base)
		}
	}
	if Assign.CompoundBase() != Invalid {
		t.Error("plain = has no compound base")
	}
}

func TestStringRendering(t *testing.T) {
	cases := map[Kind]string{
		ArrowStar: "->*", DotStar: ".*", Scope: "::", Shl: "<<",
		KwSizeof: "sizeof", Ident: "identifier",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d renders %q, want %q", int(k), k.String(), want)
		}
	}
	if Kind(9999).String() == "" {
		t.Error("unknown kind should render a placeholder")
	}
}
