package lexer

import (
	"strings"
	"testing"
	"testing/quick"

	"deadmembers/internal/source"
	"deadmembers/internal/token"
)

func scan(t *testing.T, src string) ([]Token, *source.DiagnosticList) {
	t.Helper()
	fset := source.NewFileSet()
	f := fset.AddFile("t.mcc", src)
	diags := source.NewDiagnosticList(fset)
	return ScanAll(f, diags), diags
}

func kinds(toks []Token) []token.Kind {
	var out []token.Kind
	for _, tk := range toks {
		out = append(out, tk.Kind)
	}
	return out
}

func expectKinds(t *testing.T, src string, want ...token.Kind) {
	t.Helper()
	toks, diags := scan(t, src)
	if diags.HasErrors() {
		t.Fatalf("%q: unexpected errors:\n%v", src, diags)
	}
	want = append(want, token.EOF)
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("%q: got %v, want %v", src, got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%q: token %d = %s, want %s", src, i, got[i], want[i])
		}
	}
}

func TestOperators(t *testing.T) {
	expectKinds(t, "->* -> .* . :: << >> <= >= == != && || ++ -- += -= *= /= %=",
		token.ArrowStar, token.Arrow, token.DotStar, token.Dot, token.Scope,
		token.Shl, token.Shr, token.Le, token.Ge, token.Eq, token.Ne,
		token.AmpAmp, token.PipePipe, token.Inc, token.Dec,
		token.PlusAssign, token.MinusAssign, token.StarAssign,
		token.SlashAssign, token.PercentAssign)
}

func TestMaximalMunch(t *testing.T) {
	// a->*b must not lex as a -> * b.
	expectKinds(t, "a->*b", token.Ident, token.ArrowStar, token.Ident)
	// a--- is -- then -.
	expectKinds(t, "a---b", token.Ident, token.Dec, token.Minus, token.Ident)
	// a.*b is one operator; a . b is not.
	expectKinds(t, "x.*pm", token.Ident, token.DotStar, token.Ident)
}

func TestKeywordsVsIdents(t *testing.T) {
	expectKinds(t, "class classes virtual virtually",
		token.KwClass, token.Ident, token.KwVirtual, token.Ident)
}

func TestNumbers(t *testing.T) {
	expectKinds(t, "0 42 0x1F 1.5 2e10 3.25e-2 7", token.IntLit, token.IntLit,
		token.IntLit, token.FloatLit, token.FloatLit, token.FloatLit, token.IntLit)
	// Member access on an integer-ish context: 1.f is "1" "." "f" since f
	// is not a digit.
	expectKinds(t, "x.mn1", token.Ident, token.Dot, token.Ident)
}

func TestCharAndStringLiterals(t *testing.T) {
	toks, diags := scan(t, `'a' '\n' '\'' "hi" "a\"b" "tab\t"`)
	if diags.HasErrors() {
		t.Fatalf("unexpected errors:\n%v", diags)
	}
	if UnquoteChar(toks[0].Text) != 'a' || UnquoteChar(toks[1].Text) != '\n' || UnquoteChar(toks[2].Text) != '\'' {
		t.Error("char literal decoding wrong")
	}
	if UnquoteString(toks[3].Text) != "hi" || UnquoteString(toks[4].Text) != `a"b` || UnquoteString(toks[5].Text) != "tab\t" {
		t.Error("string literal decoding wrong")
	}
}

func TestComments(t *testing.T) {
	expectKinds(t, "a // line comment\nb /* block */ c /* multi\nline */ d",
		token.Ident, token.Ident, token.Ident, token.Ident)
}

func TestLexErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{"/* never closed", "unterminated block comment"},
		{`"no close`, "unterminated string"},
		{"'a", "unterminated character"},
		{"@", "unexpected character"},
		{`"\q"`, "unknown escape"},
	}
	for _, tc := range cases {
		_, diags := scan(t, tc.src)
		if !diags.HasErrors() || !strings.Contains(diags.String(), tc.want) {
			t.Errorf("%q: want error containing %q, got:\n%v", tc.src, tc.want, diags)
		}
	}
}

func TestPositions(t *testing.T) {
	fset := source.NewFileSet()
	f := fset.AddFile("t.mcc", "ab\n  cd")
	diags := source.NewDiagnosticList(fset)
	toks := ScanAll(f, diags)
	loc := fset.Position(toks[1].Pos)
	if loc.Line != 2 || loc.Column != 3 {
		t.Errorf("cd at %d:%d, want 2:3", loc.Line, loc.Column)
	}
}

// TestRoundTripProperty: joining token texts with spaces and re-lexing
// yields the same token kind sequence (whitespace-insensitivity).
func TestRoundTripProperty(t *testing.T) {
	base := `class C : public A { int x; void f() { x = x + 1; } };
int main() { C c; c.f(); return c.x ->* . :: 'q' "s" 1.5e3 0x2A; }`
	check := func(seed uint8) bool {
		// Insert random extra whitespace between tokens.
		fset := source.NewFileSet()
		f := fset.AddFile("a", base)
		d := source.NewDiagnosticList(fset)
		orig := ScanAll(f, d)

		var b strings.Builder
		sep := []string{" ", "\n", "\t", "  ", " \n "}
		for i, tk := range orig {
			if tk.Kind == token.EOF {
				break
			}
			b.WriteString(tk.Text)
			b.WriteString(sep[(int(seed)+i)%len(sep)])
		}
		fset2 := source.NewFileSet()
		f2 := fset2.AddFile("b", b.String())
		d2 := source.NewDiagnosticList(fset2)
		again := ScanAll(f2, d2)
		if len(orig) != len(again) {
			return false
		}
		for i := range orig {
			if orig[i].Kind != again[i].Kind || orig[i].Text != again[i].Text {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

// TestNoCrashOnArbitraryInput: the lexer must terminate and never panic
// on arbitrary byte strings.
func TestNoCrashOnArbitraryInput(t *testing.T) {
	check := func(data []byte) bool {
		fset := source.NewFileSet()
		f := fset.AddFile("fuzz", string(data))
		diags := source.NewDiagnosticList(fset)
		toks := ScanAll(f, diags)
		return len(toks) >= 1 && toks[len(toks)-1].Kind == token.EOF
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestUnquoteEdgeCases(t *testing.T) {
	if UnquoteChar("x") != 0 {
		t.Error("malformed char literal should decode to 0")
	}
	if UnquoteString("x") != "x" {
		t.Error("malformed string literal should pass through")
	}
	if UnquoteString(`"\0"`) != "\x00" {
		t.Error(`\0 should decode to NUL`)
	}
}
