// Package lexer implements the hand-written scanner for MC++ source text.
//
// The scanner produces a stream of tokens with positions resolvable against
// the source.File it was created from. It recognizes line and block
// comments, character/string escapes, and all multi-character operators of
// the subset, including the C++-specific `->*`, `.*` and `::`.
package lexer

import (
	"deadmembers/internal/source"
	"deadmembers/internal/token"
)

// Token is a single lexical token with its source span and raw text.
type Token struct {
	Kind token.Kind
	Text string
	Pos  source.Pos
	End  source.Pos
}

// String renders the token for debugging.
func (t Token) String() string {
	if t.Kind.IsLiteral() {
		return t.Kind.String() + " " + t.Text
	}
	return t.Kind.String()
}

// Lexer scans a single source file.
type Lexer struct {
	file  *source.File
	src   string
	off   int
	diags *source.DiagnosticList
}

// New returns a Lexer over file, reporting malformed input to diags.
func New(file *source.File, diags *source.DiagnosticList) *Lexer {
	return &Lexer{file: file, src: file.Content(), diags: diags}
}

// ScanAll scans the entire file and returns all tokens, ending with EOF.
func ScanAll(file *source.File, diags *source.DiagnosticList) []Token {
	lx := New(file, diags)
	var out []Token
	for {
		t := lx.Next()
		out = append(out, t)
		if t.Kind == token.EOF {
			return out
		}
	}
}

func (l *Lexer) pos() source.Pos { return l.file.Pos(l.off) }

func (l *Lexer) peek() byte {
	if l.off < len(l.src) {
		return l.src[l.off]
	}
	return 0
}

func (l *Lexer) peekAt(n int) byte {
	if l.off+n < len(l.src) {
		return l.src[l.off+n]
	}
	return 0
}

// skipTrivia consumes whitespace and comments. Unterminated block comments
// are reported once and consume the rest of the file.
func (l *Lexer) skipTrivia() {
	for l.off < len(l.src) {
		c := l.src[l.off]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.off++
		case c == '/' && l.peekAt(1) == '/':
			for l.off < len(l.src) && l.src[l.off] != '\n' {
				l.off++
			}
		case c == '/' && l.peekAt(1) == '*':
			start := l.pos()
			l.off += 2
			closed := false
			for l.off < len(l.src) {
				if l.src[l.off] == '*' && l.peekAt(1) == '/' {
					l.off += 2
					closed = true
					break
				}
				l.off++
			}
			if !closed {
				l.diags.Errorf(start, "unterminated block comment")
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next scans and returns the next token.
func (l *Lexer) Next() Token {
	l.skipTrivia()
	start := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: token.EOF, Pos: start, End: start}
	}
	c := l.src[l.off]
	switch {
	case isIdentStart(c):
		return l.scanIdent(start)
	case isDigit(c):
		return l.scanNumber(start)
	case c == '\'':
		return l.scanChar(start)
	case c == '"':
		return l.scanString(start)
	}
	return l.scanOperator(start)
}

func (l *Lexer) scanIdent(start source.Pos) Token {
	begin := l.off
	for l.off < len(l.src) && isIdentCont(l.src[l.off]) {
		l.off++
	}
	text := l.src[begin:l.off]
	return Token{Kind: token.LookupKeyword(text), Text: text, Pos: start, End: l.pos()}
}

func (l *Lexer) scanNumber(start source.Pos) Token {
	begin := l.off
	kind := token.IntLit
	if l.peek() == '0' && (l.peekAt(1) == 'x' || l.peekAt(1) == 'X') {
		l.off += 2
		for l.off < len(l.src) && isHexDigit(l.src[l.off]) {
			l.off++
		}
		if l.off == begin+2 {
			l.diags.Errorf(start, "malformed hexadecimal literal")
		}
		return Token{Kind: kind, Text: l.src[begin:l.off], Pos: start, End: l.pos()}
	}
	for l.off < len(l.src) && isDigit(l.src[l.off]) {
		l.off++
	}
	if l.peek() == '.' && isDigit(l.peekAt(1)) {
		kind = token.FloatLit
		l.off++
		for l.off < len(l.src) && isDigit(l.src[l.off]) {
			l.off++
		}
	}
	if l.peek() == 'e' || l.peek() == 'E' {
		next := l.peekAt(1)
		if isDigit(next) || ((next == '+' || next == '-') && isDigit(l.peekAt(2))) {
			kind = token.FloatLit
			l.off += 2
			for l.off < len(l.src) && isDigit(l.src[l.off]) {
				l.off++
			}
		}
	}
	return Token{Kind: kind, Text: l.src[begin:l.off], Pos: start, End: l.pos()}
}

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// scanEscape consumes one (possibly escaped) character of a char/string
// literal body and returns false on malformed input.
func (l *Lexer) scanEscape(start source.Pos) bool {
	if l.peek() != '\\' {
		l.off++
		return true
	}
	l.off++
	switch l.peek() {
	case 'n', 't', 'r', '0', '\\', '\'', '"':
		l.off++
		return true
	}
	if l.off >= len(l.src) {
		l.diags.Errorf(start, "backslash at end of input")
		return false
	}
	l.diags.Errorf(start, "unknown escape sequence \\%c", l.peek())
	l.off++
	return false
}

func (l *Lexer) scanChar(start source.Pos) Token {
	begin := l.off
	l.off++ // opening quote
	if l.off >= len(l.src) {
		l.diags.Errorf(start, "unterminated character literal")
		return Token{Kind: token.CharLit, Text: l.src[begin:l.off], Pos: start, End: l.pos()}
	}
	l.scanEscape(start)
	if l.peek() == '\'' {
		l.off++
	} else {
		l.diags.Errorf(start, "unterminated character literal")
	}
	return Token{Kind: token.CharLit, Text: l.src[begin:l.off], Pos: start, End: l.pos()}
}

func (l *Lexer) scanString(start source.Pos) Token {
	begin := l.off
	l.off++ // opening quote
	for l.off < len(l.src) && l.src[l.off] != '"' && l.src[l.off] != '\n' {
		l.scanEscape(start)
	}
	if l.peek() == '"' {
		l.off++
	} else {
		l.diags.Errorf(start, "unterminated string literal")
	}
	return Token{Kind: token.StringLit, Text: l.src[begin:l.off], Pos: start, End: l.pos()}
}

// operator2 and operator3 map multi-byte operator spellings.
type opEntry struct {
	text string
	kind token.Kind
}

var operators3 = []opEntry{
	{"->*", token.ArrowStar},
}

var operators2 = []opEntry{
	{"->", token.Arrow},
	{".*", token.DotStar},
	{"::", token.Scope},
	{"<<", token.Shl},
	{">>", token.Shr},
	{"&&", token.AmpAmp},
	{"||", token.PipePipe},
	{"==", token.Eq},
	{"!=", token.Ne},
	{"<=", token.Le},
	{">=", token.Ge},
	{"++", token.Inc},
	{"--", token.Dec},
	{"+=", token.PlusAssign},
	{"-=", token.MinusAssign},
	{"*=", token.StarAssign},
	{"/=", token.SlashAssign},
	{"%=", token.PercentAssign},
}

var operators1 = map[byte]token.Kind{
	'+': token.Plus, '-': token.Minus, '*': token.Star, '/': token.Slash,
	'%': token.Percent, '&': token.Amp, '|': token.Pipe, '^': token.Caret,
	'!': token.Not, '~': token.Tilde, '=': token.Assign, '<': token.Lt,
	'>': token.Gt, '.': token.Dot, '?': token.Question, ':': token.Colon,
	';': token.Semicolon, ',': token.Comma, '(': token.LParen,
	')': token.RParen, '{': token.LBrace, '}': token.RBrace,
	'[': token.LBracket, ']': token.RBracket,
}

func (l *Lexer) scanOperator(start source.Pos) Token {
	rest := l.src[l.off:]
	for _, op := range operators3 {
		if hasPrefix(rest, op.text) {
			l.off += 3
			return Token{Kind: op.kind, Text: op.text, Pos: start, End: l.pos()}
		}
	}
	for _, op := range operators2 {
		if hasPrefix(rest, op.text) {
			l.off += 2
			return Token{Kind: op.kind, Text: op.text, Pos: start, End: l.pos()}
		}
	}
	c := l.src[l.off]
	if k, ok := operators1[c]; ok {
		l.off++
		return Token{Kind: k, Text: string(c), Pos: start, End: l.pos()}
	}
	l.diags.Errorf(start, "unexpected character %q", string(c))
	l.off++
	return Token{Kind: token.Invalid, Text: string(c), Pos: start, End: l.pos()}
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}

// UnquoteChar decodes the body of a character literal token (including the
// surrounding quotes) to its byte value. Malformed input yields 0.
func UnquoteChar(text string) byte {
	if len(text) < 3 || text[0] != '\'' {
		return 0
	}
	body := text[1 : len(text)-1]
	return unescapeOne(body)
}

// UnquoteString decodes the body of a string literal token (including the
// surrounding quotes), resolving escape sequences.
func UnquoteString(text string) string {
	if len(text) < 2 || text[0] != '"' {
		return text
	}
	body := text[1 : len(text)-1]
	out := make([]byte, 0, len(body))
	for i := 0; i < len(body); i++ {
		if body[i] == '\\' && i+1 < len(body) {
			out = append(out, unescapeOne(body[i:i+2]))
			i++
		} else {
			out = append(out, body[i])
		}
	}
	return string(out)
}

func unescapeOne(s string) byte {
	if len(s) == 0 {
		return 0
	}
	if s[0] != '\\' {
		return s[0]
	}
	if len(s) < 2 {
		return 0
	}
	switch s[1] {
	case 'n':
		return '\n'
	case 't':
		return '\t'
	case 'r':
		return '\r'
	case '0':
		return 0
	case '\\':
		return '\\'
	case '\'':
		return '\''
	case '"':
		return '"'
	}
	return s[1]
}
