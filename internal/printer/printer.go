// Package printer renders MC++ ASTs back to source text.
//
// It is the output stage of the dead-member elimination transform
// (internal/strip) and is also useful for debugging the frontend. The
// output is canonical MC++: it re-parses to an equivalent tree (verified
// by round-trip tests), though comments and original layout are not
// preserved.
package printer

import (
	"fmt"
	"strconv"
	"strings"

	"deadmembers/internal/ast"
)

// Fprint renders a file to a string.
func Print(file *ast.File) string {
	p := &printer{}
	p.file(file)
	return p.b.String()
}

// PrintExpr renders a single expression (exported for diagnostics).
func PrintExpr(e ast.Expr) string {
	p := &printer{}
	p.expr(e)
	return p.b.String()
}

type printer struct {
	b      strings.Builder
	indent int
}

func (p *printer) nl() {
	p.b.WriteByte('\n')
	for i := 0; i < p.indent; i++ {
		p.b.WriteByte('\t')
	}
}

func (p *printer) ws(s string) { p.b.WriteString(s) }

func (p *printer) file(f *ast.File) {
	for i, d := range f.Decls {
		if i > 0 {
			p.nl()
		}
		p.decl(d)
		p.nl()
	}
}

func (p *printer) decl(d ast.Decl) {
	switch x := d.(type) {
	case *ast.ClassDecl:
		p.classDecl(x)
	case *ast.FuncDecl:
		p.typeExpr(x.Return)
		p.ws(" ")
		p.ws(x.Name)
		p.params(x.Params)
		if x.Body == nil {
			p.ws(";")
			return
		}
		p.ws(" ")
		p.block(x.Body)
	case *ast.VarDecl:
		p.varDecl(x)
		p.ws(";")
	}
}

func (p *printer) classDecl(c *ast.ClassDecl) {
	p.ws(c.Kind.String())
	p.ws(" ")
	p.ws(c.Name)
	if !c.Defined {
		p.ws(";")
		return
	}
	for i, b := range c.Bases {
		if i == 0 {
			p.ws(" : ")
		} else {
			p.ws(", ")
		}
		if b.Virtual {
			p.ws("virtual ")
		}
		p.ws("public ")
		p.ws(b.Name)
	}
	p.ws(" {")
	p.indent++
	if len(c.Fields) > 0 || len(c.Methods) > 0 {
		p.nl()
		p.ws("public:")
	}
	for _, f := range c.Fields {
		p.nl()
		if f.Volatile {
			p.ws("volatile ")
		}
		p.fieldType(f)
		p.ws(";")
	}
	for _, m := range c.Methods {
		p.nl()
		p.method(c, m)
	}
	p.indent--
	p.nl()
	p.ws("};")
}

// fieldType prints `T name` or `T name[n]` for array fields.
func (p *printer) fieldType(f *ast.FieldDecl) {
	t := f.Type
	var arr *ast.ArrayType
	if a, ok := t.(*ast.ArrayType); ok {
		arr = a
		t = a.Elem
	}
	p.typeExpr(t)
	p.ws(" ")
	p.ws(f.Name)
	if arr != nil {
		p.ws("[")
		p.expr(arr.Len)
		p.ws("]")
	}
}

func (p *printer) method(c *ast.ClassDecl, m *ast.MethodDecl) {
	if m.Virtual {
		p.ws("virtual ")
	}
	switch {
	case m.IsCtor:
		p.ws(c.Name)
	case m.IsDtor:
		p.ws("~")
		p.ws(c.Name)
	default:
		p.typeExpr(m.Return)
		p.ws(" ")
		p.ws(m.Name)
	}
	p.params(m.Params)
	if len(m.Inits) > 0 {
		p.ws(" : ")
		for i := range m.Inits {
			if i > 0 {
				p.ws(", ")
			}
			init := &m.Inits[i]
			p.ws(init.Name)
			p.ws("(")
			p.exprList(init.Args)
			p.ws(")")
		}
	}
	switch {
	case m.Pure:
		p.ws(" = 0;")
	case m.Body == nil:
		p.ws(";")
	default:
		p.ws(" ")
		p.block(m.Body)
	}
}

func (p *printer) params(params []ast.Param) {
	p.ws("(")
	for i := range params {
		if i > 0 {
			p.ws(", ")
		}
		p.typeExpr(params[i].Type)
		if params[i].Name != "" {
			p.ws(" ")
			p.ws(params[i].Name)
		}
	}
	p.ws(")")
}

func (p *printer) varDecl(v *ast.VarDecl) {
	t := v.Type
	var arr *ast.ArrayType
	if a, ok := t.(*ast.ArrayType); ok {
		arr = a
		t = a.Elem
	}
	p.typeExpr(t)
	p.ws(" ")
	p.ws(v.Name)
	if arr != nil {
		p.ws("[")
		p.expr(arr.Len)
		p.ws("]")
	}
	switch {
	case v.Init != nil:
		p.ws(" = ")
		p.expr(v.Init)
	case v.HasCtor:
		p.ws("(")
		p.exprList(v.CtorArgs)
		p.ws(")")
	}
}

// ---------------------------------------------------------------------------
// Types

func (p *printer) typeExpr(t ast.TypeExpr) {
	switch x := t.(type) {
	case nil:
		p.ws("void")
	case *ast.NamedType:
		p.ws(x.Name)
	case *ast.PointerType:
		p.typeExpr(x.Elem)
		p.ws("*")
	case *ast.ArrayType:
		// Only valid in declarator position; handled by callers. As a
		// bare type (casts), render the element type.
		p.typeExpr(x.Elem)
	case *ast.MemberPointerType:
		p.typeExpr(x.Elem)
		p.ws(" ")
		p.ws(x.Class)
		p.ws("::*")
	case *ast.QualType:
		if x.Const {
			p.ws("const ")
		}
		if x.Volatile {
			p.ws("volatile ")
		}
		p.typeExpr(x.Base)
	}
}

// ---------------------------------------------------------------------------
// Statements

func (p *printer) block(b *ast.BlockStmt) {
	p.ws("{")
	p.indent++
	for _, s := range b.Stmts {
		p.nl()
		p.stmt(s)
	}
	p.indent--
	p.nl()
	p.ws("}")
}

func (p *printer) stmt(s ast.Stmt) {
	switch x := s.(type) {
	case *ast.BlockStmt:
		p.block(x)
	case *ast.DeclStmt:
		p.varDecl(x.Var)
		p.ws(";")
	case *ast.ExprStmt:
		p.expr(x.X)
		p.ws(";")
	case *ast.IfStmt:
		p.ws("if (")
		p.expr(x.Cond)
		p.ws(") ")
		p.stmtAsBlock(x.Then)
		if x.Else != nil {
			p.ws(" else ")
			p.stmtAsBlock(x.Else)
		}
	case *ast.WhileStmt:
		p.ws("while (")
		p.expr(x.Cond)
		p.ws(") ")
		p.stmtAsBlock(x.Body)
	case *ast.DoWhileStmt:
		p.ws("do ")
		p.stmtAsBlock(x.Body)
		p.ws(" while (")
		p.expr(x.Cond)
		p.ws(");")
	case *ast.ForStmt:
		p.ws("for (")
		switch init := x.Init.(type) {
		case nil:
			p.ws(";")
		case *ast.DeclStmt:
			p.varDecl(init.Var)
			p.ws(";")
		case *ast.ExprStmt:
			p.expr(init.X)
			p.ws(";")
		}
		if x.Cond != nil {
			p.ws(" ")
			p.expr(x.Cond)
		}
		p.ws(";")
		if x.Post != nil {
			p.ws(" ")
			p.expr(x.Post)
		}
		p.ws(") ")
		p.stmtAsBlock(x.Body)
	case *ast.SwitchStmt:
		p.ws("switch (")
		p.expr(x.X)
		p.ws(") {")
		for i := range x.Cases {
			cs := &x.Cases[i]
			p.nl()
			if cs.Values == nil {
				p.ws("default:")
			} else {
				for j, v := range cs.Values {
					if j > 0 {
						p.nl()
					}
					p.ws("case ")
					p.expr(v)
					p.ws(":")
				}
			}
			p.indent++
			for _, st := range cs.Body {
				p.nl()
				p.stmt(st)
			}
			p.indent--
		}
		p.nl()
		p.ws("}")
	case *ast.ReturnStmt:
		p.ws("return")
		if x.X != nil {
			p.ws(" ")
			p.expr(x.X)
		}
		p.ws(";")
	case *ast.BreakStmt:
		p.ws("break;")
	case *ast.ContinueStmt:
		p.ws("continue;")
	}
}

// stmtAsBlock prints control-flow bodies as braced blocks so that the
// output never depends on dangling-else disambiguation.
func (p *printer) stmtAsBlock(s ast.Stmt) {
	if b, ok := s.(*ast.BlockStmt); ok {
		p.block(b)
		return
	}
	p.ws("{")
	p.indent++
	p.nl()
	p.stmt(s)
	p.indent--
	p.nl()
	p.ws("}")
}

// ---------------------------------------------------------------------------
// Expressions

func (p *printer) exprList(list []ast.Expr) {
	for i, e := range list {
		if i > 0 {
			p.ws(", ")
		}
		p.expr(e)
	}
}

func (p *printer) expr(e ast.Expr) {
	switch x := e.(type) {
	case *ast.IntLit:
		p.ws(strconv.FormatInt(x.Value, 10))
	case *ast.FloatLit:
		s := strconv.FormatFloat(x.Value, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0" // keep it a floating literal on re-parse
		}
		p.ws(s)
	case *ast.CharLit:
		p.ws(quoteChar(x.Value))
	case *ast.BoolLit:
		if x.Value {
			p.ws("true")
		} else {
			p.ws("false")
		}
	case *ast.StringLit:
		p.ws(quoteString(x.Value))
	case *ast.NullLit:
		p.ws("nullptr")
	case *ast.Ident:
		p.ws(x.Name)
	case *ast.ThisExpr:
		p.ws("this")
	case *ast.QualifiedIdent:
		p.ws(x.Class)
		p.ws("::")
		p.ws(x.Name)
	case *ast.Unary:
		p.ws(x.Op.String())
		p.exprPrec(x.X)
	case *ast.Postfix:
		p.exprPrec(x.X)
		p.ws(x.Op.String())
	case *ast.Binary:
		p.exprPrec(x.X)
		p.ws(" ")
		p.ws(x.Op.String())
		p.ws(" ")
		p.exprPrec(x.Y)
	case *ast.Assign:
		p.expr(x.LHS)
		p.ws(" ")
		p.ws(x.Op.String())
		p.ws(" ")
		p.expr(x.RHS)
	case *ast.Cond:
		p.exprPrec(x.C)
		p.ws(" ? ")
		p.expr(x.Then)
		p.ws(" : ")
		p.expr(x.Else)
	case *ast.Member:
		p.exprPrec(x.X)
		if x.Arrow {
			p.ws("->")
		} else {
			p.ws(".")
		}
		if x.Qual != "" {
			p.ws(x.Qual)
			p.ws("::")
		}
		p.ws(x.Name)
	case *ast.MemberPtrDeref:
		p.exprPrec(x.X)
		if x.Arrow {
			p.ws("->*")
		} else {
			p.ws(".*")
		}
		p.exprPrec(x.Ptr)
	case *ast.Index:
		p.exprPrec(x.X)
		p.ws("[")
		p.expr(x.I)
		p.ws("]")
	case *ast.Call:
		p.exprPrec(x.Fun)
		p.ws("(")
		p.exprList(x.Args)
		p.ws(")")
	case *ast.Cast:
		p.ws("(")
		p.typeExpr(x.Type)
		p.ws(")")
		p.exprPrec(x.X)
	case *ast.New:
		p.ws("new ")
		p.typeExpr(x.Type)
		if x.Len != nil {
			p.ws("[")
			p.expr(x.Len)
			p.ws("]")
		} else if len(x.Args) > 0 {
			p.ws("(")
			p.exprList(x.Args)
			p.ws(")")
		} else {
			p.ws("()")
		}
	case *ast.Delete:
		p.ws("delete")
		if x.Array {
			p.ws("[]")
		}
		p.ws(" ")
		p.exprPrec(x.X)
	case *ast.Sizeof:
		p.ws("sizeof(")
		if x.Type != nil {
			p.typeExpr(x.Type)
		} else {
			p.expr(x.X)
		}
		p.ws(")")
	case *ast.Paren:
		p.ws("(")
		p.expr(x.X)
		p.ws(")")
	default:
		p.ws(fmt.Sprintf("/*?%T*/", e))
	}
}

// exprPrec prints a subexpression, parenthesizing anything that is not an
// atomic/postfix form. This over-parenthesizes relative to the original
// source but guarantees the re-parse associates identically.
func (p *printer) exprPrec(e ast.Expr) {
	switch e.(type) {
	case *ast.IntLit, *ast.FloatLit, *ast.CharLit, *ast.BoolLit,
		*ast.StringLit, *ast.NullLit, *ast.Ident, *ast.ThisExpr,
		*ast.Member, *ast.Index, *ast.Call, *ast.Paren, *ast.QualifiedIdent,
		*ast.Sizeof:
		p.expr(e)
	default:
		p.ws("(")
		p.expr(e)
		p.ws(")")
	}
}

func quoteChar(c byte) string {
	switch c {
	case '\n':
		return `'\n'`
	case '\t':
		return `'\t'`
	case '\r':
		return `'\r'`
	case 0:
		return `'\0'`
	case '\'':
		return `'\''`
	case '\\':
		return `'\\'`
	}
	return "'" + string(c) + "'"
}

func quoteString(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		case '\r':
			b.WriteString(`\r`)
		case 0:
			b.WriteString(`\0`)
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}
