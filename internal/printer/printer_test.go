package printer_test

import (
	"strings"
	"testing"

	"deadmembers/internal/bench"
	"deadmembers/internal/callgraph"
	"deadmembers/internal/deadmember"
	"deadmembers/internal/frontend"
	"deadmembers/internal/interp"
	"deadmembers/internal/printer"
)

// roundTrip compiles src, prints it, recompiles the output, and returns
// both results.
func roundTrip(t *testing.T, name, src string) (orig, reprinted *frontend.Result, printed string) {
	t.Helper()
	orig = frontend.Compile(frontend.Source{Name: name, Text: src})
	if err := orig.Err(); err != nil {
		t.Fatalf("original does not compile:\n%v", err)
	}
	printed = printer.Print(orig.Program.Files[0])
	reprinted = frontend.Compile(frontend.Source{Name: name + ".printed", Text: printed})
	if err := reprinted.Err(); err != nil {
		t.Fatalf("printed output does not compile:\n%v\n---- printed ----\n%s", err, printed)
	}
	return orig, reprinted, printed
}

func TestRoundTripSmall(t *testing.T) {
	src := `
class Base {
public:
	int b;
	virtual int f() { return b; }
	virtual ~Base() {}
};
class D : public Base, public virtual Base2 {
public:
	int arr[4];
	double d;
	volatile int flag;
	int D2::* pm;
	D(int v) : Base(), d(1.5) { arr[0] = v; pm = &D2::w; }
	virtual int f() { return arr[0] + (int)d + this->Base::b; }
};
class Base2 { public: int z; };
class D2 { public: int w; };
union U { int i; char c; };
int global = 3;
int helper(int* p) { return *p + sizeof(D2); }
int main() {
	D x(2);
	D* px = &x;
	U u;
	u.i = 1;
	switch (x.f()) {
	case 0: return 0;
	case 1:
	case 2: break;
	default: break;
	}
	for (int i = 0; i < 3; i++) { continue; }
	while (false) {}
	do { u.i += 1; } while (u.i < 0);
	int acc = px->f() + helper(&global) + (true ? u.i : 0) - -5 + 'a';
	D2 d2;
	acc = acc + d2.*(px->pm);
	print("ok\n");
	return acc % 256;
}
`
	orig, reprinted, _ := roundTrip(t, "rt.mcc", src)

	// Same program behaviour.
	r1, err := interp.Run(orig.Program, orig.Graph, interp.Options{})
	if err != nil {
		t.Fatalf("original run: %v", err)
	}
	r2, err := interp.Run(reprinted.Program, reprinted.Graph, interp.Options{})
	if err != nil {
		t.Fatalf("reprinted run: %v", err)
	}
	if r1.ExitCode != r2.ExitCode || r1.Output != r2.Output {
		t.Fatalf("behaviour changed: %d/%q vs %d/%q", r1.ExitCode, r1.Output, r2.ExitCode, r2.Output)
	}
}

// TestRoundTripCorpus: every corpus benchmark must print, re-parse, run
// identically, and yield the identical dead-member analysis — a strong
// whole-system property test of parser, printer, and analysis together.
func TestRoundTripCorpus(t *testing.T) {
	for _, bm := range bench.All() {
		t.Run(bm.Name, func(t *testing.T) {
			orig, reprinted, _ := roundTrip(t, bm.Name, bm.Sources[0].Text)

			a1 := deadmember.Analyze(orig.Program, orig.Graph, deadmember.Options{CallGraph: callgraph.RTA})
			a2 := deadmember.Analyze(reprinted.Program, reprinted.Graph, deadmember.Options{CallGraph: callgraph.RTA})
			d1, d2 := names(a1), names(a2)
			if strings.Join(d1, ",") != strings.Join(d2, ",") {
				t.Fatalf("dead sets differ after round trip:\n%v\nvs\n%v", d1, d2)
			}

			r1, err := interp.Run(orig.Program, orig.Graph, interp.Options{})
			if err != nil {
				t.Fatalf("original run: %v", err)
			}
			r2, err := interp.Run(reprinted.Program, reprinted.Graph, interp.Options{})
			if err != nil {
				t.Fatalf("reprinted run: %v", err)
			}
			if r1.Output != r2.Output || r1.ExitCode != r2.ExitCode {
				t.Fatalf("behaviour changed after round trip")
			}
		})
	}
}

func names(res *deadmember.Result) []string {
	var out []string
	for _, f := range res.DeadMembers() {
		out = append(out, f.QualifiedName())
	}
	return out
}

// TestIdempotent: printing the reprinted program yields identical text.
func TestIdempotent(t *testing.T) {
	bm, err := bench.ByName("richards")
	if err != nil {
		t.Fatal(err)
	}
	_, reprinted, printed := roundTrip(t, "richards", bm.Sources[0].Text)
	again := printer.Print(reprinted.Program.Files[0])
	if printed != again {
		t.Fatal("printer is not idempotent")
	}
}

func TestPrintExpr(t *testing.T) {
	r := frontend.Compile(frontend.Source{Name: "e.mcc", Text: `
int main() { int a = 1; int b = 2; return a + b * 3; }
`})
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	out := printer.Print(r.Program.Files[0])
	if !strings.Contains(out, "a + (b * 3)") {
		t.Errorf("expected parenthesized rendering, got:\n%s", out)
	}
}
