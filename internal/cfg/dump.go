package cfg

import (
	"fmt"
	"strings"

	"deadmembers/internal/ast"
	"deadmembers/internal/printer"
)

// Dump renders the graph in the textual golden-test format:
//
//	fn C::method
//	B0 (entry):
//	    x = 1
//	    -> B1 B2
//	B1 (while.body) [unreachable]:
//	    -> B0
//	B2 (exit):
//
// Successor order is the builder's deterministic branch order.
func (g *Graph) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fn %s\n", g.Fn.QualifiedName())
	for _, blk := range g.Blocks {
		mark := ""
		if !blk.Reachable {
			mark = " [unreachable]"
		}
		fmt.Fprintf(&b, "B%d (%s)%s:\n", blk.ID, blk.Label, mark)
		for _, n := range blk.Nodes {
			fmt.Fprintf(&b, "    %s\n", renderNode(n))
		}
		if len(blk.Succs) > 0 {
			b.WriteString("    ->")
			for _, s := range blk.Succs {
				fmt.Fprintf(&b, " B%d", s.ID)
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// DOT renders the graph in Graphviz dot syntax for debugging.
func (g *Graph) DOT() string {
	var b strings.Builder
	b.WriteString("digraph cfg {\n")
	fmt.Fprintf(&b, "  label=%q;\n", g.Fn.QualifiedName())
	b.WriteString("  node [shape=box, fontname=\"monospace\"];\n")
	for _, blk := range g.Blocks {
		var lines []string
		lines = append(lines, fmt.Sprintf("B%d (%s)", blk.ID, blk.Label))
		for _, n := range blk.Nodes {
			lines = append(lines, renderNode(n))
		}
		style := ""
		if !blk.Reachable {
			style = ", style=dashed"
		}
		fmt.Fprintf(&b, "  b%d [label=%q%s];\n", blk.ID, strings.Join(lines, "\\l")+"\\l", style)
	}
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			fmt.Fprintf(&b, "  b%d -> b%d;\n", blk.ID, s.ID)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// renderNode renders one atom for dumps.
func renderNode(n ast.Node) string {
	switch x := n.(type) {
	case *ast.VarDecl:
		return "decl " + x.Name
	case *ast.CtorInit:
		return "init " + x.Name
	case *ast.ReturnStmt:
		return "return"
	case ast.Expr:
		return printer.PrintExpr(x)
	}
	return fmt.Sprintf("%T", n)
}
