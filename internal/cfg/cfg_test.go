package cfg

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"deadmembers/internal/frontend"
)

var update = flag.Bool("update", false, "rewrite the golden CFG dumps")

// TestGolden compiles every testdata fixture and compares the dump of
// every function's CFG against the checked-in golden file. Run with
// -update to regenerate after intentional builder changes.
func TestGolden(t *testing.T) {
	matches, err := filepath.Glob("testdata/*.mcc")
	if err != nil || len(matches) == 0 {
		t.Fatalf("no testdata fixtures: %v", err)
	}
	for _, path := range matches {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			text, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			res := frontend.Compile(frontend.Source{Name: filepath.Base(path), Text: string(text)})
			if err := res.Err(); err != nil {
				t.Fatalf("fixture does not compile: %v", err)
			}
			var b strings.Builder
			for _, f := range res.Program.AllFuncs() {
				g := Build(f)
				if g == nil {
					continue
				}
				b.WriteString(g.Dump())
				b.WriteString("\n")
			}
			got := b.String()
			goldenPath := strings.TrimSuffix(path, ".mcc") + ".golden"
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden (run go test ./internal/cfg -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("CFG dump mismatch for %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
			}
		})
	}
}

// TestInvariants checks the structural guarantees every graph promises:
// dense creation-order IDs, entry first and exit last, edge symmetry,
// a reachable entry, and non-nil atoms.
func TestInvariants(t *testing.T) {
	matches, _ := filepath.Glob("testdata/*.mcc")
	for _, path := range matches {
		text, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		res := frontend.Compile(frontend.Source{Name: filepath.Base(path), Text: string(text)})
		if err := res.Err(); err != nil {
			t.Fatal(err)
		}
		for _, f := range res.Program.AllFuncs() {
			g := Build(f)
			if g == nil {
				continue
			}
			if err := g.CheckInvariants(); err != nil {
				t.Error(err)
			}
		}
	}
}

// TestDOT sanity-checks the debug renderer on one fixture.
func TestDOT(t *testing.T) {
	res := frontend.Compile(frontend.Source{Name: "dot.mcc", Text: `
int main() {
    int x = 1;
    if (x > 0) { x = 2; }
    print(x);
    return 0;
}
`})
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	fns := res.Program.AllFuncs()
	if len(fns) == 0 {
		t.Fatal("no functions")
	}
	dot := Build(fns[0]).DOT()
	for _, want := range []string{"digraph cfg", "b0 ->", "shape=box"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}
