package cfg

import "fmt"

// CheckInvariants verifies the structural guarantees every graph
// promises: dense creation-order IDs, entry first and exit last, edge
// symmetry, a reachable entry, an exit with no successors, and non-nil
// atoms. It returns the first violation found, or nil. The unit tests
// and the FuzzCFG target at the repository root both lean on it.
func (g *Graph) CheckInvariants() error {
	qn := g.Fn.QualifiedName()
	if len(g.Blocks) == 0 {
		return fmt.Errorf("%s: graph with no blocks", qn)
	}
	if g.Entry != g.Blocks[0] {
		return fmt.Errorf("%s: entry is not block 0", qn)
	}
	if g.Exit != g.Blocks[len(g.Blocks)-1] {
		return fmt.Errorf("%s: exit is not the last block", qn)
	}
	if !g.Entry.Reachable {
		return fmt.Errorf("%s: entry unreachable", qn)
	}
	if len(g.Exit.Succs) != 0 {
		return fmt.Errorf("%s: exit has successors", qn)
	}
	for i, b := range g.Blocks {
		if b.ID != i {
			return fmt.Errorf("%s: block at index %d has ID %d", qn, i, b.ID)
		}
		for _, n := range b.Nodes {
			if n == nil {
				return fmt.Errorf("%s: B%d has a nil atom", qn, b.ID)
			}
		}
		for _, s := range b.Succs {
			if !hasBlock(s.Preds, b) {
				return fmt.Errorf("%s: edge B%d->B%d missing from preds", qn, b.ID, s.ID)
			}
		}
		for _, p := range b.Preds {
			if !hasBlock(p.Succs, b) {
				return fmt.Errorf("%s: pred edge B%d->B%d missing from succs", qn, p.ID, b.ID)
			}
		}
	}
	return nil
}

func hasBlock(bs []*Block, want *Block) bool {
	for _, b := range bs {
		if b == want {
			return true
		}
	}
	return false
}
