// Package cfg constructs per-function control-flow graphs from the
// checked AST.
//
// A Graph is a list of basic blocks connected by directed edges: one
// block per straight-line run of evaluation steps, with edges for
// if/while/do-while/for/switch, the short-circuit operators `&&`/`||`,
// the ternary `?:`, and return/break/continue. Block numbering is
// deterministic: blocks are numbered in creation order (a depth-first
// walk of the function body), the entry block is always B0, and the
// exit block is always the highest-numbered block — so dumps, golden
// tests, and dataflow results are stable across runs and worker counts.
//
// Each block carries its evaluation steps as a list of AST "atoms" in
// evaluation order: expression nodes (operands before operators,
// assignment right-hand side before the target), local declarations,
// constructor-initializer entries, and return markers. Literals,
// `this`, and parentheses carry no evaluation effect and are omitted.
// The atom list is what the dataflow layer (internal/dataflow,
// internal/lint) folds gen/kill facts over.
package cfg

import (
	"deadmembers/internal/ast"
	"deadmembers/internal/token"
	"deadmembers/internal/types"
)

// Block is one basic block.
type Block struct {
	// ID is the deterministic block number: dense, creation-ordered,
	// entry first and exit last.
	ID int

	// Label names the block's syntactic role ("entry", "if.then",
	// "while.head", ...) for dumps; it carries no semantics.
	Label string

	// Nodes are the evaluation steps of the block, in evaluation order.
	Nodes []ast.Node

	// Succs and Preds are the control-flow edges. Successor order is
	// deterministic and meaningful for branches: the first successor is
	// the "taken" path (then-branch, loop body, `&&` right-hand side).
	Succs []*Block
	Preds []*Block

	// Reachable reports whether the block can be reached from the entry
	// block. Code after a return/break/continue builds unreachable
	// blocks; analyses skip them when reporting.
	Reachable bool
}

// Graph is the control-flow graph of one function.
type Graph struct {
	Fn     *types.Func
	Blocks []*Block // Blocks[i].ID == i
	Entry  *Block
	Exit   *Block
}

// Build constructs the CFG of fn, or nil when fn has no body (library
// methods, pure-virtual declarations, builtins).
//
// For constructors, the member-initializer list is lowered into the
// entry block ahead of the body: each initializer contributes its
// argument expressions followed by the *ast.CtorInit entry itself,
// which analyses treat as the store to the named member.
func Build(fn *types.Func) *Graph {
	if fn == nil || (fn.Body == nil && len(fn.Inits) == 0) {
		return nil
	}
	b := &builder{}
	entry := b.newBlock("entry")
	b.exit = &Block{Label: "exit"}
	b.cur = entry

	for i := range fn.Inits {
		init := &fn.Inits[i]
		for _, arg := range init.Args {
			b.expr(arg)
		}
		b.atom(init)
	}
	if fn.Body != nil {
		b.stmt(fn.Body)
	}
	if b.cur != nil {
		b.edge(b.cur, b.exit)
	}

	b.blocks = append(b.blocks, b.exit)
	g := &Graph{Fn: fn, Blocks: b.blocks, Entry: entry, Exit: b.exit}
	for i, blk := range g.Blocks {
		blk.ID = i
	}
	markReachable(entry)
	return g
}

// markReachable flags every block reachable from entry.
func markReachable(entry *Block) {
	stack := []*Block{entry}
	entry.Reachable = true
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range blk.Succs {
			if !s.Reachable {
				s.Reachable = true
				stack = append(stack, s)
			}
		}
	}
}

type builder struct {
	blocks    []*Block
	exit      *Block
	cur       *Block // nil after a terminator (return/break/continue)
	breaks    []*Block
	continues []*Block
}

func (b *builder) newBlock(label string) *Block {
	blk := &Block{Label: label}
	b.blocks = append(b.blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// ensure gives statements after a terminator a block of their own; it
// has no predecessors, so the code in it is marked unreachable.
func (b *builder) ensure() {
	if b.cur == nil {
		b.cur = b.newBlock("dead")
	}
}

func (b *builder) atom(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// ---------------------------------------------------------------------------
// Statements

func (b *builder) stmt(s ast.Stmt) {
	if s == nil {
		return
	}
	b.ensure()
	switch x := s.(type) {
	case *ast.BlockStmt:
		for _, st := range x.Stmts {
			b.stmt(st)
		}

	case *ast.DeclStmt:
		if x.Var.Init != nil {
			b.expr(x.Var.Init)
		}
		for _, arg := range x.Var.CtorArgs {
			b.expr(arg)
		}
		b.atom(x.Var)

	case *ast.ExprStmt:
		b.expr(x.X)

	case *ast.IfStmt:
		b.expr(x.Cond)
		head := b.cur
		then := b.newBlock("if.then")
		b.edge(head, then)
		b.cur = then
		b.stmt(x.Then)
		thenEnd := b.cur
		var elseEnd *Block
		hasElse := x.Else != nil
		if hasElse {
			els := b.newBlock("if.else")
			b.edge(head, els)
			b.cur = els
			b.stmt(x.Else)
			elseEnd = b.cur
		}
		join := b.newBlock("if.end")
		if thenEnd != nil {
			b.edge(thenEnd, join)
		}
		if hasElse {
			if elseEnd != nil {
				b.edge(elseEnd, join)
			}
		} else {
			b.edge(head, join)
		}
		b.cur = join

	case *ast.WhileStmt:
		head := b.newBlock("while.head")
		b.edge(b.cur, head)
		b.cur = head
		b.expr(x.Cond)
		condEnd := b.cur
		body := b.newBlock("while.body")
		b.edge(condEnd, body)
		done := b.newBlock("while.end")
		b.edge(condEnd, done)
		b.pushLoop(done, head)
		b.cur = body
		b.stmt(x.Body)
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		b.popLoop()
		b.cur = done

	case *ast.DoWhileStmt:
		body := b.newBlock("do.body")
		b.edge(b.cur, body)
		cond := b.newBlock("do.cond")
		done := b.newBlock("do.end")
		b.pushLoop(done, cond)
		b.cur = body
		b.stmt(x.Body)
		if b.cur != nil {
			b.edge(b.cur, cond)
		}
		b.popLoop()
		b.cur = cond
		b.expr(x.Cond)
		b.edge(b.cur, body)
		b.edge(b.cur, done)
		b.cur = done

	case *ast.ForStmt:
		if x.Init != nil {
			b.stmt(x.Init)
		}
		head := b.newBlock("for.head")
		b.edge(b.cur, head)
		b.cur = head
		if x.Cond != nil {
			b.expr(x.Cond)
		}
		condEnd := b.cur
		body := b.newBlock("for.body")
		b.edge(condEnd, body)
		done := b.newBlock("for.end")
		if x.Cond != nil {
			b.edge(condEnd, done)
		}
		cont := head
		var post *Block
		if x.Post != nil {
			post = b.newBlock("for.post")
			cont = post
		}
		b.pushLoop(done, cont)
		b.cur = body
		b.stmt(x.Body)
		if b.cur != nil {
			b.edge(b.cur, cont)
		}
		b.popLoop()
		if post != nil {
			b.cur = post
			b.expr(x.Post)
			b.edge(b.cur, head)
		}
		b.cur = done

	case *ast.SwitchStmt:
		b.expr(x.X)
		// Case values are evaluated while dispatching; they live in the
		// dispatch block (they can in principle split it, so re-read cur).
		for i := range x.Cases {
			for _, v := range x.Cases[i].Values {
				b.expr(v)
			}
		}
		dispatch := b.cur
		done := b.newBlock("switch.end")
		hasDefault := false
		b.breaks = append(b.breaks, done)
		for i := range x.Cases {
			label := "case"
			if x.Cases[i].Values == nil {
				label = "default"
				hasDefault = true
			}
			caseB := b.newBlock(label)
			b.edge(dispatch, caseB)
			b.cur = caseB
			for _, st := range x.Cases[i].Body {
				b.stmt(st)
			}
			// MC++ cases do not fall through: falling off the end exits
			// the switch.
			if b.cur != nil {
				b.edge(b.cur, done)
			}
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		if !hasDefault {
			b.edge(dispatch, done)
		}
		b.cur = done

	case *ast.ReturnStmt:
		if x.X != nil {
			b.expr(x.X)
		}
		b.atom(x)
		b.edge(b.cur, b.exit)
		b.cur = nil

	case *ast.BreakStmt:
		// A stray break outside any loop/switch is rejected by sema;
		// degrade to an exit edge if one slips through.
		if n := len(b.breaks); n > 0 {
			b.edge(b.cur, b.breaks[n-1])
		} else {
			b.edge(b.cur, b.exit)
		}
		b.cur = nil

	case *ast.ContinueStmt:
		if n := len(b.continues); n > 0 {
			b.edge(b.cur, b.continues[n-1])
		} else {
			b.edge(b.cur, b.exit)
		}
		b.cur = nil
	}
}

func (b *builder) pushLoop(brk, cont *Block) {
	b.breaks = append(b.breaks, brk)
	b.continues = append(b.continues, cont)
}

func (b *builder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

// ---------------------------------------------------------------------------
// Expressions
//
// expr appends e's evaluation steps to the current block in evaluation
// order (operands first), splitting blocks at `&&`, `||`, and `?:`.
// Expressions never terminate a block, so cur stays non-nil throughout.

func (b *builder) expr(e ast.Expr) {
	switch x := e.(type) {
	case nil:
		return
	case *ast.Paren:
		b.expr(x.X)

	case *ast.IntLit, *ast.FloatLit, *ast.CharLit, *ast.BoolLit,
		*ast.StringLit, *ast.NullLit, *ast.ThisExpr:
		// No evaluation effect worth tracking.

	case *ast.Ident, *ast.QualifiedIdent:
		b.atom(x)

	case *ast.Member:
		b.expr(x.X)
		b.atom(x)

	case *ast.MemberPtrDeref:
		b.expr(x.X)
		b.expr(x.Ptr)
		b.atom(x)

	case *ast.Index:
		b.expr(x.X)
		b.expr(x.I)
		b.atom(x)

	case *ast.Unary:
		if x.Op == token.Amp {
			if _, ok := ast.Unparen(x.X).(*ast.QualifiedIdent); ok {
				// &C::m forms a pointer-to-member constant; the operand
				// is not evaluated as an lvalue chain.
				b.atom(x)
				return
			}
		}
		b.expr(x.X)
		b.atom(x)

	case *ast.Postfix:
		b.expr(x.X)
		b.atom(x)

	case *ast.Binary:
		if x.Op == token.AmpAmp || x.Op == token.PipePipe {
			label := "and"
			if x.Op == token.PipePipe {
				label = "or"
			}
			b.expr(x.X)
			head := b.cur
			rhs := b.newBlock(label + ".rhs")
			b.edge(head, rhs)
			b.cur = rhs
			b.expr(x.Y)
			join := b.newBlock(label + ".end")
			b.edge(b.cur, join)
			b.edge(head, join) // the short-circuit edge
			b.cur = join
			return
		}
		b.expr(x.X)
		b.expr(x.Y)
		b.atom(x)

	case *ast.Assign:
		// The stored value is computed before the store takes effect.
		b.expr(x.RHS)
		b.expr(x.LHS)
		b.atom(x)

	case *ast.Cond:
		b.expr(x.C)
		head := b.cur
		then := b.newBlock("cond.then")
		b.edge(head, then)
		b.cur = then
		b.expr(x.Then)
		thenEnd := b.cur
		els := b.newBlock("cond.else")
		b.edge(head, els)
		b.cur = els
		b.expr(x.Else)
		elseEnd := b.cur
		join := b.newBlock("cond.end")
		b.edge(thenEnd, join)
		b.edge(elseEnd, join)
		b.cur = join

	case *ast.Call:
		// The callee name is not a value; a method call evaluates its
		// receiver expression, a free call nothing.
		switch fun := ast.Unparen(x.Fun).(type) {
		case *ast.Member:
			b.expr(fun.X)
		case *ast.Ident:
			// Free function or implicit this-> method: no receiver step.
		default:
			b.expr(x.Fun)
		}
		for _, arg := range x.Args {
			b.expr(arg)
		}
		b.atom(x)

	case *ast.Cast:
		b.expr(x.X)
		b.atom(x)

	case *ast.New:
		for _, arg := range x.Args {
			b.expr(arg)
		}
		if x.Len != nil {
			b.expr(x.Len)
		}
		b.atom(x)

	case *ast.Delete:
		b.expr(x.X)
		b.atom(x)

	case *ast.Sizeof:
		// sizeof does not evaluate its operand.
		b.atom(x)
	}
}
