package interp

import (
	"deadmembers/internal/ast"
	"deadmembers/internal/types"
)

// pushScope/PopScope manage block-scoped class objects: objects declared
// in a block are destroyed, in reverse order, when the block exits —
// normally or by break/continue/return unwinding. A mark is a snapshot
// of len(f.Locals); PopScope is exported for executors, which replicate
// the same discipline with explicit scope instructions.
func (f *Frame) pushScope() int { return len(f.Locals) }

func (m *Machine) PopScope(f *Frame, mark int) {
	for i := len(f.Locals) - 1; i >= mark; i-- {
		m.DestroyObject(f.Locals[i])
	}
	f.Locals = f.Locals[:mark]
}

// execScoped runs s in its own destructor scope.
func (m *Machine) execScoped(f *Frame, s ast.Stmt) {
	mark := f.pushScope()
	defer m.PopScope(f, mark)
	m.execStmt(f, s)
}

// execStmt executes one statement.
func (m *Machine) execStmt(f *Frame, s ast.Stmt) {
	m.Step(f, s.Pos())
	switch x := s.(type) {
	case *ast.BlockStmt:
		mark := f.pushScope()
		defer m.PopScope(f, mark)
		for _, st := range x.Stmts {
			m.execStmt(f, st)
		}

	case *ast.DeclStmt:
		m.execDecl(f, x.Var)

	case *ast.ExprStmt:
		m.evalExpr(f, x.X)

	case *ast.IfStmt:
		if m.evalExpr(f, x.Cond).IsTruthy() {
			m.execScoped(f, x.Then)
		} else if x.Else != nil {
			m.execScoped(f, x.Else)
		}

	case *ast.WhileStmt:
		for m.evalExpr(f, x.Cond).IsTruthy() {
			if m.execLoopBody(f, x.Body) {
				break
			}
		}

	case *ast.DoWhileStmt:
		for {
			if m.execLoopBody(f, x.Body) {
				break
			}
			if !m.evalExpr(f, x.Cond).IsTruthy() {
				break
			}
		}

	case *ast.ForStmt:
		mark := f.pushScope()
		defer m.PopScope(f, mark)
		if x.Init != nil {
			m.execStmt(f, x.Init)
		}
		for x.Cond == nil || m.evalExpr(f, x.Cond).IsTruthy() {
			if m.execLoopBody(f, x.Body) {
				break
			}
			if x.Post != nil {
				m.evalExpr(f, x.Post)
			}
		}

	case *ast.SwitchStmt:
		m.execSwitch(f, x)

	case *ast.ReturnStmt:
		var v Value
		if x.X != nil {
			v = m.evalExpr(f, x.X)
			if f.Fn != nil && f.Fn.Return != nil {
				v = m.Convert(v, f.Fn.Return)
			}
			if v.K == KObj && v.Obj != nil {
				v = Value{K: KObj, Obj: m.CloneObject(v.Obj)} // return by value
			}
		} else {
			v = Value{K: KVoid}
		}
		panic(ctrlReturn{v})

	case *ast.BreakStmt:
		panic(ctrlBreak{})

	case *ast.ContinueStmt:
		panic(ctrlContinue{})
	}
}

// execLoopBody runs one iteration; reports true when the loop must stop
// (break). continue is absorbed.
func (m *Machine) execLoopBody(f *Frame, body ast.Stmt) (stop bool) {
	defer func() {
		if r := recover(); r != nil {
			switch r.(type) {
			case ctrlBreak:
				stop = true
			case ctrlContinue:
				stop = false
			default:
				panic(r)
			}
		}
	}()
	m.execScoped(f, body)
	return false
}

// execSwitch evaluates the scrutinee and runs the matching case group (or
// default). MC++ cases do not fall through; break exits the switch.
func (m *Machine) execSwitch(f *Frame, x *ast.SwitchStmt) {
	v := m.evalExpr(f, x.X).AsInt()
	var target *ast.SwitchCase
	var deflt *ast.SwitchCase
	for i := range x.Cases {
		cs := &x.Cases[i]
		if cs.Values == nil {
			deflt = cs
			continue
		}
		for _, ve := range cs.Values {
			if m.evalExpr(f, ve).AsInt() == v {
				target = cs
				break
			}
		}
		if target != nil {
			break
		}
	}
	if target == nil {
		target = deflt
	}
	if target == nil {
		return
	}
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(ctrlBreak); ok {
				return // break exits the switch
			}
			panic(r)
		}
	}()
	mark := f.pushScope()
	defer m.PopScope(f, mark)
	for _, st := range target.Body {
		m.execStmt(f, st)
	}
}

// execDecl executes a local variable declaration.
func (m *Machine) execDecl(f *Frame, d *ast.VarDecl) {
	v := m.info.VarObjects[d]
	t := m.info.VarTypes[d]
	cell := &Cell{}
	f.Vars[v] = cell

	if cls := types.IsClass(t); cls != nil {
		if d.Init != nil {
			src := m.evalExpr(f, d.Init)
			obj := m.NewObject(cls, true)
			if src.K == KObj && src.Obj != nil {
				m.CopyObject(obj, src.Obj)
			}
			cell.V = Value{K: KObj, Obj: obj}
			f.Locals = append(f.Locals, obj)
			return
		}
		obj := m.NewObject(cls, true)
		var args []Value
		for _, a := range d.CtorArgs {
			args = append(args, m.evalExpr(f, a))
		}
		m.ConstructObject(obj, m.info.VarCtors[d], args)
		cell.V = Value{K: KObj, Obj: obj}
		f.Locals = append(f.Locals, obj)
		return
	}

	if arr, ok := t.(*types.Array); ok {
		var objs []*Object
		cell.V = m.MakeArray(arr, &objs)
		f.Locals = append(f.Locals, objs...)
		return
	}

	cell.V = m.ZeroValue(t)
	var init ast.Expr
	if d.Init != nil {
		init = d.Init
	} else if len(d.CtorArgs) == 1 {
		init = d.CtorArgs[0]
	}
	if init != nil {
		m.StoreInto(cell, m.Convert(m.evalExpr(f, init), t))
	}
}
