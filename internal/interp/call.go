package interp

import (
	"fmt"

	"deadmembers/internal/ast"
	"deadmembers/internal/source"
	"deadmembers/internal/types"
)

// evalCall dispatches function, method, and builtin calls.
func (m *Machine) evalCall(f *Frame, x *ast.Call) Value {
	switch fun := ast.Unparen(x.Fun).(type) {
	case *ast.Ident:
		if mth, ok := m.info.IdentMethods[fun]; ok {
			// Implicit this->m(...): virtual dispatch on the dynamic
			// class of the receiver.
			if f.This == nil {
				m.Fail(x.Pos(), "implicit member call with no receiver")
			}
			target := m.Dispatch(x.Pos(), f.This, mth, true, "")
			args := m.evalArgs(f, x.Args)
			return m.CallFunction(target, f.This, args)
		}
		if fn, ok := m.info.IdentFuncs[fun]; ok {
			if fn.Builtin {
				return m.callBuiltin(f, fn.Name, x)
			}
			args := m.evalArgs(f, x.Args)
			return m.CallFunction(fn, nil, args)
		}
		m.Fail(x.Pos(), "unresolved call target %s", fun.Name)
	case *ast.Member:
		mth, ok := m.info.MethodRefs[fun]
		if !ok {
			m.Fail(x.Pos(), "unresolved method %s", fun.Name)
		}
		obj := m.receiverObject(f, fun.X, fun.Arrow)
		target := m.Dispatch(x.Pos(), obj, mth, true, fun.Qual)
		args := m.evalArgs(f, x.Args)
		return m.CallFunction(target, obj, args)
	}
	m.Fail(x.Pos(), "called expression is not callable")
	return Value{}
}

func (m *Machine) evalArgs(f *Frame, args []ast.Expr) []Value {
	out := make([]Value, len(args))
	for i, a := range args {
		out[i] = m.evalExpr(f, a)
	}
	return out
}

// Dispatch resolves the method actually invoked: virtual methods dispatch
// on the receiver's dynamic class unless an explicit qualifier pins the
// target.
func (m *Machine) Dispatch(pos source.Pos, obj *Object, mth *types.Func, dynamic bool, qual string) *types.Func {
	if qual != "" || !mth.Virtual || !dynamic {
		if mth.Body == nil && mth.Virtual {
			// Pure or body-less virtual reached statically: try dynamic.
			if t := m.h.Overrides(obj.Class, mth.Name); t != nil && t.Body != nil {
				return t
			}
		}
		return mth
	}
	target := m.h.Overrides(obj.Class, mth.Name)
	if target == nil || target.Body == nil {
		m.Fail(pos, "pure virtual method %s called on %s", mth.QualifiedName(), obj.Class.Name)
	}
	return target
}

// ---------------------------------------------------------------------------
// new / delete
//
// The AST-level evaluators delegate to exported value-level helpers so the
// VM shares the exact allocation protocol (ledger records included) with
// the tree-walker.

func (m *Machine) evalNew(f *Frame, x *ast.New) Value {
	t := m.info.TypeExprs[x.Type]

	if x.Len != nil { // new T[n]
		n := m.evalExpr(f, x.Len).AsInt()
		return m.NewArray(x.Pos(), t, n)
	}

	if cls := types.IsClass(t); cls != nil { // new C(args)
		// The allocation (and its ledger record) precedes argument
		// evaluation, matching constructor-call ordering.
		obj := m.NewObject(cls, true)
		args := m.evalArgs(f, x.Args)
		return m.FinishNew(obj, m.info.NewCtors[x], args)
	}

	// Scalar new.
	var init *Value
	if len(x.Args) == 1 {
		v := m.evalExpr(f, x.Args[0])
		init = &v
	}
	return m.NewScalar(t, init)
}

// NewArray implements new T[n] on an evaluated length.
func (m *Machine) NewArray(pos source.Pos, t types.Type, n64 int64) Value {
	n := int(n64)
	if n < 0 {
		m.Fail(pos, "negative array size %d in new[]", n)
	}
	blk := &HeapBlock{Array: true}
	cells := make([]*Cell, n)
	if cls := types.IsClass(t); cls != nil {
		for i := range cells {
			obj := m.NewObject(cls, true)
			m.ConstructObject(obj, cls.CtorByArity(0), nil)
			cells[i] = &Cell{V: Value{K: KObj, Obj: obj}}
			blk.Objs = append(blk.Objs, obj)
		}
	} else {
		for i := range cells {
			cells[i] = &Cell{V: m.ZeroValue(t)}
		}
	}
	blk.Cells = cells
	return ptrV(Pointer{Arr: cells, arrp: true, Block: blk})
}

// FinishNew completes new C(args) on an already-allocated object.
func (m *Machine) FinishNew(obj *Object, ctor *types.Func, args []Value) Value {
	m.ConstructObject(obj, ctor, args)
	blk := &HeapBlock{Objs: []*Object{obj}}
	return ptrV(Pointer{Obj: obj, Block: blk})
}

// NewScalar implements scalar new T(init); init may be nil.
func (m *Machine) NewScalar(t types.Type, init *Value) Value {
	cell := &Cell{V: m.ZeroValue(t)}
	if init != nil {
		m.StoreInto(cell, m.Convert(*init, t))
	}
	blk := &HeapBlock{Cells: []*Cell{cell}}
	return ptrV(Pointer{Cell: cell, Block: blk})
}

func (m *Machine) evalDelete(f *Frame, x *ast.Delete) {
	m.DeleteValue(x.Pos(), m.evalExpr(f, x.X), x.Array)
}

// DeleteValue implements delete / delete[] on an evaluated operand.
func (m *Machine) DeleteValue(pos source.Pos, v Value, isArray bool) {
	if v.K != KPtr {
		m.Fail(pos, "delete of non-pointer")
	}
	p := v.P
	if p.IsNull() {
		return // deleting null is a no-op, as in C++
	}
	blk := p.Block
	if blk == nil {
		m.Fail(pos, "delete of pointer not obtained from new")
	}
	if blk.Freed {
		m.Fail(pos, "double delete")
	}
	if isArray != blk.Array {
		if blk.Array {
			m.Fail(pos, "array allocated with new[] must be released with delete[]")
		}
		m.Fail(pos, "scalar allocation must be released with delete, not delete[]")
	}
	blk.Freed = true
	for i := len(blk.Objs) - 1; i >= 0; i-- {
		m.DestroyObject(blk.Objs[i])
	}
}

// ---------------------------------------------------------------------------
// Builtins
//
// As with new/delete, the AST wrappers evaluate exactly the arguments the
// tree-walker always evaluated and delegate to value-level helpers shared
// with the VM.

func (m *Machine) callBuiltin(f *Frame, name string, x *ast.Call) Value {
	switch name {
	case "print", "println":
		if len(x.Args) == 1 {
			m.PrintValueTyped(m.evalExpr(f, x.Args[0]), m.info.TypeOf(x.Args[0]))
		}
		if name == "println" {
			m.PrintNewline()
		}
		return Value{K: KVoid}
	case "malloc":
		return m.Malloc(x.Pos(), m.evalExpr(f, x.Args[0]).AsInt())
	case "free":
		return m.FreeValue(x.Pos(), m.evalExpr(f, x.Args[0]))
	case "rand_seed":
		return m.RandSeed(m.evalExpr(f, x.Args[0]).AsInt())
	case "rand_next":
		return m.RandNext(x.Pos(), m.evalExpr(f, x.Args[0]).AsInt())
	case "clock":
		return m.ClockValue()
	case "abort":
		m.Fail(x.Pos(), "abort() called")
	}
	m.Fail(x.Pos(), "unknown builtin %s", name)
	return Value{}
}

// Malloc implements the malloc builtin on an evaluated size.
func (m *Machine) Malloc(pos source.Pos, n64 int64) Value {
	n := int(n64)
	if n < 0 {
		m.Fail(pos, "malloc of negative size %d", n)
	}
	cells := make([]*Cell, n)
	for i := range cells {
		cells[i] = &Cell{V: intV(0)}
	}
	blk := &HeapBlock{Cells: cells, Array: true}
	return ptrV(Pointer{Arr: cells, arrp: true, Block: blk})
}

// FreeValue implements the free builtin on an evaluated argument.
func (m *Machine) FreeValue(pos source.Pos, v Value) Value {
	if v.K != KPtr || v.P.IsNull() {
		return Value{K: KVoid} // free(nullptr) is a no-op
	}
	blk := v.P.Block
	if blk == nil {
		m.Fail(pos, "free of pointer not obtained from an allocator")
	}
	if blk.Freed {
		m.Fail(pos, "double free")
	}
	blk.Freed = true
	for i := len(blk.Objs) - 1; i >= 0; i-- {
		m.DestroyObject(blk.Objs[i])
	}
	return Value{K: KVoid}
}

// RandSeed implements the rand_seed builtin.
func (m *Machine) RandSeed(v int64) Value {
	m.rng = uint64(v)*2862933555777941757 + 3037000493
	return Value{K: KVoid}
}

// RandNext implements the rand_next builtin.
func (m *Machine) RandNext(pos source.Pos, n int64) Value {
	if n <= 0 {
		m.Fail(pos, "rand_next bound must be positive, got %d", n)
	}
	m.rng = m.rng*6364136223846793005 + 1442695040888963407
	return intV(int64((m.rng >> 33) % uint64(n)))
}

// ClockValue implements the clock builtin: the executed-statement count.
func (m *Machine) ClockValue() Value { return intV(m.steps) }

// PrintNewline emits println's trailing newline.
func (m *Machine) PrintNewline() { fmt.Fprintln(m.out) }

// PrintValueTyped renders one print argument; char* (judged by the
// argument's static type t) prints as a NUL-terminated string.
func (m *Machine) PrintValueTyped(v Value, t types.Type) {
	if p, ok := t.(*types.Pointer); ok {
		if b, isBasic := p.Elem.(*types.Basic); isBasic && b.Kind == types.Char && v.K == KPtr && !v.P.IsNull() {
			m.printCString(v.P)
			return
		}
	}
	fmt.Fprint(m.out, v.String())
}

func (m *Machine) printCString(p *Pointer) {
	if !p.arrp {
		if p.Cell != nil {
			fmt.Fprint(m.out, string(rune(byte(p.Cell.V.AsInt()))))
		}
		return
	}
	for i := p.Idx; i < len(p.Arr); i++ {
		c := byte(p.Arr[i].V.AsInt())
		if c == 0 {
			return
		}
		fmt.Fprint(m.out, string(rune(c)))
	}
}
