package interp

import (
	"fmt"

	"deadmembers/internal/ast"
	"deadmembers/internal/source"
	"deadmembers/internal/types"
)

// evalCall dispatches function, method, and builtin calls.
func (m *Machine) evalCall(f *frame, x *ast.Call) Value {
	switch fun := ast.Unparen(x.Fun).(type) {
	case *ast.Ident:
		if mth, ok := m.info.IdentMethods[fun]; ok {
			// Implicit this->m(...): virtual dispatch on the dynamic
			// class of the receiver.
			if f.this == nil {
				m.fail(x.Pos(), "implicit member call with no receiver")
			}
			target := m.dispatch(x.Pos(), f.this, mth, true, "")
			args := m.evalArgs(f, x.Args)
			return m.callFunction(target, f.this, args)
		}
		if fn, ok := m.info.IdentFuncs[fun]; ok {
			if fn.Builtin {
				return m.callBuiltin(f, fn.Name, x)
			}
			args := m.evalArgs(f, x.Args)
			return m.callFunction(fn, nil, args)
		}
		m.fail(x.Pos(), "unresolved call target %s", fun.Name)
	case *ast.Member:
		mth, ok := m.info.MethodRefs[fun]
		if !ok {
			m.fail(x.Pos(), "unresolved method %s", fun.Name)
		}
		obj := m.receiverObject(f, fun.X, fun.Arrow)
		target := m.dispatch(x.Pos(), obj, mth, true, fun.Qual)
		args := m.evalArgs(f, x.Args)
		return m.callFunction(target, obj, args)
	}
	m.fail(x.Pos(), "called expression is not callable")
	return Value{}
}

func (m *Machine) evalArgs(f *frame, args []ast.Expr) []Value {
	out := make([]Value, len(args))
	for i, a := range args {
		out[i] = m.evalExpr(f, a)
	}
	return out
}

// dispatch resolves the method actually invoked: virtual methods dispatch
// on the receiver's dynamic class unless an explicit qualifier pins the
// target.
func (m *Machine) dispatch(pos source.Pos, obj *Object, mth *types.Func, dynamic bool, qual string) *types.Func {
	if qual != "" || !mth.Virtual || !dynamic {
		if mth.Body == nil && mth.Virtual {
			// Pure or body-less virtual reached statically: try dynamic.
			if t := m.h.Overrides(obj.Class, mth.Name); t != nil && t.Body != nil {
				return t
			}
		}
		return mth
	}
	target := m.h.Overrides(obj.Class, mth.Name)
	if target == nil || target.Body == nil {
		m.fail(pos, "pure virtual method %s called on %s", mth.QualifiedName(), obj.Class.Name)
	}
	return target
}

// ---------------------------------------------------------------------------
// new / delete

func (m *Machine) evalNew(f *frame, x *ast.New) Value {
	t := m.info.TypeExprs[x.Type]

	if x.Len != nil { // new T[n]
		n := int(m.evalExpr(f, x.Len).AsInt())
		if n < 0 {
			m.fail(x.Pos(), "negative array size %d in new[]", n)
		}
		blk := &HeapBlock{Array: true}
		cells := make([]*Cell, n)
		if cls := types.IsClass(t); cls != nil {
			for i := range cells {
				obj := m.newObject(cls, true)
				m.constructObject(obj, cls.CtorByArity(0), nil)
				cells[i] = &Cell{V: Value{K: KObj, Obj: obj}}
				blk.Objs = append(blk.Objs, obj)
			}
		} else {
			for i := range cells {
				cells[i] = &Cell{V: m.zeroValue(t)}
			}
		}
		blk.Cells = cells
		return ptrV(Pointer{Arr: cells, arrp: true, Block: blk})
	}

	if cls := types.IsClass(t); cls != nil { // new C(args)
		obj := m.newObject(cls, true)
		args := m.evalArgs(f, x.Args)
		m.constructObject(obj, m.info.NewCtors[x], args)
		blk := &HeapBlock{Objs: []*Object{obj}}
		return ptrV(Pointer{Obj: obj, Block: blk})
	}

	// Scalar new.
	cell := &Cell{V: m.zeroValue(t)}
	if len(x.Args) == 1 {
		v := m.evalExpr(f, x.Args[0])
		m.storeInto(cell, m.convert(v, t))
	}
	blk := &HeapBlock{Cells: []*Cell{cell}}
	return ptrV(Pointer{Cell: cell, Block: blk})
}

func (m *Machine) evalDelete(f *frame, x *ast.Delete) {
	v := m.evalExpr(f, x.X)
	if v.K != KPtr {
		m.fail(x.Pos(), "delete of non-pointer")
	}
	p := v.P
	if p.IsNull() {
		return // deleting null is a no-op, as in C++
	}
	blk := p.Block
	if blk == nil {
		m.fail(x.Pos(), "delete of pointer not obtained from new")
	}
	if blk.Freed {
		m.fail(x.Pos(), "double delete")
	}
	if x.Array != blk.Array {
		if blk.Array {
			m.fail(x.Pos(), "array allocated with new[] must be released with delete[]")
		}
		m.fail(x.Pos(), "scalar allocation must be released with delete, not delete[]")
	}
	blk.Freed = true
	for i := len(blk.Objs) - 1; i >= 0; i-- {
		m.destroyObject(blk.Objs[i])
	}
}

// ---------------------------------------------------------------------------
// Builtins

func (m *Machine) callBuiltin(f *frame, name string, x *ast.Call) Value {
	switch name {
	case "print", "println":
		if len(x.Args) == 1 {
			m.printValue(f, x.Args[0])
		}
		if name == "println" {
			fmt.Fprintln(m.out)
		}
		return Value{K: KVoid}
	case "malloc":
		n := int(m.evalExpr(f, x.Args[0]).AsInt())
		if n < 0 {
			m.fail(x.Pos(), "malloc of negative size %d", n)
		}
		cells := make([]*Cell, n)
		for i := range cells {
			cells[i] = &Cell{V: intV(0)}
		}
		blk := &HeapBlock{Cells: cells, Array: true}
		return ptrV(Pointer{Arr: cells, arrp: true, Block: blk})
	case "free":
		v := m.evalExpr(f, x.Args[0])
		if v.K != KPtr || v.P.IsNull() {
			return Value{K: KVoid} // free(nullptr) is a no-op
		}
		blk := v.P.Block
		if blk == nil {
			m.fail(x.Pos(), "free of pointer not obtained from an allocator")
		}
		if blk.Freed {
			m.fail(x.Pos(), "double free")
		}
		blk.Freed = true
		for i := len(blk.Objs) - 1; i >= 0; i-- {
			m.destroyObject(blk.Objs[i])
		}
		return Value{K: KVoid}
	case "rand_seed":
		m.rng = uint64(m.evalExpr(f, x.Args[0]).AsInt())*2862933555777941757 + 3037000493
		return Value{K: KVoid}
	case "rand_next":
		n := m.evalExpr(f, x.Args[0]).AsInt()
		if n <= 0 {
			m.fail(x.Pos(), "rand_next bound must be positive, got %d", n)
		}
		m.rng = m.rng*6364136223846793005 + 1442695040888963407
		return intV(int64((m.rng >> 33) % uint64(n)))
	case "clock":
		return intV(m.steps)
	case "abort":
		m.fail(x.Pos(), "abort() called")
	}
	m.fail(x.Pos(), "unknown builtin %s", name)
	return Value{}
}

// printValue renders one print argument; char* prints as a NUL-terminated
// string.
func (m *Machine) printValue(f *frame, arg ast.Expr) {
	v := m.evalExpr(f, arg)
	t := m.info.TypeOf(arg)
	if p, ok := t.(*types.Pointer); ok {
		if b, isBasic := p.Elem.(*types.Basic); isBasic && b.Kind == types.Char && v.K == KPtr && !v.P.IsNull() {
			m.printCString(v.P)
			return
		}
	}
	fmt.Fprint(m.out, v.String())
}

func (m *Machine) printCString(p Pointer) {
	if !p.arrp {
		if p.Cell != nil {
			fmt.Fprint(m.out, string(rune(byte(p.Cell.V.AsInt()))))
		}
		return
	}
	for i := p.Idx; i < len(p.Arr); i++ {
		c := byte(p.Arr[i].V.AsInt())
		if c == 0 {
			return
		}
		fmt.Fprint(m.out, string(rune(c)))
	}
}
