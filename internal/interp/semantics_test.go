package interp_test

import (
	"testing"
)

// Additional semantic edge cases, mostly around construction order,
// virtual bases, dispatch, and value copying.

func TestVirtualBaseInitArgsFromMostDerived(t *testing.T) {
	// C++ semantics: the MOST DERIVED class's initializer for a virtual
	// base wins; intermediate classes' initializers for it are ignored.
	expectExit(t, `
class V {
public:
	int v;
	V(int a) : v(a) {}
	V() : v(-1) {}
};
class L : public virtual V {
public:
	L() : V(100) {}   // ignored when L is not most derived
};
class R : public virtual V {
public:
	R() : V(200) {}   // ignored when R is not most derived
};
class D : public L, public R {
public:
	D() : V(42) {}    // this one runs
};
int main() {
	D d;
	L l;              // here L IS most derived: V(100)
	return d.v == 42 && l.v == 100 ? 0 : 1;
}`, 0)
}

func TestBaseMethodSeesDerivedOverride(t *testing.T) {
	// A base method calling a virtual method dispatches to the override.
	expectExit(t, `
class Base {
public:
	virtual int step() { return 1; }
	int total() { return step() * 10; }
};
class Derived : public Base {
public:
	virtual int step() { return 4; }
};
int main() {
	Derived d;
	return d.total();
}`, 40)
}

func TestFieldHidingAtRuntime(t *testing.T) {
	expectExit(t, `
class B { public: int x; B() : x(1) {} };
class D : public B {
public:
	int x;       // hides B::x
	D() : x(2) {}
};
int main() {
	D d;
	return d.x * 10 + d.B::x;  // 2 and 1
}`, 21)
}

func TestArraysInsideObjectsCopy(t *testing.T) {
	expectExit(t, `
class Buf {
public:
	int data[3];
	Buf() { data[0] = 1; data[1] = 2; data[2] = 3; }
};
int main() {
	Buf a;
	Buf b = a;     // deep copy of the embedded array
	b.data[0] = 9;
	return a.data[0] * 10 + b.data[0];  // 1 and 9
}`, 19)
}

func TestEmbeddedObjectCopyIsDeep(t *testing.T) {
	expectExit(t, `
class Inner { public: int v; Inner() : v(5) {} };
class Outer { public: Inner in; };
int main() {
	Outer a;
	Outer b = a;
	b.in.v = 7;
	return a.in.v * 10 + b.in.v;  // 5 and 7
}`, 57)
}

func TestDeleteNullIsNoop(t *testing.T) {
	expectExit(t, `
class C { public: int x; };
int main() {
	C* p = nullptr;
	delete p;       // no-op, as in C++
	free(nullptr);  // also a no-op
	return 0;
}`, 0)
}

func TestMemberPointerThroughHierarchy(t *testing.T) {
	expectExit(t, `
class B { public: int common; B() : common(3) {} };
class D : public B { public: int own; D() : own(4) {} };
int main() {
	int B::* pb = &B::common;
	int D::* pd = pb;       // B::* converts to D::*
	D d;
	return d.*pd * 10 + d.*(&D::own);  // 3 and 4
}`, 34)
}

func TestGlobalArrayAndGlobals(t *testing.T) {
	expectExit(t, `
int table[5];
int fill() {
	for (int i = 0; i < 5; i++) { table[i] = i * i; }
	return table[4];
}
int cached = fill();
int main() { return cached + table[2]; }`, 16+4)
}

func TestCharArithmetic(t *testing.T) {
	expectExit(t, `
int main() {
	char c = 'A';
	c = (char)(c + 1);
	char d = 'z';
	return c == 'B' && d - 'a' == 25 ? 0 : 1;
}`, 0)
}

func TestDoubleTruncationAndPromotion(t *testing.T) {
	expectExit(t, `
int main() {
	double d = 7.9;
	int i = (int)d;           // truncates to 7
	double half = 1 / 2.0;    // promotion: 0.5
	return i * 10 + (half == 0.5 ? 1 : 0);
}`, 71)
}

func TestShortCircuitEffects(t *testing.T) {
	expectOutput(t, `
int calls = 0;
bool touch() { calls = calls + 1; return true; }
int main() {
	bool a = false && touch();  // touch not called
	bool b = true || touch();   // touch not called
	bool c = true && touch();   // called
	print(calls);
	return a || b || c ? 0 : 1;
}`, "1")
}

func TestNestedLoopsBreakContinue(t *testing.T) {
	expectExit(t, `
int main() {
	int hits = 0;
	for (int i = 0; i < 5; i++) {
		for (int j = 0; j < 5; j++) {
			if (j == 2) { break; }     // inner break only
			if (j == 1) { continue; }  // inner continue
			hits = hits + 1;
		}
	}
	return hits;  // j==0 counted per i: 5
}`, 5)
}

func TestBreakInSwitchInsideLoop(t *testing.T) {
	expectExit(t, `
int main() {
	int total = 0;
	for (int i = 0; i < 4; i++) {
		switch (i) {
		case 0: total += 1; break;  // exits the switch, not the loop
		case 1:
		case 2: total += 10; break;
		default: total += 100;
		}
	}
	return total;  // 1 + 10 + 10 + 100
}`, 121)
}

func TestRecursiveDataStructure(t *testing.T) {
	expectExit(t, `
class Node {
public:
	int v;
	Node* next;
	Node(int a, Node* n) : v(a), next(n) {}
};
int sum(Node* n) {
	if (n == nullptr) { return 0; }
	return n->v + sum(n->next);
}
int main() {
	Node* list = nullptr;
	for (int i = 1; i <= 10; i++) { list = new Node(i, list); }
	int total = sum(list);
	while (list != nullptr) {
		Node* next = list->next;
		delete list;
		list = next;
	}
	return total;
}`, 55)
}

func TestVoidPointerRoundTrip(t *testing.T) {
	expectExit(t, `
class C { public: int tag; C() : tag(77) {} };
int main() {
	C* c = new C();
	void* v = (void*)c;
	C* back = (C*)v;
	int r = back->tag;
	delete back;
	return r;
}`, 77)
}

func TestDestructorRunsOnEarlyReturn(t *testing.T) {
	expectOutput(t, `
class Guard {
public:
	int id;
	Guard(int i) : id(i) {}
	~Guard() { print(id); }
};
int f(bool early) {
	Guard a(1);
	if (early) {
		Guard b(2);
		return 0; // b then a destroyed
	}
	return 1;
}
int main() {
	f(true);
	print("|");
	return 0;
}`, "21|")
}

func TestStaticTypeNarrowingThroughUpcast(t *testing.T) {
	// Virtual dispatch through an upcast pointer still reaches the
	// derived override; non-virtual methods bind statically.
	expectExit(t, `
class A {
public:
	virtual int v() { return 1; }
	int s() { return 10; }
};
class B : public A {
public:
	virtual int v() { return 2; }
	int s() { return 20; }
};
int main() {
	B b;
	A* p = &b;
	return p->v() * 100 + p->s();  // 2 and 10
}`, 210)
}

func TestClockAndAbortBuiltins(t *testing.T) {
	expectExit(t, `
int main() {
	int before = clock();
	int x = 0;
	for (int i = 0; i < 10; i++) { x += i; }
	int after = clock();
	return after > before ? 0 : 1;
}`, 0)
}

func TestModuloAndShift(t *testing.T) {
	expectExit(t, `
int main() {
	int a = 17 % 5;       // 2
	int b = 1 << 4;       // 16
	int c = 256 >> 3;     // 32
	int d = (6 & 3) | 8;  // 2|8 = 10
	int e = 5 ^ 1;        // 4
	return a + b + c + d + e;  // 64
}`, 64)
}
