package interp

import (
	"deadmembers/internal/source"
	"deadmembers/internal/types"
)

// This file holds the runtime-core entry points that exist for the sake
// of an external Executor (the bytecode VM in internal/vm). They expose
// value-level operations whose tree-walking counterparts are tangled with
// AST evaluation, so both engines share one implementation of every
// observable behaviour.

// GlobalCell resolves a global variable to its storage cell. Globals are
// registered incrementally while their initializers run, so a lookup
// during global initialization can miss — the caller must fail exactly
// like varCell does.
func (m *Machine) GlobalCell(v *types.Var) (*Cell, bool) {
	c, ok := m.globals[v]
	return c, ok
}

// FrameCell resolves v in frame f first, then the globals — the same
// resolution order as the tree-walker's varCell.
func (m *Machine) FrameCell(f *Frame, v *types.Var) (*Cell, bool) {
	if c, ok := f.Vars[v]; ok {
		return c, true
	}
	return m.GlobalCell(v)
}

// StringValue materializes a string literal: a fresh NUL-terminated cell
// array per evaluation, exactly as the tree-walker builds one each time
// the literal is evaluated.
func (m *Machine) StringValue(s string) Value {
	cells := make([]*Cell, len(s)+1)
	for i := 0; i < len(s); i++ {
		cells[i] = &Cell{V: charV(s[i])}
	}
	cells[len(s)] = &Cell{V: charV(0)}
	return ptrV(Pointer{Arr: cells, arrp: true})
}

// TryAddrOfIndex implements the &arr[i] fast path on an evaluated base
// and index: a pointer into the array (one-past-the-end allowed). ok is
// false when base is neither an array value nor an array pointer — the
// caller must then fall back to re-evaluating the operand as an lvalue,
// preserving the tree-walker's double evaluation.
func (m *Machine) TryAddrOfIndex(pos source.Pos, base Value, idx64 int64) (Value, bool) {
	idx := int(idx64)
	switch base.K {
	case KArr:
		cells := base.Cells()
		if idx < 0 || idx > len(cells) {
			m.Fail(pos, "&array[%d] out of range [0,%d]", idx, len(cells))
		}
		return ptrV(Pointer{Arr: cells, Idx: idx, arrp: true}), true
	case KPtr:
		if base.P.arrp {
			p := *base.P
			p.Idx += idx
			return ptrV(p), true
		}
	}
	return Value{}, false
}

// AddrOfLoc takes the address of an evaluated lvalue (the & slow path):
// object locations and object-valued cells yield object pointers,
// everything else a plain cell pointer.
func AddrOfLoc(l Loc) Value {
	if obj := l.ObjectOf(); obj != nil && (l.C == nil || l.C.V.K == KObj) {
		return ptrV(Pointer{Obj: obj})
	}
	return ptrV(Pointer{Cell: l.C})
}

// ObjectPointer builds a pointer to obj (the value of `this`).
func ObjectPointer(obj *Object) Value {
	return ptrV(Pointer{Obj: obj})
}
