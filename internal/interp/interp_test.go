package interp_test

import (
	"strings"
	"testing"

	"deadmembers/internal/frontend"
	"deadmembers/internal/heapsim"
	"deadmembers/internal/interp"
)

// run compiles and executes src, failing the test on any error.
func run(t *testing.T, src string) *interp.Result {
	t.Helper()
	res, err := tryRun(t, src)
	if err != nil {
		t.Fatalf("runtime error: %v", err)
	}
	return res
}

func tryRun(t *testing.T, src string) (*interp.Result, error) {
	t.Helper()
	r := frontend.Compile(frontend.Source{Name: "t.mcc", Text: src})
	if err := r.Err(); err != nil {
		t.Fatalf("compile errors:\n%v", err)
	}
	return interp.Run(r.Program, r.Graph, interp.Options{})
}

func expectExit(t *testing.T, src string, want int) {
	t.Helper()
	res := run(t, src)
	if res.ExitCode != want {
		t.Fatalf("exit code = %d, want %d", res.ExitCode, want)
	}
}

func expectOutput(t *testing.T, src, want string) {
	t.Helper()
	res := run(t, src)
	if res.Output != want {
		t.Fatalf("output = %q, want %q", res.Output, want)
	}
}

func expectRuntimeError(t *testing.T, src, wantSub string) {
	t.Helper()
	_, err := tryRun(t, src)
	if err == nil {
		t.Fatalf("expected runtime error containing %q, got success", wantSub)
	}
	if !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("error = %v, want substring %q", err, wantSub)
	}
}

func TestArithmeticAndControlFlow(t *testing.T) {
	expectExit(t, `
int main() {
	int sum = 0;
	for (int i = 1; i <= 10; i++) { sum += i; }
	int j = 0;
	while (j < 3) { j++; }
	do { j++; } while (j < 5);
	if (sum == 55 && j == 5) { return 42; } else { return 1; }
}`, 42)
}

func TestSwitch(t *testing.T) {
	expectExit(t, `
int pick(int v) {
	switch (v) {
	case 1: return 10;
	case 2:
	case 3: return 20;
	default: return 30;
	}
	return -1;
}
int main() { return pick(1) + pick(2) + pick(3) + pick(9); }`, 10+20+20+30)
}

func TestRecursionAndGlobals(t *testing.T) {
	expectExit(t, `
int calls = 0;
int fib(int n) {
	calls = calls + 1;
	if (n < 2) { return n; }
	return fib(n-1) + fib(n-2);
}
int main() { return fib(10) + (calls > 0 ? 1 : 0); }`, 56)
}

func TestClassConstructionAndMethods(t *testing.T) {
	expectExit(t, `
class Point {
public:
	int x;
	int y;
	Point(int ax, int ay) : x(ax), y(ay) {}
	int manhattan() { return x + y; }
};
int main() {
	Point p(3, 4);
	return p.manhattan();
}`, 7)
}

func TestVirtualDispatch(t *testing.T) {
	expectExit(t, `
class Shape {
public:
	virtual int area() { return 0; }
};
class Square : public Shape {
public:
	int side;
	Square(int s) : side(s) {}
	virtual int area() { return side * side; }
};
class Rect : public Shape {
public:
	int w; int h;
	Rect(int aw, int ah) : w(aw), h(ah) {}
	virtual int area() { return w * h; }
};
int main() {
	Shape* shapes[3];
	Shape s;
	Square sq(3);
	Rect r(2, 5);
	shapes[0] = &s;
	shapes[1] = &sq;
	shapes[2] = &r;
	int total = 0;
	for (int i = 0; i < 3; i++) { total += shapes[i]->area(); }
	return total;
}`, 0+9+10)
}

func TestPureVirtualAndOverride(t *testing.T) {
	expectExit(t, `
class Abstract {
public:
	virtual int value() = 0;
	int twice() { return value() * 2; }
};
class Impl : public Abstract {
public:
	virtual int value() { return 21; }
};
int main() {
	Impl i;
	Abstract* a = &i;
	return a->twice();
}`, 42)
}

func TestConstructorChainAndDestructorOrder(t *testing.T) {
	expectOutput(t, `
class A {
public:
	A() { print("A+"); }
	~A() { print("A-"); }
};
class B : public A {
public:
	A inner;
	B() { print("B+"); }
	~B() { print("B-"); }
};
int main() {
	B b;
	print("|");
	return 0;
}`, "A+A+B+|B-A-A-")
}

func TestVirtualBaseConstructedOnce(t *testing.T) {
	expectOutput(t, `
class V {
public:
	int v;
	V() : v(7) { print("V"); }
};
class L : public virtual V { public: L() { print("L"); } };
class R : public virtual V { public: R() { print("R"); } };
class D : public L, public R {
public:
	D() { print("D"); }
};
int main() {
	D d;
	print(d.v);
	return 0;
}`, "VLRD7")
}

func TestNewDeleteAndDtor(t *testing.T) {
	expectOutput(t, `
class Res {
public:
	int id;
	Res(int i) : id(i) {}
	~Res() { print(id); }
};
int main() {
	Res* a = new Res(1);
	Res* b = new Res(2);
	delete b;
	delete a;
	return 0;
}`, "21")
}

func TestVirtualDestructor(t *testing.T) {
	expectOutput(t, `
class Base {
public:
	virtual ~Base() { print("B"); }
};
class Derived : public Base {
public:
	~Derived() { print("D"); }
};
int main() {
	Base* p = new Derived();
	delete p; // dynamic class's destructor chain must run
	return 0;
}`, "DB")
}

func TestArraysAndPointerArithmetic(t *testing.T) {
	expectExit(t, `
int main() {
	int a[5];
	for (int i = 0; i < 5; i++) { a[i] = i * i; }
	int* p = &a[1];
	p = p + 2;     // points at a[3]
	int d = p - &a[0];
	return *p + d; // 9 + 3
}`, 12)
}

func TestNewArrayOfObjects(t *testing.T) {
	expectExit(t, `
class Cnt {
public:
	int n;
	Cnt() : n(1) {}
};
int main() {
	Cnt* cs = new Cnt[4];
	int total = 0;
	for (int i = 0; i < 4; i++) { total += cs[i].n; }
	delete[] cs;
	return total;
}`, 4)
}

func TestMemberPointers(t *testing.T) {
	expectExit(t, `
class P {
public:
	int x;
	int y;
	P(int a, int b) : x(a), y(b) {}
};
int main() {
	int P::* pm = &P::x;
	P p(30, 12);
	int first = p.*pm;
	pm = &P::y;
	P* pp = &p;
	return first + pp->*pm;
}`, 42)
}

func TestStringsAndPrint(t *testing.T) {
	expectOutput(t, `
int main() {
	print("x=");
	print(41 + 1);
	println();
	print('c');
	print(true);
	print(2.5);
	return 0;
}`, "x=42\nctrue2.5")
}

func TestMallocFreeAndCasts(t *testing.T) {
	expectExit(t, `
int main() {
	int* p = (int*)malloc(16);
	p[0] = 40;
	p[1] = 2;
	int r = p[0] + p[1];
	free((void*)p);
	return r;
}`, 42)
}

func TestImplicitThisAccess(t *testing.T) {
	expectExit(t, `
class Acc {
public:
	int total;
	Acc() : total(0) {}
	void add(int v) { total += v; }
	int get() { return total; }
};
int main() {
	Acc a;
	a.add(40);
	a.add(2);
	return a.get();
}`, 42)
}

func TestQualifiedCallBypassesDispatch(t *testing.T) {
	expectExit(t, `
class A { public: virtual int f() { return 1; } };
class B : public A { public: virtual int f() { return 2; } };
int main() {
	B b;
	A* p = &b;
	return p->f() * 10 + b.A::f(); // dynamic 2, static 1
}`, 21)
}

func TestCopySemantics(t *testing.T) {
	expectExit(t, `
class V { public: int n; V(int a) : n(a) {} };
int main() {
	V a(5);
	V b = a;   // copy
	b.n = 9;   // must not affect a
	return a.n * 10 + b.n;
}`, 59)
}

func TestRandDeterminism(t *testing.T) {
	src := `
int main() {
	rand_seed(123);
	int total = 0;
	for (int i = 0; i < 10; i++) { total += rand_next(100); }
	return total;
}`
	a := run(t, src).ExitCode
	b := run(t, src).ExitCode
	if a != b {
		t.Fatalf("rand_next must be deterministic: %d vs %d", a, b)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"div by zero", `int main() { int z = 0; return 1 / z; }`, "division by zero"},
		{"null deref", `int main() { int* p = nullptr; return *p; }`, "null pointer dereference"},
		{"index oob", `int main() { int a[3]; return a[5]; }`, "out of range"},
		{"double delete", `class C { public: int x; }; int main() { C* p = new C(); delete p; delete p; return 0; }`, "double delete"},
		{"use after free", `int main() { int* p = new int(5); delete p; return *p; }`, "use after free"},
		{"mismatched delete", `int main() { int* p = new int[3]; delete p; return 0; }`, "delete[]"},
		{"abort", `int main() { abort(); return 0; }`, "abort"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			expectRuntimeError(t, tc.src, tc.want)
		})
	}
}

func TestStepLimitConfigurable(t *testing.T) {
	r := frontend.Compile(frontend.Source{Name: "t.mcc", Text: `
int main() { int s = 0; for (int i = 0; i < 1000000; i++) { s++; } return 0; }`})
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	_, err := interp.Run(r.Program, r.Graph, interp.Options{MaxSteps: 1000})
	if err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Fatalf("want step-limit error, got %v", err)
	}
}

func TestLedgerAccounting(t *testing.T) {
	src := `
class Small { public: int a; };           // 4 bytes
class Big { public: double d; int arr[4]; }; // 8 + 16 -> 24 bytes
int main() {
	Small s;          // +4
	Big* b1 = new Big(); // +24
	Big* b2 = new Big(); // +24 (peak: 52)
	delete b1;          // -24
	Big* b3 = new Big(); // +24 (52 again)
	delete b2;
	delete b3;
	return 0;
}`
	r := frontend.Compile(frontend.Source{Name: "t.mcc", Text: src})
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	led := heapsim.New()
	if _, err := interp.Run(r.Program, r.Graph, interp.Options{Ledger: led}); err != nil {
		t.Fatal(err)
	}
	if led.TotalObjects != 4 {
		t.Fatalf("total objects = %d, want 4", led.TotalObjects)
	}
	if led.TotalBytes != 4+24*3 {
		t.Fatalf("total bytes = %d, want 76", led.TotalBytes)
	}
	if led.HighWater != 52 {
		t.Fatalf("high water = %d, want 52", led.HighWater)
	}
	if led.LiveBytes != 0 {
		t.Fatalf("live bytes after run = %d, want 0 (all freed)", led.LiveBytes)
	}
}

func TestLedgerCountsEmbeddedOnce(t *testing.T) {
	src := `
class Inner { public: int v; };
class Outer { public: Inner in; int pad; };
int main() {
	Outer o; // a single 8-byte allocation; Inner is embedded, not separate
	return 0;
}`
	r := frontend.Compile(frontend.Source{Name: "t.mcc", Text: src})
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	led := heapsim.New()
	if _, err := interp.Run(r.Program, r.Graph, interp.Options{Ledger: led}); err != nil {
		t.Fatal(err)
	}
	if led.TotalObjects != 1 {
		t.Fatalf("total objects = %d, want 1 (embedded member not separate)", led.TotalObjects)
	}
	if led.TotalBytes != 8 {
		t.Fatalf("total bytes = %d, want 8", led.TotalBytes)
	}
}

func TestBlockScopedDestruction(t *testing.T) {
	expectOutput(t, `
class T {
public:
	int id;
	T(int i) : id(i) {}
	~T() { print(id); }
};
int main() {
	T outer(1);
	{
		T inner(2);
	}          // inner destroyed here
	print("|");
	return 0;  // outer destroyed here
}`, "2|1")
}

func TestLoopIterationScopeDestruction(t *testing.T) {
	src := `
class T { public: int x; };
int main() {
	for (int i = 0; i < 100; i++) {
		T t; // must be destroyed每 iteration, not accumulate
	}
	return 0;
}`
	src = strings.Replace(src, "每", "each", 1)
	r := frontend.Compile(frontend.Source{Name: "t.mcc", Text: src})
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	led := heapsim.New()
	if _, err := interp.Run(r.Program, r.Graph, interp.Options{Ledger: led}); err != nil {
		t.Fatal(err)
	}
	if led.TotalObjects != 100 {
		t.Fatalf("total objects = %d, want 100", led.TotalObjects)
	}
	if led.HighWater != 4 {
		t.Fatalf("high water = %d, want 4 (one T at a time)", led.HighWater)
	}
}

func TestGlobalObjectLifecycle(t *testing.T) {
	expectOutput(t, `
class G {
public:
	G() { print("+"); }
	~G() { print("-"); }
};
G g1;
G g2;
int main() { print("M"); return 0; }`, "++M--")
}

func TestUnionStorage(t *testing.T) {
	expectExit(t, `
union U { int i; double d; };
int main() {
	U u;
	u.i = 42;
	return u.i;
}`, 42)
}
