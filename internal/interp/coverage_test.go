package interp_test

import "testing"

// Tests targeting less-travelled interpreter paths: pointer comparisons
// and ordering, value conversions, by-value class passing/returning,
// prefix/postfix on pointers and doubles, and printing of every kind.

func TestByValueClassParamAndReturn(t *testing.T) {
	expectExit(t, `
class V {
public:
	int n;
	V(int a) : n(a) {}
};
V doubleIt(V v) {     // by-value parameter: callee gets a copy
	v.n = v.n * 2;
	return v;          // by-value return: caller gets a copy
}
int main() {
	V a(21);
	V b = doubleIt(a);
	return b.n * (a.n == 21 ? 1 : 0);  // a unchanged
}`, 42)
}

func TestPointerOrderingWithinArray(t *testing.T) {
	expectExit(t, `
int main() {
	int a[10];
	int* lo = &a[2];
	int* hi = &a[7];
	int ok = 0;
	if (lo < hi) { ok = ok + 1; }
	if (hi > lo) { ok = ok + 1; }
	if (lo <= lo) { ok = ok + 1; }
	if (hi >= hi) { ok = ok + 1; }
	if (lo != hi) { ok = ok + 1; }
	return ok;
}`, 5)
}

func TestPointerEqualityAcrossObjects(t *testing.T) {
	expectExit(t, `
class C { public: int v; };
int main() {
	C a;
	C b;
	C* pa = &a;
	C* pa2 = &a;
	C* pb = &b;
	int ok = 0;
	if (pa == pa2) { ok = ok + 1; }
	if (pa != pb) { ok = ok + 1; }
	if (pa != nullptr) { ok = ok + 1; }
	if (!(nullptr == pa)) { ok = ok + 1; }
	return ok;
}`, 4)
}

func TestPrefixPostfixOnPointersAndDoubles(t *testing.T) {
	expectExit(t, `
int main() {
	int a[5];
	for (int i = 0; i < 5; i++) { a[i] = i * 10; }
	int* p = &a[0];
	p++;               // -> a[1]
	++p;               // -> a[2]
	int x = *p;        // 20
	p--;               // -> a[1]
	--p;               // -> a[0]
	double d = 1.5;
	d++;
	++d;               // 3.5
	return x + *p + (d == 3.5 ? 2 : 0);  // 20 + 0 + 2
}`, 22)
}

func TestConversionsEveryDirection(t *testing.T) {
	expectExit(t, `
int main() {
	int i = (int)'A';          // 65
	char c = (char)321;        // 321 % 256 = 65
	bool bTrue = (bool)3;
	bool bFalse = (bool)0.0;
	double d = (double)true;   // 1.0
	int fromD = (int)9.99;     // 9
	return i + c + (bTrue ? 1 : 0) + (bFalse ? 100 : 0) + (int)d + fromD;
}`, 65+65+1+0+1+9)
}

func TestPrintAllKinds(t *testing.T) {
	expectOutput(t, `
class C { public: int v; };
int main() {
	print(-3);
	print(' ');
	print(2.25);
	print(' ');
	print(false);
	print(' ');
	int* null = nullptr;
	print(null);
	print(' ');
	C c;
	C* p = &c;
	print(p);
	print(' ');
	int C::* pm = &C::v;
	print(pm != nullptr);
	println();
	return 0;
}`, "-3 2.25 false nullptr <ptr> true\n")
}

func TestCompoundAssignOnMembersAndElements(t *testing.T) {
	expectExit(t, `
class Acc {
public:
	int total;
	int parts[3];
	Acc() : total(0) { parts[0] = 0; parts[1] = 0; parts[2] = 0; }
};
int main() {
	Acc a;
	a.total += 5;
	a.total -= 1;
	a.total *= 3;      // 12
	a.parts[1] += 7;
	a.parts[1] %= 4;   // 3
	a.parts[2] = 9;
	a.parts[2] /= 2;   // 4
	return a.total + a.parts[1] + a.parts[2];
}`, 19)
}

func TestGlobalClassWithCtorArgs(t *testing.T) {
	expectExit(t, `
class Cfg {
public:
	int port;
	int timeout;
	Cfg(int p, int t) : port(p), timeout(t) {}
};
Cfg cfg(8000, 30);
int main() { return cfg.port / 100 + cfg.timeout; }`, 110)
}

func TestNegativeModuloAndDivision(t *testing.T) {
	// Go-style truncated division (matches C++11).
	expectExit(t, `
int main() {
	int a = -7 / 2;    // -3
	int b = -7 % 2;    // -1
	int c = 7 / -2;    // -3
	return (a == -3 && b == -1 && c == -3) ? 0 : 1;
}`, 0)
}

func TestDoWhileAndConditionKinds(t *testing.T) {
	expectExit(t, `
int main() {
	int n = 0;
	do { n++; } while (n < 3);
	int* p = &n;
	int hits = 0;
	while (p) { hits++; p = nullptr; }   // pointer condition
	double d = 2.0;
	if (d) { hits++; }                   // double condition
	char c = 'x';
	if (c) { hits++; }                   // char condition
	return n * 10 + hits;
}`, 33)
}

func TestMallocZeroAndFreeNull(t *testing.T) {
	expectExit(t, `
int main() {
	void* p = malloc(0);
	free(p);
	free(nullptr);
	return 0;
}`, 0)
}

func TestArrayOfClassLocals(t *testing.T) {
	expectOutput(t, `
class T {
public:
	int id;
	T() : id(7) {}
	~T() { print("-"); }
};
int main() {
	{
		T group[3];
		print(group[0].id + group[1].id + group[2].id);
	}
	print("|");
	return 0;
}`, "21---|")
}

func TestStringIndexing(t *testing.T) {
	expectExit(t, `
int main() {
	char* s = "abc";
	return s[0] + s[2] - 2 * 'a' - 2;  // 'a'+'c'-2'a'-2 = 0
}`, 0)
}
