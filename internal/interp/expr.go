package interp

import (
	"deadmembers/internal/ast"
	"deadmembers/internal/source"
	"deadmembers/internal/token"
	"deadmembers/internal/types"
)

// Loc is an evaluated lvalue: either a storage cell or a bare object (the
// result of dereferencing an object pointer). Exactly one of C and O is
// set.
type Loc struct {
	C *Cell
	O *Object
}

func (l Loc) Load() Value {
	if l.C != nil {
		return l.C.V
	}
	return Value{K: KObj, Obj: l.O}
}

func (m *Machine) StoreLoc(l Loc, v Value) {
	if l.C != nil {
		m.StoreInto(l.C, v)
		return
	}
	if v.K == KObj && v.Obj != nil {
		m.CopyObject(l.O, v.Obj)
	}
}

// objectOf extracts the class object an lvalue denotes.
func (l Loc) ObjectOf() *Object {
	if l.O != nil {
		return l.O
	}
	if l.C != nil && l.C.V.K == KObj {
		return l.C.V.Obj
	}
	return nil
}

// ---------------------------------------------------------------------------
// Expression evaluation

func (m *Machine) evalExpr(f *Frame, e ast.Expr) Value {
	switch x := e.(type) {
	case *ast.Paren:
		return m.evalExpr(f, x.X)
	case *ast.IntLit:
		return intV(x.Value)
	case *ast.FloatLit:
		return doubleV(x.Value)
	case *ast.CharLit:
		return charV(x.Value)
	case *ast.BoolLit:
		return boolV(x.Value)
	case *ast.NullLit:
		return nullV()
	case *ast.StringLit:
		cells := make([]*Cell, len(x.Value)+1)
		for i := 0; i < len(x.Value); i++ {
			cells[i] = &Cell{V: charV(x.Value[i])}
		}
		cells[len(x.Value)] = &Cell{V: charV(0)}
		return ptrV(Pointer{Arr: cells, arrp: true})
	case *ast.ThisExpr:
		if f.This == nil {
			m.Fail(x.Pos(), "this used with no receiver")
		}
		return ptrV(Pointer{Obj: f.This})
	case *ast.Ident:
		if fld := m.info.IdentFields[x]; fld != nil {
			cell := m.FieldCell(x.Pos(), f.This, fld)
			return cell.V
		}
		return m.varCell(f, x).V
	case *ast.QualifiedIdent:
		m.Fail(x.Pos(), "qualified identifier %s::%s used as value", x.Class, x.Name)
	case *ast.Unary:
		return m.evalUnary(f, x)
	case *ast.Postfix:
		l := m.evalLValue(f, x.X)
		old := l.Load()
		m.StoreLoc(l, m.IncDec(x.Pos(), old, x.Op == token.Inc))
		return old
	case *ast.Binary:
		return m.evalBinary(f, x)
	case *ast.Assign:
		return m.evalAssign(f, x)
	case *ast.Cond:
		if m.evalExpr(f, x.C).IsTruthy() {
			return m.evalExpr(f, x.Then)
		}
		return m.evalExpr(f, x.Else)
	case *ast.Member:
		l := m.evalLValue(f, x)
		return l.Load()
	case *ast.MemberPtrDeref:
		l := m.evalLValue(f, x)
		return l.Load()
	case *ast.Index:
		l := m.evalLValue(f, x)
		return l.Load()
	case *ast.Call:
		return m.evalCall(f, x)
	case *ast.Cast:
		v := m.evalExpr(f, x.X)
		return m.Convert(v, m.info.TypeExprs[x.Type])
	case *ast.New:
		return m.evalNew(f, x)
	case *ast.Delete:
		m.evalDelete(f, x)
		return Value{K: KVoid}
	case *ast.Sizeof:
		var t types.Type
		if x.Type != nil {
			t = m.info.TypeExprs[x.Type]
		} else {
			t = m.info.TypeOf(x.X) // operand is not evaluated
		}
		return intV(int64(m.h.SizeOf(t)))
	}
	m.Fail(e.Pos(), "unsupported expression")
	return Value{}
}

// varCell resolves a plain identifier to its storage cell.
func (m *Machine) varCell(f *Frame, x *ast.Ident) *Cell {
	v := m.info.IdentVars[x]
	if v == nil {
		m.Fail(x.Pos(), "unresolved identifier %s", x.Name)
	}
	if c, ok := f.Vars[v]; ok {
		return c
	}
	if c, ok := m.globals[v]; ok {
		return c
	}
	m.Fail(x.Pos(), "variable %s has no storage (not in scope)", x.Name)
	return nil
}

// fieldCell locates the cell of fld inside obj.
func (m *Machine) FieldCell(pos source.Pos, obj *Object, fld *types.Field) *Cell {
	if obj == nil {
		m.Fail(pos, "member %s accessed with null receiver", fld.QualifiedName())
	}
	c, ok := obj.Cell(fld)
	if !ok {
		m.Fail(pos, "object of class %s has no member %s (invalid downcast?)",
			obj.Class.Name, fld.QualifiedName())
	}
	return c
}

// evalLValue evaluates e as an assignable location.
func (m *Machine) evalLValue(f *Frame, e ast.Expr) Loc {
	switch x := e.(type) {
	case *ast.Paren:
		return m.evalLValue(f, x.X)
	case *ast.Ident:
		if fld := m.info.IdentFields[x]; fld != nil {
			return Loc{C: m.FieldCell(x.Pos(), f.This, fld)}
		}
		return Loc{C: m.varCell(f, x)}
	case *ast.Member:
		obj := m.receiverObject(f, x.X, x.Arrow)
		fld := m.info.FieldRefs[x]
		if fld == nil {
			m.Fail(x.Pos(), "member %s did not resolve to a data member", x.Name)
		}
		return Loc{C: m.FieldCell(x.Pos(), obj, fld)}
	case *ast.MemberPtrDeref:
		obj := m.receiverObject(f, x.X, x.Arrow)
		pv := m.evalExpr(f, x.Ptr)
		if pv.K != KMemberPtr || pv.MP == nil {
			m.Fail(x.Pos(), "dereference of null pointer-to-member")
		}
		return Loc{C: m.FieldCell(x.Pos(), obj, pv.MP)}
	case *ast.Index:
		base := m.evalExpr(f, x.X)
		idx := int(m.evalExpr(f, x.I).AsInt())
		switch base.K {
		case KArr:
			cells := base.Cells()
			if idx < 0 || idx >= len(cells) {
				m.Fail(x.Pos(), "array index %d out of range [0,%d)", idx, len(cells))
			}
			return Loc{C: cells[idx]}
		case KPtr:
			return m.PointerElem(x.Pos(), base.P, idx)
		}
		m.Fail(x.Pos(), "indexing non-array value")
	case *ast.Unary:
		if x.Op == token.Star {
			p := m.evalExpr(f, x.X)
			if p.K != KPtr {
				m.Fail(x.Pos(), "dereference of non-pointer")
			}
			return m.PointerElem(x.Pos(), p.P, 0)
		}
	}
	m.Fail(e.Pos(), "expression is not an lvalue at run time")
	return Loc{}
}

// pointerElem resolves ptr+delta to a location, checking null,
// use-after-free, and bounds.
func (m *Machine) PointerElem(pos source.Pos, p *Pointer, delta int) Loc {
	if p.IsNull() {
		m.Fail(pos, "null pointer dereference")
	}
	if p.Block != nil && p.Block.Freed {
		m.Fail(pos, "use after free")
	}
	switch {
	case p.Obj != nil:
		if delta != 0 {
			m.Fail(pos, "pointer arithmetic on object pointer")
		}
		return Loc{O: p.Obj}
	case p.Cell != nil:
		if delta != 0 {
			m.Fail(pos, "pointer arithmetic on non-array pointer")
		}
		return Loc{C: p.Cell}
	default:
		i := p.Idx + delta
		if i < 0 || i >= len(p.Arr) {
			m.Fail(pos, "pointer index %d out of range [0,%d)", i, len(p.Arr))
		}
		return Loc{C: p.Arr[i]}
	}
}

// receiverObject evaluates a member-access receiver to an object.
func (m *Machine) receiverObject(f *Frame, e ast.Expr, arrow bool) *Object {
	return m.ReceiverFromValue(e.Pos(), m.evalExpr(f, e), arrow)
}

// ReceiverFromValue converts an already-evaluated member-access receiver
// to an object; pos is the receiver expression's position (used by the
// failure diagnostics, which are shared verbatim with the tree-walker).
func (m *Machine) ReceiverFromValue(pos source.Pos, v Value, arrow bool) *Object {
	if arrow {
		if v.K != KPtr {
			m.Fail(pos, "-> on non-pointer value")
		}
		l := m.PointerElem(pos, v.P, 0)
		obj := l.ObjectOf()
		if obj == nil {
			m.Fail(pos, "-> target is not a class object")
		}
		return obj
	}
	if v.K != KObj || v.Obj == nil {
		m.Fail(pos, "member access on non-object value")
	}
	return v.Obj
}

func (m *Machine) evalUnary(f *Frame, x *ast.Unary) Value {
	switch x.Op {
	case token.Amp:
		if qi, ok := ast.Unparen(x.X).(*ast.QualifiedIdent); ok {
			fld := m.info.QualFieldRefs[qi]
			if fld == nil {
				m.Fail(x.Pos(), "unresolved pointer-to-member &%s::%s", qi.Class, qi.Name)
			}
			return memberPtrV(fld)
		}
		// &arr[i] yields a pointer into the array so that pointer
		// arithmetic on the result works.
		if ix, ok := ast.Unparen(x.X).(*ast.Index); ok {
			base := m.evalExpr(f, ix.X)
			idx := int(m.evalExpr(f, ix.I).AsInt())
			switch base.K {
			case KArr:
				cells := base.Cells()
				if idx < 0 || idx > len(cells) {
					m.Fail(x.Pos(), "&array[%d] out of range [0,%d]", idx, len(cells))
				}
				return ptrV(Pointer{Arr: cells, Idx: idx, arrp: true})
			case KPtr:
				if base.P.arrp {
					p := *base.P
					p.Idx += idx
					return ptrV(p)
				}
			}
		}
		l := m.evalLValue(f, x.X)
		if obj := l.ObjectOf(); obj != nil && (l.C == nil || l.C.V.K == KObj) {
			return ptrV(Pointer{Obj: obj})
		}
		return ptrV(Pointer{Cell: l.C})
	case token.Star:
		l := m.evalLValue(f, x)
		return l.Load()
	case token.Minus:
		v := m.evalExpr(f, x.X)
		if v.K == KDouble {
			return doubleV(-v.F)
		}
		return intV(-v.AsInt())
	case token.Not:
		return boolV(!m.evalExpr(f, x.X).IsTruthy())
	case token.Tilde:
		return intV(^m.evalExpr(f, x.X).AsInt())
	case token.Inc, token.Dec:
		l := m.evalLValue(f, x.X)
		nv := m.IncDec(x.Pos(), l.Load(), x.Op == token.Inc)
		m.StoreLoc(l, nv)
		return nv
	}
	m.Fail(x.Pos(), "unsupported unary operator %s", x.Op)
	return Value{}
}

func (m *Machine) IncDec(pos source.Pos, v Value, inc bool) Value {
	d := int64(1)
	if !inc {
		d = -1
	}
	switch v.K {
	case KDouble:
		return doubleV(v.F + float64(d))
	case KPtr:
		p := *v.P
		if p.Cell != nil || p.Obj != nil {
			m.Fail(pos, "pointer arithmetic on non-array pointer")
		}
		p.Idx += int(d)
		return ptrV(p)
	default:
		nv := v
		nv.I += d
		return nv
	}
}

func (m *Machine) evalAssign(f *Frame, x *ast.Assign) Value {
	l := m.evalLValue(f, x.LHS)
	rhs := m.evalExpr(f, x.RHS)
	if x.Op == token.Assign {
		// Convert to the static type of the LHS for numeric narrowing.
		if lt := m.info.TypeOf(x.LHS); lt != nil {
			rhs = m.Convert(rhs, lt)
		}
		m.StoreLoc(l, rhs)
		return l.Load()
	}
	old := l.Load()
	res := m.ApplyBinary(x.Pos(), x.Op.CompoundBase(), old, rhs)
	if lt := m.info.TypeOf(x.LHS); lt != nil {
		res = m.Convert(res, lt)
	}
	m.StoreLoc(l, res)
	return res
}

func (m *Machine) evalBinary(f *Frame, x *ast.Binary) Value {
	// Short-circuit logical operators.
	switch x.Op {
	case token.AmpAmp:
		if !m.evalExpr(f, x.X).IsTruthy() {
			return boolV(false)
		}
		return boolV(m.evalExpr(f, x.Y).IsTruthy())
	case token.PipePipe:
		if m.evalExpr(f, x.X).IsTruthy() {
			return boolV(true)
		}
		return boolV(m.evalExpr(f, x.Y).IsTruthy())
	}
	a := m.evalExpr(f, x.X)
	b := m.evalExpr(f, x.Y)
	return m.ApplyBinary(x.Pos(), x.Op, a, b)
}

func (m *Machine) ApplyBinary(pos source.Pos, op token.Kind, a, b Value) Value {
	// Pointer-to-member comparisons (including against the null constant,
	// whose MP field is nil) take precedence over plain pointer handling.
	if a.K == KMemberPtr || b.K == KMemberPtr {
		switch op {
		case token.Eq:
			return boolV(a.MP == b.MP)
		case token.Ne:
			return boolV(a.MP != b.MP)
		}
		m.Fail(pos, "invalid operation on pointer-to-member")
	}
	// Pointer arithmetic and comparisons.
	if a.K == KPtr || b.K == KPtr {
		return m.pointerBinary(pos, op, a, b)
	}
	if a.K == KDouble || b.K == KDouble {
		x, y := a.AsFloat(), b.AsFloat()
		switch op {
		case token.Plus:
			return doubleV(x + y)
		case token.Minus:
			return doubleV(x - y)
		case token.Star:
			return doubleV(x * y)
		case token.Slash:
			if y == 0 {
				m.Fail(pos, "floating division by zero")
			}
			return doubleV(x / y)
		case token.Eq:
			return boolV(x == y)
		case token.Ne:
			return boolV(x != y)
		case token.Lt:
			return boolV(x < y)
		case token.Gt:
			return boolV(x > y)
		case token.Le:
			return boolV(x <= y)
		case token.Ge:
			return boolV(x >= y)
		}
		m.Fail(pos, "invalid floating operation %s", op)
	}
	x, y := a.AsInt(), b.AsInt()
	switch op {
	case token.Plus:
		return intV(x + y)
	case token.Minus:
		return intV(x - y)
	case token.Star:
		return intV(x * y)
	case token.Slash:
		if y == 0 {
			m.Fail(pos, "integer division by zero")
		}
		return intV(x / y)
	case token.Percent:
		if y == 0 {
			m.Fail(pos, "integer modulo by zero")
		}
		return intV(x % y)
	case token.Shl:
		return intV(x << (uint(y) & 63))
	case token.Shr:
		return intV(x >> (uint(y) & 63))
	case token.Amp:
		return intV(x & y)
	case token.Pipe:
		return intV(x | y)
	case token.Caret:
		return intV(x ^ y)
	case token.Eq:
		return boolV(x == y)
	case token.Ne:
		return boolV(x != y)
	case token.Lt:
		return boolV(x < y)
	case token.Gt:
		return boolV(x > y)
	case token.Le:
		return boolV(x <= y)
	case token.Ge:
		return boolV(x >= y)
	}
	m.Fail(pos, "invalid integer operation %s", op)
	return Value{}
}

// ptrIdentity canonicalizes a pointer for comparison.
func ptrIdentity(p *Pointer) (interface{}, int) {
	switch {
	case p == nil:
		return nil, -1 // null
	case p.Obj != nil:
		return p.Obj, 0
	case p.Cell != nil:
		return p.Cell, 0
	case p.arrp:
		if len(p.Arr) > 0 {
			return p.Arr[0], p.Idx
		}
		return nil, p.Idx
	}
	return nil, -1 // null
}

func (m *Machine) pointerBinary(pos source.Pos, op token.Kind, a, b Value) Value {
	// ptr ± int, int + ptr, ptr - ptr.
	switch op {
	case token.Plus, token.Minus:
		if a.K == KPtr && b.K != KPtr {
			d := int(b.AsInt())
			if op == token.Minus {
				d = -d
			}
			p := *a.P
			if p.Cell != nil || p.Obj != nil {
				if d != 0 {
					m.Fail(pos, "pointer arithmetic on non-array pointer")
				}
				return a
			}
			p.Idx += d
			return ptrV(p)
		}
		if b.K == KPtr && op == token.Plus {
			return m.pointerBinary(pos, op, b, a)
		}
		if a.K == KPtr && b.K == KPtr && op == token.Minus {
			if !a.P.arrp || !b.P.arrp ||
				len(a.P.Arr) == 0 || len(b.P.Arr) == 0 || a.P.Arr[0] != b.P.Arr[0] {
				m.Fail(pos, "subtraction of pointers into different allocations")
			}
			return intV(int64(a.P.Idx - b.P.Idx))
		}
	case token.Eq, token.Ne, token.Lt, token.Gt, token.Le, token.Ge:
		// Comparisons against integral 0 (null constant).
		na, nb := a, b
		if na.K != KPtr {
			if na.AsInt() == 0 {
				na = nullV()
			} else {
				m.Fail(pos, "comparison of pointer with non-zero integer")
			}
		}
		if nb.K != KPtr {
			if nb.AsInt() == 0 {
				nb = nullV()
			} else {
				m.Fail(pos, "comparison of pointer with non-zero integer")
			}
		}
		ia, oa := ptrIdentity(na.P)
		ib, ob := ptrIdentity(nb.P)
		switch op {
		case token.Eq:
			return boolV(ia == ib && oa == ob)
		case token.Ne:
			return boolV(!(ia == ib && oa == ob))
		case token.Lt:
			return boolV(oa < ob)
		case token.Gt:
			return boolV(oa > ob)
		case token.Le:
			return boolV(oa <= ob)
		case token.Ge:
			return boolV(oa >= ob)
		}
	}
	m.Fail(pos, "invalid pointer operation %s", op)
	return Value{}
}

// convert adapts v to type t (numeric conversions, pointer passthrough).
func (m *Machine) Convert(v Value, t types.Type) Value {
	switch x := t.(type) {
	case *types.Basic:
		switch x.Kind {
		case types.Int:
			if v.K == KPtr {
				// Deterministic pointer-to-integer: null -> 0, else 1.
				if v.P.IsNull() {
					return intV(0)
				}
				return intV(1)
			}
			return intV(v.AsInt())
		case types.Char:
			return charV(byte(v.AsInt()))
		case types.Bool:
			return boolV(v.IsTruthy())
		case types.Double:
			return doubleV(v.AsFloat())
		case types.Void:
			return Value{K: KVoid}
		}
	case *types.Pointer:
		if v.K == KPtr {
			return v
		}
		if v.AsInt() == 0 {
			return nullV()
		}
		// Reinterpreting a nonzero integer as a pointer cannot be
		// materialized in the cell model.
		return nullV()
	case *types.MemberPointer:
		if v.K == KMemberPtr {
			return v
		}
		return Value{K: KMemberPtr}
	}
	return v
}
