package interp

import (
	"deadmembers/internal/ast"
	"deadmembers/internal/source"
	"deadmembers/internal/token"
	"deadmembers/internal/types"
)

// lv is an evaluated lvalue: either a storage cell or a bare object (the
// result of dereferencing an object pointer).
type lv struct {
	c   *Cell
	obj *Object
}

func (l lv) load() Value {
	if l.c != nil {
		return l.c.V
	}
	return Value{K: KObj, Obj: l.obj}
}

func (m *Machine) lvStore(l lv, v Value) {
	if l.c != nil {
		m.storeInto(l.c, v)
		return
	}
	if v.K == KObj && v.Obj != nil {
		m.copyObject(l.obj, v.Obj)
	}
}

// objectOf extracts the class object an lvalue denotes.
func (l lv) objectOf() *Object {
	if l.obj != nil {
		return l.obj
	}
	if l.c != nil && l.c.V.K == KObj {
		return l.c.V.Obj
	}
	return nil
}

// ---------------------------------------------------------------------------
// Expression evaluation

func (m *Machine) evalExpr(f *frame, e ast.Expr) Value {
	switch x := e.(type) {
	case *ast.Paren:
		return m.evalExpr(f, x.X)
	case *ast.IntLit:
		return intV(x.Value)
	case *ast.FloatLit:
		return doubleV(x.Value)
	case *ast.CharLit:
		return charV(x.Value)
	case *ast.BoolLit:
		return boolV(x.Value)
	case *ast.NullLit:
		return nullV()
	case *ast.StringLit:
		cells := make([]*Cell, len(x.Value)+1)
		for i := 0; i < len(x.Value); i++ {
			cells[i] = &Cell{V: charV(x.Value[i])}
		}
		cells[len(x.Value)] = &Cell{V: charV(0)}
		return ptrV(Pointer{Arr: cells, arrp: true})
	case *ast.ThisExpr:
		if f.this == nil {
			m.fail(x.Pos(), "this used with no receiver")
		}
		return ptrV(Pointer{Obj: f.this})
	case *ast.Ident:
		if fld := m.info.IdentFields[x]; fld != nil {
			cell := m.fieldCell(x.Pos(), f.this, fld)
			return cell.V
		}
		return m.varCell(f, x).V
	case *ast.QualifiedIdent:
		m.fail(x.Pos(), "qualified identifier %s::%s used as value", x.Class, x.Name)
	case *ast.Unary:
		return m.evalUnary(f, x)
	case *ast.Postfix:
		l := m.evalLValue(f, x.X)
		old := l.load()
		m.lvStore(l, m.incDec(x.Pos(), old, x.Op == token.Inc))
		return old
	case *ast.Binary:
		return m.evalBinary(f, x)
	case *ast.Assign:
		return m.evalAssign(f, x)
	case *ast.Cond:
		if m.evalExpr(f, x.C).IsTruthy() {
			return m.evalExpr(f, x.Then)
		}
		return m.evalExpr(f, x.Else)
	case *ast.Member:
		l := m.evalLValue(f, x)
		return l.load()
	case *ast.MemberPtrDeref:
		l := m.evalLValue(f, x)
		return l.load()
	case *ast.Index:
		l := m.evalLValue(f, x)
		return l.load()
	case *ast.Call:
		return m.evalCall(f, x)
	case *ast.Cast:
		v := m.evalExpr(f, x.X)
		return m.convert(v, m.info.TypeExprs[x.Type])
	case *ast.New:
		return m.evalNew(f, x)
	case *ast.Delete:
		m.evalDelete(f, x)
		return Value{K: KVoid}
	case *ast.Sizeof:
		var t types.Type
		if x.Type != nil {
			t = m.info.TypeExprs[x.Type]
		} else {
			t = m.info.TypeOf(x.X) // operand is not evaluated
		}
		return intV(int64(m.h.SizeOf(t)))
	}
	m.fail(e.Pos(), "unsupported expression")
	return Value{}
}

// varCell resolves a plain identifier to its storage cell.
func (m *Machine) varCell(f *frame, x *ast.Ident) *Cell {
	v := m.info.IdentVars[x]
	if v == nil {
		m.fail(x.Pos(), "unresolved identifier %s", x.Name)
	}
	if c, ok := f.vars[v]; ok {
		return c
	}
	if c, ok := m.globals[v]; ok {
		return c
	}
	m.fail(x.Pos(), "variable %s has no storage (not in scope)", x.Name)
	return nil
}

// fieldCell locates the cell of fld inside obj.
func (m *Machine) fieldCell(pos source.Pos, obj *Object, fld *types.Field) *Cell {
	if obj == nil {
		m.fail(pos, "member %s accessed with null receiver", fld.QualifiedName())
	}
	c, ok := obj.Cell(fld)
	if !ok {
		m.fail(pos, "object of class %s has no member %s (invalid downcast?)",
			obj.Class.Name, fld.QualifiedName())
	}
	return c
}

// evalLValue evaluates e as an assignable location.
func (m *Machine) evalLValue(f *frame, e ast.Expr) lv {
	switch x := e.(type) {
	case *ast.Paren:
		return m.evalLValue(f, x.X)
	case *ast.Ident:
		if fld := m.info.IdentFields[x]; fld != nil {
			return lv{c: m.fieldCell(x.Pos(), f.this, fld)}
		}
		return lv{c: m.varCell(f, x)}
	case *ast.Member:
		obj := m.receiverObject(f, x.X, x.Arrow)
		fld := m.info.FieldRefs[x]
		if fld == nil {
			m.fail(x.Pos(), "member %s did not resolve to a data member", x.Name)
		}
		return lv{c: m.fieldCell(x.Pos(), obj, fld)}
	case *ast.MemberPtrDeref:
		obj := m.receiverObject(f, x.X, x.Arrow)
		pv := m.evalExpr(f, x.Ptr)
		if pv.K != KMemberPtr || pv.MP == nil {
			m.fail(x.Pos(), "dereference of null pointer-to-member")
		}
		return lv{c: m.fieldCell(x.Pos(), obj, pv.MP)}
	case *ast.Index:
		base := m.evalExpr(f, x.X)
		idx := int(m.evalExpr(f, x.I).AsInt())
		switch base.K {
		case KArr:
			if idx < 0 || idx >= len(base.Arr) {
				m.fail(x.Pos(), "array index %d out of range [0,%d)", idx, len(base.Arr))
			}
			return lv{c: base.Arr[idx]}
		case KPtr:
			return m.pointerElem(x.Pos(), base.P, idx)
		}
		m.fail(x.Pos(), "indexing non-array value")
	case *ast.Unary:
		if x.Op == token.Star {
			p := m.evalExpr(f, x.X)
			if p.K != KPtr {
				m.fail(x.Pos(), "dereference of non-pointer")
			}
			return m.pointerElem(x.Pos(), p.P, 0)
		}
	}
	m.fail(e.Pos(), "expression is not an lvalue at run time")
	return lv{}
}

// pointerElem resolves ptr+delta to a location, checking null,
// use-after-free, and bounds.
func (m *Machine) pointerElem(pos source.Pos, p Pointer, delta int) lv {
	if p.IsNull() {
		m.fail(pos, "null pointer dereference")
	}
	if p.Block != nil && p.Block.Freed {
		m.fail(pos, "use after free")
	}
	switch {
	case p.Obj != nil:
		if delta != 0 {
			m.fail(pos, "pointer arithmetic on object pointer")
		}
		return lv{obj: p.Obj}
	case p.Cell != nil:
		if delta != 0 {
			m.fail(pos, "pointer arithmetic on non-array pointer")
		}
		return lv{c: p.Cell}
	default:
		i := p.Idx + delta
		if i < 0 || i >= len(p.Arr) {
			m.fail(pos, "pointer index %d out of range [0,%d)", i, len(p.Arr))
		}
		return lv{c: p.Arr[i]}
	}
}

// receiverObject evaluates a member-access receiver to an object.
func (m *Machine) receiverObject(f *frame, e ast.Expr, arrow bool) *Object {
	v := m.evalExpr(f, e)
	if arrow {
		if v.K != KPtr {
			m.fail(e.Pos(), "-> on non-pointer value")
		}
		l := m.pointerElem(e.Pos(), v.P, 0)
		obj := l.objectOf()
		if obj == nil {
			m.fail(e.Pos(), "-> target is not a class object")
		}
		return obj
	}
	if v.K != KObj || v.Obj == nil {
		m.fail(e.Pos(), "member access on non-object value")
	}
	return v.Obj
}

func (m *Machine) evalUnary(f *frame, x *ast.Unary) Value {
	switch x.Op {
	case token.Amp:
		if qi, ok := ast.Unparen(x.X).(*ast.QualifiedIdent); ok {
			fld := m.info.QualFieldRefs[qi]
			if fld == nil {
				m.fail(x.Pos(), "unresolved pointer-to-member &%s::%s", qi.Class, qi.Name)
			}
			return memberPtrV(fld)
		}
		// &arr[i] yields a pointer into the array so that pointer
		// arithmetic on the result works.
		if ix, ok := ast.Unparen(x.X).(*ast.Index); ok {
			base := m.evalExpr(f, ix.X)
			idx := int(m.evalExpr(f, ix.I).AsInt())
			switch base.K {
			case KArr:
				if idx < 0 || idx > len(base.Arr) {
					m.fail(x.Pos(), "&array[%d] out of range [0,%d]", idx, len(base.Arr))
				}
				return ptrV(Pointer{Arr: base.Arr, Idx: idx, arrp: true})
			case KPtr:
				if base.P.arrp {
					p := base.P
					p.Idx += idx
					return ptrV(p)
				}
			}
		}
		l := m.evalLValue(f, x.X)
		if obj := l.objectOf(); obj != nil && (l.c == nil || l.c.V.K == KObj) {
			return ptrV(Pointer{Obj: obj})
		}
		return ptrV(Pointer{Cell: l.c})
	case token.Star:
		l := m.evalLValue(f, x)
		return l.load()
	case token.Minus:
		v := m.evalExpr(f, x.X)
		if v.K == KDouble {
			return doubleV(-v.F)
		}
		return intV(-v.AsInt())
	case token.Not:
		return boolV(!m.evalExpr(f, x.X).IsTruthy())
	case token.Tilde:
		return intV(^m.evalExpr(f, x.X).AsInt())
	case token.Inc, token.Dec:
		l := m.evalLValue(f, x.X)
		nv := m.incDec(x.Pos(), l.load(), x.Op == token.Inc)
		m.lvStore(l, nv)
		return nv
	}
	m.fail(x.Pos(), "unsupported unary operator %s", x.Op)
	return Value{}
}

func (m *Machine) incDec(pos source.Pos, v Value, inc bool) Value {
	d := int64(1)
	if !inc {
		d = -1
	}
	switch v.K {
	case KDouble:
		return doubleV(v.F + float64(d))
	case KPtr:
		p := v.P
		if p.Cell != nil || p.Obj != nil {
			m.fail(pos, "pointer arithmetic on non-array pointer")
		}
		p.Idx += int(d)
		return ptrV(p)
	default:
		nv := v
		nv.I += d
		return nv
	}
}

func (m *Machine) evalAssign(f *frame, x *ast.Assign) Value {
	l := m.evalLValue(f, x.LHS)
	rhs := m.evalExpr(f, x.RHS)
	if x.Op == token.Assign {
		// Convert to the static type of the LHS for numeric narrowing.
		if lt := m.info.TypeOf(x.LHS); lt != nil {
			rhs = m.convert(rhs, lt)
		}
		m.lvStore(l, rhs)
		return l.load()
	}
	old := l.load()
	res := m.applyBinary(x.Pos(), x.Op.CompoundBase(), old, rhs)
	if lt := m.info.TypeOf(x.LHS); lt != nil {
		res = m.convert(res, lt)
	}
	m.lvStore(l, res)
	return res
}

func (m *Machine) evalBinary(f *frame, x *ast.Binary) Value {
	// Short-circuit logical operators.
	switch x.Op {
	case token.AmpAmp:
		if !m.evalExpr(f, x.X).IsTruthy() {
			return boolV(false)
		}
		return boolV(m.evalExpr(f, x.Y).IsTruthy())
	case token.PipePipe:
		if m.evalExpr(f, x.X).IsTruthy() {
			return boolV(true)
		}
		return boolV(m.evalExpr(f, x.Y).IsTruthy())
	}
	a := m.evalExpr(f, x.X)
	b := m.evalExpr(f, x.Y)
	return m.applyBinary(x.Pos(), x.Op, a, b)
}

func (m *Machine) applyBinary(pos source.Pos, op token.Kind, a, b Value) Value {
	// Pointer-to-member comparisons (including against the null constant,
	// whose MP field is nil) take precedence over plain pointer handling.
	if a.K == KMemberPtr || b.K == KMemberPtr {
		switch op {
		case token.Eq:
			return boolV(a.MP == b.MP)
		case token.Ne:
			return boolV(a.MP != b.MP)
		}
		m.fail(pos, "invalid operation on pointer-to-member")
	}
	// Pointer arithmetic and comparisons.
	if a.K == KPtr || b.K == KPtr {
		return m.pointerBinary(pos, op, a, b)
	}
	if a.K == KDouble || b.K == KDouble {
		x, y := a.AsFloat(), b.AsFloat()
		switch op {
		case token.Plus:
			return doubleV(x + y)
		case token.Minus:
			return doubleV(x - y)
		case token.Star:
			return doubleV(x * y)
		case token.Slash:
			if y == 0 {
				m.fail(pos, "floating division by zero")
			}
			return doubleV(x / y)
		case token.Eq:
			return boolV(x == y)
		case token.Ne:
			return boolV(x != y)
		case token.Lt:
			return boolV(x < y)
		case token.Gt:
			return boolV(x > y)
		case token.Le:
			return boolV(x <= y)
		case token.Ge:
			return boolV(x >= y)
		}
		m.fail(pos, "invalid floating operation %s", op)
	}
	x, y := a.AsInt(), b.AsInt()
	switch op {
	case token.Plus:
		return intV(x + y)
	case token.Minus:
		return intV(x - y)
	case token.Star:
		return intV(x * y)
	case token.Slash:
		if y == 0 {
			m.fail(pos, "integer division by zero")
		}
		return intV(x / y)
	case token.Percent:
		if y == 0 {
			m.fail(pos, "integer modulo by zero")
		}
		return intV(x % y)
	case token.Shl:
		return intV(x << (uint(y) & 63))
	case token.Shr:
		return intV(x >> (uint(y) & 63))
	case token.Amp:
		return intV(x & y)
	case token.Pipe:
		return intV(x | y)
	case token.Caret:
		return intV(x ^ y)
	case token.Eq:
		return boolV(x == y)
	case token.Ne:
		return boolV(x != y)
	case token.Lt:
		return boolV(x < y)
	case token.Gt:
		return boolV(x > y)
	case token.Le:
		return boolV(x <= y)
	case token.Ge:
		return boolV(x >= y)
	}
	m.fail(pos, "invalid integer operation %s", op)
	return Value{}
}

// ptrIdentity canonicalizes a pointer for comparison.
func ptrIdentity(p Pointer) (interface{}, int) {
	switch {
	case p.Obj != nil:
		return p.Obj, 0
	case p.Cell != nil:
		return p.Cell, 0
	case p.arrp:
		if len(p.Arr) > 0 {
			return p.Arr[0], p.Idx
		}
		return nil, p.Idx
	}
	return nil, -1 // null
}

func (m *Machine) pointerBinary(pos source.Pos, op token.Kind, a, b Value) Value {
	// ptr ± int, int + ptr, ptr - ptr.
	switch op {
	case token.Plus, token.Minus:
		if a.K == KPtr && b.K != KPtr {
			d := int(b.AsInt())
			if op == token.Minus {
				d = -d
			}
			p := a.P
			if p.Cell != nil || p.Obj != nil {
				if d != 0 {
					m.fail(pos, "pointer arithmetic on non-array pointer")
				}
				return a
			}
			p.Idx += d
			return ptrV(p)
		}
		if b.K == KPtr && op == token.Plus {
			return m.pointerBinary(pos, op, b, a)
		}
		if a.K == KPtr && b.K == KPtr && op == token.Minus {
			if !a.P.arrp || !b.P.arrp ||
				len(a.P.Arr) == 0 || len(b.P.Arr) == 0 || a.P.Arr[0] != b.P.Arr[0] {
				m.fail(pos, "subtraction of pointers into different allocations")
			}
			return intV(int64(a.P.Idx - b.P.Idx))
		}
	case token.Eq, token.Ne, token.Lt, token.Gt, token.Le, token.Ge:
		// Comparisons against integral 0 (null constant).
		na, nb := a, b
		if na.K != KPtr {
			if na.AsInt() == 0 {
				na = nullV()
			} else {
				m.fail(pos, "comparison of pointer with non-zero integer")
			}
		}
		if nb.K != KPtr {
			if nb.AsInt() == 0 {
				nb = nullV()
			} else {
				m.fail(pos, "comparison of pointer with non-zero integer")
			}
		}
		ia, oa := ptrIdentity(na.P)
		ib, ob := ptrIdentity(nb.P)
		switch op {
		case token.Eq:
			return boolV(ia == ib && oa == ob)
		case token.Ne:
			return boolV(!(ia == ib && oa == ob))
		case token.Lt:
			return boolV(oa < ob)
		case token.Gt:
			return boolV(oa > ob)
		case token.Le:
			return boolV(oa <= ob)
		case token.Ge:
			return boolV(oa >= ob)
		}
	}
	m.fail(pos, "invalid pointer operation %s", op)
	return Value{}
}

// convert adapts v to type t (numeric conversions, pointer passthrough).
func (m *Machine) convert(v Value, t types.Type) Value {
	switch x := t.(type) {
	case *types.Basic:
		switch x.Kind {
		case types.Int:
			if v.K == KPtr {
				// Deterministic pointer-to-integer: null -> 0, else 1.
				if v.P.IsNull() {
					return intV(0)
				}
				return intV(1)
			}
			return intV(v.AsInt())
		case types.Char:
			return charV(byte(v.AsInt()))
		case types.Bool:
			return boolV(v.IsTruthy())
		case types.Double:
			return doubleV(v.AsFloat())
		case types.Void:
			return Value{K: KVoid}
		}
	case *types.Pointer:
		if v.K == KPtr {
			return v
		}
		if v.AsInt() == 0 {
			return nullV()
		}
		// Reinterpreting a nonzero integer as a pointer cannot be
		// materialized in the cell model.
		return nullV()
	case *types.MemberPointer:
		if v.K == KMemberPtr {
			return v
		}
		return Value{K: KMemberPtr}
	}
	return v
}
