package interp

import (
	"bytes"
	"context"
	"fmt"
	"io"

	"deadmembers/internal/ast"
	"deadmembers/internal/failure"
	"deadmembers/internal/heapsim"
	"deadmembers/internal/hierarchy"
	"deadmembers/internal/source"
	"deadmembers/internal/types"
)

// Options configures an execution.
type Options struct {
	// Ledger, when non-nil, receives every class-object allocation and
	// deallocation.
	Ledger *heapsim.Ledger

	// DeadField, when non-nil, classifies fields as dead for the adjusted
	// (dead-members-removed) ledger accounting.
	DeadField func(*types.Field) bool

	// Output receives print/println output; defaults to an internal
	// buffer exposed on Result.
	Output io.Writer

	// MaxSteps bounds executed statements (default 200,000,000).
	MaxSteps int64

	// MaxDepth bounds call nesting (default 10,000).
	MaxDepth int

	// Context, when non-nil, is polled at the interpreter's step boundary
	// (every 1024 steps, alongside the MaxSteps check). Cancellation or
	// deadline expiry aborts the run with a *CancelError.
	Context context.Context
}

// Result reports a completed execution.
type Result struct {
	ExitCode int
	Steps    int64
	Output   string // captured output (empty if Options.Output was set)
}

// RuntimeError is an execution failure (null dereference, division by
// zero, step exhaustion, ...).
type RuntimeError struct {
	Pos source.Pos
	Msg string
}

func (e *RuntimeError) Error() string { return "runtime error: " + e.Msg }

// CancelError reports an execution aborted by context cancellation or
// deadline expiry. Unwrap exposes the context's error so callers can use
// errors.Is(err, context.DeadlineExceeded) / context.Canceled.
type CancelError struct {
	Err error
}

func (e *CancelError) Error() string { return "execution cancelled: " + e.Err.Error() }
func (e *CancelError) Unwrap() error { return e.Err }

// control-flow signals (propagated via panic, caught structurally).
type ctrlReturn struct{ v Value }
type ctrlBreak struct{}
type ctrlContinue struct{}

// Machine executes one program.
type Machine struct {
	prog *types.Program
	h    *hierarchy.Graph
	info *types.Info
	opts Options

	out     io.Writer
	buf     *bytes.Buffer
	globals map[*types.Var]*Cell
	gObjs   []*Object // global class objects, for end-of-run destruction

	steps    int64
	maxSteps int64
	depth    int
	maxDepth int
	rng      uint64
	ctx      context.Context
}

// Run executes prog from main under opts.
func Run(prog *types.Program, h *hierarchy.Graph, opts Options) (res *Result, err error) {
	if prog.Main == nil {
		return nil, fmt.Errorf("interp: program has no main function")
	}
	m := &Machine{
		prog:     prog,
		h:        h,
		info:     prog.Info,
		opts:     opts,
		globals:  map[*types.Var]*Cell{},
		maxSteps: opts.MaxSteps,
		maxDepth: opts.MaxDepth,
		rng:      0x2545F4914F6CDD1D,
		ctx:      opts.Context,
	}
	if m.maxSteps <= 0 {
		m.maxSteps = 200_000_000
	}
	if m.maxDepth <= 0 {
		m.maxDepth = 10_000
	}
	if opts.Output != nil {
		m.out = opts.Output
	} else {
		m.buf = &bytes.Buffer{}
		m.out = m.buf
	}

	defer func() {
		if r := recover(); r != nil {
			res = nil
			switch x := r.(type) {
			case *RuntimeError:
				err = x
			case *CancelError:
				err = x
			default:
				// An interpreter bug tripped by this program: contain it as
				// a structured failure instead of killing the process.
				err = failure.New("interp", "program", r)
			}
		}
	}()

	m.initGlobals()
	ret := m.callFunction(prog.Main, nil, nil)
	m.destroyGlobals()

	res = &Result{ExitCode: int(ret.AsInt()), Steps: m.steps}
	if m.buf != nil {
		res.Output = m.buf.String()
	}
	return res, nil
}

func (m *Machine) fail(pos source.Pos, format string, args ...interface{}) {
	panic(&RuntimeError{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (m *Machine) step(pos source.Pos) {
	m.steps++
	if m.steps > m.maxSteps {
		m.fail(pos, "step limit exceeded (%d)", m.maxSteps)
	}
	if m.ctx != nil && m.steps&1023 == 0 {
		if err := m.ctx.Err(); err != nil {
			panic(&CancelError{Err: err})
		}
	}
}

// frame is one function activation.
type frame struct {
	fn     *types.Func
	vars   map[*types.Var]*Cell
	this   *Object
	locals []*Object // counted local class objects, destroyed at exit
}

// initGlobals allocates and initializes global variables in declaration
// order.
func (m *Machine) initGlobals() {
	f := &frame{vars: map[*types.Var]*Cell{}}
	for _, g := range m.prog.Globals {
		cell := &Cell{V: m.zeroValue(g.Type)}
		m.globals[g] = cell
		d := g.Decl
		switch {
		case d.Init != nil:
			v := m.evalExpr(f, d.Init)
			m.storeInto(cell, m.convert(v, g.Type))
		case types.IsClass(g.Type) != nil:
			cls := types.IsClass(g.Type)
			obj := m.newObject(cls, true)
			ctor := m.info.VarCtors[d]
			var args []Value
			for _, a := range d.CtorArgs {
				args = append(args, m.evalExpr(f, a))
			}
			m.constructObject(obj, ctor, args)
			cell.V = Value{K: KObj, Obj: obj}
			m.gObjs = append(m.gObjs, obj)
		default:
			if arr, ok := g.Type.(*types.Array); ok {
				cell.V = m.makeArray(arr, &m.gObjs)
			}
			if len(d.CtorArgs) == 1 {
				v := m.evalExpr(f, d.CtorArgs[0])
				m.storeInto(cell, m.convert(v, g.Type))
			}
		}
	}
}

func (m *Machine) destroyGlobals() {
	for i := len(m.gObjs) - 1; i >= 0; i-- {
		m.destroyObject(m.gObjs[i])
	}
}

// ---------------------------------------------------------------------------
// Object construction and destruction

// zeroValue builds the zero value of a type; class types get fresh
// (uncounted) raw objects and arrays get fresh cells.
func (m *Machine) zeroValue(t types.Type) Value {
	switch x := t.(type) {
	case *types.Basic:
		switch x.Kind {
		case types.Double:
			return doubleV(0)
		case types.Char:
			return charV(0)
		case types.Bool:
			return boolV(false)
		default:
			return intV(0)
		}
	case *types.Pointer:
		return nullV()
	case *types.MemberPointer:
		return Value{K: KMemberPtr}
	case *types.Class:
		return Value{K: KObj, Obj: m.newObject(x, false)}
	case *types.Array:
		cells := make([]*Cell, x.Len)
		for i := range cells {
			cells[i] = &Cell{V: m.zeroValue(x.Elem)}
		}
		return Value{K: KArr, Arr: cells}
	}
	return intV(0)
}

// makeArray builds an array value for a local/global declaration,
// registering counted class elements for destruction via objs.
func (m *Machine) makeArray(arr *types.Array, objs *[]*Object) Value {
	cells := make([]*Cell, arr.Len)
	for i := range cells {
		if ec := types.IsClass(arr.Elem); ec != nil {
			obj := m.newObject(ec, true)
			m.constructObject(obj, ec.CtorByArity(0), nil)
			cells[i] = &Cell{V: Value{K: KObj, Obj: obj}}
			*objs = append(*objs, obj)
		} else {
			cells[i] = &Cell{V: m.zeroValue(arr.Elem)}
		}
	}
	return Value{K: KArr, Arr: cells}
}

// newObject allocates an object of class cls with zeroed cells for every
// distinct member (shared virtual bases appear once). counted objects are
// reported to the ledger and destructed with ledger balance.
func (m *Machine) newObject(cls *types.Class, counted bool) *Object {
	obj := &Object{Class: cls, Fields: map[*types.Field]*Cell{}}
	seen := map[*types.Class]bool{}
	var add func(c *types.Class)
	add = func(c *types.Class) {
		if seen[c] {
			return
		}
		seen[c] = true
		for _, f := range c.Fields {
			if _, dup := obj.Fields[f]; !dup {
				obj.Fields[f] = &Cell{V: m.zeroValue(f.Type)}
			}
		}
		for _, b := range c.Bases {
			add(b.Class)
		}
	}
	add(cls)

	if counted {
		lay := m.h.LayoutOf(cls)
		obj.Size = lay.Size
		if m.opts.DeadField != nil {
			obj.DeadBytes = lay.DeadBytes(m.opts.DeadField)
			obj.AdjSize = lay.SizeWithout(m.opts.DeadField)
		} else {
			obj.AdjSize = lay.Size
		}
		if m.opts.Ledger != nil {
			m.opts.Ledger.Alloc(cls, obj.Size, obj.DeadBytes, obj.AdjSize)
		}
	}
	return obj
}

// constructObject runs the full construction protocol on obj: virtual
// bases (most-derived), then the selected constructor's base/member init
// chain and body. ctor may be nil (default construction).
func (m *Machine) constructObject(obj *Object, ctor *types.Func, args []Value) {
	cls := obj.Class
	// Virtual bases are initialized once, by the most-derived object.
	for _, vb := range m.h.VirtualBases(cls) {
		if ctor != nil {
			if init, ok := m.findInit(ctor, vb.Name); ok {
				m.runCtorInitTarget(obj, ctor, args, vb, init)
				continue
			}
		}
		m.runClassCtor(obj, vb, vb.CtorByArity(0), nil, false)
	}
	m.runClassCtor(obj, cls, ctor, args, false)
}

// findInit locates the ctor-init entry naming name.
func (m *Machine) findInit(ctor *types.Func, name string) (*ast.CtorInit, bool) {
	for i := range ctor.Inits {
		if ctor.Inits[i].Name == name {
			return &ctor.Inits[i], true
		}
	}
	return nil, false
}

// runCtorInitTarget constructs virtual base vb using the init entry found
// in the most-derived constructor; the entry's arguments are evaluated in
// that constructor's frame.
func (m *Machine) runCtorInitTarget(obj *Object, ctor *types.Func, args []Value, vb *types.Class, init *ast.CtorInit) {
	f := m.ctorFrame(obj, ctor, args)
	var vals []Value
	for _, a := range init.Args {
		vals = append(vals, m.evalExpr(f, a))
	}
	m.runClassCtor(obj, vb, vb.CtorByArity(len(init.Args)), vals, false)
}

// ctorFrame builds a frame for evaluating a constructor's initializer
// arguments (parameters bound, this set).
func (m *Machine) ctorFrame(obj *Object, ctor *types.Func, args []Value) *frame {
	f := &frame{fn: ctor, vars: map[*types.Var]*Cell{}, this: obj}
	for i, p := range ctor.Params {
		var v Value
		if i < len(args) {
			v = args[i]
		} else {
			v = m.zeroValue(p.Type)
		}
		f.vars[p] = &Cell{V: v}
	}
	return f
}

// runClassCtor initializes the cls-level of obj: non-virtual bases,
// members, and the constructor body. withVBases selects whether virtual
// bases are handled here (only for classes acting as most-derived, which
// constructObject has already done — so it is always false here).
func (m *Machine) runClassCtor(obj *Object, cls *types.Class, ctor *types.Func, args []Value, withVBases bool) {
	_ = withVBases
	if ctor == nil {
		// Default construction: default-construct bases and class members.
		for _, b := range cls.Bases {
			if b.Virtual {
				continue
			}
			m.runClassCtor(obj, b.Class, b.Class.CtorByArity(0), nil, false)
		}
		for _, fld := range cls.Fields {
			m.defaultConstructMember(obj, fld)
		}
		return
	}

	f := m.ctorFrame(obj, ctor, args)

	// Direct non-virtual bases, in declaration order.
	for _, b := range cls.Bases {
		if b.Virtual {
			continue
		}
		if init, ok := m.findInit(ctor, b.Class.Name); ok {
			var vals []Value
			for _, a := range init.Args {
				vals = append(vals, m.evalExpr(f, a))
			}
			m.runClassCtor(obj, b.Class, b.Class.CtorByArity(len(init.Args)), vals, false)
		} else {
			m.runClassCtor(obj, b.Class, b.Class.CtorByArity(0), nil, false)
		}
	}

	// Members in declaration order.
	for _, fld := range cls.Fields {
		if init, ok := m.findInit(ctor, fld.Name); ok {
			cell, okc := obj.Cell(fld)
			if !okc {
				m.fail(ctor.Pos, "internal: missing cell for %s", fld.QualifiedName())
			}
			if mc := types.IsClass(fld.Type); mc != nil {
				var vals []Value
				for _, a := range init.Args {
					vals = append(vals, m.evalExpr(f, a))
				}
				m.constructObject(cell.V.Obj, mc.CtorByArity(len(init.Args)), vals)
			} else {
				v := m.evalExpr(f, init.Args[0])
				m.storeInto(cell, m.convert(v, fld.Type))
			}
		} else {
			m.defaultConstructMember(obj, fld)
		}
	}

	// Body.
	if ctor.Body != nil {
		m.execFuncBody(f, ctor)
	}
}

func (m *Machine) defaultConstructMember(obj *Object, fld *types.Field) {
	t := fld.Type
	cell, ok := obj.Cell(fld)
	if !ok {
		return
	}
	if arr, isArr := t.(*types.Array); isArr {
		if ec := types.IsClass(arr.Elem); ec != nil {
			for _, ecell := range cell.V.Arr {
				m.constructObject(ecell.V.Obj, ec.CtorByArity(0), nil)
			}
		}
		return
	}
	if mc := types.IsClass(t); mc != nil {
		m.constructObject(cell.V.Obj, mc.CtorByArity(0), nil)
	}
}

// destroyObject runs the destructor protocol on obj (dtor bodies of the
// dynamic class and its bases, members in reverse order, virtual bases
// last) and balances the ledger for counted objects.
func (m *Machine) destroyObject(obj *Object) {
	if obj == nil || obj.Destroyed {
		return
	}
	obj.Destroyed = true
	m.destroyLevel(obj, obj.Class, map[*types.Class]bool{})
	for i := len(m.h.VirtualBases(obj.Class)) - 1; i >= 0; i-- {
		vb := m.h.VirtualBases(obj.Class)[i]
		m.destroyLevel(obj, vb, map[*types.Class]bool{})
	}
	if obj.Size > 0 && m.opts.Ledger != nil {
		m.opts.Ledger.Free(obj.Class, obj.Size, obj.DeadBytes, obj.AdjSize)
	}
}

// destroyLevel runs the dtor body of cls, destroys cls's class-typed
// members in reverse order, then recurses into non-virtual bases in
// reverse order.
func (m *Machine) destroyLevel(obj *Object, cls *types.Class, seen map[*types.Class]bool) {
	if seen[cls] {
		return
	}
	seen[cls] = true
	if d := cls.Dtor(); d != nil && d.Body != nil {
		f := &frame{fn: d, vars: map[*types.Var]*Cell{}, this: obj}
		m.execFuncBody(f, d)
	}
	for i := len(cls.Fields) - 1; i >= 0; i-- {
		fld := cls.Fields[i]
		cell, ok := obj.Cell(fld)
		if !ok {
			continue
		}
		switch {
		case cell.V.K == KObj && cell.V.Obj != nil:
			m.destroyEmbedded(cell.V.Obj)
		case cell.V.K == KArr:
			for j := len(cell.V.Arr) - 1; j >= 0; j-- {
				if ev := cell.V.Arr[j].V; ev.K == KObj && ev.Obj != nil {
					m.destroyEmbedded(ev.Obj)
				}
			}
		}
	}
	for i := len(cls.Bases) - 1; i >= 0; i-- {
		if !cls.Bases[i].Virtual {
			m.destroyLevel(obj, cls.Bases[i].Class, seen)
		}
	}
}

// destroyEmbedded destroys a member subobject (never ledger-counted).
func (m *Machine) destroyEmbedded(obj *Object) {
	if obj.Destroyed {
		return
	}
	obj.Destroyed = true
	m.destroyLevel(obj, obj.Class, map[*types.Class]bool{})
	for i := len(m.h.VirtualBases(obj.Class)) - 1; i >= 0; i-- {
		m.destroyLevel(obj, m.h.VirtualBases(obj.Class)[i], map[*types.Class]bool{})
	}
}

// ---------------------------------------------------------------------------
// Function invocation

// callFunction invokes a free function or method. this is nil for free
// functions.
func (m *Machine) callFunction(fn *types.Func, this *Object, args []Value) Value {
	if fn.Body == nil {
		m.fail(fn.Pos, "call to %s which has no body", fn.QualifiedName())
	}
	m.depth++
	if m.depth > m.maxDepth {
		m.fail(fn.Pos, "call depth limit exceeded (%d)", m.maxDepth)
	}
	defer func() { m.depth-- }()

	f := &frame{fn: fn, vars: map[*types.Var]*Cell{}, this: this}
	for i, p := range fn.Params {
		var v Value
		if i < len(args) {
			v = m.convert(args[i], p.Type)
		} else {
			v = m.zeroValue(p.Type)
		}
		if v.K == KObj && v.Obj != nil {
			// By-value class parameter: bitwise copy (uncounted).
			v = Value{K: KObj, Obj: m.cloneObject(v.Obj)}
		}
		f.vars[p] = &Cell{V: v}
	}
	return m.execFuncBody(f, fn)
}

// execFuncBody executes fn's body in frame f, catching return.
func (m *Machine) execFuncBody(f *frame, fn *types.Func) (ret Value) {
	defer func() {
		// Destroy counted local objects of the whole frame in reverse.
		for i := len(f.locals) - 1; i >= 0; i-- {
			m.destroyObject(f.locals[i])
		}
		if r := recover(); r != nil {
			if cr, ok := r.(ctrlReturn); ok {
				ret = cr.v
				return
			}
			panic(r)
		}
	}()
	m.execStmt(f, fn.Body)
	return Value{K: KVoid}
}

// cloneObject produces an uncounted deep copy of src.
func (m *Machine) cloneObject(src *Object) *Object {
	dst := m.newObject(src.Class, false)
	m.copyObject(dst, src)
	return dst
}

// copyObject copies the member values of src into dst (same class).
func (m *Machine) copyObject(dst, src *Object) {
	for fld, sc := range src.Fields {
		dc, ok := dst.Fields[fld]
		if !ok {
			continue
		}
		m.copyValueInto(dc, sc.V)
	}
}

// copyValueInto stores v into cell, deep-copying class and array values so
// distinct objects never share member storage.
func (m *Machine) copyValueInto(cell *Cell, v Value) {
	switch v.K {
	case KObj:
		if cell.V.K == KObj && cell.V.Obj != nil && v.Obj != nil {
			m.copyObject(cell.V.Obj, v.Obj)
			return
		}
		cell.V = v
	case KArr:
		if cell.V.K == KArr && len(cell.V.Arr) == len(v.Arr) {
			for i, sc := range v.Arr {
				m.copyValueInto(cell.V.Arr[i], sc.V)
			}
			return
		}
		cell.V = v
	default:
		cell.V = v
	}
}

// storeInto assigns v to cell with class-aware copying.
func (m *Machine) storeInto(cell *Cell, v Value) {
	m.copyValueInto(cell, v)
}
