package interp

import (
	"bytes"
	"context"
	"fmt"
	"io"

	"deadmembers/internal/ast"
	"deadmembers/internal/failure"
	"deadmembers/internal/heapsim"
	"deadmembers/internal/hierarchy"
	"deadmembers/internal/source"
	"deadmembers/internal/types"
)

// Options configures an execution.
type Options struct {
	// Ledger, when non-nil, receives every class-object allocation and
	// deallocation.
	Ledger *heapsim.Ledger

	// DeadField, when non-nil, classifies fields as dead for the adjusted
	// (dead-members-removed) ledger accounting.
	DeadField func(*types.Field) bool

	// Output receives print/println output; defaults to an internal
	// buffer exposed on Result.
	Output io.Writer

	// MaxSteps bounds executed statements (default 200,000,000).
	MaxSteps int64

	// MaxDepth bounds call nesting (default 10,000).
	MaxDepth int

	// Context, when non-nil, is polled at the interpreter's step boundary
	// (every 1024 steps, alongside the MaxSteps check). Cancellation or
	// deadline expiry aborts the run with a *CancelError.
	Context context.Context

	// FileSet, when non-nil, lets runtime diagnostics (currently the
	// step-budget exhaustion error) name the source position of the
	// statement that tripped them.
	FileSet *source.FileSet

	// Executor, when non-nil, is offered every function body before the
	// tree-walker runs it. The bytecode VM (internal/vm) plugs in here;
	// construction/destruction protocol, globals, builtins, the ledger,
	// and the step counter stay on this shared runtime core, which is
	// what keeps the two engines' instrumented heaps byte-identical.
	Executor Executor
}

// Executor runs function bodies on behalf of the interpreter. ExecBody
// returns (value, true) when it executed fn's body in frame f, or
// (zero, false) to decline — the tree-walker then runs the body. An
// executor must preserve the tree-walker's observable semantics exactly:
// statement step accounting (Machine.Step), evaluation order, ledger
// records, and error positions/messages.
type Executor interface {
	ExecBody(m *Machine, f *Frame, fn *types.Func) (Value, bool)
}

// Result reports a completed execution.
type Result struct {
	ExitCode int
	Steps    int64
	Output   string // captured output (empty if Options.Output was set)
}

// RuntimeError is an execution failure (null dereference, division by
// zero, step exhaustion, ...).
type RuntimeError struct {
	Pos source.Pos
	Msg string
}

func (e *RuntimeError) Error() string { return "runtime error: " + e.Msg }

// CancelError reports an execution aborted by context cancellation or
// deadline expiry. Unwrap exposes the context's error so callers can use
// errors.Is(err, context.DeadlineExceeded) / context.Canceled.
type CancelError struct {
	Err error
}

func (e *CancelError) Error() string { return "execution cancelled: " + e.Err.Error() }
func (e *CancelError) Unwrap() error { return e.Err }

// control-flow signals (propagated via panic, caught structurally).
type ctrlReturn struct{ v Value }
type ctrlBreak struct{}
type ctrlContinue struct{}

// Machine executes one program.
type Machine struct {
	prog *types.Program
	h    *hierarchy.Graph
	info *types.Info
	opts Options

	out     io.Writer
	buf     *bytes.Buffer
	globals map[*types.Var]*Cell
	gObjs   []*Object // global class objects, for end-of-run destruction

	steps    int64
	maxSteps int64
	depth    int
	maxDepth int
	rng      uint64
	ctx      context.Context
	fset     *source.FileSet
	plans    map[*types.Class]*FieldPlan
}

// Run executes prog from main under opts.
func Run(prog *types.Program, h *hierarchy.Graph, opts Options) (res *Result, err error) {
	if prog.Main == nil {
		return nil, fmt.Errorf("interp: program has no main function")
	}
	m := &Machine{
		prog:     prog,
		h:        h,
		info:     prog.Info,
		opts:     opts,
		globals:  map[*types.Var]*Cell{},
		maxSteps: opts.MaxSteps,
		maxDepth: opts.MaxDepth,
		rng:      0x2545F4914F6CDD1D,
		ctx:      opts.Context,
		fset:     opts.FileSet,
		plans:    map[*types.Class]*FieldPlan{},
	}
	if m.maxSteps <= 0 {
		m.maxSteps = 200_000_000
	}
	if m.maxDepth <= 0 {
		m.maxDepth = 10_000
	}
	if opts.Output != nil {
		m.out = opts.Output
	} else {
		m.buf = &bytes.Buffer{}
		m.out = m.buf
	}

	defer func() {
		if r := recover(); r != nil {
			res = nil
			switch x := r.(type) {
			case *RuntimeError:
				err = x
			case *CancelError:
				err = x
			default:
				// An interpreter bug tripped by this program: contain it as
				// a structured failure instead of killing the process.
				err = failure.New("interp", "program", r)
			}
		}
	}()

	m.initGlobals()
	ret := m.CallFunction(prog.Main, nil, nil)
	m.destroyGlobals()

	res = &Result{ExitCode: int(ret.AsInt()), Steps: m.steps}
	if m.buf != nil {
		res.Output = m.buf.String()
	}
	return res, nil
}

func (m *Machine) Fail(pos source.Pos, format string, args ...interface{}) {
	panic(&RuntimeError{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// Step accounts one executed statement at pos in frame f. It is called
// at the start of every statement by both engines; the step counter is
// program-observable (the clock() builtin), so an Executor must call it
// exactly where the tree-walker would.
func (m *Machine) Step(f *Frame, pos source.Pos) {
	m.steps++
	if m.steps > m.maxSteps {
		m.StepLimitExceeded(f, pos)
	}
	if m.ctx != nil && m.steps&1023 == 0 {
		m.StepContextPoll()
	}
}

// StepCounter exposes the live step counter, the limit, and whether a
// context is installed, so a bytecode engine can inline the
// per-statement accounting instead of calling Step. The counter is the
// same one clock() reads, so inlined increments stay observable; the
// engine must mirror Step exactly — increment, then StepLimitExceeded
// past the limit, then StepContextPoll on every 1024th step.
func (m *Machine) StepCounter() (counter *int64, limit int64, poll bool) {
	return &m.steps, m.maxSteps, m.ctx != nil
}

// StepLimitExceeded reports step exhaustion exactly as Step does:
// with the statement position and enclosing function when available.
func (m *Machine) StepLimitExceeded(f *Frame, pos source.Pos) {
	unit := "<unnamed>"
	if f != nil && f.Fn != nil {
		unit = f.Fn.QualifiedName()
	}
	if m.fset != nil && pos != source.NoPos {
		m.Fail(pos, "step limit exceeded (%d) at %s in %s", m.maxSteps, m.fset.Position(pos), unit)
	}
	m.Fail(pos, "step limit exceeded (%d) in %s", m.maxSteps, unit)
}

// StepContextPoll is Step's cancellation check, split out for engines
// that inline the counter.
func (m *Machine) StepContextPoll() {
	if err := m.ctx.Err(); err != nil {
		panic(&CancelError{Err: err})
	}
}

// Frame is one function activation. Exported so an alternative
// Executor (the bytecode VM in internal/vm) can run function bodies on
// the shared runtime core.
type Frame struct {
	Fn   *types.Func
	Vars map[*types.Var]*Cell
	This *Object

	// Params holds the parameter cells in declaration order — the same
	// cells registered in Vars, exposed positionally so a slot-based
	// executor can bind them without map lookups.
	Params []*Cell

	// Locals are the counted local class objects, destroyed in reverse
	// order at function exit (or scope exit, via PopScope).
	Locals []*Object
}

// initGlobals allocates and initializes global variables in declaration
// order.
func (m *Machine) initGlobals() {
	f := &Frame{Vars: map[*types.Var]*Cell{}}
	for _, g := range m.prog.Globals {
		cell := &Cell{V: m.ZeroValue(g.Type)}
		m.globals[g] = cell
		d := g.Decl
		switch {
		case d.Init != nil:
			v := m.evalExpr(f, d.Init)
			m.StoreInto(cell, m.Convert(v, g.Type))
		case types.IsClass(g.Type) != nil:
			cls := types.IsClass(g.Type)
			obj := m.NewObject(cls, true)
			ctor := m.info.VarCtors[d]
			var args []Value
			for _, a := range d.CtorArgs {
				args = append(args, m.evalExpr(f, a))
			}
			m.ConstructObject(obj, ctor, args)
			cell.V = Value{K: KObj, Obj: obj}
			m.gObjs = append(m.gObjs, obj)
		default:
			if arr, ok := g.Type.(*types.Array); ok {
				cell.V = m.MakeArray(arr, &m.gObjs)
			}
			if len(d.CtorArgs) == 1 {
				v := m.evalExpr(f, d.CtorArgs[0])
				m.StoreInto(cell, m.Convert(v, g.Type))
			}
		}
	}
}

func (m *Machine) destroyGlobals() {
	for i := len(m.gObjs) - 1; i >= 0; i-- {
		m.DestroyObject(m.gObjs[i])
	}
}

// ---------------------------------------------------------------------------
// Object construction and destruction

// zeroValue builds the zero value of a type; class types get fresh
// (uncounted) raw objects and arrays get fresh cells.
func (m *Machine) ZeroValue(t types.Type) Value {
	switch x := t.(type) {
	case *types.Basic:
		switch x.Kind {
		case types.Double:
			return doubleV(0)
		case types.Char:
			return charV(0)
		case types.Bool:
			return boolV(false)
		default:
			return intV(0)
		}
	case *types.Pointer:
		return nullV()
	case *types.MemberPointer:
		return Value{K: KMemberPtr}
	case *types.Class:
		return Value{K: KObj, Obj: m.NewObject(x, false)}
	case *types.Array:
		cells := make([]*Cell, x.Len)
		for i := range cells {
			cells[i] = &Cell{V: m.ZeroValue(x.Elem)}
		}
		return arrV(cells)
	}
	return intV(0)
}

// makeArray builds an array value for a local/global declaration,
// registering counted class elements for destruction via objs.
func (m *Machine) MakeArray(arr *types.Array, objs *[]*Object) Value {
	cells := make([]*Cell, arr.Len)
	for i := range cells {
		if ec := types.IsClass(arr.Elem); ec != nil {
			obj := m.NewObject(ec, true)
			m.ConstructObject(obj, ec.CtorByArity(0), nil)
			cells[i] = &Cell{V: Value{K: KObj, Obj: obj}}
			*objs = append(*objs, obj)
		} else {
			cells[i] = &Cell{V: m.ZeroValue(arr.Elem)}
		}
	}
	return arrV(cells)
}

// PlanOf returns the (per-run cached) field plan of cls: the distinct
// data members in deterministic order — own fields first, then bases
// depth-first, members shared through virtual bases once.
func (m *Machine) PlanOf(cls *types.Class) *FieldPlan {
	if p, ok := m.plans[cls]; ok {
		return p
	}
	p := &FieldPlan{Index: map[*types.Field]int{}}
	seen := map[*types.Class]bool{}
	var add func(c *types.Class)
	add = func(c *types.Class) {
		if seen[c] {
			return
		}
		seen[c] = true
		for _, f := range c.Fields {
			if _, dup := p.Index[f]; !dup {
				p.Index[f] = len(p.Fields)
				p.Fields = append(p.Fields, f)
			}
		}
		for _, b := range c.Bases {
			add(b.Class)
		}
	}
	add(cls)
	m.plans[cls] = p
	return p
}

// NewObject allocates an object of class cls with zeroed cells for every
// distinct member (shared virtual bases appear once). counted objects are
// reported to the ledger and destructed with ledger balance.
func (m *Machine) NewObject(cls *types.Class, counted bool) *Object {
	plan := m.PlanOf(cls)
	cells := make([]*Cell, len(plan.Fields))
	for i, f := range plan.Fields {
		cells[i] = &Cell{V: m.ZeroValue(f.Type)}
	}
	obj := &Object{Class: cls, Plan: plan, Cells: cells}

	if counted {
		lay := m.h.LayoutOf(cls)
		obj.Size = lay.Size
		if m.opts.DeadField != nil {
			obj.DeadBytes = lay.DeadBytes(m.opts.DeadField)
			obj.AdjSize = lay.SizeWithout(m.opts.DeadField)
		} else {
			obj.AdjSize = lay.Size
		}
		if m.opts.Ledger != nil {
			m.opts.Ledger.Alloc(cls, obj.Size, obj.DeadBytes, obj.AdjSize)
		}
	}
	return obj
}

// constructObject runs the full construction protocol on obj: virtual
// bases (most-derived), then the selected constructor's base/member init
// chain and body. ctor may be nil (default construction).
func (m *Machine) ConstructObject(obj *Object, ctor *types.Func, args []Value) {
	cls := obj.Class
	// Virtual bases are initialized once, by the most-derived object.
	for _, vb := range m.h.VirtualBases(cls) {
		if ctor != nil {
			if init, ok := m.findInit(ctor, vb.Name); ok {
				m.runCtorInitTarget(obj, ctor, args, vb, init)
				continue
			}
		}
		m.runClassCtor(obj, vb, vb.CtorByArity(0), nil, false)
	}
	m.runClassCtor(obj, cls, ctor, args, false)
}

// findInit locates the ctor-init entry naming name.
func (m *Machine) findInit(ctor *types.Func, name string) (*ast.CtorInit, bool) {
	for i := range ctor.Inits {
		if ctor.Inits[i].Name == name {
			return &ctor.Inits[i], true
		}
	}
	return nil, false
}

// runCtorInitTarget constructs virtual base vb using the init entry found
// in the most-derived constructor; the entry's arguments are evaluated in
// that constructor's Frame.
func (m *Machine) runCtorInitTarget(obj *Object, ctor *types.Func, args []Value, vb *types.Class, init *ast.CtorInit) {
	f := m.ctorFrame(obj, ctor, args)
	var vals []Value
	for _, a := range init.Args {
		vals = append(vals, m.evalExpr(f, a))
	}
	m.runClassCtor(obj, vb, vb.CtorByArity(len(init.Args)), vals, false)
}

// ctorFrame builds a Frame for evaluating a constructor's initializer
// arguments (parameters bound, this set).
func (m *Machine) ctorFrame(obj *Object, ctor *types.Func, args []Value) *Frame {
	f := &Frame{Fn: ctor, Vars: map[*types.Var]*Cell{}, This: obj}
	for i, p := range ctor.Params {
		var v Value
		if i < len(args) {
			v = args[i]
		} else {
			v = m.ZeroValue(p.Type)
		}
		cell := &Cell{V: v}
		f.Vars[p] = cell
		f.Params = append(f.Params, cell)
	}
	return f
}

// runClassCtor initializes the cls-level of obj: non-virtual bases,
// members, and the constructor body. withVBases selects whether virtual
// bases are handled here (only for classes acting as most-derived, which
// constructObject has already done — so it is always false here).
func (m *Machine) runClassCtor(obj *Object, cls *types.Class, ctor *types.Func, args []Value, withVBases bool) {
	_ = withVBases
	if ctor == nil {
		// Default construction: default-construct bases and class members.
		for _, b := range cls.Bases {
			if b.Virtual {
				continue
			}
			m.runClassCtor(obj, b.Class, b.Class.CtorByArity(0), nil, false)
		}
		for _, fld := range cls.Fields {
			m.defaultConstructMember(obj, fld)
		}
		return
	}

	f := m.ctorFrame(obj, ctor, args)

	// Direct non-virtual bases, in declaration order.
	for _, b := range cls.Bases {
		if b.Virtual {
			continue
		}
		if init, ok := m.findInit(ctor, b.Class.Name); ok {
			var vals []Value
			for _, a := range init.Args {
				vals = append(vals, m.evalExpr(f, a))
			}
			m.runClassCtor(obj, b.Class, b.Class.CtorByArity(len(init.Args)), vals, false)
		} else {
			m.runClassCtor(obj, b.Class, b.Class.CtorByArity(0), nil, false)
		}
	}

	// Members in declaration order.
	for _, fld := range cls.Fields {
		if init, ok := m.findInit(ctor, fld.Name); ok {
			cell, okc := obj.Cell(fld)
			if !okc {
				m.Fail(ctor.Pos, "internal: missing cell for %s", fld.QualifiedName())
			}
			if mc := types.IsClass(fld.Type); mc != nil {
				var vals []Value
				for _, a := range init.Args {
					vals = append(vals, m.evalExpr(f, a))
				}
				m.ConstructObject(cell.V.Obj, mc.CtorByArity(len(init.Args)), vals)
			} else {
				v := m.evalExpr(f, init.Args[0])
				m.StoreInto(cell, m.Convert(v, fld.Type))
			}
		} else {
			m.defaultConstructMember(obj, fld)
		}
	}

	// Body.
	if ctor.Body != nil {
		m.execFuncBody(f, ctor)
	}
}

func (m *Machine) defaultConstructMember(obj *Object, fld *types.Field) {
	t := fld.Type
	cell, ok := obj.Cell(fld)
	if !ok {
		return
	}
	if arr, isArr := t.(*types.Array); isArr {
		if ec := types.IsClass(arr.Elem); ec != nil {
			for _, ecell := range cell.V.Cells() {
				m.ConstructObject(ecell.V.Obj, ec.CtorByArity(0), nil)
			}
		}
		return
	}
	if mc := types.IsClass(t); mc != nil {
		m.ConstructObject(cell.V.Obj, mc.CtorByArity(0), nil)
	}
}

// destroyObject runs the destructor protocol on obj (dtor bodies of the
// dynamic class and its bases, members in reverse order, virtual bases
// last) and balances the ledger for counted objects.
func (m *Machine) DestroyObject(obj *Object) {
	if obj == nil || obj.Destroyed {
		return
	}
	obj.Destroyed = true
	m.destroyLevel(obj, obj.Class, map[*types.Class]bool{})
	for i := len(m.h.VirtualBases(obj.Class)) - 1; i >= 0; i-- {
		vb := m.h.VirtualBases(obj.Class)[i]
		m.destroyLevel(obj, vb, map[*types.Class]bool{})
	}
	if obj.Size > 0 && m.opts.Ledger != nil {
		m.opts.Ledger.Free(obj.Class, obj.Size, obj.DeadBytes, obj.AdjSize)
	}
}

// destroyLevel runs the dtor body of cls, destroys cls's class-typed
// members in reverse order, then recurses into non-virtual bases in
// reverse order.
func (m *Machine) destroyLevel(obj *Object, cls *types.Class, seen map[*types.Class]bool) {
	if seen[cls] {
		return
	}
	seen[cls] = true
	if d := cls.Dtor(); d != nil && d.Body != nil {
		f := &Frame{Fn: d, Vars: map[*types.Var]*Cell{}, This: obj}
		m.execFuncBody(f, d)
	}
	for i := len(cls.Fields) - 1; i >= 0; i-- {
		fld := cls.Fields[i]
		cell, ok := obj.Cell(fld)
		if !ok {
			continue
		}
		switch {
		case cell.V.K == KObj && cell.V.Obj != nil:
			m.destroyEmbedded(cell.V.Obj)
		case cell.V.K == KArr:
			dcells := cell.V.Cells()
			for j := len(dcells) - 1; j >= 0; j-- {
				if ev := dcells[j].V; ev.K == KObj && ev.Obj != nil {
					m.destroyEmbedded(ev.Obj)
				}
			}
		}
	}
	for i := len(cls.Bases) - 1; i >= 0; i-- {
		if !cls.Bases[i].Virtual {
			m.destroyLevel(obj, cls.Bases[i].Class, seen)
		}
	}
}

// destroyEmbedded destroys a member subobject (never ledger-counted).
func (m *Machine) destroyEmbedded(obj *Object) {
	if obj.Destroyed {
		return
	}
	obj.Destroyed = true
	m.destroyLevel(obj, obj.Class, map[*types.Class]bool{})
	for i := len(m.h.VirtualBases(obj.Class)) - 1; i >= 0; i-- {
		m.destroyLevel(obj, m.h.VirtualBases(obj.Class)[i], map[*types.Class]bool{})
	}
}

// ---------------------------------------------------------------------------
// Function invocation

// callFunction invokes a free function or method. this is nil for free
// functions.
func (m *Machine) CallFunction(fn *types.Func, this *Object, args []Value) Value {
	if fn.Body == nil {
		m.Fail(fn.Pos, "call to %s which has no body", fn.QualifiedName())
	}
	m.depth++
	if m.depth > m.maxDepth {
		m.Fail(fn.Pos, "call depth limit exceeded (%d)", m.maxDepth)
	}
	defer func() { m.depth-- }()

	// Vars stays nil here: the map is only needed by the tree-walker,
	// and execFuncBody materializes it from Params when an Executor
	// declines the body (or none is installed).
	f := &Frame{Fn: fn, This: this}
	if n := len(fn.Params); n > 0 {
		f.Params = make([]*Cell, 0, n)
	}
	for i, p := range fn.Params {
		var v Value
		if i < len(args) {
			v = m.Convert(args[i], p.Type)
		} else {
			v = m.ZeroValue(p.Type)
		}
		if v.K == KObj && v.Obj != nil {
			// By-value class parameter: bitwise copy (uncounted).
			v = Value{K: KObj, Obj: m.CloneObject(v.Obj)}
		}
		f.Params = append(f.Params, &Cell{V: v})
	}
	return m.execFuncBody(f, fn)
}

// execFuncBody executes fn's body in Frame f, catching return. An
// installed Executor gets first claim on the body; when it declines
// (unsupported construct) the tree-walker runs it — per-function
// fallback, identical semantics either way.
func (m *Machine) execFuncBody(f *Frame, fn *types.Func) (ret Value) {
	if m.opts.Executor != nil {
		if v, handled := m.opts.Executor.ExecBody(m, f, fn); handled {
			return v
		}
	}
	if f.Vars == nil {
		// Frame built without the name map (CallFunction's fast path);
		// the tree-walker resolves variables through it, so build it now.
		f.Vars = make(map[*types.Var]*Cell, len(fn.Params))
		for i, p := range fn.Params {
			if i < len(f.Params) {
				f.Vars[p] = f.Params[i]
			}
		}
	}
	defer func() {
		// Destroy counted local objects of the whole Frame in reverse.
		for i := len(f.Locals) - 1; i >= 0; i-- {
			m.DestroyObject(f.Locals[i])
		}
		if r := recover(); r != nil {
			if cr, ok := r.(ctrlReturn); ok {
				ret = cr.v
				return
			}
			panic(r)
		}
	}()
	m.execStmt(f, fn.Body)
	return Value{K: KVoid}
}

// cloneObject produces an uncounted deep copy of src.
func (m *Machine) CloneObject(src *Object) *Object {
	dst := m.NewObject(src.Class, false)
	m.CopyObject(dst, src)
	return dst
}

// CopyObject copies the member values of src into dst (fields missing
// from dst — e.g. when copying into a base-class subobject — are
// skipped, as before the flat-cell layout).
func (m *Machine) CopyObject(dst, src *Object) {
	for i, fld := range src.Plan.Fields {
		dc, ok := dst.Cell(fld)
		if !ok {
			continue
		}
		m.copyValueInto(dc, src.Cells[i].V)
	}
}

// copyValueInto stores v into cell, deep-copying class and array values so
// distinct objects never share member storage.
func (m *Machine) copyValueInto(cell *Cell, v Value) {
	switch v.K {
	case KObj:
		if cell.V.K == KObj && cell.V.Obj != nil && v.Obj != nil {
			m.CopyObject(cell.V.Obj, v.Obj)
			return
		}
		cell.V = v
	case KArr:
		dst, src := cell.V.Cells(), v.Cells()
		if cell.V.K == KArr && len(dst) == len(src) {
			for i, sc := range src {
				m.copyValueInto(dst[i], sc.V)
			}
			return
		}
		cell.V = v
	default:
		cell.V = v
	}
}

// storeInto assigns v to cell with class-aware copying.
func (m *Machine) StoreInto(cell *Cell, v Value) {
	m.copyValueInto(cell, v)
}
