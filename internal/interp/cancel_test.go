package interp_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"deadmembers/internal/frontend"
	"deadmembers/internal/interp"
)

const spinSrc = `
int main() {
	int n = 0;
	while (true) { n = n + 1; }
	return n;
}
`

// TestRunDeadline: a wall-clock deadline aborts a long execution with a
// *CancelError that unwraps to context.DeadlineExceeded.
func TestRunDeadline(t *testing.T) {
	r := frontend.Compile(frontend.Source{Name: "spin.mcc", Text: spinSrc})
	if err := r.Err(); err != nil {
		t.Fatalf("compile errors:\n%v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := interp.Run(r.Program, r.Graph, interp.Options{Context: ctx})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("expected a cancellation error, run completed")
	}
	var ce *interp.CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("error is %T (%v), want *interp.CancelError", err, err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error does not unwrap to DeadlineExceeded: %v", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("run took %v to honor a 50ms deadline", elapsed)
	}
}

// TestRunPreCancelled: an already-cancelled context stops the run at the
// first step-boundary poll.
func TestRunPreCancelled(t *testing.T) {
	r := frontend.Compile(frontend.Source{Name: "spin.mcc", Text: spinSrc})
	if err := r.Err(); err != nil {
		t.Fatalf("compile errors:\n%v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := interp.Run(r.Program, r.Graph, interp.Options{Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunWithoutContext: a nil context leaves behavior unchanged.
func TestRunWithoutContext(t *testing.T) {
	res, err := tryRun(t, `int main() { return 7; }`)
	if err != nil || res.ExitCode != 7 {
		t.Fatalf("res=%+v err=%v", res, err)
	}
}
