// Package interp implements a tree-walking interpreter for MC++ with an
// instrumented object model. It executes the benchmark corpus to produce
// the dynamic measurements of the paper's Table 2: every class-object
// creation and destruction is reported to a heapsim.Ledger together with
// its byte-exact layout size.
//
// Semantics notes (documented deviations from full C++, all irrelevant to
// the measurements):
//
//   - all storage is zero-initialized (execution is deterministic);
//   - memory is modeled as typed cells, not raw bytes: casts between
//     pointer types reinterpret nothing, and pointer arithmetic works at
//     element granularity;
//   - class-typed temporaries (by-value returns) are not destructed.
package interp

import (
	"fmt"

	"deadmembers/internal/types"
)

// Kind tags a runtime value.
type Kind int

// Value kinds.
const (
	KVoid Kind = iota
	KInt
	KChar
	KBool
	KDouble
	KPtr
	KMemberPtr
	KObj
	KArr
)

// Cell is one mutable storage slot (the target of an lvalue).
type Cell struct {
	V Value
}

// Pointer is the runtime representation of a pointer value. Exactly one
// shape is active: a single cell, a class object, or a position within an
// array of cells. The zero Pointer is the null pointer.
//
// Values reference their Pointer payload by pointer (see Value), so a
// Pointer reached through a Value must be treated as immutable: copy it
// (`p := *v.P`) before deriving a new pointer from it.
type Pointer struct {
	Cell *Cell
	Obj  *Object
	Arr  []*Cell
	Idx  int
	arrp bool // distinguishes a (possibly empty) array pointer from null

	// Block tracks the heap allocation this pointer derives from, for
	// delete/free bookkeeping; nil for pointers to locals/globals.
	Block *HeapBlock
}

// IsNull reports whether the pointer is null. A nil *Pointer counts as
// null so a zero Value with K forced to KPtr stays well-behaved.
func (p *Pointer) IsNull() bool {
	return p == nil || (p.Cell == nil && p.Obj == nil && !p.arrp)
}

// nullPtr is the shared payload of every null pointer value.
var nullPtr = &Pointer{}

// HeapBlock describes one heap allocation (new, new[], or malloc).
type HeapBlock struct {
	// Objs is non-nil for new C / new C[n] allocations.
	Objs []*Object
	// Cells is non-nil for scalar new / new[] / malloc allocations.
	Cells []*Cell
	Freed bool
	Array bool // allocated with new[] (or malloc)
}

// Value is a tagged-union runtime value. The pointer and array payloads
// are boxed so the struct stays small enough (56 bytes) for the compiler
// to move it in registers instead of calling duffcopy — Value copies
// dominate the VM dispatch loop, so the layout is performance-sensitive.
type Value struct {
	K   Kind
	I   int64    // KInt, KChar, KBool
	F   float64  // KDouble
	P   *Pointer // KPtr (shared, immutable; see Pointer)
	MP  *types.Field
	Obj *Object  // KObj (class values live in cells as objects)
	Arr *[]*Cell // KArr (array values; read via Cells)
}

// Cells returns the elements of a KArr value (nil for other kinds).
func (v Value) Cells() []*Cell {
	if v.Arr == nil {
		return nil
	}
	return *v.Arr
}

// NullValue returns the null pointer value (the vm package's NullLit
// constant; interp-internal code uses nullV).
func NullValue() Value { return nullV() }

// Convenience constructors.
func intV(v int64) Value      { return Value{K: KInt, I: v} }
func charV(v byte) Value      { return Value{K: KChar, I: int64(v)} }
func boolV(v bool) Value      { return Value{K: KBool, I: b2i(v)} }
func doubleV(v float64) Value { return Value{K: KDouble, F: v} }
func ptrV(p Pointer) Value    { return Value{K: KPtr, P: &p} }
func nullV() Value            { return Value{K: KPtr, P: nullPtr} }
func arrV(cells []*Cell) Value {
	return Value{K: KArr, Arr: &cells}
}
func memberPtrV(f *types.Field) Value {
	return Value{K: KMemberPtr, MP: f}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// IsTruthy interprets the value as a condition.
func (v Value) IsTruthy() bool {
	switch v.K {
	case KInt, KChar, KBool:
		return v.I != 0
	case KDouble:
		return v.F != 0
	case KPtr:
		return !v.P.IsNull()
	case KMemberPtr:
		return v.MP != nil
	}
	return false
}

// AsInt converts a numeric value to int64.
func (v Value) AsInt() int64 {
	if v.K == KDouble {
		return int64(v.F)
	}
	return v.I
}

// AsFloat converts a numeric value to float64.
func (v Value) AsFloat() float64 {
	if v.K == KDouble {
		return v.F
	}
	return float64(v.I)
}

// String renders the value for the print builtin and diagnostics.
func (v Value) String() string {
	switch v.K {
	case KVoid:
		return "void"
	case KInt:
		return fmt.Sprintf("%d", v.I)
	case KChar:
		return string(rune(byte(v.I)))
	case KBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	case KDouble:
		return formatDouble(v.F)
	case KPtr:
		if v.P.IsNull() {
			return "nullptr"
		}
		return "<ptr>"
	case KMemberPtr:
		if v.MP == nil {
			return "<null-member-ptr>"
		}
		return "&" + v.MP.QualifiedName()
	case KObj:
		if v.Obj != nil {
			return "<" + v.Obj.Class.Name + " object>"
		}
	case KArr:
		return "<array>"
	}
	return "<?>"
}

// formatDouble prints a float like C's %g.
func formatDouble(f float64) string {
	return fmt.Sprintf("%g", f)
}

// FieldPlan is the per-class storage layout shared by every instance:
// the distinct data members in a deterministic order (own fields first,
// then bases depth-first, with members shared through virtual bases
// appearing once) and the inverse index. Instances store their cells in
// a flat slice in plan order, which is what makes the VM's monomorphic
// inline caches possible: a (class, field) pair resolves to a fixed slot
// number.
type FieldPlan struct {
	Fields []*types.Field
	Index  map[*types.Field]int
}

// Object is a class instance with one cell per distinct data member
// (members shared through virtual bases occupy a single cell).
type Object struct {
	Class *types.Class
	Plan  *FieldPlan
	Cells []*Cell // one per Plan.Fields entry, same order

	// Size/DeadBytes/AdjSize cache the ledger accounting recorded at
	// allocation so destruction balances exactly.
	Size      int
	DeadBytes int
	AdjSize   int

	Destroyed bool
}

// Cell returns the storage cell of field f, which must exist in the
// object (a failed lookup indicates an invalid downcast).
func (o *Object) Cell(f *types.Field) (*Cell, bool) {
	i, ok := o.Plan.Index[f]
	if !ok {
		return nil, false
	}
	return o.Cells[i], true
}
