// Package frontend bundles lexing, parsing, and semantic analysis into a
// single entry point: MC++ source text in, typed program out.
package frontend

import (
	"deadmembers/internal/ast"
	"deadmembers/internal/hierarchy"
	"deadmembers/internal/parser"
	"deadmembers/internal/sema"
	"deadmembers/internal/source"
	"deadmembers/internal/types"
)

// Source is one named MC++ source file.
type Source struct {
	Name string
	Text string
}

// Result is the output of a frontend run.
type Result struct {
	Program *types.Program
	Graph   *hierarchy.Graph
	FileSet *source.FileSet
	Diags   *source.DiagnosticList
}

// Err returns an error if any phase reported errors.
func (r *Result) Err() error { return r.Diags.Err() }

// Compile runs the full frontend over the given sources. The result always
// carries a (possibly partial) program; check Err before trusting it.
func Compile(sources ...Source) *Result {
	fset := source.NewFileSet()
	diags := source.NewDiagnosticList(fset)

	// Pre-scan every file so class names declared in one file are known
	// as type names while parsing the others.
	var srcFiles []*source.File
	allTypes := map[string]bool{}
	for _, s := range sources {
		f := fset.AddFile(s.Name, s.Text)
		srcFiles = append(srcFiles, f)
		if err := f.CheckSize(); err != nil {
			diags.Errorf(f.Pos(0), "%v", err)
			continue
		}
		for name := range parser.CollectTypeNames(f) {
			allTypes[name] = true
		}
	}
	var files []*ast.File
	for _, f := range srcFiles {
		if f.CheckSize() != nil {
			files = append(files, &ast.File{Name: f.Name()})
			continue
		}
		files = append(files, parser.ParseFileWithTypes(f, diags, allTypes))
	}
	prog, graph := sema.Check(fset, files, diags)
	return &Result{Program: prog, Graph: graph, FileSet: fset, Diags: diags}
}

// MustCompile is Compile but panics on errors; intended for tests and
// embedded corpus programs that are known to be valid.
func MustCompile(sources ...Source) *Result {
	r := Compile(sources...)
	if err := r.Err(); err != nil {
		panic("frontend.MustCompile: " + err.Error())
	}
	return r
}
