package frontend

import (
	"strings"
	"testing"
	"testing/quick"
)

// TestFrontendNeverPanics drives the whole frontend (lexer, parser, sema)
// with structured garbage: random token soup assembled from MC++
// vocabulary. The frontend must terminate and either produce a program or
// diagnostics — never panic or hang.
func TestFrontendNeverPanics(t *testing.T) {
	vocab := []string{
		"class", "struct", "union", "public", ":", ";", "{", "}", "(", ")",
		"[", "]", "int", "double", "char", "bool", "void", "virtual",
		"volatile", "const", "*", "&", "->", ".", "::", "->*", ".*", "=",
		"+", "-", "/", "%", "new", "delete", "sizeof", "this", "nullptr",
		"if", "else", "while", "for", "switch", "case", "default", "return",
		"break", "continue", "do", "x", "y", "C", "f", "main", "0", "1",
		"42", "1.5", "'c'", `"s"`, ",", "?", "~", "!",
	}
	check := func(picks []uint16) bool {
		var b strings.Builder
		for _, p := range picks {
			b.WriteString(vocab[int(p)%len(vocab)])
			b.WriteByte(' ')
		}
		r := Compile(Source{Name: "garbage.mcc", Text: b.String()})
		return r != nil && r.Program != nil
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(check, cfg); err != nil {
		t.Error(err)
	}
}

// TestFrontendNeverPanicsOnBytes feeds raw random bytes.
func TestFrontendNeverPanicsOnBytes(t *testing.T) {
	check := func(data []byte) bool {
		r := Compile(Source{Name: "bytes.mcc", Text: string(data)})
		return r != nil && r.Diags != nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestTruncatedPrograms checks that every prefix of a valid program is
// handled gracefully (the classic incremental-editing scenario for the
// IDE use case the paper mentions).
func TestTruncatedPrograms(t *testing.T) {
	full := `
class A { public: int x; virtual int f() { return x; } };
class B : public A { public: int y; B() : y(1) {} virtual int f() { return y; } };
int main() { B b; A* p = &b; return p->f(); }
`
	for i := 0; i <= len(full); i += 7 {
		r := Compile(Source{Name: "part.mcc", Text: full[:i]})
		if r == nil || r.Program == nil {
			t.Fatalf("prefix of length %d: frontend returned nil", i)
		}
	}
}
