package frontend

import (
	"strings"
	"testing"
	"testing/quick"

	"deadmembers/internal/source"
)

// TestFrontendNeverPanics drives the whole frontend (lexer, parser, sema)
// with structured garbage: random token soup assembled from MC++
// vocabulary. The frontend must terminate and either produce a program or
// diagnostics — never panic or hang.
func TestFrontendNeverPanics(t *testing.T) {
	vocab := []string{
		"class", "struct", "union", "public", ":", ";", "{", "}", "(", ")",
		"[", "]", "int", "double", "char", "bool", "void", "virtual",
		"volatile", "const", "*", "&", "->", ".", "::", "->*", ".*", "=",
		"+", "-", "/", "%", "new", "delete", "sizeof", "this", "nullptr",
		"if", "else", "while", "for", "switch", "case", "default", "return",
		"break", "continue", "do", "x", "y", "C", "f", "main", "0", "1",
		"42", "1.5", "'c'", `"s"`, ",", "?", "~", "!",
	}
	check := func(picks []uint16) bool {
		var b strings.Builder
		for _, p := range picks {
			b.WriteString(vocab[int(p)%len(vocab)])
			b.WriteByte(' ')
		}
		r := Compile(Source{Name: "garbage.mcc", Text: b.String()})
		return r != nil && r.Program != nil
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(check, cfg); err != nil {
		t.Error(err)
	}
}

// TestFrontendNeverPanicsOnBytes feeds raw random bytes.
func TestFrontendNeverPanicsOnBytes(t *testing.T) {
	check := func(data []byte) bool {
		r := Compile(Source{Name: "bytes.mcc", Text: string(data)})
		return r != nil && r.Diags != nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestTruncatedPrograms checks that every prefix of a valid program is
// handled gracefully (the classic incremental-editing scenario for the
// IDE use case the paper mentions).
func TestTruncatedPrograms(t *testing.T) {
	full := `
class A { public: int x; virtual int f() { return x; } };
class B : public A { public: int y; B() : y(1) {} virtual int f() { return y; } };
int main() { B b; A* p = &b; return p->f(); }
`
	for i := 0; i <= len(full); i += 7 {
		r := Compile(Source{Name: "part.mcc", Text: full[:i]})
		if r == nil || r.Program == nil {
			t.Fatalf("prefix of length %d: frontend returned nil", i)
		}
	}
}

// TestDeepNestingBounded feeds pathologically nested input that would
// overflow the goroutine stack without the parser's depth guard. Each case
// must terminate with a "nesting too deep" diagnostic, never crash.
func TestDeepNestingBounded(t *testing.T) {
	const n = 20000
	cases := []struct{ name, src string }{
		{"parens", "int main() { return " + strings.Repeat("(", n) + "1" + strings.Repeat(")", n) + "; }"},
		{"unary", "int main() { return " + strings.Repeat("!", n) + "1; }"},
		{"blocks", "int main() { " + strings.Repeat("{", n) + strings.Repeat("}", n) + " return 0; }"},
		{"ternary", "int main() { return " + strings.Repeat("1 ? ", n) + "1" + strings.Repeat(" : 1", n) + "; }"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := Compile(Source{Name: "deep.mcc", Text: c.src})
			if r == nil || r.Program == nil {
				t.Fatal("frontend returned nil on deeply nested input")
			}
			if !strings.Contains(r.Diags.String(), "nesting too deep") {
				t.Fatalf("expected a nesting-depth diagnostic, got:\n%s", r.Diags.String())
			}
		})
	}
}

// TestOversizedFileRejected: inputs past source.MaxFileSize are rejected
// with a diagnostic instead of being lexed.
func TestOversizedFileRejected(t *testing.T) {
	big := strings.Repeat("x", source.MaxFileSize+1)
	r := Compile(Source{Name: "big.mcc", Text: big})
	if r == nil || !r.Diags.HasErrors() {
		t.Fatal("oversized file was not rejected")
	}
	if !strings.Contains(r.Diags.String(), "file too large") {
		t.Fatalf("expected a file-too-large diagnostic, got:\n%s", r.Diags.String())
	}
}
