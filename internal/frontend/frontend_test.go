package frontend

import (
	"strings"
	"testing"

	"deadmembers/internal/types"
)

// figure1 is the example program of Figure 1 of the paper, transliterated
// to MC++ (references replaced by pointers).
const figure1 = `
class N {
public:
	int mn1; /* live: accessed and observable */
	int mn2; /* dead: not accessed */
};
class A {
public:
	virtual int f() { return ma1; }
	int ma1; /* live */
	int ma2; /* dead: not accessed */
	int ma3; /* dead: accessed but only written */
};
class B : public A {
public:
	virtual int f() { return mb1; }
	int mb1;
	N   mb2;
	int mb3;
	int mb4;
};
class C : public A {
public:
	virtual int f() { return mc1; }
	int mc1;
};
int foo(int* x) { return (*x) + 1; }
int main() {
	A a;
	B b;
	C c;
	A* ap;
	a.ma3 = b.mb3 + 1;
	int i = 10;
	if (i < 20) { ap = &a; } else { ap = &b; }
	return ap->f() + b.mb2.mn1 + foo(&b.mb4);
}
`

func TestCompileFigure1(t *testing.T) {
	r := Compile(Source{Name: "figure1.mcc", Text: figure1})
	if err := r.Err(); err != nil {
		t.Fatalf("unexpected errors:\n%v", err)
	}
	p := r.Program
	if p.Main == nil {
		t.Fatal("main not found")
	}
	if got := len(p.Classes); got != 4 {
		t.Fatalf("expected 4 classes, got %d", got)
	}
	b := p.ClassByName["B"]
	if b == nil {
		t.Fatal("class B missing")
	}
	if len(b.Fields) != 4 {
		t.Fatalf("B should have 4 fields, got %d", len(b.Fields))
	}
	if len(b.Bases) != 1 || b.Bases[0].Class.Name != "A" {
		t.Fatalf("B should derive from A, got %v", b.Bases)
	}
	// ap->f() is a virtual call; the static target is A::f.
	a := p.ClassByName["A"]
	if m := a.MethodByName("f"); m == nil || !m.Virtual {
		t.Fatal("A::f should be a virtual method")
	}
	// Layout sanity: B contains A subobject (vptr+3 ints) plus own fields.
	lb := r.Graph.LayoutOf(b)
	if lb.Size <= r.Graph.LayoutOf(a).Size {
		t.Fatalf("sizeof(B)=%d should exceed sizeof(A)=%d", lb.Size, r.Graph.LayoutOf(a).Size)
	}
	if lb.VptrBytes != 8 {
		t.Fatalf("B should have one inherited vptr (8 bytes), got %d", lb.VptrBytes)
	}
}

func TestCompileErrorsAreReported(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"unknown type", `int main() { Foo x; return 0; }`, "undeclared identifier"},
		{"unknown member", `class A { public: int x; }; int main() { A a; return a.y; }`, "no member named"},
		{"bad arity", `int f(int a) { return a; } int main() { return f(); }`, "expects 1 argument"},
		{"union inheritance", `class A { public: int x; }; union U : public A { int y; }; int main() { return 0; }`, "unions cannot participate"},
		{"self inheritance", `class A : public A { public: int x; }; int main() { return 0; }`, "cannot derive from itself"},
		{"method without call", `class A { public: int f() { return 1; } }; int main() { A a; return a.f; }`, "used without call"},
		{"this outside method", `int main() { return (int)this; }`, "outside a member function"},
		{"dtor mismatch", `class A { public: ~B() {} }; int main() { return 0; }`, "does not match class"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := Compile(Source{Name: "t.mcc", Text: tc.src})
			err := r.Err()
			if err == nil {
				t.Fatalf("expected error containing %q, got none", tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("expected error containing %q, got:\n%v", tc.wantSub, err)
			}
		})
	}
}

func TestMemberLookupThroughBases(t *testing.T) {
	src := `
class Base { public: int x; };
class Mid : public Base { public: int y; };
class Derived : public Mid { public: int z; };
int main() {
	Derived d;
	d.x = 1;
	d.y = 2;
	d.z = 3;
	return d.x + d.y + d.z;
}
`
	r := Compile(Source{Name: "t.mcc", Text: src})
	if err := r.Err(); err != nil {
		t.Fatalf("unexpected errors:\n%v", err)
	}
	derived := r.Program.ClassByName["Derived"]
	f, err := r.Graph.LookupField(derived, "x")
	if err != nil {
		t.Fatalf("lookup failed: %v", err)
	}
	if f.Owner.Name != "Base" {
		t.Fatalf("x should resolve to Base::x, got %s", f.QualifiedName())
	}
}

func TestAmbiguousLookupRejected(t *testing.T) {
	src := `
class L { public: int v; };
class R { public: int v; };
class D : public L, public R { public: int w; };
int main() {
	D d;
	return d.v;
}
`
	r := Compile(Source{Name: "t.mcc", Text: src})
	err := r.Err()
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("expected ambiguity error, got: %v", err)
	}
}

func TestVirtualBaseSharedNotAmbiguous(t *testing.T) {
	src := `
class V { public: int v; };
class L : public virtual V { public: int l; };
class R : public virtual V { public: int r; };
class D : public L, public R { public: int d; };
int main() {
	D x;
	x.v = 1;
	return x.v;
}
`
	r := Compile(Source{Name: "t.mcc", Text: src})
	if err := r.Err(); err != nil {
		t.Fatalf("diamond through virtual base should be unambiguous:\n%v", err)
	}
	d := r.Program.ClassByName["D"]
	vbs := r.Graph.VirtualBases(d)
	if len(vbs) != 1 || vbs[0].Name != "V" {
		t.Fatalf("expected one virtual base V, got %v", vbs)
	}
	// V's field must appear exactly once in D's layout.
	count := 0
	for _, mi := range r.Graph.LayoutOf(d).Members {
		if mi.Field.QualifiedName() == "V::v" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("V::v should appear once in D's layout, got %d", count)
	}
}

func TestNonVirtualDiamondDuplicatesBase(t *testing.T) {
	src := `
class V { public: int v; };
class L : public V { public: int l; };
class R : public V { public: int r; };
class D : public L, public R { public: int d; };
int main() { D x; return x.d; }
`
	r := Compile(Source{Name: "t.mcc", Text: src})
	if err := r.Err(); err != nil {
		t.Fatalf("unexpected errors:\n%v", err)
	}
	d := r.Program.ClassByName["D"]
	count := 0
	for _, mi := range r.Graph.LayoutOf(d).Members {
		if mi.Field.QualifiedName() == "V::v" {
			count++
		}
	}
	if count != 2 {
		t.Fatalf("non-virtual diamond should contain two V::v instances, got %d", count)
	}
}

func TestPointerToMemberTypes(t *testing.T) {
	src := `
class A { public: int x; int y; };
int main() {
	int A::* pm = &A::x;
	A a;
	a.*pm = 42;
	pm = &A::y;
	A* ap = &a;
	return ap->*pm;
}
`
	r := Compile(Source{Name: "t.mcc", Text: src})
	if err := r.Err(); err != nil {
		t.Fatalf("unexpected errors:\n%v", err)
	}
	// Both &A::x and &A::y must be resolved.
	if len(r.Program.Info.QualFieldRefs) != 2 {
		t.Fatalf("expected 2 qualified field refs, got %d", len(r.Program.Info.QualFieldRefs))
	}
}

func TestUnsafeCastRecorded(t *testing.T) {
	src := `
class A { public: int x; };
class B : public A { public: int y; };
int main() {
	A* ap = new B();
	B* bp = (B*)ap;   // downcast: potentially unsafe
	A* ap2 = (A*)bp;  // upcast: safe
	return bp->y + (ap2 != nullptr ? 1 : 0);
}
`
	r := Compile(Source{Name: "t.mcc", Text: src})
	if err := r.Err(); err != nil {
		t.Fatalf("unexpected errors:\n%v", err)
	}
	if len(r.Program.Info.UnsafeCasts) != 1 {
		t.Fatalf("expected exactly 1 unsafe cast, got %d", len(r.Program.Info.UnsafeCasts))
	}
	for _, cls := range r.Program.Info.UnsafeCasts {
		if cls.Name != "A" {
			t.Fatalf("unsafe cast source class should be A, got %s", cls.Name)
		}
	}
}

func TestImplicitThisMemberAccess(t *testing.T) {
	src := `
class Counter {
public:
	int n;
	Counter() : n(0) {}
	void bump() { n = n + 1; }
	int get() { return n; }
};
int main() {
	Counter c;
	c.bump();
	return c.get();
}
`
	r := Compile(Source{Name: "t.mcc", Text: src})
	if err := r.Err(); err != nil {
		t.Fatalf("unexpected errors:\n%v", err)
	}
	if len(r.Program.Info.IdentFields) == 0 {
		t.Fatal("implicit this-> field accesses should be recorded in IdentFields")
	}
}

func TestOutOfLineDefinitions(t *testing.T) {
	src := `
class Stack {
public:
	int data[16];
	int top;
	Stack();
	void push(int v);
	int pop();
};
Stack::Stack() : top(0) {}
void Stack::push(int v) { data[top] = v; top = top + 1; }
int Stack::pop() { top = top - 1; return data[top]; }
int main() {
	Stack s;
	s.push(41);
	s.push(1);
	return s.pop() + s.pop();
}
`
	r := Compile(Source{Name: "t.mcc", Text: src})
	if err := r.Err(); err != nil {
		t.Fatalf("unexpected errors:\n%v", err)
	}
	st := r.Program.ClassByName["Stack"]
	for _, name := range []string{"push", "pop"} {
		m := st.MethodByName(name)
		if m == nil || m.Body == nil {
			t.Fatalf("out-of-line %s should have a body", name)
		}
	}
	if len(st.Ctors()) != 1 || st.Ctors()[0].Body == nil {
		t.Fatal("out-of-line constructor should have a body")
	}
}

func TestGlobalsAndBuiltins(t *testing.T) {
	src := `
int counter = 5;
int main() {
	print(counter);
	println();
	int* p = (int*)malloc(4);
	*p = 7;
	int v = *p;
	free((void*)p);
	return v;
}
`
	r := Compile(Source{Name: "t.mcc", Text: src})
	if err := r.Err(); err != nil {
		t.Fatalf("unexpected errors:\n%v", err)
	}
	if len(r.Program.Globals) != 1 || r.Program.Globals[0].Name != "counter" {
		t.Fatalf("expected one global counter, got %v", r.Program.Globals)
	}
	if r.Program.Globals[0].Type != types.IntType {
		t.Fatalf("counter should be int, got %s", r.Program.Globals[0].Type)
	}
}

func TestUnionCompile(t *testing.T) {
	src := `
union U {
	int i;
	double d;
	char c;
};
int main() {
	U u;
	u.i = 3;
	return u.i;
}
`
	r := Compile(Source{Name: "t.mcc", Text: src})
	if err := r.Err(); err != nil {
		t.Fatalf("unexpected errors:\n%v", err)
	}
	u := r.Program.ClassByName["U"]
	if !u.IsUnion() {
		t.Fatal("U should be a union")
	}
	l := r.Graph.LayoutOf(u)
	if l.Size != 8 {
		t.Fatalf("union of int/double/char should have size 8, got %d", l.Size)
	}
	for _, mi := range l.Members {
		if mi.Offset != 0 {
			t.Fatalf("union members must overlay at offset 0, got %d for %s", mi.Offset, mi.Field.Name)
		}
	}
}
