package report

import (
	"context"
	"strings"
	"sync"
	"testing"

	"deadmembers/internal/bench"
	"deadmembers/internal/deadmember"
	"deadmembers/internal/engine"
	"deadmembers/internal/frontend"
)

var (
	resultsOnce sync.Once
	resultsAll  []*BenchmarkResult
	resultsErr  error
)

func allResults(t *testing.T) []*BenchmarkResult {
	t.Helper()
	resultsOnce.Do(func() {
		resultsAll, resultsErr = CollectAll()
	})
	if resultsErr != nil {
		t.Fatalf("CollectAll: %v", resultsErr)
	}
	return resultsAll
}

func TestCollectAllCoversCorpus(t *testing.T) {
	rs := allResults(t)
	if len(rs) != 11 {
		t.Fatalf("collected %d results, want 11", len(rs))
	}
	for _, r := range rs {
		if r.LOC == 0 || r.Classes == 0 || r.Members == 0 {
			t.Errorf("%s: empty static characteristics: %+v", r.Name, r)
		}
		if r.ObjectSpace == 0 {
			t.Errorf("%s: no object space measured", r.Name)
		}
	}
}

func TestTable1Rendering(t *testing.T) {
	out := Table1(allResults(t))
	for _, want := range []string{"Table 1", "jikes", "richards", "deltablue", "classes(used)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 output missing %q", want)
		}
	}
	if lines := strings.Count(out, "\n"); lines < 13 {
		t.Errorf("Table1 has %d lines, want at least 13 (header + 11 rows)", lines)
	}
}

func TestFigure3Rendering(t *testing.T) {
	out := Figure3(allResults(t))
	if !strings.Contains(out, "Figure 3") {
		t.Error("missing caption")
	}
	// taldict has the tallest bar.
	var taldictBar, schedBar int
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "taldict") {
			taldictBar = strings.Count(line, "#")
		}
		if strings.HasPrefix(line, "sched") {
			schedBar = strings.Count(line, "#")
		}
	}
	if taldictBar <= schedBar {
		t.Errorf("taldict bar (%d) should exceed sched bar (%d)", taldictBar, schedBar)
	}
}

func TestTable2Rendering(t *testing.T) {
	out := Table2(allResults(t))
	for _, want := range []string{"Table 2", "object space", "high water mark", "sched"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 output missing %q", want)
		}
	}
}

func TestFigure4Rendering(t *testing.T) {
	out := Figure4(allResults(t))
	if !strings.Contains(out, "Figure 4") {
		t.Error("missing caption")
	}
	// Two bars per benchmark: 22 bar lines.
	bars := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "|") {
			bars++
		}
	}
	if bars != 22 {
		t.Errorf("Figure 4 has %d bar lines, want 22 (two per benchmark)", bars)
	}
}

func TestSummaryHeadlines(t *testing.T) {
	rs := allResults(t)
	s := Summarize(rs)
	if s.AvgDeadPercent < 11.5 || s.AvgDeadPercent > 13.5 {
		t.Errorf("avg dead%% = %.2f, want ≈12.5 (paper)", s.AvgDeadPercent)
	}
	if s.MaxDeadPercent < 26.3 || s.MaxDeadPercent > 28.3 {
		t.Errorf("max dead%% = %.2f, want ≈27.3 (paper)", s.MaxDeadPercent)
	}
	if s.MaxDynPercent < 11.0 || s.MaxDynPercent > 12.2 {
		t.Errorf("max dynamic dead%% = %.2f, want ≈11.6 (paper)", s.MaxDynPercent)
	}
	out := Summary(rs)
	if !strings.Contains(out, "12.5%") || !strings.Contains(out, "27.3%") {
		t.Error("summary must quote the paper's numbers for comparison")
	}
}

func TestNoStrongStaticDynamicCorrelation(t *testing.T) {
	// Paper §4.3: "there is no strong correlation between a high
	// percentage of dead data members in Figure 3, and a high percentage
	// of object space occupied by those data members in Figure 4."
	corr := StaticDynamicCorrelation(allResults(t))
	if corr > 0.5 {
		t.Errorf("static/dynamic correlation = %.2f; paper observes no strong (positive) correlation", corr)
	}
	// Both decoupling directions must exist in the corpus, as in the
	// paper: high-static/low-dynamic (taldict) and low-static/high-dynamic
	// (sched).
	var taldict, sched *BenchmarkResult
	for _, r := range allResults(t) {
		switch r.Name {
		case "taldict":
			taldict = r
		case "sched":
			sched = r
		}
	}
	if taldict.DeadPercent < 20 || taldict.DynDeadPercent > 2 {
		t.Errorf("taldict should be high-static/low-dynamic: %.1f%%/%.2f%%",
			taldict.DeadPercent, taldict.DynDeadPercent)
	}
	if sched.DeadPercent > 5 || sched.DynDeadPercent < 10 {
		t.Errorf("sched should be low-static/high-dynamic: %.1f%%/%.2f%%",
			sched.DeadPercent, sched.DynDeadPercent)
	}
}

func TestCSVExport(t *testing.T) {
	out := CSV(allResults(t))
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 12 {
		t.Fatalf("CSV has %d lines, want 12 (header + 11)", len(lines))
	}
	if !strings.HasPrefix(lines[0], "benchmark,loc,") {
		t.Errorf("unexpected CSV header %q", lines[0])
	}
	for _, l := range lines[1:] {
		if got := strings.Count(l, ","); got != 12 {
			t.Errorf("CSV row %q has %d commas, want 12", l, got)
		}
	}
}

func TestAblations(t *testing.T) {
	rows, err := RunAblations()
	if err != nil {
		t.Fatalf("RunAblations: %v", err)
	}
	if len(rows) != 11 {
		t.Fatalf("got %d ablation rows, want 11", len(rows))
	}
	for _, r := range rows {
		// Monotonicity: more precise call graphs find at least as many
		// dead members.
		if !(r.DeadALL <= r.DeadCHA && r.DeadCHA <= r.DeadRTA) {
			t.Errorf("%s: call-graph monotonicity violated: ALL=%d CHA=%d RTA=%d",
				r.Name, r.DeadALL, r.DeadCHA, r.DeadRTA)
		}
		// Disabling rules can only lose dead members.
		if r.DeadSizeofConservative > r.DeadRTA {
			t.Errorf("%s: conservative sizeof found MORE dead members (%d > %d)",
				r.Name, r.DeadSizeofConservative, r.DeadRTA)
		}
		if r.DeadNoDeleteRule > r.DeadRTA {
			t.Errorf("%s: disabling the delete rule found MORE dead members (%d > %d)",
				r.Name, r.DeadNoDeleteRule, r.DeadRTA)
		}
		// §2's claim: counting writes as uses leaves almost nothing dead
		// (every corpus member is initialized in a constructor).
		if r.DeadWritesAreUses != 0 {
			t.Errorf("%s: writes-as-uses should find 0 dead members (all are ctor-initialized), got %d",
				r.Name, r.DeadWritesAreUses)
		}
	}
	// The generated corpus plants unreachable-read members, so ALL (which
	// treats all functions as reachable) must find strictly fewer dead
	// members than RTA on at least one benchmark.
	stricter := false
	for _, r := range rows {
		if r.DeadALL < r.DeadRTA {
			stricter = true
		}
	}
	if !stricter {
		t.Error("expected ALL to lose dead members relative to RTA somewhere in the corpus")
	}
	out := AblationTable(rows)
	if !strings.Contains(out, "Ablations") || !strings.Contains(out, "RTA") {
		t.Error("ablation table rendering incomplete")
	}
}

// TestAblationSweepCompilesOncePerBenchmark is the compile-counter check
// for the engine's core economy: the corpus-wide six-variant ablation
// sweep performs exactly one frontend compile per benchmark, every later
// exhibit over the same session is a pure cache hit, and the resulting
// table is byte-identical to the one produced by recompiling per variant
// with the pre-engine frontend path.
func TestAblationSweepCompilesOncePerBenchmark(t *testing.T) {
	s := engine.NewSession(engine.Config{})
	rows, err := RunAblationsIn(s)
	if err != nil {
		t.Fatalf("RunAblationsIn: %v", err)
	}
	n := len(bench.All())
	if st := s.Stats(); st.Compiles != n || st.Hits != 0 {
		t.Fatalf("ablation sweep stats = %+v, want exactly %d compiles and 0 hits", st, n)
	}

	// A full result collection afterwards must not compile anything new.
	if _, err := CollectAllIn(s); err != nil {
		t.Fatalf("CollectAllIn: %v", err)
	}
	if st := s.Stats(); st.Compiles != n || st.Hits != n {
		t.Fatalf("after collection stats = %+v, want still %d compiles and %d hits", st, n, n)
	}

	// Seed-equivalence: recompute every row the old way — one frontend
	// compile and one analysis per (benchmark, variant) — and require the
	// rendered tables to match byte-for-byte.
	var seed []*AblationRow
	for _, b := range bench.All() {
		row := &AblationRow{Name: b.Name}
		for _, v := range ablationVariants(row) {
			r := frontend.Compile(b.Sources...)
			if err := r.Err(); err != nil {
				t.Fatalf("%s: %v", b.Name, err)
			}
			st := deadmember.Analyze(r.Program, r.Graph, v.opts).Stats()
			*v.dst = st.DeadMembers
			row.Members = st.Members
		}
		seed = append(seed, row)
	}
	if got, want := AblationTable(rows), AblationTable(seed); got != want {
		t.Fatalf("engine ablation table differs from the recompile-per-variant table:\n--- engine ---\n%s--- seed ---\n%s", got, want)
	}
}

// TestSweepSurvivesDegradedBenchmark: a panic contained while compiling
// one benchmark must not abandon the sweep — the crashed benchmark gets a
// degraded stub row and every other row is measured normally.
func TestSweepSurvivesDegradedBenchmark(t *testing.T) {
	s := engine.NewSession(engine.Config{ParseFault: func(name string) {
		if name == "richards.mcc" {
			panic("injected parse fault")
		}
	}})
	results, err := CollectAllInContext(context.Background(), s)
	if err != nil {
		t.Fatalf("sweep aborted: %v", err)
	}
	if len(results) != len(bench.All()) {
		t.Fatalf("got %d rows, want one per benchmark (%d)", len(results), len(bench.All()))
	}
	if !AnyDegraded(results) {
		t.Fatal("expected a degraded row")
	}
	for _, r := range results {
		if r.Name == "richards" {
			if !r.Degraded || r.FailReason == "" {
				t.Errorf("richards row = %+v, want degraded with a reason", r)
			}
		} else if r.Degraded {
			t.Errorf("%s unexpectedly degraded: %s", r.Name, r.FailReason)
		} else if r.Members == 0 {
			t.Errorf("%s has no measurements", r.Name)
		}
	}
	if note := DegradedNote(results); !strings.Contains(note, "richards") {
		t.Errorf("DegradedNote = %q, want it to name richards", note)
	}
	if sum := Summarize(results); sum.AvgDeadPercent <= 0 {
		t.Errorf("summary over surviving rows is empty: %+v", sum)
	}
}

// TestSweepAbortsOnCancellation: cancellation is not a per-benchmark
// failure — it aborts the whole sweep with an error.
func TestSweepAbortsOnCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CollectAllInContext(ctx, engine.NewSession(engine.Config{})); err == nil {
		t.Fatal("expected the cancelled sweep to report an error")
	}
}

func TestEnginesTableRendering(t *testing.T) {
	rows := []*EngineRow{
		{Name: "good", Steps: 1000000, TreeSecs: 2.0, VMSecs: 0.2,
			TreeSPS: 500000, VMSPS: 5000000, Speedup: 10.0},
		{Name: "bad", Degraded: true, Note: "engines diverged: tree(exit=0 steps=10) vm(exit=0 steps=11)"},
	}
	s := EnginesTable(rows)
	for _, want := range []string{"10.00x", "[degraded: engines diverged", "total"} {
		if !strings.Contains(s, want) {
			t.Errorf("engines table missing %q:\n%s", want, s)
		}
	}
	j, err := EnginesJSON(rows)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"degraded": true`, `"speedup": 10`} {
		if !strings.Contains(j, want) {
			t.Errorf("engines JSON missing %q:\n%s", want, j)
		}
	}
}

func TestCollectEnginesDegradesOnCompileError(t *testing.T) {
	broken := &bench.Benchmark{
		Name:    "broken",
		Sources: []frontend.Source{{Name: "broken.mcc", Text: "int main() { return undeclared; }\n"}},
	}
	rows, err := CollectEnginesInContext(context.Background(),
		engine.NewSession(engine.Config{Workers: 1}), []*bench.Benchmark{broken})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || !rows[0].Degraded || !strings.Contains(rows[0].Note, "compile") {
		t.Errorf("compile failure should degrade the row, got %+v", rows[0])
	}
}
