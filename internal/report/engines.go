package report

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"deadmembers/internal/bench"
	"deadmembers/internal/engine"
)

// EngineRow is one benchmark's engine comparison: the same program run
// to completion on the tree-walking interpreter and the bytecode VM,
// wall-clock timed. The run is only reported when the two engines agree
// byte-for-byte on output, exit code, and step count — a disagreement
// degrades the row instead of producing a bogus speedup.
type EngineRow struct {
	Name     string  `json:"name"`
	Steps    int64   `json:"steps"`
	TreeSecs float64 `json:"tree_seconds"`
	VMSecs   float64 `json:"vm_seconds"`
	TreeSPS  float64 `json:"tree_steps_per_sec"`
	VMSPS    float64 `json:"vm_steps_per_sec"`
	Speedup  float64 `json:"speedup"`
	Degraded bool    `json:"degraded,omitempty"`
	Note     string  `json:"note,omitempty"`
}

// CollectEnginesInContext runs each benchmark under both engines and
// returns the comparison rows. Failures (compile errors, runtime
// divergence, cancellation mid-run) degrade the affected row; only
// context cancellation aborts the sweep.
func CollectEnginesInContext(ctx context.Context, s *engine.Session, benchmarks []*bench.Benchmark) ([]*EngineRow, error) {
	var out []*EngineRow
	for _, b := range benchmarks {
		row := collectEngineRow(ctx, s, b)
		if ctx.Err() != nil {
			return out, ctx.Err()
		}
		out = append(out, row)
	}
	return out, nil
}

func collectEngineRow(ctx context.Context, s *engine.Session, b *bench.Benchmark) *EngineRow {
	row := &EngineRow{Name: b.Name}
	c, err := b.CompileContext(ctx, s)
	if err != nil {
		row.Degraded = true
		row.Note = "compile: " + err.Error()
		return row
	}
	treeStart := time.Now()
	treeRes, treeErr := c.RunContextEngine(ctx, engine.EngineTree)
	treeDur := time.Since(treeStart)
	vmStart := time.Now()
	vmRes, vmErr := c.RunContextEngine(ctx, engine.EngineVM)
	vmDur := time.Since(vmStart)
	switch {
	case treeErr != nil || vmErr != nil:
		row.Degraded = true
		row.Note = fmt.Sprintf("run: tree=%v vm=%v", treeErr, vmErr)
	case treeRes.Output != vmRes.Output ||
		treeRes.ExitCode != vmRes.ExitCode ||
		treeRes.Steps != vmRes.Steps:
		row.Degraded = true
		row.Note = fmt.Sprintf("engines diverged: tree(exit=%d steps=%d) vm(exit=%d steps=%d)",
			treeRes.ExitCode, treeRes.Steps, vmRes.ExitCode, vmRes.Steps)
	default:
		row.Steps = treeRes.Steps
		row.TreeSecs = treeDur.Seconds()
		row.VMSecs = vmDur.Seconds()
		if row.TreeSecs > 0 {
			row.TreeSPS = float64(row.Steps) / row.TreeSecs
		}
		if row.VMSecs > 0 {
			row.VMSPS = float64(row.Steps) / row.VMSecs
			row.Speedup = row.TreeSecs / row.VMSecs
		}
	}
	return row
}

// EnginesTable renders the engine comparison exhibit: steps/sec under
// each engine and the VM's wall-clock speedup, per benchmark.
func EnginesTable(rows []*EngineRow) string {
	var b strings.Builder
	b.WriteString("Engine comparison: tree-walking interpreter vs bytecode VM (byte-identical runs)\n")
	fmt.Fprintf(&b, "%-10s %12s %10s %10s %14s %14s %9s\n",
		"benchmark", "steps", "tree(s)", "vm(s)", "tree steps/s", "vm steps/s", "speedup")
	b.WriteString(strings.Repeat("-", 85) + "\n")
	var sumSteps int64
	var sumTree, sumVM float64
	clean := 0
	for _, r := range rows {
		if r.Degraded {
			fmt.Fprintf(&b, "%-10s [degraded: %s]\n", r.Name, r.Note)
			continue
		}
		fmt.Fprintf(&b, "%-10s %12d %10.3f %10.3f %14.0f %14.0f %8.2fx\n",
			r.Name, r.Steps, r.TreeSecs, r.VMSecs, r.TreeSPS, r.VMSPS, r.Speedup)
		sumSteps += r.Steps
		sumTree += r.TreeSecs
		sumVM += r.VMSecs
		clean++
	}
	if clean > 0 && sumTree > 0 && sumVM > 0 {
		fmt.Fprintf(&b, "%-10s %12d %10.3f %10.3f %14.0f %14.0f %8.2fx\n",
			"total", sumSteps, sumTree, sumVM,
			float64(sumSteps)/sumTree, float64(sumSteps)/sumVM, sumTree/sumVM)
	}
	return b.String()
}

// EnginesJSON renders the rows as indented JSON (the make bench-vm
// snapshot format).
func EnginesJSON(rows []*EngineRow) (string, error) {
	out, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out) + "\n", nil
}
