package report

import (
	"fmt"
	"strings"
)

// CSV renders the measured results as comma-separated values with a
// header row, for downstream tooling.
func CSV(results []*BenchmarkResult) string {
	var b strings.Builder
	b.WriteString("benchmark,loc,classes,used_classes,members,dead_members,dead_percent," +
		"object_space,dead_space,high_water,high_water_wo_dead,dyn_dead_percent,hwm_reduction_percent\n")
	for _, r := range results {
		fmt.Fprintf(&b, "%s,%d,%d,%d,%d,%d,%.2f,%d,%d,%d,%d,%.2f,%.2f\n",
			r.Name, r.LOC, r.Classes, r.UsedClasses, r.Members, r.DeadMembers, r.DeadPercent,
			r.ObjectSpace, r.DeadSpace, r.HighWater, r.HighWaterWo, r.DynDeadPercent, r.HWMReduction)
	}
	return b.String()
}
