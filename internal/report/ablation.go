package report

import (
	"fmt"
	"strings"

	"deadmembers/internal/bench"
	"deadmembers/internal/callgraph"
	"deadmembers/internal/deadmember"
	"deadmembers/internal/engine"
)

// AblationRow records the dead-member count for one benchmark under each
// analysis variant.
type AblationRow struct {
	Name string

	// Call-graph precision (paper §3.1 discusses how a more accurate
	// call graph finds more dead members).
	DeadALL int
	DeadCHA int
	DeadRTA int

	// sizeof policy (paper §3.2).
	DeadSizeofConservative int

	// delete/free special case off (paper §3's footnote rule).
	DeadNoDeleteRule int

	// writes treated as uses: quantifies §2's claim that without the
	// write/read distinction "very few data members would be dead".
	DeadWritesAreUses int

	Members int
}

// RunAblations analyzes every corpus benchmark under each variant.
func RunAblations() ([]*AblationRow, error) {
	return RunAblationsIn(engine.NewSession(engine.Config{}))
}

// RunAblationsIn runs the sweep against a shared engine session: each
// benchmark is compiled exactly once (or not at all, if the session
// already holds it from an earlier collection), and the four RTA-mode
// variants share one cached call graph — only the liveness pass reruns.
func RunAblationsIn(s *engine.Session) ([]*AblationRow, error) {
	var out []*AblationRow
	for _, b := range bench.All() {
		c, err := b.Compile(s)
		if err != nil {
			return nil, err
		}
		row := &AblationRow{Name: b.Name}
		for _, v := range ablationVariants(row) {
			res := c.Analyze(v.opts)
			st := res.Stats()
			*v.dst = st.DeadMembers
			row.Members = st.Members
		}
		out = append(out, row)
	}
	return out, nil
}

// ablationVariant pairs one analysis configuration with the row field it
// fills in.
type ablationVariant struct {
	opts deadmember.Options
	dst  *int
}

// ablationVariants is the sweep's variant list, wired to a row's fields.
func ablationVariants(row *AblationRow) []ablationVariant {
	return []ablationVariant{
		{deadmember.Options{CallGraph: callgraph.ALL}, &row.DeadALL},
		{deadmember.Options{CallGraph: callgraph.CHA}, &row.DeadCHA},
		{deadmember.Options{CallGraph: callgraph.RTA}, &row.DeadRTA},
		{deadmember.Options{CallGraph: callgraph.RTA, Sizeof: deadmember.SizeofConservative}, &row.DeadSizeofConservative},
		{deadmember.Options{CallGraph: callgraph.RTA, NoDeleteSpecialCase: true}, &row.DeadNoDeleteRule},
		{deadmember.Options{CallGraph: callgraph.RTA, WritesAreUses: true}, &row.DeadWritesAreUses},
	}
}

// AblationTable renders the ablation results: how many dead members each
// variant finds. Monotonicity ALL ≤ CHA ≤ RTA must hold (a more precise
// call graph can only find more dead members), and disabling the
// delete/free rule or making sizeof conservative can only find fewer.
func AblationTable(rows []*AblationRow) string {
	var b strings.Builder
	b.WriteString("Ablations: dead members found per analysis variant\n")
	fmt.Fprintf(&b, "%-10s %8s  %6s %6s %6s  %14s %14s %12s\n",
		"benchmark", "members", "ALL", "CHA", "RTA", "RTA+szof-cons", "RTA-no-delete", "writes=uses")
	b.WriteString(strings.Repeat("-", 92) + "\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %8d  %6d %6d %6d  %14d %14d %12d\n",
			r.Name, r.Members, r.DeadALL, r.DeadCHA, r.DeadRTA,
			r.DeadSizeofConservative, r.DeadNoDeleteRule, r.DeadWritesAreUses)
	}
	b.WriteString("\nRTA is the paper's configuration; ALL treats every function as\n")
	b.WriteString("reachable (so reads in unreachable code keep members alive); the other\n")
	b.WriteString("variants disable individual rules. The writes=uses column quantifies\n")
	b.WriteString("the paper's §2 claim: counting initialization as a use leaves almost\n")
	b.WriteString("no member dead.\n")
	return b.String()
}
