// Package report runs the full evaluation pipeline over the benchmark
// corpus and renders the paper's exhibits: Table 1 (benchmark
// characteristics), Figure 3 (static dead-member percentages), Table 2
// (dynamic byte counts), Figure 4 (dead object space and high-water-mark
// reduction), the headline summary, and the ablation studies.
package report

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"deadmembers/internal/bench"
	"deadmembers/internal/callgraph"
	"deadmembers/internal/deadmember"
	"deadmembers/internal/dynprof"
	"deadmembers/internal/engine"
	"deadmembers/internal/failure"
	"deadmembers/internal/heaplive"
	"deadmembers/internal/lint"
)

// BenchmarkResult is everything measured for one corpus benchmark.
type BenchmarkResult struct {
	Name        string
	Description string
	Paper       bench.PaperRow

	// Static (Table 1 / Figure 3).
	LOC         int
	Classes     int
	UsedClasses int
	Members     int
	DeadMembers int
	DeadPercent float64

	// Dynamic (Table 2 / Figure 4).
	ObjectSpace    int64
	DeadSpace      int64
	HighWater      int64
	HighWaterWo    int64
	DynDeadPercent float64
	HWMReduction   float64

	// Timings are the per-stage wall-clock durations of this benchmark's
	// pipeline run (Parse/Sema from the compilation, CallGraph/Liveness
	// from the RTA analysis, Lint from the flow-sensitive pass).
	Timings engine.Timings

	// LintFindings counts the flow-sensitive diagnostics of a clean run;
	// degraded rows never contribute to lint statistics.
	LintFindings int

	// TierFindings and TierLint are the precision/cost frontier: the
	// finding count and lint wall clock at each liveness tier, indexed
	// by heaplive.Precision.Rank() (paper, flow, heap). The flow slot
	// reuses the LintFindings run above, so its cost is a real
	// measurement rather than a lint-cache hit's zero.
	TierFindings [3]int
	TierLint     [3]time.Duration

	// Degraded marks a row whose pipeline did not complete cleanly: a
	// compile error, a contained panic, or a heap-accounting violation.
	// FailReason says why. A degraded row's measured fields are either
	// zero (the stage never ran) or best-effort salvage — exhibits flag
	// them and the summary statistics skip them.
	Degraded   bool
	FailReason string
}

// Collect runs analysis and instrumented execution for one benchmark.
func Collect(b *bench.Benchmark) (*BenchmarkResult, error) {
	return CollectIn(engine.NewSession(engine.Config{}), b)
}

// CollectIn is Collect against a shared engine session: the benchmark's
// frontend compile is cached, so a subsequent ablation sweep (or repeated
// collection) reuses the same Compilation.
func CollectIn(s *engine.Session, b *bench.Benchmark) (*BenchmarkResult, error) {
	return CollectInContext(context.Background(), s, b)
}

// CollectInContext is CollectIn under a context: cancellation or deadline
// expiry aborts the benchmark's pipeline between work items and is
// reported as the returned error.
func CollectInContext(ctx context.Context, s *engine.Session, b *bench.Benchmark) (*BenchmarkResult, error) {
	return CollectInContextEngine(ctx, s, b, engine.EngineTree)
}

// CollectInContextEngine is CollectInContext with an execution-engine
// selection for the instrumented run. The measurements are byte-identical
// across engines (the VM shares the interpreter's runtime core); the knob
// exists so the engine comparison exhibits and soaks can collect through
// the VM end to end.
func CollectInContextEngine(ctx context.Context, s *engine.Session, b *bench.Benchmark, eng engine.Engine) (*BenchmarkResult, error) {
	c, err := b.CompileContext(ctx, s)
	if err != nil {
		return nil, err
	}
	res, timings, err := c.AnalyzeTimedContext(ctx, deadmember.Options{CallGraph: callgraph.RTA})
	if err != nil {
		return nil, fmt.Errorf("%s: %w", b.Name, err)
	}
	r := &BenchmarkResult{
		Name:        b.Name,
		Description: b.Description,
		Paper:       b.Paper,
		LOC:         c.FileSet.TotalCodeLines(),
		Timings:     timings,
	}
	if c.Degraded() || res.Degraded() {
		r.Degraded = true
		fs := append(append([]*failure.Failure{}, c.Failures...), res.Failures...)
		if len(fs) > 0 {
			r.FailReason = fs[0].Error()
		}
	}
	st := res.Stats()
	r.Classes = st.Classes
	r.UsedClasses = st.UsedClasses
	r.Members = st.Members
	r.DeadMembers = st.DeadMembers
	r.DeadPercent = st.DeadPercent()

	// Flow-sensitive pass, reusing the analysis just computed. Rows that
	// are already degraded are skipped: their findings would be partial,
	// and the lint statistics only count clean rows (same contract as
	// the dynamic measurements).
	if !r.Degraded {
		lres, lintTime, err := c.LintAnalyzed(ctx, res, lint.Options{})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.Name, err)
		}
		r.Timings.Lint = lintTime
		if lres.Degraded() {
			r.Degraded = true
			r.FailReason = lres.Failures[0].Error()
		} else {
			r.LintFindings = len(lres.Findings)
			// Precision/cost frontier: run the remaining tiers against
			// the same analysis. The flow slot reuses the run just
			// measured — a repeat LintAnalyzed call would be a cache
			// hit and record a misleading zero cost.
			r.TierFindings[heaplive.PrecisionFlow.Rank()] = len(lres.Findings)
			r.TierLint[heaplive.PrecisionFlow.Rank()] = lintTime
			for _, p := range heaplive.Tiers() {
				if p == heaplive.PrecisionFlow {
					continue
				}
				tres, took, err := c.LintAnalyzed(ctx, res, lint.Options{Precision: p})
				if err != nil {
					return nil, fmt.Errorf("%s: %w", b.Name, err)
				}
				if tres.Degraded() {
					r.Degraded = true
					r.FailReason = tres.Failures[0].Error()
					break
				}
				r.TierFindings[p.Rank()] = len(tres.Findings)
				r.TierLint[p.Rank()] = took
			}
		}
	}

	prof, err := dynprof.Run(res, dynprof.Options{Context: ctx, Executor: c.ExecutorFor(eng)})
	if err != nil {
		if ctx.Err() != nil {
			return nil, fmt.Errorf("%s: %w", b.Name, err)
		}
		// The static half is intact; keep it and report the row degraded
		// rather than abandoning the whole sweep.
		r.Degraded = true
		r.FailReason = err.Error()
		return r, nil
	}
	if prof.AccountingErr != nil {
		r.Degraded = true
		r.FailReason = prof.AccountingErr.Error()
	}
	l := prof.Ledger
	r.ObjectSpace = l.TotalBytes
	r.DeadSpace = l.DeadBytes
	r.HighWater = l.HighWater
	r.HighWaterWo = l.AdjustedHighWater
	r.DynDeadPercent = l.DeadPercent()
	r.HWMReduction = l.HighWaterReductionPercent()
	return r, nil
}

// CollectAll measures the whole corpus in presentation order.
func CollectAll() ([]*BenchmarkResult, error) {
	return CollectAllIn(engine.NewSession(engine.Config{}))
}

// CollectAllIn measures the whole corpus against a shared engine session,
// compiling each benchmark at most once per session.
func CollectAllIn(s *engine.Session) ([]*BenchmarkResult, error) {
	return CollectAllInContext(context.Background(), s)
}

// CollectAllInContext measures the whole corpus under a context. One
// benchmark failing does not abandon the sweep: the failure becomes a
// degraded stub row (zero measurements, FailReason set) and collection
// continues with the next benchmark. Only cancellation aborts the sweep,
// reported as the returned error.
func CollectAllInContext(ctx context.Context, s *engine.Session) ([]*BenchmarkResult, error) {
	return CollectAllInContextEngine(ctx, s, engine.EngineTree)
}

// CollectAllInContextEngine is CollectAllInContext with an
// execution-engine selection (see CollectInContextEngine).
func CollectAllInContextEngine(ctx context.Context, s *engine.Session, eng engine.Engine) ([]*BenchmarkResult, error) {
	var out []*BenchmarkResult
	for _, b := range bench.All() {
		r, err := CollectInContextEngine(ctx, s, b, eng)
		if err != nil {
			if ctx.Err() != nil {
				return nil, err
			}
			r = &BenchmarkResult{
				Name:        b.Name,
				Description: b.Description,
				Paper:       b.Paper,
				Degraded:    true,
				FailReason:  err.Error(),
			}
		}
		out = append(out, r)
	}
	return out, nil
}

// AnyDegraded reports whether any collected row is degraded; callers use
// it to choose a nonzero exit code while still rendering what survived.
func AnyDegraded(results []*BenchmarkResult) bool {
	for _, r := range results {
		if r.Degraded {
			return true
		}
	}
	return false
}

// DegradedNote renders a one-line-per-benchmark account of the degraded
// rows, or "" when the sweep was clean.
func DegradedNote(results []*BenchmarkResult) string {
	var b strings.Builder
	for _, r := range results {
		if r.Degraded {
			fmt.Fprintf(&b, "DEGRADED %s: %s\n", r.Name, r.FailReason)
		}
	}
	return b.String()
}

// TimingsTable renders the per-benchmark, per-stage wall-clock durations
// recorded while collecting results, plus the session cache counters —
// the observability hook for the engine's compile-once and parallel
// stages (run paperbench -timings, or deadmem -verbose, to see it).
func TimingsTable(results []*BenchmarkResult, stats engine.Stats) string {
	var b strings.Builder
	b.WriteString("Per-stage wall-clock timings (one RTA analysis + lint per benchmark)\n")
	fmt.Fprintf(&b, "%-10s %12s %12s %12s %12s %12s %12s\n",
		"benchmark", "parse", "sema", "callgraph", "liveness", "lint", "total")
	b.WriteString(strings.Repeat("-", 89) + "\n")
	var sum engine.Timings
	lintFindings, lintRows := 0, 0
	for _, r := range results {
		t := r.Timings
		sum.Add(t)
		graph := t.CallGraph.String()
		if t.CallGraphCached {
			graph = "cached"
		}
		fmt.Fprintf(&b, "%-10s %12v %12v %12s %12v %12v %12v\n",
			r.Name, t.Parse, t.Sema, graph, t.Liveness, t.Lint, t.Total())
		if !r.Degraded {
			lintFindings += r.LintFindings
			lintRows++
		}
	}
	fmt.Fprintf(&b, "%-10s %12v %12v %12v %12v %12v %12v\n",
		"total", sum.Parse, sum.Sema, sum.CallGraph, sum.Liveness, sum.Lint, sum.Total())
	fmt.Fprintf(&b, "\nlint: %d finding(s) across %d clean benchmark(s); degraded rows excluded\n",
		lintFindings, lintRows)
	fmt.Fprintf(&b, "session: %d frontend compile(s), %d cache hit(s)\n",
		stats.Compiles, stats.Hits)
	return b.String()
}

// PrecisionTable renders the precision/cost frontier the original paper
// never measured: per-benchmark lint findings and wall clock at each
// liveness tier — paper (flow-insensitive write-only members only),
// flow (length-one dead stores, the default), and heap (access-graph
// chained paths) — plus the extra findings each step up buys. Findings
// are cumulative (paper <= flow <= heap by construction), so the +flow
// and +heap columns are never negative. Degraded rows are excluded.
func PrecisionTable(results []*BenchmarkResult) string {
	var b strings.Builder
	b.WriteString("Precision/cost frontier: lint findings and wall clock per liveness tier\n")
	b.WriteString("(findings are cumulative: paper <= flow <= heap; + columns are the extra findings each tier adds)\n")
	fmt.Fprintf(&b, "%-10s %7s %12s %7s %12s %7s %12s %7s %7s\n",
		"benchmark", "paper", "lint", "flow", "lint", "heap", "lint", "+flow", "+heap")
	b.WriteString(strings.Repeat("-", 92) + "\n")
	var sumF [3]int
	var sumT [3]time.Duration
	for _, r := range results {
		if r.Degraded {
			fmt.Fprintf(&b, "%-10s [degraded; excluded]\n", r.Name)
			continue
		}
		f, t := r.TierFindings, r.TierLint
		fmt.Fprintf(&b, "%-10s %7d %12v %7d %12v %7d %12v %7d %7d\n",
			r.Name, f[0], t[0], f[1], t[1], f[2], t[2], f[1]-f[0], f[2]-f[1])
		for i := range f {
			sumF[i] += f[i]
			sumT[i] += t[i]
		}
	}
	fmt.Fprintf(&b, "%-10s %7d %12v %7d %12v %7d %12v %7d %7d\n",
		"total", sumF[0], sumT[0], sumF[1], sumT[1], sumF[2], sumT[2],
		sumF[1]-sumF[0], sumF[2]-sumF[1])
	return b.String()
}

// Table1 renders the benchmark characteristics table (paper Table 1),
// with the paper's values alongside ours.
func Table1(results []*BenchmarkResult) string {
	var b strings.Builder
	b.WriteString("Table 1: Benchmark programs (measured | paper)\n")
	b.WriteString("benchmark   description                                        LOC          classes(used)       members\n")
	b.WriteString(strings.Repeat("-", 110) + "\n")
	for _, r := range results {
		fmt.Fprintf(&b, "%-11s %-48s %6d|%6d  %4d(%4d)|%4d(%4d)  %5d|%5d%s\n",
			r.Name, truncate(r.Description, 48),
			r.LOC, r.Paper.LOC,
			r.Classes, r.UsedClasses, r.Paper.Classes, r.Paper.UsedClasses,
			r.Members, r.Paper.Members, degradedMark(r))
	}
	return b.String()
}

func degradedMark(r *BenchmarkResult) string {
	if r.Degraded {
		return "  [degraded]"
	}
	return ""
}

// Figure3 renders the static dead-member percentages as a bar chart
// (paper Figure 3).
func Figure3(results []*BenchmarkResult) string {
	var b strings.Builder
	b.WriteString("Figure 3: Percentage of dead data members in used classes\n")
	b.WriteString("(#### measured, caret marks the paper-calibrated target)\n\n")
	const scale = 2.0 // columns per percent
	for _, r := range results {
		bar := strings.Repeat("#", int(r.DeadPercent*scale+0.5))
		fmt.Fprintf(&b, "%-10s |%-60s %5.1f%%  (dead %d of %d)%s\n",
			r.Name, bar, r.DeadPercent, r.DeadMembers, r.Members, degradedMark(r))
		caret := int(r.Paper.DeadPercent*scale + 0.5)
		if caret > 0 {
			fmt.Fprintf(&b, "%-10s |%s^ %.1f%% target\n", "", strings.Repeat(" ", caret), r.Paper.DeadPercent)
		}
	}
	return b.String()
}

// Table2 renders the dynamic execution characteristics (paper Table 2).
func Table2(results []*BenchmarkResult) string {
	var b strings.Builder
	b.WriteString("Table 2: Execution characteristics, bytes (measured; paper values in parentheses)\n")
	fmt.Fprintf(&b, "%-10s %22s %22s %22s %26s\n",
		"benchmark", "object space", "dead member space", "high water mark", "HWM w/o dead members")
	b.WriteString(strings.Repeat("-", 108) + "\n")
	for _, r := range results {
		fmt.Fprintf(&b, "%-10s %10d (%9d) %10d (%9d) %10d (%9d) %12d (%9d)%s\n",
			r.Name,
			r.ObjectSpace, r.Paper.ObjectSpace,
			r.DeadSpace, r.Paper.DeadSpace,
			r.HighWater, r.Paper.HighWater,
			r.HighWaterWo, r.Paper.HighWaterWo,
			approxMark(r.Paper.Approx)+degradedMark(r))
	}
	return b.String()
}

func approxMark(approx bool) string {
	if approx {
		return " ~"
	}
	return ""
}

// Figure4 renders the dynamic percentages as paired bars (paper Figure 4):
// the light bar (=) is the percentage of object space occupied by dead
// members; the dark bar (#) is the high-water-mark reduction.
func Figure4(results []*BenchmarkResult) string {
	var b strings.Builder
	b.WriteString("Figure 4: Percentage of object space occupied by dead data members\n")
	b.WriteString("(==== dead share of all object bytes, #### reduction of the high water mark)\n\n")
	const scale = 4.0
	for _, r := range results {
		light := strings.Repeat("=", int(r.DynDeadPercent*scale+0.5))
		dark := strings.Repeat("#", int(r.HWMReduction*scale+0.5))
		fmt.Fprintf(&b, "%-10s |%-50s %5.2f%%\n", r.Name, light, r.DynDeadPercent)
		fmt.Fprintf(&b, "%-10s |%-50s %5.2f%%\n", "", dark, r.HWMReduction)
	}
	return b.String()
}

// Summary renders the paper's headline numbers next to ours.
type SummaryStats struct {
	AvgDeadPercent float64 // over the nine non-trivial benchmarks
	MaxDeadPercent float64
	AvgDynPercent  float64
	MaxDynPercent  float64
	AvgHWMPercent  float64
}

// Summarize computes the headline statistics the paper's abstract quotes.
func Summarize(results []*BenchmarkResult) SummaryStats {
	var s SummaryStats
	n := 0
	for _, r := range results {
		if r.Name == "richards" || r.Name == "deltablue" || r.Degraded {
			continue
		}
		n++
		s.AvgDeadPercent += r.DeadPercent
		s.AvgDynPercent += r.DynDeadPercent
		s.AvgHWMPercent += r.HWMReduction
		if r.DeadPercent > s.MaxDeadPercent {
			s.MaxDeadPercent = r.DeadPercent
		}
		if r.DynDeadPercent > s.MaxDynPercent {
			s.MaxDynPercent = r.DynDeadPercent
		}
	}
	if n > 0 {
		s.AvgDeadPercent /= float64(n)
		s.AvgDynPercent /= float64(n)
		s.AvgHWMPercent /= float64(n)
	}
	return s
}

// StaticDynamicCorrelation computes the Pearson correlation between the
// static dead-member percentage (Figure 3) and the dynamic dead-space
// percentage (Figure 4) over the non-trivial benchmarks. The paper's §4.3
// observes that there is "no strong correlation" between the two —
// classes with many dead members may be instantiated rarely.
func StaticDynamicCorrelation(results []*BenchmarkResult) float64 {
	var xs, ys []float64
	for _, r := range results {
		if r.Name == "richards" || r.Name == "deltablue" || r.Degraded {
			continue
		}
		xs = append(xs, r.DeadPercent)
		ys = append(ys, r.DynDeadPercent)
	}
	return pearson(xs, ys)
}

func pearson(xs, ys []float64) float64 {
	n := float64(len(xs))
	if n < 2 {
		return 0
	}
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= n
	my /= n
	var cov, vx, vy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// Summary renders Summarize against the paper's abstract.
func Summary(results []*BenchmarkResult) string {
	s := Summarize(results)
	var b strings.Builder
	b.WriteString("Headline numbers (nine non-trivial benchmarks)        measured   paper\n")
	b.WriteString(strings.Repeat("-", 72) + "\n")
	fmt.Fprintf(&b, "dead data members, average                             %6.1f%%   12.5%%\n", s.AvgDeadPercent)
	fmt.Fprintf(&b, "dead data members, maximum                             %6.1f%%   27.3%%\n", s.MaxDeadPercent)
	fmt.Fprintf(&b, "object space occupied by dead members, average         %6.1f%%    4.4%%\n", s.AvgDynPercent)
	fmt.Fprintf(&b, "object space occupied by dead members, maximum         %6.1f%%   11.6%%\n", s.MaxDynPercent)
	fmt.Fprintf(&b, "high water mark reduction, average                     %6.1f%%    4.9%%\n", s.AvgHWMPercent)
	fmt.Fprintf(&b, "\nstatic vs dynamic dead%% correlation: %+.2f — the paper's §4.3 notes\n",
		StaticDynamicCorrelation(results))
	b.WriteString("\"no strong correlation\": classes with dead members are often\n")
	b.WriteString("instantiated infrequently.\n")
	return b.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
