package bench

// deltablueSource is a hand-written MC++ port of the DeltaBlue incremental
// dataflow constraint solver — the paper's second-smallest benchmark
// (Table 1: 1,250 LOC, 10 classes of which 8 used, 23 data members, zero
// dead members). As in the paper, the analysis must find no dead members.
const deltablueSource = `
// deltablue.mcc — incremental dataflow constraint solver.

// Strengths: lower value binds stronger.
// 0 required, 1 strongPreferred, 2 preferred, 3 strongDefault,
// 4 normal, 5 weakDefault, 6 weakest.

int failures = 0;

class Constraint;
class Variable;
class Planner;

Planner* planner = nullptr;

class ConstraintList {
public:
	Constraint* items[160];
	int count;
	ConstraintList() : count(0) {}
	void add(Constraint* c) {
		if (count >= 160) { abort(); }
		items[count] = c;
		count = count + 1;
	}
	Constraint* removeFirst() {
		count = count - 1;
		Constraint* first = items[0];
		for (int i = 0; i < count; i++) { items[i] = items[i+1]; }
		return first;
	}
	void removeItem(Constraint* c) {
		int j = 0;
		for (int i = 0; i < count; i++) {
			if (items[i] != c) { items[j] = items[i]; j = j + 1; }
		}
		count = j;
	}
};

class VariableList {
public:
	Variable* items[160];
	int count;
	VariableList() : count(0) {}
	void add(Variable* v) {
		if (count >= 160) { abort(); }
		items[count] = v;
		count = count + 1;
	}
	Variable* removeFirst() {
		count = count - 1;
		Variable* first = items[0];
		for (int i = 0; i < count; i++) { items[i] = items[i+1]; }
		return first;
	}
};

class Variable {
public:
	int value;
	ConstraintList constraints;
	Constraint* determinedBy;
	int mark;
	int walkStrength;
	bool stay;
	char* name;

	Variable(char* n, int initial) {
		value = initial;
		determinedBy = nullptr;
		mark = 0;
		walkStrength = 6; // weakest
		stay = true;
		name = n;
	}
	void addConstraint(Constraint* c)    { constraints.add(c); }
	void removeConstraint(Constraint* c) { constraints.removeItem(c); }
};

void error(char* msg, Variable* v) {
	failures = failures + 1;
	print("deltablue error: ");
	print(msg);
	if (v != nullptr) { print(" at "); print(v->name); }
	println();
}

class Constraint {
public:
	int strength;
	Constraint(int s) { strength = s; }

	virtual bool isSatisfied() = 0;
	virtual bool isInput() { return false; }
	virtual void addToGraph() = 0;
	virtual void removeFromGraph() = 0;
	virtual void chooseMethod(int mark) = 0;
	virtual void markUnsatisfied() = 0;
	virtual void markInputs(int mark) = 0;
	virtual bool inputsKnown(int mark) = 0;
	virtual Variable* output() = 0;
	virtual void execute() = 0;
	virtual void recalculate() = 0;

	void addConstraint();
	void destroyConstraint();
	Constraint* satisfy(int mark);
};

class Plan {
public:
	ConstraintList list;
	Plan() {}
	void addConstraint(Constraint* c) { list.add(c); }
	void execute() {
		for (int i = 0; i < list.count; i++) { list.items[i]->execute(); }
	}
};

class Planner {
public:
	int currentMark;
	Planner() : currentMark(0) {}

	int newMark() {
		currentMark = currentMark + 1;
		return currentMark;
	}

	void incrementalAdd(Constraint* c) {
		int mark = newMark();
		Constraint* overridden = c->satisfy(mark);
		while (overridden != nullptr) {
			overridden = overridden->satisfy(newMark());
		}
	}

	void addConstraintsConsumingTo(Variable* v, ConstraintList* coll) {
		Constraint* determining = v->determinedBy;
		for (int i = 0; i < v->constraints.count; i++) {
			Constraint* c = v->constraints.items[i];
			if (c != determining && c->isSatisfied()) { coll->add(c); }
		}
	}

	bool addPropagate(Constraint* c, int mark) {
		ConstraintList todo;
		todo.add(c);
		while (todo.count > 0) {
			Constraint* d = todo.removeFirst();
			if (d->output()->mark == mark) {
				incrementalRemove(c);
				return false;
			}
			d->recalculate();
			addConstraintsConsumingTo(d->output(), &todo);
		}
		return true;
	}

	void incrementalRemove(Constraint* c) {
		Variable* out = c->output();
		c->markUnsatisfied();
		c->removeFromGraph();
		ConstraintList unsatisfied;
		removePropagateFrom(out, &unsatisfied);
		for (int strength = 0; strength <= 6; strength++) {
			for (int i = 0; i < unsatisfied.count; i++) {
				Constraint* u = unsatisfied.items[i];
				if (u->strength == strength) { incrementalAdd(u); }
			}
		}
	}

	void removePropagateFrom(Variable* out, ConstraintList* unsatisfied) {
		out->determinedBy = nullptr;
		out->walkStrength = 6;
		out->stay = true;
		VariableList todo;
		todo.add(out);
		while (todo.count > 0) {
			Variable* v = todo.removeFirst();
			for (int i = 0; i < v->constraints.count; i++) {
				Constraint* c = v->constraints.items[i];
				if (!c->isSatisfied()) { unsatisfied->add(c); }
			}
			Constraint* determining = v->determinedBy;
			for (int i = 0; i < v->constraints.count; i++) {
				Constraint* c = v->constraints.items[i];
				if (c != determining && c->isSatisfied()) {
					c->recalculate();
					todo.add(c->output());
				}
			}
		}
	}

	Plan* makePlan(ConstraintList* sources) {
		int mark = newMark();
		Plan* plan = new Plan();
		while (sources->count > 0) {
			Constraint* c = sources->removeFirst();
			if (c->output()->mark != mark && c->inputsKnown(mark)) {
				plan->addConstraint(c);
				c->output()->mark = mark;
				addConstraintsConsumingTo(c->output(), sources);
			}
		}
		return plan;
	}

	Plan* extractPlanFromConstraint(Constraint* c) {
		ConstraintList sources;
		if (c->isInput() && c->isSatisfied()) { sources.add(c); }
		return makePlan(&sources);
	}
};

Constraint* Constraint::satisfy(int mark) {
	chooseMethod(mark);
	if (!isSatisfied()) {
		if (strength == 0) { error("could not satisfy a required constraint", nullptr); }
		return nullptr;
	}
	markInputs(mark);
	Variable* out = output();
	Constraint* overridden = out->determinedBy;
	if (overridden != nullptr) { overridden->markUnsatisfied(); }
	out->determinedBy = this;
	if (!planner->addPropagate(this, mark)) {
		error("cycle encountered", out);
		return nullptr;
	}
	out->mark = mark;
	return overridden;
}

void Constraint::addConstraint() {
	addToGraph();
	planner->incrementalAdd(this);
}

void Constraint::destroyConstraint() {
	if (isSatisfied()) {
		planner->incrementalRemove(this);
	} else {
		removeFromGraph();
	}
}

class UnaryConstraint : public Constraint {
public:
	Variable* myOutput;
	bool satisfied;

	UnaryConstraint(Variable* v, int s) : Constraint(s) {
		myOutput = v;
		satisfied = false;
	}
	virtual bool isSatisfied() { return satisfied; }
	virtual void addToGraph() {
		myOutput->addConstraint(this);
		satisfied = false;
	}
	virtual void removeFromGraph() {
		if (myOutput != nullptr) { myOutput->removeConstraint(this); }
		satisfied = false;
	}
	virtual void chooseMethod(int mark) {
		satisfied = myOutput->mark != mark && strength < myOutput->walkStrength;
	}
	virtual void markUnsatisfied() { satisfied = false; }
	virtual void markInputs(int mark) {}
	virtual bool inputsKnown(int mark) { return true; }
	virtual Variable* output() { return myOutput; }
	virtual void execute() {}
	virtual void recalculate() {
		myOutput->walkStrength = strength;
		myOutput->stay = !isInput();
		if (myOutput->stay) { execute(); }
	}
};

class StayConstraint : public UnaryConstraint {
public:
	StayConstraint(Variable* v, int s) : UnaryConstraint(v, s) {}
};

class EditConstraint : public UnaryConstraint {
public:
	EditConstraint(Variable* v, int s) : UnaryConstraint(v, s) {}
	virtual bool isInput() { return true; }
};

class BinaryConstraint : public Constraint {
public:
	Variable* v1;
	Variable* v2;
	int direction; // 0 none, 1 forward (v1->v2), 2 backward (v2->v1)

	BinaryConstraint(Variable* a, Variable* b, int s) : Constraint(s) {
		v1 = a;
		v2 = b;
		direction = 0;
	}
	virtual bool isSatisfied() { return direction != 0; }
	virtual void addToGraph() {
		v1->addConstraint(this);
		v2->addConstraint(this);
		direction = 0;
	}
	virtual void removeFromGraph() {
		if (v1 != nullptr) { v1->removeConstraint(this); }
		if (v2 != nullptr) { v2->removeConstraint(this); }
		direction = 0;
	}
	virtual void chooseMethod(int mark) {
		if (v1->mark == mark) {
			direction = (v2->mark != mark && strength < v2->walkStrength) ? 1 : 0;
			return;
		}
		if (v2->mark == mark) {
			direction = (v1->mark != mark && strength < v1->walkStrength) ? 2 : 0;
			return;
		}
		// Neither marked: the output is the variable with the weaker
		// (numerically larger) walkabout strength.
		if (v1->walkStrength > v2->walkStrength) {
			direction = (strength < v1->walkStrength) ? 2 : 0;
		} else {
			direction = (strength < v2->walkStrength) ? 1 : 0;
		}
	}
	virtual void markUnsatisfied() { direction = 0; }
	virtual void markInputs(int mark) { input()->mark = mark; }
	virtual bool inputsKnown(int mark) {
		Variable* i = input();
		return i->mark == mark || i->stay || i->determinedBy == nullptr;
	}
	virtual Variable* output() { return direction == 1 ? v2 : v1; }
	Variable* input() { return direction == 1 ? v1 : v2; }
	virtual void execute() {
		if (direction == 1) { v2->value = v1->value; } else { v1->value = v2->value; }
	}
	virtual void recalculate() {
		Variable* in = input();
		Variable* out = output();
		out->walkStrength = strength > in->walkStrength ? strength : in->walkStrength;
		out->stay = in->stay;
		if (out->stay) { execute(); }
	}
};

class EqualityConstraint : public BinaryConstraint {
public:
	EqualityConstraint(Variable* a, Variable* b, int s) : BinaryConstraint(a, b, s) {}
};

class ScaleConstraint : public BinaryConstraint {
public:
	Variable* scale;
	Variable* offset;

	ScaleConstraint(Variable* src, Variable* sc, Variable* off, Variable* dest, int s)
			: BinaryConstraint(src, dest, s) {
		scale = sc;
		offset = off;
	}
	virtual void addToGraph() {
		v1->addConstraint(this);
		v2->addConstraint(this);
		scale->addConstraint(this);
		offset->addConstraint(this);
		direction = 0;
	}
	virtual void removeFromGraph() {
		if (v1 != nullptr) { v1->removeConstraint(this); }
		if (v2 != nullptr) { v2->removeConstraint(this); }
		if (scale != nullptr) { scale->removeConstraint(this); }
		if (offset != nullptr) { offset->removeConstraint(this); }
		direction = 0;
	}
	virtual void markInputs(int mark) {
		input()->mark = mark;
		scale->mark = mark;
		offset->mark = mark;
	}
	virtual void execute() {
		if (direction == 1) {
			v2->value = v1->value * scale->value + offset->value;
		} else {
			v1->value = (v2->value - offset->value) / scale->value;
		}
	}
	virtual void recalculate() {
		Variable* in = input();
		Variable* out = output();
		out->walkStrength = strength > in->walkStrength ? strength : in->walkStrength;
		out->stay = in->stay && scale->stay && offset->stay;
		if (out->stay) { execute(); }
	}
};

// change repeatedly sets v to newValue through an edit constraint.
void change(Variable* v, int newValue) {
	EditConstraint* edit = new EditConstraint(v, 2);
	edit->addConstraint();
	Plan* plan = planner->extractPlanFromConstraint(edit);
	for (int i = 0; i < 10; i++) {
		v->value = newValue;
		plan->execute();
	}
	edit->destroyConstraint();
	delete plan;
	delete edit;
}

// chainTest builds a chain of n equality constraints and repeatedly edits
// the head, verifying propagation to the tail.
void chainTest(int n) {
	planner = new Planner();
	Variable* prev = nullptr;
	Variable* first = nullptr;
	Variable* last = nullptr;
	for (int i = 0; i <= n; i++) {
		Variable* v = new Variable("chain", 0);
		if (prev != nullptr) {
			EqualityConstraint* eq = new EqualityConstraint(prev, v, 0);
			eq->addConstraint();
		}
		if (i == 0) { first = v; }
		if (i == n) { last = v; }
		prev = v;
	}
	StayConstraint* stay = new StayConstraint(last, 3);
	stay->addConstraint();
	EditConstraint* edit = new EditConstraint(first, 2);
	edit->addConstraint();
	Plan* plan = planner->extractPlanFromConstraint(edit);
	for (int i = 0; i < 100; i++) {
		first->value = i;
		plan->execute();
		if (last->value != i) { error("chain test failed", last); }
	}
	edit->destroyConstraint();
	delete plan;
	delete edit;
	delete planner;
	planner = nullptr;
}

// projectionTest maps src variables through scale/offset constraints and
// checks that edits project correctly.
void projectionTest(int n) {
	planner = new Planner();
	Variable* scale = new Variable("scale", 10);
	Variable* offset = new Variable("offset", 1000);
	Variable* src = nullptr;
	Variable* dst = nullptr;
	VariableList dests;
	for (int i = 0; i < n; i++) {
		src = new Variable("src", i);
		dst = new Variable("dst", i);
		dests.add(dst);
		StayConstraint* stay = new StayConstraint(src, 4);
		stay->addConstraint();
		ScaleConstraint* sc = new ScaleConstraint(src, scale, offset, dst, 0);
		sc->addConstraint();
	}
	change(src, 17);
	if (dst->value != 1170) { error("projection 1 failed", dst); }
	change(scale, 5);
	for (int i = 0; i < n - 1; i++) {
		if (dests.items[i]->value != i * 5 + 1000) { error("projection 2 failed", dests.items[i]); }
	}
	change(offset, 2000);
	for (int i = 0; i < n - 1; i++) {
		if (dests.items[i]->value != i * 5 + 2000) { error("projection 3 failed", dests.items[i]); }
	}
	delete planner;
	planner = nullptr;
}

int main() {
	chainTest(50);
	projectionTest(50);
	print("deltablue failures=");
	print(failures);
	println();
	return failures == 0 ? 0 : 1;
}
`
