package bench

// Spec calibrates one synthesized benchmark to the shape of a paper
// benchmark: class/member counts from Table 1, the static dead-member
// percentage from Figure 3, and the dynamic behaviour (allocation volume,
// retention pattern, dead-space percentage) from Table 2 / Figure 4.
//
// The generator places dead members into designated "dead-heavy" classes
// and solves the allocation mix so that the fraction of object bytes
// occupied by dead members approaches DynDeadPercent; RetainMod controls
// the high-water-mark shape (1 = arena: nothing freed before the end, so
// HWM equals total object space, as the paper observed for sched).
type Spec struct {
	Name        string
	Description string

	// Static shape (paper Table 1 / Figure 3).
	PaperLOC    int     // paper's lines-of-code count (reference only)
	Classes     int     // total classes, including never-instantiated ones
	UsedClasses int     // classes the driver instantiates (plus the Node base)
	Members     int     // total data members across used classes (approx.)
	DeadPercent float64 // target % of members in used classes that are dead

	// Dynamic shape (paper Table 2 / Figure 4).
	Allocations    int     // hot-loop allocations performed by the driver
	DynDeadPercent float64 // target % of object bytes occupied by dead members
	RetainMod      int     // retain every RetainMod-th hot object (1 = all)

	// Flavour.
	DeadHeavyClasses int  // used classes that concentrate the dead members
	DeleteFlavor     bool // include malloc-in-ctor/free-in-dtor dead pointers

	// GhostFraction is the fraction of dead-heavy cold classes whose
	// single allocation sits in a dynamically-never-taken branch: they
	// count as used classes (a constructor call occurs in the program)
	// but contribute no object bytes — the paper's explanation for
	// benchmarks whose many dead members occupy little run-time space
	// ("classes with dead data members are instantiated infrequently").
	GhostFraction float64

	// StructFraction is the fraction of cold used classes emitted as
	// plain structs outside the Node hierarchy (no base, no virtuals),
	// instantiated as stack values. Models the paper's description of
	// sched: "not written in a very object-oriented style ... most of
	// the classes are structs".
	StructFraction float64

	// ComputeRounds, when positive, adds an integer kernel to the
	// driver: every hot-loop iteration runs this many rounds of scalar
	// arithmetic over locals. It scales a benchmark's dynamic size
	// (executed statements) without changing its heap shape — the large
	// corpus uses it to synthesize programs 10–50× bigger than the
	// paper-calibrated ones, the scale the tree-walker cannot touch.
	ComputeRounds int

	Seed uint64 // deterministic generation seed
}

// specs calibrates the nine synthesized benchmarks. richards and deltablue
// are hand-written (zero dead members) and not generated.
//
// DeadPercent values are chosen so the nine non-trivial benchmarks average
// 12.5% with a 27.3% maximum and 3.0% minimum, as the paper reports; the
// library-style benchmarks (taldict, simulate, hotwire) take the highest
// values, matching the paper's observation that unused library
// functionality produces the most dead members.
var specs = []Spec{
	{
		Name:        "jikes",
		Description: "Java source-to-bytecode compiler",
		PaperLOC:    58296, Classes: 268, UsedClasses: 190, Members: 1052, DeadPercent: 11.9,
		Allocations: 20000, DynDeadPercent: 6.0, RetainMod: 3,
		DeadHeavyClasses: 22, DeleteFlavor: true, Seed: 0x6a696b6573,
	},
	{
		Name:        "idl",
		Description: "SOM IDL compiler (heavy virtual inheritance)",
		PaperLOC:    30408, Classes: 150, UsedClasses: 105, Members: 600, DeadPercent: 6.1,
		Allocations: 8000, DynDeadPercent: 2.2, RetainMod: 1,
		DeadHeavyClasses: 9, DeleteFlavor: false, Seed: 0x69646c,
	},
	{
		Name:        "npic",
		Description: "network protocol stack simulator",
		PaperLOC:    11670, Classes: 60, UsedClasses: 48, Members: 220, DeadPercent: 5.0,
		Allocations: 5000, DynDeadPercent: 4.9, RetainMod: 5,
		DeadHeavyClasses: 4, DeleteFlavor: false, Seed: 0x6e706963,
	},
	{
		Name:        "lcom",
		Description: "compiler for the L hardware description language",
		PaperLOC:    17278, Classes: 72, UsedClasses: 58, Members: 300, DeadPercent: 9.8,
		Allocations: 15000, DynDeadPercent: 10.6, RetainMod: 2,
		DeadHeavyClasses: 8, DeleteFlavor: true, Seed: 0x6c636f6d,
	},
	{
		Name:        "taldict",
		Description: "dictionary application on a general collection library",
		PaperLOC:    3010, Classes: 55, UsedClasses: 27, Members: 190, DeadPercent: 27.3,
		Allocations: 120, DynDeadPercent: 0.5, RetainMod: 1,
		DeadHeavyClasses: 14, DeleteFlavor: false, GhostFraction: 0.9, Seed: 0x74616c,
	},
	{
		Name:        "ixx",
		Description: "IDL parser generating C++ stubs",
		PaperLOC:    11157, Classes: 90, UsedClasses: 63, Members: 420, DeadPercent: 7.7,
		Allocations: 9000, DynDeadPercent: 5.4, RetainMod: 2,
		DeadHeavyClasses: 8, DeleteFlavor: false, Seed: 0x697878,
	},
	{
		Name:        "simulate",
		Description: "discrete-event simulation on an exploration library",
		PaperLOC:    6672, Classes: 45, UsedClasses: 24, Members: 170, DeadPercent: 23.1,
		Allocations: 3000, DynDeadPercent: 0.1, RetainMod: 6,
		DeadHeavyClasses: 10, DeleteFlavor: false, Seed: 0x73696d,
	},
	{
		Name:        "sched",
		Description: "RS/6000 instruction scheduler (struct-heavy, little inheritance)",
		PaperLOC:    5712, Classes: 24, UsedClasses: 20, Members: 80, DeadPercent: 3.0,
		Allocations: 30000, DynDeadPercent: 11.6, RetainMod: 1,
		DeadHeavyClasses: 1, DeleteFlavor: false, StructFraction: 0.8, Seed: 0x736368,
	},
	{
		Name:        "hotwire",
		Description: "scriptable graphical presentation builder",
		PaperLOC:    5355, Classes: 37, UsedClasses: 21, Members: 166, DeadPercent: 18.6,
		Allocations: 200, DynDeadPercent: 2.6, RetainMod: 1,
		DeadHeavyClasses: 8, DeleteFlavor: false, GhostFraction: 0.72, Seed: 0x686f74,
	},
}
