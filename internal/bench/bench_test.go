package bench

import (
	"math"
	"sort"
	"sync"
	"testing"

	"deadmembers/internal/callgraph"
	"deadmembers/internal/deadmember"
	"deadmembers/internal/dynprof"
	"deadmembers/internal/engine"
)

// corpusRun caches one analysis+profile per benchmark across tests.
type corpusRun struct {
	bench   *Benchmark
	res     *deadmember.Result
	profile *dynprof.Profile
	loc     int
}

var (
	corpusOnce sync.Once
	corpusRuns []*corpusRun
	corpusErr  error
)

func corpus(t *testing.T) []*corpusRun {
	t.Helper()
	corpusOnce.Do(func() {
		session := engine.NewSession(engine.Config{})
		for _, b := range All() {
			c, err := b.Compile(session)
			if err != nil {
				corpusErr = err
				return
			}
			res := c.Analyze(deadmember.Options{CallGraph: callgraph.RTA})
			prof, err := dynprof.Run(res, dynprof.Options{})
			if err != nil {
				corpusErr = err
				return
			}
			corpusRuns = append(corpusRuns, &corpusRun{
				bench: b, res: res, profile: prof, loc: c.FileSet.TotalCodeLines(),
			})
		}
	})
	if corpusErr != nil {
		t.Fatalf("corpus setup failed: %v", corpusErr)
	}
	return corpusRuns
}

func specFor(name string) (Spec, bool) {
	for _, s := range specs {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

func TestCorpusHasElevenBenchmarks(t *testing.T) {
	names := Names()
	if len(names) != 11 {
		t.Fatalf("corpus has %d benchmarks, want 11 (paper Table 1)", len(names))
	}
	want := []string{"jikes", "idl", "npic", "lcom", "taldict", "ixx", "simulate", "sched", "hotwire", "deltablue", "richards"}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("benchmark %d = %s, want %s", i, names[i], n)
		}
	}
}

func TestByName(t *testing.T) {
	b, err := ByName("richards")
	if err != nil || b.Name != "richards" {
		t.Fatalf("ByName(richards) = %v, %v", b, err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName(nosuch) should fail")
	}
}

func TestGenerationIsDeterministic(t *testing.T) {
	for _, s := range specs {
		a, _ := Generate(s)
		b, _ := Generate(s)
		if a != b {
			t.Fatalf("%s: generation is not deterministic", s.Name)
		}
	}
}

func TestCorpusExecutesCleanly(t *testing.T) {
	for _, cr := range corpus(t) {
		if cr.profile.Exec.ExitCode != 0 {
			t.Errorf("%s: exit code %d, want 0 (output %q)",
				cr.bench.Name, cr.profile.Exec.ExitCode, cr.profile.Exec.Output)
		}
		// Generated drivers free everything; the hand-written classics
		// leak like their originals (the paper notes benchmarks that
		// never deallocate, giving HWM == total object space).
		if _, generated := specFor(cr.bench.Name); generated && cr.profile.Ledger.LiveBytes != 0 {
			t.Errorf("%s: %d object bytes leaked (not destroyed by end of run)",
				cr.bench.Name, cr.profile.Ledger.LiveBytes)
		}
	}
}

// TestGroundTruth cross-checks the analysis against the generator's
// planted dead set: the analysis must find exactly the members the
// generator made dead — no more (soundness of our liveness marking on
// this corpus) and no less (precision).
func TestGroundTruth(t *testing.T) {
	for _, cr := range corpus(t) {
		got := map[string]bool{}
		for _, f := range cr.res.DeadMembers() {
			got[f.QualifiedName()] = true
		}
		want := cr.bench.GroundTruth
		if want == nil {
			if len(got) != 0 {
				t.Errorf("%s: hand-written benchmark should have zero dead members, got %v",
					cr.bench.Name, keysOf(got))
			}
			continue
		}
		for qn := range want {
			if !got[qn] {
				t.Errorf("%s: generator planted dead member %s but analysis marked it live", cr.bench.Name, qn)
			}
		}
		for qn := range got {
			if !want[qn] {
				t.Errorf("%s: analysis reports %s dead but the generator did not plant it", cr.bench.Name, qn)
			}
		}
	}
}

func keysOf(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TestStaticCalibration checks Figure 3's shape: each benchmark's dead
// percentage lands on its calibration target.
func TestStaticCalibration(t *testing.T) {
	for _, cr := range corpus(t) {
		spec, generated := specFor(cr.bench.Name)
		target := cr.bench.Paper.DeadPercent
		_ = spec
		got := cr.res.Stats().DeadPercent()
		tol := 1.0
		if !generated {
			tol = 0.001 // hand-written: exactly zero
		}
		if math.Abs(got-target) > tol {
			t.Errorf("%s: static dead%% = %.2f, want %.2f ± %.1f", cr.bench.Name, got, target, tol)
		}
	}
}

// TestStaticAverages checks the paper's headline static numbers: the nine
// non-trivial benchmarks average 12.5% dead members with maximum 27.3%.
func TestStaticAverages(t *testing.T) {
	var sum, maxPct float64
	n := 0
	for _, cr := range corpus(t) {
		if cr.bench.Name == "richards" || cr.bench.Name == "deltablue" {
			continue
		}
		p := cr.res.Stats().DeadPercent()
		sum += p
		if p > maxPct {
			maxPct = p
		}
		n++
	}
	avg := sum / float64(n)
	if math.Abs(avg-12.5) > 1.0 {
		t.Errorf("average dead%% over nine non-trivial benchmarks = %.2f, paper reports 12.5", avg)
	}
	if math.Abs(maxPct-27.3) > 1.0 {
		t.Errorf("max dead%% = %.2f, paper reports 27.3 (taldict)", maxPct)
	}
}

// TestDynamicCalibration checks Figure 4's shape: per-benchmark dead
// object-space percentages land on their targets.
func TestDynamicCalibration(t *testing.T) {
	for _, cr := range corpus(t) {
		spec, generated := specFor(cr.bench.Name)
		if !generated {
			if cr.profile.Ledger.DeadBytes != 0 {
				t.Errorf("%s: dead bytes = %d, want 0", cr.bench.Name, cr.profile.Ledger.DeadBytes)
			}
			continue
		}
		got := cr.profile.Ledger.DeadPercent()
		tol := math.Max(0.6, 0.15*spec.DynDeadPercent)
		if math.Abs(got-spec.DynDeadPercent) > tol {
			t.Errorf("%s: dynamic dead%% = %.2f, want %.2f ± %.2f",
				cr.bench.Name, got, spec.DynDeadPercent, tol)
		}
	}
}

// TestDynamicMaximum checks the paper's headline dynamic number: up to
// 11.6% of object space (sched) is occupied by dead members.
func TestDynamicMaximum(t *testing.T) {
	var maxPct float64
	var maxName string
	for _, cr := range corpus(t) {
		if p := cr.profile.Ledger.DeadPercent(); p > maxPct {
			maxPct = p
			maxName = cr.bench.Name
		}
	}
	if maxName != "sched" {
		t.Errorf("max dynamic dead%% is %s (%.2f), paper's max is sched", maxName, maxPct)
	}
	if math.Abs(maxPct-11.6) > 0.5 {
		t.Errorf("max dynamic dead%% = %.2f, paper reports 11.6", maxPct)
	}
}

// TestArenaHighWaterMark checks the paper's observation that arena-style
// benchmarks (heap-allocate and never free until the end) have a high
// water mark equal to total object space.
func TestArenaHighWaterMark(t *testing.T) {
	for _, cr := range corpus(t) {
		spec, generated := specFor(cr.bench.Name)
		if !generated {
			continue
		}
		l := cr.profile.Ledger
		if spec.RetainMod == 1 {
			if l.HighWater != l.TotalBytes {
				t.Errorf("%s (arena): HWM %d != total %d", cr.bench.Name, l.HighWater, l.TotalBytes)
			}
		} else {
			if l.HighWater >= l.TotalBytes {
				t.Errorf("%s (churn, retain 1/%d): HWM %d should be below total %d",
					cr.bench.Name, spec.RetainMod, l.HighWater, l.TotalBytes)
			}
		}
		if l.AdjustedHighWater > l.HighWater {
			t.Errorf("%s: adjusted HWM %d exceeds HWM %d", cr.bench.Name, l.AdjustedHighWater, l.HighWater)
		}
	}
}

// TestLibraryStyleBenchmarksLeadStatic checks the paper's observation that
// the benchmarks built on general class libraries (taldict, simulate,
// hotwire) have the highest static dead percentages.
func TestLibraryStyleBenchmarksLeadStatic(t *testing.T) {
	pct := map[string]float64{}
	for _, cr := range corpus(t) {
		pct[cr.bench.Name] = cr.res.Stats().DeadPercent()
	}
	libUsers := []string{"taldict", "simulate", "hotwire"}
	for _, lib := range libUsers {
		for name, p := range pct {
			if name == "taldict" || name == "simulate" || name == "hotwire" {
				continue
			}
			if pct[lib] <= p {
				t.Errorf("library-user %s (%.1f%%) should exceed %s (%.1f%%)", lib, pct[lib], name, p)
			}
		}
	}
}

// TestTableOneShape checks that the corpus matches the class/member
// counts it was calibrated to.
func TestTableOneShape(t *testing.T) {
	for _, cr := range corpus(t) {
		spec, generated := specFor(cr.bench.Name)
		if !generated {
			continue
		}
		s := cr.res.Stats()
		if s.Classes != spec.Classes {
			t.Errorf("%s: %d classes, want %d", cr.bench.Name, s.Classes, spec.Classes)
		}
		// The Node base is used in addition to the spec's used classes.
		if s.UsedClasses != spec.UsedClasses+1 {
			t.Errorf("%s: %d used classes, want %d", cr.bench.Name, s.UsedClasses, spec.UsedClasses+1)
		}
		if math.Abs(float64(s.Members-spec.Members)) > 6 {
			t.Errorf("%s: %d members, want ≈%d", cr.bench.Name, s.Members, spec.Members)
		}
		if cr.loc == 0 {
			t.Errorf("%s: zero generated LOC", cr.bench.Name)
		}
	}
}

// TestLedgerMatchesLayout cross-checks the two byte-accounting paths: the
// ledger's per-class totals must equal allocation count times the
// hierarchy layout size, and per-class dead bytes must equal count times
// the layout's dead-byte computation.
func TestLedgerMatchesLayout(t *testing.T) {
	for _, cr := range corpus(t) {
		h := cr.res.Hierarchy
		for _, st := range cr.profile.Ledger.ByClass() {
			lay := h.LayoutOf(st.Class)
			if st.Bytes != st.Count*int64(lay.Size) {
				t.Errorf("%s/%s: ledger bytes %d != %d objects × %d layout size",
					cr.bench.Name, st.Class.Name, st.Bytes, st.Count, lay.Size)
			}
			wantDead := st.Count * int64(lay.DeadBytes(cr.res.IsDead))
			if st.Dead != wantDead {
				t.Errorf("%s/%s: ledger dead bytes %d != %d expected from layout",
					cr.bench.Name, st.Class.Name, st.Dead, wantDead)
			}
		}
	}
}

// TestRichardsResult pins the classic Richards benchmark outcome.
func TestRichardsResult(t *testing.T) {
	for _, cr := range corpus(t) {
		if cr.bench.Name != "richards" {
			continue
		}
		if cr.profile.Exec.Output != "queue=2322 hold=928\n" {
			t.Errorf("richards output = %q, want the classic queue=2322 hold=928", cr.profile.Exec.Output)
		}
	}
}

// TestDeltablueResult pins the DeltaBlue solver outcome.
func TestDeltablueResult(t *testing.T) {
	for _, cr := range corpus(t) {
		if cr.bench.Name != "deltablue" {
			continue
		}
		if cr.profile.Exec.Output != "deltablue failures=0\n" {
			t.Errorf("deltablue output = %q, want zero failures", cr.profile.Exec.Output)
		}
	}
}
