package bench

import "deadmembers/internal/frontend"

// The large corpus: synthesized programs whose dynamic size (executed
// statements) is 10–50× the paper-calibrated corpus. The paper's Table 2
// reproduction does not need them; they exist to exercise execution-engine
// throughput at a scale the tree-walking interpreter cannot reach in
// reasonable wall-clock time, which is what the bytecode VM is for.
// Heap shapes stay modest — the scale knob is Spec.ComputeRounds, which
// multiplies per-iteration scalar work without touching the ledger — so
// both engines can run every large benchmark to completion and be
// compared for byte-identity as well as steps/sec.
//
// They are deliberately not part of All(): Table 1/2 reproduction,
// ground-truth sweeps, and the differential corpus tests iterate the
// paper corpus; the large corpus is reached through Large() by the
// benchmarking targets (paperbench -engines, make bench-vm).
var largeSpecs = []Spec{
	{
		Name:        "sched-xl",
		Description: "sched scaled ~30×: struct-heavy allocation plus a scalar compute kernel",
		PaperLOC:    5712, Classes: 24, UsedClasses: 20, Members: 80, DeadPercent: 3.0,
		Allocations: 60000, DynDeadPercent: 11.6, RetainMod: 1,
		DeadHeavyClasses: 1, StructFraction: 0.8, ComputeRounds: 40, Seed: 0x736368,
	},
	{
		Name:        "lcom-xl",
		Description: "lcom scaled ~25×: churn-heavy allocation with delete flavour and compute",
		PaperLOC:    17278, Classes: 72, UsedClasses: 58, Members: 300, DeadPercent: 9.8,
		Allocations: 50000, DynDeadPercent: 10.6, RetainMod: 50,
		DeadHeavyClasses: 8, DeleteFlavor: true, ComputeRounds: 35, Seed: 0x6c636f6d,
	},
	{
		Name:        "jikes-xl",
		Description: "jikes scaled ~20×: wide class hierarchy under a compute-dominated driver",
		PaperLOC:    58296, Classes: 268, UsedClasses: 190, Members: 1052, DeadPercent: 11.9,
		Allocations: 40000, DynDeadPercent: 6.0, RetainMod: 40,
		DeadHeavyClasses: 22, DeleteFlavor: true, ComputeRounds: 35, Seed: 0x6a696b6573,
	},
}

// Large returns the large-corpus benchmarks. Generation is deterministic,
// like All(). The entries carry no PaperRow: they correspond to no paper
// benchmark and are excluded from paper-vs-measured comparison.
func Large() []*Benchmark {
	var out []*Benchmark
	for _, spec := range largeSpecs {
		src, ground := Generate(spec)
		out = append(out, &Benchmark{
			Name:        spec.Name,
			Description: spec.Description,
			Sources:     []frontend.Source{{Name: spec.Name + ".mcc", Text: src}},
			GroundTruth: ground,
		})
	}
	return out
}
