package bench

import (
	"fmt"
	"strings"
)

// The corpus generator synthesizes an MC++ application from a Spec. The
// emitted program has a known ground truth: the generator decides exactly
// which members are dead (write-only, read-only-from-unreachable-code, or
// passed-only-to-free) and which are live, so tests can cross-check the
// analysis against the generator's intent.
//
// Program shape:
//
//   - class Node: polymorphic base with a live `tag` member, a pure
//     virtual use(), and a virtual destructor;
//   - "hot" classes (a dead-heavy group and a clean group) allocated in
//     bulk by the driver's loop, with the group mix solved so that dead
//     bytes approach Spec.DynDeadPercent of total object bytes;
//   - "cold" used classes allocated exactly once;
//   - unused classes that are never instantiated (library surplus);
//   - a driver that retains every RetainMod-th object in an arena
//     (RetainMod == 1 retains everything: high water mark == total space).

// rng is a deterministic xorshift64 generator.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// genClass is the generator's model of one emitted class.
type genClass struct {
	name      string
	liveInts  int
	deadWrite int  // write-only dead ints
	deadAux   int  // dead ints read only by a never-called method
	hasBuf    bool // dead void* passed only to free() in the dtor
	hot       bool
	deadHeavy bool
	used      bool
	ghost     bool // single allocation guarded by a never-taken branch
	plain     bool // emitted as a standalone struct (no Node base, no vptr)
}

func (c *genClass) members() int {
	n := c.liveInts + c.deadWrite + c.deadAux
	if c.hasBuf {
		n++
	}
	return n
}

func (c *genClass) deadMembers() int {
	n := c.deadWrite + c.deadAux
	if c.hasBuf {
		n++
	}
	return n
}

// size computes the complete-object size under the layout model. Node
// subclasses: Node's non-virtual region is 16 bytes (8-byte vptr + 4-byte
// tag + padding), the derived ints follow, and an optional trailing
// pointer is 8-aligned. Plain structs: just the ints at 4-byte alignment.
func (c *genClass) size() int {
	ints := c.liveInts + c.deadWrite + c.deadAux
	if c.plain {
		off := 4 * ints
		if c.hasBuf {
			off = alignUp8(off) + 8
			return alignUp8(off)
		}
		if off < 1 {
			off = 1
		}
		return off
	}
	off := 16 + 4*ints
	if c.hasBuf {
		off = alignUp8(off) + 8
	}
	return alignUp8(off)
}

func (c *genClass) deadBytes() int {
	n := 4 * (c.deadWrite + c.deadAux)
	if c.hasBuf {
		n += 8
	}
	return n
}

func alignUp8(n int) int { return (n + 7) / 8 * 8 }

// Generate synthesizes the MC++ source for spec. The second return value
// is the generator's ground truth: the exact set of dead members (by
// qualified name) it planted.
func Generate(spec Spec) (string, map[string]bool) {
	r := &rng{s: spec.Seed*2654435761 + 1}

	// ---- plan the classes -------------------------------------------------
	u := spec.UsedClasses
	if u < 8 {
		u = 8
	}
	hd := spec.DeadHeavyClasses
	if hd < 1 {
		hd = 1
	}
	if hd > 3 {
		hd = 3 // hot dead-heavy classes; further dead-heavy classes are cold
	}
	hc := 3 // hot clean classes
	if u < hd+hc+2 {
		hc = 1
	}
	cold := u - hd - hc

	var classes []*genClass
	for i := 0; i < hd; i++ {
		classes = append(classes, &genClass{
			name: fmt.Sprintf("Hd%d", i), liveInts: 2, hot: true, deadHeavy: true, used: true,
			hasBuf: spec.DeleteFlavor && i == 0,
		})
	}
	for i := 0; i < hc; i++ {
		classes = append(classes, &genClass{
			name: fmt.Sprintf("Hc%d", i), liveInts: 5, hot: true, used: true,
		})
	}
	for i := 0; i < cold; i++ {
		classes = append(classes, &genClass{
			name: fmt.Sprintf("Cold%d", i), liveInts: 2 + r.intn(5), used: true,
			deadHeavy: i < spec.DeadHeavyClasses-hd,
			plain:     float64(i) < spec.StructFraction*float64(cold),
		})
	}

	// Distribute the member budget: adjust cold classes until the total
	// member count (including Node's tag) matches the spec.
	total := func() int {
		n := 1 // Node::tag
		for _, c := range classes {
			if c.used {
				n += c.members()
			}
		}
		return n
	}
	coldClasses := classes[hd+hc:]
	for total() < spec.Members && len(coldClasses) > 0 {
		coldClasses[r.intn(len(coldClasses))].liveInts++
	}
	// Shrink toward the budget; stop when every cold class is at its
	// minimum (a spec below the achievable minimum keeps the floor shape).
	anyReducible := func() bool {
		for _, c := range coldClasses {
			if c.liveInts > 1 {
				return true
			}
		}
		return false
	}
	for total() > spec.Members && len(coldClasses) > 0 {
		c := coldClasses[r.intn(len(coldClasses))]
		if c.liveInts > 1 {
			c.liveInts--
		} else if !anyReducible() {
			break
		}
	}

	// Plant the dead members: convert live ints into dead ones, dead-heavy
	// hot classes first (up to 4 each), then dead-heavy cold classes, then
	// any cold class. Alternate write-only and unreachable-read flavours.
	deadTarget := int(spec.DeadPercent/100*float64(total()) + 0.5)
	planted := 0
	for _, c := range classes {
		if c.hasBuf {
			planted++ // the free()-only buffer is dead
		}
	}
	plant := func(c *genClass, maxPerClass int) {
		for planted < deadTarget && c.deadWrite+c.deadAux < maxPerClass {
			// Grow the class if it has no live ints left to convert
			// beyond its minimum.
			if c.liveInts <= 1 {
				break
			}
			c.liveInts--
			if (c.deadWrite+c.deadAux)%2 == 0 {
				c.deadWrite++
			} else {
				c.deadAux++
			}
			planted++
		}
	}
	for _, c := range classes[:hd] {
		plant(c, 4)
	}
	for _, c := range coldClasses {
		if c.deadHeavy {
			plant(c, 6)
		}
	}
	for _, c := range coldClasses {
		plant(c, 8)
	}
	// Hot dead-heavy classes may need more dead bytes than conversion
	// allowed; top up by adding fresh dead ints (grows the member count
	// slightly, recorded faithfully in Table 1 output).
	for _, c := range classes[:hd] {
		for planted < deadTarget && c.deadWrite+c.deadAux < 4 {
			c.deadWrite++
			planted++
		}
	}

	// Ghost-flag dead-heavy cold classes: statically used, never
	// instantiated at run time.
	if spec.GhostFraction > 0 {
		var deadHeavyCold []*genClass
		for _, c := range coldClasses {
			if c.deadMembers() > 0 {
				deadHeavyCold = append(deadHeavyCold, c)
			}
		}
		ghosts := int(spec.GhostFraction*float64(len(deadHeavyCold)) + 0.5)
		for i := 0; i < ghosts && i < len(deadHeavyCold); i++ {
			deadHeavyCold[i].ghost = true
		}
	}

	// ---- solve the allocation mix -----------------------------------------
	hotDead := classes[:hd]
	hotClean := classes[hd : hd+hc]
	avg := func(g []*genClass, f func(*genClass) int) float64 {
		if len(g) == 0 {
			return 0
		}
		s := 0
		for _, c := range g {
			s += f(c)
		}
		return float64(s) / float64(len(g))
	}
	sD := avg(hotDead, (*genClass).size)
	dD := avg(hotDead, (*genClass).deadBytes)
	sC := avg(hotClean, (*genClass).size)
	coldBytes, coldDead := 0.0, 0.0
	for _, c := range classes {
		if c.ghost {
			continue // never allocated at run time
		}
		coldBytes += float64(c.size())
		coldDead += float64(c.deadBytes())
	}
	n := spec.Allocations
	bestND, bestErr := 0, 1e18
	for nd := 0; nd <= n; nd += maxIntG(1, n/4000) {
		tot := coldBytes + float64(nd)*sD + float64(n-nd)*sC
		dead := coldDead + float64(nd)*dD
		got := 100 * dead / tot
		if e := absF(got - spec.DynDeadPercent); e < bestErr {
			bestErr = e
			bestND = nd
		}
	}
	// The driver allocates exactly bestND dead-heavy objects (the first
	// bestND hot-loop iterations), then clean ones.
	threshold := bestND

	// ---- emit the program --------------------------------------------------
	var b strings.Builder
	ground := map[string]bool{}
	fmt.Fprintf(&b, "// %s.mcc — generated benchmark calibrated to the paper's %q.\n", spec.Name, spec.Name)
	fmt.Fprintf(&b, "// %s\n\n", spec.Description)
	b.WriteString("int sink = 0;\n\n")
	b.WriteString("class Node {\npublic:\n\tint tag;\n\tNode(int t) { tag = t; }\n\tvirtual int use() = 0;\n\tvirtual ~Node() {}\n};\n\n")

	for _, c := range classes {
		emitClass(&b, c, ground)
	}

	// Unused classes: never instantiated; varied member types exercise the
	// frontend but are excluded from the paper's counts.
	unused := spec.Classes - u - 1
	for i := 0; i < unused; i++ {
		emitUnusedClass(&b, i, r)
	}

	emitDriver(&b, spec, classes, hd, hc, threshold)
	return b.String(), ground
}

func emitClass(b *strings.Builder, c *genClass, ground map[string]bool) {
	if c.plain {
		fmt.Fprintf(b, "struct %s {\n", c.name)
	} else {
		fmt.Fprintf(b, "class %s : public Node {\npublic:\n", c.name)
	}
	for i := 0; i < c.liveInts; i++ {
		fmt.Fprintf(b, "\tint m%d;\n", i)
	}
	for i := 0; i < c.deadWrite; i++ {
		fmt.Fprintf(b, "\tint dw%d; // dead: write-only\n", i)
		ground[c.name+"::"+fmt.Sprintf("dw%d", i)] = true
	}
	for i := 0; i < c.deadAux; i++ {
		fmt.Fprintf(b, "\tint du%d; // dead: read only from unreachable code\n", i)
		ground[c.name+"::"+fmt.Sprintf("du%d", i)] = true
	}
	if c.hasBuf {
		b.WriteString("\tvoid* buf; // dead: passed only to free()\n")
		ground[c.name+"::buf"] = true
	}

	// Constructor initializes every member (the paper's motivating case:
	// initialization alone must not make a member live).
	if c.plain {
		fmt.Fprintf(b, "\t%s(int t) {\n", c.name)
	} else {
		fmt.Fprintf(b, "\t%s(int t) : Node(t) {\n", c.name)
	}
	for i := 0; i < c.liveInts; i++ {
		fmt.Fprintf(b, "\t\tm%d = t + %d;\n", i, i)
	}
	for i := 0; i < c.deadWrite; i++ {
		fmt.Fprintf(b, "\t\tdw%d = t * %d;\n", i, i+2)
	}
	for i := 0; i < c.deadAux; i++ {
		fmt.Fprintf(b, "\t\tdu%d = t - %d;\n", i, i+1)
	}
	if c.hasBuf {
		b.WriteString("\t\tbuf = malloc(16);\n")
	}
	b.WriteString("\t}\n")

	if c.hasBuf {
		if c.plain {
			fmt.Fprintf(b, "\t~%s() { free(buf); }\n", c.name)
		} else {
			fmt.Fprintf(b, "\tvirtual ~%s() { free(buf); }\n", c.name)
		}
	}

	if c.plain {
		b.WriteString("\tint use() {\n\t\treturn 0")
	} else {
		b.WriteString("\tvirtual int use() {\n\t\treturn tag")
	}
	for i := 0; i < c.liveInts; i++ {
		fmt.Fprintf(b, " + m%d", i)
	}
	b.WriteString(";\n\t}\n")

	if c.deadAux > 0 {
		// Never called: unused library functionality.
		b.WriteString("\tint auxStats() {\n\t\treturn 0")
		for i := 0; i < c.deadAux; i++ {
			fmt.Fprintf(b, " + du%d", i)
		}
		b.WriteString(";\n\t}\n")
	}
	b.WriteString("};\n\n")
}

func emitUnusedClass(b *strings.Builder, i int, r *rng) {
	name := fmt.Sprintf("Lib%d", i)
	fmt.Fprintf(b, "class %s {\npublic:\n", name)
	kinds := 2 + r.intn(4)
	for k := 0; k < kinds; k++ {
		switch r.intn(4) {
		case 0:
			fmt.Fprintf(b, "\tint f%d;\n", k)
		case 1:
			fmt.Fprintf(b, "\tdouble g%d;\n", k)
		case 2:
			fmt.Fprintf(b, "\tchar c%d;\n", k)
		default:
			fmt.Fprintf(b, "\tint a%d[4];\n", k)
		}
	}
	fmt.Fprintf(b, "\t%s() {}\n", name)
	b.WriteString("};\n\n")
}

func emitDriver(b *strings.Builder, spec Spec, classes []*genClass, hd, hc, threshold int) {
	cap := len(classes) + spec.Allocations/maxIntG(1, spec.RetainMod) + 8
	if spec.ComputeRounds > 0 {
		emitKernel(b, spec.ComputeRounds)
	}
	b.WriteString("int main() {\n")
	fmt.Fprintf(b, "\tNode** arena = new Node*[%d];\n", cap)
	b.WriteString("\tint retained = 0;\n")
	b.WriteString("\tNode* c = nullptr;\n")

	// Cold singles: every used class is constructed at least once. Ghost
	// classes are constructed only on a dynamically-never-taken branch:
	// statically used, dynamically absent.
	b.WriteString("\t// every used class is instantiated once\n")
	b.WriteString("\tint ghostGate = clock() < 0 ? 1 : 0;\n")
	for i, c := range classes {
		switch {
		case c.plain && c.ghost:
			fmt.Fprintf(b, "\tif (ghostGate == 1) { %s sv%d(%d); sink = sink + sv%d.use(); }\n", c.name, i, i+1, i)
		case c.plain:
			// Main-scope stack value: lives to the end of execution, so
			// arena-style benchmarks keep HWM == total object space.
			fmt.Fprintf(b, "\t%s sv%d(%d); sink = sink + sv%d.use();\n", c.name, i, i+1, i)
		case c.ghost:
			fmt.Fprintf(b, "\tif (ghostGate == 1) { c = new %s(%d); sink = sink + c->use() + c->tag; arena[retained] = c; retained = retained + 1; }\n", c.name, i+1)
		default:
			fmt.Fprintf(b, "\tc = new %s(%d); sink = sink + c->use() + c->tag; arena[retained] = c; retained = retained + 1;\n", c.name, i+1)
		}
	}

	// Hot loop.
	fmt.Fprintf(b, "\tfor (int i = 0; i < %d; i++) {\n", spec.Allocations)
	b.WriteString("\t\tNode* o = nullptr;\n")
	fmt.Fprintf(b, "\t\tif (i < %d) {\n", threshold)
	emitGroupSwitch(b, classes[:hd], "\t\t\t")
	b.WriteString("\t\t} else {\n")
	emitGroupSwitch(b, classes[hd:hd+hc], "\t\t\t")
	b.WriteString("\t\t}\n")
	b.WriteString("\t\tsink = sink + o->use();\n")
	if spec.ComputeRounds > 0 {
		b.WriteString("\t\tsink = sink + kernel(i);\n")
	}
	fmt.Fprintf(b, "\t\tif (i %% %d == 0 && retained < %d) {\n", maxIntG(1, spec.RetainMod), cap)
	b.WriteString("\t\t\tarena[retained] = o; retained = retained + 1;\n")
	b.WriteString("\t\t} else {\n\t\t\tdelete o;\n\t\t}\n")
	b.WriteString("\t}\n")

	// Drain the arena at the very end (arena style: the high water mark
	// equals total object space when RetainMod == 1).
	b.WriteString("\tfor (int j = 0; j < retained; j++) { delete arena[j]; }\n")
	b.WriteString("\tdelete[] arena;\n")
	b.WriteString("\tprint(\"sink=\"); print(sink); println();\n")
	b.WriteString("\treturn 0;\n}\n")
}

func emitGroupSwitch(b *strings.Builder, group []*genClass, indent string) {
	if len(group) == 1 {
		fmt.Fprintf(b, "%so = new %s(i);\n", indent, group[0].name)
		return
	}
	fmt.Fprintf(b, "%sswitch (i %% %d) {\n", indent, len(group))
	for i, c := range group {
		if i == len(group)-1 {
			fmt.Fprintf(b, "%sdefault: o = new %s(i); break;\n", indent, c.name)
		} else {
			fmt.Fprintf(b, "%scase %d: o = new %s(i); break;\n", indent, i, c.name)
		}
	}
	fmt.Fprintf(b, "%s}\n", indent)
}

func maxIntG(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func absF(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

// emitKernel writes the driver's compute kernel: ComputeRounds rounds of
// wide integer-arithmetic statements over a dozen distinct locals. It
// allocates nothing, so the heap ledger is untouched; it exists to scale
// executed-statement counts (see Spec.ComputeRounds). The statements are
// deliberately wide (many binary operators, many distinct variables),
// the shape real compute code takes and the one that separates the
// engines most: per-variable resolution cost dominates the tree-walker
// while the VM touches flat frame slots.
func emitKernel(b *strings.Builder, rounds int) {
	vars := []string{"a", "b", "c", "d", "e", "f", "g", "h", "p", "q", "u"}
	primes := []int{3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127}
	b.WriteString("int kernel(int seed) {\n")
	for i, v := range vars {
		fmt.Fprintf(b, "\tint %s = seed * %d + %d;\n", v, primes[i], primes[len(primes)-1-i])
	}
	b.WriteString("\tint s = 0;\n")
	fmt.Fprintf(b, "\tfor (int r = 0; r < %d; r++) {\n", rounds)
	ops := []string{"+", "-", "+", "+", "-", "+", "+", "-", "+", "+"}
	for i, v := range vars {
		fmt.Fprintf(b, "\t\t%s = %s", v, v)
		k := 0
		for j, w := range vars {
			if w == v {
				continue
			}
			fmt.Fprintf(b, " %s %s %% %d", ops[k%len(ops)], w, primes[(i*7+j*3)%len(primes)])
			k++
		}
		b.WriteString(";\n")
	}
	b.WriteString("\t\ts = s + a % 4096 - b % 4096 + c % 128 - d % 128 + e % 64 - f % 64 + g % 32 - h % 32 + p % 16 + q % 16 - u % 8;\n")
	b.WriteString("\t\tif (s > 16777216) { s = s % 9973; }\n")
	b.WriteString("\t\tif (s < 0) { s = 1 - s % 9973; }\n")
	b.WriteString("\t}\n\treturn s;\n}\n\n")
}
