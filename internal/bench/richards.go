package bench

// richardsSource is a hand-written MC++ port of the classic Richards
// operating-system-simulator benchmark — the paper's smallest program
// (Table 1: 606 LOC, 12 classes, 28 data members, zero dead members).
// Every data member below is read on a reachable path, so the analysis
// must find no dead members, matching the paper.
const richardsSource = `
// richards.mcc — operating system simulator (Richards benchmark).

class Packet {
public:
	Packet* link;
	int     id;
	int     kind;
	int     a1;
	int     a2[4];
	Packet(Packet* l, int i, int k) {
		link = l;
		id = i;
		kind = k;
		a1 = 0;
		for (int j = 0; j < 4; j++) { a2[j] = 0; }
	}
};

// appendTo appends pkt to list and returns the new head.
Packet* appendTo(Packet* pkt, Packet* list) {
	pkt->link = nullptr;
	if (list == nullptr) { return pkt; }
	Packet* p = list;
	while (p->link != nullptr) { p = p->link; }
	p->link = pkt;
	return list;
}

class DeviceTaskRec {
public:
	Packet* pending;
	DeviceTaskRec() { pending = nullptr; }
};

class IdleTaskRec {
public:
	int control;
	int count;
	IdleTaskRec() { control = 1; count = 1000; }
};

class HandlerTaskRec {
public:
	Packet* workIn;
	Packet* deviceIn;
	HandlerTaskRec() { workIn = nullptr; deviceIn = nullptr; }
	void workInAdd(Packet* p)   { workIn = appendTo(p, workIn); }
	void deviceInAdd(Packet* p) { deviceIn = appendTo(p, deviceIn); }
};

class WorkerTaskRec {
public:
	int destination;
	int count;
	WorkerTaskRec() { destination = 2; count = 0; }
};

class TaskControlBlock;
class Scheduler;

class Task {
public:
	Scheduler* sched;
	Task(Scheduler* s) { sched = s; }
	virtual TaskControlBlock* run(Packet* pkt) = 0;
};

class TaskControlBlock {
public:
	TaskControlBlock* link;
	int     id;
	int     pri;
	Packet* queue;
	int     state; // bit 0: packet pending, bit 1: task waiting, bit 2: task holding
	Task*   task;

	TaskControlBlock(TaskControlBlock* l, int i, int p, Packet* q, int initialState, Task* t) {
		link = l;
		id = i;
		pri = p;
		queue = q;
		state = initialState;
		task = t;
	}

	bool isHeldOrSuspended() { return (state & 4) != 0 || state == 2; }
	void markAsNotHeld()     { state = state & 3; }
	void markAsHeld()        { state = state | 4; }
	void markAsSuspended()   { state = state | 2; }
	void markAsRunnable()    { state = state | 1; }

	TaskControlBlock* checkPriorityAdd(TaskControlBlock* t, Packet* pkt) {
		if (queue == nullptr) {
			queue = pkt;
			markAsRunnable();
			if (pri > t->pri) { return this; }
		} else {
			queue = appendTo(pkt, queue);
		}
		return t;
	}

	TaskControlBlock* runTask() {
		Packet* msg;
		if ((state & 3) == 3) { // suspended with packet pending
			msg = queue;
			queue = queue->link;
			if (queue == nullptr) { state = 0; } else { state = 1; }
		} else {
			msg = nullptr;
		}
		return task->run(msg);
	}

	void addPacket(Packet* p) {
		if (queue == nullptr) {
			queue = p;
			state = state | 1;
		} else {
			queue = appendTo(p, queue);
		}
	}
};

class Scheduler {
public:
	TaskControlBlock* table[6];
	TaskControlBlock* list;
	TaskControlBlock* current;
	int currentId;
	int queueCount;
	int holdCount;

	Scheduler() {
		for (int i = 0; i < 6; i++) { table[i] = nullptr; }
		list = nullptr;
		current = nullptr;
		currentId = 0;
		queueCount = 0;
		holdCount = 0;
	}

	void addTask(int id, int pri, Packet* queue, int initialState, Task* t) {
		TaskControlBlock* tcb = new TaskControlBlock(list, id, pri, queue, initialState, t);
		list = tcb;
		table[id] = tcb;
	}

	void schedule() {
		current = list;
		while (current != nullptr) {
			if (current->isHeldOrSuspended()) {
				current = current->link;
			} else {
				currentId = current->id;
				current = current->runTask();
			}
		}
	}

	TaskControlBlock* findTcb(int id) { return table[id]; }

	TaskControlBlock* queuePacket(Packet* pkt) {
		TaskControlBlock* t = findTcb(pkt->id);
		if (t == nullptr) { return nullptr; }
		queueCount = queueCount + 1;
		pkt->link = nullptr;
		pkt->id = currentId;
		return t->checkPriorityAdd(current, pkt);
	}

	TaskControlBlock* holdSelf() {
		holdCount = holdCount + 1;
		current->markAsHeld();
		return current->link;
	}

	TaskControlBlock* release(int id) {
		TaskControlBlock* t = findTcb(id);
		if (t == nullptr) { return nullptr; }
		t->markAsNotHeld();
		if (t->pri > current->pri) { return t; }
		return current;
	}

	TaskControlBlock* waitCurrent() {
		current->markAsSuspended();
		return current;
	}
};

class IdleTask : public Task {
public:
	IdleTaskRec* rec;
	IdleTask(Scheduler* s, IdleTaskRec* r) : Task(s) { rec = r; }
	virtual TaskControlBlock* run(Packet* pkt) {
		rec->count = rec->count - 1;
		if (rec->count == 0) { return sched->holdSelf(); }
		if ((rec->control & 1) == 0) {
			rec->control = rec->control / 2;
			return sched->release(0); // device A
		}
		rec->control = (rec->control / 2) ^ 53256;
		return sched->release(1); // device B
	}
};

class WorkerTask : public Task {
public:
	WorkerTaskRec* rec;
	WorkerTask(Scheduler* s, WorkerTaskRec* r) : Task(s) { rec = r; }
	virtual TaskControlBlock* run(Packet* pkt) {
		if (pkt == nullptr) { return sched->waitCurrent(); }
		rec->destination = 2 + 3 - rec->destination; // toggle handler A/B
		pkt->id = rec->destination;
		pkt->a1 = 0;
		for (int i = 0; i < 4; i++) {
			rec->count = rec->count + 1;
			if (rec->count > 26) { rec->count = 1; }
			pkt->a2[i] = 64 + rec->count;
		}
		return sched->queuePacket(pkt);
	}
};

class HandlerTask : public Task {
public:
	HandlerTaskRec* rec;
	HandlerTask(Scheduler* s, HandlerTaskRec* r) : Task(s) { rec = r; }
	virtual TaskControlBlock* run(Packet* pkt) {
		if (pkt != nullptr) {
			if (pkt->kind == 1) { rec->workInAdd(pkt); } else { rec->deviceInAdd(pkt); }
		}
		if (rec->workIn != nullptr) {
			Packet* work = rec->workIn;
			int count = work->a1;
			if (count >= 4) {
				rec->workIn = work->link;
				return sched->queuePacket(work);
			}
			if (rec->deviceIn != nullptr) {
				Packet* dev = rec->deviceIn;
				rec->deviceIn = dev->link;
				dev->a1 = work->a2[count];
				work->a1 = count + 1;
				return sched->queuePacket(dev);
			}
		}
		return sched->waitCurrent();
	}
};

class DeviceTask : public Task {
public:
	DeviceTaskRec* rec;
	DeviceTask(Scheduler* s, DeviceTaskRec* r) : Task(s) { rec = r; }
	virtual TaskControlBlock* run(Packet* pkt) {
		if (pkt == nullptr) {
			if (rec->pending == nullptr) { return sched->waitCurrent(); }
			Packet* v = rec->pending;
			rec->pending = nullptr;
			return sched->queuePacket(v);
		}
		rec->pending = pkt;
		return sched->holdSelf();
	}
};

int main() {
	// Task ids: 0/1 devices, 2/3 handlers, 4 worker, 5 idle.
	// Packet kinds: 0 device, 1 work.
	// Initial states: 0 running, 2 waiting, 3 waiting-with-packet.
	Scheduler sched;

	sched.addTask(5, 0, nullptr, 0, new IdleTask(&sched, new IdleTaskRec()));

	Packet* wq = new Packet(nullptr, 4, 1);
	wq = new Packet(wq, 4, 1);
	sched.addTask(4, 1000, wq, 3, new WorkerTask(&sched, new WorkerTaskRec()));

	wq = new Packet(nullptr, 0, 0);
	wq = new Packet(wq, 0, 0);
	wq = new Packet(wq, 0, 0);
	sched.addTask(2, 2000, wq, 3, new HandlerTask(&sched, new HandlerTaskRec()));

	wq = new Packet(nullptr, 1, 0);
	wq = new Packet(wq, 1, 0);
	wq = new Packet(wq, 1, 0);
	sched.addTask(3, 3000, wq, 3, new HandlerTask(&sched, new HandlerTaskRec()));

	sched.addTask(0, 4000, nullptr, 2, new DeviceTask(&sched, new DeviceTaskRec()));
	sched.addTask(1, 5000, nullptr, 2, new DeviceTask(&sched, new DeviceTaskRec()));

	sched.schedule();

	print("queue=");
	print(sched.queueCount);
	print(" hold=");
	print(sched.holdCount);
	println();

	if (sched.queueCount == 2322 && sched.holdCount == 928) { return 0; }
	return 1;
}
`
