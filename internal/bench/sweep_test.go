package bench

import (
	"strings"
	"testing"

	"deadmembers/internal/callgraph"
	"deadmembers/internal/deadmember"
	"deadmembers/internal/dynprof"
	"deadmembers/internal/engine"
	"deadmembers/internal/frontend"
	"deadmembers/internal/strip"
)

// stripApply runs the dead-member elimination transform and returns the
// transformed sources.
func stripApply(res *deadmember.Result) []frontend.Source {
	return strip.Apply(res, strip.Options{}).Sources
}

// TestRandomizedSpecSweep is a differential property test: for arbitrary
// generator configurations, the analysis must classify exactly the members
// the generator planted as dead — no false negatives (soundness of the
// liveness marking) and no false positives (precision on this program
// family). Each generated program is also executed to confirm it is a
// valid, terminating MC++ program.
func TestRandomizedSpecSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow; skipped with -short")
	}
	r := &rng{s: 0xC0FFEE}
	for i := 0; i < 24; i++ {
		classes := 10 + r.intn(60)
		used := 6 + r.intn(classes-6)
		if used > classes-1 {
			used = classes - 1
		}
		members := used*2 + r.intn(used*4)
		spec := Spec{
			Name:             "sweep",
			Description:      "randomized sweep case",
			Classes:          classes,
			UsedClasses:      used,
			Members:          members,
			DeadPercent:      float64(r.intn(30)),
			Allocations:      50 + r.intn(2000),
			DynDeadPercent:   float64(r.intn(12)),
			RetainMod:        1 + r.intn(4),
			DeadHeavyClasses: 1 + r.intn(6),
			DeleteFlavor:     r.intn(2) == 0,
			GhostFraction:    float64(r.intn(3)) * 0.3,
			Seed:             r.next(),
		}
		src, ground := Generate(spec)

		// Route through the engine with the default (all cores) worker
		// pool: the sweep doubles as a differential test of the parallel
		// parse and liveness stages against the planted ground truth.
		c := engine.Compile(engine.Config{}, frontend.Source{Name: "sweep.mcc", Text: src})
		if err := c.Err(); err != nil {
			t.Fatalf("case %d (seed %#x): generated program does not compile:\n%v", i, spec.Seed, err)
		}
		res := c.Analyze(deadmember.Options{CallGraph: callgraph.RTA})

		got := map[string]bool{}
		for _, f := range res.DeadMembers() {
			got[f.QualifiedName()] = true
		}
		for qn := range ground {
			if !got[qn] {
				t.Errorf("case %d (seed %#x): planted dead member %s reported live", i, spec.Seed, qn)
			}
		}
		for qn := range got {
			if !ground[qn] {
				t.Errorf("case %d (seed %#x): %s reported dead but not planted", i, spec.Seed, qn)
			}
		}

		prof, err := dynprof.Run(res, dynprof.Options{MaxSteps: 50_000_000})
		if err != nil {
			t.Fatalf("case %d (seed %#x): execution failed: %v", i, spec.Seed, err)
		}
		if prof.Exec.ExitCode != 0 {
			t.Errorf("case %d: exit %d", i, prof.Exec.ExitCode)
		}
		if !strings.Contains(prof.Exec.Output, "sink=") {
			t.Errorf("case %d: missing observable output", i)
		}
		if prof.Ledger.LiveBytes != 0 {
			t.Errorf("case %d: leaked %d object bytes", i, prof.Ledger.LiveBytes)
		}
		if prof.Ledger.AdjustedHighWater > prof.Ledger.HighWater {
			t.Errorf("case %d: adjusted HWM exceeds HWM", i)
		}
	}
}

// TestSweepStripRoundTrip extends the sweep with the transform: stripping
// a random generated program preserves behaviour exactly.
func TestSweepStripRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow; skipped with -short")
	}
	r := &rng{s: 0xBEEF}
	for i := 0; i < 6; i++ {
		spec := Spec{
			Name: "sweepstrip", Description: "strip sweep",
			Classes: 14 + r.intn(20), UsedClasses: 8 + r.intn(10),
			Members: 60 + r.intn(60), DeadPercent: 5 + float64(r.intn(20)),
			Allocations: 100 + r.intn(500), RetainMod: 1 + r.intn(3),
			DeadHeavyClasses: 1 + r.intn(4), DeleteFlavor: i%2 == 0,
			Seed: r.next(),
		}
		if spec.UsedClasses > spec.Classes-1 {
			spec.UsedClasses = spec.Classes - 1
		}
		src, _ := Generate(spec)
		runSweepStrip(t, i, spec, src)
	}
}

func runSweepStrip(t *testing.T, i int, spec Spec, src string) {
	t.Helper()
	fr := frontend.Compile(frontend.Source{Name: "s.mcc", Text: src})
	if err := fr.Err(); err != nil {
		t.Fatalf("case %d: %v", i, err)
	}
	res := deadmember.Analyze(fr.Program, fr.Graph, deadmember.Options{CallGraph: callgraph.RTA})
	before, err := dynprof.Run(res, dynprof.Options{})
	if err != nil {
		t.Fatalf("case %d: %v", i, err)
	}
	out := stripApply(res)
	fr2 := frontend.Compile(out...)
	if err := fr2.Err(); err != nil {
		t.Fatalf("case %d (seed %#x): stripped program does not compile:\n%v", i, spec.Seed, err)
	}
	res2 := deadmember.Analyze(fr2.Program, fr2.Graph, deadmember.Options{CallGraph: callgraph.RTA})
	after, err := dynprof.Run(res2, dynprof.Options{})
	if err != nil {
		t.Fatalf("case %d: stripped program failed: %v", i, err)
	}
	if before.Exec.Output != after.Exec.Output || before.Exec.ExitCode != after.Exec.ExitCode {
		t.Errorf("case %d (seed %#x): behaviour changed by strip", i, spec.Seed)
	}
	if len(res2.DeadMembers()) != 0 {
		t.Errorf("case %d: dead members remain after strip: %v", i, res2.DeadMembers())
	}
}
