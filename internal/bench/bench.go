// Package bench provides the benchmark corpus used to reproduce the
// paper's evaluation: hand-written MC++ ports of richards and deltablue
// (the two small benchmarks with zero dead members) and nine synthesized
// applications calibrated to the remaining paper benchmarks.
package bench

import (
	"context"
	"fmt"

	"deadmembers/internal/engine"
	"deadmembers/internal/frontend"
)

// PaperRow carries the paper's published numbers for one benchmark, used
// by the report package for paper-vs-measured comparison. Zero fields
// mean the paper did not report (or OCR lost) the value; Approx flags
// values reconstructed from garbled table cells.
type PaperRow struct {
	LOC         int
	Classes     int
	UsedClasses int
	Members     int

	DeadPercent float64 // Figure 3 (chart; values are our calibration targets)

	ObjectSpace int64 // Table 2
	DeadSpace   int64
	HighWater   int64
	HighWaterWo int64
	Approx      bool
}

// Benchmark is one corpus entry.
type Benchmark struct {
	Name        string
	Description string
	Sources     []frontend.Source
	Paper       PaperRow

	// GroundTruth is the exact set of dead members planted by the
	// generator (nil for the hand-written benchmarks, whose ground truth
	// is the empty set).
	GroundTruth map[string]bool
}

// paperTable2 holds the Table 2 byte counts from the paper (OCR-garbled
// cells reconstructed and flagged Approx).
var paperTable2 = map[string]PaperRow{
	"jikes":     {LOC: 58296, Classes: 268, UsedClasses: 190, Members: 1052, DeadPercent: 11.9, ObjectSpace: 2921490, DeadSpace: 175289, HighWater: 2179730, HighWaterWo: 2048946, Approx: true},
	"idl":       {LOC: 30408, Classes: 150, UsedClasses: 105, Members: 600, DeadPercent: 6.1, ObjectSpace: 708249, DeadSpace: 15388, HighWater: 701273, HighWaterWo: 686886},
	"npic":      {LOC: 11670, Classes: 60, UsedClasses: 48, Members: 220, DeadPercent: 5.0, ObjectSpace: 115248, DeadSpace: 5616, HighWater: 24972, HighWaterWo: 23840},
	"lcom":      {LOC: 17278, Classes: 72, UsedClasses: 58, Members: 300, DeadPercent: 9.8, ObjectSpace: 2274956, DeadSpace: 241435, HighWater: 1652828, HighWaterWo: 1491048},
	"taldict":   {LOC: 3010, Classes: 55, UsedClasses: 27, Members: 190, DeadPercent: 27.3, ObjectSpace: 7980, DeadSpace: 36, HighWater: 7080, HighWaterWo: 6972, Approx: true},
	"ixx":       {LOC: 11157, Classes: 90, UsedClasses: 63, Members: 420, DeadPercent: 7.7, ObjectSpace: 551160, DeadSpace: 29745, HighWater: 299516, HighWaterWo: 269775},
	"simulate":  {LOC: 6672, Classes: 45, UsedClasses: 24, Members: 170, DeadPercent: 23.1, ObjectSpace: 64869, DeadSpace: 41, HighWater: 11644, HighWaterWo: 11586, Approx: true},
	"sched":     {LOC: 5712, Classes: 24, UsedClasses: 20, Members: 80, DeadPercent: 3.0, ObjectSpace: 9032676, DeadSpace: 1049148, HighWater: 9032676, HighWaterWo: 7983528},
	"hotwire":   {LOC: 5355, Classes: 37, UsedClasses: 21, Members: 166, DeadPercent: 18.6, ObjectSpace: 10780, DeadSpace: 284, HighWater: 10780, HighWaterWo: 10496},
	"deltablue": {LOC: 1250, Classes: 10, UsedClasses: 8, Members: 23, DeadPercent: 0, ObjectSpace: 276364, DeadSpace: 0, HighWater: 196212, HighWaterWo: 196212},
	"richards":  {LOC: 606, Classes: 12, UsedClasses: 12, Members: 28, DeadPercent: 0, ObjectSpace: 4889, DeadSpace: 0, HighWater: 4880, HighWaterWo: 4880},
}

// All returns the full 11-benchmark corpus in the paper's presentation
// order. Generation is deterministic: repeated calls return identical
// sources.
func All() []*Benchmark {
	var out []*Benchmark
	for _, spec := range specs {
		src, ground := Generate(spec)
		out = append(out, &Benchmark{
			Name:        spec.Name,
			Description: spec.Description,
			Sources:     []frontend.Source{{Name: spec.Name + ".mcc", Text: src}},
			Paper:       paperTable2[spec.Name],
			GroundTruth: ground,
		})
	}
	out = append(out,
		&Benchmark{
			Name:        "deltablue",
			Description: "incremental dataflow constraint solver",
			Sources:     []frontend.Source{{Name: "deltablue.mcc", Text: deltablueSource}},
			Paper:       paperTable2["deltablue"],
		},
		&Benchmark{
			Name:        "richards",
			Description: "simple operating system simulator",
			Sources:     []frontend.Source{{Name: "richards.mcc", Text: richardsSource}},
			Paper:       paperTable2["richards"],
		},
	)
	return out
}

// Compile compiles the benchmark's sources in session s. The session
// caches by content hash, so repeated calls — collection then ablation,
// or a benchmark loop — run the frontend once per benchmark.
func (b *Benchmark) Compile(s *engine.Session) (*engine.Compilation, error) {
	return b.CompileContext(context.Background(), s)
}

// CompileContext is Compile under a context.
func (b *Benchmark) CompileContext(ctx context.Context, s *engine.Session) (*engine.Compilation, error) {
	c := s.CompileContext(ctx, b.Sources...)
	if err := c.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", b.Name, err)
	}
	return c, nil
}

// ByName returns the named corpus benchmark.
func ByName(name string) (*Benchmark, error) {
	for _, b := range All() {
		if b.Name == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("bench: unknown benchmark %q", name)
}

// Names returns the corpus benchmark names in presentation order.
func Names() []string {
	var out []string
	for _, b := range All() {
		out = append(out, b.Name)
	}
	return out
}
