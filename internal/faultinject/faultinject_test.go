package faultinject

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"deadmembers/internal/persist"
)

func TestInjectorDeterministic(t *testing.T) {
	roll := func() []bool {
		in := New(42, 0.3)
		var out []bool
		for i := 0; i < 200; i++ {
			out = append(out, in.Fault(KindReadEIO))
		}
		return out
	}
	a, b := roll(), roll()
	hits := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("roll %d differs between identical seeds", i)
		}
		if a[i] {
			hits++
		}
	}
	if hits == 0 || hits == len(a) {
		t.Fatalf("rate 0.3 produced %d/%d hits", hits, len(a))
	}
	in := New(42, 0.3)
	for i := 0; i < 200; i++ {
		in.Fault(KindReadEIO)
	}
	if got := in.Counts()[KindReadEIO]; got != int64(hits) {
		t.Errorf("counts = %d, want %d", got, hits)
	}
}

func TestInjectorRateBounds(t *testing.T) {
	off := New(1, 0)
	on := New(1, 1)
	for i := 0; i < 50; i++ {
		if off.Fault(KindHTTP503) {
			t.Fatal("rate 0 fired")
		}
		if !on.Fault(KindHTTP503) {
			t.Fatal("rate 1 missed")
		}
	}
	var nilInj *Injector
	if nilInj.Fault(KindHTTP503) {
		t.Error("nil injector fired")
	}
}

// TestFaultFSCorruptionIsAlwaysDetected drives a persist.Store through a
// fault-injecting filesystem at a brutal rate and asserts the store's
// core invariant: a Get either returns the exact bytes that were Put, or
// a miss — never corrupt data, never a panic.
func TestFaultFSCorruptionIsAlwaysDetected(t *testing.T) {
	dir := t.TempDir()
	in := New(7, 0.25)
	store, err := persist.Open(dir, persist.Options{FS: FS(persist.OSFS{}, in)})
	if err != nil {
		t.Fatal(err)
	}
	key := func(i int) string { return fmt.Sprintf("%064d", i%8) }
	body := func(i int) string { return fmt.Sprintf("artifact body %d", i%8) }
	for i := 0; i < 400; i++ {
		store.Put(key(i), "text/plain", []byte(body(i))) // errors expected under chaos
		got, _, ok := store.Get(key(i))
		if ok && string(got) != body(i) {
			t.Fatalf("iteration %d: served corrupt body %q, want %q", i, got, body(i))
		}
	}
	st := store.Stats()
	if st.ServedCorrupt != 0 {
		t.Fatalf("served corrupt = %d, want 0", st.ServedCorrupt)
	}
	if in.Total() == 0 {
		t.Fatal("chaos layer injected nothing at rate 0.25")
	}
	// The store must remain openable (and only serve valid records)
	// after all that abuse, like a daemon restarting on a damaged disk.
	store2, err := persist.Open(dir, persist.Options{})
	if err != nil {
		t.Fatalf("reopen after chaos: %v", err)
	}
	for i := 0; i < 8; i++ {
		if got, _, ok := store2.Get(key(i)); ok && string(got) != body(i) {
			t.Fatalf("after reopen: corrupt body %q for key %d", got, i)
		}
	}
}

func TestFaultFSErrorKinds(t *testing.T) {
	dir := t.TempDir()
	in := New(3, 1) // every site fires
	ffs := FS(persist.OSFS{}, in)
	if _, err := ffs.ReadFile(filepath.Join(dir, "x")); !errors.Is(err, syscall.EIO) {
		t.Errorf("ReadFile err = %v, want EIO", err)
	}
	if err := ffs.WriteFile(filepath.Join(dir, "y"), []byte("data")); !errors.Is(err, syscall.ENOSPC) {
		t.Errorf("WriteFile err = %v, want ENOSPC", err)
	}
}

func TestFaultFSTornRename(t *testing.T) {
	dir := t.TempDir()
	in := New(5, 1)
	// Only the torn-rename site can fire: do the write with the real FS.
	src, dst := filepath.Join(dir, "src"), filepath.Join(dir, "dst")
	full := (&persist.Record{Key: strings.Repeat("ab", 16), ContentType: "t", Body: []byte("full body")}).Encode()
	if err := os.WriteFile(src, full, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := FS(persist.OSFS{}, in).Rename(src, dst); err != nil {
		t.Fatalf("torn rename must report success, got %v", err)
	}
	torn, err := os.ReadFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(torn) >= len(full) {
		t.Fatalf("rename was not torn: %d bytes survived of %d", len(torn), len(full))
	}
	if _, err := persist.Decode(torn); !errors.Is(err, persist.ErrCorrupt) {
		t.Errorf("torn record decoded: err = %v, want ErrCorrupt", err)
	}
}

func TestHTTPHandlerFaults(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	})

	t.Run("passthrough at rate 0", func(t *testing.T) {
		h := Handler(New(1, 0), time.Millisecond, inner)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
		if rec.Code != 200 || rec.Body.String() != "ok" {
			t.Errorf("got %d %q", rec.Code, rec.Body.String())
		}
	})

	t.Run("injected faults over real connections", func(t *testing.T) {
		in := New(99, 0.5)
		ts := httptest.NewServer(Handler(in, time.Millisecond, inner))
		defer ts.Close()
		var ok, failed int
		for i := 0; i < 60; i++ {
			resp, err := http.Get(ts.URL)
			if err != nil {
				failed++ // dropped connection
				continue
			}
			if resp.StatusCode == http.StatusServiceUnavailable {
				if resp.Header.Get("Retry-After") == "" {
					t.Error("injected 503 missing Retry-After")
				}
				failed++
			} else if resp.StatusCode == 200 {
				ok++
			}
			resp.Body.Close()
		}
		if ok == 0 || failed == 0 {
			t.Fatalf("rate 0.5: ok=%d failed=%d, want a mix", ok, failed)
		}
		if in.Total() == 0 {
			t.Error("no faults counted")
		}
	})
}
