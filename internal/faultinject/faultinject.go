// Package faultinject is deadmemd's chaos layer: a seeded, deterministic
// fault injector with two wrappers — a persist.FS that simulates disk
// faults (EIO reads, ENOSPC, short writes, torn renames) and an
// http.Handler middleware that simulates a hostile network (added
// latency, injected 503s, dropped connections).
//
// It exists to prove the crash-safety claims, not to be subtle: every
// injected fault is counted by kind, the counts are exported on
// /metrics, and the whole layer is off unless -chaos-rate is set. Given
// the same seed and the same serialized sequence of operations, the
// injected faults are identical run to run.
package faultinject

import (
	"math/rand"
	"sync"
)

// Fault kinds, used as counter labels in /metrics
// (deadmemd_chaos_injected_total{kind=...}).
const (
	KindReadEIO     = "fs.read.eio"
	KindWriteENOSPC = "fs.write.enospc"
	KindWriteShort  = "fs.write.short"
	KindRenameTorn  = "fs.rename.torn"
	KindHTTPLatency = "http.latency"
	KindHTTP503     = "http.unavailable"
	KindHTTPDrop    = "http.drop"
)

// Injector decides, pseudo-randomly but reproducibly, whether each
// potential fault site fires. Safe for concurrent use (decisions are
// serialized on one seeded source).
type Injector struct {
	mu     sync.Mutex
	rng    *rand.Rand
	rate   float64
	counts map[string]int64
}

// New returns an injector firing each fault site with probability rate
// (clamped to [0, 1]), drawing from a source seeded with seed.
func New(seed int64, rate float64) *Injector {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	return &Injector{
		rng:    rand.New(rand.NewSource(seed)),
		rate:   rate,
		counts: map[string]int64{},
	}
}

// Fault rolls the dice for one fault site and records a hit under kind.
func (in *Injector) Fault(kind string) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.rng.Float64() >= in.rate {
		return false
	}
	in.counts[kind]++
	return true
}

// Counts returns a snapshot of injected-fault counts by kind.
func (in *Injector) Counts() map[string]int64 {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]int64, len(in.counts))
	for k, v := range in.counts {
		out[k] = v
	}
	return out
}

// Total returns the total number of injected faults.
func (in *Injector) Total() int64 {
	var n int64
	for _, v := range in.Counts() {
		n += v
	}
	return n
}
