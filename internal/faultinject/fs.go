package faultinject

import (
	"fmt"
	"syscall"

	"deadmembers/internal/persist"
)

// FS wraps inner with fault injection on the operations whose failure
// modes the persist layer must survive:
//
//   - ReadFile may fail with EIO (a dying disk);
//   - WriteFile may fail with ENOSPC before writing, or perform a SHORT
//     WRITE — half the bytes land on disk and an error is returned;
//   - Rename may be TORN — the destination appears, but with truncated
//     content, and no error is reported (the cruelest crash mode: the
//     caller believes the publish succeeded).
//
// Directory operations (MkdirAll, Remove, ReadDir) pass through so the
// store can always bootstrap and clean up; the interesting faults are
// the ones that corrupt or lose record data.
func FS(inner persist.FS, in *Injector) persist.FS {
	return &faultFS{inner: inner, in: in}
}

type faultFS struct {
	inner persist.FS
	in    *Injector
}

func (f *faultFS) MkdirAll(dir string) error { return f.inner.MkdirAll(dir) }

func (f *faultFS) ReadFile(path string) ([]byte, error) {
	if f.in.Fault(KindReadEIO) {
		return nil, fmt.Errorf("faultinject: read %s: %w", path, syscall.EIO)
	}
	return f.inner.ReadFile(path)
}

func (f *faultFS) WriteFile(path string, data []byte) error {
	if f.in.Fault(KindWriteENOSPC) {
		return fmt.Errorf("faultinject: write %s: %w", path, syscall.ENOSPC)
	}
	if f.in.Fault(KindWriteShort) {
		// The real bytes that made it to disk before the "crash".
		f.inner.WriteFile(path, data[:len(data)/2])
		return fmt.Errorf("faultinject: short write %s: %d of %d bytes", path, len(data)/2, len(data))
	}
	return f.inner.WriteFile(path, data)
}

func (f *faultFS) Rename(oldPath, newPath string) error {
	if f.in.Fault(KindRenameTorn) {
		// Tear the payload, then "succeed": the destination holds a
		// truncated record under a valid name. Only the per-record
		// checksum can catch this.
		if data, err := f.inner.ReadFile(oldPath); err == nil && len(data) > 0 {
			f.inner.WriteFile(oldPath, data[:len(data)/2])
		}
	}
	return f.inner.Rename(oldPath, newPath)
}

func (f *faultFS) Remove(path string) error { return f.inner.Remove(path) }

func (f *faultFS) ReadDir(dir string) ([]persist.FileInfo, error) { return f.inner.ReadDir(dir) }
