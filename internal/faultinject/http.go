package faultinject

import (
	"net/http"
	"time"
)

// Handler wraps next with network chaos, applied before the real
// handler runs (an injected fault never leaves partial server-side
// state — the request simply fails and the client must retry):
//
//   - latency: the response is delayed by latency (bounded by the
//     request context, so drains and client disconnects still work);
//   - 503: the request is refused with 503 and a Retry-After hint,
//     indistinguishable from real overload;
//   - drop: the connection is severed with no response at all — the
//     client sees EOF/RST, the failure mode of a crashing server.
//
// Each fault site rolls independently at the injector's rate, so a
// single request can be delayed AND dropped, like real networks.
func Handler(in *Injector, latency time.Duration, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if latency > 0 && in.Fault(KindHTTPLatency) {
			select {
			case <-time.After(latency):
			case <-r.Context().Done():
				return
			}
		}
		if in.Fault(KindHTTPDrop) {
			if hj, ok := w.(http.Hijacker); ok {
				if conn, _, err := hj.Hijack(); err == nil {
					conn.Close()
					return
				}
			}
			// No hijacking (e.g. HTTP/2): abort mid-response instead.
			panic(http.ErrAbortHandler)
		}
		if in.Fault(KindHTTP503) {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "chaos: injected unavailability", http.StatusServiceUnavailable)
			return
		}
		next.ServeHTTP(w, r)
	})
}
