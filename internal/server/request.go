package server

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"deadmembers/internal/api"
	"deadmembers/internal/callgraph"
	"deadmembers/internal/deadmember"
	"deadmembers/internal/engine"
	"deadmembers/internal/heaplive"
)

// httpError is a handler failure carrying the status code to report.
type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...interface{}) *httpError {
	return &httpError{http.StatusBadRequest, fmt.Sprintf(format, args...)}
}

// bundle is a decoded request: the source files plus the option set,
// mirroring the corresponding CLI's flags one for one so a bundle and a
// command line describe the same run.
type bundle struct {
	sources []engine.Source
	opts    deadmember.Options

	// analyze sections (deadmem -v / -classes / -unreachable)
	verbose     bool
	classes     bool
	unreachable bool

	// lint (deadlint -format / -budget / -precision)
	format    string
	budget    int
	precision heaplive.Precision

	// strip (deadstrip -keep-unreachable)
	keepUnreachable bool
}

// parseRequest decodes a request in either transport (see api.FromHTTP
// for the two wire forms) and validates it into a bundle.
//
// The caller must have wrapped r.Body in http.MaxBytesReader; an
// over-limit body surfaces here as a 413.
func parseRequest(r *http.Request) (*bundle, *httpError) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return nil, &httpError{http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit)}
		}
		return nil, badRequest("reading body: %v", err)
	}
	req, err := api.FromHTTP(r, body)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	return bundleFromAPI(req)
}

// bundleFromAPI validates a wire request into the internal option set,
// with the same defaults as the CLIs.
func bundleFromAPI(req *api.Request) (*bundle, *httpError) {
	if len(req.Sources) == 0 {
		return nil, badRequest("no sources in request")
	}
	b := &bundle{
		verbose:         req.Verbose,
		classes:         req.Classes,
		unreachable:     req.Unreachable,
		budget:          req.Budget,
		keepUnreachable: req.KeepUnreachable,
	}
	if req.Budget < 0 {
		return nil, badRequest("invalid budget=%d", req.Budget)
	}
	seen := map[string]bool{}
	for i, s := range req.Sources {
		if s.Name == "" {
			return nil, badRequest("sources[%d]: missing name", i)
		}
		if seen[s.Name] {
			return nil, badRequest("duplicate source name %q", s.Name)
		}
		seen[s.Name] = true
		b.sources = append(b.sources, engine.Source{Name: s.Name, Text: s.Text})
	}
	var herr *httpError
	if b.opts, herr = decodeOptions(req.Options); herr != nil {
		return nil, herr
	}
	if b.format, herr = decodeFormat(req.Format); herr != nil {
		return nil, herr
	}
	p, err := heaplive.ParsePrecision(req.Precision)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	b.precision = p
	return b, nil
}

// decodeOptions maps the wire option names (identical to the CLI flag
// values) onto deadmember.Options, with the same defaults as the CLIs.
func decodeOptions(o api.Options) (deadmember.Options, *httpError) {
	opts := deadmember.Options{
		NoDeleteSpecialCase: o.NoDeleteRule,
		TrustDowncasts:      o.TrustDowncasts,
		WritesAreUses:       o.WritesAreUses,
		LibraryClasses:      o.Library,
	}
	switch strings.ToLower(o.CallGraph) {
	case "", "rta":
		opts.CallGraph = callgraph.RTA
	case "cha":
		opts.CallGraph = callgraph.CHA
	case "all":
		opts.CallGraph = callgraph.ALL
	default:
		return opts, badRequest("unknown callgraph %q", o.CallGraph)
	}
	switch strings.ToLower(o.Sizeof) {
	case "", "ignore":
		opts.Sizeof = deadmember.SizeofIgnore
	case "conservative":
		opts.Sizeof = deadmember.SizeofConservative
	default:
		return opts, badRequest("unknown sizeof %q", o.Sizeof)
	}
	return opts, nil
}

func decodeFormat(format string) (string, *httpError) {
	switch format {
	case "":
		return "text", nil
	case "text", "json", "sarif":
		return format, nil
	default:
		return "", badRequest("unknown format %q", format)
	}
}

// artifactKey is the content address of a rendered response in the
// persist store: a hash of the endpoint, every option that affects the
// rendered bytes, and the compilation fingerprint of the sources. Two
// requests share a key exactly when their responses are byte-identical
// by construction.
func artifactKey(endpoint string, b *bundle) string {
	canon := strings.Join([]string{
		endpoint,
		"cg=" + b.opts.CallGraph.String(),
		"sizeof=" + b.opts.Sizeof.String(),
		fmt.Sprintf("nodelete=%t", b.opts.NoDeleteSpecialCase),
		fmt.Sprintf("downcasts=%t", b.opts.TrustDowncasts),
		fmt.Sprintf("writesareuses=%t", b.opts.WritesAreUses),
		"lib=" + strings.Join(b.opts.LibraryClasses, ","),
		fmt.Sprintf("v=%t", b.verbose),
		fmt.Sprintf("classes=%t", b.classes),
		fmt.Sprintf("unreachable=%t", b.unreachable),
		"format=" + b.format,
		fmt.Sprintf("budget=%d", b.budget),
		"precision=" + b.precision.String(),
		fmt.Sprintf("keepunreachable=%t", b.keepUnreachable),
		"src=" + engine.Fingerprint(b.sources...),
	}, "\x00")
	sum := sha256.Sum256([]byte(canon))
	return hex.EncodeToString(sum[:])
}
