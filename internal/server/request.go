package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strconv"
	"strings"

	"deadmembers/internal/api"
	"deadmembers/internal/callgraph"
	"deadmembers/internal/deadmember"
	"deadmembers/internal/engine"
)

// httpError is a handler failure carrying the status code to report.
type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...interface{}) *httpError {
	return &httpError{http.StatusBadRequest, fmt.Sprintf(format, args...)}
}

// bundle is a decoded request: the source files plus the option set,
// mirroring the corresponding CLI's flags one for one so a bundle and a
// command line describe the same run.
type bundle struct {
	sources []engine.Source
	opts    deadmember.Options

	// analyze sections (deadmem -v / -classes / -unreachable)
	verbose     bool
	classes     bool
	unreachable bool

	// lint (deadlint -format / -budget)
	format string
	budget int

	// strip (deadstrip -keep-unreachable)
	keepUnreachable bool
}


// parseRequest decodes a request in either transport:
//
//   - Content-Type application/json: a jsonRequest bundle (any number of
//     files, full option set);
//   - anything else: the raw body is one source file, named by the ?file=
//     query parameter, with options passed as query parameters named after
//     the CLI flags (callgraph, sizeof, no-delete-rule, trust-downcasts,
//     writes-are-uses, library, v, classes, unreachable, format, budget,
//     keep-unreachable).
//
// The caller must have wrapped r.Body in http.MaxBytesReader; an
// over-limit body surfaces here as a 413.
func parseRequest(r *http.Request) (*bundle, *httpError) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return nil, &httpError{http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit)}
		}
		return nil, badRequest("reading body: %v", err)
	}

	ct := r.Header.Get("Content-Type")
	if mt, _, err := mime.ParseMediaType(ct); err == nil && mt == "application/json" {
		return parseJSONRequest(body)
	}
	return parseRawRequest(r, body)
}

func parseJSONRequest(body []byte) (*bundle, *httpError) {
	dec := json.NewDecoder(strings.NewReader(string(body)))
	dec.DisallowUnknownFields()
	var req api.Request
	if err := dec.Decode(&req); err != nil {
		return nil, badRequest("invalid JSON body: %v", err)
	}
	if len(req.Sources) == 0 {
		return nil, badRequest("no sources in request")
	}
	b := &bundle{
		verbose:         req.Verbose,
		classes:         req.Classes,
		unreachable:     req.Unreachable,
		budget:          req.Budget,
		keepUnreachable: req.KeepUnreachable,
	}
	seen := map[string]bool{}
	for i, s := range req.Sources {
		if s.Name == "" {
			return nil, badRequest("sources[%d]: missing name", i)
		}
		if seen[s.Name] {
			return nil, badRequest("duplicate source name %q", s.Name)
		}
		seen[s.Name] = true
		b.sources = append(b.sources, engine.Source{Name: s.Name, Text: s.Text})
	}
	var herr *httpError
	if b.opts, herr = decodeOptions(req.Options); herr != nil {
		return nil, herr
	}
	if b.format, herr = decodeFormat(req.Format); herr != nil {
		return nil, herr
	}
	return b, nil
}

func parseRawRequest(r *http.Request, body []byte) (*bundle, *httpError) {
	q := r.URL.Query()
	name := q.Get("file")
	if name == "" {
		name = "input.mcc"
	}
	b := &bundle{
		sources: []engine.Source{{Name: name, Text: string(body)}},
	}
	boolParam := func(key string) (bool, *httpError) {
		v := q.Get(key)
		if v == "" {
			return false, nil
		}
		on, err := strconv.ParseBool(v)
		if err != nil {
			return false, badRequest("invalid %s=%q", key, v)
		}
		return on, nil
	}
	var herr *httpError
	opts := api.Options{
		CallGraph: q.Get("callgraph"),
		Sizeof:    q.Get("sizeof"),
	}
	if lib := q.Get("library"); lib != "" {
		opts.Library = strings.Split(lib, ",")
	}
	for _, p := range []struct {
		key  string
		dest *bool
	}{
		{"no-delete-rule", &opts.NoDeleteRule},
		{"trust-downcasts", &opts.TrustDowncasts},
		{"writes-are-uses", &opts.WritesAreUses},
		{"v", &b.verbose},
		{"classes", &b.classes},
		{"unreachable", &b.unreachable},
		{"keep-unreachable", &b.keepUnreachable},
	} {
		if *p.dest, herr = boolParam(p.key); herr != nil {
			return nil, herr
		}
	}
	if v := q.Get("budget"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return nil, badRequest("invalid budget=%q", v)
		}
		b.budget = n
	}
	if b.opts, herr = decodeOptions(opts); herr != nil {
		return nil, herr
	}
	if b.format, herr = decodeFormat(q.Get("format")); herr != nil {
		return nil, herr
	}
	return b, nil
}

// decodeOptions maps the wire option names (identical to the CLI flag
// values) onto deadmember.Options, with the same defaults as the CLIs.
func decodeOptions(o api.Options) (deadmember.Options, *httpError) {
	opts := deadmember.Options{
		NoDeleteSpecialCase: o.NoDeleteRule,
		TrustDowncasts:      o.TrustDowncasts,
		WritesAreUses:       o.WritesAreUses,
		LibraryClasses:      o.Library,
	}
	switch strings.ToLower(o.CallGraph) {
	case "", "rta":
		opts.CallGraph = callgraph.RTA
	case "cha":
		opts.CallGraph = callgraph.CHA
	case "all":
		opts.CallGraph = callgraph.ALL
	default:
		return opts, badRequest("unknown callgraph %q", o.CallGraph)
	}
	switch strings.ToLower(o.Sizeof) {
	case "", "ignore":
		opts.Sizeof = deadmember.SizeofIgnore
	case "conservative":
		opts.Sizeof = deadmember.SizeofConservative
	default:
		return opts, badRequest("unknown sizeof %q", o.Sizeof)
	}
	return opts, nil
}

func decodeFormat(format string) (string, *httpError) {
	switch format {
	case "":
		return "text", nil
	case "text", "json", "sarif":
		return format, nil
	default:
		return "", badRequest("unknown format %q", format)
	}
}

// artifactKey is the content address of a rendered response in the
// persist store: a hash of the endpoint, every option that affects the
// rendered bytes, and the compilation fingerprint of the sources. Two
// requests share a key exactly when their responses are byte-identical
// by construction.
func artifactKey(endpoint string, b *bundle) string {
	canon := strings.Join([]string{
		endpoint,
		"cg=" + b.opts.CallGraph.String(),
		"sizeof=" + b.opts.Sizeof.String(),
		fmt.Sprintf("nodelete=%t", b.opts.NoDeleteSpecialCase),
		fmt.Sprintf("downcasts=%t", b.opts.TrustDowncasts),
		fmt.Sprintf("writesareuses=%t", b.opts.WritesAreUses),
		"lib=" + strings.Join(b.opts.LibraryClasses, ","),
		fmt.Sprintf("v=%t", b.verbose),
		fmt.Sprintf("classes=%t", b.classes),
		fmt.Sprintf("unreachable=%t", b.unreachable),
		"format=" + b.format,
		fmt.Sprintf("budget=%d", b.budget),
		fmt.Sprintf("keepunreachable=%t", b.keepUnreachable),
		"src=" + engine.Fingerprint(b.sources...),
	}, "\x00")
	sum := sha256.Sum256([]byte(canon))
	return hex.EncodeToString(sum[:])
}
