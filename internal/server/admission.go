package server

import (
	"context"
	"errors"
	"sync/atomic"
)

// errBusy is returned by admission.acquire when the service is saturated:
// every execution slot is busy and the wait queue is full. Handlers map
// it to 429 Too Many Requests with a Retry-After header.
var errBusy = errors.New("server busy: all slots in use and queue full")

// admission is a semaphore-based admission controller: at most
// maxInflight requests execute concurrently, at most maxQueue more wait
// for a slot, and everything beyond that is rejected immediately — the
// server sheds load instead of accumulating unbounded goroutines under a
// traffic spike.
type admission struct {
	slots    chan struct{}
	maxQueue int32
	queued   atomic.Int32
}

func newAdmission(maxInflight, maxQueue int) *admission {
	if maxInflight < 1 {
		maxInflight = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &admission{
		slots:    make(chan struct{}, maxInflight),
		maxQueue: int32(maxQueue),
	}
}

// acquire takes an execution slot, waiting in the bounded queue when all
// slots are busy. It returns errBusy when the queue is full and the
// context's error when the caller gives up (client disconnect, deadline).
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.slots <- struct{}{}:
		return nil
	default:
	}
	if a.queued.Add(1) > a.maxQueue {
		a.queued.Add(-1)
		return errBusy
	}
	defer a.queued.Add(-1)
	select {
	case a.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns an execution slot; it must pair with a nil acquire.
func (a *admission) release() { <-a.slots }

// inflight is the number of slots currently held.
func (a *admission) inflight() int { return len(a.slots) }

// queueLen is the number of requests waiting for a slot.
func (a *admission) queueLen() int { return int(a.queued.Load()) }
