package server

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"time"

	"deadmembers/internal/persist"
)

// latencyBuckets are the upper bounds (seconds) of the request-duration
// histogram, chosen to straddle both cache hits (microseconds) and cold
// compiles of large bundles (seconds).
var latencyBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 2.5, 10}

// metrics aggregates server-side counters for the /metrics endpoint. All
// methods are safe for concurrent use; exposition is deterministic
// (sorted label sets) so tests and scrapers see stable output.
type metrics struct {
	mu        sync.Mutex
	requests  map[reqKey]int64
	latencies map[string]*histogram
	degraded  int64
	rejected  int64

	// ewmaSecs tracks the recent average service time (exponentially
	// weighted, α=0.2) across all endpoints; the adaptive Retry-After
	// hint is derived from it.
	ewmaSecs float64
	ewmaInit bool
}

// ewmaAlpha weights the newest sample in the service-time average.
const ewmaAlpha = 0.2

type reqKey struct {
	endpoint string
	code     int
}

type histogram struct {
	counts []int64 // one per bucket, plus a final +Inf bucket
	sum    float64
	count  int64
}

func newMetrics() *metrics {
	return &metrics{
		requests:  map[reqKey]int64{},
		latencies: map[string]*histogram{},
	}
}

// observe records one finished request.
func (m *metrics) observe(endpoint string, code int, took time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[reqKey{endpoint, code}]++
	h := m.latencies[endpoint]
	if h == nil {
		h = &histogram{counts: make([]int64, len(latencyBuckets)+1)}
		m.latencies[endpoint] = h
	}
	secs := took.Seconds()
	i := sort.SearchFloat64s(latencyBuckets, secs)
	h.counts[i]++
	h.sum += secs
	h.count++
	if !m.ewmaInit {
		m.ewmaSecs, m.ewmaInit = secs, true
	} else {
		m.ewmaSecs = ewmaAlpha*secs + (1-ewmaAlpha)*m.ewmaSecs
	}
}

// avgServiceSeconds returns the recent average service time, or 0 when
// no request has completed yet.
func (m *metrics) avgServiceSeconds() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ewmaSecs
}

// markDegraded counts a response produced from a degraded compilation or
// analysis (a pipeline stage panicked and was contained).
func (m *metrics) markDegraded() {
	m.mu.Lock()
	m.degraded++
	m.mu.Unlock()
}

// markRejected counts a request shed by the admission controller.
func (m *metrics) markRejected() {
	m.mu.Lock()
	m.rejected++
	m.mu.Unlock()
}

// gauges are point-in-time values sampled at scrape: cache state from the
// engine session, inflight/queued from the admission controller.
type gauges struct {
	CacheHits      int
	CacheCompiles  int
	CacheEvictions int
	CacheEntries   int
	CacheBytes     int64
	Inflight       int
	Queued         int

	// Persist is the artifact-store snapshot (nil = persistence off).
	Persist *persist.Stats
	// Chaos is the injected-fault count by kind (nil = chaos off).
	Chaos map[string]int64
}

// writePrometheus renders the Prometheus text exposition format.
func (m *metrics) writePrometheus(w io.Writer, g gauges) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintf(w, "# HELP deadmemd_requests_total Requests served, by endpoint and status code.\n")
	fmt.Fprintf(w, "# TYPE deadmemd_requests_total counter\n")
	keys := make([]reqKey, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].endpoint != keys[j].endpoint {
			return keys[i].endpoint < keys[j].endpoint
		}
		return keys[i].code < keys[j].code
	})
	for _, k := range keys {
		fmt.Fprintf(w, "deadmemd_requests_total{endpoint=%q,code=\"%d\"} %d\n", k.endpoint, k.code, m.requests[k])
	}

	fmt.Fprintf(w, "# HELP deadmemd_request_duration_seconds Request latency, by endpoint.\n")
	fmt.Fprintf(w, "# TYPE deadmemd_request_duration_seconds histogram\n")
	endpoints := make([]string, 0, len(m.latencies))
	for e := range m.latencies {
		endpoints = append(endpoints, e)
	}
	sort.Strings(endpoints)
	for _, e := range endpoints {
		h := m.latencies[e]
		var cum int64
		for i, ub := range latencyBuckets {
			cum += h.counts[i]
			fmt.Fprintf(w, "deadmemd_request_duration_seconds_bucket{endpoint=%q,le=%q} %d\n",
				e, formatBucket(ub), cum)
		}
		cum += h.counts[len(latencyBuckets)]
		fmt.Fprintf(w, "deadmemd_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", e, cum)
		fmt.Fprintf(w, "deadmemd_request_duration_seconds_sum{endpoint=%q} %g\n", e, h.sum)
		fmt.Fprintf(w, "deadmemd_request_duration_seconds_count{endpoint=%q} %d\n", e, h.count)
	}

	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("deadmemd_cache_hits_total", "Session-cache hits (served without a frontend compile).", int64(g.CacheHits))
	counter("deadmemd_cache_compiles_total", "Frontend compiles performed (cache misses).", int64(g.CacheCompiles))
	counter("deadmemd_cache_evictions_total", "Cache entries evicted to enforce the configured bounds.", int64(g.CacheEvictions))
	gauge("deadmemd_cache_entries", "Compilations currently cached.", int64(g.CacheEntries))
	gauge("deadmemd_cache_bytes", "Source bytes retained by the cache.", g.CacheBytes)
	gauge("deadmemd_inflight", "Requests currently holding an execution slot.", int64(g.Inflight))
	gauge("deadmemd_queued", "Requests waiting for an execution slot.", int64(g.Queued))
	counter("deadmemd_degraded_total", "Responses produced from degraded (panic-contained) runs.", m.degraded)
	counter("deadmemd_rejected_total", "Requests shed by the admission controller (429).", m.rejected)

	if g.Persist != nil {
		p := g.Persist
		counter("deadmemd_persist_hits_total", "Responses served from the on-disk artifact store (no recompile).", p.Hits)
		counter("deadmemd_persist_misses_total", "Artifact-store lookups that fell through to the pipeline.", p.Misses)
		counter("deadmemd_persist_writes_total", "Artifacts durably persisted.", p.Writes)
		counter("deadmemd_persist_write_errors_total", "Failed artifact persists (non-fatal; artifact not cached).", p.WriteErrors)
		counter("deadmemd_persist_corrupt_total", "Records that failed validation on read and were quarantined.", p.Corrupt)
		counter("deadmemd_persist_served_corrupt_total", "Corrupt records served to a client (MUST be zero).", p.ServedCorrupt)
		counter("deadmemd_persist_evictions_total", "Records evicted to enforce the on-disk byte bound.", p.Evictions)
		counter("deadmemd_persist_quarantined_total", "Corrupt records moved into quarantine/ for post-mortem.", p.Quarantined)
		counter("deadmemd_persist_quarantine_evictions_total", "Quarantined files deleted to enforce the quarantine bound.", p.QuarantineEvictions)
		gauge("deadmemd_persist_entries", "Records currently on disk.", int64(p.Entries))
		gauge("deadmemd_persist_bytes", "Encoded bytes currently on disk.", p.Bytes)
		gauge("deadmemd_persist_quarantine_entries", "Files currently in quarantine.", int64(p.QuarantineEntries))
		gauge("deadmemd_persist_quarantine_bytes", "Bytes currently in quarantine.", p.QuarantineBytes)
	}

	if g.Chaos != nil {
		fmt.Fprintf(w, "# HELP deadmemd_chaos_injected_total Faults injected by the chaos layer, by kind.\n")
		fmt.Fprintf(w, "# TYPE deadmemd_chaos_injected_total counter\n")
		kinds := make([]string, 0, len(g.Chaos))
		for k := range g.Chaos {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		for _, k := range kinds {
			fmt.Fprintf(w, "deadmemd_chaos_injected_total{kind=%q} %d\n", k, g.Chaos[k])
		}
	}
}

// formatBucket renders a bucket bound the way Prometheus clients
// conventionally do (shortest decimal, no exponent for these magnitudes).
func formatBucket(ub float64) string {
	if ub == math.Trunc(ub) {
		return strconv.FormatFloat(ub, 'f', 1, 64)
	}
	return strconv.FormatFloat(ub, 'g', -1, 64)
}
