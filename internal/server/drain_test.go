package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"deadmembers/internal/engine"
)

// TestDrainLetsInflightFinish is the graceful-drain contract, end to end:
// once StartDrain is called, /readyz reports 503 and new analysis work is
// refused — but a request already holding an execution slot runs to
// completion and returns its full 200 response.
func TestDrainLetsInflightFinish(t *testing.T) {
	gate := make(chan struct{})
	s, err := New(Config{Workers: 1, MaxInflight: 2, MaxQueue: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Swap in a session whose compiles block on the gate so the in-flight
	// request is deterministically mid-pipeline when the drain starts.
	s.sess = engine.NewBoundedSession(engine.Config{
		Workers:    1,
		ParseFault: func(string) { <-gate },
	}, engine.Limits{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	type result struct {
		code int
		body string
	}
	inflight := make(chan result, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/analyze?file=sample.mcc", "text/x-mcc", strings.NewReader(sample))
		if err != nil {
			inflight <- result{0, err.Error()}
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		inflight <- result{resp.StatusCode, string(b)}
	}()

	deadline := time.Now().Add(5 * time.Second)
	for s.adm.inflight() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("in-flight request never acquired a slot")
		}
		time.Sleep(time.Millisecond)
	}

	s.StartDrain()

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining: status %d, want 503", resp.StatusCode)
	}

	resp2, body := post(t, ts.URL+"/v1/analyze?file=new.mcc", "text/x-mcc", "int main() { return 0; }")
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("new request while draining: status %d, want 503 (body: %s)", resp2.StatusCode, body)
	}
	if !strings.Contains(body, "draining") {
		t.Errorf("refusal body should say draining, got: %s", body)
	}

	// The in-flight request must still be running, not killed by the drain.
	select {
	case r := <-inflight:
		t.Fatalf("in-flight request terminated by drain: status %d, body: %s", r.code, r.body)
	case <-time.After(50 * time.Millisecond):
	}

	close(gate)
	select {
	case r := <-inflight:
		if r.code != http.StatusOK {
			t.Fatalf("in-flight request: status %d, want 200 (body: %s)", r.code, r.body)
		}
		if !strings.Contains(r.body, "Gadget::unused") {
			t.Errorf("in-flight response incomplete:\n%s", r.body)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never completed after gate release")
	}
}
