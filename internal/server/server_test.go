package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"deadmembers/internal/api"
	"deadmembers/internal/deadmember"
	"deadmembers/internal/engine"
	"deadmembers/internal/heaplive"
	"deadmembers/internal/lint"
	"deadmembers/internal/strip"
	"deadmembers/internal/textreport"
)

const sample = `
class Gadget {
public:
	int used;
	int unused;
	Gadget() : used(1), unused(2) {}
};
int main() {
	Gadget g;
	return g.used;
}
`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, url, contentType, body string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(url, contentType, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

// TestAnalyzeMatchesCLIRenderer: the /v1/analyze body must be exactly
// what cmd/deadmem prints to stdout for the same input — both sides go
// through internal/textreport, and this pins the transport to it.
func TestAnalyzeMatchesCLIRenderer(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, body := post(t, ts.URL+"/v1/analyze?file=sample.mcc", "text/x-mcc", sample)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body: %s", resp.StatusCode, body)
	}

	comp := engine.Compile(engine.Config{Workers: 1}, engine.Source{Name: "sample.mcc", Text: sample})
	if err := comp.Err(); err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := textreport.Write(&want, comp.Analyze(deadmember.Options{}), textreport.Options{}); err != nil {
		t.Fatal(err)
	}
	if body != want.String() {
		t.Errorf("server body diverges from CLI renderer:\n--- server ---\n%s--- cli ---\n%s", body, want.String())
	}
	if !strings.Contains(body, "Gadget::unused") {
		t.Errorf("missing dead member in body:\n%s", body)
	}
}

// TestAnalyzeJSONBundle: the JSON transport accepts multi-file bundles
// with the full option set.
func TestAnalyzeJSONBundle(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	req := api.Request{
		Sources: []api.Source{
			{Name: "a.mcc", Text: "class A { public: int x; A() : x(1) {} };\n"},
			{Name: "b.mcc", Text: "int main() { A a; return a.x; }\n"},
		},
		Options: api.Options{CallGraph: "cha"},
		Classes: true,
	}
	body, _ := json.Marshal(req)
	resp, got := post(t, ts.URL+"/v1/analyze", "application/json", string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body: %s", resp.StatusCode, got)
	}
	if !strings.Contains(got, "per-class breakdown:") {
		t.Errorf("classes section missing:\n%s", got)
	}
}

// chainSample has a two-member-deep dead store that only the heap
// precision tier reports, so the tiers render observably different
// bodies.
const chainSample = `
class Inner {
public:
	int val;
	Inner() : val(0) {}
};
class Outer {
public:
	Inner in;
	int tag;
	Outer() : tag(0) {}
};
int main() {
	Outer o;
	o.in.val = 1;
	o.in.val = 2;
	print(o.in.val + o.tag);
	return 0;
}
`

// TestLintPrecisionMatchesCLIRenderer: every precision tier's /v1/lint
// body must be byte-identical to what deadlint -precision=<tier> prints
// for the same input, an empty precision must alias the flow tier
// (legacy requests), and the heap tier must visibly differ from flow on
// a chained fixture — proof the knob reaches the analysis.
func TestLintPrecisionMatchesCLIRenderer(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	comp := engine.Compile(engine.Config{Workers: 1}, engine.Source{Name: "chain.mcc", Text: chainSample})
	if err := comp.Err(); err != nil {
		t.Fatal(err)
	}
	bodies := map[string]string{}
	for _, p := range heaplive.Tiers() {
		res := comp.Lint(deadmember.Options{}, lint.Options{Precision: p})
		var want bytes.Buffer
		if err := lint.WriteText(&want, res); err != nil {
			t.Fatal(err)
		}
		resp, body := post(t, ts.URL+"/v1/lint?file=chain.mcc&precision="+p.String(), "text/x-mcc", chainSample)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d, body: %s", p, resp.StatusCode, body)
		}
		if body != want.String() {
			t.Errorf("%s: body diverges from CLI writer:\n--- server ---\n%s--- cli ---\n%s", p, body, want.String())
		}
		bodies[p.String()] = body
	}

	_, legacy := post(t, ts.URL+"/v1/lint?file=chain.mcc", "text/x-mcc", chainSample)
	if legacy != bodies["flow"] {
		t.Errorf("empty precision diverges from the flow tier:\n--- legacy ---\n%s--- flow ---\n%s", legacy, bodies["flow"])
	}
	if bodies["heap"] == bodies["flow"] {
		t.Error("heap tier body identical to flow on the chained fixture; the knob is not reaching the analysis")
	}

	resp, body := post(t, ts.URL+"/v1/lint?precision=bogus", "text/x-mcc", chainSample)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bogus precision: status %d, body: %s", resp.StatusCode, body)
	}
}

// TestLintFormats: each format matches the shared writer and carries the
// right content type.
func TestLintFormats(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	comp := engine.Compile(engine.Config{Workers: 1}, engine.Source{Name: "sample.mcc", Text: sample})
	res := comp.Lint(deadmember.Options{}, lint.Options{})

	for _, tc := range []struct {
		format      string
		contentType string
		write       func(io.Writer, *lint.Result) error
	}{
		{"text", "text/plain; charset=utf-8", lint.WriteText},
		{"json", "application/json", lint.WriteJSON},
		{"sarif", "application/json", lint.WriteSARIF},
	} {
		resp, body := post(t, ts.URL+"/v1/lint?file=sample.mcc&format="+tc.format, "text/x-mcc", sample)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d, body: %s", tc.format, resp.StatusCode, body)
		}
		if got := resp.Header.Get("Content-Type"); got != tc.contentType {
			t.Errorf("%s: Content-Type = %q, want %q", tc.format, got, tc.contentType)
		}
		var want bytes.Buffer
		if err := tc.write(&want, res); err != nil {
			t.Fatal(err)
		}
		if body != want.String() {
			t.Errorf("%s: body diverges from CLI writer:\n--- server ---\n%s--- cli ---\n%s", tc.format, body, want.String())
		}
	}
}

// TestStripEndpoint: the stripped sources match the shared writer, and
// the transform never touches the shared session cache.
func TestStripEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	resp, body := post(t, ts.URL+"/v1/strip?file=sample.mcc", "text/x-mcc", sample)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body: %s", resp.StatusCode, body)
	}

	comp := engine.Compile(engine.Config{Workers: 1}, engine.Source{Name: "sample.mcc", Text: sample})
	out := comp.Strip(deadmember.Options{}, strip.Options{})
	var want bytes.Buffer
	if err := strip.WriteSources(&want, out.Sources); err != nil {
		t.Fatal(err)
	}
	if body != want.String() {
		t.Errorf("strip body diverges:\n--- server ---\n%s--- cli ---\n%s", body, want.String())
	}
	if strings.Contains(body, "unused") {
		t.Errorf("dead member survived the strip:\n%s", body)
	}
	if st := s.Session().Stats(); st.Compiles != 0 || st.Entries != 0 {
		t.Errorf("strip polluted the shared session cache: %+v", st)
	}
}

func TestErrorMapping(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxRequestBytes: 128})

	get, err := http.Get(ts.URL + "/v1/analyze")
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET analyze: status %d, want 405", get.StatusCode)
	}

	for _, tc := range []struct {
		name, url, contentType, body string
		want                         int
	}{
		{"bad json", "/v1/analyze", "application/json", "{not json", http.StatusBadRequest},
		{"no sources", "/v1/analyze", "application/json", `{"sources":[]}`, http.StatusBadRequest},
		{"unknown option", "/v1/analyze?callgraph=psychic", "text/x-mcc", "int main() { return 0; }", http.StatusBadRequest},
		{"unknown format", "/v1/lint?format=yaml", "text/x-mcc", "int main() { return 0; }", http.StatusBadRequest},
		{"compile error", "/v1/analyze?file=bad.mcc", "text/x-mcc", "class {", http.StatusUnprocessableEntity},
		{"oversized body", "/v1/analyze", "text/x-mcc", strings.Repeat("x", 4096), http.StatusRequestEntityTooLarge},
	} {
		resp, body := post(t, ts.URL+tc.url, tc.contentType, tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d (body: %s)", tc.name, resp.StatusCode, tc.want, body)
		}
	}
}

// TestRequestDeadline: an already-expired per-request deadline surfaces
// as 504, threaded through the engine's cancellation points.
func TestRequestDeadline(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, RequestTimeout: time.Nanosecond})
	resp, body := post(t, ts.URL+"/v1/analyze?file=sample.mcc", "text/x-mcc", sample)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("status %d, want 504 (body: %s)", resp.StatusCode, body)
	}
}

func TestProbesAndDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d, want 200", path, resp.StatusCode)
		}
	}

	s.StartDrain()
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining: status %d, want 503", resp.StatusCode)
	}
	resp2, body := post(t, ts.URL+"/v1/analyze?file=s.mcc", "text/x-mcc", sample)
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("analyze while draining: status %d, want 503 (body: %s)", resp2.StatusCode, body)
	}
	// Liveness stays green while draining: the process is healthy, just
	// not accepting work.
	resp3, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Errorf("healthz while draining: status %d, want 200", resp3.StatusCode)
	}
}

// TestMetricsExposition: the endpoint serves every documented series in
// Prometheus text format after traffic has flowed.
func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	post(t, ts.URL+"/v1/analyze?file=s.mcc", "text/x-mcc", sample)
	post(t, ts.URL+"/v1/analyze?file=s.mcc", "text/x-mcc", sample) // cache hit
	post(t, ts.URL+"/v1/lint?file=s.mcc", "text/x-mcc", sample)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	body := string(b)
	for _, want := range []string{
		`deadmemd_requests_total{endpoint="/v1/analyze",code="200"} 2`,
		`deadmemd_requests_total{endpoint="/v1/lint",code="200"} 1`,
		`deadmemd_request_duration_seconds_count{endpoint="/v1/analyze"} 2`,
		`deadmemd_request_duration_seconds_bucket{endpoint="/v1/analyze",le="+Inf"} 2`,
		"deadmemd_cache_hits_total 2",
		"deadmemd_cache_compiles_total 1",
		"deadmemd_cache_evictions_total 0",
		"deadmemd_cache_entries 1",
		"deadmemd_inflight 0",
		"deadmemd_queued 0",
		"deadmemd_degraded_total 0",
		"deadmemd_rejected_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

// TestHandlerPanicContained: a panic below a handler becomes a 500, not a
// dead connection, and the server keeps serving.
func TestHandlerPanicContained(t *testing.T) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Mount a handler that panics outside the engine's own containment
	// (simulating a bug in the transport layer itself).
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/analyze", s.endpoint("/v1/analyze", func(context.Context, *bundle) (*handlerResult, *httpError) {
		panic("handler bug")
	}))
	ts := httptest.NewServer(mux)
	defer ts.Close()
	resp, body := post(t, ts.URL+"/v1/analyze?file=s.mcc", "text/x-mcc", sample)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("status %d, want 500 (body: %s)", resp.StatusCode, body)
	}
	if !strings.Contains(body, "handler bug") {
		t.Errorf("panic message lost: %s", body)
	}
}
