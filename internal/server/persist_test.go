package server

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"deadmembers/internal/engine"
)

// TestWarmRestartServesFromDisk is the warm-restart acceptance criterion:
// a response persisted by one server process is served byte-identically
// by a fresh process over the same directory — persist-hit metric
// increments, zero frontend compiles.
func TestWarmRestartServesFromDisk(t *testing.T) {
	dir := t.TempDir()

	s1, ts1 := newTestServer(t, Config{Workers: 1, PersistDir: dir})
	resp1, body1 := post(t, ts1.URL+"/v1/analyze?file=sample.mcc", "text/x-mcc", sample)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first run: status %d, body: %s", resp1.StatusCode, body1)
	}
	if st := s1.Store().Stats(); st.Writes != 1 || st.Misses != 1 {
		t.Fatalf("first run persist stats = %+v, want 1 miss + 1 write", st)
	}
	ts1.Close() // process one "dies"; the record is already fsynced

	s2, ts2 := newTestServer(t, Config{Workers: 1, PersistDir: dir})
	resp2, body2 := post(t, ts2.URL+"/v1/analyze?file=sample.mcc", "text/x-mcc", sample)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("restarted run: status %d, body: %s", resp2.StatusCode, body2)
	}
	if body2 != body1 {
		t.Errorf("restarted body diverges:\n--- before ---\n%s--- after ---\n%s", body1, body2)
	}
	if got := resp2.Header.Get("X-Deadmemd-Cache"); got != "persist" {
		t.Errorf("X-Deadmemd-Cache = %q, want \"persist\"", got)
	}
	if st := s2.Session().Stats(); st.Compiles != 0 {
		t.Errorf("restarted server compiled %d times; the artifact store should have absorbed the request", st.Compiles)
	}
	if st := s2.Store().Stats(); st.Hits != 1 {
		t.Errorf("restarted persist stats = %+v, want exactly 1 hit", st)
	}

	mresp, err := http.Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	b, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{
		"deadmemd_persist_hits_total 1",
		"deadmemd_cache_compiles_total 0",
	} {
		if !strings.Contains(string(b), want) {
			t.Errorf("metrics missing %q:\n%s", want, b)
		}
	}
}

// TestDegradedResponsesNotPersisted: a panic-salvaged response carries
// the degraded marker and must never enter the artifact store — a
// restart should recompute it at full fidelity, not replay the salvage.
func TestDegradedResponsesNotPersisted(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{Workers: 1, PersistDir: dir})
	s.sess = engine.NewBoundedSession(engine.Config{
		Workers:    1,
		ParseFault: func(string) { panic("injected parse fault") },
	}, engine.Limits{})

	resp, body := post(t, ts.URL+"/v1/analyze?file=sample.mcc", "text/x-mcc", sample)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Deadmemd-Degraded") != "true" {
		t.Fatal("response not marked degraded; test lost its premise")
	}
	if st := s.Store().Stats(); st.Writes != 0 || st.Entries != 0 {
		t.Errorf("degraded artifact persisted: %+v", st)
	}
}

// TestRetryAfterOverride: a configured -retry-after wins over the
// adaptive estimate, rounded up to whole seconds.
func TestRetryAfterOverride(t *testing.T) {
	s, err := New(Config{Workers: 1, RetryAfter: 2500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.retryAfterSeconds(); got != 3 {
		t.Errorf("retryAfterSeconds = %d, want 3 (ceil of 2.5s)", got)
	}
}

// TestRetryAfterAdapts: with no override the hint tracks the recent
// average service time scaled by the backlog, clamped to [1s, 60s].
func TestRetryAfterAdapts(t *testing.T) {
	s, err := New(Config{Workers: 1, MaxInflight: 2, MaxQueue: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.retryAfterSeconds(); got != 1 {
		t.Errorf("no samples: retryAfterSeconds = %d, want fallback 1", got)
	}

	prime := func(secs float64) {
		s.met.mu.Lock()
		s.met.ewmaSecs, s.met.ewmaInit = secs, true
		s.met.mu.Unlock()
	}
	prime(10) // empty queue: 10s * (0+1)/2 slots = 5s
	if got := s.retryAfterSeconds(); got != 5 {
		t.Errorf("retryAfterSeconds = %d, want 5", got)
	}
	prime(1e6)
	if got := s.retryAfterSeconds(); got != 60 {
		t.Errorf("retryAfterSeconds = %d, want clamp 60", got)
	}
	prime(0.001)
	if got := s.retryAfterSeconds(); got != 1 {
		t.Errorf("retryAfterSeconds = %d, want floor 1", got)
	}
}
