package server

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"deadmembers/internal/api"
	"deadmembers/internal/client"
	"deadmembers/internal/deadmember"
	"deadmembers/internal/engine"
	"deadmembers/internal/lint"
	"deadmembers/internal/textreport"
)

// TestChaosSoak is the crash-safety acceptance test: a chaos-enabled
// server (faulty disk under the artifact store, latency/503/drop on the
// wire) is hammered through the retrying client, killed abruptly
// mid-soak — with one on-disk record deliberately corrupted while it is
// down — and restarted on the same address over the same persist
// directory. The invariants:
//
//   - every successful response is byte-identical to the renderer's
//     ground truth (failures are allowed; wrong answers are not);
//   - corrupt bytes are never served (quarantined and recomputed);
//   - the restarted server recovers its hit rate from disk.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test; run without -short")
	}
	dir := t.TempDir()

	// Ground truth for each bundle, rendered through the same writers
	// the server uses.
	type job struct {
		call string // "analyze" | "lint"
		req  *api.Request
		want string
	}
	var jobs []job
	for i := 0; i < 4; i++ {
		text := fmt.Sprintf(`class C%d {
public:
	int used;
	int unused;
	C%d() : used(1), unused(2) {}
};
int main() { C%d c; return c.used; }
`, i, i, i)
		name := fmt.Sprintf("c%d.mcc", i)
		comp := engine.Compile(engine.Config{Workers: 1}, engine.Source{Name: name, Text: text})
		if err := comp.Err(); err != nil {
			t.Fatal(err)
		}
		req := &api.Request{Sources: []api.Source{{Name: name, Text: text}}}
		var abuf bytes.Buffer
		if err := textreport.Write(&abuf, comp.Analyze(deadmember.Options{}), textreport.Options{}); err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, job{"analyze", req, abuf.String()})
		var lbuf bytes.Buffer
		if err := lint.WriteText(&lbuf, comp.Lint(deadmember.Options{}, lint.Options{})); err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, job{"lint", req, lbuf.String()})
	}

	cfg := Config{
		Workers:      1,
		PersistDir:   dir,
		ChaosRate:    0.08,
		ChaosLatency: time.Millisecond,
		MaxInflight:  4,
		MaxQueue:     64,
	}
	boot := func(addr string, seed int64) (*Server, *http.Server, net.Listener) {
		t.Helper()
		c := cfg
		c.ChaosSeed = seed
		s, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		hs := &http.Server{Handler: s.Handler()}
		go hs.Serve(ln)
		return s, hs, ln
	}
	s1, hs1, ln := boot("127.0.0.1:0", 42)
	addr := ln.Addr().String()

	cl := client.New(client.Config{
		BaseURL:     "http://" + addr,
		MaxAttempts: 10,
		BaseBackoff: 5 * time.Millisecond,
		MaxBackoff:  250 * time.Millisecond,
		// The restart gap is part of the test; fail-fast would turn
		// expected downtime into skipped coverage.
		BreakerThreshold: -1,
	})

	var (
		mu                  sync.Mutex
		successes, failures int
	)
	runPhase := func(workers, perWorker int) {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					j := jobs[(w*perWorker+i)%len(jobs)]
					ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
					var res *client.Result
					var err error
					if j.call == "analyze" {
						res, err = cl.Analyze(ctx, j.req)
					} else {
						res, err = cl.Lint(ctx, j.req)
					}
					cancel()
					mu.Lock()
					if err != nil {
						failures++
					} else {
						successes++
						if string(res.Body) != j.want {
							t.Errorf("%s response diverges from ground truth:\n--- got ---\n%s--- want ---\n%s",
								j.call, res.Body, j.want)
						}
					}
					mu.Unlock()
				}
			}(w)
		}
		wg.Wait()
	}

	// Phase 1: soak until every bundle has had many chances to persist.
	runPhase(4, 24)

	recs, err := filepath.Glob(filepath.Join(dir, "objects", "*.rec"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no records persisted during phase 1; the soak cannot test restart recovery")
	}

	// Abrupt kill mid-soak: phase 2 is already in flight when the
	// listener and every open connection are severed with no drain. The
	// client's retries must bridge the gap to the restarted process.
	phase2 := make(chan struct{})
	go func() {
		defer close(phase2)
		runPhase(4, 24)
	}()
	time.Sleep(30 * time.Millisecond)
	hs1.Close()

	// While the server is down, corrupt one live record in place — the
	// torn-write the format exists to catch. The restarted server must
	// quarantine it on first read, never serve it.
	raw, err := os.ReadFile(recs[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(recs[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, hs2, _ := boot(addr, 43)
	defer hs2.Close()
	<-phase2

	mu.Lock()
	t.Logf("soak: %d successes, %d exhausted-retry failures", successes, failures)
	mu.Unlock()
	if successes == 0 {
		t.Fatal("soak produced no successful responses")
	}

	st1, st2 := s1.Store().Stats(), s2.Store().Stats()
	if st1.ServedCorrupt != 0 || st2.ServedCorrupt != 0 {
		t.Errorf("corrupt records served: before restart %d, after %d — must be 0",
			st1.ServedCorrupt, st2.ServedCorrupt)
	}
	if st2.Hits == 0 {
		t.Errorf("restarted server stats = %+v: zero persist hits, warm restart did not recover the cache", st2)
	}
	if st2.Corrupt == 0 {
		t.Errorf("restarted server stats = %+v: the planted corruption was never detected", st2)
	}
	chaosTotal := s1.chaos.Total() + s2.chaos.Total()
	if chaosTotal == 0 {
		t.Error("no faults injected; the soak exercised nothing")
	}
	t.Logf("soak: %d faults injected; store before=%+v after=%+v", chaosTotal, st1, st2)
}
