// Package server implements deadmemd: a long-running HTTP/JSON service
// over the staged analysis engine. It is a transport, not a fork, of the
// batch pipeline — every endpoint renders through the same writers the
// CLIs use (internal/textreport, internal/lint, internal/strip), so the
// response body for a given input is byte-identical to the corresponding
// command's stdout.
//
// Endpoints:
//
//	POST /v1/analyze   dead-member report      (deadmem)
//	POST /v1/lint      findings, text/JSON/SARIF (deadlint)
//	POST /v1/strip     stripped sources        (deadstrip)
//	GET  /healthz      liveness probe
//	GET  /readyz       readiness probe (503 while draining)
//	GET  /metrics      Prometheus text exposition
//
// Production concerns are handled here rather than in handlers: a shared
// bounded engine.Session (LRU, byte-accounted, singleflight), a
// semaphore-based admission controller with a bounded wait queue (429 +
// Retry-After beyond it), per-request deadlines threaded into the
// engine's cancellation points, request body size limits, and panic
// containment per request.
package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"deadmembers/internal/engine"
	"deadmembers/internal/lint"
	"deadmembers/internal/strip"
	"deadmembers/internal/textreport"
)

// statusClientClosedRequest mirrors nginx's nonstandard 499: the client
// went away before a response could be produced.
const statusClientClosedRequest = 499

// retryAfterSeconds is the hint sent with 429 responses.
const retryAfterSeconds = 1

// Config sizes the server. Zero fields take the documented defaults;
// pass a negative value to disable an optional bound.
type Config struct {
	// Workers bounds engine parallelism per request (0 = all cores).
	Workers int

	// CacheMaxBytes bounds the session cache by retained source bytes
	// (default 256 MiB; negative = unbounded).
	CacheMaxBytes int64
	// CacheMaxEntries bounds the session cache entry count (default 128;
	// negative = unbounded).
	CacheMaxEntries int

	// MaxInflight bounds concurrently executing requests (default
	// GOMAXPROCS).
	MaxInflight int
	// MaxQueue bounds requests waiting for an execution slot; beyond it
	// requests are rejected with 429 (default 64; negative = no queue).
	MaxQueue int

	// RequestTimeout is the per-request deadline threaded into the
	// engine's compile/analyze/lint cancellation points (default 60s;
	// negative = none).
	RequestTimeout time.Duration

	// MaxRequestBytes caps the request body (default 64 MiB). Individual
	// files are additionally subject to source.MaxFileSize inside the
	// frontend.
	MaxRequestBytes int64
}

func (c Config) withDefaults() Config {
	if c.CacheMaxBytes == 0 {
		c.CacheMaxBytes = 256 << 20
	}
	if c.CacheMaxEntries == 0 {
		c.CacheMaxEntries = 128
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 64
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.MaxRequestBytes <= 0 {
		c.MaxRequestBytes = 64 << 20
	}
	return c
}

// Server is the deadmemd service: one shared engine session behind an
// admission-controlled HTTP API.
type Server struct {
	cfg      Config
	sess     *engine.Session
	adm      *admission
	met      *metrics
	draining atomic.Bool
	mux      *http.ServeMux
}

// New builds a Server from cfg (see Config for defaults).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	limits := engine.Limits{}
	if cfg.CacheMaxBytes > 0 {
		limits.MaxBytes = cfg.CacheMaxBytes
	}
	if cfg.CacheMaxEntries > 0 {
		limits.MaxEntries = cfg.CacheMaxEntries
	}
	maxQueue := cfg.MaxQueue
	if maxQueue < 0 {
		maxQueue = 0
	}
	s := &Server{
		cfg:  cfg,
		sess: engine.NewBoundedSession(engine.Config{Workers: cfg.Workers}, limits),
		adm:  newAdmission(cfg.MaxInflight, maxQueue),
		met:  newMetrics(),
		mux:  http.NewServeMux(),
	}
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/v1/analyze", s.endpoint("/v1/analyze", s.analyze))
	s.mux.HandleFunc("/v1/lint", s.endpoint("/v1/lint", s.lint))
	s.mux.HandleFunc("/v1/strip", s.endpoint("/v1/strip", s.strip))
	return s
}

// Handler returns the root HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// StartDrain flips /readyz to 503 and makes analysis endpoints refuse new
// work, so load balancers stop routing here while in-flight requests
// finish (pair with http.Server.Shutdown).
func (s *Server) StartDrain() { s.draining.Store(true) }

// Session exposes the shared engine session (used by tests and the CLI's
// startup logging).
func (s *Server) Session() *engine.Session { return s.sess }

// handlerResult is a fully buffered successful response; buffering keeps
// status codes truthful (nothing is written before the pipeline finishes).
type handlerResult struct {
	body        []byte
	contentType string
	degraded    bool
}

// endpoint wraps an analysis handler with the shared transport concerns:
// method check, drain check, body limit, decoding, admission, deadline,
// panic containment, and metrics.
func (s *Server) endpoint(name string, fn func(ctx context.Context, b *bundle) (*handlerResult, *httpError)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		code := http.StatusOK
		defer func() { s.met.observe(name, code, time.Since(start)) }()
		fail := func(herr *httpError) {
			code = herr.code
			http.Error(w, "deadmemd: "+herr.msg, herr.code)
		}

		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			fail(&httpError{http.StatusMethodNotAllowed, "use POST"})
			return
		}
		if s.draining.Load() {
			fail(&httpError{http.StatusServiceUnavailable, "draining"})
			return
		}
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes)
		b, herr := parseRequest(r)
		if herr != nil {
			fail(herr)
			return
		}

		if err := s.adm.acquire(r.Context()); err != nil {
			if errors.Is(err, errBusy) {
				s.met.markRejected()
				w.Header().Set("Retry-After", fmt.Sprint(retryAfterSeconds))
				fail(&httpError{http.StatusTooManyRequests, err.Error()})
			} else {
				fail(&httpError{statusClientClosedRequest, "client closed request"})
			}
			return
		}
		defer s.adm.release()

		ctx := r.Context()
		if s.cfg.RequestTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
			defer cancel()
		}

		var res *handlerResult
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					res, herr = nil, &httpError{http.StatusInternalServerError,
						fmt.Sprintf("internal error: %v", rec)}
				}
			}()
			res, herr = fn(ctx, b)
		}()
		if herr != nil {
			fail(herr)
			return
		}
		if res.degraded {
			s.met.markDegraded()
			w.Header().Set("X-Deadmemd-Degraded", "true")
		}
		w.Header().Set("Content-Type", res.contentType)
		w.Write(res.body)
	}
}

// ctxErr maps a pipeline cancellation onto the transport: deadline → 504,
// client disconnect → 499.
func ctxErr(err error) *httpError {
	if errors.Is(err, context.DeadlineExceeded) {
		return &httpError{http.StatusGatewayTimeout, "analysis deadline exceeded"}
	}
	if errors.Is(err, context.Canceled) {
		return &httpError{statusClientClosedRequest, "client closed request"}
	}
	return &httpError{http.StatusInternalServerError, err.Error()}
}

// compile runs the bundle through the shared session cache.
func (s *Server) compile(ctx context.Context, b *bundle) (*engine.Compilation, *httpError) {
	comp := s.sess.CompileContext(ctx, b.sources...)
	if err := comp.Err(); err != nil {
		if comp.CancelErr() != nil {
			return nil, ctxErr(err)
		}
		return nil, &httpError{http.StatusUnprocessableEntity, "compile: " + err.Error()}
	}
	return comp, nil
}

// analyze serves POST /v1/analyze: the deadmem report.
func (s *Server) analyze(ctx context.Context, b *bundle) (*handlerResult, *httpError) {
	comp, herr := s.compile(ctx, b)
	if herr != nil {
		return nil, herr
	}
	res, _, err := comp.AnalyzeTimedContext(ctx, b.opts)
	if err != nil {
		return nil, ctxErr(err)
	}
	degraded := comp.Degraded() || res.Degraded()
	var buf bytes.Buffer
	if err := textreport.Write(&buf, res, textreport.Options{
		Verbose:     b.verbose,
		PerClass:    b.classes,
		Unreachable: b.unreachable,
		Degraded:    degraded,
	}); err != nil {
		return nil, &httpError{http.StatusInternalServerError, err.Error()}
	}
	return &handlerResult{buf.Bytes(), "text/plain; charset=utf-8", degraded}, nil
}

// lint serves POST /v1/lint: deadlint findings in the requested format.
func (s *Server) lint(ctx context.Context, b *bundle) (*handlerResult, *httpError) {
	comp, herr := s.compile(ctx, b)
	if herr != nil {
		return nil, herr
	}
	res, _, err := comp.LintContext(ctx, b.opts, lint.Options{Budget: b.budget})
	if err != nil {
		return nil, ctxErr(err)
	}
	var buf bytes.Buffer
	contentType := "text/plain; charset=utf-8"
	switch b.format {
	case "json":
		err = lint.WriteJSON(&buf, res)
		contentType = "application/json"
	case "sarif":
		err = lint.WriteSARIF(&buf, res)
		contentType = "application/json"
	default:
		err = lint.WriteText(&buf, res)
	}
	if err != nil {
		return nil, &httpError{http.StatusInternalServerError, err.Error()}
	}
	return &handlerResult{buf.Bytes(), contentType, comp.Degraded() || res.Degraded()}, nil
}

// strip serves POST /v1/strip: the transformed sources. The transform
// consumes its compilation (the ASTs are rewritten in place), so this
// endpoint compiles outside the shared cache instead of destroying
// entries other requests may hold.
func (s *Server) strip(ctx context.Context, b *bundle) (*handlerResult, *httpError) {
	comp := engine.CompileContext(ctx, engine.Config{Workers: s.cfg.Workers}, b.sources...)
	if err := comp.Err(); err != nil {
		if comp.CancelErr() != nil {
			return nil, ctxErr(err)
		}
		return nil, &httpError{http.StatusUnprocessableEntity, "compile: " + err.Error()}
	}
	if comp.Degraded() {
		// Mirrors deadstrip: never emit a transform derived from salvaged
		// results — a degraded analysis could misclassify members.
		s.met.markDegraded()
		return nil, &httpError{http.StatusUnprocessableEntity,
			"refusing to strip from a degraded compilation"}
	}
	out, err := comp.StripContext(ctx, b.opts, strip.Options{KeepUnreachable: b.keepUnreachable})
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctxErr(ctx.Err())
		}
		return nil, &httpError{http.StatusInternalServerError, err.Error()}
	}
	var buf bytes.Buffer
	if err := strip.WriteSources(&buf, out.Sources); err != nil {
		return nil, &httpError{http.StatusInternalServerError, err.Error()}
	}
	return &handlerResult{buf.Bytes(), "text/plain; charset=utf-8", false}, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.sess.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.writePrometheus(w, gauges{
		CacheHits:      st.Hits,
		CacheCompiles:  st.Compiles,
		CacheEvictions: st.Evictions,
		CacheEntries:   st.Entries,
		CacheBytes:     st.Bytes,
		Inflight:       s.adm.inflight(),
		Queued:         s.adm.queueLen(),
	})
}
