// Package server implements deadmemd: a long-running HTTP/JSON service
// over the staged analysis engine. It is a transport, not a fork, of the
// batch pipeline — every endpoint renders through the same writers the
// CLIs use (internal/textreport, internal/lint, internal/strip), so the
// response body for a given input is byte-identical to the corresponding
// command's stdout.
//
// Endpoints:
//
//	POST /v1/analyze   dead-member report      (deadmem)
//	POST /v1/lint      findings, text/JSON/SARIF (deadlint)
//	POST /v1/strip     stripped sources        (deadstrip)
//	GET  /healthz      liveness probe
//	GET  /readyz       readiness probe (503 while draining)
//	GET  /metrics      Prometheus text exposition
//
// Production concerns are handled here rather than in handlers: a shared
// bounded engine.Session (LRU, byte-accounted, singleflight), a
// semaphore-based admission controller with a bounded wait queue (429 +
// Retry-After beyond it), per-request deadlines threaded into the
// engine's cancellation points, request body size limits, and panic
// containment per request.
package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"deadmembers/internal/api"
	"deadmembers/internal/engine"
	"deadmembers/internal/faultinject"
	"deadmembers/internal/lint"
	"deadmembers/internal/persist"
	"deadmembers/internal/strip"
	"deadmembers/internal/textreport"
)

// statusClientClosedRequest mirrors nginx's nonstandard 499: the client
// went away before a response could be produced.
const statusClientClosedRequest = 499

// Config sizes the server. Zero fields take the documented defaults;
// pass a negative value to disable an optional bound.
type Config struct {
	// Workers bounds engine parallelism per request (0 = all cores).
	Workers int

	// CacheMaxBytes bounds the session cache by retained source bytes
	// (default 256 MiB; negative = unbounded).
	CacheMaxBytes int64
	// CacheMaxEntries bounds the session cache entry count (default 128;
	// negative = unbounded).
	CacheMaxEntries int

	// MaxInflight bounds concurrently executing requests (default
	// GOMAXPROCS).
	MaxInflight int
	// MaxQueue bounds requests waiting for an execution slot; beyond it
	// requests are rejected with 429 (default 64; negative = no queue).
	MaxQueue int

	// RequestTimeout is the per-request deadline threaded into the
	// engine's compile/analyze/lint cancellation points (default 60s;
	// negative = none).
	RequestTimeout time.Duration

	// MaxRequestBytes caps the request body (default 64 MiB). Individual
	// files are additionally subject to source.MaxFileSize inside the
	// frontend.
	MaxRequestBytes int64

	// PersistDir, when non-empty, enables the crash-safe artifact tier:
	// rendered responses are stored on disk, content-addressed by
	// (endpoint, options, compilation fingerprint), and served without
	// recompiling — including by a restarted process (internal/persist).
	PersistDir string
	// PersistMaxBytes bounds the on-disk artifact bytes, LRU-evicted
	// (default 1 GiB; negative = unbounded).
	PersistMaxBytes int64

	// ChaosRate, when positive, enables deterministic fault injection
	// (internal/faultinject): each fault site — disk reads/writes/renames
	// under the persist store, and latency/503/drop on the /v1 endpoints
	// — fires with this probability. Off by default; never use in
	// production except to verify that you could.
	ChaosRate float64
	// ChaosSeed seeds the injector (default 1) for reproducible chaos.
	ChaosSeed int64
	// ChaosLatency is the injected per-request delay when the latency
	// fault fires (default 50ms).
	ChaosLatency time.Duration

	// RetryAfter overrides the Retry-After hint sent with 429 responses.
	// Zero means adaptive: the hint is derived from the current queue
	// depth and the recent average service time, so clients back off
	// roughly as long as the backlog needs to clear.
	RetryAfter time.Duration
}

func (c Config) withDefaults() Config {
	if c.CacheMaxBytes == 0 {
		c.CacheMaxBytes = 256 << 20
	}
	if c.CacheMaxEntries == 0 {
		c.CacheMaxEntries = 128
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 64
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.MaxRequestBytes <= 0 {
		c.MaxRequestBytes = 64 << 20
	}
	if c.PersistMaxBytes == 0 {
		c.PersistMaxBytes = 1 << 30
	}
	if c.ChaosSeed == 0 {
		c.ChaosSeed = 1
	}
	if c.ChaosLatency == 0 {
		c.ChaosLatency = 50 * time.Millisecond
	}
	return c
}

// Server is the deadmemd service: one shared engine session behind an
// admission-controlled HTTP API, optionally backed by a crash-safe
// on-disk artifact store.
type Server struct {
	cfg      Config
	sess     *engine.Session
	adm      *admission
	met      *metrics
	store    *persist.Store        // nil = persistence disabled
	chaos    *faultinject.Injector // nil = chaos disabled
	draining atomic.Bool
	mux      *http.ServeMux
}

// New builds a Server from cfg (see Config for defaults). It fails only
// when the configured persist directory cannot be initialized.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	limits := engine.Limits{}
	if cfg.CacheMaxBytes > 0 {
		limits.MaxBytes = cfg.CacheMaxBytes
	}
	if cfg.CacheMaxEntries > 0 {
		limits.MaxEntries = cfg.CacheMaxEntries
	}
	maxQueue := cfg.MaxQueue
	if maxQueue < 0 {
		maxQueue = 0
	}
	s := &Server{
		cfg:  cfg,
		sess: engine.NewBoundedSession(engine.Config{Workers: cfg.Workers}, limits),
		adm:  newAdmission(cfg.MaxInflight, maxQueue),
		met:  newMetrics(),
		mux:  http.NewServeMux(),
	}
	if cfg.ChaosRate > 0 {
		s.chaos = faultinject.New(cfg.ChaosSeed, cfg.ChaosRate)
	}
	if cfg.PersistDir != "" {
		popts := persist.Options{}
		if cfg.PersistMaxBytes > 0 {
			popts.MaxBytes = cfg.PersistMaxBytes
		}
		if s.chaos != nil {
			popts.FS = faultinject.FS(persist.OSFS{}, s.chaos)
		}
		store, err := persist.Open(cfg.PersistDir, popts)
		if err != nil {
			return nil, err
		}
		s.store = store
	}
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	// Chaos wraps only the analysis endpoints: health probes and metrics
	// must stay truthful even while the network is being wrecked.
	v1 := func(name string, fn func(ctx context.Context, b *bundle) (*handlerResult, *httpError)) {
		var h http.Handler = s.endpoint(name, fn)
		if s.chaos != nil {
			h = faultinject.Handler(s.chaos, s.cfg.ChaosLatency, h)
		}
		s.mux.Handle(name, h)
	}
	v1("/v1/analyze", s.analyze)
	v1("/v1/lint", s.lint)
	v1("/v1/strip", s.strip)
	return s, nil
}

// Handler returns the root HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// StartDrain flips /readyz to 503 and makes analysis endpoints refuse new
// work, so load balancers stop routing here while in-flight requests
// finish (pair with http.Server.Shutdown).
func (s *Server) StartDrain() { s.draining.Store(true) }

// Session exposes the shared engine session (used by tests and the CLI's
// startup logging).
func (s *Server) Session() *engine.Session { return s.sess }

// handlerResult is a fully buffered successful response; buffering keeps
// status codes truthful (nothing is written before the pipeline finishes).
type handlerResult struct {
	body        []byte
	contentType string
	degraded    bool
}

// endpoint wraps an analysis handler with the shared transport concerns:
// method check, drain check, body limit, decoding, admission, deadline,
// panic containment, and metrics.
func (s *Server) endpoint(name string, fn func(ctx context.Context, b *bundle) (*handlerResult, *httpError)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		code := http.StatusOK
		defer func() { s.met.observe(name, code, time.Since(start)) }()
		fail := func(herr *httpError) {
			code = herr.code
			http.Error(w, "deadmemd: "+herr.msg, herr.code)
		}

		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			fail(&httpError{http.StatusMethodNotAllowed, "use POST"})
			return
		}
		if s.draining.Load() {
			fail(&httpError{http.StatusServiceUnavailable, "draining"})
			return
		}
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes)
		b, herr := parseRequest(r)
		if herr != nil {
			fail(herr)
			return
		}

		// Persistent artifact tier: a validated on-disk record is the
		// exact bytes a full pipeline run would render, so it is served
		// before admission — disk hits must not queue behind compiles.
		// A corrupt record is quarantined inside Get and falls through
		// to a fresh compile; corrupt bytes are never served.
		var key string
		if s.store != nil {
			key = artifactKey(name, b)
			if body, contentType, ok := s.store.Get(key); ok {
				w.Header().Set("Content-Type", contentType)
				w.Header().Set("X-Deadmemd-Cache", "persist")
				w.Write(body)
				return
			}
		}

		if err := s.adm.acquire(r.Context()); err != nil {
			if errors.Is(err, errBusy) {
				s.met.markRejected()
				w.Header().Set("Retry-After", fmt.Sprint(s.retryAfterSeconds()))
				fail(&httpError{http.StatusTooManyRequests, err.Error()})
			} else {
				fail(&httpError{statusClientClosedRequest, "client closed request"})
			}
			return
		}
		defer s.adm.release()

		ctx := r.Context()
		if s.cfg.RequestTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
			defer cancel()
		}

		var res *handlerResult
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					res, herr = nil, &httpError{http.StatusInternalServerError,
						fmt.Sprintf("internal error: %v", rec)}
				}
			}()
			res, herr = fn(ctx, b)
		}()
		if herr != nil {
			fail(herr)
			return
		}
		if res.degraded {
			s.met.markDegraded()
			w.Header().Set(api.DegradedHeader, "true")
		} else if key != "" {
			// Persist only full-fidelity artifacts, best-effort: a
			// failed write costs a future recompile, nothing else.
			s.store.Put(key, res.contentType, res.body)
		}
		w.Header().Set("Content-Type", res.contentType)
		w.Write(res.body)
	}
}

// retryAfterSeconds is the hint sent with 429 responses. With no
// configured override it adapts to the backlog: the queue depth (plus
// the rejected request itself) times the recent average service time,
// divided across the execution slots — roughly when a retry will find a
// free slot — clamped to [1s, 60s].
func (s *Server) retryAfterSeconds() int {
	if s.cfg.RetryAfter > 0 {
		return int(math.Ceil(s.cfg.RetryAfter.Seconds()))
	}
	avg := s.met.avgServiceSeconds()
	if avg <= 0 {
		return 1 // no samples yet; the old fixed hint
	}
	wait := avg * float64(s.adm.queueLen()+1) / float64(s.cfg.MaxInflight)
	sec := int(math.Ceil(wait))
	if sec < 1 {
		sec = 1
	}
	if sec > 60 {
		sec = 60
	}
	return sec
}

// ctxErr maps a pipeline cancellation onto the transport: deadline → 504,
// client disconnect → 499.
func ctxErr(err error) *httpError {
	if errors.Is(err, context.DeadlineExceeded) {
		return &httpError{http.StatusGatewayTimeout, "analysis deadline exceeded"}
	}
	if errors.Is(err, context.Canceled) {
		return &httpError{statusClientClosedRequest, "client closed request"}
	}
	return &httpError{http.StatusInternalServerError, err.Error()}
}

// compile runs the bundle through the shared session cache.
func (s *Server) compile(ctx context.Context, b *bundle) (*engine.Compilation, *httpError) {
	comp := s.sess.CompileContext(ctx, b.sources...)
	if err := comp.Err(); err != nil {
		if comp.CancelErr() != nil {
			return nil, ctxErr(err)
		}
		return nil, &httpError{http.StatusUnprocessableEntity, "compile: " + err.Error()}
	}
	return comp, nil
}

// analyze serves POST /v1/analyze: the deadmem report.
func (s *Server) analyze(ctx context.Context, b *bundle) (*handlerResult, *httpError) {
	comp, herr := s.compile(ctx, b)
	if herr != nil {
		return nil, herr
	}
	res, _, err := comp.AnalyzeTimedContext(ctx, b.opts)
	if err != nil {
		return nil, ctxErr(err)
	}
	degraded := comp.Degraded() || res.Degraded()
	var buf bytes.Buffer
	if err := textreport.Write(&buf, res, textreport.Options{
		Verbose:     b.verbose,
		PerClass:    b.classes,
		Unreachable: b.unreachable,
		Degraded:    degraded,
	}); err != nil {
		return nil, &httpError{http.StatusInternalServerError, err.Error()}
	}
	return &handlerResult{buf.Bytes(), "text/plain; charset=utf-8", degraded}, nil
}

// lint serves POST /v1/lint: deadlint findings in the requested format.
func (s *Server) lint(ctx context.Context, b *bundle) (*handlerResult, *httpError) {
	comp, herr := s.compile(ctx, b)
	if herr != nil {
		return nil, herr
	}
	res, _, err := comp.LintContext(ctx, b.opts, lint.Options{Budget: b.budget, Precision: b.precision})
	if err != nil {
		return nil, ctxErr(err)
	}
	var buf bytes.Buffer
	contentType := "text/plain; charset=utf-8"
	switch b.format {
	case "json":
		err = lint.WriteJSON(&buf, res)
		contentType = "application/json"
	case "sarif":
		err = lint.WriteSARIF(&buf, res)
		contentType = "application/json"
	default:
		err = lint.WriteText(&buf, res)
	}
	if err != nil {
		return nil, &httpError{http.StatusInternalServerError, err.Error()}
	}
	return &handlerResult{buf.Bytes(), contentType, comp.Degraded() || res.Degraded()}, nil
}

// strip serves POST /v1/strip: the transformed sources. The transform
// consumes its compilation (the ASTs are rewritten in place), so this
// endpoint compiles outside the shared cache instead of destroying
// entries other requests may hold.
func (s *Server) strip(ctx context.Context, b *bundle) (*handlerResult, *httpError) {
	comp := engine.CompileContext(ctx, engine.Config{Workers: s.cfg.Workers}, b.sources...)
	if err := comp.Err(); err != nil {
		if comp.CancelErr() != nil {
			return nil, ctxErr(err)
		}
		return nil, &httpError{http.StatusUnprocessableEntity, "compile: " + err.Error()}
	}
	if comp.Degraded() {
		// Mirrors deadstrip: never emit a transform derived from salvaged
		// results — a degraded analysis could misclassify members.
		s.met.markDegraded()
		return nil, &httpError{http.StatusUnprocessableEntity,
			"refusing to strip from a degraded compilation"}
	}
	out, err := comp.StripContext(ctx, b.opts, strip.Options{KeepUnreachable: b.keepUnreachable})
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctxErr(ctx.Err())
		}
		return nil, &httpError{http.StatusInternalServerError, err.Error()}
	}
	var buf bytes.Buffer
	if err := strip.WriteSources(&buf, out.Sources); err != nil {
		return nil, &httpError{http.StatusInternalServerError, err.Error()}
	}
	return &handlerResult{buf.Bytes(), "text/plain; charset=utf-8", false}, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.sess.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	g := gauges{
		CacheHits:      st.Hits,
		CacheCompiles:  st.Compiles,
		CacheEvictions: st.Evictions,
		CacheEntries:   st.Entries,
		CacheBytes:     st.Bytes,
		Inflight:       s.adm.inflight(),
		Queued:         s.adm.queueLen(),
	}
	if s.store != nil {
		pst := s.store.Stats()
		g.Persist = &pst
	}
	if s.chaos != nil {
		g.Chaos = s.chaos.Counts()
	}
	s.met.writePrometheus(w, g)
}

// Store exposes the persistent artifact store (nil when disabled); used
// by tests and the warm-restart smoke.
func (s *Server) Store() *persist.Store { return s.store }
