package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"deadmembers/internal/engine"
)

// TestConcurrentIdenticalRequestsCompileOnce is the load-test acceptance
// criterion: 64 concurrent identical /v1/analyze requests must trigger
// exactly one underlying frontend compile — the first is the cache miss,
// singleflight folds the concurrent rest onto it — with identical bodies
// and cache-hit metrics for the other 63.
func TestConcurrentIdenticalRequestsCompileOnce(t *testing.T) {
	const n = 64
	s, ts := newTestServer(t, Config{Workers: 1, MaxInflight: n, MaxQueue: n})

	start := make(chan struct{})
	bodies := make([]string, n)
	codes := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			resp, err := http.Post(ts.URL+"/v1/analyze?file=sample.mcc", "text/x-mcc", strings.NewReader(sample))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			b, _ := io.ReadAll(resp.Body)
			bodies[i], codes[i] = string(b), resp.StatusCode
		}(i)
	}
	close(start)
	wg.Wait()

	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d, body: %s", i, codes[i], bodies[i])
		}
		if bodies[i] != bodies[0] {
			t.Fatalf("request %d body diverges from request 0", i)
		}
	}
	st := s.Session().Stats()
	if st.Compiles != 1 {
		t.Errorf("Compiles = %d, want exactly 1 for %d identical requests", st.Compiles, n)
	}
	if st.Hits != n-1 {
		t.Errorf("Hits = %d, want %d", st.Hits, n-1)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	metricsBody := string(b)
	for _, want := range []string{
		"deadmemd_cache_compiles_total 1",
		fmt.Sprintf("deadmemd_cache_hits_total %d", n-1),
		fmt.Sprintf(`deadmemd_requests_total{endpoint="/v1/analyze",code="200"} %d`, n),
	} {
		if !strings.Contains(metricsBody, want) {
			t.Errorf("metrics missing %q:\n%s", want, metricsBody)
		}
	}
}

// TestAdmissionControlRejects is the saturation acceptance criterion:
// with -max-inflight 1 and -max-queue 2, a third of a kind of concurrent
// request is shed with 429 + Retry-After while the slot is held.
func TestAdmissionControlRejects(t *testing.T) {
	gate := make(chan struct{})
	s, err := New(Config{Workers: 1, MaxInflight: 1, MaxQueue: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Swap in a session whose compiles block on the gate, holding the
	// execution slot so the queue fills deterministically.
	s.sess = engine.NewBoundedSession(engine.Config{
		Workers:    1,
		ParseFault: func(string) { <-gate },
	}, engine.Limits{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	source := func(i int) string {
		return fmt.Sprintf("int main() { return %d; }", i)
	}
	type result struct {
		code int
		body string
	}
	results := make(chan result, 8)
	fire := func(i int) {
		resp, err := http.Post(ts.URL+fmt.Sprintf("/v1/analyze?file=p%d.mcc", i), "text/x-mcc", strings.NewReader(source(i)))
		if err != nil {
			t.Errorf("request %d: %v", i, err)
			results <- result{0, err.Error()}
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		results <- result{resp.StatusCode, string(b)}
	}

	// One request holds the slot, two wait in the queue...
	for i := 0; i < 3; i++ {
		go fire(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.adm.inflight() != 1 || s.adm.queueLen() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("saturation never reached: inflight=%d queued=%d", s.adm.inflight(), s.adm.queueLen())
		}
		time.Sleep(time.Millisecond)
	}

	// ...so the next one must be rejected immediately.
	resp, err := http.Post(ts.URL+"/v1/analyze?file=p3.mcc", "text/x-mcc", strings.NewReader(source(3)))
	if err != nil {
		t.Fatal(err)
	}
	rejBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated request: status %d, want 429 (body: %s)", resp.StatusCode, rejBody)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", got)
	}

	// Release the gate: the admitted three finish normally.
	close(gate)
	for i := 0; i < 3; i++ {
		r := <-results
		if r.code != http.StatusOK {
			t.Errorf("admitted request: status %d, body: %s", r.code, r.body)
		}
	}

	if s.met.rejected != 1 {
		t.Errorf("rejected counter = %d, want 1", s.met.rejected)
	}
}
