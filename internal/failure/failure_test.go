package failure

import (
	"strings"
	"testing"
)

func TestCatchReturnsNilOnSuccess(t *testing.T) {
	if f := Catch("parse", "a.mcc", func() {}); f != nil {
		t.Fatalf("Catch of a clean fn = %v, want nil", f)
	}
}

func TestCatchConvertsPanic(t *testing.T) {
	f := Catch("liveness", "C::f", func() { panic("boom") })
	if f == nil {
		t.Fatal("Catch did not contain the panic")
	}
	if f.Stage != "liveness" || f.Unit != "C::f" || f.Value != "boom" {
		t.Fatalf("failure fields wrong: %+v", f)
	}
	if f.Stack == "" {
		t.Fatal("failure is missing a stack digest")
	}
	msg := f.Error()
	for _, want := range []string{"liveness", "C::f", "boom"} {
		if !strings.Contains(msg, want) {
			t.Errorf("Error() = %q, missing %q", msg, want)
		}
	}
	if strings.Contains(msg, "\n") {
		t.Errorf("Error() must be one line, got %q", msg)
	}
}

func TestCatchPreservesNonStringPanics(t *testing.T) {
	type weird struct{ n int }
	f := Catch("sema", "program", func() { panic(weird{41}) })
	if f == nil || !strings.Contains(f.Value, "41") {
		t.Fatalf("panic value not captured: %+v", f)
	}
}

// TestDigestStable: the digest must not embed addresses or goroutine ids,
// so the same crash site produces the same digest run after run.
func TestDigestStable(t *testing.T) {
	crash := func() *Failure {
		return Catch("parse", "x", func() {
			var m map[string]int
			m["write"] = 1 // nil map write panics
		})
	}
	a, b := crash(), crash()
	if a == nil || b == nil {
		t.Fatal("panic not contained")
	}
	if a.Stack != b.Stack {
		t.Fatalf("digest unstable: %q vs %q", a.Stack, b.Stack)
	}
	if !strings.Contains(a.Stack, " ") {
		t.Fatalf("digest should carry a frame name: %q", a.Stack)
	}
}

func TestDigestDistinguishesSites(t *testing.T) {
	a := Catch("s", "u", func() { panic("one") })
	b := Catch("s", "u", func() {
		func() { panic("two") }() // extra frame: different stack
	})
	if a.Stack == b.Stack {
		t.Fatalf("different crash sites share digest %q", a.Stack)
	}
}
