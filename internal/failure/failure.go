// Package failure implements the panic-containment layer of the analysis
// pipeline: a recover boundary that converts a panicking stage or work
// item into a structured, reportable Failure instead of a process abort.
//
// The pipeline wraps every parallel worker (per-file parse, per-shard
// liveness) and every whole-program stage (sema, profile, strip) in
// Catch. When a unit fails, its siblings' results are salvaged and the
// run continues in a degraded-but-diagnosed state; the Failure records
// where the fault happened (stage + unit), what was thrown, and a stack
// digest stable enough to deduplicate crash reports.
package failure

import (
	"crypto/sha256"
	"fmt"
	"runtime/debug"
	"strings"
)

// Failure is one contained panic: a structured internal diagnostic.
type Failure struct {
	// Stage names the pipeline stage that faulted: "parse", "sema",
	// "callgraph", "liveness", "profile", "strip", "interp", ...
	Stage string

	// Unit identifies the work item within the stage: a file name, a
	// function's qualified name, a shard label, or "program" for
	// whole-program stages.
	Unit string

	// Value is the recovered panic value, formatted.
	Value string

	// Stack is a compact digest of the panic stack: an 8-byte hash of the
	// frame list plus the innermost non-runtime frame, enough to tell two
	// distinct crashes apart without storing full traces.
	Stack string
}

// Error renders the failure as a one-line internal diagnostic.
func (f *Failure) Error() string {
	return fmt.Sprintf("internal failure in %s of %s: %s [%s]", f.Stage, f.Unit, f.Value, f.Stack)
}

// New builds a Failure for a value obtained from recover(), capturing the
// current stack digest. Call it from inside a deferred recover handler.
func New(stage, unit string, recovered interface{}) *Failure {
	return &Failure{
		Stage: stage,
		Unit:  unit,
		Value: fmt.Sprint(recovered),
		Stack: Digest(debug.Stack()),
	}
}

// Catch runs fn, converting a panic into a Failure. It returns nil when
// fn completes normally. Panics are not re-raised: the caller decides how
// to degrade.
func Catch(stage, unit string, fn func()) (f *Failure) {
	defer func() {
		if r := recover(); r != nil {
			f = New(stage, unit, r)
		}
	}()
	fn()
	return nil
}

// Digest compresses a debug.Stack() trace into "hhhhhhhh frame": a short
// content hash over the frame names (offsets, addresses, and anonymous
// `.funcN` numbering stripped, so the digest is stable across runs and
// inlining decisions) plus the innermost frame that is not part of the
// runtime or of this package.
func Digest(stack []byte) string {
	frames := frameNames(stack)
	h := sha256.Sum256([]byte(strings.Join(frames, "\n")))
	top := "unknown"
	for _, fr := range frames {
		if strings.HasPrefix(fr, "runtime.") || strings.HasPrefix(fr, "runtime/") {
			continue
		}
		if strings.Contains(fr, "/internal/failure.") {
			continue
		}
		top = fr
		break
	}
	return fmt.Sprintf("%x %s", h[:4], top)
}

// frameNames extracts the function-name lines of a debug.Stack() dump,
// dropping the goroutine header, source locations, argument lists, and
// the compiler's anonymous-function numbering (inlining can duplicate a
// closure into `.func2` and `.func3` clones at different call sites).
func frameNames(stack []byte) []string {
	var out []string
	for _, line := range strings.Split(string(stack), "\n") {
		if line == "" || strings.HasPrefix(line, "goroutine ") ||
			strings.HasPrefix(line, "\t") || strings.HasPrefix(line, "panic(") {
			continue
		}
		if i := strings.LastIndex(line, "("); i > 0 {
			line = line[:i]
		}
		out = append(out, stripFuncNumbers(line))
	}
	return out
}

// stripFuncNumbers drops `funcN` path segments from a symbol name.
func stripFuncNumbers(sym string) string {
	segs := strings.Split(sym, ".")
	kept := segs[:0]
	for _, s := range segs {
		if isFuncN(s) {
			continue
		}
		kept = append(kept, s)
	}
	return strings.Join(kept, ".")
}

func isFuncN(s string) bool {
	if !strings.HasPrefix(s, "func") || len(s) == len("func") {
		return false
	}
	for _, r := range s[len("func"):] {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}
