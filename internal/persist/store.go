package persist

import (
	"container/list"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Store layout under the root directory:
//
//	objects/<key>.rec    live records (key = lowercase hex artifact hash)
//	quarantine/<key>.bad records that failed validation on read
//	tmp/                 in-progress writes (wiped on Open)
const (
	objectsDir    = "objects"
	quarantineDir = "quarantine"
	tmpDir        = "tmp"
	recordSuffix  = ".rec"
)

// Options configures a Store.
type Options struct {
	// MaxBytes caps the total encoded bytes retained on disk; the
	// least-recently-used records are evicted once it is exceeded.
	// 0 means unlimited.
	MaxBytes int64
	// MaxQuarantine caps the number of files kept in quarantine/ for
	// post-mortem; the oldest are deleted past it (0 = default 64,
	// negative = unbounded). Without a cap a flaky disk fills the volume
	// with corpses.
	MaxQuarantine int
	// MaxQuarantineBytes caps the total quarantined bytes the same way
	// (0 = default 64 MiB, negative = unbounded).
	MaxQuarantineBytes int64
	// FS overrides the filesystem (nil = the real one). Fault-injection
	// tests pass a faultinject-wrapped FS here.
	FS FS
}

// Stats counts store activity since Open.
type Stats struct {
	// Hits is the number of Get calls served from a validated record.
	Hits int64
	// Misses is the number of Get calls with no usable record.
	Misses int64
	// Writes is the number of records durably persisted.
	Writes int64
	// WriteErrors counts failed persists (the artifact is simply not
	// cached; the daemon carries on).
	WriteErrors int64
	// Corrupt counts records that failed validation on read and were
	// quarantined (torn renames, bit flips, truncation, read errors).
	Corrupt int64
	// ServedCorrupt counts corrupt records returned to a caller. It is
	// zero by construction — every Get re-validates the checksum — and
	// exists so monitoring can assert the invariant.
	ServedCorrupt int64
	// Evictions counts records removed to enforce MaxBytes.
	Evictions int64
	// Quarantined counts records successfully moved into quarantine/
	// (Corrupt minus the ones whose file could only be unlinked).
	Quarantined int64
	// QuarantineEvictions counts quarantined files deleted to enforce
	// MaxQuarantine/MaxQuarantineBytes.
	QuarantineEvictions int64
	// Entries and Bytes are point-in-time gauges of the live set.
	Entries int
	Bytes   int64
	// QuarantineEntries and QuarantineBytes are point-in-time gauges of
	// the quarantine directory.
	QuarantineEntries int
	QuarantineBytes   int64
}

// Store is a crash-safe, content-addressed artifact store. All methods
// are safe for concurrent use.
type Store struct {
	dir       string
	fs        FS
	max       int64
	qMax      int   // quarantine file-count cap (0 = unbounded)
	qMaxBytes int64 // quarantine byte cap (0 = unbounded)

	mu      sync.Mutex
	entries map[string]*list.Element // key → *storeEntry element
	lru     *list.List               // front = most recently used
	bytes   int64
	quar    []quarEntry // oldest first
	qBytes  int64
	stats   Stats
}

type storeEntry struct {
	key   string
	bytes int64
}

type quarEntry struct {
	name  string
	bytes int64
}

// Open initializes the directory layout under dir, clears stale temp
// files from a previous crash, and rebuilds the LRU index from the
// objects directory (ordered by modification time, newest most recent),
// so a restarted daemon is warm after one directory scan.
func Open(dir string, opts Options) (*Store, error) {
	fs := opts.FS
	if fs == nil {
		fs = OSFS{}
	}
	qMax := opts.MaxQuarantine
	if qMax == 0 {
		qMax = 64
	} else if qMax < 0 {
		qMax = 0
	}
	qMaxBytes := opts.MaxQuarantineBytes
	if qMaxBytes == 0 {
		qMaxBytes = 64 << 20
	} else if qMaxBytes < 0 {
		qMaxBytes = 0
	}
	s := &Store{
		dir:       dir,
		fs:        fs,
		max:       opts.MaxBytes,
		qMax:      qMax,
		qMaxBytes: qMaxBytes,
		entries:   map[string]*list.Element{},
		lru:       list.New(),
	}
	for _, sub := range []string{objectsDir, quarantineDir, tmpDir} {
		if err := fs.MkdirAll(join(dir, sub)); err != nil {
			return nil, fmt.Errorf("persist: init %s: %w", sub, err)
		}
	}
	// A crash mid-Put leaves temp files; they were never visible as
	// records, so they are garbage.
	if stale, err := fs.ReadDir(join(dir, tmpDir)); err == nil {
		for _, fi := range stale {
			fs.Remove(join(dir, tmpDir, fi.Name))
		}
	}
	infos, err := fs.ReadDir(join(dir, objectsDir))
	if err != nil {
		return nil, fmt.Errorf("persist: scan objects: %w", err)
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].ModTime.Before(infos[j].ModTime) })
	for _, fi := range infos {
		key, ok := strings.CutSuffix(fi.Name, recordSuffix)
		if !ok || !validKey(key) {
			continue // not ours; leave it alone
		}
		// Oldest first, each pushed to the front: the newest record ends
		// up most-recently-used. Validation stays lazy (on Get) so boot
		// cost is one scan, not a full re-read.
		el := s.lru.PushFront(&storeEntry{key: key, bytes: fi.Size})
		s.entries[key] = el
		s.bytes += fi.Size
	}
	// Rebuild the quarantine index too, so corpses from previous lives
	// count toward the cap instead of accumulating forever.
	if qinfos, err := fs.ReadDir(join(dir, quarantineDir)); err == nil {
		sort.Slice(qinfos, func(i, j int) bool { return qinfos[i].ModTime.Before(qinfos[j].ModTime) })
		for _, fi := range qinfos {
			if key, ok := strings.CutSuffix(fi.Name, ".bad"); !ok || !validKey(key) {
				continue // not ours; leave it alone
			}
			s.quar = append(s.quar, quarEntry{name: fi.Name, bytes: fi.Size})
			s.qBytes += fi.Size
		}
		s.enforceQuarantineBoundLocked()
	}
	return s, nil
}

// enforceQuarantineBoundLocked deletes the oldest quarantined files
// until both caps hold. Post-mortem value decays with age; disk space
// does not come back on its own.
func (s *Store) enforceQuarantineBoundLocked() {
	for len(s.quar) > 0 &&
		((s.qMax > 0 && len(s.quar) > s.qMax) || (s.qMaxBytes > 0 && s.qBytes > s.qMaxBytes)) {
		oldest := s.quar[0]
		s.quar = s.quar[1:]
		s.qBytes -= oldest.bytes
		s.fs.Remove(join(s.dir, quarantineDir, oldest.name))
		s.stats.QuarantineEvictions++
	}
}

// validKey reports whether key is safe to use as a filename: the
// lowercase-hex artifact hashes the server produces, nothing else.
func validKey(key string) bool {
	if len(key) < 16 || len(key) > 128 {
		return false
	}
	for _, c := range key {
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f') {
			return false
		}
	}
	return true
}

func (s *Store) objectPath(key string) string { return join(s.dir, objectsDir, key+recordSuffix) }

// Get returns the validated record body and content type for key. A
// record that fails validation — for any reason — is quarantined and
// reported as a miss; the caller recomputes and re-Puts.
func (s *Store) Get(key string) (body []byte, contentType string, ok bool) {
	if !validKey(key) {
		return nil, "", false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	el, found := s.entries[key]
	if !found {
		s.stats.Misses++
		return nil, "", false
	}
	path := s.objectPath(key)
	data, err := s.fs.ReadFile(path)
	if err != nil {
		// Unreadable (disk fault, raced delete): drop it from the index
		// and treat as corruption — the bytes cannot be trusted.
		s.quarantineLocked(el, path)
		s.stats.Misses++
		return nil, "", false
	}
	rec, err := Decode(data)
	if err != nil || rec.Key != key {
		s.quarantineLocked(el, path)
		s.stats.Misses++
		return nil, "", false
	}
	s.stats.Hits++
	s.lru.MoveToFront(el)
	return rec.Body, rec.ContentType, true
}

// quarantineLocked removes a failed record from the index and moves the
// file (if any) into quarantine/ for post-mortem instead of serving or
// silently deleting it.
func (s *Store) quarantineLocked(el *list.Element, path string) {
	e := el.Value.(*storeEntry)
	s.removeLocked(el)
	s.stats.Corrupt++
	name := e.key + ".bad"
	if err := s.fs.Rename(path, join(s.dir, quarantineDir, name)); err != nil {
		s.fs.Remove(path) // quarantine dir unusable; at least unlink it
		return
	}
	s.stats.Quarantined++
	// A re-quarantined key replaces its older corpse in the accounting.
	for i, q := range s.quar {
		if q.name == name {
			s.qBytes -= q.bytes
			s.quar = append(s.quar[:i], s.quar[i+1:]...)
			break
		}
	}
	s.quar = append(s.quar, quarEntry{name: name, bytes: e.bytes})
	s.qBytes += e.bytes
	s.enforceQuarantineBoundLocked()
}

// Put durably persists body under key (atomic temp-write + rename) and
// evicts least-recently-used records until MaxBytes holds. Failures are
// counted and returned but must be treated as non-fatal: the store is a
// cache, and a failed write only costs a future recompute.
func (s *Store) Put(key, contentType string, body []byte) error {
	if !validKey(key) {
		return fmt.Errorf("persist: invalid key %q", key)
	}
	data := (&Record{Key: key, ContentType: contentType, Body: body}).Encode()
	n := int64(len(data))
	if s.max > 0 && n > s.max {
		return nil // could never fit; don't churn the whole cache for it
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	tmp := join(s.dir, tmpDir, key+recordSuffix)
	if err := s.fs.WriteFile(tmp, data); err != nil {
		s.stats.WriteErrors++
		s.fs.Remove(tmp)
		return fmt.Errorf("persist: write %s: %w", key, err)
	}
	if err := s.fs.Rename(tmp, s.objectPath(key)); err != nil {
		s.stats.WriteErrors++
		s.fs.Remove(tmp)
		return fmt.Errorf("persist: publish %s: %w", key, err)
	}
	if el, ok := s.entries[key]; ok {
		s.removeLocked(el) // replaced in place; re-account below
	}
	el := s.lru.PushFront(&storeEntry{key: key, bytes: n})
	s.entries[key] = el
	s.bytes += n
	s.stats.Writes++
	for s.max > 0 && s.bytes > s.max {
		back := s.lru.Back()
		if back == nil || back == el {
			break
		}
		e := back.Value.(*storeEntry)
		s.removeLocked(back)
		s.fs.Remove(s.objectPath(e.key))
		s.stats.Evictions++
	}
	return nil
}

// removeLocked drops one index element and its byte accounting (the
// file itself is the caller's problem).
func (s *Store) removeLocked(el *list.Element) {
	e := el.Value.(*storeEntry)
	s.lru.Remove(el)
	delete(s.entries, e.key)
	s.bytes -= e.bytes
}

// Len returns the number of live records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}

// Stats returns a snapshot of the store counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = s.lru.Len()
	st.Bytes = s.bytes
	st.QuarantineEntries = len(s.quar)
	st.QuarantineBytes = s.qBytes
	return st
}
