// Package persist is the disk tier of deadmemd's caching: a
// content-addressed store of rendered analysis artifacts that survives
// process death. The in-memory engine session (L1) holds compilations;
// this store (L2) holds finished response bodies keyed by a hash of the
// compilation fingerprint plus the rendering options, so a restarted
// daemon answers previously-seen requests from disk without recompiling.
//
// Durability rules:
//
//   - writes are atomic: a record is fully written (and synced) to a
//     temp file, then renamed into place — a crash never leaves a
//     half-written record under a valid name;
//   - every record carries a version, its own key, and a SHA-256
//     checksum over the entire payload; corruption of any kind (torn
//     rename, bit rot, truncation, a stray file) is detected on read,
//     the record is quarantined, and the caller recompiles — corrupt
//     bytes are never served and never crash the daemon;
//   - the on-disk footprint is LRU-bounded by total bytes, with the
//     index rebuilt from a directory scan on boot (newest-first), so a
//     restart is warm within one scan.
//
// All filesystem access goes through the FS interface so fault-injection
// tests (internal/faultinject) can exercise short writes, ENOSPC, EIO,
// and torn renames deterministically.
package persist

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// Record format v1, little-endian, checksummed:
//
//	magic   [4]byte  "DMP1"
//	version uint32   (1)
//	keyLen  uint32   | key bytes
//	ctLen   uint32   | content-type bytes
//	bodyLen uint64   | body bytes
//	sum     [32]byte SHA-256 over everything before it
const (
	recordMagic   = "DMP1"
	recordVersion = 1
)

// ErrCorrupt reports a record that failed structural or checksum
// validation. Callers must treat it as a cache miss (quarantine and
// recompute), never as fatal.
var ErrCorrupt = errors.New("corrupt record")

// Record is one persisted artifact: the rendered response body for a
// given artifact key, plus the Content-Type it was served with.
type Record struct {
	Key         string
	ContentType string
	Body        []byte
}

// Encode renders the record in the versioned on-disk format.
func (r *Record) Encode() []byte {
	n := 4 + 4 + // magic, version
		4 + len(r.Key) +
		4 + len(r.ContentType) +
		8 + len(r.Body) +
		sha256.Size
	buf := make([]byte, 0, n)
	buf = append(buf, recordMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, recordVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Key)))
	buf = append(buf, r.Key...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.ContentType)))
	buf = append(buf, r.ContentType...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(r.Body)))
	buf = append(buf, r.Body...)
	sum := sha256.Sum256(buf)
	return append(buf, sum[:]...)
}

// Decode parses and validates an encoded record. Any deviation — wrong
// magic, unknown version, truncation, trailing bytes, or a checksum
// mismatch — returns an error wrapping ErrCorrupt; Decode never panics
// and never over-allocates from attacker-controlled length fields (all
// lengths are bounds-checked against the buffer before use).
func Decode(data []byte) (*Record, error) {
	corrupt := func(format string, args ...interface{}) error {
		return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
	}
	if len(data) < 4+4+4+4+8+sha256.Size {
		return nil, corrupt("short record (%d bytes)", len(data))
	}
	// Checksum first: it covers every structural field, so a record that
	// passes is structurally exactly what was written.
	payload, sum := data[:len(data)-sha256.Size], data[len(data)-sha256.Size:]
	want := sha256.Sum256(payload)
	if !bytes.Equal(sum, want[:]) {
		return nil, corrupt("checksum mismatch")
	}
	rest := payload
	if string(rest[:4]) != recordMagic {
		return nil, corrupt("bad magic %q", rest[:4])
	}
	rest = rest[4:]
	if v := binary.LittleEndian.Uint32(rest); v != recordVersion {
		return nil, corrupt("unknown version %d", v)
	}
	rest = rest[4:]

	takeN := func(n uint64, what string) ([]byte, error) {
		if n > uint64(len(rest)) {
			return nil, corrupt("%s length %d exceeds record", what, n)
		}
		b := rest[:n]
		rest = rest[n:]
		return b, nil
	}
	take32 := func(what string) ([]byte, error) {
		if len(rest) < 4 {
			return nil, corrupt("truncated %s length", what)
		}
		n := binary.LittleEndian.Uint32(rest)
		rest = rest[4:]
		return takeN(uint64(n), what)
	}

	key, err := take32("key")
	if err != nil {
		return nil, err
	}
	ct, err := take32("content-type")
	if err != nil {
		return nil, err
	}
	if len(rest) < 8 {
		return nil, corrupt("truncated body length")
	}
	bodyLen := binary.LittleEndian.Uint64(rest)
	rest = rest[8:]
	body, err := takeN(bodyLen, "body")
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, corrupt("%d trailing bytes", len(rest))
	}
	return &Record{Key: string(key), ContentType: string(ct), Body: body}, nil
}
