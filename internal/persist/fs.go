package persist

import (
	"os"
	"path/filepath"
	"time"
)

// FileInfo is the subset of os.FileInfo the store's boot-time index
// rebuild needs.
type FileInfo struct {
	Name    string
	Size    int64
	ModTime time.Time
}

// FS is the filesystem surface the store runs on. The production
// implementation is OSFS; internal/faultinject wraps any FS with
// deterministic fault injection (EIO reads, ENOSPC, short writes, torn
// renames) so the store's corruption handling is testable without real
// disk faults.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// ReadFile returns the full contents of path.
	ReadFile(path string) ([]byte, error)
	// WriteFile creates or truncates path with data and syncs it to
	// stable storage before returning.
	WriteFile(path string, data []byte) error
	// Rename atomically moves oldPath to newPath (same filesystem).
	Rename(oldPath, newPath string) error
	// Remove deletes path.
	Remove(path string) error
	// ReadDir lists the plain files in dir (missing dir = empty list).
	ReadDir(dir string) ([]FileInfo, error)
}

// OSFS is the real filesystem.
type OSFS struct{}

func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (OSFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

// WriteFile writes data and fsyncs before closing: paired with Rename,
// a record is durable-then-visible, never visible-then-maybe-durable.
func (OSFS) WriteFile(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (OSFS) Rename(oldPath, newPath string) error { return os.Rename(oldPath, newPath) }

func (OSFS) Remove(path string) error { return os.Remove(path) }

func (OSFS) ReadDir(dir string) ([]FileInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var infos []FileInfo
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			continue // raced with a delete; skip
		}
		infos = append(infos, FileInfo{Name: e.Name(), Size: fi.Size(), ModTime: fi.ModTime()})
	}
	return infos, nil
}

var _ FS = OSFS{}

// join is filepath.Join, aliased so store.go reads cleanly.
func join(parts ...string) string { return filepath.Join(parts...) }
