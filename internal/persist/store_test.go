package persist

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func testKey(i int) string {
	return fmt.Sprintf("%064d", i) // 64 decimal digits: valid lowercase hex
}

func TestRecordRoundTrip(t *testing.T) {
	rec := &Record{Key: testKey(1), ContentType: "text/plain; charset=utf-8", Body: []byte("dead members: 3\n")}
	got, err := Decode(rec.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Key != rec.Key || got.ContentType != rec.ContentType || !bytes.Equal(got.Body, rec.Body) {
		t.Fatalf("round trip mismatch: %+v != %+v", got, rec)
	}
	if _, err := Decode([]byte("not a record")); !errors.Is(err, ErrCorrupt) {
		t.Errorf("garbage decode: err = %v, want ErrCorrupt", err)
	}
	if _, err := Decode(nil); !errors.Is(err, ErrCorrupt) {
		t.Errorf("nil decode: err = %v, want ErrCorrupt", err)
	}
}

func TestRecordEveryBitFlipDetected(t *testing.T) {
	enc := (&Record{Key: testKey(2), ContentType: "text/plain", Body: []byte("body bytes")}).Encode()
	for pos := range enc {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), enc...)
			mut[pos] ^= 1 << bit
			if _, err := Decode(mut); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("flip byte %d bit %d: err = %v, want ErrCorrupt", pos, bit, err)
			}
		}
	}
}

func TestStorePutGet(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(3)
	if _, _, ok := s.Get(key); ok {
		t.Fatal("Get on empty store returned ok")
	}
	if err := s.Put(key, "text/plain", []byte("artifact")); err != nil {
		t.Fatal(err)
	}
	body, ct, ok := s.Get(key)
	if !ok || string(body) != "artifact" || ct != "text/plain" {
		t.Fatalf("Get = %q, %q, %v", body, ct, ok)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestStoreRebuildsIndexOnOpen(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s1.Put(testKey(i), "text/plain", []byte(fmt.Sprintf("body %d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// No Close: simulate process death, then a cold Open over the same dir.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 5 {
		t.Fatalf("rebuilt index has %d entries, want 5", s2.Len())
	}
	for i := 0; i < 5; i++ {
		body, _, ok := s2.Get(testKey(i))
		if !ok || string(body) != fmt.Sprintf("body %d", i) {
			t.Fatalf("key %d after reopen: %q, %v", i, body, ok)
		}
	}
	if st := s2.Stats(); st.Hits != 5 || st.Corrupt != 0 {
		t.Errorf("stats after reopen = %+v", st)
	}
}

func TestStoreQuarantinesCorruptRecords(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(7)
	if err := s.Put(key, "text/plain", []byte("precious artifact")); err != nil {
		t.Fatal(err)
	}
	// Corrupt the record on disk behind the store's back.
	path := filepath.Join(dir, objectsDir, key+recordSuffix)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, _, ok := s.Get(key); ok {
		t.Fatal("corrupt record served")
	}
	st := s.Stats()
	if st.Corrupt != 1 || st.ServedCorrupt != 0 || st.Entries != 0 {
		t.Errorf("stats = %+v, want 1 corrupt, 0 served, 0 entries", st)
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineDir, key+".bad")); err != nil {
		t.Errorf("corrupt record not quarantined: %v", err)
	}
	// The slot is reusable: a fresh Put serves again.
	if err := s.Put(key, "text/plain", []byte("recomputed")); err != nil {
		t.Fatal(err)
	}
	if body, _, ok := s.Get(key); !ok || string(body) != "recomputed" {
		t.Fatalf("after recompute: %q, %v", body, ok)
	}
}

// corruptOnDisk flips a byte of key's on-disk record behind the store's
// back, so the next Get quarantines it.
func corruptOnDisk(t *testing.T, dir string, key string) {
	t.Helper()
	path := filepath.Join(dir, objectsDir, key+recordSuffix)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestQuarantineBoundedByCount(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{MaxQuarantine: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		key := testKey(i)
		if err := s.Put(key, "t", []byte("artifact")); err != nil {
			t.Fatal(err)
		}
		corruptOnDisk(t, dir, key)
		if _, _, ok := s.Get(key); ok {
			t.Fatalf("corrupt record %d served", i)
		}
		time.Sleep(2 * time.Millisecond) // distinct mtimes for reopen ordering
	}
	bad, err := filepath.Glob(filepath.Join(dir, quarantineDir, "*.bad"))
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 2 {
		t.Fatalf("quarantine holds %d files, want cap 2: %v", len(bad), bad)
	}
	// The survivors are the newest corpses.
	for _, i := range []int{3, 4} {
		if _, err := os.Stat(filepath.Join(dir, quarantineDir, testKey(i)+".bad")); err != nil {
			t.Errorf("newest corpse %d evicted: %v", i, err)
		}
	}
	st := s.Stats()
	if st.Quarantined != 5 || st.QuarantineEvictions != 3 || st.QuarantineEntries != 2 {
		t.Errorf("stats = %+v, want 5 quarantined, 3 evictions, 2 entries", st)
	}
}

func TestQuarantineBoundedByBytes(t *testing.T) {
	dir := t.TempDir()
	recSize := int64(len((&Record{Key: testKey(0), ContentType: "t", Body: []byte("0123456789")}).Encode()))
	s, err := Open(dir, Options{MaxQuarantineBytes: 2 * recSize})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		key := testKey(i)
		if err := s.Put(key, "t", []byte("0123456789")); err != nil {
			t.Fatal(err)
		}
		corruptOnDisk(t, dir, key)
		s.Get(key)
	}
	st := s.Stats()
	if st.QuarantineBytes > 2*recSize {
		t.Errorf("quarantine bytes = %d exceeds cap %d", st.QuarantineBytes, 2*recSize)
	}
	if st.QuarantineEvictions == 0 {
		t.Error("byte cap exceeded without evictions")
	}
}

func TestQuarantineBoundSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir, Options{MaxQuarantine: -1}) // unbounded first life
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		key := testKey(i)
		if err := s1.Put(key, "t", []byte("artifact")); err != nil {
			t.Fatal(err)
		}
		corruptOnDisk(t, dir, key)
		s1.Get(key)
		time.Sleep(2 * time.Millisecond)
	}
	// Second life with a cap: the accumulated corpses are re-indexed and
	// trimmed down to the bound on Open.
	s2, err := Open(dir, Options{MaxQuarantine: 1})
	if err != nil {
		t.Fatal(err)
	}
	bad, err := filepath.Glob(filepath.Join(dir, quarantineDir, "*.bad"))
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 1 {
		t.Fatalf("quarantine holds %d files after capped reopen, want 1", len(bad))
	}
	if st := s2.Stats(); st.QuarantineEntries != 1 || st.QuarantineEvictions != 3 {
		t.Errorf("stats after reopen = %+v, want 1 entry, 3 evictions", st)
	}
}

func TestStoreIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, objectsDir), 0o755); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"README", "UPPER" + recordSuffix, "zz.rec.bak"} {
		if err := os.WriteFile(filepath.Join(dir, objectsDir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Errorf("indexed %d foreign files, want 0", s.Len())
	}
}

func TestStoreLRUEviction(t *testing.T) {
	recSize := int64(len((&Record{Key: testKey(0), ContentType: "t", Body: []byte("0123456789")}).Encode()))
	s, err := Open(t.TempDir(), Options{MaxBytes: 3 * recSize})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Put(testKey(i), "t", []byte("0123456789")); err != nil {
			t.Fatal(err)
		}
	}
	// Touch key 0 so key 1 is the LRU victim.
	if _, _, ok := s.Get(testKey(0)); !ok {
		t.Fatal("key 0 missing before eviction")
	}
	if err := s.Put(testKey(3), "t", []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.Get(testKey(1)); ok {
		t.Error("LRU victim still present")
	}
	for _, i := range []int{0, 2, 3} {
		if _, _, ok := s.Get(testKey(i)); !ok {
			t.Errorf("key %d evicted, want kept", i)
		}
	}
	st := s.Stats()
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	if st.Bytes > 3*recSize {
		t.Errorf("bytes = %d exceeds cap %d", st.Bytes, 3*recSize)
	}
}

func TestStoreEvictionSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	recSize := int64(len((&Record{Key: testKey(0), ContentType: "t", Body: []byte("0123456789")}).Encode()))
	s1, err := Open(dir, Options{MaxBytes: 2 * recSize})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := s1.Put(testKey(i), "t", []byte("0123456789")); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond) // distinct mtimes for the reopen ordering
	}
	s2, err := Open(dir, Options{MaxBytes: 2 * recSize})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 2 {
		t.Fatalf("reopened with %d entries, want 2 (evictions persisted)", s2.Len())
	}
	// The survivors must be the newest two.
	for _, i := range []int{2, 3} {
		if _, _, ok := s2.Get(testKey(i)); !ok {
			t.Errorf("newest key %d missing after reopen", i)
		}
	}
}

func TestStoreCleansTempFilesOnOpen(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, tmpDir), 0o755); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(dir, tmpDir, testKey(9)+recordSuffix)
	if err := os.WriteFile(stale, []byte("half a record"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Errorf("stale temp file survived Open: %v", err)
	}
}

func TestValidKey(t *testing.T) {
	for key, want := range map[string]bool{
		strings.Repeat("ab12", 16): true,
		testKey(4):                 true,
		"":                         false,
		"short":                    false,
		"../../../../etc/passwd":   false,
		strings.Repeat("G", 64):    false,
		strings.Repeat("a", 129):   false,
	} {
		if got := validKey(key); got != want {
			t.Errorf("validKey(%q) = %v, want %v", key, got, want)
		}
	}
}
