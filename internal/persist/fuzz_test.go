package persist

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzPersistRoundTrip proves the record codec's two safety properties:
//
//  1. an intact record round-trips losslessly, and
//  2. ANY single-byte corruption of the encoding is detected — Decode
//     returns ErrCorrupt, never a record and never a panic — so a torn
//     rename or bit flip can only ever cost a recompile.
//
// It also feeds the raw (pre-encode) input straight into Decode, pinning
// that arbitrary bytes cannot crash or over-allocate the decoder.
func FuzzPersistRoundTrip(f *testing.F) {
	f.Add([]byte("dead members: 3\n"), "text/plain; charset=utf-8", uint32(5), uint8(1))
	f.Add([]byte(""), "", uint32(0), uint8(0))
	f.Add([]byte("{\"findings\":[]}"), "application/json", uint32(11), uint8(7))
	f.Add(bytes.Repeat([]byte{0xFF}, 64), "t", uint32(63), uint8(255))

	f.Fuzz(func(t *testing.T, body []byte, contentType string, pos uint32, bit uint8) {
		// Arbitrary garbage into the decoder: must not panic, and since
		// a fuzz-sized blob cannot carry a valid checksum by accident,
		// it must decode cleanly or fail with ErrCorrupt.
		if rec, err := Decode(body); err == nil {
			reenc := rec.Encode()
			if !bytes.Equal(reenc, body) {
				t.Fatalf("accepted record does not re-encode identically")
			}
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Decode(raw) error %v is not ErrCorrupt", err)
		}

		key := "00112233445566778899aabbccddeeff"
		enc := (&Record{Key: key, ContentType: contentType, Body: body}).Encode()

		// Intact round trip.
		rec, err := Decode(enc)
		if err != nil {
			t.Fatalf("intact record rejected: %v", err)
		}
		if rec.Key != key || rec.ContentType != contentType || !bytes.Equal(rec.Body, body) {
			t.Fatalf("round trip mismatch")
		}

		// Single-bit corruption anywhere: always detected.
		mut := append([]byte(nil), enc...)
		mut[int(pos)%len(mut)] ^= 1 << (bit % 8)
		if _, err := Decode(mut); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("corruption at byte %d undetected: err = %v", int(pos)%len(mut), err)
		}
	})
}
