package lint

import (
	"reflect"
	"testing"

	"deadmembers/internal/callgraph"
	"deadmembers/internal/deadmember"
	"deadmembers/internal/heaplive"
)

// findingSet counts findings by value (Finding is comparable), so
// subset checks tolerate ordering and duplicates alike.
func findingSet(fs []Finding) map[Finding]int {
	m := map[Finding]int{}
	for _, f := range fs {
		m[f]++
	}
	return m
}

func assertSubset(t *testing.T, lo, hi *Result, loName, hiName string) {
	t.Helper()
	hiSet := findingSet(hi.Findings)
	for f, n := range findingSet(lo.Findings) {
		if hiSet[f] < n {
			t.Errorf("%s finding missing from %s tier: %+v", loName, hiName, f)
		}
	}
}

// TestPrecisionTiers pins the tier ladder on the chained fixture: the
// paper tier sees only the write-only corroboration, flow adds the
// plain length-one dead store, heap adds the chained ones — strictly
// more findings at each tier, and every lower tier's findings survive
// verbatim in the higher one (paper ⊆ flow ⊆ heap).
func TestPrecisionTiers(t *testing.T) {
	ar := analyzeFixture(t, "chained.mcc", deadmember.Options{CallGraph: callgraph.RTA})
	var results [3]*Result
	for i, p := range heaplive.Tiers() {
		r := Run(ar, Options{Precision: p})
		if r.Degraded() {
			t.Fatalf("%s tier degraded: %v", p, r.Failures)
		}
		results[i] = r
	}
	paper, flow, heap := results[0], results[1], results[2]

	if !(len(paper.Findings) < len(flow.Findings) && len(flow.Findings) < len(heap.Findings)) {
		t.Fatalf("tiers not strictly increasing: paper=%d flow=%d heap=%d",
			len(paper.Findings), len(flow.Findings), len(heap.Findings))
	}
	assertSubset(t, paper, flow, "paper", "flow")
	assertSubset(t, flow, heap, "flow", "heap")

	// Paper: only the write-only corroboration of Inner::pad (stored in
	// the constructor initializer, never read).
	for _, f := range paper.Findings {
		if f.Check != CheckWriteOnly {
			t.Errorf("paper tier emitted a flow-sensitive finding: %+v", f)
		}
	}
	if len(paper.Findings) == 0 || paper.Findings[0].Member != "Inner::pad" {
		t.Fatalf("paper tier want Inner::pad write-only, got %v", paper.Findings)
	}

	// Heap − flow: exactly the three chained dead stores.
	flowSet := findingSet(flow.Findings)
	var extra []Finding
	for _, f := range heap.Findings {
		if flowSet[f] > 0 {
			flowSet[f]--
			continue
		}
		extra = append(extra, f)
	}
	want := []struct {
		line   int
		member string
		fn     string
	}{
		{34, "Inner::val", "overwriteChain"},
		{41, "Inner::val", "deepChain"},
		{47, "Inner::val", "throughPointer"},
	}
	if len(extra) != len(want) {
		t.Fatalf("heap-only findings = %d, want %d:\n%v", len(extra), len(want), extra)
	}
	for i, w := range want {
		f := extra[i]
		if f.Check != CheckDeadStore || f.Line != w.line || f.Member != w.member || f.Func != w.fn {
			t.Errorf("heap finding %d = %+v, want line %d %s in %s", i, f, w.line, w.member, w.fn)
		}
	}
}

// TestPrecisionDeterministicAcrossWorkers asserts byte-identical
// findings at any parallelism for every tier.
func TestPrecisionDeterministicAcrossWorkers(t *testing.T) {
	ar := analyzeFixture(t, "chained.mcc", deadmember.Options{CallGraph: callgraph.RTA})
	for _, p := range heaplive.Tiers() {
		base := RunWith(ar, Options{Precision: p}, Exec{Workers: 1})
		for _, workers := range []int{2, 4, 8} {
			r := RunWith(ar, Options{Precision: p}, Exec{Workers: workers})
			if !reflect.DeepEqual(base.Findings, r.Findings) {
				t.Fatalf("%s tier findings differ at %d workers", p, workers)
			}
		}
	}
}

// TestPrecisionNoChainsIsFlowIdentical guards the upgrade path: on a
// fixture with no multi-field chains the heap tier adds nothing, and
// the flow tier matches the zero-value default.
func TestPrecisionNoChainsIsFlowIdentical(t *testing.T) {
	ar := analyzeFixture(t, "plain.mcc", deadmember.Options{CallGraph: callgraph.RTA})
	def := Run(ar, Options{})
	flow := Run(ar, Options{Precision: heaplive.PrecisionFlow})
	heap := Run(ar, Options{Precision: heaplive.PrecisionHeap})
	if !reflect.DeepEqual(def.Findings, flow.Findings) {
		t.Fatal("zero-value Options differ from explicit flow tier")
	}
	if !reflect.DeepEqual(flow.Findings, heap.Findings) {
		t.Fatalf("heap tier diverges on a chain-free fixture:\nflow=%v\nheap=%v",
			flow.Findings, heap.Findings)
	}
}

// TestHeapBudgetNamesFunction drives the heap tier into budget
// exhaustion and asserts the degraded record names the function.
func TestHeapBudgetNamesFunction(t *testing.T) {
	ar := analyzeFixture(t, "chained.mcc", deadmember.Options{CallGraph: callgraph.RTA})
	r := Run(ar, Options{Precision: heaplive.PrecisionHeap, Budget: 1})
	if !r.Degraded() {
		t.Fatal("budget 1 did not degrade the result")
	}
	for _, f := range r.Failures {
		if f.Unit == "" {
			t.Errorf("failure without unit: %+v", f)
		}
	}
}
