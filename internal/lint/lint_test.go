package lint

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"deadmembers/internal/callgraph"
	"deadmembers/internal/deadmember"
	"deadmembers/internal/frontend"
	"deadmembers/internal/types"
)

// analyzeFixture compiles one testdata fixture and runs the
// flow-insensitive analysis the lint pass builds on.
func analyzeFixture(t *testing.T, name string, opts deadmember.Options) *deadmember.Result {
	t.Helper()
	text, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	res := frontend.Compile(frontend.Source{Name: name, Text: string(text)})
	if err := res.Err(); err != nil {
		t.Fatalf("%s does not compile: %v", name, err)
	}
	return deadmember.Analyze(res.Program, res.Graph, opts)
}

func deadStoreFindings(r *Result) []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Check == CheckDeadStore {
			out = append(out, f)
		}
	}
	return out
}

func writeOnlyFindings(r *Result) []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Check == CheckWriteOnly {
			out = append(out, f)
		}
	}
	return out
}

// TestPlainDeadStores pins the exact true positives and verifies the
// negatives (read-after-store, loop-carried read) are silent.
func TestPlainDeadStores(t *testing.T) {
	ar := analyzeFixture(t, "plain.mcc", deadmember.Options{CallGraph: callgraph.RTA})
	r := Run(ar, Options{})
	if r.Degraded() {
		t.Fatalf("degraded: %v", r.Failures)
	}
	ds := deadStoreFindings(r)
	want := []struct {
		line   int
		member string
		fn     string
	}{
		{14, "Q::a", "Q::Q"},      // initializer a(1), overwritten in the ctor body
		{20, "P::x", "overwrite"}, // p.x = 1, overwritten before use
		{35, "P::y", "discard"},   // p.y = 7, discarded at function exit
	}
	if len(ds) != len(want) {
		t.Fatalf("dead stores = %d, want %d:\n%v", len(ds), len(want), ds)
	}
	for i, w := range want {
		if ds[i].Line != w.line || ds[i].Member != w.member || ds[i].Func != w.fn {
			t.Errorf("finding %d = %s:%d %s in %s, want line %d %s in %s",
				i, ds[i].File, ds[i].Line, ds[i].Member, ds[i].Func, w.line, w.member, w.fn)
		}
	}
	if wo := writeOnlyFindings(r); len(wo) != 0 {
		t.Errorf("unexpected write-only findings: %v", wo)
	}
}

// TestSuppressions runs every special-case fixture and expects silence.
func TestSuppressions(t *testing.T) {
	cases := []struct {
		fixture string
		opts    deadmember.Options
	}{
		{"volatile.mcc", deadmember.Options{CallGraph: callgraph.RTA}},
		{"addrtaken.mcc", deadmember.Options{CallGraph: callgraph.RTA}},
		{"union.mcc", deadmember.Options{CallGraph: callgraph.RTA}},
		{"unsafecast.mcc", deadmember.Options{CallGraph: callgraph.RTA}},
		{"library.mcc", deadmember.Options{CallGraph: callgraph.RTA, LibraryClasses: []string{"Lib"}}},
	}
	for _, c := range cases {
		t.Run(c.fixture, func(t *testing.T) {
			ar := analyzeFixture(t, c.fixture, c.opts)
			r := Run(ar, Options{})
			if r.Degraded() {
				t.Fatalf("degraded: %v", r.Failures)
			}
			if len(r.Findings) != 0 {
				t.Errorf("expected zero findings, got %v", r.Findings)
			}
		})
	}
}

// TestTrustDowncastsReenables verifies the unsafe-cast suppression is
// tied to the TrustDowncasts option: vouching for the casts restores
// the dead-store finding.
func TestTrustDowncastsReenables(t *testing.T) {
	ar := analyzeFixture(t, "unsafecast.mcc", deadmember.Options{CallGraph: callgraph.RTA, TrustDowncasts: true})
	r := Run(ar, Options{})
	ds := deadStoreFindings(r)
	if len(ds) != 1 || ds[0].Member != "A::a1" {
		t.Fatalf("want exactly one A::a1 dead store, got %v", ds)
	}
}

// TestWriteOnlyCorroboration checks that a flow-insensitively dead
// member is explained site by site, and a never-accessed member is
// reported at its declaration.
func TestWriteOnlyCorroboration(t *testing.T) {
	ar := analyzeFixture(t, "writeonly.mcc", deadmember.Options{CallGraph: callgraph.RTA})
	r := Run(ar, Options{})
	if r.Degraded() {
		t.Fatalf("degraded: %v", r.Failures)
	}
	wo := writeOnlyFindings(r)
	var ghosts, phantoms int
	for _, f := range wo {
		switch f.Member {
		case "W::ghost":
			ghosts++
			if f.Func == "" {
				t.Errorf("ghost store site missing function: %+v", f)
			}
		case "W::phantom":
			phantoms++
			if !strings.Contains(f.Message, "no reachable code") {
				t.Errorf("phantom should be a declaration-site finding: %+v", f)
			}
		default:
			t.Errorf("unexpected write-only member %s", f.Member)
		}
	}
	if ghosts != 2 {
		t.Errorf("ghost store sites = %d, want 2 (ctor init + setGhost):\n%v", ghosts, wo)
	}
	if phantoms != 1 {
		t.Errorf("phantom findings = %d, want 1", phantoms)
	}
	if ds := deadStoreFindings(r); len(ds) != 0 {
		t.Errorf("stores to this-based members must not double-report as dead stores: %v", ds)
	}
}

// TestFindingsSorted verifies the (file, line, col, check) ordering
// contract on a fixture that produces several findings.
func TestFindingsSorted(t *testing.T) {
	ar := analyzeFixture(t, "plain.mcc", deadmember.Options{CallGraph: callgraph.RTA})
	r := Run(ar, Options{})
	for i := 1; i < len(r.Findings); i++ {
		a, b := r.Findings[i-1], r.Findings[i]
		if a.File > b.File ||
			(a.File == b.File && a.Line > b.Line) ||
			(a.File == b.File && a.Line == b.Line && a.Col > b.Col) {
			t.Fatalf("findings out of order at %d: %+v then %+v", i, a, b)
		}
	}
}

// TestParallelDeterminism mirrors the liveness shard-merge guarantee:
// any worker count yields identical findings.
func TestParallelDeterminism(t *testing.T) {
	for _, fixture := range []string{"plain.mcc", "writeonly.mcc", "library.mcc"} {
		opts := deadmember.Options{CallGraph: callgraph.RTA}
		if fixture == "library.mcc" {
			opts.LibraryClasses = []string{"Lib"}
		}
		ar := analyzeFixture(t, fixture, opts)
		seq := RunWith(ar, Options{}, Exec{Workers: 1})
		for _, workers := range []int{2, 4, 8} {
			par := RunWith(ar, Options{}, Exec{Workers: workers})
			if !reflect.DeepEqual(seq.Findings, par.Findings) {
				t.Fatalf("%s: findings differ between 1 and %d workers\nseq: %v\npar: %v",
					fixture, workers, seq.Findings, par.Findings)
			}
		}
	}
}

// TestBudgetOverrunDegrades drives the solver into its step budget and
// expects an ordinary degraded result — failures with the "budget"
// marker, no panic, no hang.
func TestBudgetOverrunDegrades(t *testing.T) {
	ar := analyzeFixture(t, "plain.mcc", deadmember.Options{CallGraph: callgraph.RTA})
	r := Run(ar, Options{Budget: 1})
	if !r.Degraded() {
		t.Fatal("budget 1 should degrade the run")
	}
	for _, f := range r.Failures {
		if f.Stage != "lint" {
			t.Errorf("failure stage = %q, want lint", f.Stage)
		}
		if f.Stack != "budget" {
			t.Errorf("failure marker = %q, want budget", f.Stack)
		}
		if !strings.Contains(f.Value, "budget") {
			t.Errorf("failure value should mention the budget: %q", f.Value)
		}
	}
}

// TestFaultInjection confirms a panicking lint worker is contained and
// surfaced, mirroring the liveness containment contract — and that the
// other functions' findings survive.
func TestFaultInjection(t *testing.T) {
	ar := analyzeFixture(t, "plain.mcc", deadmember.Options{CallGraph: callgraph.RTA})
	r := RunWith(ar, Options{}, Exec{
		Workers: 4,
		FuncFault: func(f *types.Func) {
			if f.QualifiedName() == "overwrite" {
				panic("boom")
			}
		},
	})
	if !r.Degraded() {
		t.Fatal("injected fault should degrade the run")
	}
	found := false
	for _, f := range r.Failures {
		if f.Unit == "overwrite" && f.Stage == "lint" {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing containment record for overwrite: %v", r.Failures)
	}
	// The faulted function's finding is lost; the others survive.
	for _, f := range deadStoreFindings(r) {
		if f.Func == "overwrite" {
			t.Errorf("faulted function should contribute no findings: %+v", f)
		}
	}
	if len(deadStoreFindings(r)) == 0 {
		t.Error("sibling functions' findings should be salvaged")
	}
}
