package lint

import (
	"context"
	"fmt"

	"deadmembers/internal/ast"
	"deadmembers/internal/cfg"
	"deadmembers/internal/dataflow"
	"deadmembers/internal/deadmember"
	"deadmembers/internal/heaplive"
	"deadmembers/internal/source"
	"deadmembers/internal/token"
	"deadmembers/internal/types"
)

// The dead-store check: backward may-liveness of member-access
// *locations* over the function's CFG. A location is a length-one
// access path (base, field) — base is a local, parameter, or global
// variable, or nil for the implicit this — and only syntactically
// direct stores (`v.m = e`, `p->m = e`, `m = e` inside a method, and
// constructor initializers) create trackable locations. Everything the
// tracker cannot see (aliases, whole-object copies, calls, mutation of
// the base) conservatively *generates* liveness, so a store reported
// dead really is overwritten-or-discarded on every path: findings are
// may-liveness-sound, false negatives are the accepted cost.

// loc is one tracked member-access location.
type loc struct {
	base  *types.Var // nil = the implicit this
	field *types.Field
}

// funcState carries one function's dead-store pass.
type funcState struct {
	ar   *deadmember.Result
	info *types.Info
	f    *types.Func
	cl   *classification
	sup  map[*types.Field]bool
	call *fieldSet // what a call out of f may read (callee union)

	g *cfg.Graph

	locs    []loc
	bit     map[loc]int
	byField map[*types.Field][]int
	byBase  map[*types.Var][]int // nil key = this
	all     dataflow.BitSet      // every bit
}

// deadStores runs the dead-store check on one reachable function whose
// CFG the caller already built (it is shared with the heap-tier pass).
// The returned error is a dataflow budget overrun or a context
// cancellation; findings are nil in that case.
func deadStores(ar *deadmember.Result, f *types.Func, g *cfg.Graph, cl *classification, sup map[*types.Field]bool, call *fieldSet, opts Options, ctx context.Context) ([]Finding, error) {
	fs := &funcState{
		ar: ar, info: ar.Program.Info, f: f, cl: cl, sup: sup, call: call, g: g,
		bit: map[loc]int{}, byField: map[*types.Field][]int{}, byBase: map[*types.Var][]int{},
	}
	fs.collectLocations()
	if len(fs.locs) == 0 {
		return nil, nil
	}
	fs.all = dataflow.NewBitSet(len(fs.locs))
	fs.all.SetAll(len(fs.locs))

	n := len(g.Blocks)
	p := dataflow.Problem{
		NumBlocks: n,
		Succs:     make([][]int, n),
		Bits:      len(fs.locs),
		Gen:       make([]dataflow.BitSet, n),
		Kill:      make([]dataflow.BitSet, n),
		Boundary:  fs.exitLive(),
		Budget:    opts.Budget,
		Ctx:       ctx,
		Unit:      f.QualifiedName(),
		Dir:       dataflow.Backward,
	}
	for i, b := range g.Blocks {
		p.Succs[i] = make([]int, len(b.Succs))
		for j, s := range b.Succs {
			p.Succs[i][j] = s.ID
		}
		p.Gen[i], p.Kill[i] = fs.blockTransfer(b)
	}

	sol, err := dataflow.Solve(p)
	if err != nil {
		return nil, err
	}

	// Flag walk: replay each reachable block backward from its Out set;
	// a candidate store whose location is not live at the store is dead.
	var out []Finding
	gen := dataflow.NewBitSet(len(fs.locs))
	kill := dataflow.NewBitSet(len(fs.locs))
	for i, b := range g.Blocks {
		if !b.Reachable {
			continue
		}
		live := sol.Out[i].Clone()
		for j := len(b.Nodes) - 1; j >= 0; j-- {
			node := b.Nodes[j]
			if l, at, ok := fs.storeAt(node); ok {
				if bit, tracked := fs.bit[l]; tracked && !live.Has(bit) {
					out = append(out, fs.finding(node, l, at))
				}
			}
			gen.Reset()
			kill.Reset()
			fs.atomEffect(node, gen, kill)
			live.AndNot(kill)
			live.Union(gen)
		}
	}
	return out, nil
}

// collectLocations builds the bit universe: one bit per distinct
// eligible candidate-store location, numbered in block/atom order so
// the vectors — and therefore Steps and findings — are deterministic.
func (fs *funcState) collectLocations() {
	for _, b := range fs.g.Blocks {
		for _, n := range b.Nodes {
			l, _, ok := fs.storeAt(n)
			if !ok {
				continue
			}
			if _, dup := fs.bit[l]; dup {
				continue
			}
			id := len(fs.locs)
			fs.bit[l] = id
			fs.locs = append(fs.locs, l)
			fs.byField[l.field] = append(fs.byField[l.field], id)
			fs.byBase[l.base] = append(fs.byBase[l.base], id)
		}
	}
}

// storeAt recognizes candidate-store atoms and returns the stored
// location. Ineligible stores (suppressed field, escaped base) are not
// candidates: their locations never enter the universe.
func (fs *funcState) storeAt(n ast.Node) (loc, source.Pos, bool) {
	var l loc
	var at source.Pos
	switch x := n.(type) {
	case *ast.CtorInit:
		fld := fs.info.CtorInitFields[x]
		if fld == nil {
			return l, at, false
		}
		l = loc{base: nil, field: fld}
		at = x.Pos()
	case *ast.Member:
		if fs.cl.acc[x] != accWrite {
			return l, at, false
		}
		fld := fs.info.FieldRefs[x]
		if fld == nil {
			return l, at, false
		}
		switch recv := ast.Unparen(x.X).(type) {
		case *ast.ThisExpr:
			l = loc{base: nil, field: fld}
		case *ast.Ident:
			v := fs.info.IdentVars[recv]
			if v == nil {
				return l, at, false
			}
			l = loc{base: v, field: fld}
		default:
			return l, at, false
		}
		at = x.Pos()
	case *ast.Ident:
		if fs.cl.acc[x] != accWrite {
			return l, at, false
		}
		fld := fs.info.IdentFields[x]
		if fld == nil {
			return l, at, false
		}
		l = loc{base: nil, field: fld}
		at = x.Pos()
	default:
		return l, at, false
	}
	if fs.sup[l.field] || (l.base != nil && fs.cl.escaped[l.base]) {
		return l, at, false
	}
	return l, at, true
}

// exitLive is the boundary vector — locations observable after the
// function returns: members of this (the object outlives the call),
// members reached through globals or pointers, and members of value
// locals whose class runs a user destructor at scope exit.
func (fs *funcState) exitLive() dataflow.BitSet {
	out := dataflow.NewBitSet(len(fs.locs))
	for i, l := range fs.locs {
		switch {
		case l.base == nil, l.base.Global:
			out.Set(i)
		case types.IsPointer(l.base.Type):
			out.Set(i)
		case heaplive.HasUserDtor(types.IsClass(l.base.Type)):
			out.Set(i)
		}
	}
	return out
}

// blockTransfer composes the block's atoms into one gen/kill pair.
// Walking atoms last-to-first with the new atom as the outer transfer:
// G' = g ∪ (G − k), K' = K ∪ k.
func (fs *funcState) blockTransfer(b *cfg.Block) (gen, kill dataflow.BitSet) {
	gen = dataflow.NewBitSet(len(fs.locs))
	kill = dataflow.NewBitSet(len(fs.locs))
	g := dataflow.NewBitSet(len(fs.locs))
	k := dataflow.NewBitSet(len(fs.locs))
	for j := len(b.Nodes) - 1; j >= 0; j-- {
		g.Reset()
		k.Reset()
		fs.atomEffect(b.Nodes[j], g, k)
		gen.AndNot(k)
		gen.Union(g)
		kill.Union(k)
	}
	return gen, kill
}

// genField adds liveness for every tracked location of fld, and — when
// the field holds a class value — of every field contained in it
// (copying the member copies its contents).
func (fs *funcState) genField(fld *types.Field, gen dataflow.BitSet) {
	for _, id := range fs.byField[fld] {
		gen.Set(id)
	}
	t := fld.Type
	for {
		if arr, ok := t.(*types.Array); ok {
			t = arr.Elem
			continue
		}
		break
	}
	if c := types.IsClass(t); c != nil {
		fs.genClass(c, gen, map[*types.Class]bool{})
	}
}

// genClass adds liveness for every tracked location whose field is
// contained in c (transitively).
func (fs *funcState) genClass(c *types.Class, gen dataflow.BitSet, seen map[*types.Class]bool) {
	if c == nil || seen[c] {
		return
	}
	seen[c] = true
	for _, f := range c.Fields {
		for _, id := range fs.byField[f] {
			gen.Set(id)
		}
		t := f.Type
		for {
			if arr, ok := t.(*types.Array); ok {
				t = arr.Elem
				continue
			}
			break
		}
		fs.genClass(types.IsClass(t), gen, seen)
	}
	for _, b := range c.Bases {
		fs.genClass(b.Class, gen, seen)
	}
}

// genCall adds the callee read summary: everything a call out of this
// function may read.
func (fs *funcState) genCall(gen dataflow.BitSet) {
	if fs.call == nil {
		gen.Union(fs.all)
		return
	}
	if fs.call.universal {
		gen.Union(fs.all)
		return
	}
	for fld := range fs.call.m {
		fs.genField(fld, gen)
	}
}

// atomEffect computes one atom's gen/kill contribution.
func (fs *funcState) atomEffect(n ast.Node, gen, kill dataflow.BitSet) {
	// A candidate store kills its own location.
	if l, _, ok := fs.storeAt(n); ok {
		if id, tracked := fs.bit[l]; tracked {
			kill.Set(id)
		}
	}

	switch x := n.(type) {
	case *ast.Member:
		if fld := fs.info.FieldRefs[x]; fld != nil && fs.cl.acc[x] == accRead {
			fs.genField(fld, gen)
		}
	case *ast.Ident:
		if fld := fs.info.IdentFields[x]; fld != nil {
			if fs.cl.acc[x] == accRead {
				fs.genField(fld, gen)
			}
			return
		}
		if v := fs.info.IdentVars[x]; v != nil && fs.cl.varAcc[x] == accRead {
			// Copying a class-typed variable reads its members.
			if types.IsClass(v.Type) != nil {
				for _, id := range fs.byBase[v] {
					gen.Set(id)
				}
			}
		}
	case *ast.QualifiedIdent:
		// &C::m — the field is suppressed program-wide; no local effect.
	case *ast.Unary:
		switch x.Op {
		case token.Star:
			// Dereferencing into a class value may read any aliased
			// object's members.
			if types.IsClass(fs.info.TypeOf(x)) != nil {
				gen.Union(fs.all)
			}
		case token.Inc, token.Dec:
			if v := fs.cl.mut[x]; v != nil {
				for _, id := range fs.byBase[v] {
					gen.Set(id)
				}
			}
		}
	case *ast.Postfix:
		if v := fs.cl.mut[x]; v != nil {
			for _, id := range fs.byBase[v] {
				gen.Set(id)
			}
		}
	case *ast.Index:
		if types.IsClass(fs.info.TypeOf(x)) != nil {
			gen.Union(fs.all)
		}
	case *ast.Assign:
		// Mutating a base variable detaches its tracked locations; the
		// values stored before may still be observable through the old
		// object, so they become (conservatively) live.
		if v := fs.cl.mut[x]; v != nil {
			for _, id := range fs.byBase[v] {
				gen.Set(id)
			}
		}
	case *ast.MemberPtrDeref:
		// o.*p reads a statically unknown member.
		gen.Union(fs.all)
	case *ast.Call:
		fs.genCall(gen)
	case *ast.New:
		// Runs a constructor.
		fs.genCall(gen)
	case *ast.Delete:
		// Runs a destructor; the pointee's members are consumed.
		fs.genCall(gen)
		gen.Union(fs.all)
	case *ast.VarDecl:
		if fs.info.VarCtors[x] != nil {
			fs.genCall(gen)
		}
	}
}

// finding builds the dead-store diagnostic for one store site.
func (fs *funcState) finding(n ast.Node, l loc, at source.Pos) Finding {
	pos := fs.ar.Program.FileSet.Position(at)
	what := "store"
	if _, isInit := n.(*ast.CtorInit); isInit {
		what = "initializer"
	}
	obj := "this"
	if l.base != nil {
		obj = l.base.Name
	}
	return Finding{
		Check:  CheckDeadStore,
		File:   pos.File,
		Line:   pos.Line,
		Col:    pos.Column,
		Member: l.field.QualifiedName(),
		Func:   fs.f.QualifiedName(),
		Message: fmt.Sprintf("dead %s to %s.%s: no path reads %s before it is overwritten or discarded",
			what, obj, l.field.Name, l.field.Name),
	}
}
