package lint

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteText renders findings one per line in the conventional
// compiler-diagnostic shape: "file:line:col: check: message".
func WriteText(w io.Writer, r *Result) error {
	for _, f := range r.Findings {
		if _, err := fmt.Fprintf(w, "%s:%d:%d: %s: %s\n", f.File, f.Line, f.Col, f.Check, f.Message); err != nil {
			return err
		}
	}
	return nil
}

// jsonReport is the machine-readable envelope of a lint run.
type jsonReport struct {
	Findings    []Finding `json:"findings"`
	Funcs       int       `json:"funcs"`
	Degraded    bool      `json:"degraded"`
	Failures    []string  `json:"failures,omitempty"`
	Interrupted bool      `json:"interrupted,omitempty"`
}

// WriteJSON renders the run as one indented JSON document.
func WriteJSON(w io.Writer, r *Result) error {
	rep := jsonReport{
		Findings:    r.Findings,
		Funcs:       r.Funcs,
		Degraded:    r.Degraded(),
		Interrupted: r.Interrupted,
	}
	if rep.Findings == nil {
		rep.Findings = []Finding{}
	}
	for _, f := range r.Failures {
		rep.Failures = append(rep.Failures, f.Error())
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
