package lint

import (
	"deadmembers/internal/ast"
	"deadmembers/internal/source"
	"deadmembers/internal/token"
	"deadmembers/internal/types"
)

// This file classifies every member access of a function body the way
// internal/deadmember's ProcessStatement does — read, write, address
// taken, lvalue path — but records the classification per AST node
// instead of marking members live, so the flow-sensitive passes can
// attach gen/kill effects to the CFG atoms.
//
// One deliberate divergence from the flow-insensitive analysis: the
// argument of delete/free counts as a read here. The paper's special
// case licenses removing the member altogether (store sites and the
// delete together); a lint finding on a single store whose value a
// later delete consumes would read as a false positive.

// access classifies one member-access node.
type access int8

const (
	accNone access = iota
	accRead
	accWrite
	accAddr
	accPath // locates a subobject: neither read nor written
)

// writeSite is one member store site (for the write-only pass).
type writeSite struct {
	field *types.Field
	pos   source.Pos
}

// classification is the per-function access record.
type classification struct {
	// acc classifies *ast.Member and field-resolving *ast.Ident nodes.
	acc map[ast.Node]access

	// varAcc classifies variable-resolving *ast.Ident nodes, so the
	// dataflow pass can tell a class-value copy (read) from a receiver
	// path step or a store target.
	varAcc map[*ast.Ident]access

	// escaped holds local/param/global variables whose address is taken
	// in this function; stores through them cannot be tracked.
	escaped map[*types.Var]bool

	// mut maps Assign/Unary/Postfix nodes that modify a plain variable
	// (x = e, x += e, ++x, x--) to that variable: mutating a base
	// invalidates every tracked location under it.
	mut map[ast.Node]*types.Var

	// reads is the set of fields this function reads directly — the
	// seed of the transitive callee summaries. Class-value copies
	// (returning, passing, or assigning whole objects) read every
	// contained field.
	reads map[*types.Field]bool

	// addr is the set of fields whose address is taken here, via &expr
	// or &C::m (suppressed program-wide).
	addr map[*types.Field]bool

	// writes lists every member store site in source-walk order,
	// including constructor initializers.
	writes []writeSite

	// universal marks a function containing a pointer-to-member
	// dereference: which member it reads is statically unknown.
	universal bool
}

type classifier struct {
	info *types.Info
	c    *classification
}

// classify walks f's initializer list and body, mirroring the context
// discipline of deadmember's ProcessStatement.
func classify(info *types.Info, f *types.Func) *classification {
	cl := &classifier{info: info, c: &classification{
		acc:     map[ast.Node]access{},
		varAcc:  map[*ast.Ident]access{},
		escaped: map[*types.Var]bool{},
		mut:     map[ast.Node]*types.Var{},
		reads:   map[*types.Field]bool{},
		addr:    map[*types.Field]bool{},
	}}
	for i := range f.Inits {
		init := &f.Inits[i]
		if fld := info.CtorInitFields[init]; fld != nil {
			cl.c.writes = append(cl.c.writes, writeSite{fld, init.Pos()})
		}
		for _, arg := range init.Args {
			cl.expr(arg, accRead)
		}
	}
	if f.Body != nil {
		cl.stmt(f.Body)
	}
	return cl.c
}

func (cl *classifier) stmt(s ast.Stmt) {
	switch x := s.(type) {
	case *ast.BlockStmt:
		for _, st := range x.Stmts {
			cl.stmt(st)
		}
	case *ast.DeclStmt:
		if x.Var.Init != nil {
			cl.expr(x.Var.Init, accRead)
		}
		for _, arg := range x.Var.CtorArgs {
			cl.expr(arg, accRead)
		}
	case *ast.ExprStmt:
		cl.expr(x.X, accRead)
	case *ast.IfStmt:
		cl.expr(x.Cond, accRead)
		cl.stmt(x.Then)
		if x.Else != nil {
			cl.stmt(x.Else)
		}
	case *ast.WhileStmt:
		cl.expr(x.Cond, accRead)
		cl.stmt(x.Body)
	case *ast.DoWhileStmt:
		cl.stmt(x.Body)
		cl.expr(x.Cond, accRead)
	case *ast.ForStmt:
		if x.Init != nil {
			cl.stmt(x.Init)
		}
		if x.Cond != nil {
			cl.expr(x.Cond, accRead)
		}
		if x.Post != nil {
			cl.expr(x.Post, accRead)
		}
		cl.stmt(x.Body)
	case *ast.SwitchStmt:
		cl.expr(x.X, accRead)
		for i := range x.Cases {
			for _, v := range x.Cases[i].Values {
				cl.expr(v, accRead)
			}
			for _, st := range x.Cases[i].Body {
				cl.stmt(st)
			}
		}
	case *ast.ReturnStmt:
		if x.X != nil {
			cl.expr(x.X, accRead)
		}
	}
}

// record classifies a field access and folds it into the summaries.
func (cl *classifier) record(n ast.Node, fld *types.Field, c access, at source.Pos) {
	cl.c.acc[n] = c
	switch c {
	case accRead:
		cl.c.reads[fld] = true
	case accWrite:
		cl.c.writes = append(cl.c.writes, writeSite{fld, at})
	case accAddr:
		cl.c.addr[fld] = true
	}
}

// readsClass records that every field contained in cls (including bases
// and class-typed members, through arrays) is read: copying a class
// value reads all of it.
func (cl *classifier) readsClass(t types.Type) {
	cls := types.IsClass(t)
	if cls == nil {
		return
	}
	seen := map[*types.Class]bool{}
	var walk func(*types.Class)
	walk = func(c *types.Class) {
		if c == nil || seen[c] {
			return
		}
		seen[c] = true
		for _, f := range c.Fields {
			cl.c.reads[f] = true
			ft := f.Type
			for {
				if arr, ok := ft.(*types.Array); ok {
					ft = arr.Elem
					continue
				}
				break
			}
			walk(types.IsClass(ft))
		}
		for _, b := range c.Bases {
			walk(b.Class)
		}
	}
	walk(cls)
}

func (cl *classifier) expr(e ast.Expr, c access) {
	switch x := e.(type) {
	case nil:
		return
	case *ast.Paren:
		cl.expr(x.X, c)

	case *ast.IntLit, *ast.FloatLit, *ast.CharLit, *ast.BoolLit,
		*ast.StringLit, *ast.NullLit, *ast.ThisExpr:

	case *ast.Ident:
		if fld := cl.info.IdentFields[x]; fld != nil {
			cl.record(x, fld, c, x.Pos())
			return
		}
		if v := cl.info.IdentVars[x]; v != nil {
			cl.c.varAcc[x] = c
			switch c {
			case accAddr:
				cl.c.escaped[v] = true
			case accRead:
				// Copying a class-typed variable reads its fields.
				cl.readsClass(v.Type)
			}
		}

	case *ast.QualifiedIdent:
		// Reached only as the operand of & (pointer-to-member).
		if fld := cl.info.QualFieldRefs[x]; fld != nil {
			cl.c.addr[fld] = true
		}

	case *ast.Member:
		if fld := cl.info.FieldRefs[x]; fld != nil {
			cl.record(x, fld, c, x.Pos())
			if c == accRead {
				// Copying a class-valued member reads its fields.
				cl.readsClass(cl.info.TypeOf(x))
			}
		}
		// Receiver: through a pointer the prefix is read; through dot
		// it only locates a subobject — unless the whole access is a
		// read, which chains reads down the path (paper Figure 1).
		if x.Arrow || c == accRead {
			cl.expr(x.X, accRead)
		} else {
			cl.expr(x.X, accPath)
		}

	case *ast.Unary:
		switch x.Op {
		case token.Amp:
			if qi, ok := ast.Unparen(x.X).(*ast.QualifiedIdent); ok {
				if fld := cl.info.QualFieldRefs[qi]; fld != nil {
					cl.c.addr[fld] = true
				}
				return
			}
			cl.expr(x.X, accAddr)
		case token.Star:
			if c == accRead {
				// Reading *p of class type copies the pointee.
				cl.readsClass(cl.info.TypeOf(x))
			}
			cl.expr(x.X, accRead)
		case token.Inc, token.Dec:
			if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
				if v := cl.info.IdentVars[id]; v != nil {
					cl.c.mut[x] = v
				}
			}
			cl.expr(x.X, accRead)
		default:
			cl.expr(x.X, accRead)
		}

	case *ast.Postfix:
		if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
			if v := cl.info.IdentVars[id]; v != nil {
				cl.c.mut[x] = v
			}
		}
		cl.expr(x.X, accRead)

	case *ast.Binary:
		cl.expr(x.X, accRead)
		cl.expr(x.Y, accRead)

	case *ast.Assign:
		if id, ok := ast.Unparen(x.LHS).(*ast.Ident); ok {
			if v := cl.info.IdentVars[id]; v != nil {
				cl.c.mut[x] = v
			}
		}
		if x.Op == token.Assign {
			cl.expr(x.LHS, accWrite)
		} else {
			// Compound assignment reads the old value.
			cl.expr(x.LHS, accRead)
		}
		cl.expr(x.RHS, accRead)

	case *ast.Cond:
		cl.expr(x.C, accRead)
		cl.expr(x.Then, c)
		cl.expr(x.Else, c)

	case *ast.MemberPtrDeref:
		cl.c.universal = true
		if x.Arrow {
			cl.expr(x.X, accRead)
		} else {
			cl.expr(x.X, accPath)
		}
		cl.expr(x.Ptr, accRead)

	case *ast.Index:
		switch c {
		case accRead, accAddr:
			if c == accRead {
				cl.readsClass(cl.info.TypeOf(x))
			}
			cl.expr(x.X, accRead)
		default:
			cl.expr(x.X, accPath)
		}
		cl.expr(x.I, accRead)

	case *ast.Call:
		if m, ok := ast.Unparen(x.Fun).(*ast.Member); ok {
			if m.Arrow {
				cl.expr(m.X, accRead)
			} else {
				cl.expr(m.X, accPath)
			}
		}
		for _, arg := range x.Args {
			cl.expr(arg, accRead)
		}

	case *ast.Cast:
		cl.expr(x.X, accRead)

	case *ast.New:
		for _, arg := range x.Args {
			cl.expr(arg, accRead)
		}
		if x.Len != nil {
			cl.expr(x.Len, accRead)
		}

	case *ast.Delete:
		// Deliberately a read (see the file comment).
		cl.expr(x.X, accRead)

	case *ast.Sizeof:
		// The operand is not evaluated.
	}
}
