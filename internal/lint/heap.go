package lint

import (
	"fmt"

	"deadmembers/internal/ast"
	"deadmembers/internal/deadmember"
	"deadmembers/internal/heaplive"
	"deadmembers/internal/types"
)

// This file bridges the lint layer to internal/heaplive: the heap
// precision tier reuses lint's per-function access classification and
// its call-graph summary fixpoint, adapted to heaplive's interfaces.

// accAdapter presents a classification as heaplive.Accesses.
type accAdapter struct{ cl *classification }

func mapAccess(a access) heaplive.Access {
	switch a {
	case accRead:
		return heaplive.AccRead
	case accWrite:
		return heaplive.AccWrite
	case accAddr:
		return heaplive.AccAddr
	case accPath:
		return heaplive.AccPath
	}
	return heaplive.AccNone
}

func (a accAdapter) MemberAccess(n ast.Node) heaplive.Access { return mapAccess(a.cl.acc[n]) }
func (a accAdapter) VarAccess(id *ast.Ident) heaplive.Access { return mapAccess(a.cl.varAcc[id]) }
func (a accAdapter) Escaped(v *types.Var) bool               { return a.cl.escaped[v] }
func (a accAdapter) MutatedVar(n ast.Node) *types.Var        { return a.cl.mut[n] }

// AccessesFor classifies f's body with lint's classifier and adapts it
// to heaplive.Accesses — the hook internal/heaplive's tests drive the
// analysis through.
func AccessesFor(info *types.Info, f *types.Func) heaplive.Accesses {
	return accAdapter{classify(info, f)}
}

// heapSummary assembles one function's callee effect summary for the
// heap tier from the per-function read and write unions.
func heapSummary(reads, writes *fieldSet) heaplive.Summary {
	return heaplive.Summary{
		Reads:     reads.m,
		Writes:    writes.m,
		Universal: reads.universal || writes.universal,
	}
}

// heapFinding converts one chained dead store into a lint finding. The
// Member field carries the final field — the stored cell — matching the
// flow tier's convention; the message spells the whole path.
func heapFinding(ar *deadmember.Result, f *types.Func, ds heaplive.DeadStore) Finding {
	pos := ar.Program.FileSet.Position(ds.Pos)
	return Finding{
		Check:  CheckDeadStore,
		File:   pos.File,
		Line:   pos.Line,
		Col:    pos.Column,
		Member: ds.Path.Final().QualifiedName(),
		Func:   f.QualifiedName(),
		Message: fmt.Sprintf("dead store to %s: no path reads %s before it is overwritten or discarded",
			ds.Path, ds.Path.Final().Name),
	}
}
