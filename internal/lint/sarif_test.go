package lint

import (
	"bytes"
	"encoding/json"
	"testing"

	"deadmembers/internal/callgraph"
	"deadmembers/internal/deadmember"
)

// TestSARIFShape validates the output against the SARIF 2.1.0 schema
// shape: version/$schema at the top, one run with tool.driver.name and
// the rule catalog, and results carrying ruleId, level, message, and a
// physicalLocation with artifactLocation + region.
func TestSARIFShape(t *testing.T) {
	ar := analyzeFixture(t, "plain.mcc", deadmember.Options{CallGraph: callgraph.RTA})
	r := Run(ar, Options{})
	if len(r.Findings) == 0 {
		t.Fatal("fixture should produce findings")
	}
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, r); err != nil {
		t.Fatal(err)
	}

	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if doc["version"] != "2.1.0" {
		t.Errorf("version = %v, want 2.1.0", doc["version"])
	}
	schema, _ := doc["$schema"].(string)
	if schema == "" {
		t.Error("$schema missing")
	}

	runs, ok := doc["runs"].([]any)
	if !ok || len(runs) != 1 {
		t.Fatalf("runs = %v, want exactly one", doc["runs"])
	}
	run := runs[0].(map[string]any)
	driver := run["tool"].(map[string]any)["driver"].(map[string]any)
	if driver["name"] != "deadlint" {
		t.Errorf("driver name = %v", driver["name"])
	}
	rules, ok := driver["rules"].([]any)
	if !ok || len(rules) != 2 {
		t.Fatalf("rules = %v, want the 2-rule catalog", driver["rules"])
	}
	ruleIDs := map[string]bool{}
	for _, r := range rules {
		rm := r.(map[string]any)
		ruleIDs[rm["id"].(string)] = true
		if rm["shortDescription"].(map[string]any)["text"] == "" {
			t.Error("rule missing shortDescription.text")
		}
	}
	if !ruleIDs[CheckDeadStore] || !ruleIDs[CheckWriteOnly] {
		t.Errorf("rule catalog incomplete: %v", ruleIDs)
	}

	results, ok := run["results"].([]any)
	if !ok || len(results) != len(r.Findings) {
		t.Fatalf("results = %d, want %d", len(results), len(r.Findings))
	}
	for i, res := range results {
		rm := res.(map[string]any)
		if !ruleIDs[rm["ruleId"].(string)] {
			t.Errorf("result %d has unknown ruleId %v", i, rm["ruleId"])
		}
		if rm["level"] != "warning" {
			t.Errorf("result %d level = %v", i, rm["level"])
		}
		if rm["message"].(map[string]any)["text"] == "" {
			t.Errorf("result %d missing message text", i)
		}
		locs := rm["locations"].([]any)
		if len(locs) != 1 {
			t.Fatalf("result %d locations = %d", i, len(locs))
		}
		phys := locs[0].(map[string]any)["physicalLocation"].(map[string]any)
		if phys["artifactLocation"].(map[string]any)["uri"] == "" {
			t.Errorf("result %d missing artifactLocation.uri", i)
		}
		region := phys["region"].(map[string]any)
		if region["startLine"].(float64) <= 0 || region["startColumn"].(float64) <= 0 {
			t.Errorf("result %d region not positive: %v", i, region)
		}
	}
}

// TestTextAndJSONFormats sanity-checks the other two writers.
func TestTextAndJSONFormats(t *testing.T) {
	ar := analyzeFixture(t, "plain.mcc", deadmember.Options{CallGraph: callgraph.RTA})
	r := Run(ar, Options{})

	var text bytes.Buffer
	if err := WriteText(&text, r); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Count(text.Bytes(), []byte("\n"))
	if lines != len(r.Findings) {
		t.Errorf("text lines = %d, want %d", lines, len(r.Findings))
	}
	if !bytes.Contains(text.Bytes(), []byte("plain.mcc:")) {
		t.Error("text output missing file positions")
	}

	var js bytes.Buffer
	if err := WriteJSON(&js, r); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Findings []Finding `json:"findings"`
		Funcs    int       `json:"funcs"`
		Degraded bool      `json:"degraded"`
	}
	if err := json.Unmarshal(js.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != len(r.Findings) || rep.Funcs != r.Funcs || rep.Degraded {
		t.Errorf("JSON round-trip mismatch: %+v", rep)
	}
}
