package lint

import (
	"encoding/json"
	"io"
)

// SARIF 2.1.0 output — the minimal valid shape (tool/driver/rules and
// results with physicalLocation) that code-review UIs ingest. The full
// check catalog is always listed under rules, even when a run produced
// no findings for a check, so rule metadata is stable across runs.

type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// sarifRules is the check catalog.
var sarifRules = []sarifRule{
	{ID: CheckDeadStore, ShortDescription: sarifMessage{
		Text: "A member store no execution path can observe before it is overwritten or discarded."}},
	{ID: CheckWriteOnly, ShortDescription: sarifMessage{
		Text: "A data member that is only ever written; the store sites are orphaned and the member can be removed."}},
}

// WriteSARIF renders the run as a SARIF 2.1.0 log.
func WriteSARIF(w io.Writer, r *Result) error {
	results := make([]sarifResult, 0, len(r.Findings))
	for _, f := range r.Findings {
		results = append(results, sarifResult{
			RuleID:  f.Check,
			Level:   "warning",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: f.File},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
				},
			}},
		})
	}
	log := sarifLog{
		Version: "2.1.0",
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:           "deadlint",
				InformationURI: "https://example.invalid/deadmembers",
				Rules:          sarifRules,
			}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
