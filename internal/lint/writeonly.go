package lint

import (
	"fmt"

	"deadmembers/internal/deadmember"
	"deadmembers/internal/types"
)

// The write-only-member check corroborates the flow-insensitive dead
// set: for every member the paper's algorithm proves dead, it explains
// the verdict by pointing at each store site whose value can never be
// observed — the "orphaned" stores that removing the member would
// delete. A dead member with no store sites at all is reported once at
// its declaration.
func writeOnly(ar *deadmember.Result, funcs []*types.Func, cls []*classification) []Finding {
	dead := ar.DeadMembers()
	if len(dead) == 0 {
		return nil
	}
	deadSet := make(map[*types.Field]bool, len(dead))
	for _, f := range dead {
		deadSet[f] = true
	}

	// Store sites of dead members, in reachable-function scan order.
	var out []Finding
	seen := map[*types.Field]bool{}
	for i, fn := range funcs {
		for _, w := range cls[i].writes {
			if !deadSet[w.field] {
				continue
			}
			seen[w.field] = true
			pos := ar.Program.FileSet.Position(w.pos)
			out = append(out, Finding{
				Check:  CheckWriteOnly,
				File:   pos.File,
				Line:   pos.Line,
				Col:    pos.Column,
				Member: w.field.QualifiedName(),
				Func:   fn.QualifiedName(),
				Message: fmt.Sprintf("member %s is write-only: this store is orphaned (the member is dead and can be removed)",
					w.field.QualifiedName()),
			})
		}
	}

	// Dead members never stored in reachable code: report once at the
	// declaration.
	for _, fld := range dead {
		if seen[fld] {
			continue
		}
		pos := ar.Program.FileSet.Position(fld.Pos)
		out = append(out, Finding{
			Check:  CheckWriteOnly,
			File:   pos.File,
			Line:   pos.Line,
			Col:    pos.Column,
			Member: fld.QualifiedName(),
			Message: fmt.Sprintf("member %s is dead: no reachable code reads or writes it",
				fld.QualifiedName()),
		})
	}
	return out
}
