// Package lint implements flow-sensitive diagnostics on top of the
// flow-insensitive dead-member analysis: per-function CFGs
// (internal/cfg), backward may-liveness of member-access locations
// (internal/dataflow), and two checks —
//
//   - dead-store: a write to o.m that no execution path can follow with
//     a read of m from o before another write or function exit;
//   - write-only-member: corroborates the flow-insensitive dead set by
//     listing the orphaned store sites of each dead member.
//
// The paper's special cases carry over as suppressions: volatile,
// address-taken (incl. pointer-to-member), union-contained,
// unsafe-cast-exposed, and library-class members never produce
// dead-store findings. Findings are sorted by (file, line, col, check,
// message), and every per-function pass runs inside a failure.Catch
// boundary with a dataflow step budget, so one pathological function
// degrades the result instead of wedging or crashing the run.
package lint

import (
	"context"
	"errors"
	"sort"
	"sync"

	"deadmembers/internal/cfg"
	"deadmembers/internal/dataflow"
	"deadmembers/internal/deadmember"
	"deadmembers/internal/failure"
	"deadmembers/internal/heaplive"
	"deadmembers/internal/types"
)

// Checks emitted by this package.
const (
	CheckDeadStore = "dead-store"
	CheckWriteOnly = "write-only-member"
)

// Options configures what the lint pass computes.
type Options struct {
	// Budget caps dataflow solver steps per function; 0 selects the
	// automatic budget (dataflow.DefaultBudget), which no well-formed
	// function exceeds. The budget applies to each solver pass
	// independently (the heap tier runs two per function).
	Budget int

	// Precision selects the liveness tier: paper (flow-insensitive
	// write-only corroboration only), flow (the default, zero value:
	// length-one access paths), or heap (flow plus the access-graph
	// chained-path pass). Findings are monotone: paper ⊆ flow ⊆ heap.
	Precision heaplive.Precision
}

// Exec configures how — not what — Run computes; any Workers value
// yields byte-identical findings.
type Exec struct {
	// Workers bounds the per-function pass goroutines (≤1 = sequential).
	Workers int

	// Ctx, when non-nil, is polled between functions; cancellation stops
	// the pass and sets Result.Interrupted.
	Ctx context.Context

	// FuncFault, when non-nil, runs inside each function's containment
	// boundary before the function is linted (fault-injection tests).
	FuncFault func(*types.Func)
}

// Finding is one diagnostic, positioned at the offending store site.
type Finding struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Member  string `json:"member"`
	Func    string `json:"func,omitempty"`
	Message string `json:"message"`
}

// Result is the outcome of a lint run.
type Result struct {
	// Findings, sorted by (File, Line, Col, Check, Message).
	Findings []Finding

	// Failures records functions whose lint pass panicked or exhausted
	// the dataflow budget; their findings are missing, so the result is
	// degraded (incomplete, never wrong).
	Failures []*failure.Failure

	// Interrupted reports that Exec.Ctx was cancelled mid-pass.
	Interrupted bool

	// Funcs counts the reachable functions the pass covered.
	Funcs int
}

// Degraded reports whether any per-function pass was contained after a
// fault or budget overrun, so findings may be missing.
func (r *Result) Degraded() bool { return len(r.Failures) > 0 }

// Run lints the analyzed program with default execution.
func Run(ar *deadmember.Result, opts Options) *Result {
	return RunWith(ar, opts, Exec{})
}

// RunWith is Run under an explicit execution configuration. The
// deadmember.Result supplies the program, the call graph (reachable set
// and edges for callee read summaries), and the flow-insensitive dead
// set the write-only check corroborates.
func RunWith(ar *deadmember.Result, opts Options, exec Exec) *Result {
	res := &Result{}
	ctx := exec.Ctx
	if ctx == nil {
		ctx = context.Background()
	}

	funcs := ar.CallGraph.ReachableFuncs()
	res.Funcs = len(funcs)

	// Phase 1 (sequential): classify every reachable function's accesses
	// once; the classifications feed suppression, callee summaries, and
	// the per-function dataflow passes alike.
	cls := make([]*classification, len(funcs))
	index := make(map[*types.Func]int, len(funcs))
	for i, f := range funcs {
		if ctx.Err() != nil {
			res.Interrupted = true
			return res
		}
		index[f] = i
		if pf := failure.Catch("lint", f.QualifiedName(), func() {
			cls[i] = classify(ar.Program.Info, f)
		}); pf != nil {
			res.Failures = append(res.Failures, pf)
			cls[i] = &classification{} // empty: function contributes nothing
		}
	}

	// Phase 2 (parallel): per-function CFG + backward liveness. Results
	// land in per-index slots and merge in index order, so findings are
	// byte-identical at any worker count. The paper tier skips this
	// phase entirely — its findings are the flow-insensitive write-only
	// corroboration of phase 3.
	if opts.Precision != heaplive.PrecisionPaper {
		sup := suppressedFields(ar, cls)
		sums := readSummaries(ar, funcs, cls, index)

		// What each function's outgoing calls may read: the union of its
		// callees' transitive summaries (not the function's own reads —
		// those gen at their own atoms).
		calls := calleeUnion(ar, funcs, index, sums)

		// The heap tier additionally needs what a call may *write*: a
		// callee store to a chain-interior field can re-point a tracked
		// path's prefix.
		var callWrites []*fieldSet
		if opts.Precision == heaplive.PrecisionHeap {
			callWrites = calleeUnion(ar, funcs, index, writeSummaries(ar, funcs, cls, index))
		}

		findings := make([][]Finding, len(funcs))
		fails := make([]*failure.Failure, len(funcs))
		errs := make([]error, len(funcs))
		lintOne := func(i int) {
			f := funcs[i]
			fails[i] = failure.Catch("lint", f.QualifiedName(), func() {
				if exec.FuncFault != nil {
					exec.FuncFault(f)
				}
				g := cfg.Build(f)
				if g == nil {
					return
				}
				findings[i], errs[i] = deadStores(ar, f, g, cls[i], sup, calls[i], opts, ctx)
				if errs[i] != nil || callWrites == nil {
					return
				}
				stores, herr := heaplive.Analyze(ar.Program.Info, g, accAdapter{cls[i]},
					heapSummary(calls[i], callWrites[i]), sup,
					heaplive.Options{Budget: opts.Budget, Ctx: ctx})
				if herr != nil {
					errs[i] = herr
					return
				}
				for _, ds := range stores {
					findings[i] = append(findings[i], heapFinding(ar, f, ds))
				}
			})
		}
		if !runParallel(ctx, exec.Workers, len(funcs), lintOne) {
			res.Interrupted = true
		}
		for i, f := range funcs {
			res.Findings = append(res.Findings, findings[i]...)
			if fails[i] != nil {
				res.Failures = append(res.Failures, fails[i])
			}
			switch {
			case errs[i] == nil:
			case errors.Is(errs[i], dataflow.ErrBudget):
				// A budget overrun is an ordinary internal diagnostic, not a
				// crash: surface it through the same Failures/Degraded path.
				res.Failures = append(res.Failures, &failure.Failure{
					Stage: "lint",
					Unit:  f.QualifiedName(),
					Value: errs[i].Error(),
					Stack: "budget",
				})
			default:
				// Context cancellation mid-solve.
				res.Interrupted = true
			}
		}
	}

	// Phase 3: write-only corroboration over the flow-insensitive dead
	// set — every store site of a dead member is by construction
	// orphaned; list them as the explanation.
	res.Findings = append(res.Findings, writeOnly(ar, funcs, cls)...)

	sortFindings(res.Findings)
	sortFailures(res.Failures)
	return res
}

// sortFindings orders findings by (file, line, col, check, message) —
// the deterministic contract of the CLI output.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
}

func sortFailures(fs []*failure.Failure) {
	sort.SliceStable(fs, func(i, j int) bool { return fs[i].Unit < fs[j].Unit })
}

// suppressedFields computes the program-wide set of fields that never
// produce dead-store findings: the paper's special cases, applied as
// suppressions. The address-taken scan covers reachable functions only
// — sound, because an access in unreachable code cannot execute.
func suppressedFields(ar *deadmember.Result, cls []*classification) map[*types.Field]bool {
	sup := map[*types.Field]bool{}
	var supClass func(*types.Class, map[*types.Class]bool)
	supClass = func(c *types.Class, seen map[*types.Class]bool) {
		if c == nil || seen[c] {
			return
		}
		seen[c] = true
		for _, f := range c.Fields {
			sup[f] = true
			t := f.Type
			for {
				if arr, ok := t.(*types.Array); ok {
					t = arr.Elem
					continue
				}
				break
			}
			supClass(types.IsClass(t), seen)
		}
		for _, b := range c.Bases {
			supClass(b.Class, seen)
		}
	}

	for _, c := range ar.Program.Classes {
		// Volatile members: every write is observable.
		for _, f := range c.Fields {
			if f.Volatile {
				sup[f] = true
			}
		}
		// Union-contained members: stores alias across the union.
		if c.IsUnion() {
			supClass(c, map[*types.Class]bool{})
		}
		// Library classes: unclassifiable (paper §3.3).
		if c.Library || ar.IsLibraryClass(c) {
			for _, f := range c.Fields {
				sup[f] = true
			}
		}
	}

	// Address-taken members (incl. &C::m): reads through the pointer
	// are invisible to the tracker.
	for _, cl := range cls {
		for f := range cl.addr {
			sup[f] = true
		}
	}

	// Unsafe casts expose the source class's representation unless the
	// user vouched for every downcast.
	if !ar.Options.TrustDowncasts {
		for _, src := range ar.Program.Info.UnsafeCasts {
			supClass(src, map[*types.Class]bool{})
		}
	}
	return sup
}

// fieldSet is a callee read summary: the fields a call may read, or
// everything (pointer-to-member deref somewhere below).
type fieldSet struct {
	m         map[*types.Field]bool
	universal bool
}

// readSummaries computes, for each reachable function, the set of
// fields transitively read by itself and its callees — the gen effect
// of a call atom.
func readSummaries(ar *deadmember.Result, funcs []*types.Func, cls []*classification, index map[*types.Func]int) []*fieldSet {
	sums := make([]*fieldSet, len(funcs))
	for i, cl := range cls {
		s := &fieldSet{m: map[*types.Field]bool{}, universal: cl.universal}
		for f := range cl.reads {
			s.m[f] = true
		}
		sums[i] = s
	}
	return summaryFixpoint(ar, funcs, index, sums)
}

// writeSummaries is the store-side counterpart (heap tier): the fields
// each function and its callees may store to, seeded from the
// classifier's write sites (including constructor initializers).
func writeSummaries(ar *deadmember.Result, funcs []*types.Func, cls []*classification, index map[*types.Func]int) []*fieldSet {
	sums := make([]*fieldSet, len(funcs))
	for i, cl := range cls {
		s := &fieldSet{m: map[*types.Field]bool{}, universal: cl.universal}
		for _, w := range cl.writes {
			s.m[w.field] = true
		}
		sums[i] = s
	}
	return summaryFixpoint(ar, funcs, index, sums)
}

// summaryFixpoint closes per-function seed sets over the call graph's
// edges: each function absorbs its callees' sets until quiescence.
// Monotone, so iteration terminates.
func summaryFixpoint(ar *deadmember.Result, funcs []*types.Func, index map[*types.Func]int, sums []*fieldSet) []*fieldSet {
	for {
		changed := false
		for i, f := range funcs {
			s := sums[i]
			for _, callee := range ar.CallGraph.Edges[f] {
				j, ok := index[callee]
				if !ok {
					// Edge to a function outside the reachable scan
					// (defensive): assume it may touch anything.
					if !s.universal {
						s.universal = true
						changed = true
					}
					continue
				}
				cs := sums[j]
				if cs.universal && !s.universal {
					s.universal = true
					changed = true
				}
				for fld := range cs.m {
					if !s.m[fld] {
						s.m[fld] = true
						changed = true
					}
				}
			}
		}
		if !changed {
			return sums
		}
	}
}

// calleeUnion computes, per function, the union of its callees'
// transitive summaries — the effect of one call atom out of that
// function.
func calleeUnion(ar *deadmember.Result, funcs []*types.Func, index map[*types.Func]int, sums []*fieldSet) []*fieldSet {
	out := make([]*fieldSet, len(funcs))
	for i, f := range funcs {
		s := &fieldSet{m: map[*types.Field]bool{}}
		for _, callee := range ar.CallGraph.Edges[f] {
			j, ok := index[callee]
			if !ok {
				s.universal = true
				continue
			}
			if sums[j].universal {
				s.universal = true
			}
			for fld := range sums[j].m {
				s.m[fld] = true
			}
		}
		out[i] = s
	}
	return out
}

// runParallel runs fn(0..n-1) on up to `workers` goroutines, stopping
// early — between items, never mid-item — once ctx is cancelled. It
// reports whether every item ran (the deterministic-merge idiom of
// internal/deadmember/parallel.go).
func runParallel(ctx context.Context, workers, n int, fn func(int)) bool {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return false
			}
			fn(i)
		}
		return ctx.Err() == nil
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if ctx.Err() != nil {
					continue
				}
				fn(i)
			}
		}()
	}
	complete := true
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			complete = false
			break
		}
		next <- i
	}
	close(next)
	wg.Wait()
	return complete && ctx.Err() == nil
}
