// Package dataflow implements a generic iterative worklist solver for
// gen/kill bit-vector dataflow problems over control-flow graphs.
//
// The solver is direction-agnostic (forward or backward), deterministic
// (a FIFO worklist with deterministic seeding, so fact vectors are
// byte-identical across runs), and bounded: every call carries a step
// budget, and exceeding it returns ErrBudget with the partial solution
// instead of spinning — the containment contract the fuzz targets hold
// it to. Cancellation via context is polled between steps.
//
// Facts are opaque bit indices; internal/lint keys them by member-access
// locations, but the solver works for any monotone gen/kill problem.
package dataflow

import (
	"context"
	"errors"
	"fmt"
)

// BitSet is a fixed-size bit vector. The zero value is an empty set of
// zero capacity; allocate with NewBitSet.
type BitSet []uint64

// NewBitSet returns an empty set with capacity for n bits.
func NewBitSet(n int) BitSet {
	return make(BitSet, (n+63)/64)
}

// Set adds bit i.
func (b BitSet) Set(i int) { b[i/64] |= 1 << (uint(i) % 64) }

// Has reports whether bit i is present.
func (b BitSet) Has(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

// SetAll adds bits 0..n-1.
func (b BitSet) SetAll(n int) {
	for i := 0; i < n; i++ {
		b.Set(i)
	}
}

// Union adds every bit of o to b, reporting whether b changed.
func (b BitSet) Union(o BitSet) bool {
	changed := false
	for i, w := range o {
		if nw := b[i] | w; nw != b[i] {
			b[i] = nw
			changed = true
		}
	}
	return changed
}

// AndNot removes every bit of o from b.
func (b BitSet) AndNot(o BitSet) {
	for i, w := range o {
		b[i] &^= w
	}
}

// Copy overwrites b with o (same capacity).
func (b BitSet) Copy(o BitSet) { copy(b, o) }

// Reset clears all bits.
func (b BitSet) Reset() {
	for i := range b {
		b[i] = 0
	}
}

// Clone returns an independent copy.
func (b BitSet) Clone() BitSet {
	c := make(BitSet, len(b))
	copy(c, b)
	return c
}

// Count returns the number of set bits.
func (b BitSet) Count() int {
	n := 0
	for _, w := range b {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// Direction selects the dataflow direction.
type Direction int

const (
	// Forward propagates facts along control flow (entry to exit).
	Forward Direction = iota
	// Backward propagates facts against control flow (exit to entry).
	Backward
)

// ErrBudget is returned (wrapped) when the solver exceeds its step
// budget; the partial solution accompanies it.
var ErrBudget = errors.New("dataflow: step budget exhausted")

// Problem is one gen/kill dataflow instance over a block graph. Blocks
// are dense IDs 0..NumBlocks-1 (internal/cfg numbering); only successor
// adjacency is required — predecessors are derived.
type Problem struct {
	NumBlocks int
	Succs     [][]int // Succs[b] lists the successor block IDs of b
	Bits      int     // size of the fact vectors

	// Gen and Kill are the per-block transfer facts: for each block b,
	// out = Gen[b] ∪ (in − Kill[b]) (roles of in/out swap for Backward).
	// A nil entry is treated as empty.
	Gen, Kill []BitSet

	// Boundary is the fact vector at the graph boundary: the In of
	// entry blocks (no predecessors) for Forward problems, the Out of
	// exit blocks (no successors) for Backward ones. Nil means empty.
	Boundary BitSet

	// Budget caps the number of block-transfer steps; 0 selects
	// DefaultBudget, which no terminating monotone instance exceeds.
	Budget int

	// Ctx, when non-nil, is polled periodically; cancellation aborts
	// the solve with the context's error.
	Ctx context.Context

	// Unit names the analyzed unit (typically the function's qualified
	// name) so a budget overrun identifies which function exhausted the
	// budget in the resulting Failure/degraded record.
	Unit string

	Dir Direction
}

// Solution holds the fixpoint fact vectors: In[b] on entry to block b,
// Out[b] on exit (in the forward sense regardless of direction).
type Solution struct {
	In, Out []BitSet
	Steps   int
}

// DefaultBudget returns the automatic step budget for a problem of the
// given shape. A monotone gen/kill solve re-processes a block only when
// an incoming fact vector grows, so edges*(bits+1) + blocks bounds any
// terminating run; the default doubles that and adds slack, making an
// overrun a reliable signal of a malformed instance rather than a slow
// one.
func DefaultBudget(blocks, edges, bits int) int {
	return 64 + 2*(blocks+(edges+1)*(bits+1))
}

// Solve runs the worklist iteration to a fixpoint. On budget exhaustion
// it returns the partial solution and an error wrapping ErrBudget; on
// cancellation, the partial solution and the context error.
func Solve(p Problem) (*Solution, error) {
	n := p.NumBlocks
	sol := &Solution{In: make([]BitSet, n), Out: make([]BitSet, n)}
	for i := 0; i < n; i++ {
		sol.In[i] = NewBitSet(p.Bits)
		sol.Out[i] = NewBitSet(p.Bits)
	}
	if n == 0 {
		return sol, nil
	}

	preds := make([][]int, n)
	edges := 0
	for b, ss := range p.Succs {
		edges += len(ss)
		for _, s := range ss {
			preds[s] = append(preds[s], b)
		}
	}

	budget := p.Budget
	if budget <= 0 {
		budget = DefaultBudget(n, edges, p.Bits)
	}

	// src/dst edges seen from the iteration's point of view: a backward
	// solve walks Succs to gather input facts and notifies Preds.
	inputs, notify := preds, p.Succs
	if p.Dir == Backward {
		inputs, notify = p.Succs, preds
	}

	// FIFO worklist, deterministically seeded: reverse postorder would
	// be fastest, but plain ID order (reversed for backward problems,
	// whose IDs grow roughly source-forward) converges fine and keeps
	// the iteration order — and therefore Steps — reproducible.
	queue := make([]int, 0, n)
	inQueue := make([]bool, n)
	push := func(b int) {
		if !inQueue[b] {
			inQueue[b] = true
			queue = append(queue, b)
		}
	}
	for i := 0; i < n; i++ {
		if p.Dir == Backward {
			push(n - 1 - i)
		} else {
			push(i)
		}
	}

	gather := NewBitSet(p.Bits)
	for len(queue) > 0 {
		if sol.Steps >= budget {
			unit := p.Unit
			if unit == "" {
				unit = "<unnamed>"
			}
			return sol, fmt.Errorf("%w in %s after %d steps (budget %d, %d blocks, %d bits)",
				ErrBudget, unit, sol.Steps, budget, n, p.Bits)
		}
		if p.Ctx != nil && sol.Steps%128 == 0 && p.Ctx.Err() != nil {
			return sol, p.Ctx.Err()
		}
		b := queue[0]
		queue = queue[1:]
		inQueue[b] = false
		sol.Steps++

		// Meet: the input-side vector is the union of the neighbouring
		// blocks' result-side vectors, or Boundary at the graph edge.
		meet, result := sol.In[b], sol.Out[b]
		if p.Dir == Backward {
			meet, result = sol.Out[b], sol.In[b]
		}
		meet.Reset()
		if len(inputs[b]) == 0 {
			if p.Boundary != nil {
				meet.Union(p.Boundary)
			}
		} else {
			for _, nb := range inputs[b] {
				if p.Dir == Backward {
					meet.Union(sol.In[nb])
				} else {
					meet.Union(sol.Out[nb])
				}
			}
		}

		// Transfer: result = gen ∪ (meet − kill). Facts only grow, so
		// accumulating with Union doubles as change detection.
		gather.Copy(meet)
		if p.Kill != nil && p.Kill[b] != nil {
			gather.AndNot(p.Kill[b])
		}
		if p.Gen != nil && p.Gen[b] != nil {
			gather.Union(p.Gen[b])
		}
		if result.Union(gather) {
			for _, nb := range notify[b] {
				push(nb)
			}
		}
	}
	return sol, nil
}
